// Command sunbench regenerates the paper's evaluation: Tables 1-4 and
// the six panels of Figure 6, over the calibrated IPX/SunOS and PC/Linux
// platform models. It also measures the live concurrent transport in
// throughput mode.
//
// Usage:
//
//	sunbench                  # all paper tables and figures
//	sunbench -table 1         # one table (1..4)
//	sunbench -figure 6        # the Figure 6 panels
//	sunbench -throughput      # live throughput over sim, udp, and tcp
//	sunbench -throughput -transport tcp -clients 4 -depth 16 -calls 50000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"specrpc/internal/bench"
	"specrpc/internal/platform"
)

func main() {
	table := flag.Int("table", 0, "print only this table (1..4)")
	figure := flag.Int("figure", 0, "print only this figure (6)")
	throughput := flag.Bool("throughput", false, "measure live transport throughput instead of the paper tables")
	transports := flag.String("transport", "sim,udp,tcp", "comma-separated transports for -throughput")
	clients := flag.Int("clients", 2, "concurrent connections for -throughput")
	depth := flag.Int("depth", 8, "in-flight calls per connection for -throughput")
	calls := flag.Int("calls", 20000, "total calls for -throughput")
	size := flag.Int("size", 100, "echoed int32 array size for -throughput")
	flag.Parse()

	if *throughput {
		if err := runThroughput(*transports, *clients, *depth, *calls, *size); err != nil {
			fmt.Fprintln(os.Stderr, "sunbench:", err)
			os.Exit(1)
		}
		return
	}
	all := *table == 0 && *figure == 0
	if err := run(all, *table, *figure); err != nil {
		fmt.Fprintln(os.Stderr, "sunbench:", err)
		os.Exit(1)
	}
}

// runThroughput drives the concurrent transport: for each requested
// transport, one single-caller baseline and one clients x depth run, so
// the printed table shows the scaling, not just one point.
func runThroughput(transports string, clients, depth, calls, size int) error {
	var rows []bench.ThroughputResult
	for _, tr := range strings.Split(transports, ",") {
		tr = strings.TrimSpace(tr)
		if tr == "" {
			continue
		}
		configs := [][2]int{{1, 1}, {clients, depth}}
		if clients == 1 && depth == 1 {
			configs = configs[:1] // the requested run IS the baseline
		}
		for _, cfg := range configs {
			// The concurrent run latches the server until `depth` handlers
			// execute at once, so the InFlight column demonstrates (not
			// merely samples) that the transport sustains the pipeline.
			res, err := bench.Throughput(bench.ThroughputOptions{
				Transport: tr, Clients: cfg[0], Depth: cfg[1],
				Calls: calls, ArraySize: size, MinInFlight: cfg[1],
			})
			if err != nil {
				return err
			}
			rows = append(rows, res)
		}
	}
	fmt.Print(bench.FormatThroughput(rows))
	return nil
}

func run(all bool, table, figure int) error {
	if all || table == 1 {
		for _, m := range platform.Both() {
			rows, err := bench.Table1(m)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatRows("Table 1: Client marshaling performance (ms)", m, rows))
			fmt.Println()
		}
	}
	if all || table == 2 {
		for _, m := range platform.Both() {
			rows, err := bench.Table2(m)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatRows("Table 2: Round trip performance (ms)", m, rows))
			fmt.Println()
		}
	}
	if all || table == 3 {
		rows, err := bench.Table3()
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable3(rows))
		fmt.Println()
	}
	if all || table == 4 {
		rows, err := bench.Table4()
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable4(rows))
		fmt.Println()
	}
	if all || figure == 6 {
		panels, err := bench.Figure6()
		if err != nil {
			return err
		}
		for _, p := range panels {
			fmt.Print(bench.FormatFigure(p))
			fmt.Println()
		}
	}
	return nil
}
