// Command sunbench regenerates the paper's evaluation: Tables 1-4 and
// the six panels of Figure 6, over the calibrated IPX/SunOS and PC/Linux
// platform models. It also measures the live concurrent transport in
// throughput mode, and the live generic/specialized/chunked marshal-plan
// comparison in -live-spec mode.
//
// Usage:
//
//	sunbench                  # all paper tables and figures
//	sunbench -table 1         # one table (1..4)
//	sunbench -figure 6        # the Figure 6 panels
//	sunbench -throughput      # live throughput over sim, udp, and tcp
//	sunbench -throughput -transport tcp -clients 4 -depth 16 -calls 50000
//	sunbench -openloop        # open-loop Poisson tail latency (p50/p99/p999),
//	                          # sharded vs single-lock baseline
//	sunbench -openloop -transport udp -clients 8 -depth 16 -rate 8000 -openloop-dur 2s
//	sunbench -batch           # counted syscalls/op: batched vs unbatched I/O
//	sunbench -batch -transport tcp -clients 4 -depth 8 -calls 20000
//	sunbench -chaos           # goodput + retry/reconnect counters under seeded faults
//	sunbench -chaos -transport tcp -chaos-loss 0.2 -chaos-calls 1000 -seed 42
//	sunbench -live-spec       # live codec comparison (incl. fused + compiled whole-call) over sim, udp, tcp
//	sunbench -live-spec -fused=false          # the three plan series only (drops fused and compiled)
//	sunbench -live-spec -header-path -json BENCH_live.json
//	sunbench -header-path     # generic vs templated RPC header work
//	sunbench -throughput -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"specrpc/internal/bench"
	"specrpc/internal/platform"
)

// main delegates to realMain so the profile-finalizing defers run
// before the process exits; os.Exit directly from the work path would
// truncate an in-progress CPU profile.
func main() {
	os.Exit(realMain())
}

func realMain() int {
	table := flag.Int("table", 0, "print only this table (1..4)")
	figure := flag.Int("figure", 0, "print only this figure (6)")
	throughput := flag.Bool("throughput", false, "measure live transport throughput instead of the paper tables")
	openloop := flag.Bool("openloop", false, "measure open-loop tail latency (Poisson arrivals) over the live transports")
	rate := flag.Float64("rate", 4000, "offered arrival rate in calls/sec for -openloop")
	openloopDur := flag.Duration("openloop-dur", time.Second, "arrival window per -openloop grid point")
	baseline := flag.Bool("baseline", true, "also run each -openloop point against the single-lock (shards=1) baseline")
	reps := flag.Int("openloop-reps", 3, "repetitions per -openloop point; the median-p99 run is reported")
	batch := flag.Bool("batch", false, "count syscalls/op for batched vs unbatched I/O over the live transports")
	chaos := flag.Bool("chaos", false, "measure goodput and retry/reconnect counters under a seeded fault schedule")
	chaosLoss := flag.Float64("chaos-loss", 0.15, "headline fault intensity for -chaos (loss rate on datagrams, scaled reset/split rates on tcp)")
	chaosCalls := flag.Int("chaos-calls", 400, "total calls per -chaos point")
	seed := flag.Int64("seed", 1, "fault-schedule seed for -chaos")
	liveSpec := flag.Bool("live-spec", false, "measure the generic/specialized/chunked marshal plans over the live transports")
	fused := flag.Bool("fused", true, "include the fused and compiled whole-call series in -live-spec (-fused=false for the three plan series only)")
	liveSpecReps := flag.Int("live-spec-reps", 1, "complete -live-spec grid passes; the per-point median is reported")
	headerPath := flag.Bool("header-path", false, "measure the generic vs templated RPC header encode/decode paths")
	transports := flag.String("transport", "sim,udp,tcp", "comma-separated transports for -throughput and -live-spec")
	clients := flag.Int("clients", 2, "concurrent connections for -throughput")
	depth := flag.Int("depth", 8, "in-flight calls per connection for -throughput")
	calls := flag.Int("calls", 0, "total calls for -throughput (default 20000); calls per point for -live-spec (default 2000)")
	size := flag.Int("size", 100, "echoed int32 array size for -throughput")
	jsonOut := flag.String("json", "", "also write machine-readable results of the live modes to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken at the end of the run to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sunbench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "sunbench:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "sunbench: wrote %s\n", *cpuprofile)
		}()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sunbench:", err)
			return
		}
		defer f.Close()
		runtime.GC() // up-to-date live-object statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "sunbench:", err)
			return
		}
		fmt.Fprintf(os.Stderr, "sunbench: wrote %s\n", *memprofile)
	}()

	out := &jsonReport{GeneratedAt: time.Now().UTC().Format(time.RFC3339), Go: runtime.Version()}
	var err error
	live := false
	if *liveSpec {
		live = true
		err = runLiveSpec(*transports, *calls, *liveSpecReps, !*fused, out)
	}
	if err == nil && *headerPath {
		live = true
		out.HeaderPath = bench.HeaderPath()
		fmt.Print(bench.FormatHeaderPath(out.HeaderPath))
	}
	if err == nil && *throughput {
		live = true
		if *calls <= 0 {
			*calls = 20000
		}
		err = runThroughput(*transports, *clients, *depth, *calls, *size, out)
	}
	if err == nil && *openloop {
		live = true
		err = runOpenLoop(*transports, *clients, *depth, *rate, *openloopDur, *baseline, *reps, out)
	}
	if err == nil && *batch {
		live = true
		err = runBatch(*transports, *clients, *depth, *calls, *size, out)
	}
	if err == nil && *chaos {
		live = true
		err = runChaos(*transports, *clients, *chaosCalls, *chaosLoss, *seed, out)
	}
	if err == nil && !live {
		if *jsonOut != "" {
			fmt.Fprintln(os.Stderr, "sunbench: -json requires -live-spec, -header-path, -throughput, -openloop, -batch, or -chaos")
			return 2
		}
		all := *table == 0 && *figure == 0
		err = run(all, *table, *figure)
	}
	if err == nil && *jsonOut != "" {
		err = writeJSON(*jsonOut, out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sunbench:", err)
		return 1
	}
	return 0
}

// jsonReport is the machine-readable result envelope of the live modes:
// the file BENCH_live.json that tracks the perf trajectory across PRs.
type jsonReport struct {
	GeneratedAt string                   `json:"generated_at"`
	Go          string                   `json:"go"`
	LiveSpec    []bench.LiveSpecResult   `json:"live_spec,omitempty"`
	HeaderPath  []bench.HeaderPathResult `json:"header_path,omitempty"`
	Throughput  []throughputJSON         `json:"throughput,omitempty"`
	OpenLoop    []bench.OpenLoopResult   `json:"open_loop,omitempty"`
	Batch       []bench.BatchResult      `json:"batch,omitempty"`
	Chaos       []bench.ChaosResult      `json:"chaos,omitempty"`
}

// throughputJSON flattens ThroughputResult for stable JSON output.
type throughputJSON struct {
	Transport   string  `json:"transport"`
	Clients     int     `json:"clients"`
	Depth       int     `json:"depth"`
	Calls       int     `json:"calls"`
	ArraySize   int     `json:"n"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	CallsPerSec float64 `json:"calls_per_sec"`
	MaxInFlight int     `json:"max_in_flight"`
}

func writeJSON(path string, report *jsonReport) error {
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sunbench: wrote %s\n", path)
	return nil
}

func splitTransports(transports string) []string {
	var out []string
	for _, tr := range strings.Split(transports, ",") {
		if tr = strings.TrimSpace(tr); tr != "" {
			out = append(out, tr)
		}
	}
	return out
}

// runLiveSpec prints the paper's three-configuration comparison measured
// on the live wire path.
func runLiveSpec(transports string, calls, reps int, skipFused bool, out *jsonReport) error {
	rows, err := bench.LiveSpec(bench.LiveSpecOptions{
		Transports: splitTransports(transports),
		Calls:      calls,
		Reps:       reps,
		SkipFused:  skipFused,
	})
	if err != nil {
		return err
	}
	out.LiveSpec = rows
	fmt.Print(bench.FormatLiveSpec(rows))
	return nil
}

// runThroughput drives the concurrent transport: for each requested
// transport, one single-caller baseline and one clients x depth run, so
// the printed table shows the scaling, not just one point.
func runThroughput(transports string, clients, depth, calls, size int, out *jsonReport) error {
	var rows []bench.ThroughputResult
	for _, tr := range splitTransports(transports) {
		configs := [][2]int{{1, 1}, {clients, depth}}
		if clients == 1 && depth == 1 {
			configs = configs[:1] // the requested run IS the baseline
		}
		for _, cfg := range configs {
			// The concurrent run latches the server until `depth` handlers
			// execute at once, so the InFlight column demonstrates (not
			// merely samples) that the transport sustains the pipeline.
			res, err := bench.Throughput(bench.ThroughputOptions{
				Transport: tr, Clients: cfg[0], Depth: cfg[1],
				Calls: calls, ArraySize: size, MinInFlight: cfg[1],
			})
			if err != nil {
				return err
			}
			rows = append(rows, res)
			out.Throughput = append(out.Throughput, throughputJSON{
				Transport: res.Transport, Clients: res.Clients, Depth: res.Depth,
				Calls: res.Calls, ArraySize: res.ArraySize,
				ElapsedMS:   float64(res.Elapsed.Microseconds()) / 1e3,
				CallsPerSec: res.CallsPerSec, MaxInFlight: res.MaxInFlight,
			})
		}
	}
	fmt.Print(bench.FormatThroughput(rows))
	return nil
}

// runOpenLoop drives the open-loop tail-latency grid: for each
// transport, each point runs against the sharded server and (with
// -baseline) against the single-lock shards=1 layout, so the JSON series
// carries its own before/after comparison. The whole grid is measured
// reps times with the configurations interleaved within each round, and
// the median-p99 run per point reported: a single open-loop run on a
// shared host is one scheduling outlier away from nonsense, and
// back-to-back blocks per configuration would let slow host drift bias
// the baseline comparison.
func runOpenLoop(transports string, conns, depth int, rate float64, dur time.Duration, baseline bool, reps int, out *jsonReport) error {
	shardCfgs := []int{0}
	if baseline {
		shardCfgs = []int{1, 0}
	}
	var grid []bench.OpenLoopOptions
	for _, tr := range splitTransports(transports) {
		for _, shards := range shardCfgs {
			grid = append(grid, bench.OpenLoopOptions{
				Transport: tr, Conns: conns, Depth: depth,
				Rate: rate, Duration: dur, Shards: shards,
			})
		}
	}
	rows, err := bench.OpenLoopGrid(grid, reps)
	if err != nil {
		return err
	}
	out.OpenLoop = rows
	fmt.Print(bench.FormatOpenLoop(rows))
	return nil
}

// runBatch counts kernel crossings per call for the three batching
// variants against the same clients x depth grid: each transport runs a
// 1x1 baseline point and the requested concurrent point, in modes off
// and on (plus the deterministic ONC batched-calls mode on stream
// transports). Counters, not timers: the series is stable across hosts.
func runBatch(transports string, clients, depth, calls, size int, out *jsonReport) error {
	if calls <= 0 {
		calls = 20000
	}
	var rows []bench.BatchResult
	for _, tr := range splitTransports(transports) {
		if tr == "sim" {
			continue // no kernel under the simulated transport to count
		}
		configs := [][2]int{{1, 1}, {clients, depth}}
		if clients == 1 && depth == 1 {
			configs = configs[:1]
		}
		modes := []string{"off", "on"}
		if tr == "tcp" {
			modes = append(modes, "calls")
		}
		for _, cfg := range configs {
			for _, mode := range modes {
				res, err := bench.Batch(bench.BatchOptions{
					Transport: tr, Mode: mode, Clients: cfg[0], Depth: cfg[1],
					Calls: calls, ArraySize: size,
				})
				if err != nil {
					return err
				}
				rows = append(rows, res)
			}
		}
	}
	out.Batch = rows
	fmt.Print(bench.FormatBatch(rows))
	return nil
}

// runChaos measures goodput under the seeded fault schedule, one point
// per transport. The recovery counters (retransmits, retries,
// reconnects, cache hits) ride along in the JSON so benchdiff can gate
// the series structurally — did the machinery fire and the calls land —
// rather than on timing.
func runChaos(transports string, conns, calls int, loss float64, seed int64, out *jsonReport) error {
	var rows []bench.ChaosResult
	for _, tr := range splitTransports(transports) {
		res, err := bench.Chaos(bench.ChaosOptions{
			Transport: tr, Conns: conns, Calls: calls, Loss: loss, Seed: seed,
		})
		if err != nil {
			return err
		}
		rows = append(rows, res)
	}
	out.Chaos = rows
	fmt.Print(bench.FormatChaos(rows))
	return nil
}

func run(all bool, table, figure int) error {
	if all || table == 1 {
		for _, m := range platform.Both() {
			rows, err := bench.Table1(m)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatRows("Table 1: Client marshaling performance (ms)", m, rows))
			fmt.Println()
		}
	}
	if all || table == 2 {
		for _, m := range platform.Both() {
			rows, err := bench.Table2(m)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatRows("Table 2: Round trip performance (ms)", m, rows))
			fmt.Println()
		}
	}
	if all || table == 3 {
		rows, err := bench.Table3()
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable3(rows))
		fmt.Println()
	}
	if all || table == 4 {
		rows, err := bench.Table4()
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable4(rows))
		fmt.Println()
	}
	if all || figure == 6 {
		panels, err := bench.Figure6()
		if err != nil {
			return err
		}
		for _, p := range panels {
			fmt.Print(bench.FormatFigure(p))
			fmt.Println()
		}
	}
	return nil
}
