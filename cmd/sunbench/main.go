// Command sunbench regenerates the paper's evaluation: Tables 1-4 and
// the six panels of Figure 6, over the calibrated IPX/SunOS and PC/Linux
// platform models.
//
// Usage:
//
//	sunbench              # everything
//	sunbench -table 1     # one table (1..4)
//	sunbench -figure 6    # the Figure 6 panels
package main

import (
	"flag"
	"fmt"
	"os"

	"specrpc/internal/bench"
	"specrpc/internal/platform"
)

func main() {
	table := flag.Int("table", 0, "print only this table (1..4)")
	figure := flag.Int("figure", 0, "print only this figure (6)")
	flag.Parse()

	all := *table == 0 && *figure == 0
	if err := run(all, *table, *figure); err != nil {
		fmt.Fprintln(os.Stderr, "sunbench:", err)
		os.Exit(1)
	}
}

func run(all bool, table, figure int) error {
	if all || table == 1 {
		for _, m := range platform.Both() {
			rows, err := bench.Table1(m)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatRows("Table 1: Client marshaling performance (ms)", m, rows))
			fmt.Println()
		}
	}
	if all || table == 2 {
		for _, m := range platform.Both() {
			rows, err := bench.Table2(m)
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatRows("Table 2: Round trip performance (ms)", m, rows))
			fmt.Println()
		}
	}
	if all || table == 3 {
		rows, err := bench.Table3()
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable3(rows))
		fmt.Println()
	}
	if all || table == 4 {
		rows, err := bench.Table4()
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable4(rows))
		fmt.Println()
	}
	if all || figure == 6 {
		panels, err := bench.Figure6()
		if err != nil {
			return err
		}
		for _, p := range panels {
			fmt.Print(bench.FormatFigure(p))
			fmt.Println()
		}
	}
	return nil
}
