// Command specvet runs the repository's invariant analyzers
// (internal/analysis/analyzers) over Go packages. Two modes:
//
// Standalone, taking go-list patterns:
//
//	specvet ./...
//
// As a vet tool, driven by cmd/go's unit-checker protocol:
//
//	go vet -vettool=$(which specvet) ./...
//
// In both modes findings print as file:line:col: message (analyzer)
// and a non-empty finding set exits nonzero, so `make analyze` and CI
// fail on violations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"specrpc/internal/analysis"
	"specrpc/internal/analysis/analyzers"
)

func main() {
	// cmd/go probes a vettool with -V=full before handing it work; the
	// response must be "<name>: version <something>".
	vFlag := flag.String("V", "", "print version and exit (vettool protocol)")
	// ...and with -flags, expecting a JSON listing of tool flags it may
	// forward. specvet takes none beyond the protocol's own.
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON and exit (vettool protocol)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: specvet [packages]  |  go vet -vettool=specvet [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *vFlag != "" {
		fmt.Printf("specvet: version 1\n")
		return
	}
	if *flagsFlag {
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVettool(args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(runStandalone(args))
}

func runStandalone(patterns []string) int {
	pkgs, err := analysis.Load(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "specvet: %v\n", err)
		return 2
	}
	found := 0
	for _, pkg := range pkgs {
		found += report(pkg)
	}
	if found > 0 {
		return 1
	}
	return 0
}

// vetConfig is the subset of cmd/go's unit-checker config specvet reads.
// cmd/go writes one of these per package and invokes the tool with its
// path as the sole argument.
type vetConfig struct {
	ID          string
	Dir         string
	ImportPath  string
	GoFiles     []string
	NonGoFiles  []string
	ImportMap   map[string]string // import path in source -> canonical path
	PackageFile map[string]string // canonical path -> export data file
	VetxOnly    bool
	VetxOutput  string
	Stdout      string
}

func runVettool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "specvet: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "specvet: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	// cmd/go requires the facts file to exist even though specvet keeps
	// no cross-package facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "specvet: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	// Resolve vendored/test-variant import paths through ImportMap before
	// the export-data lookup.
	exports := make(map[string]string, len(cfg.PackageFile))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	for src, canonical := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canonical]; ok {
			exports[src] = file
		}
	}

	pkg, err := analysis.CheckFiles(cfg.ImportPath, cfg.Dir, cfg.GoFiles, exports)
	if err != nil {
		fmt.Fprintf(os.Stderr, "specvet: %v\n", err)
		return 2
	}
	if report(pkg) > 0 {
		return 1
	}
	return 0
}

// report runs the suite over one package and prints its findings.
func report(pkg *analysis.Package) int {
	diags, err := analysis.Run(pkg, analyzers.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "specvet: %s: %v\n", pkg.ImportPath, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return len(diags)
}
