// Command rpcgen compiles an XDR interface definition (.x file) into Go
// stubs and, for the fixed-shape subset, mini-C marshaling routines for
// the specializer — the role of Sun's rpcgen in the paper's pipeline.
//
// Usage:
//
//	rpcgen [-pkg name] [-compiled] [-go out.go] [-minic out.mc] file.x
//
// With no output flags the Go stubs go to standard output. -compiled
// additionally emits straight-line compiled codecs for every wire plan
// and registers them, so typed procedures bypass the plan interpreter.
package main

import (
	"flag"
	"fmt"
	"os"

	"specrpc/internal/rpcgen"
)

func main() {
	pkg := flag.String("pkg", "stubs", "generated Go package name")
	goOut := flag.String("go", "", "write Go stubs to this file (default stdout)")
	mcOut := flag.String("minic", "", "write mini-C marshalers to this file")
	compiled := flag.Bool("compiled", false, "also emit compiled straight-line codecs for wire plans")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rpcgen [-pkg name] [-compiled] [-go out.go] [-minic out.mc] file.x")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *pkg, *goOut, *mcOut, *compiled); err != nil {
		fmt.Fprintln(os.Stderr, "rpcgen:", err)
		os.Exit(1)
	}
}

func run(path, pkg, goOut, mcOut string, compiled bool) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	spec, err := rpcgen.Parse(string(src))
	if err != nil {
		return err
	}
	goSrc, err := rpcgen.GenerateGo(spec, rpcgen.GoOptions{Package: pkg, Compiled: compiled})
	if err != nil {
		return err
	}
	if goOut == "" {
		fmt.Print(goSrc)
	} else if err := os.WriteFile(goOut, []byte(goSrc), 0o644); err != nil {
		return err
	}
	if mcOut != "" {
		mcSrc, skipped, err := rpcgen.GenerateMiniC(spec)
		if err != nil {
			return err
		}
		for _, s := range skipped {
			fmt.Fprintln(os.Stderr, "rpcgen: not specializable:", s)
		}
		if err := os.WriteFile(mcOut, []byte(mcSrc), 0o644); err != nil {
			return err
		}
	}
	return nil
}
