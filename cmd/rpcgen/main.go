// Command rpcgen compiles an XDR interface definition (.x file) into Go
// stubs and, for the fixed-shape subset, mini-C marshaling routines for
// the specializer — the role of Sun's rpcgen in the paper's pipeline.
//
// Usage:
//
//	rpcgen [-pkg name] [-go out.go] [-minic out.mc] file.x
//
// With no output flags the Go stubs go to standard output.
package main

import (
	"flag"
	"fmt"
	"os"

	"specrpc/internal/rpcgen"
)

func main() {
	pkg := flag.String("pkg", "stubs", "generated Go package name")
	goOut := flag.String("go", "", "write Go stubs to this file (default stdout)")
	mcOut := flag.String("minic", "", "write mini-C marshalers to this file")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rpcgen [-pkg name] [-go out.go] [-minic out.mc] file.x")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *pkg, *goOut, *mcOut); err != nil {
		fmt.Fprintln(os.Stderr, "rpcgen:", err)
		os.Exit(1)
	}
}

func run(path, pkg, goOut, mcOut string) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	spec, err := rpcgen.Parse(string(src))
	if err != nil {
		return err
	}
	goSrc, err := rpcgen.GenerateGo(spec, rpcgen.GoOptions{Package: pkg})
	if err != nil {
		return err
	}
	if goOut == "" {
		fmt.Print(goSrc)
	} else if err := os.WriteFile(goOut, []byte(goSrc), 0o644); err != nil {
		return err
	}
	if mcOut != "" {
		mcSrc, skipped, err := rpcgen.GenerateMiniC(spec)
		if err != nil {
			return err
		}
		for _, s := range skipped {
			fmt.Fprintln(os.Stderr, "rpcgen: not specializable:", s)
		}
		if err := os.WriteFile(mcOut, []byte(mcSrc), 0o644); err != nil {
			return err
		}
	}
	return nil
}
