// Command benchdiff compares two BENCH_live.json files produced by
// `sunbench -json` and prints a per-series ns/op delta table, so a PR's
// effect on the live benchmarks is visible at a glance. It is a report,
// not a gate: CI runs it non-fatally against the committed baseline
// because loopback numbers on shared runners are noisy.
//
// Usage:
//
//	benchdiff OLD.json NEW.json
//
// Series present in only one file are listed as added or removed.
// The exit status is 0 whenever both files parse; regressions do not
// fail the command.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// report mirrors the envelope sunbench writes; unknown fields are
// ignored so the two files may come from different tool versions.
type report struct {
	GeneratedAt string `json:"generated_at"`
	Go          string `json:"go"`
	LiveSpec    []struct {
		Transport string  `json:"transport"`
		Mode      string  `json:"mode"`
		N         int     `json:"n"`
		NsPerCall float64 `json:"ns_per_call"`
	} `json:"live_spec"`
	HeaderPath []struct {
		Series  string  `json:"series"`
		Impl    string  `json:"impl"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"header_path"`
	Throughput []struct {
		Transport   string  `json:"transport"`
		Clients     int     `json:"clients"`
		Depth       int     `json:"depth"`
		N           int     `json:"n"`
		CallsPerSec float64 `json:"calls_per_sec"`
	} `json:"throughput"`
	OpenLoop []struct {
		Transport   string  `json:"transport"`
		Conns       int     `json:"conns"`
		Depth       int     `json:"depth"`
		Shards      int     `json:"shards"`
		OfferedRate float64 `json:"offered_rate"`
		P99Us       float64 `json:"p99_us"`
	} `json:"open_loop"`
}

// series flattens every measurement into name -> ns/op (throughput is
// inverted into ns/call so "lower is better" holds for every row).
func (r *report) series() map[string]float64 {
	out := make(map[string]float64)
	for _, s := range r.LiveSpec {
		out[fmt.Sprintf("live-spec/%s/%s/N=%d", s.Transport, s.Mode, s.N)] = s.NsPerCall
	}
	for _, h := range r.HeaderPath {
		out[fmt.Sprintf("header-path/%s/%s", h.Series, h.Impl)] = h.NsPerOp
	}
	for _, t := range r.Throughput {
		if t.CallsPerSec > 0 {
			out[fmt.Sprintf("throughput/%s/c%d_d%d/N=%d", t.Transport, t.Clients, t.Depth, t.N)] =
				1e9 / t.CallsPerSec
		}
	}
	for _, o := range r.OpenLoop {
		if o.P99Us > 0 {
			out[fmt.Sprintf("open-loop/%s/c%d_d%d/r%.0f/shards=%d/p99",
				o.Transport, o.Conns, o.Depth, o.OfferedRate, o.Shards)] = o.P99Us * 1e3
		}
	}
	return out
}

func load(path string) (*report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff OLD.json NEW.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldRep, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	newRep, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}

	oldS, newS := oldRep.series(), newRep.series()
	var names []string
	for k := range oldS {
		names = append(names, k)
	}
	for k := range newS {
		if _, ok := oldS[k]; !ok {
			names = append(names, k)
		}
	}
	sort.Strings(names)

	fmt.Printf("benchdiff: %s (%s)  ->  %s (%s)\n",
		flag.Arg(0), oldRep.GeneratedAt, flag.Arg(1), newRep.GeneratedAt)
	fmt.Printf("%-44s %12s %12s %9s\n", "series (ns/op, lower is better)", "old", "new", "delta")
	for _, name := range names {
		o, haveOld := oldS[name]
		n, haveNew := newS[name]
		switch {
		case !haveOld:
			fmt.Printf("%-44s %12s %12.1f %9s\n", name, "-", n, "added")
		case !haveNew:
			fmt.Printf("%-44s %12.1f %12s %9s\n", name, o, "-", "removed")
		default:
			delta := "n/a"
			if o > 0 {
				delta = fmt.Sprintf("%+.1f%%", (n-o)/o*100)
			}
			fmt.Printf("%-44s %12.1f %12.1f %9s\n", name, o, n, delta)
		}
	}
}
