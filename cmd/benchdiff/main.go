// Command benchdiff compares BENCH_live.json snapshots produced by
// `sunbench -json` and prints a per-series delta table, so a PR's
// effect on the live benchmarks is visible at a glance.
//
// Usage:
//
//	benchdiff [-gate] [-threshold fam=pct,...] OLD.json NEW.json [NEW.json ...]
//
// With one NEW file and no -gate it is a report: series present in only
// one file are listed as added or removed, and the exit status is 0
// whenever the files parse.
//
// With -gate it is a CI gate, made noise-aware the same way the
// open-loop harness is: NEW may be given as several repetition files —
// each a complete pass over the measurement grid, so host drift during
// the run hits every configuration alike instead of biasing whichever
// series ran last — and the per-series MEDIAN across the passes is what
// is compared against OLD. A series whose median regresses past its
// family's threshold fails the command with exit status 1, naming every
// offender. Thresholds are per family because noise is: counted
// syscall series are nearly exact while p99 tails on a loopback swing
// wildly.
//
// The live-spec and header-path specialization series are gated as
// RATIOS to the same-file generic series at the same point, not as raw
// ns. The harnesses measure all implementations of a point
// back-to-back, so the ratio cancels first-order host drift — on a
// shared single-CPU box the absolute numbers wander 40%+ between runs
// minutes apart, which made every absolute threshold either deaf or a
// false-alarm generator. A specialization regression still moves its
// ratio; a uniformly slower host moves none of them. The generic
// series themselves (the in-run yardsticks) keep absolute gates under
// the wide *-abs thresholds, catastrophe detectors rather than
// precision ones. The yardstick is alloc-heavy and drifts by ±25% on
// its own (GC and allocator behavior do not scale with CPU steal the
// way tight loops do), and the ratios inherit that — so the default
// ratio thresholds are sized to catch a rung collapsing (a codec
// silently falling back a level or worse), not a few-percent slowdown.
// Fine-grained perf claims live in the deterministic counted series,
// the alloc-pinning tests, and the bench/history trend, not here.
// Comparing snapshots from different machines needs wider thresholds
// (or no -gate): the deltas then measure the hosts, not the code.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// defaultThresholds is the allowed per-family regression (fraction of
// the old value) before -gate fails. The spread mirrors each family's
// observed run-to-run noise — calibrated by diffing repeated identical
// binaries on the reference host, where shared-CPU interference moves
// small-N round-trip medians by 40%+ between runs minutes apart, and
// even the ns-scale header medians by ~15%; a threshold below the
// idle-host noise floor only manufactures false alarms:
//
//	live-spec        specialization-mode ns/call as a ratio to the
//	                 same-pass generic mode; the yardstick's own
//	                 ±25% swing leaks in, so this trips on a rung
//	                 collapse, not a few-percent slip
//	live-spec-abs    the generic series' raw ns/call; absolute host
//	                 drift lands here, so this is a catastrophe gate
//	header-path      template ns/op as a ratio to the same-run
//	                 generic marshaler (a ~20x gap — collapse is
//	                 unmistakable)
//	header-path-abs  the generic marshaler's raw ns/op
//	throughput       loopback calls/sec under full pipelining
//	open-loop        p99 tails, one scheduling hiccup from an outlier
//	batch            counted syscalls/op — deterministic in modes off
//	                 and calls, scheduling-dependent in mode on
var defaultThresholds = map[string]float64{
	"live-spec":       0.50,
	"live-spec-abs":   1.00,
	"header-path":     0.40,
	"header-path-abs": 1.00,
	"throughput":      0.20,
	"open-loop":       0.50,
	"batch":           0.30,
}

// report mirrors the envelope sunbench writes; unknown fields are
// ignored so the files may come from different tool versions.
type report struct {
	GeneratedAt string `json:"generated_at"`
	Go          string `json:"go"`
	LiveSpec    []struct {
		Transport string  `json:"transport"`
		Mode      string  `json:"mode"`
		N         int     `json:"n"`
		NsPerCall float64 `json:"ns_per_call"`
	} `json:"live_spec"`
	HeaderPath []struct {
		Series  string  `json:"series"`
		Impl    string  `json:"impl"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"header_path"`
	Throughput []struct {
		Transport   string  `json:"transport"`
		Clients     int     `json:"clients"`
		Depth       int     `json:"depth"`
		N           int     `json:"n"`
		CallsPerSec float64 `json:"calls_per_sec"`
	} `json:"throughput"`
	OpenLoop []struct {
		Transport   string  `json:"transport"`
		Conns       int     `json:"conns"`
		Depth       int     `json:"depth"`
		Shards      int     `json:"shards"`
		OfferedRate float64 `json:"offered_rate"`
		P99Us       float64 `json:"p99_us"`
	} `json:"open_loop"`
	Batch []struct {
		Transport         string  `json:"transport"`
		Mode              string  `json:"mode"`
		Clients           int     `json:"clients"`
		Depth             int     `json:"depth"`
		N                 int     `json:"n"`
		ClientWritesPerOp float64 `json:"client_writes_per_op"`
		ServerWritesPerOp float64 `json:"server_writes_per_op"`
		ServerReadsPerOp  float64 `json:"server_reads_per_op"`
	} `json:"batch"`
	Chaos []struct {
		Transport string  `json:"transport"`
		Conns     int     `json:"conns"`
		Calls     int     `json:"calls"`
		Loss      float64 `json:"loss"`
		Seed      int64   `json:"seed"`
		Acked     int64   `json:"acked"`
		Errors    int64   `json:"errors"`
	} `json:"chaos"`
}

// series flattens every measurement into name -> value with "lower is
// better" normalized across families (throughput inverts into ns/call).
// Live-spec specialization modes are expressed as ratios to the generic
// mode of the same transport and N within the same file — the modes of
// a point are measured back-to-back, so the ratio cancels host drift
// that the raw ns/call cannot. The generic yardstick itself is kept
// raw under live-spec-abs. A mode whose generic partner is missing
// falls back to raw ns/call under live-spec-abs too, so it stays gated
// rather than silently vanishing.
func (r *report) series() map[string]float64 {
	out := make(map[string]float64)
	generic := make(map[string]float64)
	for _, s := range r.LiveSpec {
		if s.Mode == "generic" {
			generic[fmt.Sprintf("%s/N=%d", s.Transport, s.N)] = s.NsPerCall
		}
	}
	for _, s := range r.LiveSpec {
		if s.Mode == "generic" {
			out[fmt.Sprintf("live-spec-abs/%s/generic/N=%d", s.Transport, s.N)] = s.NsPerCall
			continue
		}
		if g := generic[fmt.Sprintf("%s/N=%d", s.Transport, s.N)]; g > 0 {
			out[fmt.Sprintf("live-spec/%s/%s/N=%d/vs-generic", s.Transport, s.Mode, s.N)] = s.NsPerCall / g
		} else {
			out[fmt.Sprintf("live-spec-abs/%s/%s/N=%d", s.Transport, s.Mode, s.N)] = s.NsPerCall
		}
	}
	hpGeneric := make(map[string]float64)
	for _, h := range r.HeaderPath {
		if h.Impl == "generic" {
			hpGeneric[h.Series] = h.NsPerOp
		}
	}
	for _, h := range r.HeaderPath {
		if h.Impl == "generic" {
			out[fmt.Sprintf("header-path-abs/%s/generic", h.Series)] = h.NsPerOp
			continue
		}
		if g := hpGeneric[h.Series]; g > 0 {
			out[fmt.Sprintf("header-path/%s/%s/vs-generic", h.Series, h.Impl)] = h.NsPerOp / g
		} else {
			out[fmt.Sprintf("header-path-abs/%s/%s", h.Series, h.Impl)] = h.NsPerOp
		}
	}
	for _, t := range r.Throughput {
		if t.CallsPerSec > 0 {
			out[fmt.Sprintf("throughput/%s/c%d_d%d/N=%d", t.Transport, t.Clients, t.Depth, t.N)] =
				1e9 / t.CallsPerSec
		}
	}
	for _, o := range r.OpenLoop {
		if o.P99Us > 0 {
			out[fmt.Sprintf("open-loop/%s/c%d_d%d/r%.0f/shards=%d/p99",
				o.Transport, o.Conns, o.Depth, o.OfferedRate, o.Shards)] = o.P99Us * 1e3
		}
	}
	for _, b := range r.Batch {
		base := fmt.Sprintf("batch/%s/%s/c%d_d%d/N=%d", b.Transport, b.Mode, b.Clients, b.Depth, b.N)
		out[base+"/cliW_op"] = b.ClientWritesPerOp
		out[base+"/srvW_op"] = b.ServerWritesPerOp
		out[base+"/srvR_op"] = b.ServerReadsPerOp
	}
	// Chaos goodput under randomized faults is not a stable timing
	// series, so the family is deliberately absent from
	// defaultThresholds: the fraction of unacknowledged calls shows up
	// in the delta table (lower is better) but never trips -gate. The
	// structural assertions — machinery fired, calls landed — live in
	// the chaos test suite, not here.
	for _, c := range r.Chaos {
		if c.Calls > 0 {
			out[fmt.Sprintf("chaos/%s/c%d/loss=%.2f/seed=%d/unacked_frac",
				c.Transport, c.Conns, c.Loss, c.Seed)] =
				float64(int64(c.Calls)-c.Acked) / float64(c.Calls)
		}
	}
	return out
}

func load(path string) (*report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// familyOf maps a series name to its threshold family: the segment
// before the first slash.
func familyOf(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[:i]
	}
	return name
}

// median of a non-empty slice; averages the middle pair on even counts.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// medianSeries folds the repetition files into one series map holding
// the per-series median. A series only counts as present in NEW if at
// least one repetition measured it.
func medianSeries(reps []map[string]float64) map[string]float64 {
	vals := make(map[string][]float64)
	for _, r := range reps {
		for k, v := range r {
			vals[k] = append(vals[k], v)
		}
	}
	out := make(map[string]float64, len(vals))
	for k, v := range vals {
		out[k] = median(v)
	}
	return out
}

// parseThresholds folds "fam=pct,fam=pct" overrides (percent, so
// "live-spec=20" allows +20%) into a copy of the defaults.
func parseThresholds(spec string) (map[string]float64, error) {
	out := make(map[string]float64, len(defaultThresholds))
	for k, v := range defaultThresholds {
		out[k] = v
	}
	if spec == "" {
		return out, nil
	}
	for _, part := range strings.Split(spec, ",") {
		fam, pct, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("threshold %q: want fam=pct", part)
		}
		f, err := strconv.ParseFloat(pct, 64)
		if err != nil || f < 0 {
			return nil, fmt.Errorf("threshold %q: bad percentage", part)
		}
		out[fam] = f / 100
	}
	return out, nil
}

func main() {
	gate := flag.Bool("gate", false, "fail (exit 1) when any series' median regresses past its family threshold")
	thresholdSpec := flag.String("threshold", "", "per-family threshold overrides as fam=pct,... (e.g. live-spec=20,batch=50)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-gate] [-threshold fam=pct,...] OLD.json NEW.json [NEW.json ...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 2 {
		flag.Usage()
		os.Exit(2)
	}
	thresholds, err := parseThresholds(*thresholdSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	oldRep, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	var newReps []map[string]float64
	var newStamp string
	for _, path := range flag.Args()[1:] {
		r, err := load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		newReps = append(newReps, r.series())
		newStamp = r.GeneratedAt
	}

	oldS, newS := oldRep.series(), medianSeries(newReps)
	var names []string
	for k := range oldS {
		names = append(names, k)
	}
	for k := range newS {
		if _, ok := oldS[k]; !ok {
			names = append(names, k)
		}
	}
	sort.Strings(names)

	reps := len(newReps)
	fmt.Printf("benchdiff: %s (%s)  ->  %d rep(s) ending %s (%s)\n",
		flag.Arg(0), oldRep.GeneratedAt, reps, flag.Arg(flag.NArg()-1), newStamp)
	if reps > 1 {
		fmt.Printf("new column is the median of %d whole-grid passes\n", reps)
	}
	fmt.Printf("%-52s %12s %12s %9s\n", "series (lower is better)", "old", "new", "delta")
	var regressions []string
	for _, name := range names {
		o, haveOld := oldS[name]
		n, haveNew := newS[name]
		switch {
		case !haveOld:
			fmt.Printf("%-52s %12s %12.4g %9s\n", name, "-", n, "added")
		case !haveNew:
			fmt.Printf("%-52s %12.4g %12s %9s\n", name, o, "-", "removed")
		default:
			delta, mark := "n/a", ""
			if o > 0 {
				frac := (n - o) / o
				delta = fmt.Sprintf("%+.1f%%", frac*100)
				if thr, ok := thresholds[familyOf(name)]; ok && frac > thr {
					mark = "  REGRESSED"
					regressions = append(regressions,
						fmt.Sprintf("%s: %.4g -> %.4g (%s, threshold +%.0f%%)", name, o, n, delta, thr*100))
				}
			}
			fmt.Printf("%-52s %12.4g %12.4g %9s%s\n", name, o, n, delta, mark)
		}
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d series regressed past threshold:\n", len(regressions))
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		if *gate {
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "benchdiff: not gating (run with -gate to fail)")
	}
}
