// Command tempo specializes a mini-C program: the CLI face of the
// internal/tempo partial evaluator.
//
// Usage:
//
//	tempo -entry f -params dyn,static:5 file.mc
//	tempo -lib -entry xdr_pair -params xdr:encode:64,dyn -bta
//
// The -params list declares one binding time per entry parameter:
//
//	dyn              dynamic (kept as a residual parameter)
//	static:<int>     known integer, folded away
//	fn:<name>        known function value
//	xdr:<op>:<n>     pointer to the Sun RPC XDR handle with the paper's
//	                 division (op ∈ encode|decode|free, n = buffer bytes);
//	                 with -lib only
//
// -lib loads the embedded Sun RPC marshaling library instead of a file;
// -bta prints the two-level (binding-time annotated) view of every
// function the division reaches; otherwise the residual program prints.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"specrpc/internal/minic"
	rpclib "specrpc/internal/minic/lib"
	"specrpc/internal/tempo"
	"specrpc/internal/tempo/bta"
)

func main() {
	entry := flag.String("entry", "", "function to specialize")
	params := flag.String("params", "", "comma-separated binding times (see -help)")
	useLib := flag.Bool("lib", false, "specialize the embedded Sun RPC library")
	showBTA := flag.Bool("bta", false, "print the binding-time division instead of the residue")
	unroll := flag.Int("unroll", 0, "loop unrolling limit (0 = unlimited)")
	flag.Parse()

	if err := run(*entry, *params, *useLib, *showBTA, *unroll, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "tempo:", err)
		os.Exit(1)
	}
}

func run(entry, params string, useLib, showBTA bool, unroll int, args []string) error {
	if entry == "" {
		return fmt.Errorf("-entry is required")
	}
	var prog *minic.Program
	var err error
	switch {
	case useLib:
		prog, err = rpclib.Program()
		if err != nil {
			return err
		}
	case len(args) == 1:
		src, rerr := os.ReadFile(args[0])
		if rerr != nil {
			return rerr
		}
		if prog, err = minic.Parse(string(src)); err != nil {
			return err
		}
		if err = minic.Check(prog); err != nil {
			return err
		}
	default:
		return fmt.Errorf("need exactly one input file (or -lib)")
	}

	def, ok := prog.Funcs[entry]
	if !ok {
		return fmt.Errorf("no function %s", entry)
	}
	specs, err := parseParams(params, useLib)
	if err != nil {
		return err
	}
	if len(specs) != len(def.Params) {
		return fmt.Errorf("%s has %d parameters, %d binding times given",
			entry, len(def.Params), len(specs))
	}
	ctx := &tempo.Context{Entry: entry, Params: specs, UnrollLimit: unroll}

	if showBTA {
		div, _, err := bta.Analyze(prog, ctx)
		if err != nil {
			return err
		}
		static, dynamic := div.Summary()
		fmt.Printf("/* binding-time division: %d static, %d dynamic observations */\n", static, dynamic)
		fmt.Printf("/* «dynamic» code is residualized; ⟦dead⟧ code is unreachable under this division */\n\n")
		names := make([]string, 0, len(prog.Funcs))
		for name := range prog.Funcs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if !reached(div, prog.Funcs[name]) {
				continue
			}
			out, err := div.Render(prog, name)
			if err != nil {
				return err
			}
			fmt.Print(out)
		}
		return nil
	}

	res, err := tempo.Specialize(prog, ctx)
	if err != nil {
		return err
	}
	if res.StaticReturn != nil {
		fmt.Printf("/* static return: %s always yields %d; callers may fold their tests (section 3.3) */\n\n",
			res.Entry, *res.StaticReturn)
	}
	fmt.Print(minic.PrintProgram(res.Program))
	return nil
}

// reached reports whether the division observed anything in f's body.
func reached(div *bta.Division, f *minic.FuncDef) bool {
	found := false
	var walkE func(e minic.Expr)
	walkE = func(e minic.Expr) {
		if e == nil || found {
			return
		}
		if div.Observed(e) {
			found = true
			return
		}
		switch n := e.(type) {
		case *minic.Unary:
			walkE(n.X)
		case *minic.Binary:
			walkE(n.X)
			walkE(n.Y)
		case *minic.Assign:
			walkE(n.LHS)
			walkE(n.RHS)
		case *minic.Call:
			walkE(n.Fun)
			for _, a := range n.Args {
				walkE(a)
			}
		case *minic.Field:
			walkE(n.X)
		case *minic.Index:
			walkE(n.X)
			walkE(n.I)
		}
	}
	var walk func(s minic.Stmt)
	walk = func(s minic.Stmt) {
		if s == nil || found {
			return
		}
		if div.Observed(s) {
			found = true
			return
		}
		switch n := s.(type) {
		case *minic.ExprStmt:
			walkE(n.E)
		case *minic.VarDecl:
			walkE(n.Init)
		case *minic.If:
			walkE(n.Cond)
			walk(n.Then)
			walk(n.Else)
		case *minic.While:
			walkE(n.Cond)
			walk(n.Body)
		case *minic.For:
			walk(n.Init)
			walkE(n.Cond)
			walk(n.Post)
			walk(n.Body)
		case *minic.Return:
			walkE(n.E)
		case *minic.Block:
			for _, st := range n.Stmts {
				walk(st)
			}
		}
	}
	walk(f.Body)
	return found
}

func parseParams(s string, libLoaded bool) ([]tempo.ParamSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var specs []tempo.ParamSpec
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		switch fields[0] {
		case "dyn", "dynamic":
			specs = append(specs, tempo.Dynamic())
		case "static":
			if len(fields) != 2 {
				return nil, fmt.Errorf("static needs a value: %q", part)
			}
			v, err := strconv.ParseInt(fields[1], 0, 64)
			if err != nil {
				return nil, fmt.Errorf("bad static value %q: %v", fields[1], err)
			}
			specs = append(specs, tempo.StaticInt(v))
		case "fn":
			if len(fields) != 2 {
				return nil, fmt.Errorf("fn needs a name: %q", part)
			}
			specs = append(specs, tempo.StaticFunc(fields[1]))
		case "xdr":
			if !libLoaded {
				return nil, fmt.Errorf("xdr:<op>:<n> requires -lib")
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("xdr needs op and size: %q", part)
			}
			var op int
			switch fields[1] {
			case "encode":
				op = rpclib.OpEncode
			case "decode":
				op = rpclib.OpDecode
			case "free":
				op = rpclib.OpFree
			default:
				return nil, fmt.Errorf("unknown xdr op %q", fields[1])
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("bad buffer size %q", fields[2])
			}
			specs = append(specs, tempo.Object(rpclib.XDRSpec(op, n)))
		default:
			return nil, fmt.Errorf("unknown binding time %q", part)
		}
	}
	return specs, nil
}
