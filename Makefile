# Mirrors .github/workflows/ci.yml: `make ci` runs exactly what CI runs.

GO ?= go

.PHONY: all build test race bench fmt vet ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke run: one iteration of every benchmark, with allocation
# counts, matching the CI step. For real numbers drop -benchtime=1x.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x -benchmem ./...

fmt:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: fmt vet build race bench
