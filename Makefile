# Mirrors .github/workflows/ci.yml: `make ci` runs exactly what CI runs.

GO ?= go

.PHONY: all build xcompile test race bench bench-json bench-diff batch-smoke chaos chaos-smoke fuzz genstubs fmt vet analyze ci

all: build

build:
	$(GO) build ./...

# Cross-compile check for the non-Linux build of the batched-I/O layer:
# the sendmmsg/recvmmsg files are gated to linux/amd64+arm64, so a darwin
# build proves the portable fallback actually compiles without them.
xcompile:
	GOOS=darwin GOARCH=arm64 $(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke run: one iteration of every benchmark, with allocation
# counts, matching the CI step. For real numbers drop -benchtime=1x.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x -benchmem ./...

# Machine-readable live benchmark: the generic/specialized/chunked codec
# comparison over netsim, UDP, and TCP, the header-path series, the
# open-loop tail-latency grid (sharded call tracking vs the single-lock
# shards=1 baseline), and the batched-vs-unbatched syscalls/op series,
# written to BENCH_live.json so the perf trajectory is tracked from PR
# to PR. Each refresh is also archived under bench/history/ keyed by
# date and commit, so the trajectory is a series of snapshots instead of
# one overwritten file.
bench-json:
	$(GO) run ./cmd/sunbench -live-spec -header-path -openloop -batch -chaos \
		-calls 2000 -live-spec-reps 3 -clients 4 -depth 16 -rate 4000 -openloop-dur 1s -openloop-reps 5 \
		-chaos-calls 400 -chaos-loss 0.15 -seed 42 \
		-json BENCH_live.json
	mkdir -p bench/history
	cp BENCH_live.json bench/history/$$(date +%Y%m%d)-$$(git rev-parse --short HEAD).json

# Noise-aware perf gate: re-measure the quick live series (netsim +
# header path, socket-free so runner network jitter stays out) three
# times — each rep a complete pass over the grid, the open-loop
# harness's interleaving generalized to the diff, so host drift hits
# every series alike — then compare the per-series medians against the
# committed baseline under per-family thresholds. Specialization series
# are compared as ratios to the same-pass generic yardstick (benchdiff
# does this on both sides), which cancels the host-speed wander between
# the baseline run and now; the raw yardsticks get wide catastrophe
# thresholds of their own. The baseline's live-spec points are
# themselves medians (bench-json passes -live-spec-reps 3), so both
# sides of the comparison carry the same estimator and one lucky pass
# can't poison a point. A regression in any
# series now fails the build instead of scrolling past in a non-fatal
# report. Comparing against a baseline from different hardware needs
# wider thresholds: benchdiff -threshold fam=pct,... overrides.
bench-diff:
	for i in 1 2 3; do \
		$(GO) run ./cmd/sunbench -live-spec -transport sim -calls 2000 -header-path -json bench_head$$i.json >/dev/null || exit 1; \
	done
	$(GO) run ./cmd/benchdiff -gate BENCH_live.json bench_head1.json bench_head2.json bench_head3.json; \
		status=$$?; rm -f bench_head1.json bench_head2.json bench_head3.json; exit $$status

# Chaos suite: the seeded fault-injection tests (netsim link faults,
# faultconn over real sockets) under the race detector — at-most-once
# accounting, reply-cache duplicate suppression, reconnect across
# injected resets, partition/heal convergence, cancellation leak checks.
# Seeded schedules make failures replayable: a seed is part of the test,
# not the environment.
chaos:
	$(GO) test -race -run 'TestChaos' ./internal/integration ./internal/bench
	$(GO) test -race ./internal/faultconn ./internal/netsim

# Quick chaos goodput run over all three transports: proves the retry,
# reconnect, and reply-cache counters fire outside the test harness too.
chaos-smoke:
	$(GO) run ./cmd/sunbench -chaos -transport sim,udp,tcp -clients 2 -chaos-calls 200 -seed 42

# Quick counted run of the batch-mode harness over both kernel
# transports: exercises the writev/coalesce path, the ONC batched-call
# path, and (where the kernel offers it) sendmmsg/recvmmsg.
batch-smoke:
	$(GO) run ./cmd/sunbench -batch -transport udp,tcp -clients 2 -depth 8 -calls 2000

# Short native-fuzz smoke over the decode boundary (the record-marking
# reader and the RPC call-header decoder, fed raw bytes), the header
# template differentials (template bytes == generic marshaler bytes),
# the call-body accept-set differential (fixed-offset parse == header
# walker), the whole-call fusion differentials (fused bytes ==
# template-copy + plan bytes), and the derivation differential
# (tempo-derived plan == hand-built plan, bytes and errors alike).
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzRecRead -fuzztime=10s ./internal/xdr
	$(GO) test -run=NONE -fuzz=FuzzDecodeCallHeader -fuzztime=10s ./internal/rpcmsg
	$(GO) test -run=NONE -fuzz=FuzzCallTemplate -fuzztime=10s ./internal/rpcmsg
	$(GO) test -run=NONE -fuzz='FuzzReplyTemplate$$' -fuzztime=10s ./internal/rpcmsg
	$(GO) test -run=NONE -fuzz=FuzzAcceptedSuccessBody -fuzztime=10s ./internal/rpcmsg
	$(GO) test -run=NONE -fuzz='FuzzCallBody$$' -fuzztime=10s ./internal/rpcmsg
	$(GO) test -run=NONE -fuzz=FuzzCallPlanFused -fuzztime=10s ./internal/wire
	$(GO) test -run=NONE -fuzz=FuzzReplyPlanFused -fuzztime=10s ./internal/wire
	$(GO) test -run=NONE -fuzz=FuzzDerivedPlan -fuzztime=10s ./internal/wire
	$(GO) test -run=NONE -fuzz=FuzzCompiledCodec -fuzztime=10s ./internal/compiledtest

# Build the rpcgen-generated stubs as part of the pipeline: generate
# from the richest testdata spec into a temp package — once plan-only,
# once with -compiled — and vet/build both, so codegen regressions fail
# the build instead of only the unit tests. The compiled pass also runs
# the three-engine differential test against the freshly emitted codecs
# (internal/compiledtest's test files, re-packaged), proving the emitted
# source is not merely compilable but byte-identical to the
# interpreters it replaces — and that the tempo-derived plans match the
# hand-built ones for every freshly generated derivable type.
genstubs:
	rm -rf ci_genstubs
	mkdir -p ci_genstubs
	$(GO) run ./cmd/rpcgen -pkg ci_genstubs -go ci_genstubs/stubs.go internal/rpcgen/testdata/rich.x
	$(GO) vet ./ci_genstubs
	$(GO) build ./ci_genstubs
	$(GO) run ./cmd/rpcgen -compiled -pkg ci_genstubs -go ci_genstubs/stubs.go internal/rpcgen/testdata/rich.x
	sed 's/^package compiledtest$$/package ci_genstubs/' internal/compiledtest/compiled_test.go > ci_genstubs/compiled_test.go
	sed 's/^package compiledtest$$/package ci_genstubs/' internal/compiledtest/derive_test.go > ci_genstubs/derive_test.go
	$(GO) vet ./ci_genstubs
	$(GO) test ./ci_genstubs
	rm -rf ci_genstubs

# Repo-invariant analyzers (cmd/specvet) over the whole tree via the
# go vet vettool protocol, so test files are covered too. Any finding
# fails; justified exceptions carry a //specvet:ok <analyzer> line.
analyze:
	$(GO) build -o .specvet.bin ./cmd/specvet
	$(GO) vet -vettool=$(CURDIR)/.specvet.bin ./...
	rm -f .specvet.bin

fmt:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: fmt vet analyze build xcompile race bench genstubs bench-diff batch-smoke chaos chaos-smoke fuzz
