# Mirrors .github/workflows/ci.yml: `make ci` runs exactly what CI runs.

GO ?= go

.PHONY: all build xcompile test race bench bench-json bench-diff batch-smoke fuzz genstubs fmt vet ci

all: build

build:
	$(GO) build ./...

# Cross-compile check for the non-Linux build of the batched-I/O layer:
# the sendmmsg/recvmmsg files are gated to linux/amd64+arm64, so a darwin
# build proves the portable fallback actually compiles without them.
xcompile:
	GOOS=darwin GOARCH=arm64 $(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke run: one iteration of every benchmark, with allocation
# counts, matching the CI step. For real numbers drop -benchtime=1x.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x -benchmem ./...

# Machine-readable live benchmark: the generic/specialized/chunked codec
# comparison over netsim, UDP, and TCP, the header-path series, the
# open-loop tail-latency grid (sharded call tracking vs the single-lock
# shards=1 baseline), and the batched-vs-unbatched syscalls/op series,
# written to BENCH_live.json so the perf trajectory is tracked from PR
# to PR. Each refresh is also archived under bench/history/ keyed by
# date and commit, so the trajectory is a series of snapshots instead of
# one overwritten file.
bench-json:
	$(GO) run ./cmd/sunbench -live-spec -header-path -openloop -batch \
		-calls 2000 -clients 4 -depth 16 -rate 4000 -openloop-dur 1s -openloop-reps 5 \
		-json BENCH_live.json
	mkdir -p bench/history
	cp BENCH_live.json bench/history/$$(date +%Y%m%d)-$$(git rev-parse --short HEAD).json

# Non-fatal perf report: re-measure a quick live series (netsim only, so
# it is fast and socket-free) and diff it against the committed
# baseline. Numbers on shared CI runners are noisy — the report informs,
# it never gates (the leading `-` keeps make going on any failure).
bench-diff:
	$(GO) run ./cmd/sunbench -live-spec -transport sim -calls 300 -header-path -json bench_head.json >/dev/null
	-$(GO) run ./cmd/benchdiff BENCH_live.json bench_head.json
	rm -f bench_head.json

# Quick counted run of the batch-mode harness over both kernel
# transports: exercises the writev/coalesce path, the ONC batched-call
# path, and (where the kernel offers it) sendmmsg/recvmmsg.
batch-smoke:
	$(GO) run ./cmd/sunbench -batch -transport udp,tcp -clients 2 -depth 8 -calls 2000

# Short native-fuzz smoke over the decode boundary (the record-marking
# reader and the RPC call-header decoder, fed raw bytes), the header
# template differentials (template bytes == generic marshaler bytes),
# the call-body accept-set differential (fixed-offset parse == header
# walker), and the whole-call fusion differentials (fused bytes ==
# template-copy + plan bytes).
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzRecRead -fuzztime=10s ./internal/xdr
	$(GO) test -run=NONE -fuzz=FuzzDecodeCallHeader -fuzztime=10s ./internal/rpcmsg
	$(GO) test -run=NONE -fuzz=FuzzCallTemplate -fuzztime=10s ./internal/rpcmsg
	$(GO) test -run=NONE -fuzz='FuzzReplyTemplate$$' -fuzztime=10s ./internal/rpcmsg
	$(GO) test -run=NONE -fuzz=FuzzAcceptedSuccessBody -fuzztime=10s ./internal/rpcmsg
	$(GO) test -run=NONE -fuzz='FuzzCallBody$$' -fuzztime=10s ./internal/rpcmsg
	$(GO) test -run=NONE -fuzz=FuzzCallPlanFused -fuzztime=10s ./internal/wire
	$(GO) test -run=NONE -fuzz=FuzzReplyPlanFused -fuzztime=10s ./internal/wire

# Build the rpcgen-generated stubs as part of the pipeline: generate from
# the richest testdata spec into a temp package and vet it, so codegen
# regressions fail the build instead of only the unit tests.
genstubs:
	rm -rf ci_genstubs
	mkdir -p ci_genstubs
	$(GO) run ./cmd/rpcgen -pkg ci_genstubs -go ci_genstubs/stubs.go internal/rpcgen/testdata/rich.x
	$(GO) vet ./ci_genstubs
	$(GO) build ./ci_genstubs
	rm -rf ci_genstubs

fmt:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: fmt vet build xcompile race bench genstubs bench-diff batch-smoke fuzz
