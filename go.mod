module specrpc

go 1.22
