// Package rpcgen implements the Sun RPC stub compiler: it parses the XDR
// interface language of RFC 4506 / RFC 1057 (.x files, the input of the
// original rpcgen) and generates
//
//   - Go declarations and marshaling stubs over internal/xdr, plus typed
//     client call wrappers and server registration helpers; and
//   - mini-C marshaling routines for the fixed-shape subset, which feed
//     internal/tempo the same way rpcgen's C output fed Tempo.
package rpcgen

import "fmt"

// TypeKind enumerates IDL type shapes.
type TypeKind int

// Type kinds.
const (
	KindInt TypeKind = iota + 1 // int / unsigned int / enum-valued
	KindUint
	KindHyper
	KindUhyper
	KindBool
	KindFloat
	KindDouble
	KindString  // string<bound>
	KindOpaqueF // opaque[n] fixed
	KindOpaqueV // opaque<bound> variable
	KindNamed   // reference to a declared struct/enum/typedef
	KindVoid
)

// TypeRef is a use of a type, possibly wrapped in array/pointer shape.
type TypeRef struct {
	Kind  TypeKind
	Name  string // for KindNamed
	Bound int    // string/opaque bound or array length; 0 = unbounded

	// Shape modifiers on the declaration that uses this type.
	FixedArray int  // > 0: T name[n]
	VarArray   bool // T name<bound>; Bound holds the limit (0 = none)
	Optional   bool // T* name
}

// Field is a struct member or procedure argument.
type Field struct {
	Name string
	Type TypeRef
}

// StructDef is a struct declaration.
type StructDef struct {
	Name   string
	Fields []Field
}

// EnumDef is an enum declaration.
type EnumDef struct {
	Name   string
	Consts []EnumConst
}

// EnumConst is one enumerator.
type EnumConst struct {
	Name  string
	Value int64
}

// TypedefDef aliases a (possibly shaped) type.
type TypedefDef struct {
	Name string
	Type TypeRef
}

// UnionArm is one case of a discriminated union.
type UnionArm struct {
	CaseValues []string // constant names or literals; empty = default
	Field      *Field   // nil for void arms
}

// UnionDef is a discriminated union declaration.
type UnionDef struct {
	Name         string
	Discriminant Field
	Arms         []UnionArm
}

// ConstDef is a named constant.
type ConstDef struct {
	Name  string
	Value int64
}

// ProcDef is one remote procedure.
type ProcDef struct {
	Name   string
	Num    uint32
	Arg    TypeRef
	Result TypeRef
}

// VersionDef is one program version.
type VersionDef struct {
	Name  string
	Num   uint32
	Procs []ProcDef
}

// ProgramDef is an RPC program declaration.
type ProgramDef struct {
	Name     string
	Num      uint32
	Versions []VersionDef
}

// Spec is a parsed .x file.
type Spec struct {
	Consts   []ConstDef
	Enums    []EnumDef
	Structs  []StructDef
	Typedefs []TypedefDef
	Unions   []UnionDef
	Programs []ProgramDef

	constVal map[string]int64
	typeDecl map[string]string // name -> "struct"/"enum"/"typedef"/"union"
}

// LookupConst resolves a constant or enumerator name.
func (s *Spec) LookupConst(name string) (int64, bool) {
	v, ok := s.constVal[name]
	return v, ok
}

// declKind reports what sort of declaration name is.
func (s *Spec) declKind(name string) (string, bool) {
	k, ok := s.typeDecl[name]
	return k, ok
}

func (s *Spec) addDecl(name, kind string) error {
	if s.typeDecl == nil {
		s.typeDecl = make(map[string]string)
	}
	if prev, dup := s.typeDecl[name]; dup {
		return fmt.Errorf("rpcgen: %s redeclared (was %s)", name, prev)
	}
	s.typeDecl[name] = kind
	return nil
}

func (s *Spec) addConst(name string, v int64) error {
	if s.constVal == nil {
		s.constVal = make(map[string]int64)
	}
	if _, dup := s.constVal[name]; dup {
		return fmt.Errorf("rpcgen: constant %s redeclared", name)
	}
	s.constVal[name] = v
	return nil
}
