package rpcgen

import (
	_ "embed"
	goparser "go/parser"
	"go/token"
	"strings"
	"testing"

	"specrpc/internal/minic"
	rpclib "specrpc/internal/minic/lib"
)

const rminX = `
/* The rmin service of the paper's running example. */
const RMIN_MAX = 64;

struct pair {
    int int1;
    int int2;
};

program RMIN_PROG {
    version RMIN_VERS {
        int RMIN(pair) = 1;
    } = 1;
} = 0x20000099;
`

// richX is the full-surface spec shared with CI's genstubs step, so the
// unit tests and the pipeline always exercise the same constructs.
//
//go:embed testdata/rich.x
var richX string

func TestParseRmin(t *testing.T) {
	spec, err := Parse(rminX)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Structs) != 1 || spec.Structs[0].Name != "pair" {
		t.Fatalf("structs: %+v", spec.Structs)
	}
	if len(spec.Programs) != 1 {
		t.Fatal("missing program")
	}
	p := spec.Programs[0]
	if p.Num != 0x20000099 || p.Versions[0].Num != 1 {
		t.Fatalf("program numbers: %+v", p)
	}
	proc := p.Versions[0].Procs[0]
	if proc.Name != "RMIN" || proc.Num != 1 || proc.Arg.Name != "pair" {
		t.Fatalf("proc: %+v", proc)
	}
	if v, ok := spec.LookupConst("RMIN_MAX"); !ok || v != 64 {
		t.Fatalf("const RMIN_MAX = %d, %v", v, ok)
	}
}

func TestParseRich(t *testing.T) {
	spec, err := Parse(richX)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Enums) != 1 || len(spec.Typedefs) != 3 || len(spec.Unions) != 1 {
		t.Fatalf("decl counts: enums=%d typedefs=%d unions=%d",
			len(spec.Enums), len(spec.Typedefs), len(spec.Unions))
	}
	if v, _ := spec.LookupConst("BLUE"); v != 5 {
		t.Fatalf("BLUE = %d", v)
	}
	if v, _ := spec.LookupConst("GREEN"); v != 1 {
		t.Fatalf("GREEN = %d", v)
	}
	shape := spec.Structs[1]
	if shape.Name != "shape" {
		t.Fatalf("struct order: %+v", spec.Structs)
	}
	if shape.Fields[1].Type.FixedArray != 4 {
		t.Fatalf("corners: %+v", shape.Fields[1])
	}
	if !shape.Fields[3].Type.Optional {
		t.Fatalf("next not optional: %+v", shape.Fields[3])
	}
	u := spec.Unions[0]
	if len(u.Arms) != 3 || len(u.Arms[1].CaseValues) != 2 || u.Arms[2].Field != nil {
		t.Fatalf("union arms: %+v", u.Arms)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`struct s { int a }`,                    // missing semicolons
		`const X = ;`,                           // missing value
		`enum e { A = , B };`,                   // bad enumerator
		`union u switch int d) { };`,            // malformed switch
		`program P { version V { } };`,          // missing numbers
		`struct s { string name; };`,            // unbounded string
		`typedef int t<10>; typedef int t<20>;`, // redeclaration
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestGenerateGoParses(t *testing.T) {
	for name, src := range map[string]string{"rmin": rminX, "rich": richX} {
		spec, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out, err := GenerateGo(spec, GoOptions{Package: "stubs"})
		if err != nil {
			t.Fatalf("%s: generate: %v", name, err)
		}
		fset := token.NewFileSet()
		if _, err := goparser.ParseFile(fset, name+".go", out, goparser.AllErrors); err != nil {
			t.Fatalf("%s: generated Go does not parse: %v\n%s", name, err, out)
		}
		for _, want := range []string{"package stubs", "func ", "Marshal"} {
			if !strings.Contains(out, want) {
				t.Fatalf("%s: output missing %q", name, want)
			}
		}
	}
}

func TestGenerateGoClientAndServerShapes(t *testing.T) {
	spec, err := Parse(richX)
	if err != nil {
		t.Fatal(err)
	}
	out, err := GenerateGo(spec, GoOptions{Package: "stubs"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"type ShapeProgV2Client struct",
		"type ShapeProgV2Handler interface",
		"func RegisterShapeProgV2(",
		"ShapeProgV2ProcPing",
		"func (c *ShapeProgV2Client) Ping() error",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q\n%s", want, out)
		}
	}
}

// TestGenerateGoWirePlans checks that subset types compile to wire
// descriptions with plan-backed stubs, while unions, optional data, and
// void procedures keep the closure path.
func TestGenerateGoWirePlans(t *testing.T) {
	spec, err := Parse(richX)
	if err != nil {
		t.Fatal(err)
	}
	out, err := GenerateGo(spec, GoOptions{Package: "stubs"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		// point and the typedefs are in the wire subset.
		`wireTypePoint = wire.StructT("point",`,
		"planPoint = wire.MustPlan[Point](wireTypePoint, wire.Specialized)",
		"func (v *Point) Marshal(x *xdr.XDR) error { return planPoint.Marshal(x, v) }",
		"wireTypeNumbers = wire.VarArrayT(2000, wire.Int32T())",
		"wireTypeBlob = wire.OpaqueVarT(1024)",
		// SCALE(numbers) = numbers routes through the typed entry points.
		"rpcclient.CallTyped(c.C, ShapeProgV2ProcScale, planNumbers, arg, planNumbers, res)",
		"rpcserver.RegisterTyped(srv, ShapeProgV2Prog, ShapeProgV2Vers, ShapeProgV2ProcScale, planNumbers, planNumbers, h.Scale)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	for _, reject := range []string{
		// shape has an optional field, lookup_result is a union: neither
		// may get a wire description.
		"wireTypeShape",
		"wireTypeLookupResult",
		// PING is void/void and stays on the closure path.
		"CallTyped(c.C, ShapeProgV2ProcPing",
	} {
		if strings.Contains(out, reject) {
			t.Errorf("output wrongly contains %q", reject)
		}
	}
	if !strings.Contains(out, "func (c *ShapeProgV2Client) Ping() error") {
		t.Error("void proc lost its closure stub")
	}
}

func TestGenerateMiniC(t *testing.T) {
	spec, err := Parse(richX)
	if err != nil {
		t.Fatal(err)
	}
	out, skipped, err := GenerateMiniC(spec)
	if err != nil {
		t.Fatal(err)
	}
	// point is in the subset; shape is not (string, optional, hyper...).
	if !strings.Contains(out, "int xdr_point(struct xdrbuf* xdrs, struct point* objp)") {
		t.Fatalf("xdr_point missing:\n%s", out)
	}
	if strings.Contains(out, "xdr_shape") {
		t.Fatalf("xdr_shape should be skipped:\n%s", out)
	}
	if len(skipped) == 0 || !strings.Contains(strings.Join(skipped, ";"), "shape") {
		t.Fatalf("skip report: %v", skipped)
	}

	// The generated mini-C must parse and type-check when concatenated
	// with the runtime library it calls into.
	full := rpclib.Source + "\n" + out
	prog, err := minic.Parse(full)
	if err != nil {
		t.Fatalf("generated mini-C does not parse: %v\n%s", err, out)
	}
	if err := minic.Check(prog); err != nil {
		t.Fatalf("generated mini-C does not check: %v\n%s", err, out)
	}
}

func TestGenerateMiniCPairMatchesPaperShape(t *testing.T) {
	spec, err := Parse(rminX)
	if err != nil {
		t.Fatal(err)
	}
	out, skipped, err := GenerateMiniC(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("unexpected skips: %v", skipped)
	}
	// The generated stub has the paper's Figure 4 structure.
	for _, want := range []string{
		"int xdr_pair(struct xdrbuf* xdrs, struct pair* objp)",
		"if (!xdr_int(xdrs, &objp->int1)) { return 0; }",
		"if (!xdr_int(xdrs, &objp->int2)) { return 0; }",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestGoNameExport(t *testing.T) {
	tests := map[string]string{
		"rmin_prog": "RminProg", "int1": "Int1", "a_b_c": "ABC", "x": "X",
	}
	for in, want := range tests {
		if got := GoName(in); got != want {
			t.Errorf("GoName(%q) = %q, want %q", in, got, want)
		}
	}
}
