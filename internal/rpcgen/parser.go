package rpcgen

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads a .x interface definition.
func Parse(src string) (*Spec, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, spec: &Spec{}}
	for !p.at("") {
		if err := p.topDecl(); err != nil {
			return nil, err
		}
	}
	return p.spec, nil
}

// ---------------------------------------------------------------------------
// Lexing

type xtok struct {
	text string
	line int
}

func lex(src string) ([]xtok, error) {
	var toks []xtok
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("rpcgen: line %d: unterminated comment", line)
			}
			line += strings.Count(src[i:i+2+end+2], "\n")
			i += 2 + end + 2
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '%': // passthrough lines of the original rpcgen: skip
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case isIdentByte(c):
			start := i
			for i < len(src) && isIdentByte(src[i]) {
				i++
			}
			toks = append(toks, xtok{text: src[start:i], line: line})
		case strings.ContainsRune("{}()<>[];,*=:", rune(c)):
			toks = append(toks, xtok{text: string(c), line: line})
			i++
		case c == '-':
			toks = append(toks, xtok{text: "-", line: line})
			i++
		default:
			return nil, fmt.Errorf("rpcgen: line %d: unexpected character %q", line, string(c))
		}
	}
	toks = append(toks, xtok{text: "", line: line}) // EOF
	return toks, nil
}

func isIdentByte(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) ||
		(c >= '0' && c <= '9') || c == 'x' || c == 'X'
}

// ---------------------------------------------------------------------------
// Parsing

type parser struct {
	toks []xtok
	pos  int
	spec *Spec
}

func (p *parser) cur() xtok  { return p.toks[p.pos] }
func (p *parser) next() xtok { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(text string) bool { return p.cur().text == text }

func (p *parser) accept(text string) bool {
	if p.at(text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if p.accept(text) {
		return nil
	}
	return fmt.Errorf("rpcgen: line %d: expected %q, found %q", p.cur().line, text, p.cur().text)
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.text == "" || !isIdentStartRune(t.text) {
		return "", fmt.Errorf("rpcgen: line %d: expected identifier, found %q", t.line, t.text)
	}
	p.pos++
	return t.text, nil
}

func isIdentStartRune(s string) bool {
	r := rune(s[0])
	return r == '_' || unicode.IsLetter(r)
}

// value parses an integer literal or constant reference.
func (p *parser) value() (int64, error) {
	neg := p.accept("-")
	t := p.next()
	var v int64
	var err error
	switch {
	case strings.HasPrefix(t.text, "0x") || strings.HasPrefix(t.text, "0X"):
		v, err = strconv.ParseInt(t.text[2:], 16, 64)
	case t.text != "" && t.text[0] >= '0' && t.text[0] <= '9':
		v, err = strconv.ParseInt(t.text, 10, 64)
	default:
		c, ok := p.spec.LookupConst(t.text)
		if !ok {
			return 0, fmt.Errorf("rpcgen: line %d: unknown constant %q", t.line, t.text)
		}
		v = c
	}
	if err != nil {
		return 0, fmt.Errorf("rpcgen: line %d: bad number %q: %v", t.line, t.text, err)
	}
	if neg {
		v = -v
	}
	return v, nil
}

func (p *parser) topDecl() error {
	switch {
	case p.accept("const"):
		name, err := p.ident()
		if err != nil {
			return err
		}
		if err := p.expect("="); err != nil {
			return err
		}
		v, err := p.value()
		if err != nil {
			return err
		}
		if err := p.expect(";"); err != nil {
			return err
		}
		if err := p.spec.addConst(name, v); err != nil {
			return err
		}
		p.spec.Consts = append(p.spec.Consts, ConstDef{Name: name, Value: v})
		return nil
	case p.accept("enum"):
		return p.enumDecl()
	case p.accept("struct"):
		return p.structDecl()
	case p.accept("typedef"):
		return p.typedefDecl()
	case p.accept("union"):
		return p.unionDecl()
	case p.accept("program"):
		return p.programDecl()
	default:
		return fmt.Errorf("rpcgen: line %d: unexpected %q at top level", p.cur().line, p.cur().text)
	}
}

func (p *parser) enumDecl() error {
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect("{"); err != nil {
		return err
	}
	def := EnumDef{Name: name}
	next := int64(0)
	for {
		cname, err := p.ident()
		if err != nil {
			return err
		}
		v := next
		if p.accept("=") {
			v, err = p.value()
			if err != nil {
				return err
			}
		}
		next = v + 1
		if err := p.spec.addConst(cname, v); err != nil {
			return err
		}
		def.Consts = append(def.Consts, EnumConst{Name: cname, Value: v})
		if p.accept("}") {
			break
		}
		if err := p.expect(","); err != nil {
			return err
		}
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	if err := p.spec.addDecl(name, "enum"); err != nil {
		return err
	}
	p.spec.Enums = append(p.spec.Enums, def)
	return nil
}

// baseType parses a type name (no declarator shape).
func (p *parser) baseType() (TypeRef, error) {
	t := p.next()
	switch t.text {
	case "unsigned":
		// "unsigned int", "unsigned hyper", or bare "unsigned".
		if p.accept("int") {
			return TypeRef{Kind: KindUint}, nil
		}
		if p.accept("hyper") {
			return TypeRef{Kind: KindUhyper}, nil
		}
		return TypeRef{Kind: KindUint}, nil
	case "int", "long":
		return TypeRef{Kind: KindInt}, nil
	case "hyper":
		return TypeRef{Kind: KindHyper}, nil
	case "bool":
		return TypeRef{Kind: KindBool}, nil
	case "float":
		return TypeRef{Kind: KindFloat}, nil
	case "double":
		return TypeRef{Kind: KindDouble}, nil
	case "string":
		return TypeRef{Kind: KindString}, nil
	case "opaque":
		return TypeRef{Kind: KindOpaqueF}, nil // refined by declarator
	case "void":
		return TypeRef{Kind: KindVoid}, nil
	case "struct", "enum", "union":
		name, err := p.ident()
		if err != nil {
			return TypeRef{}, err
		}
		return TypeRef{Kind: KindNamed, Name: name}, nil
	default:
		if t.text == "" || !isIdentStartRune(t.text) {
			return TypeRef{}, fmt.Errorf("rpcgen: line %d: expected type, found %q", t.line, t.text)
		}
		return TypeRef{Kind: KindNamed, Name: t.text}, nil
	}
}

// declarator parses "name", "name[n]", "name<bound>", "*name" shapes,
// refining typ.
func (p *parser) declarator(typ TypeRef) (string, TypeRef, error) {
	if p.accept("*") {
		typ.Optional = true
	}
	name, err := p.ident()
	if err != nil {
		return "", typ, err
	}
	switch {
	case p.accept("["):
		n, err := p.value()
		if err != nil {
			return "", typ, err
		}
		if err := p.expect("]"); err != nil {
			return "", typ, err
		}
		if typ.Kind == KindOpaqueF {
			typ.Bound = int(n)
		} else {
			typ.FixedArray = int(n)
		}
	case p.accept("<"):
		bound := int64(0)
		if !p.at(">") {
			bound, err = p.value()
			if err != nil {
				return "", typ, err
			}
		}
		if err := p.expect(">"); err != nil {
			return "", typ, err
		}
		switch typ.Kind {
		case KindOpaqueF:
			typ.Kind = KindOpaqueV
			typ.Bound = int(bound)
		case KindString:
			typ.Bound = int(bound)
		default:
			typ.VarArray = true
			typ.Bound = int(bound)
		}
	default:
		if typ.Kind == KindString {
			return "", typ, fmt.Errorf("rpcgen: string %s needs a <bound>", name)
		}
	}
	return name, typ, nil
}

func (p *parser) fieldDecl() (Field, error) {
	typ, err := p.baseType()
	if err != nil {
		return Field{}, err
	}
	name, typ, err := p.declarator(typ)
	if err != nil {
		return Field{}, err
	}
	if err := p.expect(";"); err != nil {
		return Field{}, err
	}
	return Field{Name: name, Type: typ}, nil
}

func (p *parser) structDecl() error {
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect("{"); err != nil {
		return err
	}
	def := StructDef{Name: name}
	for !p.accept("}") {
		f, err := p.fieldDecl()
		if err != nil {
			return err
		}
		def.Fields = append(def.Fields, f)
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	if err := p.spec.addDecl(name, "struct"); err != nil {
		return err
	}
	p.spec.Structs = append(p.spec.Structs, def)
	return nil
}

func (p *parser) typedefDecl() error {
	typ, err := p.baseType()
	if err != nil {
		return err
	}
	name, typ, err := p.declarator(typ)
	if err != nil {
		return err
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	if err := p.spec.addDecl(name, "typedef"); err != nil {
		return err
	}
	p.spec.Typedefs = append(p.spec.Typedefs, TypedefDef{Name: name, Type: typ})
	return nil
}

func (p *parser) unionDecl() error {
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect("switch"); err != nil {
		return err
	}
	if err := p.expect("("); err != nil {
		return err
	}
	dtyp, err := p.baseType()
	if err != nil {
		return err
	}
	dname, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect(")"); err != nil {
		return err
	}
	if err := p.expect("{"); err != nil {
		return err
	}
	def := UnionDef{Name: name, Discriminant: Field{Name: dname, Type: dtyp}}
	for !p.accept("}") {
		var arm UnionArm
		switch {
		case p.accept("case"):
			v := p.next().text
			arm.CaseValues = append(arm.CaseValues, v)
			if err := p.expect(":"); err != nil {
				return err
			}
			for p.accept("case") {
				arm.CaseValues = append(arm.CaseValues, p.next().text)
				if err := p.expect(":"); err != nil {
					return err
				}
			}
		case p.accept("default"):
			if err := p.expect(":"); err != nil {
				return err
			}
		default:
			return fmt.Errorf("rpcgen: line %d: expected case/default in union", p.cur().line)
		}
		if p.accept("void") {
			if err := p.expect(";"); err != nil {
				return err
			}
		} else {
			f, err := p.fieldDecl()
			if err != nil {
				return err
			}
			arm.Field = &f
		}
		def.Arms = append(def.Arms, arm)
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	if err := p.spec.addDecl(name, "union"); err != nil {
		return err
	}
	p.spec.Unions = append(p.spec.Unions, def)
	return nil
}

func (p *parser) programDecl() error {
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect("{"); err != nil {
		return err
	}
	prog := ProgramDef{Name: name}
	for !p.accept("}") {
		if err := p.expect("version"); err != nil {
			return err
		}
		vname, err := p.ident()
		if err != nil {
			return err
		}
		if err := p.expect("{"); err != nil {
			return err
		}
		ver := VersionDef{Name: vname}
		for !p.accept("}") {
			// result-type PROC(arg-type) = num;
			rtyp, err := p.baseType()
			if err != nil {
				return err
			}
			pname, err := p.ident()
			if err != nil {
				return err
			}
			if err := p.expect("("); err != nil {
				return err
			}
			atyp := TypeRef{Kind: KindVoid}
			if !p.at(")") {
				atyp, err = p.baseType()
				if err != nil {
					return err
				}
			}
			if err := p.expect(")"); err != nil {
				return err
			}
			if err := p.expect("="); err != nil {
				return err
			}
			num, err := p.value()
			if err != nil {
				return err
			}
			if err := p.expect(";"); err != nil {
				return err
			}
			ver.Procs = append(ver.Procs, ProcDef{Name: pname, Num: uint32(num), Arg: atyp, Result: rtyp})
		}
		if err := p.expect("="); err != nil {
			return err
		}
		vnum, err := p.value()
		if err != nil {
			return err
		}
		if err := p.expect(";"); err != nil {
			return err
		}
		ver.Num = uint32(vnum)
		prog.Versions = append(prog.Versions, ver)
	}
	if err := p.expect("="); err != nil {
		return err
	}
	pnum, err := p.value()
	if err != nil {
		return err
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	prog.Num = uint32(pnum)
	if err := p.spec.addConst(name, pnum); err != nil {
		return err
	}
	p.spec.Programs = append(p.spec.Programs, prog)
	return nil
}
