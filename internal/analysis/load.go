package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	GoFiles    []string // absolute paths
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors collects type-checking problems; analysis proceeds on a
	// best-effort basis so one broken file doesn't hide all findings.
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load resolves patterns with the go tool, type-checks every matched
// (non-dependency) package against the compiler's export data, and
// returns them ready for analysis. It shells out to `go list -deps
// -export -json`, so the build cache does all the heavy lifting and no
// third-party loader is needed.
func Load(patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}

	exports := map[string]string{} // import path -> export file
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			p := lp
			targets = append(targets, &p)
		}
	}

	var pkgs []*Package
	for _, lp := range targets {
		pkg, err := typecheck(lp, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// CheckFiles type-checks one explicit file set (the vettool unit-checker
// path, where cmd/go supplies files and an import map directly).
func CheckFiles(importPath, dir string, goFiles []string, exports map[string]string) (*Package, error) {
	lp := &listedPackage{ImportPath: importPath, Dir: dir, GoFiles: goFiles}
	return typecheck(lp, exports)
}

func typecheck(lp *listedPackage, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	pkg := &Package{ImportPath: lp.ImportPath, Dir: lp.Dir, Fset: fset}
	for _, f := range lp.GoFiles {
		path := f
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, f)
		}
		pkg.GoFiles = append(pkg.GoFiles, path)
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", path, err)
		}
		pkg.Syntax = append(pkg.Syntax, file)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, pkg.Syntax, pkg.Info)
	if err != nil && tpkg == nil {
		return nil, fmt.Errorf("typecheck %s: %w", lp.ImportPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}
