// Package analysis is a minimal, dependency-free reimplementation of
// the go/analysis vocabulary (golang.org/x/tools/go/analysis) plus a
// package loader, sized for this repository's own linters. cmd/specvet
// builds its analyzer suite on it and runs either standalone over `go
// list` patterns or as a `go vet -vettool` unit checker.
//
// The shape mirrors the upstream API deliberately — Analyzer, Pass,
// Diagnostic, Reportf — so the analyzers read like stock go/analysis
// passes and could move onto x/tools unchanged if the dependency ever
// lands. Only the subset the suite needs is implemented: no facts, no
// analyzer-to-analyzer requires graph, no suggested fixes.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is the one-paragraph description shown by -help.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass is the analysis of a single package: the parsed and type-checked
// inputs plus the diagnostic sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled by the runner
}

// Run applies every analyzer to the loaded package and returns the
// diagnostics sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report: func(d Diagnostic) {
				d.Analyzer = a.Name
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
