package analyzers

import (
	"go/ast"
	"go/types"

	"specrpc/internal/analysis"
)

// AtomicStyle enforces the typed-atomics convention: counters and flags
// are declared as atomic.Uint64 / atomic.Bool / atomic.Pointer fields
// and touched through their methods. The sync/atomic free functions
// (atomic.AddUint64(&x, 1), atomic.LoadInt32(&f), ...) are rejected —
// they separate the "this word is atomic" fact from the declaration, so
// one forgotten call site silently reads a torn value. The repository
// converted wholesale to typed atomics in the sharding PR; this pass
// keeps new code from regressing.
var AtomicStyle = &analysis.Analyzer{
	Name: "atomicstyle",
	Doc:  "use typed sync/atomic values (atomic.Uint64 etc.), not the free functions over raw words",
	Run:  runAtomicStyle,
}

func runAtomicStyle(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		sup := suppressions(pass.Fset, file, "atomicstyle")
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "sync/atomic" {
				return true
			}
			// Method calls on the typed values resolve the receiver, not a
			// PkgName, so reaching here means a package-level free function.
			if suppressed(sup, pass.Fset, call.Pos()) {
				return true
			}
			pass.Reportf(call.Pos(), "sync/atomic free function atomic.%s; declare the word as a typed atomic (atomic.%s-style value) and use its methods",
				sel.Sel.Name, typedEquivalent(sel.Sel.Name))
			return true
		})
	}
	return nil
}

// typedEquivalent guesses the typed-atomic spelling to suggest from the
// free function's name suffix.
func typedEquivalent(fn string) string {
	for _, suffix := range []string{"Uint64", "Uint32", "Int64", "Int32", "Uintptr", "Pointer"} {
		if len(fn) > len(suffix) && fn[len(fn)-len(suffix):] == suffix {
			return suffix
		}
	}
	return "Uint64"
}
