package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"specrpc/internal/analysis"
)

// HotPath checks functions marked with a `//specrpc:hotpath` line in
// their doc comment: the zero-allocation promise the benchmark suite
// measures, enforced structurally. Inside a marked function the
// analyzer rejects the allocation-prone constructs that have actually
// bitten this codebase:
//
//   - calls into fmt, errors, or log (fmt.Errorf in a codec loop was a
//     real finding — every error formats even when none is returned);
//   - function literals (closure environments allocate);
//   - explicit conversions of concrete values to interface types
//     (boxing allocates).
//
// Marked functions may call other marked functions freely; the analyzer
// is per-construct, not interprocedural.
var HotPath = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocation-prone constructs in //specrpc:hotpath functions",
	Run:  runHotPath,
}

// hotMarker is the doc-comment line that opts a function in.
const hotMarker = "specrpc:hotpath"

// allocProneImports are the packages whose calls are rejected in hot
// functions.
var allocProneImports = map[string]bool{
	"fmt":    true,
	"errors": true,
	"log":    true,
}

func runHotPath(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		sup := suppressions(pass.Fset, file, "hotpath")
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotMarked(fd) {
				continue
			}
			checkHotBody(pass, fd, sup)
		}
	}
	return nil
}

func isHotMarked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == hotMarker {
			return true
		}
	}
	return false
}

func checkHotBody(pass *analysis.Pass, fd *ast.FuncDecl, sup map[int]bool) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			if !suppressed(sup, pass.Fset, e.Pos()) {
				pass.Reportf(e.Pos(), "closure in hotpath function %s (closure environments allocate)", name)
			}
		case *ast.CallExpr:
			if pkg, fn, ok := calleePackage(pass, e); ok && allocProneImports[pkg] {
				if !suppressed(sup, pass.Fset, e.Pos()) {
					pass.Reportf(e.Pos(), "%s.%s call in hotpath function %s (formats and allocates on every execution)", pkg, fn, name)
				}
				return true
			}
			checkInterfaceConversion(pass, e, name, sup)
		}
		return true
	})
}

// calleePackage resolves a call to (package path, function name) when
// the callee is a package-level function of another package.
func calleePackage(pass *analysis.Pass, call *ast.CallExpr) (string, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// checkInterfaceConversion reports explicit T(x) conversions where T is
// an interface and x a concrete value: boxing, which allocates.
func checkInterfaceConversion(pass *analysis.Pass, call *ast.CallExpr, name string, sup map[int]bool) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	if !types.IsInterface(tv.Type) {
		return
	}
	argT := pass.TypesInfo.Types[call.Args[0]].Type
	if argT == nil || types.IsInterface(argT) {
		return
	}
	if b, ok := argT.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if !suppressed(sup, pass.Fset, call.Pos()) {
		pass.Reportf(call.Pos(), "interface conversion %s(...) in hotpath function %s (boxing allocates)", tv.Type, name)
	}
}
