package analyzers_test

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"specrpc/internal/analysis"
	"specrpc/internal/analysis/analyzers"
)

// stdExports resolves export-data files for the std packages the test
// snippets import, once per test binary, via the same go-list channel
// the real loader uses.
var stdExports = sync.OnceValues(func() (map[string]string, error) {
	cmd := exec.Command("go", "list", "-deps", "-export", "-json",
		"fmt", "errors", "log", "sync", "sync/atomic", "unsafe")
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct {
			ImportPath string
			Export     string
		}
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
})

// check runs the full suite over one source snippet presented under the
// given import path and returns the findings as "line:col analyzer"
// strings.
func check(t *testing.T, importPath, src string) []string {
	t.Helper()
	exports, err := stdExports()
	if err != nil {
		t.Fatalf("resolving std export data: %v", err)
	}
	dir := t.TempDir()
	file := filepath.Join(dir, "x.go")
	if err := os.WriteFile(file, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.CheckFiles(importPath, dir, []string{file}, exports)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("snippet does not typecheck: %v", pkg.TypeErrors)
	}
	diags, err := analysis.Run(pkg, analyzers.All())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var got []string
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		got = append(got, strings.TrimPrefix(pos.String(), file+":")+" "+d.Analyzer)
	}
	return got
}

func wantFindings(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("findings = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestUnsafeConfineOutsideLayers(t *testing.T) {
	got := check(t, "specrpc/internal/client", `package client

import "unsafe"

type T struct{ a, b int32 }

// box is the permitted hand-off: a typed pointer into an opaque word.
func box(p *T) unsafe.Pointer { return unsafe.Pointer(p) }

// unbox reinterprets memory and must be confined.
func unbox(p unsafe.Pointer) *T { return (*T)(p) }

// arith builds a pointer from an integer.
func arith(p *T) unsafe.Pointer {
	return unsafe.Pointer(uintptr(unsafe.Pointer(p)) + 4)
}

// add uses the unsafe.Add family.
func add(p unsafe.Pointer) unsafe.Pointer { return unsafe.Add(p, 4) }
`)
	wantFindings(t, got,
		"11:42 unsafeconfine", // (*T)(p)
		"15:9 unsafeconfine",  // unsafe.Pointer(uintptr + 4)
		"15:24 unsafeconfine", // uintptr(unsafe.Pointer(p))
		"19:52 unsafeconfine", // unsafe.Add
	)
}

func TestUnsafeConfineInsideLayersExempt(t *testing.T) {
	got := check(t, "specrpc/internal/wire", `package wire

import "unsafe"

type T struct{ a int32 }

func unbox(p unsafe.Pointer) *T { return (*T)(p) }
func add(p unsafe.Pointer) unsafe.Pointer { return unsafe.Add(p, 4) }
`)
	wantFindings(t, got)
}

func TestUnsafeConfineSuppression(t *testing.T) {
	got := check(t, "specrpc/internal/client", `package client

import "unsafe"

type T struct{ a int32 }

func unbox(p unsafe.Pointer) *T {
	//specvet:ok unsafeconfine
	return (*T)(p)
}
`)
	wantFindings(t, got)
}

func TestHotPath(t *testing.T) {
	got := check(t, "example.com/hot", `package hot

import "fmt"

type frobber interface{ frob() }
type thing struct{}

func (thing) frob() {}

// cold is unmarked: anything goes.
func cold() error { return fmt.Errorf("x %d", 1) }

// hot is the measured path.
//
//specrpc:hotpath
func hot(n int) error {
	if n < 0 {
		return fmt.Errorf("bad %d", n)
	}
	f := func() int { return n }
	_ = f()
	var fr frobber = frobber(thing{})
	fr.frob()
	return nil
}
`)
	wantFindings(t, got,
		"18:10 hotpath", // fmt.Errorf
		"20:7 hotpath",  // closure
		"22:19 hotpath", // interface conversion
	)
}

func TestLockGuard(t *testing.T) {
	got := check(t, "example.com/lg", `package lg

import "sync"

type box struct {
	mu sync.Mutex // guards n, name
	n  int
	name string

	data []byte // guarded by dmu
	dmu  sync.Mutex
}

func (b *box) good() int { b.mu.Lock(); defer b.mu.Unlock(); return b.n }

func (b *box) bad() int { return b.n }

func (b *box) badName() string { return b.name }

func (b *box) wrongLock() []byte { b.mu.Lock(); defer b.mu.Unlock(); return b.data }

func (b *box) goodLocked() int { return b.n }

func (b *box) suppressedRead() int {
	//specvet:ok lockguard
	return b.n
}
`)
	wantFindings(t, got,
		"16:34 lockguard",
		"18:41 lockguard",
		"20:77 lockguard",
	)
}

func TestAtomicStyle(t *testing.T) {
	got := check(t, "example.com/at", `package at

import "sync/atomic"

var word uint64
var typed atomic.Uint64

func free() uint64 { return atomic.LoadUint64(&word) }

func freeAdd() { atomic.AddUint64(&word, 1) }

// typed-value methods are the sanctioned form.
func methods() uint64 { typed.Add(1); return typed.Load() }
`)
	wantFindings(t, got,
		"8:29 atomicstyle",
		"10:18 atomicstyle",
	)
}
