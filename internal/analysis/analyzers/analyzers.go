// Package analyzers holds the specvet analyzer suite: the repository's
// cross-cutting invariants — conventions PRs established and prose
// documented — encoded as machine-checked analysis passes.
//
//   - unsafeconfine: unsafe stays in the codec/platform layers; other
//     packages may only box typed pointers for codec calls.
//   - hotpath: functions marked //specrpc:hotpath stay allocation-free
//     (no fmt/errors/log calls, no closures, no interface boxing).
//   - lockguard: struct fields annotated "guards x, y" or "guarded by
//     mu" are only touched by methods that visibly take that lock.
//   - atomicstyle: counters use the typed sync/atomic types; the raw
//     free functions over *uint64 et al. are rejected.
//
// Findings are suppressed per line with `//specvet:ok <analyzer>` —
// the escape hatch for the rare justified exception, which keeps the
// analyzers strict without inviting drift.
package analyzers

import (
	"go/ast"
	"go/token"
	"strings"

	"specrpc/internal/analysis"
)

// All returns the full suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		UnsafeConfine,
		HotPath,
		LockGuard,
		AtomicStyle,
	}
}

// suppressions collects the lines carrying `//specvet:ok <name>`
// markers for one file.
func suppressions(fset *token.FileSet, file *ast.File, analyzer string) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "specvet:ok") {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, "specvet:ok"))
			if rest != "" && rest != analyzer && !strings.HasPrefix(rest, analyzer+" ") {
				continue
			}
			lines[fset.Position(c.Pos()).Line] = true
		}
	}
	return lines
}

// suppressed reports whether pos's line (or the line above it) carries a
// suppression for the analyzer.
func suppressed(sup map[int]bool, fset *token.FileSet, pos token.Pos) bool {
	line := fset.Position(pos).Line
	return sup[line] || sup[line-1]
}
