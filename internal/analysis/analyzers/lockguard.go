package analyzers

import (
	"go/ast"
	"regexp"
	"strings"

	"specrpc/internal/analysis"
)

// LockGuard checks the mutex-comment discipline: a struct field whose
// comment says "guards a, b" (on the mutex) or "guarded by mu" (on the
// data) may only be touched through a receiver inside methods that
// visibly take that lock — a `recv.mu.Lock()` / `RLock()` call
// somewhere in the method body, a `defer recv.mu.Unlock()`, or the two
// explicit opt-outs for helpers called under the lock: a name ending in
// "Locked" or a `//specvet:ok lockguard` line.
//
// The check is syntactic and intraprocedural by design: it cannot prove
// the lock is held at the access, but it catches the real historical
// failure — a new method (often a cold-path accessor or String/debug
// dump) reading sharded state with no locking at all.
var LockGuard = &analysis.Analyzer{
	Name: "lockguard",
	Doc:  "fields commented as lock-guarded are only touched by methods that take the lock",
	Run:  runLockGuard,
}

var (
	guardsRe    = regexp.MustCompile(`\bguards:?\s+([A-Za-z0-9_,()\[\] ]+)`)
	guardedByRe = regexp.MustCompile(`\bguarded by\s+([A-Za-z_][A-Za-z0-9_]*)`)
)

// guardSpec maps guarded field name -> mutex field name, per struct.
type guardSpec map[string]string

func runLockGuard(pass *analysis.Pass) error {
	specs := map[string]guardSpec{} // struct type name -> spec
	for _, file := range pass.Files {
		collectGuards(file, specs)
	}
	if len(specs) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		sup := suppressions(pass.Fset, file, "lockguard")
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			recvType := receiverTypeName(fd.Recv.List[0].Type)
			spec, ok := specs[recvType]
			if !ok {
				continue
			}
			checkGuardedMethod(pass, fd, spec, sup)
		}
	}
	return nil
}

// collectGuards scans struct declarations for guard comments.
func collectGuards(file *ast.File, specs map[string]guardSpec) {
	ast.Inspect(file, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		spec := guardSpec{}
		for _, field := range st.Fields.List {
			text := fieldCommentText(field)
			if text == "" || len(field.Names) == 0 {
				continue
			}
			if m := guardsRe.FindStringSubmatch(text); m != nil {
				// "mu sync.Mutex // guards a, b": the comment sits on the
				// mutex and names the data.
				mu := field.Names[0].Name
				for _, g := range strings.Split(m[1], ",") {
					g = strings.TrimSpace(g)
					// Tolerate prose after the list: "guards rng (Read and
					// Write ...)" names only identifiers.
					if i := strings.IndexAny(g, " (["); i >= 0 {
						g = g[:i]
					}
					if isIdent(g) {
						spec[g] = mu
					}
				}
			}
			if m := guardedByRe.FindStringSubmatch(text); m != nil {
				// "cur *conn // guarded by connMu": the comment sits on
				// the data and names the mutex.
				for _, name := range field.Names {
					spec[name.Name] = m[1]
				}
			}
		}
		if len(spec) > 0 {
			specs[ts.Name.Name] = spec
		}
		return true
	})
}

func fieldCommentText(field *ast.Field) string {
	var parts []string
	if field.Doc != nil {
		parts = append(parts, field.Doc.Text())
	}
	if field.Comment != nil {
		parts = append(parts, field.Comment.Text())
	}
	return strings.Join(parts, " ")
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' {
			continue
		}
		if i > 0 && r >= '0' && r <= '9' {
			continue
		}
		return false
	}
	return true
}

func receiverTypeName(t ast.Expr) string {
	switch e := t.(type) {
	case *ast.StarExpr:
		return receiverTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver
		return receiverTypeName(e.X)
	default:
		return ""
	}
}

func checkGuardedMethod(pass *analysis.Pass, fd *ast.FuncDecl, spec guardSpec, sup map[int]bool) {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return
	}
	recv := ""
	if names := fd.Recv.List[0].Names; len(names) > 0 {
		recv = names[0].Name
	}
	if recv == "" || recv == "_" {
		return
	}
	// Which mutexes does this method visibly take?
	taken := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock", "Unlock", "RUnlock":
		default:
			return true
		}
		if mu, ok := recvField(sel.X, recv); ok {
			taken[mu] = true
		}
		return true
	})
	// Report guarded-field accesses without the lock.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != recv {
			return true
		}
		mu, guarded := spec[sel.Sel.Name]
		if !guarded || taken[mu] {
			return true
		}
		if suppressed(sup, pass.Fset, sel.Pos()) {
			return true
		}
		pass.Reportf(sel.Pos(), "%s.%s is guarded by %s, but %s never takes it (suffix the method Locked or take the lock)",
			recv, sel.Sel.Name, mu, fd.Name.Name)
		return true
	})
}

// recvField matches the expression recv.<field> and returns the field
// name.
func recvField(e ast.Expr, recv string) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != recv {
		return "", false
	}
	return sel.Sel.Name, true
}
