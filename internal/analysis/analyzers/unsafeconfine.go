package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"specrpc/internal/analysis"
)

// fullUnsafePrefixes lists the package layers allowed full unsafe: the
// codec layer (plans execute against raw struct memory) and the
// platform layer (raw syscalls need pointer plumbing).
var fullUnsafePrefixes = []string{
	"specrpc/internal/wire",
	"specrpc/internal/platform",
}

// UnsafeConfine checks the repository's unsafe-confinement invariant.
// Inside internal/wire and internal/platform anything goes; everywhere
// else the only permitted unsafe operations are using unsafe.Pointer as
// an opaque type and boxing a typed pointer into one (the
// `unsafe.Pointer(&v)` / `unsafe.Pointer(p)` hand-off that feeds a
// value to a wire codec). Unboxing, pointer arithmetic, and the
// unsafe.Add/Slice/String family are reported: those construct or
// reinterpret memory and belong in the confined layers.
var UnsafeConfine = &analysis.Analyzer{
	Name: "unsafeconfine",
	Doc: "confine unsafe to internal/wire and internal/platform; " +
		"elsewhere only typed-pointer boxing into unsafe.Pointer is allowed",
	Run: runUnsafeConfine,
}

func runUnsafeConfine(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	for _, pfx := range fullUnsafePrefixes {
		if path == pfx || strings.HasPrefix(path, pfx+"/") {
			return nil
		}
	}
	for _, file := range pass.Files {
		sup := suppressions(pass.Fset, file, "unsafeconfine")
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				checkUnsafeCall(pass, e, sup)
			case *ast.SelectorExpr:
				if fn, ok := unsafeBuiltin(pass, e); ok {
					switch fn {
					case "Pointer", "Sizeof", "Alignof", "Offsetof":
						// Pointer-as-type and the compile-time size
						// operators are harmless anywhere; conversions
						// through Pointer are vetted at the CallExpr.
					default:
						if !suppressed(sup, pass.Fset, e.Pos()) {
							pass.Reportf(e.Pos(), "unsafe.%s outside the confined layers (internal/wire, internal/platform)", fn)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkUnsafeCall vets conversions involving unsafe.Pointer.
func checkUnsafeCall(pass *analysis.Pass, call *ast.CallExpr, sup map[int]bool) {
	if len(call.Args) != 1 {
		return
	}
	argT := pass.TypesInfo.Types[call.Args[0]].Type
	if argT == nil {
		return
	}
	// unsafe.Pointer(x): boxing a typed pointer (or nil) is the allowed
	// hand-off; anything built from a uintptr is arithmetic.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, isUnsafe := unsafeBuiltin(pass, sel); isUnsafe && fn == "Pointer" {
			switch u := argT.Underlying().(type) {
			case *types.Pointer:
				_ = u // *T -> unsafe.Pointer: the permitted boxing
			case *types.Basic:
				if u.Kind() == types.UntypedNil {
					return
				}
				if !suppressed(sup, pass.Fset, call.Pos()) {
					pass.Reportf(call.Pos(), "unsafe.Pointer built from %s outside the confined layers", argT)
				}
			default:
				if !isUnsafePointer(argT) && !suppressed(sup, pass.Fset, call.Pos()) {
					pass.Reportf(call.Pos(), "unsafe.Pointer conversion from %s outside the confined layers", argT)
				}
			}
			return
		}
	}
	// T(p) where p is unsafe.Pointer: unboxing back to a typed pointer
	// (or to uintptr) reinterprets memory.
	if !isUnsafePointer(argT) {
		return
	}
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if isUnsafePointer(tv.Type) {
			return // unsafe.Pointer(unsafe.Pointer(x)) via alias: harmless
		}
		if !suppressed(sup, pass.Fset, call.Pos()) {
			pass.Reportf(call.Pos(), "conversion of unsafe.Pointer to %s outside the confined layers (internal/wire, internal/platform)", tv.Type)
		}
	}
}

// unsafeBuiltin resolves sel to a member of package unsafe.
func unsafeBuiltin(pass *analysis.Pass, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	obj, ok := pass.TypesInfo.Uses[id]
	if !ok {
		return "", false
	}
	pn, ok := obj.(*types.PkgName)
	if !ok || pn.Imported().Path() != "unsafe" {
		return "", false
	}
	return sel.Sel.Name, true
}

func isUnsafePointer(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.UnsafePointer
}
