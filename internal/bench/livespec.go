package bench

// Live specialization mode: the paper's Generic/Specialized/Chunked
// comparison (§5, Tables 1/2/4) measured on the real concurrent
// transport instead of the VM cost models. One echo server exposes the
// same int-array procedure three times, once per codec configuration;
// the harness drives each over netsim, UDP loopback, and TCP loopback
// across the paper's array-size grid and reports wall-clock latency and
// throughput. The numbers are measured, not modeled — this is the
// paper's claim transplanted onto the live wire path.

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"time"

	"specrpc/internal/bench/livespecrpc"
	"specrpc/internal/client"
	"specrpc/internal/netsim"
	"specrpc/internal/server"
	"specrpc/internal/wire"
	"specrpc/internal/xdr"
)

// Live-spec service identity (distinct from the paper-table and
// throughput programs).
const (
	liveProg = uint32(0x20000532)
	liveVers = uint32(1)
)

// Procedure numbers: one echo per codec configuration.
var liveProcs = map[wire.Mode]uint32{
	wire.Generic:     1,
	wire.Specialized: 2,
	wire.Chunked:     3,
}

// liveProcFused is the whole-call configuration: the same specialized
// plan, but registered and called through the typed entry points so the
// header template and argument plan execute as one fused codec.
const liveProcFused = uint32(4)

// liveProcCompiled is the compiled-stub configuration: the generated
// livespecrpc plan through the same typed entry points, so marshaling
// runs the rpcgen-emitted straight-line codecs instead of the fused
// interpreter. Same bytes on the wire, different marshaling engine.
const liveProcCompiled = uint32(5)

// FusedSeries names the fused configuration in results and reports.
const FusedSeries = "fused"

// CompiledSeries names the compiled-stub configuration.
const CompiledSeries = "compiled"

// LiveModes lists the three plan configurations in presentation order;
// the fused series rides alongside them under FusedSeries.
var LiveModes = []wire.Mode{wire.Generic, wire.Specialized, wire.Chunked}

// livePlans compiles the int-array echo plan per mode, once.
var livePlans = map[wire.Mode]*wire.Plan[[]int32]{
	wire.Generic:     wire.MustPlan[[]int32](wire.VarArrayT(0, wire.Int32T()), wire.Generic),
	wire.Specialized: wire.MustPlan[[]int32](wire.VarArrayT(0, wire.Int32T()), wire.Specialized),
	wire.Chunked:     wire.MustPlan[[]int32](wire.VarArrayT(0, wire.Int32T()), wire.Chunked),
}

// LivePlan returns the compiled int-array plan for a configuration; the
// benchmarks and the harness share these.
func LivePlan(m wire.Mode) *wire.Plan[[]int32] { return livePlans[m] }

// LiveSpecOptions configures one live comparison run.
type LiveSpecOptions struct {
	// Transports to measure: any of "sim", "udp", "tcp". Default all.
	Transports []string
	// Sizes is the int-array grid. Default the paper's Sizes.
	Sizes []int
	// Calls per (transport, size, mode) measurement. Default 2000.
	Calls int
	// Warmup calls before each measurement. Default 50.
	Warmup int
	// SkipFused drops the fused and compiled whole-call series, leaving
	// only the three template+plan configurations.
	SkipFused bool
	// Reps runs the whole grid this many times — complete passes, so
	// host drift lands on every series alike, the open-loop harness's
	// interleaving — and reports the per-point median. Default 1.
	Reps int
}

func (o *LiveSpecOptions) fill() {
	if len(o.Transports) == 0 {
		o.Transports = []string{"sim", "udp", "tcp"}
	}
	if len(o.Sizes) == 0 {
		o.Sizes = Sizes
	}
	if o.Calls <= 0 {
		o.Calls = 2000
	}
	if o.Warmup <= 0 {
		o.Warmup = 50
	}
	if o.Reps <= 0 {
		o.Reps = 1
	}
}

// LiveSpecResult is one measured (transport, size, mode) point.
type LiveSpecResult struct {
	Transport   string  `json:"transport"`
	Mode        string  `json:"mode"`
	N           int     `json:"n"`
	Calls       int     `json:"calls"`
	NsPerCall   float64 `json:"ns_per_call"`
	CallsPerSec float64 `json:"calls_per_sec"`
}

// newLiveServer builds the echo server: the three plan configurations
// register through explicit closures — pinning them to the
// template+plan reply path, so their series keep measuring what they
// measured before fusion existed — and the fused configuration
// registers through RegisterTyped, which installs the specialized
// dispatch entry (fixed-offset header parse, fused success reply).
func newLiveServer() *server.Server {
	s := server.New()
	for _, m := range LiveModes {
		plan := livePlans[m]
		s.Register(liveProg, liveVers, liveProcs[m], func(dec *xdr.XDR) (server.Marshal, error) {
			var arr []int32
			if err := plan.Marshal(dec, &arr); err != nil {
				return nil, errors.Join(server.ErrGarbageArgs, err)
			}
			return func(enc *xdr.XDR) error { return plan.Marshal(enc, &arr) }, nil
		})
	}
	sp := livePlans[wire.Specialized]
	server.RegisterTyped(s, liveProg, liveVers, liveProcFused, sp, sp,
		func(arg *[]int32) (*[]int32, error) { return arg, nil })
	cp := livespecrpc.PlanArr
	server.RegisterTyped(s, liveProg, liveVers, liveProcCompiled, cp, cp,
		func(arg *livespecrpc.Livearr) (*livespecrpc.Livearr, error) { return arg, nil })
	return s
}

// liveClient dials one caller for a transport, returning a cleanup.
func liveClient(transport string, s *server.Server) (client.Caller, func(), error) {
	cfg := client.Config{Prog: liveProg, Vers: liveVers, Timeout: 30 * time.Second}
	switch transport {
	case "sim":
		n := netsim.New()
		ep := n.Attach("server")
		go func() { _ = s.ServeUDP(ep) }()
		cep := n.Attach("client")
		c := client.NewUDP(cep, netsim.Addr("server"), cfg)
		return c, func() { _ = c.Close() }, nil
	case "udp":
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, fmt.Errorf("bench: loopback udp: %w", err)
		}
		go func() { _ = s.ServeUDP(pc) }()
		cc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			pc.Close()
			return nil, nil, fmt.Errorf("bench: client socket: %w", err)
		}
		c := client.NewUDP(cc, pc.LocalAddr(), cfg)
		return c, func() { _ = c.Close() }, nil
	case "tcp":
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, fmt.Errorf("bench: loopback tcp: %w", err)
		}
		go func() { _ = s.ServeTCP(ln) }()
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			ln.Close()
			return nil, nil, fmt.Errorf("bench: dial: %w", err)
		}
		c := client.NewTCP(conn, cfg)
		return c, func() { _ = c.Close() }, nil
	default:
		return nil, nil, fmt.Errorf("bench: unknown transport %q", transport)
	}
}

// LiveSpec measures the three codec configurations over the requested
// transports and sizes. Calls are sequential (one in flight): this is a
// latency comparison of the marshaling layers, not a pipelining test —
// Throughput covers that. With Reps > 1 each point reports the median
// of that many complete grid passes, so a committed baseline carries
// the same estimator the bench-diff gate measures against it.
func LiveSpec(o LiveSpecOptions) ([]LiveSpecResult, error) {
	o.fill()
	reps := make([][]LiveSpecResult, 0, o.Reps)
	for i := 0; i < o.Reps; i++ {
		one, err := liveSpecOnce(o)
		if err != nil {
			return nil, err
		}
		reps = append(reps, one)
	}
	if len(reps) == 1 {
		return reps[0], nil
	}
	// Pass order is identical across reps, so merge positionally.
	merged := make([]LiveSpecResult, len(reps[0]))
	ns := make([]float64, len(reps))
	for i := range merged {
		for j, rep := range reps {
			ns[j] = rep[i].NsPerCall
		}
		sort.Float64s(ns)
		m := ns[len(ns)/2]
		if len(ns)%2 == 0 {
			m = (ns[len(ns)/2-1] + ns[len(ns)/2]) / 2
		}
		merged[i] = reps[0][i]
		merged[i].NsPerCall = m
		merged[i].CallsPerSec = 0
		if m > 0 {
			merged[i].CallsPerSec = 1e9 / m
		}
	}
	return merged, nil
}

func liveSpecOnce(o LiveSpecOptions) ([]LiveSpecResult, error) {
	var results []LiveSpecResult
	for _, tr := range o.Transports {
		s := newLiveServer()
		c, cleanup, err := liveClient(tr, s)
		if err != nil {
			s.Close()
			return nil, err
		}
		for _, n := range o.Sizes {
			in := make([]int32, n)
			for i := range in {
				in[i] = int32(i * 13)
			}
			out := make([]int32, n)

			// The three plan series call through explicit closures — the
			// pre-fusion template+plan client path — and the fused series
			// through CallTyped, which routes onto the whole-call codec.
			type series struct {
				name string
				call func() error
			}
			var runs []series
			for _, m := range LiveModes {
				plan := livePlans[m]
				proc := liveProcs[m]
				am := func(x *xdr.XDR) error { return plan.Marshal(x, &in) }
				rm := func(x *xdr.XDR) error { return plan.Marshal(x, &out) }
				runs = append(runs, series{m.String(), func() error { return c.Call(proc, am, rm) }})
			}
			if !o.SkipFused {
				sp := livePlans[wire.Specialized]
				runs = append(runs, series{FusedSeries, func() error {
					return client.CallTyped(c, liveProcFused, sp, &in, sp, &out)
				}})
				cp := livespecrpc.PlanArr
				cin, cout := (*livespecrpc.Livearr)(&in), (*livespecrpc.Livearr)(&out)
				runs = append(runs, series{CompiledSeries, func() error {
					return client.CallTyped(c, liveProcCompiled, cp, cin, cp, cout)
				}})
			}
			for _, sr := range runs {
				doCall := sr.call
				call := func() error {
					if err := doCall(); err != nil {
						return fmt.Errorf("bench: %s/%s/N=%d: %w", tr, sr.name, n, err)
					}
					if len(out) != n || (n > 0 && out[n-1] != in[n-1]) {
						return fmt.Errorf("bench: %s/%s/N=%d: bad echo", tr, sr.name, n)
					}
					return nil
				}
				for i := 0; i < o.Warmup; i++ {
					if err := call(); err != nil {
						cleanup()
						s.Close()
						return nil, err
					}
				}
				start := time.Now()
				for i := 0; i < o.Calls; i++ {
					if err := call(); err != nil {
						cleanup()
						s.Close()
						return nil, err
					}
				}
				elapsed := time.Since(start)
				r := LiveSpecResult{
					Transport: tr, Mode: sr.name, N: n, Calls: o.Calls,
					NsPerCall: float64(elapsed.Nanoseconds()) / float64(o.Calls),
				}
				if elapsed > 0 {
					r.CallsPerSec = float64(o.Calls) / elapsed.Seconds()
				}
				results = append(results, r)
			}
		}
		cleanup()
		s.Close()
	}
	return results, nil
}

// FormatLiveSpec renders the comparison grouped per transport, one row
// per size with the three configurations side by side and the
// generic/specialized speedup — the live rendering of Table 2's layout.
func FormatLiveSpec(rows []LiveSpecResult) string {
	type key struct {
		tr string
		n  int
	}
	byPoint := map[key]map[string]LiveSpecResult{}
	var order []key
	for _, r := range rows {
		k := key{r.Transport, r.N}
		if byPoint[k] == nil {
			byPoint[k] = map[string]LiveSpecResult{}
			order = append(order, k)
		}
		byPoint[k][r.Mode] = r
	}
	// Render the fused and compiled columns only when those series were
	// measured, so a SkipFused run prints the three-configuration table
	// instead of columns of zeros masquerading as measurements.
	hasFused, hasCompiled := false, false
	for _, r := range rows {
		switch r.Mode {
		case FusedSeries:
			hasFused = true
		case CompiledSeries:
			hasCompiled = true
		}
	}
	var sb strings.Builder
	sb.WriteString("Live specialization: round-trip µs/call by marshal configuration (echo of 4-byte ints)\n")
	switch {
	case hasCompiled:
		fmt.Fprintf(&sb, "%-9s %6s %12s %12s %12s %12s %12s %8s %8s %8s %8s\n",
			"Transport", "N", "Generic", "Specialized", "Chunked", "Fused", "Compiled", "Spd(S)", "Spd(C)", "Spd(F)", "Spd(X)")
	case hasFused:
		fmt.Fprintf(&sb, "%-9s %6s %12s %12s %12s %12s %8s %8s %8s\n",
			"Transport", "N", "Generic", "Specialized", "Chunked", "Fused", "Spd(S)", "Spd(C)", "Spd(F)")
	default:
		fmt.Fprintf(&sb, "%-9s %6s %12s %12s %12s %9s %9s\n",
			"Transport", "N", "Generic", "Specialized", "Chunked", "Spd(S)", "Spd(C)")
	}
	last := ""
	for _, k := range order {
		if last != "" && last != k.tr {
			sb.WriteString("\n")
		}
		last = k.tr
		g := byPoint[k]["generic"]
		s := byPoint[k]["specialized"]
		c := byPoint[k]["chunked"]
		spdS, spdC := 0.0, 0.0
		if s.NsPerCall > 0 {
			spdS = g.NsPerCall / s.NsPerCall
		}
		if c.NsPerCall > 0 {
			spdC = g.NsPerCall / c.NsPerCall
		}
		if !hasFused {
			fmt.Fprintf(&sb, "%-9s %6d %12.1f %12.1f %12.1f %9.2f %9.2f\n",
				k.tr, k.n, g.NsPerCall/1e3, s.NsPerCall/1e3, c.NsPerCall/1e3, spdS, spdC)
			continue
		}
		fu := byPoint[k][FusedSeries]
		spdF := 0.0
		if fu.NsPerCall > 0 {
			spdF = g.NsPerCall / fu.NsPerCall
		}
		if !hasCompiled {
			fmt.Fprintf(&sb, "%-9s %6d %12.1f %12.1f %12.1f %12.1f %8.2f %8.2f %8.2f\n",
				k.tr, k.n, g.NsPerCall/1e3, s.NsPerCall/1e3, c.NsPerCall/1e3, fu.NsPerCall/1e3, spdS, spdC, spdF)
			continue
		}
		co := byPoint[k][CompiledSeries]
		spdX := 0.0
		if co.NsPerCall > 0 {
			spdX = g.NsPerCall / co.NsPerCall
		}
		fmt.Fprintf(&sb, "%-9s %6d %12.1f %12.1f %12.1f %12.1f %12.1f %8.2f %8.2f %8.2f %8.2f\n",
			k.tr, k.n, g.NsPerCall/1e3, s.NsPerCall/1e3, c.NsPerCall/1e3, fu.NsPerCall/1e3, co.NsPerCall/1e3, spdS, spdC, spdF, spdX)
	}
	return sb.String()
}
