package bench

// Chaos mode: goodput under a seeded fault schedule. Where the
// throughput and open-loop harnesses measure the fast path, this one
// measures the fault-tolerance layer — every call runs under a
// RetryPolicy while the transport drops, duplicates, reorders, or
// resets traffic, and the result carries the retry/reconnect counters
// alongside goodput. The counters are the point: BENCH_live.json's
// "chaos" series is gated structurally (the machinery fired and the
// calls landed), never on ns/op, because goodput under randomized
// faults is not a stable timing series.

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"specrpc/internal/client"
	"specrpc/internal/faultconn"
	"specrpc/internal/netsim"
	"specrpc/internal/server"
	"specrpc/internal/xdr"
)

// ChaosOptions configures one chaos run.
type ChaosOptions struct {
	// Transport: "sim" (netsim link faults), "udp" (faultconn packet
	// faults on real sockets), or "tcp" (faultconn resets/short writes
	// on real connections, exercising reconnect).
	Transport string
	// Conns is the number of concurrent client connections. Default 4.
	Conns int
	// Calls is the total number of calls across all connections.
	// Default 400.
	Calls int
	// Loss is the headline fault intensity in [0, 1): datagram loss rate
	// on sim/udp; scaled into reset/split rates on tcp. Default 0.1.
	Loss float64
	// ArraySize is the number of int32s echoed per call. Default 20.
	ArraySize int
	// Seed fixes the fault schedule (0 = seed 1).
	Seed int64
}

func (o *ChaosOptions) fill() {
	if o.Transport == "" {
		o.Transport = "sim"
	}
	if o.Conns <= 0 {
		o.Conns = 4
	}
	if o.Calls <= 0 {
		o.Calls = 400
	}
	if o.Loss <= 0 {
		o.Loss = 0.1
	}
	if o.ArraySize <= 0 {
		o.ArraySize = 20
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// ChaosResult is one measured chaos configuration.
type ChaosResult struct {
	Transport   string  `json:"transport"`
	Conns       int     `json:"conns"`
	Calls       int     `json:"calls"`
	Loss        float64 `json:"loss"`
	Seed        int64   `json:"seed"`
	Acked       int64   `json:"acked"`
	Errors      int64   `json:"errors"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	GoodputPS   float64 `json:"goodput_per_sec"`
	Retransmits uint64  `json:"retransmits"`
	Retries     uint64  `json:"retries"`
	Reconnects  uint64  `json:"reconnects"`
	BudgetDeny  uint64  `json:"budget_denied"`
	CacheHits   uint64  `json:"cache_hits"` // server reply-cache hits (datagram transports)
	Injected    uint64  `json:"injected"`   // faults the schedule actually fired
}

// chaosPolicy is the retry schedule every chaos client runs under:
// enough attempts to ride out the configured fault rates, short jittered
// backoff so runs stay fast, unlimited budget (the harness measures the
// machinery, not the brake).
func chaosPolicy() *client.RetryPolicy {
	return &client.RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    80 * time.Millisecond,
		BudgetRate:  -1,
	}
}

// retryStatser is the accessor both transports share.
type retryStatser interface {
	RetryStats() client.RetryStats
}

// Chaos runs one configuration and reports goodput plus the fault and
// recovery counters.
func Chaos(o ChaosOptions) (ChaosResult, error) {
	o.fill()
	res := ChaosResult{
		Transport: o.Transport, Conns: o.Conns, Calls: o.Calls,
		Loss: o.Loss, Seed: o.Seed,
	}

	g := newGauge(0)
	s := newLoadServer(g, server.WithCacheSize(4096))
	var callers []client.Caller
	var cleanup []func() error
	defer func() {
		for _, c := range callers {
			_ = c.Close()
		}
		_ = s.Close()
		for _, f := range cleanup {
			_ = f()
		}
	}()

	injected := func() uint64 { return 0 }
	switch o.Transport {
	case "sim":
		n := netsim.New(netsim.WithSeed(o.Seed))
		n.SetLink("", "", netsim.LinkFaults{
			Loss:      o.Loss,
			Dup:       o.Loss / 2,
			Reorder:   o.Loss / 2,
			JitterMax: time.Millisecond,
		})
		ep := n.Attach("server")
		go func() { _ = s.ServeUDP(ep) }()
		for i := 0; i < o.Conns; i++ {
			cfg := loadConfig(i)
			cfg.Timeout = 10 * time.Second
			cfg.Retry = chaosPolicy()
			cep := n.Attach(netsim.Addr(fmt.Sprintf("client-%d", i)))
			callers = append(callers, client.NewUDP(cep, netsim.Addr("server"), cfg))
		}
		injected = func() uint64 {
			fs := n.FaultStats()
			return fs.Dropped + fs.Duplicated + fs.Reordered
		}
	case "udp":
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			return res, fmt.Errorf("bench: loopback udp: %w", err)
		}
		cleanup = append(cleanup, pc.Close)
		go func() { _ = s.ServeUDP(pc) }()
		stats := &faultconn.Stats{}
		for i := 0; i < o.Conns; i++ {
			cc, err := net.ListenPacket("udp", "127.0.0.1:0")
			if err != nil {
				return res, fmt.Errorf("bench: client socket: %w", err)
			}
			fc := faultconn.WrapPacket(cc, faultconn.Plan{
				Seed:     o.Seed + int64(i),
				DropRate: o.Loss,
				DupRate:  o.Loss / 2,
			}, stats)
			cfg := loadConfig(i)
			cfg.Timeout = 10 * time.Second
			cfg.Retry = chaosPolicy()
			callers = append(callers, client.NewUDP(fc, pc.LocalAddr(), cfg))
		}
		injected = func() uint64 { return stats.Dropped.Load() + stats.Duplicated.Load() }
	case "tcp":
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return res, fmt.Errorf("bench: loopback tcp: %w", err)
		}
		fl := faultconn.WrapListener(ln, faultconn.Plan{
			Seed:       o.Seed,
			ResetRate:  o.Loss / 4, // every reset costs a reconnect; keep runs bounded
			ResetAfter: 3,
			SplitWrite: o.Loss,
		}, nil)
		cleanup = append(cleanup, fl.Close)
		go func() { _ = s.ServeTCP(fl) }()
		for i := 0; i < o.Conns; i++ {
			cfg := loadConfig(i)
			cfg.Timeout = 10 * time.Second
			cfg.Retry = chaosPolicy()
			cfg.Retry.RetryAmbiguous = true // the load echo is idempotent
			c, err := client.DialTCP("tcp", ln.Addr().String(), cfg)
			if err != nil {
				return res, fmt.Errorf("bench: dial: %w", err)
			}
			callers = append(callers, c)
		}
		st := fl.Stats()
		injected = func() uint64 { return st.Resets.Load() + st.SplitWrites.Load() + st.Stalls.Load() }
	default:
		return res, fmt.Errorf("bench: unknown transport %q", o.Transport)
	}

	var acked, errs atomic.Int64
	var wg sync.WaitGroup
	per := o.Calls / o.Conns
	start := time.Now()
	for i, c := range callers {
		n := per
		if i == len(callers)-1 {
			n = o.Calls - per*(len(callers)-1)
		}
		wg.Add(1)
		go func(c client.Caller, n int) {
			defer wg.Done()
			in := make([]int32, o.ArraySize)
			for j := range in {
				in[j] = int32(j)
			}
			for j := 0; j < n; j++ {
				var out []int32
				err := c.Call(loadEcho,
					func(x *xdr.XDR) error { return xdr.Array(x, &in, xdr.NoSizeLimit, (*xdr.XDR).Long) },
					func(x *xdr.XDR) error { return xdr.Array(x, &out, xdr.NoSizeLimit, (*xdr.XDR).Long) })
				if err != nil {
					errs.Add(1)
					continue
				}
				acked.Add(1)
			}
		}(c, n)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res.Acked = acked.Load()
	res.Errors = errs.Load()
	res.ElapsedMS = float64(elapsed.Microseconds()) / 1e3
	if elapsed > 0 {
		res.GoodputPS = float64(res.Acked) / elapsed.Seconds()
	}
	for _, c := range callers {
		if rs, ok := c.(retryStatser); ok {
			st := rs.RetryStats()
			res.Retransmits += st.Retransmits
			res.Retries += st.Retries
			res.BudgetDeny += st.BudgetDenied
		}
		if tc, ok := c.(*client.TCP); ok {
			res.Reconnects += tc.ReconnectStats().Reconnects
		}
	}
	res.CacheHits = s.CacheHits()
	res.Injected = injected()
	return res, nil
}

// FormatChaos renders the chaos grid.
func FormatChaos(rows []ChaosResult) string {
	var sb strings.Builder
	sb.WriteString("Chaos: goodput under a seeded fault schedule (counters gated structurally, not by time)\n")
	fmt.Fprintf(&sb, "%-9s %6s %6s %6s %6s %8s %6s %10s %8s %8s %8s %8s %8s\n",
		"Transport", "Conns", "Calls", "Loss", "Seed", "Acked", "Err", "Goodput/s", "Retrans", "Retries", "Reconn", "CacheHit", "Injected")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-9s %6d %6d %6.2f %6d %8d %6d %10.0f %8d %8d %8d %8d %8d\n",
			r.Transport, r.Conns, r.Calls, r.Loss, r.Seed, r.Acked, r.Errors,
			r.GoodputPS, r.Retransmits, r.Retries, r.Reconnects, r.CacheHits, r.Injected)
	}
	return sb.String()
}
