package bench

import (
	"testing"
)

func TestThroughputSim(t *testing.T) {
	res, err := Throughput(ThroughputOptions{
		Transport: "sim", Clients: 2, Depth: 4, Calls: 200, ArraySize: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Calls != 200 || res.CallsPerSec <= 0 {
		t.Fatalf("result %+v", res)
	}
	if res.MaxInFlight < 1 {
		t.Fatalf("MaxInFlight = %d", res.MaxInFlight)
	}
}

func TestThroughputTCPSustainsInFlightDepth(t *testing.T) {
	// The acceptance gate of the multiplexed transport: with 8 callers
	// pipelining over ONE connection, the run can only finish if at
	// least 4 calls are genuinely in flight at once (the server latches
	// the first handlers until 4 run concurrently).
	res, err := Throughput(ThroughputOptions{
		Transport: "tcp", Clients: 1, Depth: 8, Calls: 200, ArraySize: 100,
		MinInFlight: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxInFlight < 4 {
		t.Fatalf("MaxInFlight = %d, want >= 4", res.MaxInFlight)
	}
}

func TestThroughputUDPLoopback(t *testing.T) {
	res, err := Throughput(ThroughputOptions{
		Transport: "udp", Clients: 1, Depth: 8, Calls: 200, ArraySize: 20,
		MinInFlight: 4,
	})
	if err != nil {
		t.Skipf("loopback UDP unavailable: %v", err)
	}
	if res.MaxInFlight < 4 {
		t.Fatalf("MaxInFlight = %d, want >= 4", res.MaxInFlight)
	}
}

func TestThroughputSimMultiClientFullLatch(t *testing.T) {
	// Regression: the datagram worker pool must be able to admit
	// Clients*Depth concurrent handlers no matter how the clients' XIDs
	// map onto workers. An earlier XID-sharded pool collapsed multiple
	// clients onto the same shards (the bench FirstXID stride divides
	// every power-of-two worker count) and deadlocked this latch.
	res, err := Throughput(ThroughputOptions{
		Transport: "sim", Clients: 2, Depth: 8, Calls: 64, ArraySize: 20,
		MinInFlight: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxInFlight < 16 {
		t.Fatalf("MaxInFlight = %d, want >= 16", res.MaxInFlight)
	}
}

func TestThroughputRejectsUnknownTransport(t *testing.T) {
	if _, err := Throughput(ThroughputOptions{Transport: "carrier-pigeon"}); err == nil {
		t.Fatal("expected error for unknown transport")
	}
}

func TestFormatThroughput(t *testing.T) {
	res, err := Throughput(ThroughputOptions{Transport: "sim", Calls: 10})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatThroughput([]ThroughputResult{res})
	if len(out) == 0 || out[len(out)-1] != '\n' {
		t.Fatalf("format output %q", out)
	}
}

func benchThroughput(b *testing.B, transport string, clients, depth int) {
	b.ReportAllocs()
	calls := b.N
	if calls < clients*depth {
		calls = clients * depth
	}
	// Latch the server until clients*depth handlers run at once, so the
	// reported max_inflight metric is the sustained pipeline depth, not a
	// race against a fast echo handler.
	res, err := Throughput(ThroughputOptions{
		Transport: transport, Clients: clients, Depth: depth,
		Calls: calls, ArraySize: 100, MinInFlight: clients * depth,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.CallsPerSec, "calls/s")
	b.ReportMetric(float64(res.MaxInFlight), "max_inflight")
}

func BenchmarkThroughputTCPDepth1(b *testing.B)  { benchThroughput(b, "tcp", 1, 1) }
func BenchmarkThroughputTCPDepth4(b *testing.B)  { benchThroughput(b, "tcp", 1, 4) }
func BenchmarkThroughputTCPDepth16(b *testing.B) { benchThroughput(b, "tcp", 1, 16) }
func BenchmarkThroughputTCPScaleOut(b *testing.B) {
	benchThroughput(b, "tcp", 4, 8)
}
func BenchmarkThroughputSimDepth8(b *testing.B) { benchThroughput(b, "sim", 1, 8) }
func BenchmarkThroughputUDPDepth8(b *testing.B) { benchThroughput(b, "udp", 1, 8) }
