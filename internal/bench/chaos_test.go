package bench

import "testing"

// TestChaosSmoke runs a tiny chaos point per transport: the structural
// assertions (machinery fired, most calls landed) mirror what benchdiff
// checks on the committed series.
func TestChaosSmoke(t *testing.T) {
	for _, tr := range []string{"sim", "udp", "tcp"} {
		t.Run(tr, func(t *testing.T) {
			res, err := Chaos(ChaosOptions{
				Transport: tr, Conns: 2, Calls: 80, Loss: 0.15, Seed: 7,
			})
			if err != nil {
				t.Fatalf("Chaos: %v", err)
			}
			if res.Acked < int64(res.Calls/2) {
				t.Fatalf("goodput collapsed: %d/%d acked (%d errors)", res.Acked, res.Calls, res.Errors)
			}
			if res.Injected == 0 {
				t.Fatalf("fault schedule never fired (seed %d)", res.Seed)
			}
			switch tr {
			case "sim", "udp":
				if res.Retransmits == 0 {
					t.Fatal("no retransmits under datagram loss")
				}
			case "tcp":
				if res.Reconnects == 0 {
					t.Fatal("no reconnects under injected resets")
				}
			}
		})
	}
}
