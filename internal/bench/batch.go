package bench

// Batch mode: measures the syscall-amortization layer. Where throughput
// mode asks "how many calls per second", this harness asks "how many
// kernel crossings per call" — counted, not timed, so the result holds
// on the single-core reference host where timing-based wins wash out.
// TCP syscalls are counted by injectable conn/listener shims wrapping
// the real sockets (each Write on the shim is one write syscall on the
// kernel socket under it; the record batcher's coalesce path issues
// exactly one such Write per batch). UDP counters come from the
// server's batched-I/O layer itself, because a counting shim around a
// PacketConn would hide the kernel socket and disable the mmsg path it
// is trying to measure.

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"specrpc/internal/client"
	"specrpc/internal/server"
	"specrpc/internal/xdr"
)

// batchGroup is the ONC batched-call pattern in "calls" mode: per group,
// batchGroup-1 fire-and-forget CallBatched requests flushed by one
// terminal Call.
const batchGroup = 8

// BatchOptions configures one batch-mode run.
type BatchOptions struct {
	// Transport is "tcp" or "udp".
	Transport string
	// Mode selects the batching variant measured against the same grid:
	//   "off"   — batching disabled everywhere: one syscall per record on
	//             TCP (client NoBatch + server WithWriteBatching(false)),
	//             one datagram per syscall on UDP. The baseline.
	//   "on"    — write coalescing on (TCP group commit, UDP mmsg batch):
	//             amortization comes from concurrency, so the win grows
	//             with Depth.
	//   "calls" — ONC batched calls (TCP only): groups of batchGroup-1
	//             CallBatched flushed by a terminal Call, the protocol-
	//             level batching of the Sun RPC lineage. Deterministic
	//             writes/op regardless of scheduling.
	Mode string
	// Clients, Depth, Calls, ArraySize as in ThroughputOptions.
	Clients, Depth, Calls, ArraySize int
}

func (o *BatchOptions) fill() error {
	if o.Transport == "" {
		o.Transport = "tcp"
	}
	if o.Mode == "" {
		o.Mode = "on"
	}
	switch o.Mode {
	case "off", "on":
	case "calls":
		if o.Transport != "tcp" {
			return fmt.Errorf("bench: batched calls need a stream transport (got %q)", o.Transport)
		}
	default:
		return fmt.Errorf("bench: unknown batch mode %q", o.Mode)
	}
	if o.Clients <= 0 {
		o.Clients = 1
	}
	if o.Depth <= 0 {
		o.Depth = 1
	}
	if o.Calls <= 0 {
		o.Calls = 1000
	}
	if o.Mode == "calls" {
		// Whole groups only, so the writes/op arithmetic stays exact.
		o.Calls -= o.Calls % batchGroup
		if o.Calls == 0 {
			o.Calls = batchGroup
		}
	}
	if o.ArraySize <= 0 {
		o.ArraySize = 20
	}
	return nil
}

// BatchResult is one measured configuration. The syscall columns are
// cumulative counts over the run divided by the call count; client
// reads and server counters include the small fixed tail of the last
// in-flight replies, so per-op numbers converge with Calls.
type BatchResult struct {
	Transport   string        `json:"transport"`
	Mode        string        `json:"mode"`
	Clients     int           `json:"clients"`
	Depth       int           `json:"depth"`
	Calls       int           `json:"calls"`
	ArraySize   int           `json:"n"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	CallsPerSec float64       `json:"calls_per_sec"`
	// ClientWritesPerOp is request-send syscalls per call on the client —
	// the headline number: 1.0 unbatched, shrinking toward 1/Depth under
	// coalescing and to 1/batchGroup in "calls" mode.
	ClientWritesPerOp float64 `json:"client_writes_per_op"`
	// ServerWritesPerOp / ServerReadsPerOp are the server-side reply and
	// request syscalls per call (UDP: sendmmsg/recvmmsg calls per call).
	ServerWritesPerOp float64 `json:"server_writes_per_op"`
	ServerReadsPerOp  float64 `json:"server_reads_per_op"`
	// Batched reports whether the UDP mmsg kernel path was active (always
	// false for TCP rows; the TCP mechanism is vectored writes, not mmsg).
	Batched bool `json:"mmsg,omitempty"`
}

// countConn counts Write and Read calls passing through to a kernel
// socket: each is exactly one syscall, so the counters are the
// syscalls/op instrument for stream transports.
type countConn struct {
	net.Conn
	writes, reads *atomic.Uint64
}

func (c countConn) Write(p []byte) (int, error) {
	c.writes.Add(1)
	return c.Conn.Write(p)
}

func (c countConn) Read(p []byte) (int, error) {
	c.reads.Add(1)
	return c.Conn.Read(p)
}

// countListener wraps accepted connections in countConn, so every
// server-side read/write on every connection lands in two shared
// counters.
type countListener struct {
	net.Listener
	writes, reads *atomic.Uint64
}

func (l countListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return countConn{Conn: conn, writes: l.writes, reads: l.reads}, nil
}

// Batch runs one batch-mode configuration and reports timed rate plus
// counted syscalls per call.
func Batch(o BatchOptions) (BatchResult, error) {
	if err := o.fill(); err != nil {
		return BatchResult{}, err
	}
	switch o.Transport {
	case "tcp":
		return batchTCP(o)
	case "udp":
		return batchUDP(o)
	}
	return BatchResult{}, fmt.Errorf("bench: batch mode supports tcp and udp (got %q)", o.Transport)
}

func batchTCP(o BatchOptions) (BatchResult, error) {
	s := newLoadServer(newGauge(0), server.WithWriteBatching(o.Mode != "off"))
	defer s.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return BatchResult{}, fmt.Errorf("bench: loopback tcp: %w", err)
	}
	defer ln.Close()
	var srvWrites, srvReads, cliWrites, cliReads atomic.Uint64
	go func() { _ = s.ServeTCP(countListener{Listener: ln, writes: &srvWrites, reads: &srvReads}) }()

	callers := make([]*client.TCP, o.Clients)
	for i := range callers {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return BatchResult{}, fmt.Errorf("bench: dial: %w", err)
		}
		cfg := loadConfig(i)
		cfg.NoBatch = o.Mode == "off"
		callers[i] = client.NewTCP(countConn{Conn: conn, writes: &cliWrites, reads: &cliReads}, cfg)
	}
	defer func() {
		for _, c := range callers {
			_ = c.Close()
		}
	}()

	elapsed, err := driveBatch(o, func(i int) client.Caller { return callers[i] })
	if err != nil {
		return BatchResult{}, err
	}
	res := newBatchResult(o, elapsed)
	res.ClientWritesPerOp = perOp(cliWrites.Load(), o.Calls)
	res.ServerWritesPerOp = perOp(srvWrites.Load(), o.Calls)
	res.ServerReadsPerOp = perOp(srvReads.Load(), o.Calls)
	return res, nil
}

func batchUDP(o BatchOptions) (BatchResult, error) {
	batch := server.DefaultDatagramBatch
	if o.Mode == "off" {
		batch = 1
	}
	s := newLoadServer(newGauge(0), server.WithDatagramBatch(batch))
	defer s.Close()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return BatchResult{}, fmt.Errorf("bench: loopback udp: %w", err)
	}
	defer pc.Close()
	go func() { _ = s.ServeUDP(pc) }()

	callers := make([]*client.UDP, o.Clients)
	for i := range callers {
		cc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			return BatchResult{}, fmt.Errorf("bench: client socket: %w", err)
		}
		callers[i] = client.NewUDP(cc, pc.LocalAddr(), loadConfig(i))
	}
	defer func() {
		for _, c := range callers {
			_ = c.Close()
		}
	}()

	elapsed, err := driveBatch(o, func(i int) client.Caller { return callers[i] })
	if err != nil {
		return BatchResult{}, err
	}
	readCalls, readMsgs, writeCalls, _ := s.DatagramIOStats()
	res := newBatchResult(o, elapsed)
	res.ServerReadsPerOp = perOp(readCalls, o.Calls)
	res.ServerWritesPerOp = perOp(writeCalls, o.Calls)
	// One sendto per client call, by construction (retransmissions would
	// add to it, but a loopback run has none to speak of).
	res.ClientWritesPerOp = 1
	res.Batched = readMsgs > readCalls
	return res, nil
}

func newBatchResult(o BatchOptions, elapsed time.Duration) BatchResult {
	res := BatchResult{
		Transport: o.Transport, Mode: o.Mode,
		Clients: o.Clients, Depth: o.Depth,
		Calls: o.Calls, ArraySize: o.ArraySize,
		Elapsed: elapsed,
	}
	if elapsed > 0 {
		res.CallsPerSec = float64(o.Calls) / elapsed.Seconds()
	}
	return res
}

func perOp(n uint64, calls int) float64 {
	if calls == 0 {
		return 0
	}
	return float64(n) / float64(calls)
}

// driveBatch distributes o.Calls over Clients×Depth goroutines (ticket
// counter, as in Throughput). In "calls" mode each ticket is one group:
// batchGroup-1 fire-and-forget calls and a terminal echo call that
// flushes them.
func driveBatch(o BatchOptions, callerFor func(i int) client.Caller) (time.Duration, error) {
	var tickets atomic.Int64
	perTicket := 1
	if o.Mode == "calls" {
		perTicket = batchGroup
	}
	tickets.Store(int64(o.Calls / perTicket))

	var (
		errMu    sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < o.Clients; ci++ {
		for d := 0; d < o.Depth; d++ {
			wg.Add(1)
			go func(c client.Caller) {
				defer wg.Done()
				in := make([]int32, o.ArraySize)
				for i := range in {
					in[i] = int32(i)
				}
				marshal := func(x *xdr.XDR) error {
					return xdr.Array(x, &in, xdr.NoSizeLimit, (*xdr.XDR).Long)
				}
				for tickets.Add(-1) >= 0 {
					if o.Mode == "calls" {
						tc := c.(*client.TCP)
						for k := 0; k < batchGroup-1; k++ {
							if err := tc.CallBatched(loadEcho, marshal); err != nil {
								setErr(err)
								return
							}
						}
					}
					var out []int32
					unmarshal := func(x *xdr.XDR) error {
						return xdr.Array(x, &out, xdr.NoSizeLimit, (*xdr.XDR).Long)
					}
					if err := c.Call(loadEcho, marshal, unmarshal); err != nil {
						setErr(err)
						return
					}
					if len(out) != o.ArraySize {
						setErr(fmt.Errorf("bench: echo length %d, want %d", len(out), o.ArraySize))
						return
					}
				}
			}(callerFor(ci))
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return 0, firstErr
	}
	return elapsed, nil
}

// FormatBatch renders the batched-vs-unbatched table.
func FormatBatch(rows []BatchResult) string {
	var sb strings.Builder
	sb.WriteString("Batch: syscalls per call, counted via conn shims (tcp) / batch-I/O layer (udp)\n")
	fmt.Fprintf(&sb, "%-9s %-6s %8s %6s %7s %12s %9s %9s %9s %6s\n",
		"Transport", "Mode", "Clients", "Depth", "Calls", "Calls/s",
		"cliW/op", "srvW/op", "srvR/op", "mmsg")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-9s %-6s %8d %6d %7d %12.0f %9.3f %9.3f %9.3f %6v\n",
			r.Transport, r.Mode, r.Clients, r.Depth, r.Calls, r.CallsPerSec,
			r.ClientWritesPerOp, r.ServerWritesPerOp, r.ServerReadsPerOp, r.Batched)
	}
	return sb.String()
}
