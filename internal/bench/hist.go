package bench

// A fixed-size log-linear latency histogram in the HDR style: values
// below 64ns land in exact unit buckets; above that, each power-of-two
// octave is split into 32 linear sub-buckets (~3% relative resolution,
// ample for p999 over microsecond-to-second latencies). Recording is one
// atomic add into a fixed array, so many load-generator goroutines can
// record concurrently with no lock and no allocation; percentile
// reconstruction walks the buckets once at the end of the run.

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	histLinear  = 64 // exact buckets for values 0..63
	histSub     = 32 // linear sub-buckets per octave above that
	histOctaves = 57 // covers values up to 2^63-1 ns (~292 years)
	histBuckets = histLinear + histSub*histOctaves
)

type histogram struct {
	counts [histBuckets]atomic.Uint64
	total  atomic.Uint64
}

// histBucket maps a non-negative value to its bucket index.
func histBucket(v uint64) int {
	if v < histLinear {
		return int(v)
	}
	// v in [2^(6+k), 2^(7+k)) for k >= 0: top the octave's upper 32
	// sub-buckets onto the linear range.
	k := bits.Len64(v) - 7
	i := histLinear + k*histSub + int(v>>uint(k+1)) - histSub
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// histValue reconstructs the midpoint of a bucket's value range.
func histValue(i int) uint64 {
	if i < histLinear {
		return uint64(i)
	}
	k := (i - histLinear) / histSub
	sub := uint64((i-histLinear)%histSub) + histSub
	lower := sub << uint(k+1)
	return lower + (1<<uint(k+1))/2
}

func (h *histogram) record(d time.Duration) {
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	h.counts[histBucket(v)].Add(1)
	h.total.Add(1)
}

// quantile returns the latency at quantile q (0 < q <= 1), or 0 when
// nothing was recorded.
func (h *histogram) quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	target := uint64(q*float64(total) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= target {
			return time.Duration(histValue(i))
		}
	}
	return 0
}

// max returns the midpoint of the highest occupied bucket.
func (h *histogram) max() time.Duration {
	for i := histBuckets - 1; i >= 0; i-- {
		if h.counts[i].Load() != 0 {
			return time.Duration(histValue(i))
		}
	}
	return 0
}

func (h *histogram) count() uint64 { return h.total.Load() }
