package bench

import (
	"math"
	"testing"
)

// The syscalls/op pins here are counter-based and deterministic where
// the mode's arithmetic is scheduling-independent: "off" issues exactly
// one client write per call, "calls" exactly one per batchGroup.

func runBatch(t *testing.T, o BatchOptions) BatchResult {
	t.Helper()
	res, err := Batch(o)
	if err != nil {
		t.Fatalf("Batch(%+v): %v", o, err)
	}
	return res
}

// TestBatchTCPOffWritesPerOp: with batching off, every call is one
// client write syscall — the 1.0 baseline the other modes are measured
// against.
func TestBatchTCPOffWritesPerOp(t *testing.T) {
	res := runBatch(t, BatchOptions{Transport: "tcp", Mode: "off",
		Clients: 1, Depth: 1, Calls: 64})
	if res.ClientWritesPerOp != 1.0 {
		t.Fatalf("off-mode client writes/op = %v, want exactly 1.0", res.ClientWritesPerOp)
	}
	if res.ServerReadsPerOp <= 0 || res.ServerWritesPerOp <= 0 {
		t.Fatalf("server counters missing: reads/op=%v writes/op=%v",
			res.ServerReadsPerOp, res.ServerWritesPerOp)
	}
}

// TestBatchTCPCallsWritesPerOp: ONC batched calls are deterministic —
// batchGroup-1 queued records and the terminal call leave in one
// coalesced write, so writes/op is exactly 1/batchGroup at any depth.
// This is the depth>=4 syscall-reduction pin of the acceptance
// criteria, counted rather than timed.
func TestBatchTCPCallsWritesPerOp(t *testing.T) {
	for _, depth := range []int{1, 4} {
		res := runBatch(t, BatchOptions{Transport: "tcp", Mode: "calls",
			Clients: 1, Depth: depth, Calls: 64})
		want := 1.0 / batchGroup
		if math.Abs(res.ClientWritesPerOp-want) > 1e-9 {
			t.Fatalf("depth %d: calls-mode client writes/op = %v, want exactly %v",
				depth, res.ClientWritesPerOp, want)
		}
		if res.ClientWritesPerOp >= 1.0 {
			t.Fatalf("depth %d: no reduction vs the off baseline (%v >= 1.0)",
				depth, res.ClientWritesPerOp)
		}
	}
}

// TestBatchTCPOnBounded: group-commit coalescing never writes more than
// once per record (each record leaves in exactly one flush), so even
// under adversarial scheduling writes/op is bounded by the baseline.
func TestBatchTCPOnBounded(t *testing.T) {
	res := runBatch(t, BatchOptions{Transport: "tcp", Mode: "on",
		Clients: 2, Depth: 4, Calls: 400})
	if res.ClientWritesPerOp > 1.0 {
		t.Fatalf("on-mode client writes/op = %v, exceeds the one-write-per-record bound",
			res.ClientWritesPerOp)
	}
	if res.ClientWritesPerOp <= 0 {
		t.Fatalf("on-mode client writes/op = %v, counters not wired", res.ClientWritesPerOp)
	}
}

// TestBatchUDPModes: both datagram modes run end to end over real
// loopback sockets and report server-side counters from the batch-I/O
// layer; each recvmmsg/recvfrom call yields at least one message, so
// reads/op can never exceed ~1 (retransmissions aside).
func TestBatchUDPModes(t *testing.T) {
	for _, mode := range []string{"off", "on"} {
		res := runBatch(t, BatchOptions{Transport: "udp", Mode: mode,
			Clients: 2, Depth: 4, Calls: 200})
		if res.ServerReadsPerOp <= 0 || res.ServerWritesPerOp <= 0 {
			t.Fatalf("%s: server counters missing: reads/op=%v writes/op=%v",
				mode, res.ServerReadsPerOp, res.ServerWritesPerOp)
		}
		if res.ServerReadsPerOp > 1.1 {
			t.Fatalf("%s: server reads/op = %v, above the one-message-per-call bound",
				mode, res.ServerReadsPerOp)
		}
		if mode == "off" && res.Batched {
			t.Fatalf("off: mmsg path reported active with batch size 1")
		}
	}
}

// TestBatchOptionValidation: calls mode is stream-only and unknown
// modes are rejected rather than silently measured as something else.
func TestBatchOptionValidation(t *testing.T) {
	if _, err := Batch(BatchOptions{Transport: "udp", Mode: "calls"}); err == nil {
		t.Fatal("udp batched-calls accepted; want error")
	}
	if _, err := Batch(BatchOptions{Transport: "tcp", Mode: "bogus"}); err == nil {
		t.Fatal("unknown mode accepted; want error")
	}
}

// TestFormatBatch smoke-checks the table renderer.
func TestFormatBatch(t *testing.T) {
	out := FormatBatch([]BatchResult{{
		Transport: "tcp", Mode: "calls", Clients: 1, Depth: 4,
		Calls: 64, ClientWritesPerOp: 0.125,
	}})
	if out == "" {
		t.Fatal("empty table")
	}
}
