package livespecrpc

import "specrpc/internal/wire"

// PlanArr exposes the generated echo-array plan to the live-spec
// harness. Calling the typed entry points with this plan routes
// marshaling through the compiled routines stubs.go registered for it;
// the harness's own plans stay on the interpreter, so the two series
// differ only in the marshaling engine.
var PlanArr *wire.Plan[Livearr] = planLivearr
