package bench

// Open-loop mode: the closed-loop throughput harness (throughput.go)
// can only show how fast the pipeline spins when every caller waits for
// its reply — under overload it politely slows down with the server and
// the tail disappears from view. Here arrivals come from a Poisson
// process at a configured offered rate, independent of completions, and
// every latency is measured from the *scheduled* arrival instant, so
// queueing delay (and scheduler overshoot) is charged to the server the
// way a real user would experience it — the coordinated-omission-free
// measurement. Sustained p50/p99/p999 under a rate grid is the metric
// that decides whether the sharded call-tracking state actually helps:
// a single contended lock shows up as a fat tail long before it shows
// up in mean throughput.

import (
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"specrpc/internal/client"
	"specrpc/internal/netsim"
	"specrpc/internal/server"
	"specrpc/internal/xdr"
)

// OpenLoopOptions configures one open-loop run.
type OpenLoopOptions struct {
	// Transport: "sim", "udp", or "tcp" (as in ThroughputOptions).
	Transport string
	// Conns is the number of client connections arrivals round-robin
	// over. Default 4.
	Conns int
	// Depth bounds the in-flight calls per connection: an arrival that
	// finds its connection saturated is dropped and counted, mirroring
	// the server's counted-drop admission policy. Default 16.
	Depth int
	// Rate is the offered arrival rate in calls/sec (Poisson). Default 2000.
	Rate float64
	// Duration is the arrival window. Default 1s.
	Duration time.Duration
	// ArraySize is the number of int32s echoed per call. Default 20.
	ArraySize int
	// Workers overrides the server worker bound (0 = server default).
	Workers int
	// Shards overrides the server's call-tracking shard count: 0 keeps
	// the server default, 1 is the single-lock pre-sharding baseline.
	Shards int
	// Seed fixes the arrival process (0 = seed 1, for reproducibility).
	Seed int64
}

func (o *OpenLoopOptions) fill() {
	if o.Transport == "" {
		o.Transport = "sim"
	}
	if o.Conns <= 0 {
		o.Conns = 4
	}
	if o.Depth <= 0 {
		o.Depth = 16
	}
	if o.Rate <= 0 {
		o.Rate = 2000
	}
	if o.Duration <= 0 {
		o.Duration = time.Second
	}
	if o.ArraySize <= 0 {
		o.ArraySize = 20
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// OpenLoopResult is one measured configuration. Latency quantiles are
// in microseconds, measured from each call's scheduled Poisson arrival.
type OpenLoopResult struct {
	Transport    string  `json:"transport"`
	Conns        int     `json:"conns"`
	Depth        int     `json:"depth"`
	ArraySize    int     `json:"n"`
	Shards       int     `json:"shards"` // 0 = server default
	OfferedRate  float64 `json:"offered_rate"`
	AchievedRate float64 `json:"achieved_rate"`
	Offered      int64   `json:"offered"`
	Completed    int64   `json:"completed"`
	Dropped      int64   `json:"dropped"` // shed client-side at full depth
	Errors       int64   `json:"errors"`
	P50Us        float64 `json:"p50_us"`
	P90Us        float64 `json:"p90_us"`
	P99Us        float64 `json:"p99_us"`
	P999Us       float64 `json:"p999_us"`
	MaxUs        float64 `json:"max_us"`
}

// loadRig is one live echo service plus n client connections, shared by
// the closed- and open-loop harnesses.
type loadRig struct {
	callers []client.Caller
	srv     *server.Server
	extra   []func() error // transport handles closed on teardown
}

func (r *loadRig) close() {
	for _, c := range r.callers {
		_ = c.Close()
	}
	_ = r.srv.Close()
	for _, f := range r.extra {
		_ = f()
	}
}

// newLoadRig builds the echo server over the named transport and dials
// clients connections to it.
func newLoadRig(transport string, clients int, g *gauge, srvOpts ...server.Option) (*loadRig, error) {
	s := newLoadServer(g, srvOpts...)
	r := &loadRig{srv: s}
	ok := false
	defer func() {
		if !ok {
			r.close()
		}
	}()
	switch transport {
	case "sim":
		n := netsim.New()
		ep := n.Attach("server")
		go func() { _ = s.ServeUDP(ep) }()
		for i := 0; i < clients; i++ {
			cep := n.Attach(netsim.Addr(fmt.Sprintf("client-%d", i)))
			r.callers = append(r.callers, client.NewUDP(cep, netsim.Addr("server"), loadConfig(i)))
		}
	case "udp":
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("bench: loopback udp: %w", err)
		}
		// Closed on teardown as well as by s.Close(): if setup errors out
		// below, Close may run before the serve goroutine has registered
		// pc with the server, which would leave the serve loop blocked
		// forever.
		r.extra = append(r.extra, pc.Close)
		go func() { _ = s.ServeUDP(pc) }()
		for i := 0; i < clients; i++ {
			cc, err := net.ListenPacket("udp", "127.0.0.1:0")
			if err != nil {
				return nil, fmt.Errorf("bench: client socket: %w", err)
			}
			r.callers = append(r.callers, client.NewUDP(cc, pc.LocalAddr(), loadConfig(i)))
		}
	case "tcp":
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("bench: loopback tcp: %w", err)
		}
		r.extra = append(r.extra, ln.Close) // see the udp case
		go func() { _ = s.ServeTCP(ln) }()
		for i := 0; i < clients; i++ {
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				return nil, fmt.Errorf("bench: dial: %w", err)
			}
			r.callers = append(r.callers, client.NewTCP(conn, loadConfig(i)))
		}
	default:
		return nil, fmt.Errorf("bench: unknown transport %q", transport)
	}
	ok = true
	return r, nil
}

// OpenLoop runs one open-loop configuration and reports the tail.
func OpenLoop(o OpenLoopOptions) (OpenLoopResult, error) {
	o.fill()
	var srvOpts []server.Option
	if o.Workers > 0 {
		srvOpts = append(srvOpts, server.WithWorkers(o.Workers))
	}
	if o.Shards > 0 {
		srvOpts = append(srvOpts, server.WithShards(o.Shards))
	}
	rig, err := newLoadRig(o.Transport, o.Conns, newGauge(0), srvOpts...)
	if err != nil {
		return OpenLoopResult{}, err
	}
	defer rig.close()

	var (
		hist      histogram
		completed atomic.Int64
		errCount  atomic.Int64
		dropped   int64
		offered   int64
		wg        sync.WaitGroup
	)
	// Per-connection depth tokens: an arrival beyond Depth in-flight
	// calls on its connection is shed (counted), not queued — queueing
	// client-side would hide server latency behind generator latency.
	sems := make([]chan struct{}, o.Conns)
	for i := range sems {
		sems[i] = make(chan struct{}, o.Depth)
	}
	argPool := sync.Pool{New: func() any {
		in := make([]int32, o.ArraySize)
		for i := range in {
			in[i] = int32(i)
		}
		return &in
	}}

	// spinWindow is how close to an arrival the generator switches from
	// sleeping to spinning on the clock. It must exceed the runtime's
	// typical sleep overshoot (hundreds of microseconds on a loaded
	// host), or the overshoot lands inside every measured latency. On a
	// host with only a core or two the generator and the system under
	// test share CPUs, and spinning would starve the server it measures:
	// there we sleep to the schedule and accept the overshoot — it is
	// charged identically to every configuration under comparison.
	spinWindow := 2 * time.Millisecond
	if runtime.GOMAXPROCS(0) <= 2 {
		spinWindow = 0
	}
	rng := rand.New(rand.NewSource(o.Seed))
	start := time.Now()
	deadline := start.Add(o.Duration)
	next := start
	for i := 0; ; i++ {
		// Exponential inter-arrival gaps make the schedule Poisson; the
		// schedule never slips to completions (that would be closed-loop),
		// so falling behind surfaces as latency, not as a lower rate.
		next = next.Add(time.Duration(rng.ExpFloat64() / o.Rate * float64(time.Second)))
		if next.After(deadline) {
			break
		}
		// Sleep coarse, spin fine (see spinWindow above): runtime timers
		// overshoot, and the overshoot is charged to the call since
		// latency is measured from the scheduled instant.
		if d := time.Until(next); d > spinWindow {
			time.Sleep(d - spinWindow)
		}
		for spinWindow > 0 && time.Now().Before(next) {
			runtime.Gosched()
		}
		offered++
		ci := i % o.Conns
		select {
		case sems[ci] <- struct{}{}:
		default:
			dropped++
			continue
		}
		wg.Add(1)
		go func(c client.Caller, sched time.Time, sem chan struct{}) {
			defer wg.Done()
			defer func() { <-sem }()
			inp := argPool.Get().(*[]int32)
			defer argPool.Put(inp)
			var out []int32
			err := c.Call(loadEcho,
				func(x *xdr.XDR) error { return xdr.Array(x, inp, xdr.NoSizeLimit, (*xdr.XDR).Long) },
				func(x *xdr.XDR) error { return xdr.Array(x, &out, xdr.NoSizeLimit, (*xdr.XDR).Long) })
			if err != nil {
				errCount.Add(1)
				return
			}
			hist.record(time.Since(sched))
			completed.Add(1)
		}(rig.callers[ci], next, sems[ci])
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := OpenLoopResult{
		Transport:   o.Transport,
		Conns:       o.Conns,
		Depth:       o.Depth,
		ArraySize:   o.ArraySize,
		Shards:      o.Shards,
		OfferedRate: o.Rate,
		Offered:     offered,
		Completed:   completed.Load(),
		Dropped:     dropped,
		Errors:      errCount.Load(),
		P50Us:       us(hist.quantile(0.50)),
		P90Us:       us(hist.quantile(0.90)),
		P99Us:       us(hist.quantile(0.99)),
		P999Us:      us(hist.quantile(0.999)),
		MaxUs:       us(hist.max()),
	}
	if elapsed > 0 {
		res.AchievedRate = float64(res.Completed) / elapsed.Seconds()
	}
	return res, nil
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// OpenLoopGrid measures each configuration reps times and reports the
// median-p99 run per configuration. Open-loop tails on a shared (or
// single-core) host are dominated by scheduling outliers, so a single
// run is one host stall away from nonsense; the rounds interleave the
// configurations (A B A B ... rather than A A B B) so slow host drift
// biases no single one, and the median rep is the noise-aware point
// estimate.
func OpenLoopGrid(opts []OpenLoopOptions, reps int) ([]OpenLoopResult, error) {
	if reps < 1 {
		reps = 1
	}
	runs := make([][]OpenLoopResult, len(opts))
	for r := 0; r < reps; r++ {
		for i, o := range opts {
			res, err := OpenLoop(o)
			if err != nil {
				return nil, err
			}
			runs[i] = append(runs[i], res)
		}
	}
	out := make([]OpenLoopResult, len(opts))
	for i, rs := range runs {
		sort.Slice(rs, func(a, b int) bool { return rs[a].P99Us < rs[b].P99Us })
		out[i] = rs[len(rs)/2]
	}
	return out, nil
}

// OpenLoopMedian is OpenLoopGrid for a single configuration.
func OpenLoopMedian(o OpenLoopOptions, reps int) (OpenLoopResult, error) {
	rs, err := OpenLoopGrid([]OpenLoopOptions{o}, reps)
	if err != nil {
		return OpenLoopResult{}, err
	}
	return rs[0], nil
}

// FormatOpenLoop renders the open-loop grid with its latency tail.
func FormatOpenLoop(rows []OpenLoopResult) string {
	var sb strings.Builder
	sb.WriteString("Open loop: Poisson arrivals, latency from scheduled arrival (shards=0 means server default)\n")
	fmt.Fprintf(&sb, "%-9s %6s %6s %7s %10s %10s %6s %5s %10s %10s %10s %10s\n",
		"Transport", "Conns", "Depth", "Shards", "Offer/s", "Achieved/s", "Drop", "Err", "p50(us)", "p99(us)", "p999(us)", "max(us)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-9s %6d %6d %7d %10.0f %10.0f %6d %5d %10.1f %10.1f %10.1f %10.1f\n",
			r.Transport, r.Conns, r.Depth, r.Shards, r.OfferedRate, r.AchievedRate,
			r.Dropped, r.Errors, r.P50Us, r.P99Us, r.P999Us, r.MaxUs)
	}
	return sb.String()
}
