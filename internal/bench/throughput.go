package bench

// Throughput mode: where the paper's tables price one call through the
// deterministic cost models, this harness drives the real concurrent
// transport — many client goroutines multiplexed over few connections —
// and measures sustained calls per second plus the peak number of
// handler executions in flight on the server. Scaling is measured, not
// asserted.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"specrpc/internal/client"
	"specrpc/internal/server"
	"specrpc/internal/xdr"
)

// Load-test service identity (distinct from the paper's benchmark
// program so the two harnesses never collide on a portmapper).
const (
	loadProg = uint32(0x20000531)
	loadVers = uint32(1)
	loadEcho = uint32(1)
)

// ThroughputOptions configures one throughput run.
type ThroughputOptions struct {
	// Transport selects the stack: "sim" (in-process netsim datagrams),
	// "udp" (real loopback sockets), or "tcp" (one record-marked stream
	// per client connection).
	Transport string
	// Clients is the number of connections (sockets). Default 1.
	Clients int
	// Depth is the number of goroutines issuing calls concurrently over
	// each connection — the in-flight pipeline depth. Default 1.
	Depth int
	// Calls is the total number of calls across all goroutines.
	// Default 1000.
	Calls int
	// ArraySize is the number of int32s echoed per call. Default 20.
	ArraySize int
	// MinInFlight, when positive, gates the server handler: the first
	// calls block until MinInFlight handlers are running at once, then
	// everything flows. It turns "the transport sustains N in-flight
	// calls" into a deterministic property instead of a race: the run
	// can only complete if the client really keeps that many calls
	// outstanding. It is capped at Clients*Depth (more could never
	// arrive, and would deadlock).
	MinInFlight int
	// Workers overrides the server worker bound (0 = server default).
	Workers int
}

func (o *ThroughputOptions) fill() {
	if o.Transport == "" {
		o.Transport = "sim"
	}
	if o.Clients <= 0 {
		o.Clients = 1
	}
	if o.Depth <= 0 {
		o.Depth = 1
	}
	if o.Calls <= 0 {
		o.Calls = 1000
	}
	if o.ArraySize <= 0 {
		o.ArraySize = 20
	}
	if o.MinInFlight > o.Clients*o.Depth {
		o.MinInFlight = o.Clients * o.Depth
	}
	if o.MinInFlight > o.Calls {
		o.MinInFlight = o.Calls
	}
	// The gate needs the server to admit MinInFlight handlers at once;
	// raise the worker bound if the default would be too small.
	if o.MinInFlight > 0 && o.Workers < o.MinInFlight {
		o.Workers = o.MinInFlight
	}
}

// ThroughputResult is one measured configuration.
type ThroughputResult struct {
	Transport   string
	Clients     int
	Depth       int
	Calls       int
	ArraySize   int
	Elapsed     time.Duration
	CallsPerSec float64
	// MaxInFlight is the peak number of concurrently executing handlers
	// observed by the server-side gauge.
	MaxInFlight int
}

// gauge counts concurrent handler executions and optionally latches the
// first calls until `want` run at once.
type gauge struct {
	mu     sync.Mutex
	cur    int
	max    int
	want   int
	opened bool
	open   chan struct{}
}

func newGauge(want int) *gauge {
	g := &gauge{want: want, open: make(chan struct{})}
	if want <= 0 {
		g.opened = true
		close(g.open)
	}
	return g
}

func (g *gauge) enter() {
	g.mu.Lock()
	g.cur++
	if g.cur > g.max {
		g.max = g.cur
	}
	if !g.opened && g.cur >= g.want {
		g.opened = true
		close(g.open)
	}
	g.mu.Unlock()
	<-g.open
}

func (g *gauge) exit() {
	g.mu.Lock()
	g.cur--
	g.mu.Unlock()
}

func (g *gauge) peak() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.max
}

// newLoadServer builds the echo server with the in-flight gauge wired in.
func newLoadServer(g *gauge, opts ...server.Option) *server.Server {
	s := server.New(opts...)
	s.Register(loadProg, loadVers, loadEcho, func(dec *xdr.XDR) (server.Marshal, error) {
		g.enter()
		defer g.exit()
		var arr []int32
		if err := xdr.Array(dec, &arr, xdr.NoSizeLimit, (*xdr.XDR).Long); err != nil {
			return nil, errors.Join(server.ErrGarbageArgs, err)
		}
		return func(enc *xdr.XDR) error {
			return xdr.Array(enc, &arr, xdr.NoSizeLimit, (*xdr.XDR).Long)
		}, nil
	})
	return s
}

func loadConfig(i int) client.Config {
	return client.Config{
		Prog: loadProg, Vers: loadVers,
		Timeout:  30 * time.Second,
		FirstXID: uint32(1 + i*1_000_000),
	}
}

// Throughput runs one configuration and reports the measured rate.
func Throughput(o ThroughputOptions) (ThroughputResult, error) {
	o.fill()
	g := newGauge(o.MinInFlight)
	var srvOpts []server.Option
	if o.Workers > 0 {
		srvOpts = append(srvOpts, server.WithWorkers(o.Workers))
	}
	rig, err := newLoadRig(o.Transport, o.Clients, g, srvOpts...)
	if err != nil {
		return ThroughputResult{}, err
	}
	defer rig.close()
	callers := rig.callers

	// Distribute o.Calls over Clients*Depth goroutines; a shared ticket
	// counter keeps the total exact regardless of scheduling.
	var tickets atomic.Int64
	tickets.Store(int64(o.Calls))
	var (
		errMu    sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < o.Clients; ci++ {
		for d := 0; d < o.Depth; d++ {
			wg.Add(1)
			go func(c client.Caller) {
				defer wg.Done()
				in := make([]int32, o.ArraySize)
				for i := range in {
					in[i] = int32(i)
				}
				marshal := func(x *xdr.XDR) error {
					return xdr.Array(x, &in, xdr.NoSizeLimit, (*xdr.XDR).Long)
				}
				for tickets.Add(-1) >= 0 {
					var out []int32
					unmarshal := func(x *xdr.XDR) error {
						return xdr.Array(x, &out, xdr.NoSizeLimit, (*xdr.XDR).Long)
					}
					if err := c.Call(loadEcho, marshal, unmarshal); err != nil {
						setErr(err)
						return
					}
					if len(out) != o.ArraySize {
						setErr(fmt.Errorf("bench: echo length %d, want %d", len(out), o.ArraySize))
						return
					}
				}
			}(callers[ci])
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	if firstErr != nil {
		return ThroughputResult{}, firstErr
	}
	res := ThroughputResult{
		Transport:   o.Transport,
		Clients:     o.Clients,
		Depth:       o.Depth,
		Calls:       o.Calls,
		ArraySize:   o.ArraySize,
		Elapsed:     elapsed,
		MaxInFlight: g.peak(),
	}
	if elapsed > 0 {
		res.CallsPerSec = float64(o.Calls) / elapsed.Seconds()
	}
	return res, nil
}

// FormatThroughput renders a table of throughput results.
func FormatThroughput(rows []ThroughputResult) string {
	var sb strings.Builder
	sb.WriteString("Throughput: concurrent clients x in-flight depth (echo of 4-byte ints)\n")
	fmt.Fprintf(&sb, "%-9s %8s %6s %7s %6s %12s %12s %10s\n",
		"Transport", "Clients", "Depth", "Calls", "N", "Elapsed", "Calls/s", "InFlight")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-9s %8d %6d %7d %6d %12s %12.0f %10d\n",
			r.Transport, r.Clients, r.Depth, r.Calls, r.ArraySize,
			r.Elapsed.Round(time.Millisecond), r.CallsPerSec, r.MaxInFlight)
	}
	return sb.String()
}
