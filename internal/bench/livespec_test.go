package bench

import (
	"fmt"
	"strings"
	"testing"

	"specrpc/internal/wire"
	"specrpc/internal/xdr"
)

// TestLiveSpecSim runs a small live comparison over netsim and checks
// shape and self-consistency; the real numbers come from sunbench.
func TestLiveSpecSim(t *testing.T) {
	rows, err := LiveSpec(LiveSpecOptions{
		Transports: []string{"sim"},
		Sizes:      []int{20, 250},
		Calls:      40,
		Warmup:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(LiveModes) {
		t.Fatalf("%d rows, want %d", len(rows), 2*len(LiveModes))
	}
	for _, r := range rows {
		if r.NsPerCall <= 0 || r.CallsPerSec <= 0 {
			t.Errorf("%s/%s/N=%d: non-positive measurement %+v", r.Transport, r.Mode, r.N, r)
		}
	}
	out := FormatLiveSpec(rows)
	for _, want := range []string{"Transport", "Generic", "Specialized", "Chunked", "sim"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}

// benchSizes is the paper's grid, the one the acceptance criteria cite.
var benchSizes = Sizes

// BenchmarkLiveSpecEncode measures the client marshaling stage (paper
// Table 1) on the live encode path: plan -> pooled growable buffer. The
// specialized and chunked plans must be allocation-free here.
func BenchmarkLiveSpecEncode(b *testing.B) {
	for _, m := range LiveModes {
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("%s/N=%d", m, n), func(b *testing.B) {
				plan := LivePlan(m)
				args := make([]int32, n)
				for i := range args {
					args[i] = int32(i * 13)
				}
				bs := xdr.NewBufEncode(make([]byte, 0, 4*n+64))
				enc := xdr.NewEncoder(bs)
				b.ReportAllocs()
				b.SetBytes(int64(4*n + 4))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					bs.Reset()
					if err := plan.Marshal(enc, &args); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkLiveSpecDecode measures the unmarshal stage over the memory
// stream the transports decode replies from.
func BenchmarkLiveSpecDecode(b *testing.B) {
	for _, m := range LiveModes {
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("%s/N=%d", m, n), func(b *testing.B) {
				plan := LivePlan(m)
				args := make([]int32, n)
				for i := range args {
					args[i] = int32(i * 13)
				}
				bs := xdr.NewBufEncode(nil)
				if err := plan.Marshal(xdr.NewEncoder(bs), &args); err != nil {
					b.Fatal(err)
				}
				raw := bs.Buffer()
				out := make([]int32, n)
				ms := xdr.NewMemDecode(raw)
				dec := xdr.NewDecoder(ms)
				b.ReportAllocs()
				b.SetBytes(int64(len(raw)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ms.Reset()
					if err := plan.Marshal(dec, &out); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// TestLiveSpecEncodeAllocFree pins the acceptance criterion directly:
// the specialized plan encodes the whole grid with zero allocations.
func TestLiveSpecEncodeAllocFree(t *testing.T) {
	for _, m := range []wire.Mode{wire.Specialized, wire.Chunked} {
		for _, n := range benchSizes {
			plan := LivePlan(m)
			args := make([]int32, n)
			bs := xdr.NewBufEncode(make([]byte, 0, 4*n+64))
			enc := xdr.NewEncoder(bs)
			if err := plan.Marshal(enc, &args); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(50, func() {
				bs.Reset()
				if err := plan.Marshal(enc, &args); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("%v N=%d: %.1f allocs/op on encode, want 0", m, n, allocs)
			}
		}
	}
}
