package bench

import (
	"unsafe"

	"fmt"
	"strings"
	"testing"

	"specrpc/internal/bench/livespecrpc"
	"specrpc/internal/rpcmsg"
	"specrpc/internal/wire"
	"specrpc/internal/xdr"
)

// TestLiveSpecSim runs a small live comparison over netsim and checks
// shape and self-consistency; the real numbers come from sunbench.
func TestLiveSpecSim(t *testing.T) {
	rows, err := LiveSpec(LiveSpecOptions{
		Transports: []string{"sim"},
		Sizes:      []int{20, 250},
		Calls:      40,
		Warmup:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * (len(LiveModes) + 2); len(rows) != want { // +2: the fused and compiled series
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.NsPerCall <= 0 || r.CallsPerSec <= 0 {
			t.Errorf("%s/%s/N=%d: non-positive measurement %+v", r.Transport, r.Mode, r.N, r)
		}
	}
	out := FormatLiveSpec(rows)
	for _, want := range []string{"Transport", "Generic", "Specialized", "Chunked", "Fused", "Compiled", "sim"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}

// TestLiveSpecReps pins the median-of-passes merge: the grid shape is
// identical to a single pass (same points, same order) and every point
// still carries a positive median measurement.
func TestLiveSpecReps(t *testing.T) {
	rows, err := LiveSpec(LiveSpecOptions{
		Transports: []string{"sim"},
		Sizes:      []int{20},
		Calls:      10,
		Warmup:     2,
		Reps:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(LiveModes) + 2; len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
	for i, r := range rows {
		if r.Transport != "sim" || r.N != 20 {
			t.Errorf("row %d: unexpected point %s/N=%d", i, r.Transport, r.N)
		}
		if r.NsPerCall <= 0 || r.CallsPerSec <= 0 {
			t.Errorf("%s/%s: non-positive median %+v", r.Transport, r.Mode, r)
		}
	}
}

// TestLiveSpecSkipFused keeps the three-series shape reachable.
func TestLiveSpecSkipFused(t *testing.T) {
	rows, err := LiveSpec(LiveSpecOptions{
		Transports: []string{"sim"},
		Sizes:      []int{20},
		Calls:      10,
		Warmup:     2,
		SkipFused:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(LiveModes) {
		t.Fatalf("%d rows, want %d", len(rows), len(LiveModes))
	}
	for _, r := range rows {
		if r.Mode == FusedSeries || r.Mode == CompiledSeries {
			t.Fatalf("%s series present despite SkipFused", r.Mode)
		}
	}
}

// benchSizes is the paper's grid, the one the acceptance criteria cite.
var benchSizes = Sizes

// BenchmarkLiveSpecEncode measures the client marshaling stage (paper
// Table 1) on the live encode path: plan -> pooled growable buffer. The
// specialized and chunked plans must be allocation-free here.
func BenchmarkLiveSpecEncode(b *testing.B) {
	for _, m := range LiveModes {
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("%s/N=%d", m, n), func(b *testing.B) {
				plan := LivePlan(m)
				args := make([]int32, n)
				for i := range args {
					args[i] = int32(i * 13)
				}
				bs := xdr.NewBufEncode(make([]byte, 0, 4*n+64))
				enc := xdr.NewEncoder(bs)
				b.ReportAllocs()
				b.SetBytes(int64(4*n + 4))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					bs.Reset()
					if err := plan.Marshal(enc, &args); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkLiveSpecDecode measures the unmarshal stage over the memory
// stream the transports decode replies from.
func BenchmarkLiveSpecDecode(b *testing.B) {
	for _, m := range LiveModes {
		for _, n := range benchSizes {
			b.Run(fmt.Sprintf("%s/N=%d", m, n), func(b *testing.B) {
				plan := LivePlan(m)
				args := make([]int32, n)
				for i := range args {
					args[i] = int32(i * 13)
				}
				bs := xdr.NewBufEncode(nil)
				if err := plan.Marshal(xdr.NewEncoder(bs), &args); err != nil {
					b.Fatal(err)
				}
				raw := bs.Buffer()
				out := make([]int32, n)
				ms := xdr.NewMemDecode(raw)
				dec := xdr.NewDecoder(ms)
				b.ReportAllocs()
				b.SetBytes(int64(len(raw)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ms.Reset()
					if err := plan.Marshal(dec, &out); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// TestLiveSpecEncodeAllocFree pins the acceptance criterion directly:
// the specialized plan encodes the whole grid with zero allocations.
func TestLiveSpecEncodeAllocFree(t *testing.T) {
	for _, m := range []wire.Mode{wire.Specialized, wire.Chunked} {
		for _, n := range benchSizes {
			plan := LivePlan(m)
			args := make([]int32, n)
			bs := xdr.NewBufEncode(make([]byte, 0, 4*n+64))
			enc := xdr.NewEncoder(bs)
			if err := plan.Marshal(enc, &args); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(50, func() {
				bs.Reset()
				if err := plan.Marshal(enc, &args); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("%v N=%d: %.1f allocs/op on encode, want 0", m, n, allocs)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Fused whole-call series: the complete message (header + args) in one
// codec pass, measured against the same grid.

// fusedBenchPlans compiles the whole-call codecs the live fused series
// runs on: client identity, fused procedure, specialized int-array plan.
func fusedBenchPlans(tb testing.TB) (*wire.CallPlan[[]int32], *wire.ReplyPlan[[]int32]) {
	tb.Helper()
	tmpl, err := rpcmsg.NewCallTemplate(liveProg, liveVers, rpcmsg.None(), rpcmsg.None())
	if err != nil {
		tb.Fatal(err)
	}
	cp, err := wire.NewCallPlan(tmpl, liveProcFused, LivePlan(wire.Specialized))
	if err != nil {
		tb.Fatal(err)
	}
	rp, err := wire.NewReplyPlan(rpcmsg.MustReplyTemplate(rpcmsg.None()), LivePlan(wire.Specialized))
	if err != nil {
		tb.Fatal(err)
	}
	return cp, rp
}

// BenchmarkLiveFusedEncode measures the whole call message — header and
// arguments fused into one codec pass — on the paper's grid.
func BenchmarkLiveFusedEncode(b *testing.B) {
	cp, _ := fusedBenchPlans(b)
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			args := make([]int32, n)
			for i := range args {
				args[i] = int32(i * 13)
			}
			buf := make([]byte, 0, 4*n+128)
			bs := xdr.NewBufEncode(buf)
			b.ReportAllocs()
			b.SetBytes(int64(4*n + 4 + 40))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bs.SetBuffer(buf[:0])
				if err := cp.AppendCall(bs, uint32(i), &args); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLiveFusedDecode measures result decode straight out of the
// raw accepted-success reply, no intermediate handle.
func BenchmarkLiveFusedDecode(b *testing.B) {
	_, rp := fusedBenchPlans(b)
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			res := make([]int32, n)
			bs := xdr.NewBufEncode(nil)
			if err := rp.AppendReply(bs, 7, &res); err != nil {
				b.Fatal(err)
			}
			raw := append([]byte(nil), bs.Buffer()...)
			out := make([]int32, n)
			b.ReportAllocs()
			b.SetBytes(int64(len(raw)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if handled, err := rp.DecodeReply(raw, &out); !handled || err != nil {
					b.Fatal(handled, err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Compiled-stub series: the same whole-call messages produced by the
// rpcgen-emitted straight-line routines, measured against the same grid.

// compiledBenchCodecs builds the compiled whole-call codecs the live
// compiled series runs on, failing if the generated registration is
// missing (the silent fallback would quietly re-measure the fused path).
func compiledBenchCodecs(tb testing.TB) (*wire.CompiledCallCodec, *wire.CompiledReplyCodec, *wire.CompiledReplyCodec) {
	tb.Helper()
	tmpl, err := rpcmsg.NewCallTemplate(liveProg, liveVers, rpcmsg.None(), rpcmsg.None())
	if err != nil {
		tb.Fatal(err)
	}
	codec := livespecrpc.PlanArr.Codec()
	cc := wire.NewCompiledCallCodec(tmpl, liveProcCompiled, codec)
	enc := wire.NewCompiledReplyCodec(rpcmsg.MustReplyTemplate(rpcmsg.None()), codec)
	dec := wire.NewCompiledReplyCodec(nil, codec)
	if cc == nil || enc == nil || dec == nil {
		tb.Fatal("livespecrpc compiled codecs not registered")
	}
	return cc, enc, dec
}

// BenchmarkLiveCompiledEncode measures the whole call message through
// the emitted straight-line encoder — the compiled counterpart of
// BenchmarkLiveFusedEncode, so the two are directly comparable without
// loopback noise in the way.
func BenchmarkLiveCompiledEncode(b *testing.B) {
	cc, _, _ := compiledBenchCodecs(b)
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			args := make(livespecrpc.Livearr, n)
			for i := range args {
				args[i] = int32(i * 13)
			}
			buf := make([]byte, 0, 4*n+128)
			bs := xdr.NewBufEncode(buf)
			b.ReportAllocs()
			b.SetBytes(int64(4*n + 4 + 40))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bs.SetBuffer(buf[:0])
				if err := cc.Append(bs, uint32(i), unsafe.Pointer(&args)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLiveCompiledDecode measures result decode through the
// emitted straight-line decoder out of a raw accepted-success reply.
func BenchmarkLiveCompiledDecode(b *testing.B) {
	_, enc, dec := compiledBenchCodecs(b)
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			res := make(livespecrpc.Livearr, n)
			bs := xdr.NewBufEncode(nil)
			if err := enc.Append(bs, 7, unsafe.Pointer(&res)); err != nil {
				b.Fatal(err)
			}
			raw := append([]byte(nil), bs.Buffer()...)
			out := make(livespecrpc.Livearr, n)
			b.ReportAllocs()
			b.SetBytes(int64(len(raw)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if handled, err := dec.DecodeReply(raw, unsafe.Pointer(&out)); !handled || err != nil {
					b.Fatal(handled, err)
				}
			}
		})
	}
}

// TestLiveCompiledAllocFree pins the compiled series' acceptance
// criterion: whole-call encode and whole-reply decode at zero
// allocations per operation over the entire grid, same as fused.
func TestLiveCompiledAllocFree(t *testing.T) {
	cc, enc, dec := compiledBenchCodecs(t)
	for _, n := range benchSizes {
		args := make(livespecrpc.Livearr, n)
		buf := make([]byte, 0, 4*n+128)
		bs := xdr.NewBufEncode(buf)
		if allocs := testing.AllocsPerRun(50, func() {
			bs.SetBuffer(buf[:0])
			if err := cc.Append(bs, 9, unsafe.Pointer(&args)); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("compiled encode N=%d: %.1f allocs/op, want 0", n, allocs)
		}

		bs.SetBuffer(buf[:0])
		if err := enc.Append(bs, 9, unsafe.Pointer(&args)); err != nil {
			t.Fatal(err)
		}
		raw := append([]byte(nil), bs.Buffer()...)
		out := make(livespecrpc.Livearr, n)
		if allocs := testing.AllocsPerRun(50, func() {
			if handled, err := dec.DecodeReply(raw, unsafe.Pointer(&out)); !handled || err != nil {
				t.Fatal(handled, err)
			}
		}); allocs != 0 {
			t.Errorf("compiled decode N=%d: %.1f allocs/op, want 0", n, allocs)
		}
	}
}

// TestLiveFusedAllocFree pins the fused series' acceptance criterion:
// whole-call encode and whole-reply decode at zero allocations per
// operation over the entire grid.
func TestLiveFusedAllocFree(t *testing.T) {
	cp, rp := fusedBenchPlans(t)
	for _, n := range benchSizes {
		args := make([]int32, n)
		buf := make([]byte, 0, 4*n+128)
		bs := xdr.NewBufEncode(buf)
		if allocs := testing.AllocsPerRun(50, func() {
			bs.SetBuffer(buf[:0])
			if err := cp.AppendCall(bs, 9, &args); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("fused encode N=%d: %.1f allocs/op, want 0", n, allocs)
		}

		bs.SetBuffer(buf[:0])
		if err := rp.AppendReply(bs, 9, &args); err != nil {
			t.Fatal(err)
		}
		raw := append([]byte(nil), bs.Buffer()...)
		out := make([]int32, n)
		if allocs := testing.AllocsPerRun(50, func() {
			if handled, err := rp.DecodeReply(raw, &out); !handled || err != nil {
				t.Fatal(handled, err)
			}
		}); allocs != 0 {
			t.Errorf("fused decode N=%d: %.1f allocs/op, want 0", n, allocs)
		}
	}
}
