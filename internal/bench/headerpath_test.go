package bench

import (
	"fmt"
	"strings"
	"testing"
)

// BenchmarkHeaderPath exposes the six header-path measurements to the
// ordinary benchmark runner (the sunbench -header-path mode runs the
// identical closures through testing.Benchmark).
func BenchmarkHeaderPath(b *testing.B) {
	for _, c := range headerPathCases() {
		b.Run(fmt.Sprintf("%s/%s", c.series, c.impl), c.bench)
	}
}

// TestHeaderPathSpecializedAllocFree pins the acceptance criterion on
// the header layer: every specialized point runs allocation-free, and
// every series is measured in both implementations.
func TestHeaderPathSpecializedAllocFree(t *testing.T) {
	type pair struct{ generic, specialized bool }
	series := map[string]pair{}
	for _, c := range headerPathCases() {
		c := c
		if c.impl == "generic" {
			p := series[c.series]
			p.generic = true
			series[c.series] = p
			continue
		}
		p := series[c.series]
		p.specialized = true
		series[c.series] = p
		allocs := testing.AllocsPerRun(200, func() {
			if err := c.step(); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s/%s: %.1f allocs/op, want 0", c.series, c.impl, allocs)
		}
	}
	for s, p := range series {
		if !p.generic || !p.specialized {
			t.Errorf("series %s missing an implementation: %+v", s, p)
		}
	}
}

// TestFormatHeaderPath checks the rendered table shape.
func TestFormatHeaderPath(t *testing.T) {
	rows := []HeaderPathResult{
		{Series: "call-encode", Impl: "generic", NsPerOp: 100, AllocsPerOp: 2},
		{Series: "call-encode", Impl: "template", NsPerOp: 10, AllocsPerOp: 0},
	}
	out := FormatHeaderPath(rows)
	for _, want := range []string{"call-encode", "Speedup", "10.00x"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}
