package bench

import (
	"strings"
	"testing"

	"specrpc/internal/platform"
)

// TestTable1Shape checks the headline shape criteria of the paper's
// Table 1 on both platform models (see DESIGN.md §4).
func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("builds specialized stubs up to N=2000")
	}
	for _, m := range platform.Both() {
		rows, err := Table1(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != len(Sizes) {
			t.Fatalf("%s: %d rows", m.Name, len(rows))
		}
		for _, r := range rows {
			if r.Speedup <= 1 {
				t.Errorf("%s N=%d: specialization lost (%.2f)", m.Name, r.N, r.Speedup)
			}
			if r.OriginalMS <= 0 || r.SpecializedMS <= 0 {
				t.Errorf("%s N=%d: non-positive time", m.Name, r.N)
			}
		}
		// Times increase with N.
		for i := 1; i < len(rows); i++ {
			if rows[i].OriginalMS <= rows[i-1].OriginalMS {
				t.Errorf("%s: original time not increasing at N=%d", m.Name, rows[i].N)
			}
		}
	}
}

func TestTable1IPXPeaksThenFalls(t *testing.T) {
	if testing.Short() {
		t.Skip("builds specialized stubs up to N=2000")
	}
	rows, err := Table1(platform.IPX())
	if err != nil {
		t.Fatal(err)
	}
	byN := map[int]Row{}
	for _, r := range rows {
		byN[r.N] = r
	}
	// The paper's memory-bound signature: the speedup peaks in the
	// middle of the grid and decreases toward N=2000.
	if !(byN[250].Speedup > byN[20].Speedup) {
		t.Errorf("IPX speedup should rise to the 250 peak: %.2f vs %.2f",
			byN[250].Speedup, byN[20].Speedup)
	}
	if !(byN[2000].Speedup < byN[250].Speedup) {
		t.Errorf("IPX speedup should fall past the peak: %.2f vs %.2f",
			byN[2000].Speedup, byN[250].Speedup)
	}
}

func TestTable1PCRises(t *testing.T) {
	if testing.Short() {
		t.Skip("builds specialized stubs up to N=2000")
	}
	rows, err := Table1(platform.PC())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Speedup <= rows[i-1].Speedup {
			t.Errorf("PC speedup should rise monotonically; fell at N=%d (%.2f -> %.2f)",
				rows[i].N, rows[i-1].Speedup, rows[i].Speedup)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("builds specialized stubs up to N=2000")
	}
	for _, m := range platform.Both() {
		t1, err := Table1(m)
		if err != nil {
			t.Fatal(err)
		}
		t2, err := Table2(m)
		if err != nil {
			t.Fatal(err)
		}
		for i := range t2 {
			// Round-trip speedup is diluted by the wire: always lower
			// than the marshaling speedup, always above 1.
			if t2[i].Speedup >= t1[i].Speedup {
				t.Errorf("%s N=%d: RT speedup %.2f not below marshal %.2f",
					m.Name, t2[i].N, t2[i].Speedup, t1[i].Speedup)
			}
			if t2[i].Speedup <= 1 {
				t.Errorf("%s N=%d: RT speedup %.2f", m.Name, t2[i].N, t2[i].Speedup)
			}
		}
		// Speedup grows with N (fixed wire latency amortizes).
		for i := 1; i < len(t2); i++ {
			if t2[i].Speedup < t2[i-1].Speedup {
				t.Errorf("%s: RT speedup fell at N=%d", m.Name, t2[i].N)
			}
		}
	}
}

func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("builds specialized stubs up to N=2000")
	}
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].SpecialBytes <= rows[i-1].SpecialBytes {
			t.Errorf("specialized size not growing at N=%d", rows[i].N)
		}
		if rows[i].GenericBytes != rows[0].GenericBytes {
			t.Errorf("generic size should be constant")
		}
	}
	// Unrolled code overtakes the generic code within the grid.
	if rows[len(rows)-1].SpecialBytes <= rows[0].GenericBytes {
		t.Errorf("specialized code at N=2000 (%d) should exceed generic (%d)",
			rows[len(rows)-1].SpecialBytes, rows[0].GenericBytes)
	}
}

func TestTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("builds specialized stubs up to N=2000")
	}
	rows, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	prevGap := 0.0
	for _, r := range rows {
		if r.SpeedupChunked <= r.SpeedupFull {
			t.Errorf("N=%d: bounded unrolling (%.2f) should beat full (%.2f)",
				r.N, r.SpeedupChunked, r.SpeedupFull)
		}
		gap := r.SpeedupChunked - r.SpeedupFull
		if gap < prevGap {
			t.Errorf("N=%d: bounded-unrolling advantage should grow with N", r.N)
		}
		prevGap = gap
	}
}

func TestFormatting(t *testing.T) {
	rows := []Row{{N: 20, OriginalMS: 1, SpecializedMS: 0.5, Speedup: 2}}
	out := FormatRows("Table X", platform.PC(), rows)
	if !strings.Contains(out, "PC/Linux") || !strings.Contains(out, "2.00") {
		t.Fatalf("format: %s", out)
	}
	out = FormatTable3([]SizeRow{{N: 20, GenericBytes: 10, SpecialBytes: 20}})
	if !strings.Contains(out, "20") {
		t.Fatalf("format3: %s", out)
	}
	out = FormatTable4([]ChunkRow{{N: 500, OriginalMS: 1, SpecializedMS: 0.4,
		SpeedupFull: 2.5, ChunkedMS: 0.35, SpeedupChunked: 2.9}})
	if !strings.Contains(out, "2.90") {
		t.Fatalf("format4: %s", out)
	}
	out = FormatFigure(Figure{Title: "panel", Unit: "ms",
		Series: []Series{{Label: "x", Points: []float64{1, 2, 3, 4, 5, 6}}}})
	if !strings.Contains(out, "panel") || !strings.Contains(out, "series") {
		t.Fatalf("figure: %s", out)
	}
}
