package bench

import (
	"testing"
	"time"
)

// TestHistogramBucketsRoundTrip pins the log-linear bucket math: every
// value reconstructs within its bucket's relative resolution.
func TestHistogramBucketsRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 63, 64, 65, 127, 128, 1000, 4096, 1e6, 1e9, 123456789012} {
		i := histBucket(v)
		got := histValue(i)
		// Exact below the linear range; within half an octave step above.
		if v < histLinear {
			if got != v {
				t.Errorf("v=%d: bucket %d reconstructs %d", v, i, got)
			}
			continue
		}
		lo, hi := float64(v)*0.95, float64(v)*1.05
		if f := float64(got); f < lo || f > hi {
			t.Errorf("v=%d: bucket %d reconstructs %d (outside 5%%)", v, i, got)
		}
	}
	// Monotone: bucket index never decreases with the value.
	prev := -1
	for v := uint64(0); v < 1<<20; v = v*2 + 1 {
		if i := histBucket(v); i < prev {
			t.Fatalf("bucket(%d) = %d < previous %d", v, i, prev)
		} else {
			prev = i
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h histogram
	for i := 1; i <= 1000; i++ {
		h.record(time.Duration(i) * time.Microsecond)
	}
	if c := h.count(); c != 1000 {
		t.Fatalf("count = %d", c)
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{{0.50, 500 * time.Microsecond}, {0.99, 990 * time.Microsecond}, {0.999, 999 * time.Microsecond}}
	for _, c := range checks {
		got := h.quantile(c.q)
		lo := time.Duration(float64(c.want) * 0.93)
		hi := time.Duration(float64(c.want) * 1.07)
		if got < lo || got > hi {
			t.Errorf("q%.3f = %v, want ~%v", c.q, got, c.want)
		}
	}
	if m := h.max(); m < 990*time.Microsecond || m > 1100*time.Microsecond {
		t.Errorf("max = %v, want ~1ms", m)
	}
}

// TestOpenLoopSmokeSim tier-1-verifies the open-loop harness end to end
// on netsim: a short Poisson run completes calls, reports a coherent
// tail, and accounts for every scheduled arrival.
func TestOpenLoopSmokeSim(t *testing.T) {
	res, err := OpenLoop(OpenLoopOptions{
		Transport: "sim",
		Conns:     2,
		Depth:     16,
		Rate:      2000,
		Duration:  250 * time.Millisecond,
		ArraySize: 8,
		Seed:      42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("open-loop errors: %+v", res)
	}
	if res.Completed == 0 {
		t.Fatalf("no calls completed: %+v", res)
	}
	if res.Completed+res.Dropped+res.Errors != res.Offered {
		t.Fatalf("accounting: offered %d != completed %d + dropped %d + errors %d",
			res.Offered, res.Completed, res.Dropped, res.Errors)
	}
	if res.P50Us <= 0 || res.P99Us < res.P50Us || res.P999Us < res.P99Us {
		t.Fatalf("incoherent tail: %+v", res)
	}
	if res.AchievedRate <= 0 {
		t.Fatalf("achieved rate %v", res.AchievedRate)
	}
}

// TestOpenLoopShardBaseline runs the same grid point against the
// single-lock baseline (shards=1) and the sharded default, pinning that
// both configurations serve the load correctly — the perf comparison
// itself lives in sunbench -openloop.
func TestOpenLoopShardBaseline(t *testing.T) {
	for _, shards := range []int{1, 0} {
		res, err := OpenLoop(OpenLoopOptions{
			Transport: "sim",
			Conns:     4,
			Depth:     8,
			Rate:      1500,
			Duration:  150 * time.Millisecond,
			Shards:    shards,
			Seed:      7,
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.Errors != 0 || res.Completed == 0 {
			t.Fatalf("shards=%d: %+v", shards, res)
		}
	}
}
