// Package bench regenerates the paper's evaluation: Tables 1-4 and the
// six panels of Figure 6. Workloads, parameter grids, and row formats
// follow §5 exactly; times come from deterministic VM cost counters run
// through the internal/platform models, so every number is reproducible.
//
// In the five-layer specialization stack (see DESIGN.md) this is layer
// 5, the evaluation layer: besides the modeled paper tables it measures
// the live stack end to end — closed-loop throughput, open-loop tail
// latency, the live codec comparison, and the counted syscalls/op of
// the batched I/O paths (Batch) — and writes the series BENCH_live.json
// tracks across PRs.
package bench

import (
	"fmt"
	"strings"
	"sync"

	"specrpc/internal/core"
	"specrpc/internal/platform"
	"specrpc/internal/vm"
)

// Sizes is the paper's array-size grid (4-byte integers).
var Sizes = []int{20, 100, 250, 500, 1000, 2000}

// ChunkSize is the bounded-unrolling chunk of Table 4.
const ChunkSize = 250

// benchSpec fixes the benchmark service identity.
func benchSpec(n int) core.CallSpec {
	return core.CallSpec{Prog: 0x20000530, Vers: 1, Proc: 1, NArgs: n}
}

// trio bundles the three pipeline stages of one configuration.
type trio struct {
	enc *core.ClientEncoder
	srv *core.ServerHandler
	dec *core.ReplyDecoder
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*trio{}
)

func buildTrio(mode core.Mode, n, chunk int) (*trio, error) {
	key := fmt.Sprintf("%d/%d/%d", mode, n, chunk)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if t, ok := cache[key]; ok {
		return t, nil
	}
	spec := benchSpec(n)
	enc, err := core.NewClientEncoder(mode, spec, chunk)
	if err != nil {
		return nil, fmt.Errorf("bench: encoder %v n=%d: %w", mode, n, err)
	}
	srvMode, decMode := mode, mode
	if mode == core.Chunked {
		// Table 4 varies only the client marshaling configuration.
		srvMode, decMode = core.Specialized, core.Specialized
	}
	srv, err := core.NewServerHandler(srvMode, spec, func(args, res []int32) int {
		copy(res, args)
		return len(args)
	})
	if err != nil {
		return nil, fmt.Errorf("bench: server %v n=%d: %w", mode, n, err)
	}
	dec, err := core.NewReplyDecoder(decMode, spec)
	if err != nil {
		return nil, fmt.Errorf("bench: decoder %v n=%d: %w", mode, n, err)
	}
	t := &trio{enc: enc, srv: srv, dec: dec}
	cache[key] = t
	return t, nil
}

// stageCosts runs one complete exchange and captures per-stage meters.
type stageCosts struct {
	enc, srv, dec vm.Cost
	reqBytes      int
	repBytes      int
}

func measure(t *trio) (stageCosts, error) {
	n := t.enc.Spec.NArgs
	args := make([]int32, n)
	for i := range args {
		args[i] = int32(i * 13)
	}
	req := make([]byte, t.enc.Spec.RequestBytes())
	rep := make([]byte, t.enc.Spec.ReplyBytes())
	res := make([]int32, n)

	t.enc.ResetCost()
	reqLen, err := t.enc.Encode(req, 99, args)
	if err != nil {
		return stageCosts{}, fmt.Errorf("bench: encode: %w", err)
	}
	t.srv.ResetCost()
	repLen, err := t.srv.Handle(req[:reqLen], rep)
	if err != nil {
		return stageCosts{}, fmt.Errorf("bench: serve: %w", err)
	}
	t.dec.ResetCost()
	if err := t.dec.Decode(rep[:repLen], 99, res); err != nil {
		return stageCosts{}, fmt.Errorf("bench: decode: %w", err)
	}
	for i := range args {
		if res[i] != args[i] {
			return stageCosts{}, fmt.Errorf("bench: echo mismatch at %d", i)
		}
	}
	return stageCosts{
		enc: t.enc.Cost(), srv: t.srv.Cost(), dec: t.dec.Cost(),
		reqBytes: reqLen, repBytes: repLen,
	}, nil
}

// marshalMS prices the client marshaling stage on a platform.
func marshalMS(m platform.Model, t *trio, c stageCosts) float64 {
	ws := 4*t.enc.Spec.NArgs + c.reqBytes
	return m.CPUTimeMS(c.enc, ws, t.enc.CodeSize())
}

// roundTripMS prices a whole call: both marshalings, both wire
// traversals, the server work, and the receive-buffer clears the paper
// singles out (§5: "the RPC includes a call to bzero to initialize the
// input buffer on both the client and server sides").
func roundTripMS(m platform.Model, t *trio, c stageCosts) float64 {
	n := t.enc.Spec.NArgs
	clientWS := 4*n + c.reqBytes + c.repBytes
	serverWS := 4*n*2 + c.reqBytes + c.repBytes
	total := m.CPUTimeMS(c.enc, clientWS, t.enc.CodeSize()) +
		m.CPUTimeMS(c.dec, clientWS, t.dec.CodeSize()) +
		m.CPUTimeMS(c.srv, serverWS, t.srv.CodeSize()) +
		m.WireMS(c.reqBytes) + m.WireMS(c.repBytes) +
		m.BzeroMS(c.reqBytes) + m.BzeroMS(c.repBytes)
	return total
}

// Row is one line of Tables 1, 2, or 4: a size with original and
// specialized times and their ratio.
type Row struct {
	N             int
	OriginalMS    float64
	SpecializedMS float64
	Speedup       float64
}

// Table1 computes client marshaling performance (paper Table 1).
func Table1(m platform.Model) ([]Row, error) {
	var rows []Row
	for _, n := range Sizes {
		gen, err := buildTrio(core.Generic, n, 0)
		if err != nil {
			return nil, err
		}
		spc, err := buildTrio(core.Specialized, n, 0)
		if err != nil {
			return nil, err
		}
		gc, err := measure(gen)
		if err != nil {
			return nil, err
		}
		sc, err := measure(spc)
		if err != nil {
			return nil, err
		}
		o := marshalMS(m, gen, gc)
		s := marshalMS(m, spc, sc)
		rows = append(rows, Row{N: n, OriginalMS: o, SpecializedMS: s, Speedup: o / s})
	}
	return rows, nil
}

// Table2 computes round-trip performance (paper Table 2).
func Table2(m platform.Model) ([]Row, error) {
	var rows []Row
	for _, n := range Sizes {
		gen, err := buildTrio(core.Generic, n, 0)
		if err != nil {
			return nil, err
		}
		spc, err := buildTrio(core.Specialized, n, 0)
		if err != nil {
			return nil, err
		}
		gc, err := measure(gen)
		if err != nil {
			return nil, err
		}
		sc, err := measure(spc)
		if err != nil {
			return nil, err
		}
		o := roundTripMS(m, gen, gc)
		s := roundTripMS(m, spc, sc)
		rows = append(rows, Row{N: n, OriginalMS: o, SpecializedMS: s, Speedup: o / s})
	}
	return rows, nil
}

// SizeRow is one line of Table 3: code sizes in bytes.
type SizeRow struct {
	N            int
	GenericBytes int
	SpecialBytes int
}

// Table3 computes client code sizes (paper Table 3).
func Table3() ([]SizeRow, error) {
	gen, err := buildTrio(core.Generic, Sizes[0], 0)
	if err != nil {
		return nil, err
	}
	genSize := gen.enc.CodeSize()
	var rows []SizeRow
	for _, n := range Sizes {
		spc, err := buildTrio(core.Specialized, n, 0)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SizeRow{N: n, GenericBytes: genSize, SpecialBytes: spc.enc.CodeSize()})
	}
	return rows, nil
}

// ChunkRow is one line of Table 4.
type ChunkRow struct {
	N              int
	OriginalMS     float64
	SpecializedMS  float64
	SpeedupFull    float64
	ChunkedMS      float64
	SpeedupChunked float64
}

// Table4 computes the bounded-unrolling comparison on the PC model
// (paper Table 4: sizes 500..2000, 250-element chunks).
func Table4() ([]ChunkRow, error) {
	m := platform.PC()
	var rows []ChunkRow
	for _, n := range []int{500, 1000, 2000} {
		gen, err := buildTrio(core.Generic, n, 0)
		if err != nil {
			return nil, err
		}
		spc, err := buildTrio(core.Specialized, n, 0)
		if err != nil {
			return nil, err
		}
		chk, err := buildTrio(core.Chunked, n, ChunkSize)
		if err != nil {
			return nil, err
		}
		gc, err := measure(gen)
		if err != nil {
			return nil, err
		}
		sc, err := measure(spc)
		if err != nil {
			return nil, err
		}
		cc, err := measure(chk)
		if err != nil {
			return nil, err
		}
		o := marshalMS(m, gen, gc)
		s := marshalMS(m, spc, sc)
		c := marshalMS(m, chk, cc)
		rows = append(rows, ChunkRow{
			N: n, OriginalMS: o,
			SpecializedMS: s, SpeedupFull: o / s,
			ChunkedMS: c, SpeedupChunked: o / c,
		})
	}
	return rows, nil
}

// Series is one labeled curve of Figure 6.
type Series struct {
	Label  string
	Points []float64 // indexed like Sizes
}

// Figure is one panel of Figure 6.
type Figure struct {
	Title  string
	Unit   string
	Series []Series
}

// Figure6 assembles the six panels from the table data.
func Figure6() ([]Figure, error) {
	panels := make([]Figure, 6)
	panels[0] = Figure{Title: "(1) Client Marshaling Time - Original Code", Unit: "ms"}
	panels[1] = Figure{Title: "(2) Client Marshaling Time - Specialized Code", Unit: "ms"}
	panels[2] = Figure{Title: "(3) RPC Round Trip Time - Original Code", Unit: "ms"}
	panels[3] = Figure{Title: "(4) RPC Round Trip Time - Specialized Code", Unit: "ms"}
	panels[4] = Figure{Title: "(5) Speedup Ratio for Client Marshaling", Unit: "x"}
	panels[5] = Figure{Title: "(6) Speedup Ratio for RPC Round Trip Time", Unit: "x"}

	for _, m := range platform.Both() {
		t1, err := Table1(m)
		if err != nil {
			return nil, err
		}
		t2, err := Table2(m)
		if err != nil {
			return nil, err
		}
		wire := m.Name + " - " + m.Network
		panels[0].Series = append(panels[0].Series, Series{Label: m.Name, Points: column(t1, func(r Row) float64 { return r.OriginalMS })})
		panels[1].Series = append(panels[1].Series, Series{Label: m.Name, Points: column(t1, func(r Row) float64 { return r.SpecializedMS })})
		panels[2].Series = append(panels[2].Series, Series{Label: wire, Points: column(t2, func(r Row) float64 { return r.OriginalMS })})
		panels[3].Series = append(panels[3].Series, Series{Label: wire, Points: column(t2, func(r Row) float64 { return r.SpecializedMS })})
		panels[4].Series = append(panels[4].Series, Series{Label: m.Name, Points: column(t1, func(r Row) float64 { return r.Speedup })})
		panels[5].Series = append(panels[5].Series, Series{Label: wire, Points: column(t2, func(r Row) float64 { return r.Speedup })})
	}
	return panels, nil
}

func column(rows []Row, f func(Row) float64) []float64 {
	out := make([]float64, len(rows))
	for i, r := range rows {
		out[i] = f(r)
	}
	return out
}

// ---------------------------------------------------------------------------
// Formatting

// FormatRows renders a Table 1/2 style block for one platform.
func FormatRows(title string, m platform.Model, rows []Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", title, m.Name)
	fmt.Fprintf(&sb, "%10s %12s %12s %9s\n", "Array Size", "Original", "Specialized", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%10d %12.3f %12.3f %9.2f\n", r.N, r.OriginalMS, r.SpecializedMS, r.Speedup)
	}
	return sb.String()
}

// FormatTable3 renders the code-size table.
func FormatTable3(rows []SizeRow) string {
	var sb strings.Builder
	sb.WriteString("Table 3: Size of the client marshaling code (bytes)\n")
	fmt.Fprintf(&sb, "%10s %12s %12s\n", "Array Size", "Generic", "Specialized")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%10d %12d %12d\n", r.N, r.GenericBytes, r.SpecialBytes)
	}
	return sb.String()
}

// FormatTable4 renders the bounded-unrolling table.
func FormatTable4(rows []ChunkRow) string {
	var sb strings.Builder
	sb.WriteString("Table 4: Specialization with 250-unrolled loops (PC/Linux, times in ms)\n")
	fmt.Fprintf(&sb, "%10s %10s %12s %8s %14s %8s\n",
		"Array Size", "Original", "Specialized", "Speedup", "250-unrolled", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%10d %10.3f %12.3f %8.2f %14.3f %8.2f\n",
			r.N, r.OriginalMS, r.SpecializedMS, r.SpeedupFull, r.ChunkedMS, r.SpeedupChunked)
	}
	return sb.String()
}

// FormatFigure renders one panel as aligned series over the size grid.
func FormatFigure(f Figure) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s [%s]\n", f.Title, f.Unit)
	fmt.Fprintf(&sb, "%-28s", "series \\ N")
	for _, n := range Sizes {
		fmt.Fprintf(&sb, "%9d", n)
	}
	sb.WriteString("\n")
	for _, s := range f.Series {
		fmt.Fprintf(&sb, "%-28s", s.Label)
		for _, p := range s.Points {
			fmt.Fprintf(&sb, "%9.2f", p)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
