package bench

// Header-path mode: the per-call constant work of the RPC message layer
// — call-header encode, reply-header encode, reply-header decode —
// measured generic (interpretive marshaler walk) vs specialized
// (precompiled template / fixed-offset decode). This is the PR-4
// counterpart of the live-spec argument-codec comparison: at small
// argument sizes the header work dominates a call, so this series is
// where the template win shows.

import (
	"fmt"
	"strings"
	"testing"

	"specrpc/internal/rpcmsg"
	"specrpc/internal/xdr"
)

// HeaderPathResult is one measured (series, impl) point.
type HeaderPathResult struct {
	// Series is the operation measured: "call-encode", "reply-encode",
	// or "reply-decode".
	Series string `json:"series"`
	// Impl is "generic" or "template" ("fastpath" for reply-decode).
	Impl        string  `json:"impl"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// headerPathCase is one measurable point: step performs a single
// operation, carrying its reusable state in the closure.
type headerPathCase struct {
	series, impl string
	step         func() error
}

// headerPathCases builds the six measurements. Shared by the public
// HeaderPath runner, the Go benchmarks, and the alloc-free test, so all
// three report the same code paths.
func headerPathCases() []headerPathCase {
	hdr := rpcmsg.CallHeader{
		XID: 1, Prog: 0x20000532, Vers: 1, Proc: 2,
		Cred: rpcmsg.None(), Verf: rpcmsg.None(),
	}
	tmpl, err := rpcmsg.NewCallTemplate(hdr.Prog, hdr.Vers, hdr.Cred, hdr.Verf)
	if err != nil {
		panic(err)
	}
	rtmpl := rpcmsg.MustReplyTemplate(rpcmsg.None())
	reply := append(rtmpl.AppendReply(nil, 7), 0, 0, 0, 42)

	genCallBS := xdr.NewBufEncode(make([]byte, 0, 256))
	genCallEnc := xdr.NewEncoder(genCallBS)
	genCallHdr := hdr
	tmplBuf := make([]byte, 0, 256)
	genReplyBS := xdr.NewBufEncode(make([]byte, 0, 256))
	genReplyEnc := xdr.NewEncoder(genReplyBS)
	rtmplBuf := make([]byte, 0, 256)
	decMS := xdr.NewMemDecode(reply)
	decHandle := xdr.NewDecoder(decMS)
	var i uint32

	return []headerPathCase{
		{"call-encode", "generic", func() error {
			genCallBS.Reset()
			i++
			genCallHdr.XID = i
			return genCallHdr.Marshal(genCallEnc)
		}},
		{"call-encode", "template", func() error {
			i++
			tmplBuf = tmpl.AppendCall(tmplBuf[:0], i, 2)
			return nil
		}},
		{"reply-encode", "generic", func() error {
			genReplyBS.Reset()
			i++
			rh := rpcmsg.AcceptedReply(i)
			return rh.Marshal(genReplyEnc)
		}},
		{"reply-encode", "template", func() error {
			i++
			rtmplBuf = rtmpl.AppendReply(rtmplBuf[:0], i)
			return nil
		}},
		{"reply-decode", "generic", func() error {
			decMS.Reset()
			var rh rpcmsg.ReplyHeader
			return rh.Marshal(decHandle)
		}},
		{"reply-decode", "fastpath", func() error {
			if _, ok := rpcmsg.AcceptedSuccessBody(reply); !ok {
				return fmt.Errorf("fast path rejected a success reply")
			}
			return nil
		}},
	}
}

// bench adapts a case to the benchmark runner.
func (c headerPathCase) bench(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := c.step(); err != nil {
			b.Fatal(err)
		}
	}
}

// HeaderPath measures the six points with the standard benchmark
// machinery (testing.Benchmark), so sunbench reports the same numbers
// `go test -bench HeaderPath` does.
func HeaderPath() []HeaderPathResult {
	var out []HeaderPathResult
	for _, c := range headerPathCases() {
		r := testing.Benchmark(c.bench)
		out = append(out, HeaderPathResult{
			Series:      c.series,
			Impl:        c.impl,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	return out
}

// FormatHeaderPath renders the series pairs side by side with the
// generic/specialized speedup, mirroring the live-spec table layout.
func FormatHeaderPath(rows []HeaderPathResult) string {
	bySeries := map[string][]HeaderPathResult{}
	var order []string
	for _, r := range rows {
		if _, seen := bySeries[r.Series]; !seen {
			order = append(order, r.Series)
		}
		bySeries[r.Series] = append(bySeries[r.Series], r)
	}
	var sb strings.Builder
	sb.WriteString("Header path: per-call constant work, generic marshaler vs precompiled template\n")
	fmt.Fprintf(&sb, "%-13s %10s %8s %12s %8s %9s\n",
		"Series", "Generic", "allocs", "Specialized", "allocs", "Speedup")
	for _, s := range order {
		var gen, spec *HeaderPathResult
		for i := range bySeries[s] {
			r := &bySeries[s][i]
			if r.Impl == "generic" {
				gen = r
			} else {
				spec = r
			}
		}
		if gen == nil || spec == nil {
			continue
		}
		speedup := 0.0
		if spec.NsPerOp > 0 {
			speedup = gen.NsPerOp / spec.NsPerOp
		}
		fmt.Fprintf(&sb, "%-13s %8.1fns %8d %10.1fns %8d %8.2fx\n",
			s, gen.NsPerOp, gen.AllocsPerOp, spec.NsPerOp, spec.AllocsPerOp, speedup)
	}
	return sb.String()
}
