package server

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"specrpc/internal/netsim"
	"specrpc/internal/rpcmsg"
	"specrpc/internal/wire"
	"specrpc/internal/xdr"
)

// The fused dispatch path must be observationally identical to the
// generic walk: same replies byte for byte, for success and for every
// error outcome. These tests register the same echo through
// RegisterTyped (which installs both the fused entry and the generic
// fallback) and through an equivalent closure-only registration, then
// compare handleCall outputs.

var fusedTestPlan = wire.MustPlan[[]int32](wire.VarArrayT(0, wire.Int32T()), wire.Specialized)

// newTypedServer registers the echo (and a failing proc) through the
// typed entry points, engaging the fused dispatch table.
func newTypedServer() *Server {
	s := New()
	RegisterTyped(s, testProg, testVers, procEcho, fusedTestPlan, fusedTestPlan,
		func(arg *[]int32) (*[]int32, error) { return arg, nil })
	RegisterTyped(s, testProg, testVers, procFail, fusedTestPlan, fusedTestPlan,
		func(arg *[]int32) (*[]int32, error) { return nil, errors.New("handler exploded") })
	return s
}

// newClosureServer is the same service through closure registrations
// only: the reference for byte-identical replies.
func newClosureServer() *Server {
	s := New()
	s.Register(testProg, testVers, procEcho, func(dec *xdr.XDR) (Marshal, error) {
		var arr []int32
		if err := fusedTestPlan.Marshal(dec, &arr); err != nil {
			return nil, errors.Join(ErrGarbageArgs, err)
		}
		return func(enc *xdr.XDR) error { return fusedTestPlan.Marshal(enc, &arr) }, nil
	})
	s.Register(testProg, testVers, procFail, func(dec *xdr.XDR) (Marshal, error) {
		var arr []int32
		if err := fusedTestPlan.Marshal(dec, &arr); err != nil {
			return nil, errors.Join(ErrGarbageArgs, err)
		}
		return nil, errors.New("handler exploded")
	})
	return s
}

func TestTypedDispatchByteIdentical(t *testing.T) {
	typed := newTypedServer()
	closure := newClosureServer()
	if typed.typedFor(testProg, testVers, procEcho) == nil {
		t.Fatal("RegisterTyped did not install a fused dispatch entry")
	}

	in := []int32{4, 5, 6, 7}
	cases := map[string][]byte{
		"success": buildCall(t, 11, testVers, procEcho, func(x *xdr.XDR) error {
			return xdr.Array(x, &in, xdr.NoSizeLimit, (*xdr.XDR).Long)
		}),
		// Truncated argument body: GARBAGE_ARGS on both paths.
		"garbage": append(buildCall(t, 12, testVers, procEcho, nil), 0, 0, 0, 9),
		"system-err": buildCall(t, 13, testVers, procFail, func(x *xdr.XDR) error {
			return xdr.Array(x, &in, xdr.NoSizeLimit, (*xdr.XDR).Long)
		}),
		"proc-unavail": buildCall(t, 14, testVers, 99, nil),
		"prog-unavail": func() []byte {
			b := buildCall(t, 15, testVers, procEcho, nil)
			b[15] = 0x42 // clobber prog
			return b
		}(),
	}
	for name, req := range cases {
		got, gotErr := typed.handleCall(req, make([]byte, 0, 4096))
		want, wantErr := closure.handleCall(req, make([]byte, 0, 4096))
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("%s: typed err=%v closure err=%v", name, gotErr, wantErr)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: typed reply differs from closure reply\n got %x\nwant %x", name, got, want)
		}
	}
}

// TestTypedDispatchVoidResult: a handler returning a nil result replies
// with the bare success header on both paths.
func TestTypedDispatchVoidResult(t *testing.T) {
	s := New()
	RegisterTyped(s, testProg, testVers, 5, fusedTestPlan, fusedTestPlan,
		func(arg *[]int32) (*[]int32, error) { return nil, nil })
	req := buildCall(t, 21, testVers, 5, func(x *xdr.XDR) error {
		arr := []int32{1}
		return xdr.Array(x, &arr, xdr.NoSizeLimit, (*xdr.XDR).Long)
	})
	out, err := s.handleCall(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	rh, dec := decodeReply(t, out)
	if rh.XID != 21 || rh.AcceptStat != rpcmsg.Success {
		t.Fatalf("reply header %+v", rh)
	}
	if dec.Pos() != len(out) {
		t.Fatalf("void reply carries %d body bytes", len(out)-dec.Pos())
	}
}

// TestRegisterClearsTypedEntry: re-registering a triple through the
// closure API must also drop the stale fused entry.
func TestRegisterClearsTypedEntry(t *testing.T) {
	s := newTypedServer()
	s.Register(testProg, testVers, procEcho, echoProc)
	if s.typedFor(testProg, testVers, procEcho) != nil {
		t.Fatal("closure re-registration left the fused entry in place")
	}
}

// TestServeUDPTruncatedRequestDropped is the server half of the
// datagram-truncation regression: a request that fills the receive
// buffer exactly must be dropped and counted, never parsed. Before the
// fix the truncated prefix went through handleCall as if complete.
func TestServeUDPTruncatedRequestDropped(t *testing.T) {
	n := netsim.New()
	sep := n.Attach("server")
	s := newTypedServer()
	// Small datagram buffer so an oversized request is cheap to build.
	s.bufSize = 256
	go func() { _ = s.ServeUDP(sep) }()
	defer s.Close()

	cep := n.Attach("client")
	// An in-bounds request round-trips.
	in := []int32{1, 2, 3}
	req := buildCall(t, 31, testVers, procEcho, func(x *xdr.XDR) error {
		return xdr.Array(x, &in, xdr.NoSizeLimit, (*xdr.XDR).Long)
	})
	if _, err := cep.WriteTo(req, netsim.Addr("server")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	if err := cep.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cep.ReadFrom(buf); err != nil {
		t.Fatalf("small request got no reply: %v", err)
	}

	// A buffer-filling request is dropped silently and counted.
	big := make([]int32, 200) // 40-byte header + 804 array bytes >> 256
	bigReq := buildCall(t, 32, testVers, procEcho, func(x *xdr.XDR) error {
		return xdr.Array(x, &big, xdr.NoSizeLimit, (*xdr.XDR).Long)
	})
	if _, err := cep.WriteTo(bigReq, netsim.Addr("server")); err != nil {
		t.Fatal(err)
	}
	if err := cep.SetReadDeadline(time.Now().Add(300 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cep.ReadFrom(buf); err == nil {
		t.Fatal("truncated request was answered")
	}
	if s.TruncatedDrops() == 0 {
		t.Fatal("truncation drop counter did not advance")
	}
}

// TestPeerKeySemantics: the allocation-free key must distinguish what
// the old peer-string key distinguished.
func TestPeerKeySemantics(t *testing.T) {
	u1 := makePeerKey(&net.UDPAddr{IP: net.IPv4(10, 0, 0, 1), Port: 111})
	u1b := makePeerKey(&net.UDPAddr{IP: net.IPv4(10, 0, 0, 1), Port: 111})
	u2 := makePeerKey(&net.UDPAddr{IP: net.IPv4(10, 0, 0, 2), Port: 111})
	u3 := makePeerKey(&net.UDPAddr{IP: net.IPv4(10, 0, 0, 1), Port: 112})
	if u1 != u1b {
		t.Error("identical UDP peers compare unequal")
	}
	if u1 == u2 || u1 == u3 {
		t.Error("distinct UDP peers collide")
	}
	s1 := makePeerKey(netsim.Addr("client-a"))
	s2 := makePeerKey(netsim.Addr("client-b"))
	if s1 == s2 {
		t.Error("distinct sim peers collide")
	}
	if s1 != makePeerKey(netsim.Addr("client-a")) {
		t.Error("identical sim peers compare unequal")
	}
	long := netsim.Addr("a-peer-name-well-beyond-the-inline-window-capacity")
	l1, l2 := makePeerKey(long), makePeerKey(long)
	if l1 != l2 {
		t.Error("identical long peers compare unequal")
	}
	if l1 == s1 {
		t.Error("long and short peers collide")
	}
}

// TestPeerKeyAllocFree pins the per-datagram key construction and the
// in-flight claim/release cycle at zero allocations — the hot-path cost
// the peer+xid string key used to pay on every datagram.
func TestPeerKeyAllocFree(t *testing.T) {
	udp := &net.UDPAddr{IP: net.IPv4(10, 0, 0, 1).To4(), Port: 2049}
	sim := netsim.Addr("client")
	fs := newInflightSet(4)
	fs.begin(makePeerKey(udp), 0) // warm the shard maps
	fs.end(makePeerKey(udp), 0)
	cache := newReplyCache(4, 4)
	for _, tc := range []struct {
		name string
		addr net.Addr
	}{{"udp", udp}, {"sim", sim}} {
		addr := tc.addr
		if n := testing.AllocsPerRun(200, func() {
			k := makePeerKey(addr)
			if !fs.begin(k, 7) {
				t.Fatal("claim refused")
			}
			if _, ok := cache.get(k, 7, nil); ok {
				t.Fatal("phantom cache hit")
			}
			fs.end(k, 7)
		}); n != 0 {
			t.Errorf("%s: %v allocs per datagram key cycle, want 0", tc.name, n)
		}
	}
}

// TestExactBufSizeReplyBecomesSystemErr pins the reply-side bound as
// exclusive: a success reply that would exactly fill a peer's receive
// buffer would be dropped there as possibly truncated, so the server
// must replace it with SYSTEM_ERR just like a strictly-oversized one.
func TestExactBufSizeReplyBecomesSystemErr(t *testing.T) {
	n := netsim.New()
	sep := n.Attach("server")
	s := newTypedServer()
	s.bufSize = 512
	go func() { _ = s.ServeUDP(sep) }()
	defer s.Close()

	// A small request whose reply is 24-byte success header + 4-byte
	// count + 4*121 = exactly 512 bytes.
	big := make([]int32, 121)
	RegisterTyped(s, testProg, testVers, 6, fusedTestPlan, fusedTestPlan,
		func(arg *[]int32) (*[]int32, error) { return &big, nil })

	cep := n.Attach("client")
	in := []int32{}
	req := buildCall(t, 41, testVers, 6, func(x *xdr.XDR) error {
		return xdr.Array(x, &in, xdr.NoSizeLimit, (*xdr.XDR).Long)
	})
	if _, err := cep.WriteTo(req, netsim.Addr("server")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	if err := cep.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	nr, _, err := cep.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	rh, _ := decodeReply(t, buf[:nr])
	if rh.XID != 41 || rh.AcceptStat != rpcmsg.SystemErr {
		t.Fatalf("reply header %+v, want SYSTEM_ERR", rh)
	}
}
