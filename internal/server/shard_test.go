package server

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"specrpc/internal/client"
	"specrpc/internal/netsim"
	"specrpc/internal/xdr"
)

func TestNextPow2(t *testing.T) {
	for _, tc := range [][2]int{{1, 1}, {2, 2}, {3, 4}, {8, 8}, {9, 16}, {100, 128}} {
		if got := nextPow2(tc[0]); got != tc[1] {
			t.Errorf("nextPow2(%d) = %d, want %d", tc[0], got, tc[1])
		}
	}
}

// TestPeerKeyHashSpreads sanity-checks the shard selector: distinct
// loopback-style peers (same IP, consecutive ports — the realistic
// many-clients shape) must not pile onto one shard.
func TestPeerKeyHashSpreads(t *testing.T) {
	used := make(map[uint32]bool)
	const shards = 16
	for port := 0; port < 256; port++ {
		k := makePeerKey(netsim.Addr(fmt.Sprintf("client-%d", port)))
		used[k.hash()&(shards-1)] = true
	}
	if len(used) < shards/2 {
		t.Fatalf("256 peers landed on only %d of %d shards", len(used), shards)
	}
}

// TestShardedReplyCacheFIFO pins the per-peer FIFO eviction across a
// ring-buffer wrap: with more puts than capacity, exactly the newest
// entries survive.
func TestShardedReplyCacheFIFO(t *testing.T) {
	for _, shards := range []int{1, 4} {
		c := newReplyCache(3, shards) // shards>1: 1 entry per shard
		peer := makePeerKey(netsim.Addr("peer"))
		per := len(c.shards[peer.hash()&c.mask].ring)
		const puts = 10
		for xid := 0; xid < puts; xid++ {
			c.put(peer, uint32(xid), []byte{byte(xid)})
		}
		for xid := 0; xid < puts; xid++ {
			b, ok := c.get(peer, uint32(xid), nil)
			if wantLive := xid >= puts-per; ok != wantLive {
				t.Fatalf("shards=%d xid=%d live=%v, want %v", shards, xid, ok, wantLive)
			} else if ok && b[0] != byte(xid) {
				t.Fatalf("shards=%d xid=%d value %d", shards, xid, b[0])
			}
		}
	}
}

// TestReplyCacheEvictionAllocFree pins steady-state eviction at zero
// allocations: the ring buffer neither slices off its head (the old
// order-queue retained dead keys and re-copied itself every cycle) nor
// copies replies into fresh buffers (evicted entries donate theirs).
// The old order-slice implementation allocates on every put and fails
// this test.
func TestReplyCacheEvictionAllocFree(t *testing.T) {
	c := newReplyCache(8, 1)
	peer := makePeerKey(netsim.Addr("peer"))
	reply := make([]byte, 64)
	xid := uint32(0)
	for ; xid < 8; xid++ {
		c.put(peer, xid, reply) // fill to capacity
	}
	allocs := testing.AllocsPerRun(200, func() {
		c.put(peer, xid, reply) // every put evicts the oldest
		xid++
	})
	if allocs != 0 {
		t.Fatalf("%v allocs per evicting put, want 0", allocs)
	}
}

// TestReplyCacheGetCopiesOut pins the reply-aliasing fix: get must copy
// the cached bytes out under the shard lock, because put recycles an
// evicted entry's backing array into the entry replacing it and rewrites
// a re-cached key's buffer in place. The old get returned the stored
// slice itself, so a reply could be rewritten mid-WriteTo; against it,
// this test — readers verifying a reply's bytes while a writer churns
// in-place updates and evictions through the same shard — observes torn
// replies and fails under the race detector.
func TestReplyCacheGetCopiesOut(t *testing.T) {
	c := newReplyCache(2, 1)
	peer := makePeerKey(netsim.Addr("peer"))
	done := make(chan struct{})
	go func() {
		defer close(done)
		reply := make([]byte, 1024)
		for seq := 0; seq < 5000; seq++ {
			for i := range reply {
				reply[i] = byte(seq)
			}
			// First half: two keys over capacity two, so every put after
			// the fill is an in-place update. Second half: four keys over
			// capacity two, so every put evicts and recycles a buffer.
			mod := 2
			if seq >= 2500 {
				mod = 4
			}
			c.put(peer, uint32(seq%mod), reply)
		}
	}()
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var scratch []byte
			for {
				select {
				case <-done:
					return
				default:
				}
				for xid := uint32(0); xid < 4; xid++ {
					b, ok := c.get(peer, xid, scratch[:0])
					scratch = b
					if !ok {
						continue
					}
					// Every cached reply was written with one uniform fill
					// byte; a mixed-fill read is a torn reply.
					for i := 1; i < len(b); i++ {
						if b[i] != b[0] {
							t.Errorf("torn reply for xid %d: byte %d is %d, byte 0 is %d", xid, i, b[i], b[0])
							return
						}
					}
				}
			}
		}()
	}
	readers.Wait()
}

// TestReplyCacheCapacityNotInflated pins the shard clamp: a cache
// smaller than the shard count shrinks its shard count instead of
// growing to one entry per shard.
func TestReplyCacheCapacityNotInflated(t *testing.T) {
	c := newReplyCache(8, 64)
	if got := len(c.shards); got != 8 {
		t.Fatalf("shards = %d, want clamped to 8", got)
	}
	total := 0
	for i := range c.shards {
		total += len(c.shards[i].ring)
	}
	if total != 8 {
		t.Fatalf("total capacity = %d, want 8", total)
	}
}

// TestInflightAcrossShards pins that claims are independent per (peer,
// xid) and that a duplicate claim is refused regardless of which shard
// the peer hashes to.
func TestInflightAcrossShards(t *testing.T) {
	f := newInflightSet(8)
	for i := 0; i < 32; i++ {
		peer := makePeerKey(netsim.Addr(fmt.Sprintf("peer-%d", i)))
		if !f.begin(peer, 7) {
			t.Fatalf("peer %d: fresh claim refused", i)
		}
		if f.begin(peer, 7) {
			t.Fatalf("peer %d: duplicate claim admitted", i)
		}
		if !f.begin(peer, 8) {
			t.Fatalf("peer %d: other xid refused", i)
		}
		f.end(peer, 7)
		if !f.begin(peer, 7) {
			t.Fatalf("peer %d: claim after release refused", i)
		}
		f.end(peer, 7)
		f.end(peer, 8)
	}
}

// TestShardedStateStress hammers one shard set from many goroutines —
// claim/release interleaved with cache put/get on colliding keys — so
// the race detector sees every lock interleaving the datagram path can
// produce.
func TestShardedStateStress(t *testing.T) {
	inf := newInflightSet(4)
	cache := newReplyCache(32, 4)
	peers := make([]peerKey, 8)
	for i := range peers {
		peers[i] = makePeerKey(netsim.Addr(fmt.Sprintf("stress-%d", i)))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			reply := make([]byte, 32)
			var scratch []byte
			for i := 0; i < 3000; i++ {
				peer := peers[rng.Intn(len(peers))]
				xid := uint32(rng.Intn(64)) // small space forces collisions
				if !inf.begin(peer, xid) {
					scratch, _ = cache.get(peer, xid, scratch[:0])
					continue
				}
				var ok bool
				if scratch, ok = cache.get(peer, xid, scratch[:0]); !ok {
					cache.put(peer, xid, reply)
				}
				inf.end(peer, xid)
			}
		}(int64(g))
	}
	wg.Wait()
}

// TestServeUDPCloseUnderLoad interleaves live datagram traffic over the
// sharded state with Server.Close: the shutdown must drain cleanly (no
// deadlock, no race) while many clients are mid-call.
func TestServeUDPCloseUnderLoad(t *testing.T) {
	n := netsim.New()
	s := New(WithWorkers(8), WithShards(4))
	s.Register(testProg, testVers, procEcho, echoProc)
	sep := n.Attach("server")
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); _ = s.ServeUDP(sep) }()

	const clients = 6
	callers := make([]client.Caller, clients)
	for i := range callers {
		ep := n.Attach(netsim.Addr(fmt.Sprintf("c%d", i)))
		callers[i] = client.NewUDP(ep, netsim.Addr("server"), client.Config{
			Prog: testProg, Vers: testVers,
			Timeout: 2 * time.Second, FirstXID: uint32(1 + i*1000),
		})
	}
	var wg sync.WaitGroup
	for _, c := range callers {
		wg.Add(1)
		go func(c client.Caller) {
			defer wg.Done()
			in := []int32{1, 2, 3}
			args := func(x *xdr.XDR) error { return xdr.Array(x, &in, xdr.NoSizeLimit, (*xdr.XDR).Long) }
			for {
				var out []int32
				res := func(x *xdr.XDR) error { return xdr.Array(x, &out, xdr.NoSizeLimit, (*xdr.XDR).Long) }
				if err := c.Call(procEcho, args, res); err != nil {
					return // server closed underneath us: expected
				}
			}
		}(c)
	}
	time.Sleep(30 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	for _, c := range callers {
		_ = c.Close() // fail the in-flight calls fast
	}
	wg.Wait()
	select {
	case <-serveDone:
	case <-time.After(5 * time.Second):
		t.Fatal("ServeUDP did not exit after Close")
	}
}
