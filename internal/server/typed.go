package server

import (
	"errors"

	"specrpc/internal/wire"
	"specrpc/internal/xdr"
)

// RegisterTyped installs a handler whose argument and result bodies are
// marshaled by compiled wire plans: the codec-based counterpart of
// Register, used by generated stubs. A nil args plan decodes nothing; a
// nil results plan (or a nil result value) replies with an empty body.
// Argument decode failures become GARBAGE_ARGS, exactly as on the
// closure path.
func RegisterTyped[A, R any](s *Server, prog, vers, proc uint32,
	args *wire.Plan[A], results *wire.Plan[R], h func(arg *A) (*R, error)) {
	s.Register(prog, vers, proc, func(dec *xdr.XDR) (Marshal, error) {
		var arg A
		if args != nil {
			if err := args.Marshal(dec, &arg); err != nil {
				return nil, errors.Join(ErrGarbageArgs, err)
			}
		}
		res, err := h(&arg)
		if err != nil {
			return nil, err
		}
		if results == nil || res == nil {
			return voidReply, nil
		}
		return func(enc *xdr.XDR) error { return results.Marshal(enc, res) }, nil
	})
}

// voidReply is the shared empty-body marshaler, so void replies do not
// allocate a closure per call.
func voidReply(*xdr.XDR) error { return nil }
