package server

import (
	"errors"
	"unsafe"

	"specrpc/internal/wire"
	"specrpc/internal/xdr"
)

// RegisterTyped installs a handler whose argument and result bodies are
// marshaled by compiled wire plans: the codec-based counterpart of
// Register, used by generated stubs. A nil args plan decodes nothing; a
// nil results plan (or a nil result value) replies with an empty body.
// Argument decode failures become GARBAGE_ARGS, exactly as on the
// closure path.
//
// Alongside the generic registration, procedures whose plans carry a
// compiled flat program (any non-Generic mode) also get an entry in the
// server's fused dispatch table: requests recognized at fixed offsets
// skip the interpretive header walk, decode their arguments straight
// from the datagram or record bytes, and append the success reply —
// precompiled header plus result plan — in one pass. The generic
// registration remains the fallback for everything else and produces
// byte-identical replies.
func RegisterTyped[A, R any](s *Server, prog, vers, proc uint32,
	args *wire.Plan[A], results *wire.Plan[R], h func(arg *A) (*R, error)) {
	generic := func(dec *xdr.XDR) (Marshal, error) {
		var arg A
		if args != nil {
			if err := args.Marshal(dec, &arg); err != nil {
				return nil, errors.Join(ErrGarbageArgs, err)
			}
		}
		res, err := h(&arg)
		if err != nil {
			return nil, err
		}
		if results == nil || res == nil {
			return voidReply, nil
		}
		return func(enc *xdr.XDR) error { return results.Marshal(enc, res) }, nil
	}
	// Both entries are installed in one step: a concurrent registration
	// on the same triple then replaces (or is replaced by) this one as
	// a whole, never leaving this fused handler paired with someone
	// else's generic one.
	s.registerBoth(prog, vers, proc, generic, compileTypedProc(args, results, h))
}

// compileTypedProc builds the fused fast-path handler, or nil when the
// procedure must stay on the generic path (interpretive-mode plans).
func compileTypedProc[A, R any](args *wire.Plan[A], results *wire.Plan[R], h func(arg *A) (*R, error)) TypedProc {
	var argc, resc *wire.Codec
	if args != nil {
		argc = args.Codec()
	}
	if results != nil {
		resc = results.Codec()
	}
	if (argc != nil && argc.Mode() == wire.Generic) ||
		(resc != nil && resc.Mode() == wire.Generic) {
		return nil
	}
	fused, err := wire.NewReplyCodec(successTemplate, resc)
	if err != nil {
		return nil
	}
	// An rpcgen-emitted compiled routine registered for either plan takes
	// precedence over the plan executor: the argument decode and the
	// reply append each pick the straight-line form when one exists, and
	// both forms produce byte-identical messages. Nil checks happen on
	// the concrete values so a missing registration never plants a
	// typed-nil appender in the interface.
	var rc wire.ReplyAppender = fused
	if crc := wire.NewCompiledReplyCodec(successTemplate, resc); crc != nil {
		rc = crc
	}
	decodeArg := wire.CompiledBodyDecode(argc)
	if decodeArg == nil && argc != nil {
		decodeArg = argc.DecodeBody
	}
	return func(body []byte, xid uint32, bs *xdr.BufStream) error {
		var arg A
		if decodeArg != nil {
			if err := decodeArg(body, unsafe.Pointer(&arg)); err != nil {
				return errors.Join(ErrGarbageArgs, err)
			}
		}
		res, err := h(&arg)
		if err != nil {
			return err
		}
		if resc == nil || res == nil {
			return rc.AppendHeader(bs, xid)
		}
		return rc.Append(bs, xid, unsafe.Pointer(res))
	}
}

// voidReply is the shared empty-body marshaler, so void replies do not
// allocate a closure per call.
func voidReply(*xdr.XDR) error { return nil }
