package server

import (
	"errors"
	"specrpc/internal/netsim"
	"sync/atomic"
	"testing"

	"specrpc/internal/rpcmsg"
	"specrpc/internal/xdr"
)

const (
	testProg = uint32(0x20000099)
	testVers = uint32(2)
	procEcho = uint32(1)
	procFail = uint32(2)
)

// echoProc decodes an int32 array and returns it unchanged.
func echoProc(dec *xdr.XDR) (Marshal, error) {
	var arr []int32
	if err := xdr.Array(dec, &arr, xdr.NoSizeLimit, (*xdr.XDR).Long); err != nil {
		return nil, errors.Join(ErrGarbageArgs, err)
	}
	return func(enc *xdr.XDR) error {
		return xdr.Array(enc, &arr, xdr.NoSizeLimit, (*xdr.XDR).Long)
	}, nil
}

func newTestServer() *Server {
	s := New()
	s.Register(testProg, testVers, procEcho, echoProc)
	s.Register(testProg, testVers, procFail, func(dec *xdr.XDR) (Marshal, error) {
		return nil, errors.New("handler exploded")
	})
	return s
}

// buildCall marshals a call message for the test program.
func buildCall(t *testing.T, xid, vers, proc uint32, args func(x *xdr.XDR) error) []byte {
	t.Helper()
	buf := make([]byte, 4096)
	mem := xdr.NewMemEncode(buf)
	enc := xdr.NewEncoder(mem)
	h := rpcmsg.CallHeader{XID: xid, Prog: testProg, Vers: vers, Proc: proc,
		Cred: rpcmsg.None(), Verf: rpcmsg.None()}
	if err := h.Marshal(enc); err != nil {
		t.Fatal(err)
	}
	if args != nil {
		if err := args(enc); err != nil {
			t.Fatal(err)
		}
	}
	return append([]byte(nil), mem.Buffer()...)
}

func decodeReply(t *testing.T, raw []byte) (rpcmsg.ReplyHeader, *xdr.XDR) {
	t.Helper()
	dec := xdr.NewDecoder(xdr.NewMemDecode(raw))
	var rh rpcmsg.ReplyHeader
	if err := rh.Marshal(dec); err != nil {
		t.Fatalf("decode reply header: %v", err)
	}
	return rh, dec
}

func TestHandleCallSuccess(t *testing.T) {
	s := newTestServer()
	in := []int32{4, 5, 6}
	req := buildCall(t, 11, testVers, procEcho, func(x *xdr.XDR) error {
		return xdr.Array(x, &in, xdr.NoSizeLimit, (*xdr.XDR).Long)
	})
	out, err := s.handleCall(req, make([]byte, 0, 4096))
	if err != nil {
		t.Fatal(err)
	}
	rh, dec := decodeReply(t, out)
	if rh.XID != 11 || rh.AcceptStat != rpcmsg.Success {
		t.Fatalf("reply header %+v", rh)
	}
	var got []int32
	if err := xdr.Array(dec, &got, xdr.NoSizeLimit, (*xdr.XDR).Long); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 4 || got[2] != 6 {
		t.Fatalf("echo result %v", got)
	}
}

func TestHandleCallProgUnavail(t *testing.T) {
	s := newTestServer()
	req := buildCall(t, 1, testVers, procEcho, nil)
	// Rewrite prog field (word index 3) to an unregistered program.
	req[15] = 0x01
	out, err := s.handleCall(req, make([]byte, 0, 1024))
	if err != nil {
		t.Fatal(err)
	}
	rh, _ := decodeReply(t, out)
	if rh.AcceptStat != rpcmsg.ProgUnavail {
		t.Fatalf("stat = %v, want PROG_UNAVAIL", rh.AcceptStat)
	}
}

func TestHandleCallProgMismatch(t *testing.T) {
	s := newTestServer()
	req := buildCall(t, 2, testVers+7, procEcho, nil)
	out, err := s.handleCall(req, make([]byte, 0, 1024))
	if err != nil {
		t.Fatal(err)
	}
	rh, _ := decodeReply(t, out)
	if rh.AcceptStat != rpcmsg.ProgMismatch {
		t.Fatalf("stat = %v, want PROG_MISMATCH", rh.AcceptStat)
	}
	if rh.Mismatch.Low != testVers || rh.Mismatch.High != testVers {
		t.Fatalf("mismatch range %+v, want [%d,%d]", rh.Mismatch, testVers, testVers)
	}
}

func TestHandleCallProcUnavail(t *testing.T) {
	s := newTestServer()
	req := buildCall(t, 3, testVers, 99, nil)
	out, err := s.handleCall(req, make([]byte, 0, 1024))
	if err != nil {
		t.Fatal(err)
	}
	rh, _ := decodeReply(t, out)
	if rh.AcceptStat != rpcmsg.ProcUnavail {
		t.Fatalf("stat = %v, want PROC_UNAVAIL", rh.AcceptStat)
	}
}

func TestHandleCallGarbageArgs(t *testing.T) {
	s := newTestServer()
	// Echo expects an array; send a truncated message (header only).
	req := buildCall(t, 4, testVers, procEcho, nil)
	out, err := s.handleCall(req, make([]byte, 0, 1024))
	if err != nil {
		t.Fatal(err)
	}
	rh, _ := decodeReply(t, out)
	if rh.AcceptStat != rpcmsg.GarbageArgs {
		t.Fatalf("stat = %v, want GARBAGE_ARGS", rh.AcceptStat)
	}
}

func TestHandleCallSystemErr(t *testing.T) {
	s := newTestServer()
	req := buildCall(t, 5, testVers, procFail, nil)
	out, err := s.handleCall(req, make([]byte, 0, 1024))
	if err != nil {
		t.Fatal(err)
	}
	rh, _ := decodeReply(t, out)
	if rh.AcceptStat != rpcmsg.SystemErr {
		t.Fatalf("stat = %v, want SYSTEM_ERR", rh.AcceptStat)
	}
}

func TestHandleCallBadHeader(t *testing.T) {
	s := newTestServer()
	if _, err := s.handleCall([]byte{1, 2, 3}, make([]byte, 64)); err == nil {
		t.Fatal("expected error for truncated header")
	}
}

func TestRegisterVersionRange(t *testing.T) {
	s := New()
	s.Register(testProg, 3, 1, echoProc)
	s.Register(testProg, 5, 1, echoProc)
	req := buildCall(t, 6, 4, procEcho, nil)
	out, err := s.handleCall(req, make([]byte, 0, 1024))
	if err != nil {
		t.Fatal(err)
	}
	rh, _ := decodeReply(t, out)
	// Version 4 is inside the advertised [3,5] range but has no handler:
	// the original svc dispatch reported PROC_UNAVAIL in that case.
	if rh.AcceptStat != rpcmsg.ProcUnavail {
		t.Fatalf("stat = %v", rh.AcceptStat)
	}

	req = buildCall(t, 7, 9, procEcho, nil)
	out, err = s.handleCall(req, make([]byte, 0, 1024))
	if err != nil {
		t.Fatal(err)
	}
	rh, _ = decodeReply(t, out)
	if rh.AcceptStat != rpcmsg.ProgMismatch || rh.Mismatch.Low != 3 || rh.Mismatch.High != 5 {
		t.Fatalf("stat = %v range %+v", rh.AcceptStat, rh.Mismatch)
	}
}

func TestReplyCache(t *testing.T) {
	peer := makePeerKey(netsim.Addr("peer"))
	other := makePeerKey(netsim.Addr("other"))
	c := newReplyCache(2, 1)
	c.put(peer, 1, []byte{1})
	c.put(peer, 2, []byte{2})
	if _, ok := c.get(peer, 1, nil); !ok {
		t.Fatal("entry 1 missing")
	}
	c.put(peer, 3, []byte{3}) // evicts xid 1 (FIFO)
	if _, ok := c.get(peer, 1, nil); ok {
		t.Fatal("entry 1 should be evicted")
	}
	if got, ok := c.get(peer, 3, nil); !ok || got[0] != 3 {
		t.Fatalf("entry 3: %v %v", got, ok)
	}
	// Same key updates in place without eviction.
	c.put(peer, 3, []byte{9})
	if got, _ := c.get(peer, 3, nil); got[0] != 9 {
		t.Fatalf("update failed: %v", got)
	}
	// Keys are per-peer.
	if _, ok := c.get(other, 3, nil); ok {
		t.Fatal("cache leaked across peers")
	}
}

func TestHandlerExecutionCount(t *testing.T) {
	var count atomic.Int32
	s := New()
	s.Register(testProg, testVers, 1, func(dec *xdr.XDR) (Marshal, error) {
		count.Add(1)
		return func(*xdr.XDR) error { return nil }, nil
	})
	req := buildCall(t, 8, testVers, 1, nil)
	if _, err := s.handleCall(req, make([]byte, 0, 1024)); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 1 {
		t.Fatalf("handler ran %d times", count.Load())
	}
}
