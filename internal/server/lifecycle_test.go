package server

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"specrpc/internal/client"
	"specrpc/internal/netsim"
	"specrpc/internal/xdr"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConnCloserUntracked pins the connection-closer leak: every
// accepted TCP connection used to append its Close to the server's
// closer list forever, so a long-lived server grew the list without
// bound and re-closed thousands of dead connections on shutdown. After
// N accept/close cycles only the listener's closer may remain live.
func TestConnCloserUntracked(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer()
	defer s.Close()
	go func() { _ = s.ServeTCP(ln) }()

	const cycles = 50
	for i := 0; i < cycles; i++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		c := client.NewTCP(conn, client.Config{Prog: testProg, Vers: testVers, Timeout: 5 * time.Second})
		in := []int32{int32(i)}
		var out []int32
		err = c.Call(procEcho,
			func(x *xdr.XDR) error { return xdr.Array(x, &in, xdr.NoSizeLimit, (*xdr.XDR).Long) },
			func(x *xdr.XDR) error { return xdr.Array(x, &out, xdr.NoSizeLimit, (*xdr.XDR).Long) })
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		_ = c.Close()
	}
	// The server notices each close asynchronously (its read loop gets
	// EOF); the tracked set must settle back to the listener alone.
	waitFor(t, "closers to drain", func() bool { return s.trackedClosers() <= 1 })
	if got := s.trackedClosers(); got != 1 {
		t.Fatalf("%d live closers after %d cycles, want 1 (listener)", got, cycles)
	}
}

// tempErr is a net.Error the runtime would report as temporary
// (ECONNABORTED, EMFILE, ...).
type tempErr struct{}

func (tempErr) Error() string   { return "accept: transient failure" }
func (tempErr) Timeout() bool   { return false }
func (tempErr) Temporary() bool { return true }

// flakyListener fails its first failures Accepts with a temporary error,
// then hands out queued connections until closed.
type flakyListener struct {
	mu       sync.Mutex
	failures int
	accepts  atomic.Int32
	conns    chan net.Conn
	closed   chan struct{}
	once     sync.Once
}

func newFlakyListener(failures int) *flakyListener {
	return &flakyListener{failures: failures, conns: make(chan net.Conn, 8), closed: make(chan struct{})}
}

func (l *flakyListener) Accept() (net.Conn, error) {
	l.accepts.Add(1)
	l.mu.Lock()
	if l.failures > 0 {
		l.failures--
		l.mu.Unlock()
		return nil, tempErr{}
	}
	l.mu.Unlock()
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

func (l *flakyListener) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}

func (l *flakyListener) Addr() net.Addr { return netsim.Addr("flaky") }

// TestServeTCPRetriesTransientAcceptErrors pins the accept-loop fix: a
// burst of temporary accept failures must not take down the listener —
// the connection accepted after the burst is served normally. The old
// loop returned on the first error and this test times out against it.
func TestServeTCPRetriesTransientAcceptErrors(t *testing.T) {
	ln := newFlakyListener(3)
	s := newTestServer()
	defer s.Close()
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.ServeTCP(ln) }()

	clientEnd, serverEnd := net.Pipe()
	ln.conns <- serverEnd
	c := client.NewTCP(clientEnd, client.Config{Prog: testProg, Vers: testVers, Timeout: 5 * time.Second})
	defer c.Close()
	in := []int32{7}
	var out []int32
	err := c.Call(procEcho,
		func(x *xdr.XDR) error { return xdr.Array(x, &in, xdr.NoSizeLimit, (*xdr.XDR).Long) },
		func(x *xdr.XDR) error { return xdr.Array(x, &out, xdr.NoSizeLimit, (*xdr.XDR).Long) })
	if err != nil {
		t.Fatalf("call after transient accept errors: %v", err)
	}
	if len(out) != 1 || out[0] != 7 {
		t.Fatalf("echo result %v", out)
	}
	select {
	case err := <-serveErr:
		t.Fatalf("ServeTCP exited on transient errors: %v", err)
	default:
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("ServeTCP after close: %v", err)
	}
}

// TestCloseInterruptsAcceptBackoff pins the interruptible backoff: the
// accept loop's capped retry sleep reaches a full second, and Close must
// cut it short instead of waiting it out (Close joins the service loops,
// so an uninterruptible sleep stalls the whole shutdown). The old
// time.Sleep backoff blocks Close for most of a second and fails the
// bound below.
func TestCloseInterruptsAcceptBackoff(t *testing.T) {
	ln := newFlakyListener(1 << 30) // every Accept fails with a temporary error
	s := newTestServer()
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.ServeTCP(ln) }()

	// Let the backoff grow to its 1s cap (about ten failed accepts),
	// then catch the moment a fresh sleep starts: the next Accept call
	// marks the end of the previous sleep, and the loop re-enters the
	// backoff almost immediately after it fails.
	waitFor(t, "backoff to reach its cap", func() bool { return ln.accepts.Load() >= 10 })
	n := ln.accepts.Load()
	waitFor(t, "the next backoff sleep to begin", func() bool { return ln.accepts.Load() > n })

	start := time.Now()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("Close blocked %v waiting out the accept backoff", d)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("ServeTCP after close: %v", err)
	}
}

// TestServeTCPPermanentAcceptError pins the other half of the retry
// policy: a non-temporary accept failure still exits the loop.
func TestServeTCPPermanentAcceptError(t *testing.T) {
	ln := newFlakyListener(0)
	_ = ln.Close() // Accept now fails permanently with net.ErrClosed
	s := newTestServer()
	defer s.Close()
	if err := s.ServeTCP(ln); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("ServeTCP = %v, want net.ErrClosed", err)
	}
}

// scriptedPacketConn replays a fixed burst of datagrams as fast as
// ReadFrom is called, then blocks until closed — the worst-case arrival
// pattern for admission control.
type scriptedPacketConn struct {
	mu     sync.Mutex
	burst  [][]byte
	next   int
	closed chan struct{}
	once   sync.Once
}

func (c *scriptedPacketConn) ReadFrom(p []byte) (int, net.Addr, error) {
	c.mu.Lock()
	if c.next < len(c.burst) {
		n := copy(p, c.burst[c.next])
		c.next++
		c.mu.Unlock()
		return n, netsim.Addr("burst-peer"), nil
	}
	c.mu.Unlock()
	<-c.closed
	return 0, nil, net.ErrClosed
}

func (c *scriptedPacketConn) WriteTo(p []byte, addr net.Addr) (int, error) { return len(p), nil }
func (c *scriptedPacketConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}
func (c *scriptedPacketConn) LocalAddr() net.Addr                { return netsim.Addr("burst-server") }
func (c *scriptedPacketConn) SetDeadline(t time.Time) error      { return nil }
func (c *scriptedPacketConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *scriptedPacketConn) SetWriteDeadline(t time.Time) error { return nil }

// TestServeUDPAdmissionControl pins the counted-drop overflow policy:
// with every worker wedged and the queue full, the read loop sheds the
// excess datagrams and counts them instead of blocking. The old loop
// blocked forever on the full queue and this test times out against it.
func TestServeUDPAdmissionControl(t *testing.T) {
	const (
		workers = 1
		queue   = 2
		burst   = 8
	)
	release := make(chan struct{})
	var executed atomic.Int32
	s := New(WithWorkers(workers), WithQueueDepth(queue), WithCacheSize(0))
	s.Register(testProg, testVers, procEcho, func(dec *xdr.XDR) (Marshal, error) {
		executed.Add(1)
		<-release
		return func(*xdr.XDR) error { return nil }, nil
	})
	pc := &scriptedPacketConn{closed: make(chan struct{})}
	for i := 0; i < burst; i++ {
		pc.burst = append(pc.burst, buildCall(t, uint32(100+i), testVers, procEcho, nil))
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = s.ServeUDP(pc) }()

	// At most queue+workers datagrams can be admitted while the pool is
	// wedged; everything else must surface in the drop counter.
	const minDrops = burst - queue - workers
	waitFor(t, "admission drops", func() bool { return s.QueueDrops() >= minDrops })
	close(release)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	if exec, drops := executed.Load(), s.QueueDrops(); int(exec)+int(drops) != burst {
		t.Fatalf("executed %d + dropped %d != burst %d", exec, drops, burst)
	}
}

// TestServeTCPConnLimit pins WithMaxConns: connections beyond the bound
// are closed at accept and counted, and capacity freed by a departing
// connection is reusable.
func TestServeTCPConnLimit(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer()
	s.maxConns = 2
	defer s.Close()
	go func() { _ = s.ServeTCP(ln) }()

	call := func(c client.Caller) error {
		in := []int32{1}
		var out []int32
		return c.Call(procEcho,
			func(x *xdr.XDR) error { return xdr.Array(x, &in, xdr.NoSizeLimit, (*xdr.XDR).Long) },
			func(x *xdr.XDR) error { return xdr.Array(x, &out, xdr.NoSizeLimit, (*xdr.XDR).Long) })
	}
	var clients []client.Caller
	for i := 0; i < 2; i++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		c := client.NewTCP(conn, client.Config{Prog: testProg, Vers: testVers, Timeout: 5 * time.Second})
		if err := call(c); err != nil {
			t.Fatalf("conn %d: %v", i, err)
		}
		clients = append(clients, c)
	}
	// Third connection: accepted by the kernel, then shed by the server.
	over, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	_ = over.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := over.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("over-limit conn read = %v, want EOF", err)
	}
	waitFor(t, "conn-limit drop count", func() bool { return s.ConnLimitDrops() == 1 })

	// Departure frees a slot: a new connection is admitted and served.
	_ = clients[0].Close()
	waitFor(t, "slot to free", func() bool { return s.Conns() < 2 })
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := client.NewTCP(conn, client.Config{Prog: testProg, Vers: testVers, Timeout: 5 * time.Second})
	defer c.Close()
	if err := call(c); err != nil {
		t.Fatalf("call on freed slot: %v", err)
	}
}
