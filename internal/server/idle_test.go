package server

import (
	"net"
	"testing"
	"time"

	"specrpc/internal/client"
	"specrpc/internal/xdr"
)

// procSleep blocks longer than the idle window before echoing, standing
// in for a genuinely slow handler.
const procSleep = uint32(9)

// TestServeTCPIdleTimeout pins WithIdleTimeout: a connection that goes
// silent between calls is reaped and counted, while a connection that is
// merely waiting on a slow handler — silent on the wire for just as long
// — is not. The old server held silent connections open forever.
func TestServeTCPIdleTimeout(t *testing.T) {
	const idle = 100 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := New(WithIdleTimeout(idle))
	s.Register(testProg, testVers, procEcho, echoProc)
	s.Register(testProg, testVers, procSleep, func(dec *xdr.XDR) (Marshal, error) {
		m, err := echoProc(dec)
		time.Sleep(4 * idle)
		return m, err
	})
	defer s.Close()
	go func() { _ = s.ServeTCP(ln) }()

	call := func(c client.Caller, proc uint32) error {
		in := []int32{1}
		var out []int32
		return c.Call(proc,
			func(x *xdr.XDR) error { return xdr.Array(x, &in, xdr.NoSizeLimit, (*xdr.XDR).Long) },
			func(x *xdr.XDR) error { return xdr.Array(x, &out, xdr.NoSizeLimit, (*xdr.XDR).Long) })
	}
	dial := func() client.Caller {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		return client.NewTCP(conn, client.Config{Prog: testProg, Vers: testVers, Timeout: 10 * time.Second})
	}

	// A connection that makes one call and then falls silent is reaped
	// once the window passes, and the reap is counted.
	quiet := dial()
	defer quiet.Close()
	if err := call(quiet, procEcho); err != nil {
		t.Fatalf("call before going idle: %v", err)
	}
	waitFor(t, "idle reap", func() bool { return s.IdleDrops() == 1 })
	waitFor(t, "reaped conn to untrack", func() bool { return s.Conns() == 0 })

	// A connection waiting out a slow handler spans several idle windows
	// with nothing on the wire, yet the in-flight call protects it: the
	// reply arrives and the connection still serves the next call.
	busy := dial()
	defer busy.Close()
	if err := call(busy, procSleep); err != nil {
		t.Fatalf("slow call on an idle-reaping server: %v", err)
	}
	if err := call(busy, procEcho); err != nil {
		t.Fatalf("call after the slow reply: %v", err)
	}
	if got := s.IdleDrops(); got != 1 {
		t.Fatalf("busy connection counted as idle: IdleDrops = %d, want 1", got)
	}
}
