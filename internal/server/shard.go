// Sharded call-tracking state. The in-flight set and the duplicate-reply
// cache key every datagram on (peer, xid); behind one mutex each, those
// two locks serialize unrelated peers' calls across the whole worker
// pool. Both structures are therefore split into a power-of-two number
// of shards selected by a hash of the peer key: all of one peer's
// entries live in one shard (so the per-peer FIFO and at-most-once
// properties are per-shard properties), while distinct peers spread
// across shards and stop contending. A shard count of 1 degenerates to
// the original single-lock layout, which keeps the pre-sharding
// behaviour available as a measurable baseline (WithShards(1)).

package server

import (
	"runtime"
	"sync"
)

// defaultShards picks the shard count for a server that did not set one:
// the next power of two at or above twice GOMAXPROCS, floored at 8 so
// small hosts still spread a few peers, capped at 256 so the fixed
// per-shard footprint stays negligible.
func defaultShards() int {
	n := 2 * runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	if n > 256 {
		n = 256
	}
	return nextPow2(n)
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// hash folds a peerKey into the shard selector with FNV-1a: cheap,
// allocation-free, and good enough dispersion over ports and low IP
// bytes (the fields that actually vary between loopback peers).
func (k *peerKey) hash() uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	h = (h ^ uint32(k.kind)) * prime32
	h = (h ^ uint32(k.port&0xff)) * prime32
	h = (h ^ uint32(k.port>>8)) * prime32
	for _, c := range k.b[:k.n] {
		h = (h ^ uint32(c)) * prime32
	}
	for i := 0; i < len(k.rest); i++ {
		h = (h ^ uint32(k.rest[i])) * prime32
	}
	return h
}

// inflightSet tracks the (peer, xid) pairs currently executing on the
// datagram worker pool, so a retransmission arriving mid-execution is
// dropped instead of executed twice. Shard selection is by peer, so the
// claim/release cycle of one peer never touches another shard's lock.
type inflightSet struct {
	mask   uint32
	shards []inflightShard
}

type inflightShard struct {
	mu sync.Mutex
	m  map[cacheKey]struct{}
	// Pad each shard past a cache line so adjacent shards' mutexes do
	// not false-share under cross-CPU claim traffic.
	_ [64]byte
}

func newInflightSet(shards int) *inflightSet {
	shards = nextPow2(max(shards, 1))
	f := &inflightSet{mask: uint32(shards - 1), shards: make([]inflightShard, shards)}
	for i := range f.shards {
		f.shards[i].m = make(map[cacheKey]struct{})
	}
	return f
}

// begin claims (peer, xid); it reports false when the pair is already
// executing.
func (f *inflightSet) begin(peer peerKey, xid uint32) bool {
	sh := &f.shards[peer.hash()&f.mask]
	k := cacheKey{peer, xid}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, busy := sh.m[k]; busy {
		return false
	}
	sh.m[k] = struct{}{}
	return true
}

func (f *inflightSet) end(peer peerKey, xid uint32) {
	sh := &f.shards[peer.hash()&f.mask]
	sh.mu.Lock()
	delete(sh.m, cacheKey{peer, xid})
	sh.mu.Unlock()
}

// replyCache is a bounded map from (peer, xid) to reply bytes with FIFO
// eviction, split into peer-hash shards. The capacity divides across the
// shards; each shard keeps its insertion order in a fixed ring buffer
// (head index + live count) instead of the sliced-head append queue the
// first implementation used, which retained the dead head of its backing
// array between reallocations and re-copied the whole queue every
// wrap-around. Evicted entries donate their byte buffers to the entry
// replacing them, so steady-state eviction allocates nothing.
//
// Because of that recycling, every stored buffer is owned by its shard
// and valid only under the shard lock: get therefore copies the reply
// out rather than returning the stored slice, whose bytes a concurrent
// put may overwrite (recycling it into another entry, or updating the
// same key in place) the moment the lock is released.
type replyCache struct {
	mask   uint32
	shards []cacheShard
}

type cacheShard struct {
	mu   sync.Mutex
	m    map[cacheKey][]byte
	ring []cacheKey // circular insertion order; len(ring) == shard capacity
	head int        // index of the oldest live entry
	n    int        // live entries
	_    [64]byte   // see inflightShard
}

// newReplyCache builds a cache holding capacity entries in total across
// the given number of shards (rounded up to a power of two). When the
// capacity is smaller than the shard count, the shard count shrinks to
// match rather than the capacity inflating: every shard needs at least
// one entry, and a small WithCacheSize on a many-core host must not
// silently balloon into one entry per shard.
func newReplyCache(capacity, shards int) *replyCache {
	shards = nextPow2(max(shards, 1))
	for shards > 1 && shards > capacity {
		shards >>= 1
	}
	per := (capacity + shards - 1) / shards
	if per < 1 {
		per = 1
	}
	c := &replyCache{mask: uint32(shards - 1), shards: make([]cacheShard, shards)}
	for i := range c.shards {
		c.shards[i].m = make(map[cacheKey][]byte, per)
		c.shards[i].ring = make([]cacheKey, per)
	}
	return c
}

// get appends the cached reply for (peer, xid) onto dst and reports
// whether an entry was found. The copy happens under the shard lock: the
// stored buffer stays owned by the shard, so no reference to it escapes
// for a concurrent put's buffer recycling to corrupt mid-read.
func (c *replyCache) get(peer peerKey, xid uint32, dst []byte) ([]byte, bool) {
	sh := &c.shards[peer.hash()&c.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b, ok := sh.m[cacheKey{peer, xid}]
	if !ok {
		return dst, false
	}
	return append(dst, b...), true
}

func (c *replyCache) put(peer peerKey, xid uint32, reply []byte) {
	sh := &c.shards[peer.hash()&c.mask]
	k := cacheKey{peer, xid}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if old, ok := sh.m[k]; ok {
		// Same (peer, xid) re-cached: update in place, keeping its ring
		// slot (and its buffer) where they are.
		sh.m[k] = append(old[:0], reply...)
		return
	}
	var recycled []byte
	if sh.n == len(sh.ring) {
		oldest := sh.ring[sh.head]
		recycled = sh.m[oldest][:0]
		delete(sh.m, oldest)
		sh.head++
		if sh.head == len(sh.ring) {
			sh.head = 0
		}
		sh.n--
	}
	slot := sh.head + sh.n
	if slot >= len(sh.ring) {
		slot -= len(sh.ring)
	}
	sh.ring[slot] = k
	sh.n++
	sh.m[k] = append(recycled, reply...)
}
