// Package server implements the service half of Sun RPC: the Go rendering
// of svc.c, svc_udp.c, and svc_tcp.c. A Server holds a dispatch table
// keyed by (program, version, procedure), serves datagram and stream
// transports, enforces the RFC 1057 error replies (PROG_UNAVAIL,
// PROG_MISMATCH, PROC_UNAVAIL, GARBAGE_ARGS), and keeps a bounded
// duplicate-request cache so retransmitted datagram calls are answered
// from memory instead of re-executed (svcudp_enablecache).
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"specrpc/internal/rpcmsg"
	"specrpc/internal/xdr"
)

// Marshal serializes or deserializes one value against an XDR handle.
type Marshal func(x *xdr.XDR) error

// Proc handles one procedure: it decodes arguments from dec and returns
// the marshaler producing the results. Returning ErrGarbageArgs (or any
// error wrapping it) yields a GARBAGE_ARGS reply; any other error yields
// SYSTEM_ERR.
type Proc func(dec *xdr.XDR) (reply Marshal, err error)

// ErrGarbageArgs signals that the arguments failed to decode.
var ErrGarbageArgs = errors.New("server: garbage args")

type procKey struct {
	prog, vers, proc uint32
}

// Server dispatches RPC calls to registered procedures.
type Server struct {
	mu       sync.RWMutex
	procs    map[procKey]Proc
	versions map[uint32][2]uint32 // prog -> [low, high] registered versions
	cache    *replyCache
	bufSize  int

	wg      sync.WaitGroup
	closeMu sync.Mutex
	closers []func() error
	closed  bool
}

// Option configures a Server.
type Option func(*Server)

// WithCacheSize sets the duplicate-request cache capacity in entries
// (default 128; 0 disables the cache).
func WithCacheSize(n int) Option {
	return func(s *Server) {
		if n <= 0 {
			s.cache = nil
			return
		}
		s.cache = newReplyCache(n)
	}
}

// WithBufSize sets the datagram receive/reply buffer size (default 8900).
func WithBufSize(n int) Option { return func(s *Server) { s.bufSize = n } }

// New returns an empty server.
func New(opts ...Option) *Server {
	s := &Server{
		procs:    make(map[procKey]Proc),
		versions: make(map[uint32][2]uint32),
		cache:    newReplyCache(128),
		bufSize:  8900,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Register installs the handler for (prog, vers, proc), the svc_register
// step. Registering the same triple twice replaces the handler.
func (s *Server) Register(prog, vers, proc uint32, h Proc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.procs[procKey{prog, vers, proc}] = h
	r, ok := s.versions[prog]
	if !ok {
		s.versions[prog] = [2]uint32{vers, vers}
		return
	}
	if vers < r[0] {
		r[0] = vers
	}
	if vers > r[1] {
		r[1] = vers
	}
	s.versions[prog] = r
}

// dispatch resolves a call header to a handler or an error reply status.
func (s *Server) dispatch(h *rpcmsg.CallHeader) (Proc, rpcmsg.ReplyHeader) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vers, ok := s.versions[h.Prog]
	if !ok {
		return nil, rpcmsg.ErrorReply(h.XID, rpcmsg.ProgUnavail)
	}
	if h.Vers < vers[0] || h.Vers > vers[1] {
		r := rpcmsg.ErrorReply(h.XID, rpcmsg.ProgMismatch)
		r.Mismatch = rpcmsg.MismatchInfo{Low: vers[0], High: vers[1]}
		return nil, r
	}
	proc, ok := s.procs[procKey{h.Prog, h.Vers, h.Proc}]
	if !ok {
		return nil, rpcmsg.ErrorReply(h.XID, rpcmsg.ProcUnavail)
	}
	return proc, rpcmsg.AcceptedReply(h.XID)
}

// handleCall decodes one request from req and produces the reply bytes
// using replyBuf as scratch. It is shared by the UDP and TCP loops.
func (s *Server) handleCall(req []byte, replyBuf []byte) ([]byte, error) {
	dec := xdr.NewDecoder(xdr.NewMemDecode(req))
	var hdr rpcmsg.CallHeader
	if err := hdr.Marshal(dec); err != nil {
		// Undecodable header: no XID to reply to; drop, as svc_udp did.
		return nil, fmt.Errorf("server: bad call header: %w", err)
	}

	proc, rh := s.dispatch(&hdr)
	var results Marshal
	if proc != nil {
		var err error
		results, err = proc(dec)
		switch {
		case err == nil:
		case errors.Is(err, ErrGarbageArgs):
			rh = rpcmsg.ErrorReply(hdr.XID, rpcmsg.GarbageArgs)
			results = nil
		default:
			rh = rpcmsg.ErrorReply(hdr.XID, rpcmsg.SystemErr)
			results = nil
		}
	}

	mem := xdr.NewMemEncode(replyBuf)
	enc := xdr.NewEncoder(mem)
	if err := rh.Marshal(enc); err != nil {
		return nil, fmt.Errorf("server: marshal reply header: %w", err)
	}
	if results != nil {
		if err := results(enc); err != nil {
			// Results failed to encode: restart with SYSTEM_ERR.
			mem = xdr.NewMemEncode(replyBuf)
			enc = xdr.NewEncoder(mem)
			se := rpcmsg.ErrorReply(hdr.XID, rpcmsg.SystemErr)
			if err2 := se.Marshal(enc); err2 != nil {
				return nil, fmt.Errorf("server: marshal error reply: %w", err2)
			}
		}
	}
	return mem.Buffer(), nil
}

// ServeUDP answers datagram calls on conn until the connection or server
// is closed. It blocks; run it on its own goroutine when serving multiple
// transports.
func (s *Server) ServeUDP(conn net.PacketConn) error {
	s.track(conn.Close)
	s.wg.Add(1)
	defer s.wg.Done()

	req := make([]byte, s.bufSize)
	reply := make([]byte, s.bufSize)
	for {
		n, from, err := conn.ReadFrom(req)
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return fmt.Errorf("server: read: %w", err)
		}
		s.answerDatagram(conn, from, req[:n], reply)
	}
}

func (s *Server) answerDatagram(conn net.PacketConn, from net.Addr, req, replyBuf []byte) {
	// Duplicate-request cache: a retransmission of a call we already
	// executed is answered with the cached bytes, preserving the
	// "execute at most once per XID while cached" behaviour.
	var xid uint32
	if len(req) >= 4 {
		xid = uint32(req[0])<<24 | uint32(req[1])<<16 | uint32(req[2])<<8 | uint32(req[3])
		if s.cache != nil {
			if cached, ok := s.cache.get(from.String(), xid); ok {
				_, _ = conn.WriteTo(cached, from)
				return
			}
		}
	}
	out, err := s.handleCall(req, replyBuf)
	if err != nil {
		return // undecodable datagram: drop silently
	}
	if s.cache != nil {
		s.cache.put(from.String(), xid, out)
	}
	_, _ = conn.WriteTo(out, from)
}

// ServeTCP accepts stream connections and answers record-marked calls on
// each, one goroutine per connection. It blocks until the listener or
// server is closed.
func (s *Server) ServeTCP(ln net.Listener) error {
	s.track(ln.Close)
	s.wg.Add(1)
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		s.track(conn.Close)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	rec := xdr.NewRecStream(conn, 0)
	req := make([]byte, 0, s.bufSize)
	replyBuf := make([]byte, 0, s.bufSize)
	for {
		// Read the full request record via the record layer; unlike a
		// datagram, a TCP record may exceed the datagram buffer size,
		// so the buffer grows as needed.
		var err error
		req, err = rec.ReadRecord(req[:0])
		if err != nil {
			return // connection closed or broken framing
		}
		if cap(replyBuf) < len(req)+s.bufSize {
			replyBuf = make([]byte, 0, len(req)+s.bufSize)
		}
		out, err := s.handleCall(req, replyBuf[:cap(replyBuf)])
		if err != nil {
			return
		}
		if err := rec.PutBytes(out); err != nil {
			return
		}
		if err := rec.EndRecord(); err != nil {
			return
		}
	}
}

func (s *Server) track(close func() error) {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	s.closers = append(s.closers, close)
}

func (s *Server) isClosed() bool {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	return s.closed
}

// Close stops all transports and waits for the service loops to drain.
func (s *Server) Close() error {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return nil
	}
	s.closed = true
	closers := s.closers
	s.closeMu.Unlock()
	var firstErr error
	for _, c := range closers {
		if err := c(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.wg.Wait()
	return firstErr
}

// replyCache is a bounded FIFO map from (peer, xid) to reply bytes.
type replyCache struct {
	mu    sync.Mutex
	cap   int
	order []cacheKey
	m     map[cacheKey][]byte
}

type cacheKey struct {
	peer string
	xid  uint32
}

func newReplyCache(capacity int) *replyCache {
	return &replyCache{cap: capacity, m: make(map[cacheKey][]byte, capacity)}
}

func (c *replyCache) get(peer string, xid uint32) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.m[cacheKey{peer, xid}]
	return b, ok
}

func (c *replyCache) put(peer string, xid uint32, reply []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := cacheKey{peer, xid}
	if _, exists := c.m[k]; exists {
		c.m[k] = append([]byte(nil), reply...)
		return
	}
	if len(c.order) >= c.cap {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.m, oldest)
	}
	c.order = append(c.order, k)
	c.m[k] = append([]byte(nil), reply...)
}
