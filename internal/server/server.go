// Package server implements the service half of Sun RPC: the Go rendering
// of svc.c, svc_udp.c, and svc_tcp.c. A Server holds a dispatch table
// keyed by (program, version, procedure), serves datagram and stream
// transports, enforces the RFC 1057 error replies (PROG_UNAVAIL,
// PROG_MISMATCH, PROC_UNAVAIL, GARBAGE_ARGS), and keeps a bounded
// duplicate-request cache so retransmitted datagram calls are answered
// from memory instead of re-executed (svcudp_enablecache).
//
// Unlike the original single-threaded svc_run loop, dispatch is
// concurrent: datagrams fan out to a bounded worker pool (an in-flight
// set keeps retransmissions of an executing call from running twice),
// and each stream connection serves its pipelined requests with a
// bounded number of in-flight handlers whose reply records are serialized
// back onto the stream. Request and reply buffers come from the shared
// XDR buffer pool, keeping the hot path allocation-free.
//
// In the five-layer specialization stack (see DESIGN.md) this is layer
// 4, the transport endpoint: the service-side twin of internal/client,
// executing internal/wire plans over internal/xdr streams. Its syscalls
// are batched on both transports (DESIGN.md, "Batching and flush
// policy"): concurrent stream handlers group-commit their reply records
// into shared coalesced writes, and ServeUDP moves datagrams in
// recvmmsg/sendmmsg batches through internal/platform/batchio where the
// kernel supports it.
package server

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"specrpc/internal/platform/batchio"
	"specrpc/internal/rpcmsg"
	"specrpc/internal/xdr"
)

// Marshal serializes or deserializes one value against an XDR handle.
type Marshal func(x *xdr.XDR) error

// Proc handles one procedure: it decodes arguments from dec and returns
// the marshaler producing the results. Returning ErrGarbageArgs (or any
// error wrapping it) yields a GARBAGE_ARGS reply; any other error yields
// SYSTEM_ERR. Handlers run concurrently and must be safe for that.
type Proc func(dec *xdr.XDR) (reply Marshal, err error)

// ErrGarbageArgs signals that the arguments failed to decode.
var ErrGarbageArgs = errors.New("server: garbage args")

type procKey struct {
	prog, vers, proc uint32
}

// TypedProc handles one procedure on the fused fast path: body holds
// the raw argument bytes located at fixed offsets by rpcmsg.CallBody,
// and the handler appends its complete success reply (fused header +
// results) onto bs. Returning an error (ErrGarbageArgs for argument
// decode failures) makes the caller emit the matching error reply,
// byte-identical to the generic path's.
type TypedProc func(body []byte, xid uint32, bs *xdr.BufStream) error

// Server dispatches RPC calls to registered procedures.
type Server struct {
	mu       sync.RWMutex // guards procs, typed, versions
	procs    map[procKey]Proc
	typed    map[procKey]TypedProc // fused fast-path dispatch table
	versions map[uint32][2]uint32  // prog -> [low, high] registered versions
	cache    *replyCache
	inflight *inflightSet
	bufSize  int
	workers  int
	shards   int  // shard count for the call-tracking state
	cacheCap int  // duplicate-reply cache capacity (0 disables)
	queue    int  // datagram admission queue depth
	maxConns int  // stream connection limit (0 = unlimited)
	noWBatch bool // stream reply batching disabled (baseline)
	dgBatch  int  // datagrams per syscall bound for ServeUDP

	idleTimeout time.Duration // stream idle-connection reap (0 = never)
	maxFlush    time.Duration // reply-batch flush-delay bound (0 = immediate)

	// dgio points at the batched-I/O wrapper of the most recently started
	// ServeUDP loop, for the DatagramIOStats counters.
	dgio atomic.Pointer[batchio.Conn]

	// typedCount mirrors len(typed) for a lock-free gate: servers with
	// no typed registrations skip the fused-path probe entirely.
	typedCount atomic.Int32
	truncated  atomic.Uint64
	cacheHits  atomic.Uint64 // duplicate calls answered from the reply cache
	qdrops     atomic.Uint64 // datagrams shed by admission control
	connDrops  atomic.Uint64 // connections refused by the limit
	idleDrops  atomic.Uint64 // connections reaped by the idle timeout
	conns      atomic.Int64  // live stream connections

	wg        sync.WaitGroup
	closeMu   sync.Mutex // guards closers, closerSeq, closed
	closers   map[uint64]func() error
	closerSeq uint64
	closed    bool
	done      chan struct{} // closed by Close; interrupts accept backoff
}

// Option configures a Server.
type Option func(*Server)

// WithCacheSize sets the duplicate-request cache capacity in entries
// (default 128; 0 disables the cache). The capacity divides across the
// server's shards, and all of one peer's calls hash to one shard, so a
// single peer's effective duplicate-reply window is only about
// n/WithShards entries (16 of the default 128 at 8 shards): size n as
// the per-peer retransmission depth you want to absorb multiplied by
// the shard count, not as a global total. When n is smaller than the
// shard count the cache uses fewer shards rather than inflating its
// capacity.
func WithCacheSize(n int) Option {
	return func(s *Server) {
		if n < 0 {
			n = 0
		}
		s.cacheCap = n
	}
}

// WithShards sets the shard count for the server's call-tracking state
// (the in-flight set and the duplicate-reply cache), rounded up to a
// power of two. The default scales with GOMAXPROCS; WithShards(1) keeps
// everything behind one lock — the pre-sharding layout, kept as the
// measurable baseline for the open-loop harness.
func WithShards(n int) Option {
	return func(s *Server) {
		if n < 1 {
			n = 1
		}
		s.shards = n
	}
}

// WithQueueDepth sets how many received datagrams may wait for a free
// worker before admission control sheds new arrivals (default
// max(4*workers, 64)). The queue is the overload buffer: once it fills,
// further datagrams are counted (QueueDrops) and dropped — clients
// retransmit — instead of backpressuring the read loop into the kernel's
// invisible socket-buffer drops.
func WithQueueDepth(n int) Option {
	return func(s *Server) {
		if n < 1 {
			n = 1
		}
		s.queue = n
	}
}

// WithMaxConns bounds the number of concurrently served stream
// connections (default 0 = unlimited). Connections accepted beyond the
// bound are closed immediately and counted (ConnLimitDrops): shedding a
// connection at accept time is cheaper than collapsing under tens of
// thousands of half-serviced ones.
func WithMaxConns(n int) Option {
	return func(s *Server) {
		if n < 0 {
			n = 0
		}
		s.maxConns = n
	}
}

// WithIdleTimeout reaps stream connections that stay silent for d
// (default 0 = never): a connection with no bytes arriving, no handler
// running, and no reply finishing for a full window is closed and
// counted (IdleDrops), freeing its goroutine and descriptor — the svc
// answer to clients that dial, go quiet, and hold resources forever.
// A connection busy serving calls is never reaped, however slow the
// calls: silence while a handler runs is the client waiting on the
// server. The window also bounds how long one record may trickle in:
// a peer that stalls mid-record past d is closed (uncounted — that is
// a broken stream, not an idle one).
func WithIdleTimeout(d time.Duration) Option {
	return func(s *Server) {
		if d < 0 {
			d = 0
		}
		s.idleTimeout = d
	}
}

// WithMaxFlushDelay lets the reply-batch leader on stream connections
// wait up to d for more replies to finish before its vectored write
// leaves (default 0 = write immediately, the group-commit-only
// behavior). A few hundred microseconds here trades that much added
// reply latency for fewer, fuller write syscalls when concurrency is
// too low for group commit to find natural batches.
func WithMaxFlushDelay(d time.Duration) Option {
	return func(s *Server) {
		if d < 0 {
			d = 0
		}
		s.maxFlush = d
	}
}

// WithBufSize sets the datagram receive/reply buffer size (default 8900).
func WithBufSize(n int) Option { return func(s *Server) { s.bufSize = n } }

// WithWriteBatching toggles reply-record coalescing on stream
// connections (default on). When on, replies finishing while another
// handler is inside the write syscall queue behind it and leave together
// in one vectored write; off keeps the one-Write-per-record baseline,
// the pre-batching behavior kept measurable for the batch benchmarks.
func WithWriteBatching(on bool) Option {
	return func(s *Server) { s.noWBatch = !on }
}

// DefaultDatagramBatch is the default messages-per-syscall bound for
// ServeUDP: big enough to amortize a kernel crossing across a bursty
// queue, small enough that the per-loop buffer set stays modest.
const DefaultDatagramBatch = 32

// WithDatagramBatch bounds how many datagrams ServeUDP may move per
// syscall (default DefaultDatagramBatch). n == 1 is the
// one-datagram-per-syscall baseline. Values above 1 engage
// recvmmsg/sendmmsg only where the platform and socket support them
// (Linux kernel UDP sockets); everywhere else the portable path runs
// the baseline code regardless of n, byte-identical on the wire.
func WithDatagramBatch(n int) Option {
	return func(s *Server) {
		if n < 1 {
			n = 1
		}
		s.dgBatch = n
	}
}

// WithWorkers bounds the number of concurrently executing handlers per
// transport: the size of the datagram worker pool and the in-flight cap
// per stream connection. The default is max(8, GOMAXPROCS): handlers may
// block on locks or downstream I/O, so the bound is a pipelining depth,
// not a parallelism count, and must stay useful on single-CPU hosts.
func WithWorkers(n int) Option {
	return func(s *Server) {
		if n < 1 {
			n = 1
		}
		s.workers = n
	}
}

// New returns an empty server.
func New(opts ...Option) *Server {
	workers := runtime.GOMAXPROCS(0)
	if workers < 8 {
		workers = 8
	}
	s := &Server{
		procs:    make(map[procKey]Proc),
		typed:    make(map[procKey]TypedProc),
		versions: make(map[uint32][2]uint32),
		bufSize:  8900,
		workers:  workers,
		cacheCap: 128,
		done:     make(chan struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	// The sharded state is built after the options so the shard count,
	// cache capacity, and worker bound are all settled.
	if s.shards == 0 {
		s.shards = defaultShards()
	}
	s.inflight = newInflightSet(s.shards)
	if s.cacheCap > 0 {
		s.cache = newReplyCache(s.cacheCap, s.shards)
	}
	if s.queue == 0 {
		s.queue = max(4*s.workers, 64)
	}
	if s.dgBatch == 0 {
		s.dgBatch = DefaultDatagramBatch
	}
	return s
}

// Register installs the handler for (prog, vers, proc), the svc_register
// step. Registering the same triple twice replaces the handler — and
// clears any fused fast-path entry, so a later closure registration
// cannot be shadowed by a stale specialized one.
func (s *Server) Register(prog, vers, proc uint32, h Proc) {
	s.registerBoth(prog, vers, proc, h, nil)
}

// registerBoth installs the generic handler and (when th is non-nil)
// its fused fast-path entry in one lock acquisition, so the two
// dispatch tables can never disagree about which registration a triple
// belongs to — concurrent registrations interleave whole, not halved.
func (s *Server) registerBoth(prog, vers, proc uint32, h Proc, th TypedProc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := procKey{prog, vers, proc}
	s.procs[k] = h
	if th != nil {
		s.typed[k] = th
	} else {
		delete(s.typed, k)
	}
	s.typedCount.Store(int32(len(s.typed)))
	r, ok := s.versions[prog]
	if !ok {
		s.versions[prog] = [2]uint32{vers, vers}
		return
	}
	if vers < r[0] {
		r[0] = vers
	}
	if vers > r[1] {
		r[1] = vers
	}
	s.versions[prog] = r
}

// typedFor resolves the fused dispatch entry for a routing triple, or
// nil when the call must take the generic walk.
func (s *Server) typedFor(prog, vers, proc uint32) TypedProc {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.typed[procKey{prog, vers, proc}]
}

// dispatch resolves a call header to a handler or an error reply status.
func (s *Server) dispatch(h *rpcmsg.CallHeader) (Proc, rpcmsg.ReplyHeader) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vers, ok := s.versions[h.Prog]
	if !ok {
		return nil, rpcmsg.ErrorReply(h.XID, rpcmsg.ProgUnavail)
	}
	if h.Vers < vers[0] || h.Vers > vers[1] {
		r := rpcmsg.ErrorReply(h.XID, rpcmsg.ProgMismatch)
		r.Mismatch = rpcmsg.MismatchInfo{Low: vers[0], High: vers[1]}
		return nil, r
	}
	proc, ok := s.procs[procKey{h.Prog, h.Vers, h.Proc}]
	if !ok {
		return nil, rpcmsg.ErrorReply(h.XID, rpcmsg.ProcUnavail)
	}
	return proc, rpcmsg.AcceptedReply(h.XID)
}

// successTemplate is the precompiled accepted-success reply header
// (AUTH_NULL verifier) that every healthy reply starts with; only the
// XID varies per call, so the hot path copies the template and patches
// one word instead of walking the generic header encoder.
var successTemplate = rpcmsg.MustReplyTemplate(rpcmsg.None())

// handleCall decodes one request from req and produces the reply bytes,
// appending after replyBuf's existing contents (the TCP path reserves
// the record mark there) and growing the backing array when the reply
// is larger. It is shared by the UDP and TCP paths and safe to run from
// many workers at once.
func (s *Server) handleCall(req []byte, replyBuf []byte) ([]byte, error) {
	// Fused fast path: locate the routing triple and argument bytes at
	// fixed offsets and jump straight to the per-procedure specialized
	// handler, skipping the generic header walk and dispatch. Anything
	// the fixed-offset parse rejects, and every triple without a fused
	// registration, falls through to the interpretive path below —
	// which accepts exactly the same messages and produces identical
	// replies. The atomic gate keeps closure-only servers from paying
	// the parse and the extra lock acquisition on every message.
	if s.typedCount.Load() != 0 {
		if xid, prog, vers, proc, body, ok := rpcmsg.CallBody(req); ok {
			if th := s.typedFor(prog, vers, proc); th != nil {
				return s.handleTyped(th, body, xid, replyBuf)
			}
		}
	}
	d := xdr.GetDec(req)
	defer xdr.PutDec(d)
	var hdr rpcmsg.CallHeader
	if err := hdr.Marshal(&d.X); err != nil {
		// Undecodable header: no XID to reply to; drop, as svc_udp did.
		return nil, fmt.Errorf("server: bad call header: %w", err)
	}

	proc, rh := s.dispatch(&hdr)
	var results Marshal
	if proc != nil {
		var err error
		results, err = proc(&d.X)
		switch {
		case err == nil:
		case errors.Is(err, ErrGarbageArgs):
			rh = rpcmsg.ErrorReply(hdr.XID, rpcmsg.GarbageArgs)
			results = nil
		default:
			rh = rpcmsg.ErrorReply(hdr.XID, rpcmsg.SystemErr)
			results = nil
		}
	}

	base := len(replyBuf)
	e := xdr.GetEnc(replyBuf)
	defer xdr.PutEnc(e)
	if rh.Stat == rpcmsg.MsgAccepted && rh.AcceptStat == rpcmsg.Success &&
		rh.Verf.Flavor == rpcmsg.AuthNone && len(rh.Verf.Body) == 0 {
		successTemplate.CopyTo(e.BS.Extend(successTemplate.Len()), rh.XID)
	} else if err := rh.Marshal(&e.X); err != nil {
		return nil, fmt.Errorf("server: marshal reply header: %w", err)
	}
	if results != nil {
		if err := results(&e.X); err != nil {
			// Results failed to encode: restart with SYSTEM_ERR, keeping
			// any reserved prefix in place.
			if err2 := e.BS.SetPos(base); err2 != nil {
				return nil, fmt.Errorf("server: marshal error reply: %w", err2)
			}
			se := rpcmsg.ErrorReply(hdr.XID, rpcmsg.SystemErr)
			if err2 := se.Marshal(&e.X); err2 != nil {
				return nil, fmt.Errorf("server: marshal error reply: %w", err2)
			}
		}
	}
	return e.BS.Buffer(), nil
}

// handleTyped runs one call through its fused handler: the success
// reply (precompiled header + result plan) is appended in one pass by
// the handler itself; error outcomes rewind the buffer and marshal the
// same error replies the generic path produces.
func (s *Server) handleTyped(th TypedProc, body []byte, xid uint32, replyBuf []byte) ([]byte, error) {
	base := len(replyBuf)
	var bs xdr.BufStream
	bs.SetBuffer(replyBuf)
	err := th(body, xid, &bs)
	if err == nil {
		return bs.Buffer(), nil
	}
	stat := rpcmsg.SystemErr
	if errors.Is(err, ErrGarbageArgs) {
		stat = rpcmsg.GarbageArgs
	}
	// Rewind past anything a partially-failed handler wrote, keeping
	// the reserved prefix (the TCP record mark) in place.
	e := xdr.GetEnc(bs.Buffer()[:base])
	defer xdr.PutEnc(e)
	rh := rpcmsg.ErrorReply(xid, stat)
	if err := rh.Marshal(&e.X); err != nil {
		return nil, fmt.Errorf("server: marshal error reply: %w", err)
	}
	return e.BS.Buffer(), nil
}

// dgram is one received datagram in flight to a worker.
type dgram struct {
	from net.Addr
	req  *[]byte // pooled; the worker returns it
}

// ServeUDP answers datagram calls on conn until the connection or server
// is closed. It blocks; run it on its own goroutine when serving multiple
// transports. Datagrams fan out to a bounded pool of workers, any of
// which may take any datagram: a retransmission that arrives while the
// original is still executing is detected via the in-flight set and
// dropped (the client retransmits again and is answered from the
// duplicate-request cache once the first execution lands), so the
// at-most-once guarantee holds without pinning calls to workers —
// pinning (e.g. sharding on XID) would serialize unrelated calls that
// collide on a shard and cap the useful concurrency below the pool size.
//
// Admission control: the queue between the read loop and the pool is
// bounded (WithQueueDepth). When every worker is busy and the queue is
// full the datagram is dropped and counted (QueueDrops) — datagram
// clients retransmit, so shedding load visibly at the door beats
// stalling the read loop until the kernel sheds it invisibly.
func (s *Server) ServeUDP(conn net.PacketConn) error {
	s.track(conn.Close)
	s.wg.Add(1)
	defer s.wg.Done()

	// Batched I/O wrapper: up to dgBatch messages per recvmmsg/sendmmsg
	// where the platform supports it; with dgBatch == 1 (or anywhere the
	// mmsg path is unavailable) every operation is the exact
	// one-datagram-per-syscall code this loop always ran. Replies from
	// concurrent workers coalesce through a group-commit sender on the
	// batched path and go straight to WriteTo on the baseline.
	bc := batchio.New(conn, s.dgBatch)
	s.dgio.Store(bc)
	var sd replySender = directSender{bc}
	if bc.Batch() > 1 {
		sd = batchio.NewSender(bc, xdr.GetBuf, xdr.PutBuf)
	}

	jobs := make(chan dgram, s.queue)
	var workers sync.WaitGroup
	for i := 0; i < s.workers; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for d := range jobs {
				s.answerDatagram(sd, d.from, *d.req)
				xdr.PutBuf(d.req)
			}
		}()
	}
	defer workers.Wait()
	defer close(jobs)

	msgs := make([]batchio.Message, bc.Batch())
	bps := make([]*[]byte, bc.Batch())
	defer func() {
		for _, bp := range bps {
			if bp != nil {
				xdr.PutBuf(bp)
			}
		}
	}()
	for {
		// Arm each slot with a receive buffer of exactly bufSize bytes:
		// recycled pool buffers may be larger, and the datagram size bound
		// must not vary with them. Slots whose buffer was handed to a
		// worker get a fresh one; the rest reuse theirs.
		for i := range msgs {
			if bps[i] == nil {
				bps[i] = xdr.GetBuf(s.bufSize)
			}
			msgs[i].Buf = (*bps[i])[:s.bufSize]
			msgs[i].N, msgs[i].Addr = 0, nil
		}
		n, err := bc.ReadBatch(msgs)
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return fmt.Errorf("server: read: %w", err)
		}
		for i := 0; i < n; i++ {
			m := &msgs[i]
			if m.N == s.bufSize {
				// A request that fills the buffer exactly cannot be told
				// apart from one the kernel truncated to fit it (recvmmsg
				// truncates just as silently as recvfrom); decoding the
				// prefix as if complete risks executing a call on garbage
				// arguments. Drop it (the client retransmits) and count the
				// drop — the mirror of the client-side reply check.
				s.truncated.Add(1)
				continue
			}
			bp := bps[i]
			*bp = m.Buf[:m.N]
			select {
			case jobs <- dgram{from: m.Addr, req: bp}:
				bps[i] = nil // ownership moved to the worker; rearm next pass
			default:
				// Pool saturated and queue full: shed the call here, where
				// it is countable, instead of blocking the read loop.
				s.qdrops.Add(1)
			}
		}
	}
}

// replySender is where a datagram reply leaves the server: the direct
// WriteTo baseline or the group-commit batched sender. The caller keeps
// ownership of msg either way — the batched sender copies the reply into
// its own pooled buffer before queueing it.
type replySender interface {
	Send(to net.Addr, msg []byte)
}

// directSender is the unbatched reply path: one counted WriteTo per
// reply, errors dropped as they always were (datagram clients
// retransmit).
type directSender struct{ c *batchio.Conn }

func (d directSender) Send(to net.Addr, msg []byte) { d.c.WriteTo(msg, to) }

// DatagramIOStats reports the cumulative syscall and message counters of
// the most recently started ServeUDP loop: reads then writes, calls then
// messages. Calls == messages on the unbatched path; messages/calls is
// the realized batch factor.
func (s *Server) DatagramIOStats() (readCalls, readMsgs, writeCalls, writeMsgs uint64) {
	bc := s.dgio.Load()
	if bc == nil {
		return 0, 0, 0, 0
	}
	st := bc.Stats()
	return st.ReadCalls.Load(), st.ReadMsgs.Load(), st.WriteCalls.Load(), st.WriteMsgs.Load()
}

// TruncatedDrops reports how many possibly-truncated request datagrams
// (received length == the datagram buffer size) the server has
// discarded.
func (s *Server) TruncatedDrops() uint64 { return s.truncated.Load() }

// QueueDrops reports how many datagrams admission control has shed
// because the worker pool and its queue were both full.
func (s *Server) QueueDrops() uint64 { return s.qdrops.Load() }

// CacheHits reports how many duplicate datagram calls were answered
// from the reply cache instead of re-executed — the observable half of
// the at-most-once guarantee under retransmission.
func (s *Server) CacheHits() uint64 { return s.cacheHits.Load() }

// ConnLimitDrops reports how many stream connections were refused by
// the WithMaxConns bound.
func (s *Server) ConnLimitDrops() uint64 { return s.connDrops.Load() }

// IdleDrops reports how many stream connections the WithIdleTimeout
// reaper has closed for staying silent a full window.
func (s *Server) IdleDrops() uint64 { return s.idleDrops.Load() }

// Conns reports the number of stream connections currently being served.
func (s *Server) Conns() int { return int(s.conns.Load()) }

func (s *Server) answerDatagram(sd replySender, from net.Addr, req []byte) {
	// The pooled reply buffer doubles as the destination for cache hits:
	// get copies the cached bytes into it under the shard lock (the
	// cache's own buffers are recycled by concurrent evictions, so they
	// must never be written to the socket after the lock is released).
	rp := xdr.GetBuf(s.bufSize)
	defer xdr.PutBuf(rp)
	// Duplicate-request cache: a retransmission of a call we already
	// executed is answered with the cached bytes, preserving the
	// "execute at most once per XID while cached" behaviour.
	xid, hasXID := rpcmsg.PeekXID(req)
	var peer peerKey
	if hasXID {
		peer = makePeerKey(from)
		if s.cache != nil {
			if cached, ok := s.cache.get(peer, xid, (*rp)[:0]); ok {
				s.cacheHits.Add(1)
				*rp = cached
				sd.Send(from, cached)
				return
			}
		}
		// A retransmission of a call currently executing on another
		// worker must not execute a second time — even with the reply
		// cache disabled; drop it and let a later retransmission be
		// answered (from the cache, or by re-execution once the first
		// finishes).
		if !s.inflight.begin(peer, xid) {
			return
		}
		defer s.inflight.end(peer, xid)
		// Double-check the cache now that the claim is held: the original
		// execution may have finished — and cached its reply — between the
		// miss above and the claim, and executing again would break
		// at-most-once for non-idempotent procedures.
		if s.cache != nil {
			if cached, ok := s.cache.get(peer, xid, (*rp)[:0]); ok {
				s.cacheHits.Add(1)
				*rp = cached
				sd.Send(from, cached)
				return
			}
		}
	}
	out, err := s.handleCall(req, *rp)
	if err != nil {
		return // undecodable datagram: drop silently
	}
	*rp = out // keep any growth pooled
	if len(out) >= s.bufSize {
		// The growable reply buffer fits any results, but a datagram
		// cannot carry them: replace the reply with SYSTEM_ERR — which
		// always fits, and is sent and cached like any reply so the
		// handler is not re-executed per retransmission — exactly what
		// the original fixed-buffer encode produced when the results
		// overflowed it. The bound is exclusive: a reply that *fills*
		// the peer's receive buffer is dropped there as possibly
		// truncated, so it must stay strictly below. Stream replies
		// grow freely.
		if !hasXID {
			return
		}
		buf := xdr.NewBufEncode((*rp)[:0])
		se := rpcmsg.ErrorReply(xid, rpcmsg.SystemErr)
		if err := se.Marshal(xdr.NewEncoder(buf)); err != nil {
			return
		}
		out = buf.Buffer()
		*rp = out
	}
	if hasXID && s.cache != nil {
		s.cache.put(peer, xid, out)
	}
	sd.Send(from, out)
}

// ServeTCP accepts stream connections and answers record-marked calls on
// each, one goroutine per connection. It blocks until the listener or
// server is closed.
//
// Transient accept failures (ECONNABORTED, EMFILE, and anything else the
// runtime reports as temporary) are retried with capped exponential
// backoff — the net/http.Server pattern — so one aborted handshake or a
// momentary descriptor squeeze cannot take down the listener; only close
// or a permanent failure exits the loop. When WithMaxConns is set,
// connections beyond the bound are closed at accept and counted.
func (s *Server) ServeTCP(ln net.Listener) error {
	s.track(ln.Close)
	s.wg.Add(1)
	defer s.wg.Done()
	var tempDelay time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosed() {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Temporary() {
				if tempDelay == 0 {
					tempDelay = 5 * time.Millisecond
				} else {
					tempDelay *= 2
				}
				if tempDelay > time.Second {
					tempDelay = time.Second
				}
				// Sleep interruptibly: Close must not wait out a capped
				// backoff (up to a second) before the loop notices the
				// server shut down.
				t := time.NewTimer(tempDelay)
				select {
				case <-t.C:
				case <-s.done:
					t.Stop()
					return nil
				}
				continue
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		tempDelay = 0
		// Add-then-check keeps the bound exact when several ServeTCP
		// loops share one Server; load-then-add would let concurrent
		// accepts race past it by up to the listener count.
		if n := s.conns.Add(1); s.maxConns > 0 && n > int64(s.maxConns) {
			s.conns.Add(-1)
			s.connDrops.Add(1)
			_ = conn.Close()
			continue
		}
		id := s.track(conn.Close)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.conns.Add(-1)
			// Untrack on exit: a long-lived server accepts unbounded
			// connections, and retaining every dead connection's closer
			// would grow the set without bound (and re-close them all on
			// shutdown).
			defer s.untrack(id)
			s.serveConn(conn)
		}()
	}
}

// serveConn serves one stream connection. Pipelined requests execute
// concurrently — up to s.workers handlers in flight — and the reply
// records leave through a group-commit batcher: each finishing handler
// either writes immediately (uncontended) or queues behind the handler
// currently inside the write syscall, whose next vectored write carries
// every reply that accumulated meanwhile. A slow call never blocks the
// replies of later, faster calls (the client demultiplexes them by
// XID), and under pipelining many replies share one syscall.
func (s *Server) serveConn(conn net.Conn) {
	// Close the connection before waiting for in-flight handlers (defers
	// run LIFO): a worker blocked writing a reply to a peer that stopped
	// reading is only unblocked by the close, so the other order would
	// wedge this goroutine forever on a stalled client.
	var calls sync.WaitGroup
	defer calls.Wait()
	defer conn.Close()
	rc := &readCounter{Conn: conn}
	rrec := xdr.NewRecStream(rc, 0)
	wb := xdr.NewRecBatcher(xdr.NewRecStream(conn, 0))
	// A failed reply write leaves the record stream unusable; close the
	// connection so the read loop exits and the peer fails fast instead
	// of waiting out its call timeouts.
	wb.OnError = func(error) { _ = conn.Close() }
	if s.noWBatch {
		wb.MaxBatch = 1
	}
	wb.MaxFlushDelay = s.maxFlush
	// Flush invariant: every record handed to wb is flushed by some
	// handler goroutine before it returns (the leader loops until the
	// queue is empty, and a record queued after the leader exits makes
	// its own writer the new leader), and calls.Wait holds serveConn
	// open until every handler returns — so no reply is stranded by
	// connection teardown.
	// inFlight/completed drive the idle reaper: a timeout only reaps when
	// no handler is running and none finished during the armed window.
	// Handlers bump completed before dropping inFlight, so the reaper can
	// never observe "nothing running, nothing finished" mid-handoff.
	var inFlight, completed atomic.Int64
	sem := make(chan struct{}, s.workers)
	for {
		// Read the full request record via the record layer; unlike a
		// datagram, a TCP record may exceed the datagram buffer size,
		// so the buffer grows as needed.
		bp := xdr.GetBuf(s.bufSize)
		req, err := s.readRecordIdle(rc, rrec, (*bp)[:0], &inFlight, &completed)
		*bp = req
		if err != nil {
			xdr.PutBuf(bp)
			return // connection closed, broken framing, or idle-reaped
		}
		sem <- struct{}{}
		calls.Add(1)
		inFlight.Add(1)
		go func(bp *[]byte) {
			defer calls.Done()
			defer func() { <-sem }()
			defer func() { completed.Add(1); inFlight.Add(-1) }()
			defer xdr.PutBuf(bp)
			rp := xdr.GetBuf(s.bufSize)
			// Reserve the record mark at the head of the reply buffer:
			// handleCall marshals the reply behind it and the batcher
			// patches the mark in place, so the fully-formed reply goes
			// to the socket with no second copy.
			out, err := s.handleCall(*bp, (*rp)[:xdr.RecordMarkLen])
			if err != nil {
				xdr.PutBuf(rp)
				// Undecodable call header: the stream is suspect and there
				// is no XID to reply to; close the connection so the peer
				// fails fast, as the original svc_tcp loop did.
				_ = conn.Close()
				return
			}
			*rp = out
			// Ownership of rp transfers to the batcher, which releases it
			// once the batch carrying it is written (or dropped on a
			// poisoned stream). Write errors are handled by OnError above.
			_ = wb.Write(rp)
		}(bp)
	}
}

// readCounter wraps the connection the record reader consumes, counting
// bytes so the idle reaper can tell "timed out with nothing on the
// wire" (retriable, reapable) from "timed out mid-record" (the record
// layer cannot resume a half-read record, so the connection is done).
// Only the connection's read goroutine touches n.
type readCounter struct {
	net.Conn
	n int64
}

func (r *readCounter) Read(p []byte) (int, error) {
	n, err := r.Conn.Read(p)
	r.n += int64(n)
	return n, err
}

// readRecordIdle reads one request record, enforcing the idle timeout
// when one is configured. The deadline re-arms as long as the window
// saw any sign of life — a handler still running, or one that finished
// (its client is likely composing the next call) — so only a
// connection that stayed truly silent for a full window is reaped and
// counted. Bytes arriving mid-window reset nothing: a record either
// completes within the window or the stream is declared stalled.
func (s *Server) readRecordIdle(rc *readCounter, rrec *xdr.RecStream, dst []byte,
	inFlight, completed *atomic.Int64) ([]byte, error) {
	if s.idleTimeout <= 0 {
		return rrec.ReadRecord(dst)
	}
	for {
		read0, done0 := rc.n, completed.Load()
		_ = rc.SetReadDeadline(time.Now().Add(s.idleTimeout))
		out, err := rrec.ReadRecord(dst)
		if err == nil {
			return out, nil
		}
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() || rc.n != read0 {
			return out, err // closed, broken framing, or stalled mid-record
		}
		if inFlight.Load() > 0 || completed.Load() != done0 {
			continue // busy serving: silence here is the client waiting on us
		}
		s.idleDrops.Add(1)
		return out, err
	}
}

// track registers a closer to be invoked by Close and returns a handle
// for untrack. A closer registered after Close has begun is invoked
// immediately (the transport must still shut down) and not retained.
func (s *Server) track(close func() error) uint64 {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		_ = close()
		return 0
	}
	if s.closers == nil {
		s.closers = make(map[uint64]func() error)
	}
	s.closerSeq++
	id := s.closerSeq
	s.closers[id] = close
	s.closeMu.Unlock()
	return id
}

// untrack drops a closer whose transport has already shut down, so the
// set tracks live transports instead of growing with every connection
// ever accepted.
func (s *Server) untrack(id uint64) {
	if id == 0 {
		return
	}
	s.closeMu.Lock()
	delete(s.closers, id)
	s.closeMu.Unlock()
}

// trackedClosers reports the number of live tracked closers (tests pin
// the connection-closer leak with it).
func (s *Server) trackedClosers() int {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	return len(s.closers)
}

func (s *Server) isClosed() bool {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	return s.closed
}

// Close stops all transports and waits for the service loops to drain.
func (s *Server) Close() error {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	closers := make([]func() error, 0, len(s.closers))
	for _, c := range s.closers {
		closers = append(closers, c)
	}
	s.closers = nil
	s.closeMu.Unlock()
	var firstErr error
	for _, c := range closers {
		if err := c(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.wg.Wait()
	return firstErr
}

// peerKeyBytes is the fixed-size address window of a peerKey: room for
// a 16-byte IPv6 address, and for the names in-process simulators use
// as addresses.
const peerKeyBytes = 24

// peerKey identifies a datagram sender without allocating: the
// in-flight set and the duplicate-request cache key every datagram on
// (peer, xid), so a heap key — the peer+xid string the first
// implementation built — costs one allocation per received datagram on
// the hot path. The key is a comparable value type instead: address
// bytes (or a short textual address) inline in a fixed array, with a
// string spill only for exotic address types whose rendering does not
// fit.
type peerKey struct {
	kind uint8 // 0 none, 1 UDP, 2 textual
	n    uint8 // bytes of b in use
	port uint16
	b    [peerKeyBytes]byte
	rest string // overflow/zone spill; empty on the hot paths
}

// makePeerKey builds the key for one sender. *net.UDPAddr (the kernel
// UDP path) and compact textual addresses (netsim) stay allocation-free;
// anything else falls back to the address's String rendering.
func makePeerKey(a net.Addr) peerKey {
	if u, ok := a.(*net.UDPAddr); ok {
		k := peerKey{kind: 1, port: uint16(u.Port), rest: u.Zone}
		k.n = uint8(copy(k.b[:], u.IP)) // 4 or 16 bytes, already canonical
		return k
	}
	s := a.String()
	k := peerKey{kind: 2}
	if len(s) <= peerKeyBytes {
		k.n = uint8(copy(k.b[:], s))
		return k
	}
	k.rest = s
	return k
}

// cacheKey is the (peer, xid) identity of one datagram call, shared by
// the in-flight set and the duplicate-reply cache (both in shard.go).
type cacheKey struct {
	peer peerKey
	xid  uint32
}
