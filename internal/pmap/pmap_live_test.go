package pmap

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"specrpc/internal/client"
	"specrpc/internal/server"
)

// newLiveClient starts a portmapper on a real loopback UDP socket and
// returns a client dialing it.
func newLiveClient(t *testing.T) (*Client, *Registry) {
	t.Helper()
	reg := NewRegistry()
	srv := server.New()
	RegisterService(srv, reg)
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.ServeUDP(pc) }()
	t.Cleanup(func() { _ = srv.Close() })

	cc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := ClientConfig()
	cfg.Timeout = 10 * time.Second
	uc := client.NewUDP(cc, pc.LocalAddr(), cfg)
	t.Cleanup(func() { _ = uc.Close() })
	return NewClient(uc), reg
}

// TestLiveUDPRoundTrip drives Set/GetPort/Dump/Unset through the wire
// plans against a real UDP server — the typed codec path end to end.
func TestLiveUDPRoundTrip(t *testing.T) {
	c, _ := newLiveClient(t)
	if err := c.Null(); err != nil {
		t.Fatalf("null: %v", err)
	}
	m := Mapping{Prog: 0x20000099, Vers: 1, Prot: IPProtoUDP, Port: 2049}
	ok, err := c.Set(m)
	if err != nil || !ok {
		t.Fatalf("set: ok=%v err=%v", ok, err)
	}
	ok, err = c.Set(m)
	if err != nil || ok {
		t.Fatalf("second set of same triple: ok=%v err=%v, want false", ok, err)
	}
	port, err := c.GetPort(m.Prog, m.Vers, m.Prot)
	if err != nil || port != 2049 {
		t.Fatalf("getport: %d err=%v, want 2049", port, err)
	}
	m2 := Mapping{Prog: 0x20000100, Vers: 2, Prot: IPProtoTCP, Port: 111}
	if ok, err := c.Set(m2); err != nil || !ok {
		t.Fatalf("set tcp: ok=%v err=%v", ok, err)
	}
	list, err := c.Dump()
	if err != nil {
		t.Fatalf("dump: %v", err)
	}
	if len(list) != 2 {
		t.Fatalf("dump returned %d mappings, want 2: %+v", len(list), list)
	}
	found := map[Mapping]bool{}
	for _, e := range list {
		found[e] = true
	}
	if !found[m] || !found[m2] {
		t.Fatalf("dump missing entries: %+v", list)
	}
	ok, err = c.Unset(m.Prog, m.Vers)
	if err != nil || !ok {
		t.Fatalf("unset: ok=%v err=%v", ok, err)
	}
	if port, err := c.GetPort(m.Prog, m.Vers, m.Prot); err != nil || port != 0 {
		t.Fatalf("getport after unset: %d err=%v, want 0", port, err)
	}
}

// TestLiveUnsetRace hammers Set/Unset/GetPort/Dump from many goroutines
// over the live transport; run under -race this checks the registry and
// the whole concurrent call path for data races, and afterwards the
// registry must be consistent: every surviving triple resolvable, every
// unset one gone.
func TestLiveUnsetRace(t *testing.T) {
	c, reg := newLiveClient(t)
	const progs = 8
	const rounds = 20
	var wg sync.WaitGroup
	errs := make(chan error, progs*3)
	for p := 0; p < progs; p++ {
		prog := uint32(0x20001000 + p)
		wg.Add(3)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				m := Mapping{Prog: prog, Vers: 1, Prot: IPProtoUDP, Port: 1000 + prog%100}
				if _, err := c.Set(m); err != nil {
					errs <- fmt.Errorf("set %d: %w", prog, err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := c.Unset(prog, 1); err != nil {
					errs <- fmt.Errorf("unset %d: %w", prog, err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := c.GetPort(prog, 1, IPProtoUDP); err != nil {
					errs <- fmt.Errorf("getport %d: %w", prog, err)
					return
				}
				if i%5 == 0 {
					if _, err := c.Dump(); err != nil {
						errs <- fmt.Errorf("dump: %w", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Consistency: whatever survived the race is fully resolvable.
	for _, m := range reg.Dump() {
		if got := reg.GetPort(m.Prog, m.Vers, m.Prot); got != m.Port {
			t.Errorf("dump says %+v but GetPort returns %d", m, got)
		}
	}
}
