package pmap

import (
	"sort"
	"testing"
	"time"

	"specrpc/internal/client"
	"specrpc/internal/netsim"
	"specrpc/internal/server"
)

func TestRegistrySetGetUnset(t *testing.T) {
	r := NewRegistry()
	m := Mapping{Prog: 300, Vers: 1, Prot: IPProtoUDP, Port: 2049}
	if !r.Set(m) {
		t.Fatal("first Set failed")
	}
	if r.Set(m) {
		t.Fatal("second Set of the same triple must fail")
	}
	if got := r.GetPort(300, 1, IPProtoUDP); got != 2049 {
		t.Fatalf("GetPort = %d", got)
	}
	if got := r.GetPort(300, 1, IPProtoTCP); got != 0 {
		t.Fatalf("GetPort wrong proto = %d, want 0", got)
	}
	if !r.Unset(300, 1) {
		t.Fatal("Unset failed")
	}
	if r.Unset(300, 1) {
		t.Fatal("second Unset must report nothing removed")
	}
	if got := r.GetPort(300, 1, IPProtoUDP); got != 0 {
		t.Fatalf("GetPort after unset = %d", got)
	}
}

func TestRegistryUnsetRemovesBothProtocols(t *testing.T) {
	r := NewRegistry()
	r.Set(Mapping{Prog: 7, Vers: 1, Prot: IPProtoUDP, Port: 111})
	r.Set(Mapping{Prog: 7, Vers: 1, Prot: IPProtoTCP, Port: 112})
	if !r.Unset(7, 1) {
		t.Fatal("Unset failed")
	}
	if r.GetPort(7, 1, IPProtoUDP) != 0 || r.GetPort(7, 1, IPProtoTCP) != 0 {
		t.Fatal("mappings survived unset")
	}
}

func TestRegistryDump(t *testing.T) {
	r := NewRegistry()
	r.Set(Mapping{Prog: 1, Vers: 1, Prot: IPProtoUDP, Port: 10})
	r.Set(Mapping{Prog: 2, Vers: 1, Prot: IPProtoTCP, Port: 20})
	got := r.Dump()
	if len(got) != 2 {
		t.Fatalf("dump has %d entries", len(got))
	}
	sort.Slice(got, func(i, j int) bool { return got[i].Prog < got[j].Prog })
	if got[0].Port != 10 || got[1].Port != 20 {
		t.Fatalf("dump = %+v", got)
	}
}

// newPmapOverSim wires a portmapper service and client over netsim.
func newPmapOverSim(t *testing.T) *Client {
	t.Helper()
	n := netsim.New()
	srv := server.New()
	reg := NewRegistry()
	RegisterService(srv, reg)
	ep := n.Attach("pmap")
	go func() { _ = srv.ServeUDP(ep) }()
	t.Cleanup(func() { _ = srv.Close() })

	cfg := ClientConfig()
	cfg.Timeout = 2 * time.Second
	cfg.FirstXID = 42
	c := client.NewUDP(n.Attach("c"), netsim.Addr("pmap"), cfg)
	t.Cleanup(func() { _ = c.Close() })
	return NewClient(c)
}

func TestProtocolNull(t *testing.T) {
	p := newPmapOverSim(t)
	if err := p.Null(); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolSetGetPortUnset(t *testing.T) {
	p := newPmapOverSim(t)
	ok, err := p.Set(Mapping{Prog: 200100, Vers: 3, Prot: IPProtoUDP, Port: 3049})
	if err != nil || !ok {
		t.Fatalf("Set: ok=%v err=%v", ok, err)
	}
	// Duplicate registration is refused over the wire too.
	ok, err = p.Set(Mapping{Prog: 200100, Vers: 3, Prot: IPProtoUDP, Port: 9999})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("duplicate Set succeeded")
	}
	port, err := p.GetPort(200100, 3, IPProtoUDP)
	if err != nil {
		t.Fatal(err)
	}
	if port != 3049 {
		t.Fatalf("GetPort = %d, want 3049", port)
	}
	// Unknown triple resolves to 0, the "not registered" convention.
	port, err = p.GetPort(999999, 1, IPProtoTCP)
	if err != nil {
		t.Fatal(err)
	}
	if port != 0 {
		t.Fatalf("GetPort unknown = %d, want 0", port)
	}
	ok, err = p.Unset(200100, 3)
	if err != nil || !ok {
		t.Fatalf("Unset: ok=%v err=%v", ok, err)
	}
}

func TestProtocolDump(t *testing.T) {
	p := newPmapOverSim(t)
	for i := uint32(1); i <= 3; i++ {
		if ok, err := p.Set(Mapping{Prog: 100 + i, Vers: 1, Prot: IPProtoUDP, Port: 5000 + i}); err != nil || !ok {
			t.Fatalf("Set %d: ok=%v err=%v", i, ok, err)
		}
	}
	list, err := p.Dump()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("dump has %d entries, want 3", len(list))
	}
	sort.Slice(list, func(i, j int) bool { return list[i].Prog < list[j].Prog })
	for i, m := range list {
		if m.Prog != uint32(101+i) || m.Port != uint32(5001+i) {
			t.Fatalf("entry %d = %+v", i, m)
		}
	}
}

func TestProtocolDumpEmpty(t *testing.T) {
	p := newPmapOverSim(t)
	list, err := p.Dump()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Fatalf("dump of empty registry = %+v", list)
	}
}
