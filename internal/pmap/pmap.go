// Package pmap implements the portmapper protocol (program 100000,
// version 2, RFC 1057 appendix A): the registry that lets RPC clients
// discover which port a (program, version, protocol) triple listens on.
// It provides both the server-side dispatch (registered onto an
// internal/server.Server) and client-side helpers (Set, Unset, GetPort,
// Dump).
package pmap

import (
	"sync"

	"specrpc/internal/client"
	"specrpc/internal/server"
	"specrpc/internal/wire"
	"specrpc/internal/xdr"
)

// Portmapper protocol identity.
const (
	Prog = uint32(100000)
	Vers = uint32(2)
)

// Portmapper procedures.
const (
	ProcNull    = uint32(0)
	ProcSet     = uint32(1)
	ProcUnset   = uint32(2)
	ProcGetPort = uint32(3)
	ProcDump    = uint32(4)
)

// Transport protocol numbers used in mappings.
const (
	IPProtoTCP = uint32(6)
	IPProtoUDP = uint32(17)
)

// Mapping is one registry entry (struct mapping).
type Mapping struct {
	Prog uint32
	Vers uint32
	Prot uint32
	Port uint32
}

// Compiled wire plans for the protocol bodies: the four mapping fields
// fuse into a single 4-unit run, and the scalar replies compile to one
// instruction each.
var (
	mappingType = wire.StructT("mapping",
		wire.F("prog", wire.Uint32T()),
		wire.F("vers", wire.Uint32T()),
		wire.F("prot", wire.Uint32T()),
		wire.F("port", wire.Uint32T()),
	)
	mappingPlan = wire.MustPlan[Mapping](mappingType, wire.Specialized)
	boolPlan    = wire.MustPlan[bool](wire.BoolT(), wire.Specialized)
	portPlan    = wire.MustPlan[uint32](wire.Uint32T(), wire.Specialized)
)

// Marshal encodes or decodes the mapping through its compiled wire plan.
func (m *Mapping) Marshal(x *xdr.XDR) error { return mappingPlan.Marshal(x, m) }

// Registry is the in-memory mapping table.
type Registry struct {
	mu sync.RWMutex       // guards m
	m  map[Mapping]uint32 // key has Port zeroed; value is the port
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[Mapping]uint32)}
}

func key(prog, vers, prot uint32) Mapping {
	return Mapping{Prog: prog, Vers: vers, Prot: prot}
}

// Set records a mapping; it fails (returns false) if the triple is
// already bound, matching PMAPPROC_SET semantics.
func (r *Registry) Set(m Mapping) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(m.Prog, m.Vers, m.Prot)
	if _, exists := r.m[k]; exists {
		return false
	}
	r.m[k] = m.Port
	return true
}

// Unset removes all protocols bound for (prog, vers), per PMAPPROC_UNSET.
func (r *Registry) Unset(prog, vers uint32) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	removed := false
	for _, prot := range []uint32{IPProtoTCP, IPProtoUDP} {
		k := key(prog, vers, prot)
		if _, ok := r.m[k]; ok {
			delete(r.m, k)
			removed = true
		}
	}
	return removed
}

// GetPort looks up the port for a triple; 0 means unregistered.
func (r *Registry) GetPort(prog, vers, prot uint32) uint32 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[key(prog, vers, prot)]
}

// Dump snapshots all mappings.
func (r *Registry) Dump() []Mapping {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Mapping, 0, len(r.m))
	for k, port := range r.m {
		k.Port = port
		out = append(out, k)
	}
	return out
}

// RegisterService installs the portmapper procedures on srv, backed by
// reg. The mapping-shaped procedures route through the compiled wire
// plans via the typed registration path; Dump keeps a closure because
// the pmaplist optional-data chain lies outside the wire subset.
func RegisterService(srv *server.Server, reg *Registry) {
	srv.Register(Prog, Vers, ProcNull, func(dec *xdr.XDR) (server.Marshal, error) {
		return func(*xdr.XDR) error { return nil }, nil
	})
	server.RegisterTyped(srv, Prog, Vers, ProcSet, mappingPlan, boolPlan,
		func(m *Mapping) (*bool, error) {
			ok := reg.Set(*m)
			return &ok, nil
		})
	server.RegisterTyped(srv, Prog, Vers, ProcUnset, mappingPlan, boolPlan,
		func(m *Mapping) (*bool, error) {
			ok := reg.Unset(m.Prog, m.Vers)
			return &ok, nil
		})
	server.RegisterTyped(srv, Prog, Vers, ProcGetPort, mappingPlan, portPlan,
		func(m *Mapping) (*uint32, error) {
			port := reg.GetPort(m.Prog, m.Vers, m.Prot)
			return &port, nil
		})
	srv.Register(Prog, Vers, ProcDump, func(dec *xdr.XDR) (server.Marshal, error) {
		list := reg.Dump()
		return func(enc *xdr.XDR) error { return marshalList(enc, &list) }, nil
	})
}

// marshalList (de)serializes the linked pmaplist as XDR optional-data
// chain: each entry is prefixed by a 1 flag, the list ends with 0.
func marshalList(x *xdr.XDR, list *[]Mapping) error {
	switch x.Op {
	case xdr.Encode:
		for i := range *list {
			follows := true
			if err := x.Bool(&follows); err != nil {
				return err
			}
			if err := (*list)[i].Marshal(x); err != nil {
				return err
			}
		}
		follows := false
		return x.Bool(&follows)
	case xdr.Decode:
		*list = nil
		for {
			var follows bool
			if err := x.Bool(&follows); err != nil {
				return err
			}
			if !follows {
				return nil
			}
			var m Mapping
			if err := m.Marshal(x); err != nil {
				return err
			}
			*list = append(*list, m)
		}
	case xdr.Free:
		*list = nil
		return nil
	default:
		return xdr.ErrBadOp
	}
}

// Client wraps a generic RPC caller with typed portmapper operations.
type Client struct {
	c client.Caller
}

// NewClient returns a portmapper client over c, which must be configured
// for Prog/Vers (see ClientConfig).
func NewClient(c client.Caller) *Client { return &Client{c: c} }

// ClientConfig returns the client.Config identifying the portmapper.
func ClientConfig() client.Config { return client.Config{Prog: Prog, Vers: Vers} }

// Null pings the portmapper.
func (p *Client) Null() error {
	return p.c.Call(ProcNull, client.Void, client.Void)
}

// Set registers a mapping, reporting whether it was newly bound.
func (p *Client) Set(m Mapping) (bool, error) {
	var ok bool
	err := client.CallTyped(p.c, ProcSet, mappingPlan, &m, boolPlan, &ok)
	return ok, err
}

// Unset removes the mappings for (prog, vers).
func (p *Client) Unset(prog, vers uint32) (bool, error) {
	m := Mapping{Prog: prog, Vers: vers}
	var ok bool
	err := client.CallTyped(p.c, ProcUnset, mappingPlan, &m, boolPlan, &ok)
	return ok, err
}

// GetPort resolves the port for a triple; 0 means unregistered.
func (p *Client) GetPort(prog, vers, prot uint32) (uint32, error) {
	m := Mapping{Prog: prog, Vers: vers, Prot: prot}
	var port uint32
	err := client.CallTyped(p.c, ProcGetPort, mappingPlan, &m, portPlan, &port)
	return port, err
}

// Dump fetches the whole mapping table.
func (p *Client) Dump() ([]Mapping, error) {
	var list []Mapping
	err := p.c.Call(ProcDump, client.Void,
		func(x *xdr.XDR) error { return marshalList(x, &list) })
	return list, err
}
