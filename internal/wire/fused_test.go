package wire

import (
	"bytes"
	"reflect"
	"testing"

	"specrpc/internal/rpcmsg"
	"specrpc/internal/xdr"
)

// fusedModes are the configurations the whole-call codecs compile for;
// Generic has no flat program and is rejected by construction.
var fusedModes = []Mode{Specialized, Chunked}

func testCallTemplate(t *testing.T) *rpcmsg.CallTemplate {
	t.Helper()
	tmpl, err := rpcmsg.NewCallTemplate(0x20000532, 1, rpcmsg.None(), rpcmsg.None())
	if err != nil {
		t.Fatal(err)
	}
	return tmpl
}

// templatePlusPlan is the reference two-pass encoding the fused codec
// replaces: template copy, then the plan appending behind it.
func templatePlusPlan(t *testing.T, tmpl *rpcmsg.CallTemplate, p *Plan[everything], xid, proc uint32, v *everything) []byte {
	t.Helper()
	bs := xdr.NewBufEncode(nil)
	bs.SetBuffer(tmpl.AppendCall(nil, xid, proc))
	if err := p.Encode(xdr.NewEncoder(bs), v); err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), bs.Buffer()...)
}

func TestCallPlanMatchesTemplatePlusPlan(t *testing.T) {
	tmpl := testCallTemplate(t)
	v := sampleEverything()
	for _, m := range fusedModes {
		p := MustPlan[everything](everythingType(), m)
		cp, err := NewCallPlan(tmpl, 7, p)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		want := templatePlusPlan(t, tmpl, p, 99, 7, &v)
		bs := xdr.NewBufEncode(nil)
		if err := cp.AppendCall(bs, 99, &v); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !bytes.Equal(bs.Buffer(), want) {
			t.Errorf("%v: fused call differs from template+plan\n got %x\nwant %x", m, bs.Buffer(), want)
		}
	}
}

func TestCallPlanVoidArgs(t *testing.T) {
	tmpl := testCallTemplate(t)
	cc, err := NewCallCodec(tmpl, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	bs := xdr.NewBufEncode(nil)
	if err := cc.Append(bs, 42, nil); err != nil {
		t.Fatal(err)
	}
	if want := tmpl.AppendCall(nil, 42, 3); !bytes.Equal(bs.Buffer(), want) {
		t.Errorf("void call differs from template\n got %x\nwant %x", bs.Buffer(), want)
	}
}

func TestFusedRejectsGeneric(t *testing.T) {
	tmpl := testCallTemplate(t)
	p := MustPlan[everything](everythingType(), Generic)
	if _, err := NewCallPlan(tmpl, 1, p); err == nil {
		t.Error("NewCallPlan accepted a generic plan")
	}
	if _, err := NewReplyPlan(rpcmsg.MustReplyTemplate(rpcmsg.None()), p); err == nil {
		t.Error("NewReplyPlan accepted a generic plan")
	}
}

func TestReplyPlanMatchesTemplatePlusPlan(t *testing.T) {
	rtmpl := rpcmsg.MustReplyTemplate(rpcmsg.None())
	v := sampleEverything()
	for _, m := range fusedModes {
		p := MustPlan[everything](everythingType(), m)
		rp, err := NewReplyPlan(rtmpl, p)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		ref := xdr.NewBufEncode(nil)
		ref.SetBuffer(rtmpl.AppendReply(nil, 5))
		if err := p.Encode(xdr.NewEncoder(ref), &v); err != nil {
			t.Fatal(err)
		}
		bs := xdr.NewBufEncode(nil)
		if err := rp.AppendReply(bs, 5, &v); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !bytes.Equal(bs.Buffer(), ref.Buffer()) {
			t.Errorf("%v: fused reply differs from template+plan\n got %x\nwant %x", m, bs.Buffer(), ref.Buffer())
		}

		// The decode side recovers the value straight from the raw reply.
		var got everything
		handled, err := rp.DecodeReply(bs.Buffer(), &got)
		if !handled || err != nil {
			t.Fatalf("%v: DecodeReply handled=%v err=%v", m, handled, err)
		}
		if !reflect.DeepEqual(got, v) {
			t.Errorf("%v: decode mismatch\n got %+v\nwant %+v", m, got, v)
		}
	}
}

func TestReplyPlanHeaderOnly(t *testing.T) {
	rtmpl := rpcmsg.MustReplyTemplate(rpcmsg.None())
	rc, err := NewReplyCodec(rtmpl, nil)
	if err != nil {
		t.Fatal(err)
	}
	bs := xdr.NewBufEncode(nil)
	if err := rc.AppendHeader(bs, 11); err != nil {
		t.Fatal(err)
	}
	if want := rtmpl.AppendReply(nil, 11); !bytes.Equal(bs.Buffer(), want) {
		t.Errorf("header-only reply differs\n got %x\nwant %x", bs.Buffer(), want)
	}
}

func TestReplyPlanRejectsNonSuccess(t *testing.T) {
	p := MustPlan[everything](everythingType(), Specialized)
	rp, err := NewReplyPlan(nil, p) // decode-only
	if err != nil {
		t.Fatal(err)
	}
	// An accepted-but-failed reply must not be decoded: handled=false
	// sends the caller to the generic walk for the failure detail.
	bs := xdr.NewBufEncode(nil)
	rh := rpcmsg.ErrorReply(9, rpcmsg.GarbageArgs)
	if err := rh.Marshal(xdr.NewEncoder(bs)); err != nil {
		t.Fatal(err)
	}
	var got everything
	if handled, err := rp.DecodeReply(bs.Buffer(), &got); handled || err != nil {
		t.Fatalf("error reply: handled=%v err=%v", handled, err)
	}
	if handled, err := rp.DecodeReply([]byte{1, 2}, &got); handled || err != nil {
		t.Fatalf("short reply: handled=%v err=%v", handled, err)
	}
	// Appending through a decode-only codec is a programming error.
	if err := rp.rc.AppendHeader(xdr.NewBufEncode(nil), 1); err == nil {
		t.Error("decode-only codec accepted AppendHeader")
	}
}

// TestCallPlanFixedFusion verifies the single-reservation property: a
// fully fixed-size argument folds into the header's bounds check with
// nothing left for the instruction walker.
func TestCallPlanFixedFusion(t *testing.T) {
	type pair struct {
		A int32
		B int32
	}
	pt := StructT("pair", F("a", Int32T()), F("b", Int32T()))
	p := MustPlan[pair](pt, Specialized)
	cc, err := NewCallCodec(testCallTemplate(t), 1, p.Codec())
	if err != nil {
		t.Fatal(err)
	}
	if len(cc.body.tail) != 0 || len(cc.body.fixed) != 1 || cc.body.fixedWire != 8 {
		t.Errorf("pair did not fuse into the header reservation: %+v", cc.body)
	}
	// Chunked keeps the instruction walker (bounded runs are the point).
	pc := MustPlan[pair](pt, Chunked)
	ccc, err := NewCallCodec(testCallTemplate(t), 1, pc.Codec())
	if err != nil {
		t.Fatal(err)
	}
	if len(ccc.body.fixed) != 0 || len(ccc.body.tail) == 0 {
		t.Errorf("chunked body unexpectedly folded: %+v", ccc.body)
	}
}

// TestFusedEncodeAllocFree pins the whole fused path at zero
// allocations per operation once buffers are warm: one call encode, one
// reply encode, one reply decode.
func TestFusedEncodeAllocFree(t *testing.T) {
	tmpl := testCallTemplate(t)
	rtmpl := rpcmsg.MustReplyTemplate(rpcmsg.None())
	v := sampleEverything()
	p := MustPlan[everything](everythingType(), Specialized)
	cp, err := NewCallPlan(tmpl, 7, p)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := NewReplyPlan(rtmpl, p)
	if err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, 0, 4096)
	bs := xdr.NewBufEncode(buf)
	if n := testing.AllocsPerRun(200, func() {
		bs.SetBuffer(buf[:0])
		if err := cp.AppendCall(bs, 3, &v); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("fused call encode: %v allocs/op, want 0", n)
	}

	if n := testing.AllocsPerRun(200, func() {
		bs.SetBuffer(buf[:0])
		if err := rp.AppendReply(bs, 3, &v); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("fused reply encode: %v allocs/op, want 0", n)
	}

	bs.SetBuffer(buf[:0])
	if err := rp.AppendReply(bs, 3, &v); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), bs.Buffer()...)
	// Decode into a value whose slices already have the decoded shape,
	// so backing arrays are reused: the decode-side steady state of an
	// echo workload. String fields are the one irreducible cost — Go
	// strings are immutable, so every decode mints them fresh; this
	// type carries four (Name plus three Words).
	got := sampleEverything()
	if n := testing.AllocsPerRun(200, func() {
		handled, err := rp.DecodeReply(raw, &got)
		if !handled || err != nil {
			t.Fatal(handled, err)
		}
	}); n > 4 {
		t.Errorf("fused reply decode: %v allocs/op, want the 4 string mints only", n)
	}

	// A pointer-free result type — the live benchmark's int-array echo —
	// decodes with no allocations at all.
	ints := []int32{1, 2, 3, 4, 5, 6, 7, 8}
	ip := MustPlan[[]int32](VarArrayT(0, Int32T()), Specialized)
	irp, err := NewReplyPlan(rtmpl, ip)
	if err != nil {
		t.Fatal(err)
	}
	bs.SetBuffer(buf[:0])
	if err := irp.AppendReply(bs, 4, &ints); err != nil {
		t.Fatal(err)
	}
	iraw := append([]byte(nil), bs.Buffer()...)
	igot := make([]int32, len(ints))
	if n := testing.AllocsPerRun(200, func() {
		handled, err := irp.DecodeReply(iraw, &igot)
		if !handled || err != nil {
			t.Fatal(handled, err)
		}
	}); n != 0 {
		t.Errorf("fused int-array decode: %v allocs/op, want 0", n)
	}
}
