// Package wire is the codec layer between type descriptions and the live
// transport: a wire.Type — the XDR subset rpcgen parses (ints, fixed and
// counted arrays, strings, opaque data, structs) — compiles into a
// marshal plan that encodes and decodes real Go values against the
// internal/xdr streams.
//
// The package transplants the paper's §5 comparison (Muller et al.,
// ICDCS'98) onto the production hot path. One description compiles into
// three interchangeable codecs:
//
//   - Generic: an interpretive tree-walker. Every leaf dispatches on the
//     handle mode and funnels through the Stream interface one 4-byte
//     unit at a time, with a bounds check per unit — the micro-layered
//     cost profile of the original Sun RPC stubs.
//   - Specialized: a flat plan. Field offsets, loop strides, and run
//     lengths are resolved at compile time into a linear instruction
//     array; adjacent fixed-size fields fuse into single runs, each run
//     pays one bounds check, and fixed opaque data becomes one memcpy.
//     This is the paper's fully specialized stub rendered as data.
//   - Chunked: the specialized plan with bounded runs (paper Table 4):
//     long runs execute through an outer driver loop in ChunkUnits-unit
//     chunks, bounding the working footprint of any single run.
//
// All three produce byte-identical wire data, so they interoperate
// freely: a Generic client can call a Specialized server and vice versa.
//
// In the five-layer specialization stack (see DESIGN.md) this is layer
// 3, the stub layer: it compiles type descriptions down onto the
// internal/xdr streams and the internal/rpcmsg header templates, and
// its fused whole-call plans are what the internal/client and
// internal/server fast paths execute.
package wire

import "fmt"

// Kind enumerates the wire-level shapes a Type can take.
type Kind uint8

// Type kinds. The scalar kinds through Float64 are the XDR basic types;
// the remaining kinds are the composite shapes of RFC 4506.
const (
	Int32 Kind = iota + 1 // 32-bit signed (xdr_int/xdr_long/xdr_enum)
	Uint32
	Bool // 32-bit 0/1 on the wire, Go bool in memory
	Float32
	Hyper  // 64-bit signed, two 4-byte units most significant first
	Uhyper // 64-bit unsigned
	Float64
	String      // counted bytes + pad; Bound limits the count
	OpaqueFixed // Len raw bytes + pad, length not on the wire
	OpaqueVar   // counted raw bytes + pad; Bound limits the count
	FixedArray  // Len elements of Elem, length not on the wire
	VarArray    // 4-byte count + elements of Elem; Bound limits the count
	Struct      // Fields in order
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Int32:
		return "int32"
	case Uint32:
		return "uint32"
	case Bool:
		return "bool"
	case Float32:
		return "float32"
	case Hyper:
		return "hyper"
	case Uhyper:
		return "uhyper"
	case Float64:
		return "double"
	case String:
		return "string"
	case OpaqueFixed:
		return "opaque[n]"
	case OpaqueVar:
		return "opaque<>"
	case FixedArray:
		return "array[n]"
	case VarArray:
		return "array<>"
	case Struct:
		return "struct"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Type describes one wire shape. Descriptions are trees: arrays carry an
// element type, structs carry fields. A Type is immutable once built and
// safe to share between plans.
type Type struct {
	// Kind selects the shape; the remaining fields apply per kind.
	Kind Kind
	// Name labels structs in error messages (and documents intent).
	Name string
	// Len is the fixed length for OpaqueFixed and FixedArray.
	Len int
	// Bound limits the decoded count for String, OpaqueVar, and VarArray;
	// 0 means unbounded.
	Bound uint32
	// Elem is the element type for FixedArray and VarArray.
	Elem *Type
	// Fields are the struct members, in wire order.
	Fields []Field
}

// Field is one struct member.
type Field struct {
	// Name is the IDL field name; it is checked loosely (case and
	// underscores ignored) against the Go field name at compile time.
	Name string
	// Type is the member's wire shape.
	Type *Type
}

// Shared scalar singletons: scalars carry no per-use state, so every
// constructor below returns the same description.
var (
	int32T   = &Type{Kind: Int32}
	uint32T  = &Type{Kind: Uint32}
	boolT    = &Type{Kind: Bool}
	float32T = &Type{Kind: Float32}
	hyperT   = &Type{Kind: Hyper}
	uhyperT  = &Type{Kind: Uhyper}
	float64T = &Type{Kind: Float64}
)

// Int32T describes a 32-bit signed integer (also XDR enums: they are
// int32 on the wire).
func Int32T() *Type { return int32T }

// Uint32T describes a 32-bit unsigned integer.
func Uint32T() *Type { return uint32T }

// BoolT describes an XDR bool (a 4-byte 0/1 unit).
func BoolT() *Type { return boolT }

// Float32T describes an IEEE-754 single.
func Float32T() *Type { return float32T }

// HyperT describes a 64-bit signed integer.
func HyperT() *Type { return hyperT }

// UhyperT describes a 64-bit unsigned integer.
func UhyperT() *Type { return uhyperT }

// Float64T describes an IEEE-754 double.
func Float64T() *Type { return float64T }

// StringT describes a counted string; bound 0 means unbounded.
func StringT(bound uint32) *Type { return &Type{Kind: String, Bound: bound} }

// OpaqueFixedT describes opaque[n]: exactly n raw bytes plus padding.
func OpaqueFixedT(n int) *Type { return &Type{Kind: OpaqueFixed, Len: n} }

// OpaqueVarT describes opaque<bound>: counted raw bytes plus padding;
// bound 0 means unbounded.
func OpaqueVarT(bound uint32) *Type { return &Type{Kind: OpaqueVar, Bound: bound} }

// FixedArrayT describes elem[n]: n elements with no count on the wire.
func FixedArrayT(n int, elem *Type) *Type {
	return &Type{Kind: FixedArray, Len: n, Elem: elem}
}

// VarArrayT describes elem<bound>: a 4-byte count followed by the
// elements; bound 0 means unbounded.
func VarArrayT(bound uint32, elem *Type) *Type {
	return &Type{Kind: VarArray, Bound: bound, Elem: elem}
}

// StructT describes a struct with the given fields in wire order.
func StructT(name string, fields ...Field) *Type {
	return &Type{Kind: Struct, Name: name, Fields: fields}
}

// F builds one struct field.
func F(name string, t *Type) Field { return Field{Name: name, Type: t} }

// effBound resolves a Type bound to the limit the codecs enforce.
func effBound(b uint32) uint32 {
	if b == 0 {
		return ^uint32(0) // NoSizeLimit
	}
	return b
}
