package wire

import (
	"fmt"
	"reflect"
	"unsafe"

	"specrpc/internal/xdr"
)

// Plan is the typed façade over a compiled Codec: a marshal plan for Go
// values of type T. Plans are immutable and safe for concurrent use; the
// intended pattern is one package-level plan per message type, compiled
// once (generated stubs do exactly that).
type Plan[T any] struct {
	c *Codec
}

// NewPlan compiles t against T in the given mode.
func NewPlan[T any](t *Type, mode Mode) (*Plan[T], error) {
	rt := reflect.TypeOf((*T)(nil)).Elem()
	c, err := Compile(t, rt, mode)
	if err != nil {
		return nil, err
	}
	return &Plan[T]{c: c}, nil
}

// MustPlan is NewPlan panicking on error; for package-level plan
// variables in generated code, where a mismatch is a build-time bug.
func MustPlan[T any](t *Type, mode Mode) *Plan[T] {
	p, err := NewPlan[T](t, mode)
	if err != nil {
		panic(fmt.Sprintf("wire: %v", err))
	}
	return p
}

// Marshal encodes, decodes, or frees *v according to the handle mode. It
// has the shape of a generated xdr_* routine, so a plan drops in
// anywhere a marshal closure was written by hand.
func (p *Plan[T]) Marshal(x *xdr.XDR, v *T) error {
	return p.c.Marshal(x, unsafe.Pointer(v))
}

// Encode serializes *v into x's stream.
func (p *Plan[T]) Encode(x *xdr.XDR, v *T) error {
	return p.c.Encode(x, unsafe.Pointer(v))
}

// Decode deserializes from x's stream into *v.
func (p *Plan[T]) Decode(x *xdr.XDR, v *T) error {
	return p.c.Decode(x, unsafe.Pointer(v))
}

// Mode reports the configuration the plan was compiled for.
func (p *Plan[T]) Mode() Mode { return p.c.Mode() }

// Codec exposes the untyped compiled plan.
func (p *Plan[T]) Codec() *Codec { return p.c }
