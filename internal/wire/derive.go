package wire

// Tempo-derived plans: ROADMAP item 3, front (a). Compile hand-builds
// the flat instruction program from rules; DeriveCodec obtains the same
// program from the paper's actual mechanism instead — binding-time
// analysis and specialization of generic marshaling code. The pipeline
// (internal/tempo/planext) emits a generic rpcgen-style mini-C stub for
// the wire shape, specializes it against the library with the paper's
// division (mode, ops table, and buffer geometry static; buffer pointer
// and user data dynamic), and extracts the residual store/load schedule.
// This file lowers that schedule onto the concrete Go struct layout:
// every 4-byte access becomes an instruction, adjacent accesses fuse
// through the same appendRun used by the hand compiler, and the probe
// unrolling of counted arrays re-generalizes to the counted slice ops.
//
// Derivation covers the word-shaped subset the mini-C library marshals
// (ints, uints, bools, fixed and counted arrays of them, nested
// structs). Everything else — strings, opaque bytes, 8-byte scalars,
// floats, arrays of composites — is out of the probe subset and returns
// planext.UnsupportedError, so callers fall back to Compile explicitly;
// derivation never silently mis-lowers. Within the subset the derived
// program is structurally identical to Compile's output and the codecs
// are byte-identical on the wire (see derive_test.go and
// FuzzDerivedPlan).

import (
	"fmt"
	"reflect"
	"strings"

	"specrpc/internal/tempo/planext"
)

// DeriveShape maps t into the probe subset planext can specialize, or
// reports why it cannot (*planext.UnsupportedError).
func DeriveShape(t *Type) (*planext.Shape, error) {
	if t == nil {
		return nil, &planext.UnsupportedError{Reason: "nil wire type"}
	}
	switch t.Kind {
	case Int32:
		return &planext.Shape{Kind: planext.Word}, nil
	case Uint32:
		return &planext.Shape{Kind: planext.UWord}, nil
	case Bool:
		return &planext.Shape{Kind: planext.Flag}, nil
	case FixedArray:
		elem, err := deriveElem(t.Elem)
		if err != nil {
			return nil, err
		}
		return &planext.Shape{Kind: planext.Fixed, Len: t.Len, Elem: elem}, nil
	case VarArray:
		elem, err := deriveElem(t.Elem)
		if err != nil {
			return nil, err
		}
		return &planext.Shape{Kind: planext.Counted, Bound: t.Bound, Elem: elem}, nil
	case Struct:
		sh := &planext.Shape{Kind: planext.Record, Fields: make([]*planext.Shape, len(t.Fields))}
		for i, f := range t.Fields {
			fs, err := DeriveShape(f.Type)
			if err != nil {
				return nil, fmt.Errorf("struct %s field %s: %w", t.Name, f.Name, err)
			}
			sh.Fields[i] = fs
		}
		return sh, nil
	default:
		// String, opaque, and 8-byte/float scalars are outside the mini-C
		// library's word-shaped marshaling subset.
		return nil, &planext.UnsupportedError{
			Reason: fmt.Sprintf("wire kind %s is outside the mini-C probe subset", t.Kind),
		}
	}
}

func deriveElem(t *Type) (*planext.Shape, error) {
	if t == nil {
		return nil, &planext.UnsupportedError{Reason: "array with nil element type"}
	}
	switch t.Kind {
	case Int32:
		return &planext.Shape{Kind: planext.Word}, nil
	case Uint32:
		return &planext.Shape{Kind: planext.UWord}, nil
	case Bool:
		return &planext.Shape{Kind: planext.Flag}, nil
	default:
		return nil, &planext.UnsupportedError{
			Reason: fmt.Sprintf("array of %s elements is outside the mini-C probe subset", t.Kind),
		}
	}
}

// DeriveCodec builds the codec for (t, rt) from the specializer instead
// of the hand compiler: probe stubs are specialized in both directions,
// the residual schedules are cross-checked and lowered onto rt's layout.
// The mode must be Specialized or Chunked (a derived plan is by
// construction not the generic walker).
func DeriveCodec(t *Type, rt reflect.Type, mode Mode) (*Codec, error) {
	if mode != Specialized && mode != Chunked {
		return nil, fmt.Errorf("wire: derive: mode %s is not a plan mode", mode)
	}
	if t == nil {
		return nil, fmt.Errorf("wire: nil type description")
	}
	if rt == nil {
		return nil, fmt.Errorf("wire: nil Go type")
	}
	// bind validates the (wire, Go) pairing and provides the generic
	// fallback tree, exactly as Compile does.
	root, err := bind(t, rt, 0)
	if err != nil {
		return nil, err
	}
	shape, err := DeriveShape(t)
	if err != nil {
		return nil, err
	}
	enc, err := planext.Derive(shape, planext.Encode)
	if err != nil {
		return nil, err
	}
	dec, err := planext.Derive(shape, planext.Decode)
	if err != nil {
		return nil, err
	}
	// The two directions must residualize to the same access sequence;
	// a divergence would mean the library's encode and decode paths
	// disagree about the wire layout.
	if err := schedulesAgree(enc.Schedule, dec.Schedule); err != nil {
		return nil, err
	}
	prog, err := lowerSchedule(enc.Schedule, t, rt)
	if err != nil {
		return nil, err
	}
	return &Codec{mode: mode, t: t, rt: rt, root: root, prog: prog}, nil
}

// DerivePlan is the typed façade over DeriveCodec, mirroring NewPlan.
func DerivePlan[T any](t *Type, mode Mode) (*Plan[T], error) {
	rt := reflect.TypeOf((*T)(nil)).Elem()
	c, err := DeriveCodec(t, rt, mode)
	if err != nil {
		return nil, err
	}
	return &Plan[T]{c: c}, nil
}

// schedulesAgree checks that encode and decode residualized to the same
// object-access sequence.
func schedulesAgree(enc, dec *planext.Schedule) error {
	if len(enc.Accesses) != len(dec.Accesses) || enc.WireBytes != dec.WireBytes {
		return fmt.Errorf("wire: derive: encode residual (%d accesses, %d bytes) disagrees with decode (%d accesses, %d bytes)",
			len(enc.Accesses), enc.WireBytes, len(dec.Accesses), dec.WireBytes)
	}
	for i := range enc.Accesses {
		if enc.Accesses[i].String() != dec.Accesses[i].String() {
			return fmt.Errorf("wire: derive: access %d: encode residual %s disagrees with decode %s",
				i, enc.Accesses[i], dec.Accesses[i])
		}
	}
	return nil
}

// lowerSchedule maps the residual access sequence onto rt's memory
// layout, producing the flat instruction program. Scalar and
// fixed-array accesses lower to runs fused by appendRun — the same
// fusion the hand compiler applies — and each counted field's probe
// group (count word + unrolled probe elements) re-generalizes to one
// counted slice instruction.
func lowerSchedule(sched *planext.Schedule, t *Type, rt reflect.Type) ([]instr, error) {
	// The probe stream is strictly linear: access i moves bytes [4i,4i+4).
	for i, a := range sched.Accesses {
		if a.WireOff != 4*i {
			return nil, fmt.Errorf("wire: derive: access %d at wire offset %d, want %d (non-linear residual)", i, a.WireOff, 4*i)
		}
	}
	var prog []instr
	i := 0
	for i < len(sched.Accesses) {
		n, err := lowerAccess(&prog, sched, i, t, rt)
		if err != nil {
			return nil, err
		}
		i += n
	}
	return prog, nil
}

// lowerAccess lowers the access at index i (plus, for a counted field,
// its probe elements) and reports how many accesses it consumed.
func lowerAccess(prog *[]instr, sched *planext.Schedule, i int, t *Type, rt reflect.Type) (int, error) {
	a := sched.Accesses[i]
	cur, crt := t, rt
	off := uintptr(0)
	for si, st := range a.Path {
		switch {
		case st.Count:
			if si != len(a.Path)-1 {
				return 0, fmt.Errorf("wire: derive: access %s: count step mid-path", a)
			}
			ft, frt, fOff := cur, crt, off
			if st.Field >= 0 {
				var err error
				ft, frt, fOff, err = fieldAt(cur, crt, st.Field, off)
				if err != nil {
					return 0, fmt.Errorf("wire: derive: access %s: %w", a, err)
				}
			}
			return lowerCounted(prog, sched, i, ft, frt, fOff)
		case st.Field >= 0:
			var err error
			cur, crt, off, err = fieldAt(cur, crt, st.Field, off)
			if err != nil {
				return 0, fmt.Errorf("wire: derive: access %s: %w", a, err)
			}
		case st.Index >= 0:
			if cur.Kind != FixedArray || crt.Kind() != reflect.Array {
				return 0, fmt.Errorf("wire: derive: access %s: index step into %s", a, cur.Kind)
			}
			if st.Index >= cur.Len {
				return 0, fmt.Errorf("wire: derive: access %s: index %d out of [0,%d)", a, st.Index, cur.Len)
			}
			off += uintptr(st.Index) * crt.Elem().Size()
			cur, crt = cur.Elem, crt.Elem()
		default:
			return 0, fmt.Errorf("wire: derive: access %s: malformed step", a)
		}
	}
	switch cur.Kind {
	case Int32, Uint32:
		appendRun(prog, opUnits, off, 1, 4)
	case Bool:
		appendRun(prog, opBools, off, 1, 1)
	default:
		return 0, fmt.Errorf("wire: derive: access %s resolves to non-scalar %s", a, cur.Kind)
	}
	return 1, nil
}

func fieldAt(t *Type, rt reflect.Type, idx int, off uintptr) (*Type, reflect.Type, uintptr, error) {
	if t.Kind != Struct || rt.Kind() != reflect.Struct {
		return nil, nil, 0, fmt.Errorf("field step into %s", t.Kind)
	}
	if idx >= len(t.Fields) || idx >= rt.NumField() {
		return nil, nil, 0, fmt.Errorf("field %d out of range", idx)
	}
	gf := rt.Field(idx)
	return t.Fields[idx].Type, gf.Type, off + gf.Offset, nil
}

// lowerCounted re-generalizes a counted field's probe group. The
// residual unrolled the field at its probe count; the count word access
// at index i must be followed by exactly the probe elements in order,
// and the whole group lowers to one counted slice instruction — the
// step from the paper's §6.2 guarded specialization back to a plan that
// handles any runtime length.
func lowerCounted(prog *[]instr, sched *planext.Schedule, i int, ft *Type, frt reflect.Type, off uintptr) (int, error) {
	if ft.Kind != VarArray || frt.Kind() != reflect.Slice {
		return 0, fmt.Errorf("wire: derive: count word of non-counted %s", ft.Kind)
	}
	k := planext.ProbeCount(ft.Bound)
	count := sched.Accesses[i]
	base := count.Path[:len(count.Path)-1]
	last := count.Path[len(count.Path)-1]
	for j := 0; j < k; j++ {
		if i+1+j >= len(sched.Accesses) {
			return 0, fmt.Errorf("wire: derive: probe group for %s truncated at %d of %d elements", count, j, k)
		}
		got := sched.Accesses[i+1+j]
		want := make([]planext.Step, 0, len(base)+2)
		want = append(want, base...)
		if last.Field >= 0 {
			want = append(want, planext.Step{Field: last.Field, Index: -1})
		}
		want = append(want, planext.Step{Field: -1, Index: j})
		if !stepsEqual(got.Path, want) {
			return 0, fmt.Errorf("wire: derive: probe group for %s: access %d is %s, want element %d", count, i+1+j, got, j)
		}
	}
	var o op
	switch ft.Elem.Kind {
	case Int32, Uint32:
		o = opSliceUnits
	case Bool:
		o = opSliceBools
	default:
		return 0, fmt.Errorf("wire: derive: counted %s elements", ft.Elem.Kind)
	}
	*prog = append(*prog, instr{
		op: o, off: off, bound: effBound(ft.Bound),
		stride: frt.Elem().Size(), unitsPer: 1, sliceT: frt,
	})
	return 1 + k, nil
}

func stepsEqual(a, b []planext.Step) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Plan disassembly

// ProgString renders the codec's flat instruction program, one
// instruction per line — the residual-code artifact used by the
// derivation equivalence tests and the binding-time evidence dumps.
// Generic codecs have no flat program and render as "(generic walker)".
func (c *Codec) ProgString() string {
	if len(c.prog) == 0 {
		return "(generic walker)\n"
	}
	var sb strings.Builder
	writeProg(&sb, c.prog, "")
	return sb.String()
}

func writeProg(sb *strings.Builder, prog []instr, indent string) {
	for _, in := range prog {
		sb.WriteString(indent)
		sb.WriteString(in.String())
		sb.WriteByte('\n')
		if len(in.sub) > 0 {
			writeProg(sb, in.sub, indent+"  ")
		}
	}
}

// String renders one instruction with its static data.
func (in instr) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-11s off=%d", in.op, in.off)
	switch in.op {
	case opUnits, opUnits8, opBools, opBytes:
		fmt.Fprintf(&sb, " n=%d", in.n)
	case opString, opOpaqueV:
		fmt.Fprintf(&sb, " bound=%#x", in.bound)
	case opSliceUnits, opSliceUnits8, opSliceBools:
		fmt.Fprintf(&sb, " bound=%#x stride=%d per=%d %s", in.bound, in.stride, in.unitsPer, in.sliceT)
	case opSliceSub:
		fmt.Fprintf(&sb, " bound=%#x stride=%d %s", in.bound, in.stride, in.sliceT)
	case opVecSub:
		fmt.Fprintf(&sb, " n=%d stride=%d", in.n, in.stride)
	}
	return sb.String()
}

// String names the instruction class.
func (o op) String() string {
	switch o {
	case opUnits:
		return "units"
	case opUnits8:
		return "units8"
	case opBools:
		return "bools"
	case opBytes:
		return "bytes"
	case opString:
		return "string"
	case opOpaqueV:
		return "opaque<>"
	case opSliceUnits:
		return "slice-units"
	case opSliceUnits8:
		return "slice-unit8"
	case opSliceBools:
		return "slice-bools"
	case opSliceSub:
		return "slice-sub"
	case opVecSub:
		return "vec-sub"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}
