package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"
	"unsafe"

	"specrpc/internal/xdr"
)

// Marshal encodes, decodes, or frees the value at p according to the
// handle mode, exactly like a generated xdr_* routine. p must point at a
// value of the codec's Go type.
func (c *Codec) Marshal(x *xdr.XDR, p unsafe.Pointer) error {
	switch x.Op {
	case xdr.Encode:
		return c.Encode(x, p)
	case xdr.Decode:
		return c.Decode(x, p)
	case xdr.Free:
		return walk(x, &c.root, p)
	default:
		return xdr.ErrBadOp
	}
}

// Encode serializes the value at p into x's stream.
func (c *Codec) Encode(x *xdr.XDR, p unsafe.Pointer) error {
	if c.mode != Generic {
		// The compiled plan bypasses the Stream interface when the stream
		// is one it can address directly — which is every stream the live
		// transport encodes into. Anything else falls back to the walker,
		// which is correct (if interpretive) against any stream.
		if bs, ok := x.Stream.(*xdr.BufStream); ok {
			return encodeProg(bs, c.prog, p, c.chunk())
		}
	}
	return walk(x, &c.root, p)
}

// Decode deserializes from x's stream into the value at p.
func (c *Codec) Decode(x *xdr.XDR, p unsafe.Pointer) error {
	if c.mode != Generic {
		if ms, ok := x.Stream.(*xdr.MemStream); ok {
			return decodeProg(ms, c.prog, p, c.chunk())
		}
	}
	return walk(x, &c.root, p)
}

// DecodeBody decodes one value straight out of body into the value at
// p, with no caller-supplied handle: the fused message paths hand the
// raw argument or result bytes here after locating them at fixed
// offsets. The stream state lives on the stack, so the hot decode is
// allocation-free; Generic-mode codecs fall back to the interpretive
// walker over the same bytes.
func (c *Codec) DecodeBody(body []byte, p unsafe.Pointer) error {
	if c.mode != Generic {
		// The stream stays on the stack: decodeProg never retains it, and
		// keeping the interface boxing confined to the generic fallback
		// below is what lets escape analysis prove that.
		var ms xdr.MemStream
		ms.SetBuffer(body)
		return decodeProg(&ms, c.prog, p, c.chunk())
	}
	return c.decodeBodyGeneric(body, p)
}

// decodeBodyGeneric is the interpretive fallback of DecodeBody; the
// walker needs a full XDR handle, whose Stream interface forces the
// stream to the heap — which is why it lives in its own frame.
func (c *Codec) decodeBodyGeneric(body []byte, p unsafe.Pointer) error {
	var ms xdr.MemStream
	ms.SetBuffer(body)
	x := xdr.XDR{Op: xdr.Decode, Stream: &ms}
	return walk(&x, &c.root, p)
}

// chunk reports the run bound in elements: 0 (unbounded) for the fully
// specialized plan, ChunkUnits for the bounded-unrolling configuration.
func (c *Codec) chunk() int {
	if c.mode == Chunked {
		return ChunkUnits
	}
	return 0
}

// ---------------------------------------------------------------------------
// Generic codec: the interpretive tree-walker.
//
// walk is deliberately structured like the original generic stubs: one
// recursive routine serving encode, decode, and free, dispatching on the
// handle mode at every leaf and moving one unit at a time through the
// Stream interface with its per-unit bounds check. This is the baseline
// the paper's measurements start from.

func walk(x *xdr.XDR, n *node, p unsafe.Pointer) error {
	q := unsafe.Add(p, n.off)
	switch n.t.Kind {
	case Int32:
		return x.Long((*int32)(q))
	case Uint32:
		return x.Uint32((*uint32)(q))
	case Bool:
		return x.Bool((*bool)(q))
	case Float32:
		return x.Float32((*float32)(q))
	case Hyper:
		return x.Hyper((*int64)(q))
	case Uhyper:
		return x.Uint64((*uint64)(q))
	case Float64:
		return x.Float64((*float64)(q))
	case String:
		return x.String((*string)(q), n.bound)
	case OpaqueFixed:
		if n.t.Len == 0 {
			return nil
		}
		return x.Opaque(unsafe.Slice((*byte)(q), n.t.Len))
	case OpaqueVar:
		return x.Bytes((*[]byte)(q), n.bound)
	case Struct:
		for i := range n.fields {
			if err := walk(x, &n.fields[i], p); err != nil {
				return err
			}
		}
		return nil
	case FixedArray:
		for i := 0; i < n.t.Len; i++ {
			if err := walk(x, n.elem, unsafe.Add(q, uintptr(i)*n.stride)); err != nil {
				return err
			}
		}
		return nil
	case VarArray:
		return walkVarArray(x, n, q)
	default:
		return fmt.Errorf("wire: cannot marshal kind %s", n.t.Kind)
	}
}

func walkVarArray(x *xdr.XDR, n *node, q unsafe.Pointer) error {
	h := (*sliceHeader)(q)
	switch x.Op {
	case xdr.Encode:
		cnt := uint32(h.len)
		if cnt > n.bound {
			return xdr.ErrTooBig
		}
		if err := x.Uint32(&cnt); err != nil {
			return err
		}
		for i := 0; i < h.len; i++ {
			if err := walk(x, n.elem, unsafe.Add(h.data, uintptr(i)*n.stride)); err != nil {
				return err
			}
		}
		return nil
	case xdr.Decode:
		var cnt uint32
		if err := x.Uint32(&cnt); err != nil {
			return err
		}
		if cnt > n.bound {
			return xdr.ErrTooBig
		}
		data := ensureSlice(q, n.sliceT, int(cnt), n.stride)
		for i := 0; i < int(cnt); i++ {
			if err := walk(x, n.elem, unsafe.Add(data, uintptr(i)*n.stride)); err != nil {
				return err
			}
		}
		return nil
	case xdr.Free:
		for i := 0; i < h.len; i++ {
			if err := walk(x, n.elem, unsafe.Add(h.data, uintptr(i)*n.stride)); err != nil {
				return err
			}
		}
		h.data, h.len, h.cap = nil, 0, 0
		return nil
	default:
		return xdr.ErrBadOp
	}
}

// ensureSlice makes the slice at dst hold exactly cnt elements, reusing
// the existing backing array when the length already matches (as
// xdr.Array does), and returns the data pointer. Allocation goes through
// reflect so element types carrying pointers (strings, nested slices)
// stay visible to the garbage collector.
func ensureSlice(dst unsafe.Pointer, sliceT reflect.Type, cnt int, stride uintptr) unsafe.Pointer {
	h := (*sliceHeader)(dst)
	if h.len == cnt {
		return h.data
	}
	if cnt == 0 {
		h.data, h.len, h.cap = nil, 0, 0
		return nil
	}
	ms := reflect.MakeSlice(sliceT, cnt, cnt)
	reflect.NewAt(sliceT, dst).Elem().Set(ms)
	return h.data
}

// ---------------------------------------------------------------------------
// Specialized / chunked codec: the flat plan executors.
//
// Each instruction is one run: one growth or bounds check, then direct
// big-endian stores or loads over the window. chunk bounds the elements
// per inner run (0 = unbounded); the chunked configuration drives long
// runs through an outer loop in ChunkUnits-element chunks, the paper's
// Table 4 transform.

// errBadInstruction reports a corrupted plan. A plan is built once by
// Compile/DeriveCodec, so this is an internal invariant, not an input
// error — and the hot executors must not pay fmt.Errorf's allocation to
// report it.
var errBadInstruction = errors.New("wire: bad instruction in plan")

//specrpc:hotpath
func encodeProg(bs *xdr.BufStream, prog []instr, p unsafe.Pointer, chunk int) error {
	for i := range prog {
		in := &prog[i]
		q := unsafe.Add(p, in.off)
		switch in.op {
		case opUnits:
			encUnits(bs, q, in.n, chunk)
		case opUnits8:
			encUnits8(bs, q, in.n, chunk)
		case opBools:
			encBools(bs, q, in.n, chunk)
		case opBytes:
			encBytes(bs, q, in.n)
		case opString:
			h := (*stringHeader)(q)
			if uint32(h.len) > in.bound {
				return xdr.ErrTooBig
			}
			encCounted(bs, h.data, h.len)
		case opOpaqueV:
			h := (*sliceHeader)(q)
			if uint32(h.len) > in.bound {
				return xdr.ErrTooBig
			}
			encCounted(bs, h.data, h.len)
		case opSliceUnits, opSliceUnits8, opSliceBools:
			h := (*sliceHeader)(q)
			if uint32(h.len) > in.bound {
				return xdr.ErrTooBig
			}
			binary.BigEndian.PutUint32(bs.Extend(4), uint32(h.len))
			switch in.op {
			case opSliceUnits:
				encUnits(bs, h.data, h.len*in.unitsPer, chunk)
			case opSliceUnits8:
				encUnits8(bs, h.data, h.len*in.unitsPer, chunk)
			default:
				encBools(bs, h.data, h.len*in.unitsPer, chunk)
			}
		case opSliceSub:
			h := (*sliceHeader)(q)
			if uint32(h.len) > in.bound {
				return xdr.ErrTooBig
			}
			binary.BigEndian.PutUint32(bs.Extend(4), uint32(h.len))
			for j := 0; j < h.len; j++ {
				if err := encodeProg(bs, in.sub, unsafe.Add(h.data, uintptr(j)*in.stride), chunk); err != nil {
					return err
				}
			}
		case opVecSub:
			for j := 0; j < in.n; j++ {
				if err := encodeProg(bs, in.sub, unsafe.Add(q, uintptr(j)*in.stride), chunk); err != nil {
					return err
				}
			}
		default:
			return errBadInstruction
		}
	}
	return nil
}

// encUnits writes n 4-byte big-endian units from src: the residual loop
// of the specialized stub — no dispatch, no per-unit check, just the
// byte-order store.
//
//specrpc:hotpath
func encUnits(bs *xdr.BufStream, src unsafe.Pointer, n, chunk int) {
	for done := 0; done < n; {
		k := runLen(n-done, chunk)
		w := bs.Extend(4 * k)
		for j := 0; j < k; j++ {
			binary.BigEndian.PutUint32(w[4*j:], *(*uint32)(unsafe.Add(src, uintptr(done+j)*4)))
		}
		done += k
	}
}

//specrpc:hotpath
func encUnits8(bs *xdr.BufStream, src unsafe.Pointer, n, chunk int) {
	for done := 0; done < n; {
		k := runLen(n-done, chunk)
		w := bs.Extend(8 * k)
		for j := 0; j < k; j++ {
			binary.BigEndian.PutUint64(w[8*j:], *(*uint64)(unsafe.Add(src, uintptr(done+j)*8)))
		}
		done += k
	}
}

//specrpc:hotpath
func encBools(bs *xdr.BufStream, src unsafe.Pointer, n, chunk int) {
	for done := 0; done < n; {
		k := runLen(n-done, chunk)
		w := bs.Extend(4 * k)
		for j := 0; j < k; j++ {
			var u uint32
			if *(*byte)(unsafe.Add(src, done+j)) != 0 {
				u = 1
			}
			binary.BigEndian.PutUint32(w[4*j:], u)
		}
		done += k
	}
}

// encBytes writes n fixed opaque bytes plus padding as one memcpy run.
//
//specrpc:hotpath
func encBytes(bs *xdr.BufStream, src unsafe.Pointer, n int) {
	if n == 0 {
		return
	}
	pad := xdr.Pad(n)
	w := bs.Extend(n + pad)
	copy(w, unsafe.Slice((*byte)(src), n))
	for j := n; j < n+pad; j++ {
		w[j] = 0
	}
}

// encCounted writes a 4-byte count, n raw bytes, and padding.
//
//specrpc:hotpath
func encCounted(bs *xdr.BufStream, src unsafe.Pointer, n int) {
	pad := xdr.Pad(n)
	w := bs.Extend(4 + n + pad)
	binary.BigEndian.PutUint32(w, uint32(n))
	if n > 0 {
		copy(w[4:], unsafe.Slice((*byte)(src), n))
	}
	for j := 4 + n; j < 4+n+pad; j++ {
		w[j] = 0
	}
}

// runLen bounds one inner run to the chunk size (0 = unbounded).
//
//specrpc:hotpath
func runLen(remaining, chunk int) int {
	if chunk > 0 && remaining > chunk {
		return chunk
	}
	return remaining
}

//specrpc:hotpath
func decodeProg(ms *xdr.MemStream, prog []instr, p unsafe.Pointer, chunk int) error {
	for i := range prog {
		in := &prog[i]
		q := unsafe.Add(p, in.off)
		switch in.op {
		case opUnits:
			if err := decUnits(ms, q, in.n, chunk); err != nil {
				return err
			}
		case opUnits8:
			if err := decUnits8(ms, q, in.n, chunk); err != nil {
				return err
			}
		case opBools:
			if err := decBools(ms, q, in.n, chunk); err != nil {
				return err
			}
		case opBytes:
			pad := xdr.Pad(in.n)
			b, err := ms.Take(in.n + pad)
			if err != nil {
				return err
			}
			if in.n > 0 {
				copy(unsafe.Slice((*byte)(q), in.n), b)
			}
		case opString:
			cnt, err := decCount(ms, in.bound)
			if err != nil {
				return err
			}
			b, err := ms.Take(cnt + xdr.Pad(cnt))
			if err != nil {
				return err
			}
			*(*string)(q) = string(b[:cnt])
		case opOpaqueV:
			cnt, err := decCount(ms, in.bound)
			if err != nil {
				return err
			}
			b, err := ms.Take(cnt + xdr.Pad(cnt))
			if err != nil {
				return err
			}
			dst := (*[]byte)(q)
			if len(*dst) != cnt {
				*dst = make([]byte, cnt)
			}
			copy(*dst, b[:cnt])
		case opSliceUnits, opSliceUnits8, opSliceBools:
			cnt, err := decCount(ms, in.bound)
			if err != nil {
				return err
			}
			// Reject counts the remaining bytes cannot possibly satisfy
			// before allocating, so a hostile length prefix cannot force a
			// huge allocation.
			wirePer := 4 * in.unitsPer
			if in.op == opSliceUnits8 {
				wirePer = 8 * in.unitsPer
			}
			if int64(cnt)*int64(wirePer) > int64(ms.Remaining()) {
				return xdr.ErrOverflow
			}
			data := ensureSlicePtrFree(q, cnt, in.stride)
			switch in.op {
			case opSliceUnits:
				err = decUnits(ms, data, cnt*in.unitsPer, chunk)
			case opSliceUnits8:
				err = decUnits8(ms, data, cnt*in.unitsPer, chunk)
			default:
				err = decBools(ms, data, cnt*in.unitsPer, chunk)
			}
			if err != nil {
				return err
			}
		case opSliceSub:
			cnt, err := decCount(ms, in.bound)
			if err != nil {
				return err
			}
			// Every non-degenerate element costs at least 4 wire bytes;
			// use that conservative floor to reject hostile counts before
			// allocating.
			if len(in.sub) > 0 && int64(cnt)*4 > int64(ms.Remaining()) {
				return xdr.ErrOverflow
			}
			data := ensureSlice(q, in.sliceT, cnt, in.stride)
			for j := 0; j < cnt; j++ {
				if err := decodeProg(ms, in.sub, unsafe.Add(data, uintptr(j)*in.stride), chunk); err != nil {
					return err
				}
			}
		case opVecSub:
			for j := 0; j < in.n; j++ {
				if err := decodeProg(ms, in.sub, unsafe.Add(q, uintptr(j)*in.stride), chunk); err != nil {
					return err
				}
			}
		default:
			return errBadInstruction
		}
	}
	return nil
}

//specrpc:hotpath
func decCount(ms *xdr.MemStream, bound uint32) (int, error) {
	b, err := ms.Take(4)
	if err != nil {
		return 0, err
	}
	cnt := binary.BigEndian.Uint32(b)
	if cnt > bound {
		return 0, xdr.ErrTooBig
	}
	return int(cnt), nil
}

//specrpc:hotpath
func decUnits(ms *xdr.MemStream, dst unsafe.Pointer, n, chunk int) error {
	for done := 0; done < n; {
		k := runLen(n-done, chunk)
		b, err := ms.Take(4 * k)
		if err != nil {
			return err
		}
		for j := 0; j < k; j++ {
			*(*uint32)(unsafe.Add(dst, uintptr(done+j)*4)) = binary.BigEndian.Uint32(b[4*j:])
		}
		done += k
	}
	return nil
}

//specrpc:hotpath
func decUnits8(ms *xdr.MemStream, dst unsafe.Pointer, n, chunk int) error {
	for done := 0; done < n; {
		k := runLen(n-done, chunk)
		b, err := ms.Take(8 * k)
		if err != nil {
			return err
		}
		for j := 0; j < k; j++ {
			*(*uint64)(unsafe.Add(dst, uintptr(done+j)*8)) = binary.BigEndian.Uint64(b[8*j:])
		}
		done += k
	}
	return nil
}

//specrpc:hotpath
func decBools(ms *xdr.MemStream, dst unsafe.Pointer, n, chunk int) error {
	for done := 0; done < n; {
		k := runLen(n-done, chunk)
		b, err := ms.Take(4 * k)
		if err != nil {
			return err
		}
		for j := 0; j < k; j++ {
			*(*bool)(unsafe.Add(dst, done+j)) = binary.BigEndian.Uint32(b[4*j:]) != 0
		}
		done += k
	}
	return nil
}

// ensureSlicePtrFree is ensureSlice for element types the compiler proved
// pointer-free (unit and bool runs): the backing array is allocated as
// raw 8-byte-aligned storage without reflection, keeping the hot decode
// path cheap. The slice header written is a valid header for the field's
// own (pointer-free) element type, so the GC tracks the backing array
// through the field as usual.
//
//specrpc:hotpath
func ensureSlicePtrFree(dst unsafe.Pointer, cnt int, stride uintptr) unsafe.Pointer {
	h := (*sliceHeader)(dst)
	if h.len == cnt {
		return h.data
	}
	if cnt == 0 {
		h.data, h.len, h.cap = nil, 0, 0
		return nil
	}
	words := (uintptr(cnt)*stride + 7) / 8
	backing := make([]uint64, words)
	h.data, h.len, h.cap = unsafe.Pointer(&backing[0]), cnt, cnt
	return h.data
}
