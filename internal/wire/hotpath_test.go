package wire

// Regression pins for the specvet hotpath findings: the plan executors
// used to build their corrupted-plan error with fmt.Errorf, allocating
// a fresh formatted error on a path marked //specrpc:hotpath. The fix
// returns the package-level sentinels; these tests pin both the error
// identity and the zero-allocation property of the failure paths so the
// finding cannot quietly regress.

import (
	"errors"
	"testing"
	"unsafe"

	"specrpc/internal/xdr"
)

func TestBadInstructionSentinel(t *testing.T) {
	var v uint32
	bad := []instr{{op: 0xff}}

	bs := xdr.NewBufEncode(nil)
	if err := encodeProg(bs, bad, unsafe.Pointer(&v), 0); !errors.Is(err, errBadInstruction) {
		t.Fatalf("encodeProg on corrupted plan: err = %v, want errBadInstruction", err)
	}
	var ms xdr.MemStream
	ms.SetBuffer([]byte{0, 0, 0, 0})
	if err := decodeProg(&ms, bad, unsafe.Pointer(&v), 0); !errors.Is(err, errBadInstruction) {
		t.Fatalf("decodeProg on corrupted plan: err = %v, want errBadInstruction", err)
	}

	if n := testing.AllocsPerRun(100, func() {
		bs.SetBuffer(bs.Buffer()[:0])
		if encodeProg(bs, bad, unsafe.Pointer(&v), 0) == nil {
			t.Fatal("corrupted plan encoded")
		}
	}); n != 0 {
		t.Errorf("bad-instruction error path: %v allocs/op, want 0", n)
	}
}

func TestDecodeOnlyReplyCodecSentinel(t *testing.T) {
	p := MustPlan[uint32](Uint32T(), Specialized)
	rc, err := NewReplyCodec(nil, p.Codec())
	if err != nil {
		t.Fatal(err)
	}
	var v uint32
	bs := xdr.NewBufEncode(nil)
	if err := rc.Append(bs, 1, unsafe.Pointer(&v)); !errors.Is(err, errDecodeOnly) {
		t.Fatalf("Append on decode-only codec: err = %v, want errDecodeOnly", err)
	}
	if err := rc.AppendHeader(bs, 1); !errors.Is(err, errDecodeOnly) {
		t.Fatalf("AppendHeader on decode-only codec: err = %v, want errDecodeOnly", err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if rc.Append(bs, 1, unsafe.Pointer(&v)) == nil {
			t.Fatal("decode-only codec appended")
		}
	}); n != 0 {
		t.Errorf("decode-only error path: %v allocs/op, want 0", n)
	}
}
