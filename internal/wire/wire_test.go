package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"specrpc/internal/xdr"
)

// everything exercises every wire kind, nesting, fusion breaks (bool,
// string) between fusible runs, and composite array elements.
type point struct {
	X int32
	Y int32
}

type everything struct {
	A       int32
	B       uint32
	Flag    bool
	F       float32
	H       int64
	UH      uint64
	D       float64
	Name    string
	Tag     [4]byte
	Blob    []byte
	Fixed   [3]int32
	Nums    []int32
	Pts     []point
	Corners [2]point
	Nested  point
	Words   []string
	Bools   []bool
	Longs   []int64
}

func everythingType() *Type {
	pt := StructT("point", F("x", Int32T()), F("y", Int32T()))
	return StructT("everything",
		F("a", Int32T()),
		F("b", Uint32T()),
		F("flag", BoolT()),
		F("f", Float32T()),
		F("h", HyperT()),
		F("uh", UhyperT()),
		F("d", Float64T()),
		F("name", StringT(64)),
		F("tag", OpaqueFixedT(4)),
		F("blob", OpaqueVarT(128)),
		F("fixed", FixedArrayT(3, Int32T())),
		F("nums", VarArrayT(1000, Int32T())),
		F("pts", VarArrayT(100, pt)),
		F("corners", FixedArrayT(2, pt)),
		F("nested", pt),
		F("words", VarArrayT(10, StringT(32))),
		F("bools", VarArrayT(50, BoolT())),
		F("longs", VarArrayT(50, HyperT())),
	)
}

func sampleEverything() everything {
	return everything{
		A: -7, B: 0xdeadbeef, Flag: true, F: 2.5, H: -1 << 40, UH: 1 << 60, D: -0.125,
		Name: "specialize", Tag: [4]byte{1, 2, 3, 4}, Blob: []byte{9, 8, 7, 6, 5},
		Fixed: [3]int32{10, 20, 30}, Nums: []int32{1, -2, 3, -4, 5},
		Pts:     []point{{1, 2}, {3, 4}, {5, 6}},
		Corners: [2]point{{7, 8}, {9, 10}},
		Nested:  point{11, 12},
		Words:   []string{"a", "bcd", "ef"},
		Bools:   []bool{true, false, true},
		Longs:   []int64{1 << 33, -5, 0},
	}
}

var modes = []Mode{Generic, Specialized, Chunked}

// handwritten is the reference encoding via the micro-layered xdr calls
// a hand-written stub would make; every codec must match it byte for
// byte.
func handwritten(t *testing.T, v *everything) []byte {
	t.Helper()
	bs := xdr.NewBufEncode(nil)
	x := xdr.NewEncoder(bs)
	ptProc := func(x *xdr.XDR, p *point) error {
		if err := x.Long(&p.X); err != nil {
			return err
		}
		return x.Long(&p.Y)
	}
	var err error
	step := func(e error) {
		if err == nil {
			err = e
		}
	}
	step(x.Long(&v.A))
	step(x.Uint32(&v.B))
	step(x.Bool(&v.Flag))
	step(x.Float32(&v.F))
	step(x.Hyper(&v.H))
	step(x.Uint64(&v.UH))
	step(x.Float64(&v.D))
	step(x.String(&v.Name, 64))
	step(x.Opaque(v.Tag[:]))
	step(x.Bytes(&v.Blob, 128))
	step(xdr.Vector(x, v.Fixed[:], (*xdr.XDR).Long))
	step(xdr.Array(x, &v.Nums, 1000, (*xdr.XDR).Long))
	step(xdr.Array(x, &v.Pts, 100, ptProc))
	step(xdr.Vector(x, v.Corners[:], ptProc))
	step(ptProc(x, &v.Nested))
	step(xdr.Array(x, &v.Words, 10, func(x *xdr.XDR, s *string) error { return x.String(s, 32) }))
	step(xdr.Array(x, &v.Bools, 50, (*xdr.XDR).Bool))
	step(xdr.Array(x, &v.Longs, 50, (*xdr.XDR).Hyper))
	if err != nil {
		t.Fatalf("reference encode: %v", err)
	}
	return append([]byte(nil), bs.Buffer()...)
}

func encodeWith(t *testing.T, p *Plan[everything], v *everything) []byte {
	t.Helper()
	bs := xdr.NewBufEncode(nil)
	if err := p.Marshal(xdr.NewEncoder(bs), v); err != nil {
		t.Fatalf("%v encode: %v", p.Mode(), err)
	}
	return append([]byte(nil), bs.Buffer()...)
}

func TestCodecsMatchHandwrittenBytes(t *testing.T) {
	v := sampleEverything()
	want := handwritten(t, &v)
	for _, m := range modes {
		p := MustPlan[everything](everythingType(), m)
		got := encodeWith(t, p, &v)
		if !bytes.Equal(got, want) {
			t.Errorf("%v: encoding differs from hand-written stub\n got %x\nwant %x", m, got, want)
		}
	}
}

func TestRoundTripAllModes(t *testing.T) {
	v := sampleEverything()
	for _, encM := range modes {
		for _, decM := range modes {
			enc := MustPlan[everything](everythingType(), encM)
			dec := MustPlan[everything](everythingType(), decM)
			wireBytes := encodeWith(t, enc, &v)
			var got everything
			if err := dec.Marshal(xdr.NewDecoder(xdr.NewMemDecode(wireBytes)), &got); err != nil {
				t.Fatalf("%v->%v decode: %v", encM, decM, err)
			}
			assertEverythingEqual(t, &got, &v)
		}
	}
}

func assertEverythingEqual(t *testing.T, got, want *everything) {
	t.Helper()
	if got.A != want.A || got.B != want.B || got.Flag != want.Flag || got.F != want.F ||
		got.H != want.H || got.UH != want.UH || got.D != want.D || got.Name != want.Name ||
		got.Tag != want.Tag || !bytes.Equal(got.Blob, want.Blob) ||
		got.Fixed != want.Fixed || got.Corners != want.Corners || got.Nested != want.Nested {
		t.Fatalf("scalar/fixed mismatch:\n got %+v\nwant %+v", got, want)
	}
	if len(got.Nums) != len(want.Nums) || len(got.Pts) != len(want.Pts) ||
		len(got.Words) != len(want.Words) || len(got.Bools) != len(want.Bools) ||
		len(got.Longs) != len(want.Longs) {
		t.Fatalf("length mismatch:\n got %+v\nwant %+v", got, want)
	}
	for i := range want.Nums {
		if got.Nums[i] != want.Nums[i] {
			t.Fatalf("Nums[%d] = %d, want %d", i, got.Nums[i], want.Nums[i])
		}
	}
	for i := range want.Pts {
		if got.Pts[i] != want.Pts[i] {
			t.Fatalf("Pts[%d] = %+v, want %+v", i, got.Pts[i], want.Pts[i])
		}
	}
	for i := range want.Words {
		if got.Words[i] != want.Words[i] {
			t.Fatalf("Words[%d] = %q, want %q", i, got.Words[i], want.Words[i])
		}
	}
	for i := range want.Bools {
		if got.Bools[i] != want.Bools[i] {
			t.Fatalf("Bools[%d] mismatch", i)
		}
	}
	for i := range want.Longs {
		if got.Longs[i] != want.Longs[i] {
			t.Fatalf("Longs[%d] mismatch", i)
		}
	}
}

// TestChunkedCrossesChunkBoundary exercises runs longer than ChunkUnits
// so the chunked driver loop actually iterates.
func TestChunkedCrossesChunkBoundary(t *testing.T) {
	n := 3*ChunkUnits + 17
	in := make([]int32, n)
	for i := range in {
		in[i] = int32(i * 3)
	}
	ty := VarArrayT(0, Int32T())
	ref := encodeInts(t, MustPlan[[]int32](ty, Generic), in)
	for _, m := range []Mode{Specialized, Chunked} {
		got := encodeInts(t, MustPlan[[]int32](ty, m), in)
		if !bytes.Equal(got, ref) {
			t.Fatalf("%v: bytes differ from generic at N=%d", m, n)
		}
		var out []int32
		if err := MustPlan[[]int32](ty, m).Marshal(xdr.NewDecoder(xdr.NewMemDecode(got)), &out); err != nil {
			t.Fatalf("%v decode: %v", m, err)
		}
		if len(out) != n || out[0] != 0 || out[n-1] != in[n-1] {
			t.Fatalf("%v: bad round trip", m)
		}
	}
}

func encodeInts(t *testing.T, p *Plan[[]int32], v []int32) []byte {
	t.Helper()
	bs := xdr.NewBufEncode(nil)
	if err := p.Marshal(xdr.NewEncoder(bs), &v); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return append([]byte(nil), bs.Buffer()...)
}

// TestSpecializedEncodeAllocFree is the paper's claim on the live path:
// the compiled plan encodes through the pooled buffer without a single
// allocation.
func TestSpecializedEncodeAllocFree(t *testing.T) {
	v := sampleEverything()
	v.Words = nil // string slice encode is alloc-free too, but keep the
	// steady-state shape the transport sees: ints dominating
	p := MustPlan[everything](everythingType(), Specialized)
	bs := xdr.NewBufEncode(make([]byte, 0, 4096))
	x := xdr.NewEncoder(bs)
	if err := p.Marshal(x, &v); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		bs.Reset()
		if err := p.Marshal(x, &v); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("specialized encode allocates %.1f per op, want 0", allocs)
	}
}

func TestFusionCollapsesRuns(t *testing.T) {
	// point fuses into one 2-unit run; [2]point into one 4-unit run; a
	// struct of two contiguous int32 fields plus a fixed array fuses into
	// a single instruction.
	type flat struct {
		A int32
		B int32
		C [5]int32
	}
	ty := StructT("flat", F("a", Int32T()), F("b", Int32T()), F("c", FixedArrayT(5, Int32T())))
	c, err := Compile(ty, reflect.TypeOf(flat{}), Specialized)
	if err != nil {
		t.Fatal(err)
	}
	if c.Instructions() != 1 {
		t.Fatalf("flat struct compiled to %d instructions, want 1 fused run", c.Instructions())
	}
	// []point keeps a count but fuses its element: one instruction.
	pty := VarArrayT(0, StructT("point", F("x", Int32T()), F("y", Int32T())))
	pc, err := Compile(pty, reflect.TypeOf([]point(nil)), Specialized)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Instructions() != 1 {
		t.Fatalf("[]point compiled to %d instructions, want 1", pc.Instructions())
	}
}

func TestCompileMismatches(t *testing.T) {
	type s struct{ A int32 }
	cases := []struct {
		name string
		ty   *Type
	}{
		{"kind", StructT("s", F("a", Uint32T()))},
		{"fieldcount", StructT("s", F("a", Int32T()), F("b", Int32T()))},
		{"fieldname", StructT("s", F("zzz", Int32T()))},
	}
	for _, tc := range cases {
		if _, err := NewPlan[s](tc.ty, Specialized); err == nil {
			t.Errorf("%s: compile succeeded, want error", tc.name)
		}
	}
	if _, err := NewPlan[int32](Uint32T(), Generic); err == nil {
		t.Error("int32 vs uint32: compile succeeded, want error")
	}
}

func TestDecodeBoundsAndTruncation(t *testing.T) {
	ty := VarArrayT(4, Int32T())
	enc := MustPlan[[]int32](ty, Generic)
	over := []int32{1, 2, 3, 4, 5}
	bs := xdr.NewBufEncode(nil)
	if err := enc.Marshal(xdr.NewEncoder(bs), &over); !errors.Is(err, xdr.ErrTooBig) {
		t.Fatalf("encode over bound: %v, want ErrTooBig", err)
	}
	// A count larger than the bound must be rejected on decode in every
	// mode.
	loose := MustPlan[[]int32](VarArrayT(0, Int32T()), Specialized)
	bs = xdr.NewBufEncode(nil)
	if err := loose.Marshal(xdr.NewEncoder(bs), &over); err != nil {
		t.Fatal(err)
	}
	raw := bs.Buffer()
	for _, m := range modes {
		dec := MustPlan[[]int32](ty, m)
		var out []int32
		if err := dec.Marshal(xdr.NewDecoder(xdr.NewMemDecode(raw)), &out); !errors.Is(err, xdr.ErrTooBig) {
			t.Errorf("%v decode over bound: %v, want ErrTooBig", m, err)
		}
	}
	// Truncated input must surface ErrOverflow, not panic or over-read.
	for _, m := range modes {
		dec := MustPlan[[]int32](VarArrayT(0, Int32T()), m)
		for cut := 0; cut < len(raw); cut++ {
			var out []int32
			if err := dec.Marshal(xdr.NewDecoder(xdr.NewMemDecode(raw[:cut])), &out); err == nil {
				t.Errorf("%v: decode of %d/%d bytes succeeded", m, cut, len(raw))
			}
		}
	}
	// A hostile count with no data behind it must not allocate wildly; it
	// fails on the remaining-bytes check.
	hostile := []byte{0x3f, 0xff, 0xff, 0xff}
	for _, m := range modes {
		dec := MustPlan[[]int32](VarArrayT(0, Int32T()), m)
		var out []int32
		if err := dec.Marshal(xdr.NewDecoder(xdr.NewMemDecode(hostile)), &out); err == nil {
			t.Errorf("%v: hostile count decoded", m)
		}
	}
}

func TestFreeModeZeroes(t *testing.T) {
	v := sampleEverything()
	p := MustPlan[everything](everythingType(), Generic)
	if err := p.Marshal(xdr.NewFreer(), &v); err != nil {
		t.Fatal(err)
	}
	if v.Blob != nil || v.Nums != nil || v.Pts != nil || v.Name != "" || v.Words != nil {
		t.Fatalf("free left data: %+v", v)
	}
}

// TestFallbackStream drives the specialized plan against a stream it has
// no fast path for (the record stream), exercising the generic fallback.
func TestFallbackStream(t *testing.T) {
	v := sampleEverything()
	p := MustPlan[everything](everythingType(), Specialized)
	var buf bytes.Buffer
	rs := xdr.NewRecStream(&buf, 0)
	if err := p.Marshal(xdr.NewEncoder(rs), &v); err != nil {
		t.Fatal(err)
	}
	if err := rs.EndRecord(); err != nil {
		t.Fatal(err)
	}
	rec, err := xdr.NewRecStream(&buf, 0).ReadRecord(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := handwritten(t, &v)
	if !bytes.Equal(rec, want) {
		t.Fatalf("fallback bytes differ")
	}
}

// TestFusedBoolArraySlice pins a regression: a var-array whose element
// fuses to a multi-unit bool run ([][2]bool) must move len*unitsPer wire
// units, byte-identical across codecs.
func TestFusedBoolArraySlice(t *testing.T) {
	ty := VarArrayT(0, FixedArrayT(2, BoolT()))
	v := [][2]bool{{true, false}, {false, true}, {true, true}}
	var ref []byte
	for i, m := range modes {
		p := MustPlan[[][2]bool](ty, m)
		bs := xdr.NewBufEncode(nil)
		if err := p.Marshal(xdr.NewEncoder(bs), &v); err != nil {
			t.Fatalf("%v encode: %v", m, err)
		}
		got := append([]byte(nil), bs.Buffer()...)
		if wantLen := 4 + 4*2*len(v); len(got) != wantLen {
			t.Fatalf("%v: %d wire bytes, want %d", m, len(got), wantLen)
		}
		if i == 0 {
			ref = got
		} else if !bytes.Equal(got, ref) {
			t.Fatalf("%v: bytes differ from generic\n got %x\nwant %x", m, got, ref)
		}
		var out [][2]bool
		if err := p.Marshal(xdr.NewDecoder(xdr.NewMemDecode(got)), &out); err != nil {
			t.Fatalf("%v decode: %v", m, err)
		}
		if len(out) != len(v) || out[0] != v[0] || out[2] != v[2] {
			t.Fatalf("%v: bad round trip: %v", m, out)
		}
	}
}

func TestDecodeReusesBacking(t *testing.T) {
	ty := VarArrayT(0, Int32T())
	p := MustPlan[[]int32](ty, Specialized)
	in := []int32{1, 2, 3}
	raw := encodeInts(t, p, in)
	out := make([]int32, 3)
	first := &out[0]
	if err := p.Marshal(xdr.NewDecoder(xdr.NewMemDecode(raw)), &out); err != nil {
		t.Fatal(err)
	}
	if &out[0] != first {
		t.Fatal("matching-length decode reallocated the slice")
	}
}
