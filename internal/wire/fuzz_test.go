package wire

import (
	"bytes"
	"encoding/binary"
	"testing"

	"specrpc/internal/rpcmsg"
	"specrpc/internal/xdr"
)

// The fused-codec differentials: across random identities, auth
// payloads, XIDs, procedures, and argument values covering every wire
// kind, a whole-message codec must produce exactly the bytes of the
// template-copy + plan pair it replaces, and the fused decode must
// recover a value that re-encodes to the same bytes. These are the
// wire-level guarantees the live transports rely on when they route
// typed calls through CallPlan/ReplyPlan.

// fuzzValue derives an everything value from the fuzzer's raw bytes,
// clamping every variable-size field to its wire bound. The mapping is
// deterministic, so a crash reproduces from its corpus entry.
func fuzzValue(a int32, h int64, flag bool, name string, raw []byte) everything {
	take := func(n int) []byte {
		if len(raw) < n {
			n = len(raw)
		}
		b := raw[:n]
		raw = raw[n:]
		return b
	}
	ints := func(n int) []int32 {
		b := take(n * 4)
		out := make([]int32, len(b)/4)
		for i := range out {
			out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
		}
		return out
	}
	if len(name) > 64 {
		name = name[:64]
	}
	v := everything{
		A: a, B: uint32(a) ^ 0x5a5a5a5a, Flag: flag,
		F: float32(a) / 3, H: h, UH: uint64(h) * 7, D: float64(h) / 5,
		Name: name,
	}
	copy(v.Tag[:], take(4))
	v.Blob = append([]byte(nil), take(128)...)
	copy(v.Fixed[:], ints(3))
	v.Nums = ints(20)
	for _, p := range ints(8) {
		v.Pts = append(v.Pts, point{X: p, Y: ^p})
	}
	v.Corners = [2]point{{a, int32(h)}, {int32(h >> 32), a}}
	v.Nested = point{X: a ^ 1, Y: a ^ 2}
	for i, b := range take(3) {
		s := name
		if len(s) > i*8 {
			s = s[:i*8]
		}
		v.Words = append(v.Words, s)
		v.Bools = append(v.Bools, b&1 == 1)
		v.Longs = append(v.Longs, int64(b)<<i)
	}
	return v
}

// FuzzCallPlanFused: fused whole-call bytes == CallTemplate.AppendCall
// + plan Encode, for both fusable configurations, across random
// identities and credential material.
func FuzzCallPlanFused(f *testing.F) {
	f.Add(uint32(1), uint32(0x20000532), uint32(1), uint32(2),
		int32(rpcmsg.AuthNone), []byte{}, int32(5), int64(-9), true, "hello", []byte{1, 2, 3, 4, 5})
	f.Add(uint32(0xffffffff), uint32(0), uint32(9), uint32(0),
		int32(rpcmsg.AuthSys), []byte{1, 2, 3}, int32(-1), int64(1)<<40, false, "", make([]byte, 200))

	plans := map[Mode]*Plan[everything]{
		Specialized: MustPlan[everything](everythingType(), Specialized),
		Chunked:     MustPlan[everything](everythingType(), Chunked),
	}
	f.Fuzz(func(t *testing.T, xid, prog, vers, proc uint32,
		credFlavor int32, credBody []byte, a int32, h int64, flag bool, name string, raw []byte) {
		cred := rpcmsg.OpaqueAuth{Flavor: rpcmsg.AuthFlavor(credFlavor), Body: credBody}
		tmpl, err := rpcmsg.NewCallTemplate(prog, vers, cred, rpcmsg.None())
		if err != nil {
			t.Skip() // auth the generic encoder also rejects: no template, no fusion
		}
		v := fuzzValue(a, h, flag, name, raw)
		for mode, p := range plans {
			cp, err := NewCallPlan(tmpl, proc, p)
			if err != nil {
				t.Fatalf("%v: %v", mode, err)
			}
			ref := xdr.NewBufEncode(nil)
			ref.SetBuffer(tmpl.AppendCall(nil, xid, proc))
			if err := p.Encode(xdr.NewEncoder(ref), &v); err != nil {
				t.Fatalf("%v: reference encode: %v", mode, err)
			}
			bs := xdr.NewBufEncode(nil)
			if err := cp.AppendCall(bs, xid, &v); err != nil {
				t.Fatalf("%v: fused encode: %v", mode, err)
			}
			if !bytes.Equal(bs.Buffer(), ref.Buffer()) {
				t.Fatalf("%v: fused call differs from template+plan\n got %x\nwant %x",
					mode, bs.Buffer(), ref.Buffer())
			}
		}
	})
}

// FuzzReplyPlanFused: fused whole-reply bytes == ReplyTemplate.
// AppendReply + plan Encode across random verifiers, and the fused
// decode recovers a value that re-encodes to the same body.
func FuzzReplyPlanFused(f *testing.F) {
	f.Add(uint32(1), int32(rpcmsg.AuthNone), []byte{}, int32(5), int64(-9), true, "hello", []byte{1, 2, 3})
	f.Add(uint32(0xffffffff), int32(rpcmsg.AuthShort), []byte{9, 9}, int32(-1), int64(1)<<40, false, "", make([]byte, 200))

	plans := map[Mode]*Plan[everything]{
		Specialized: MustPlan[everything](everythingType(), Specialized),
		Chunked:     MustPlan[everything](everythingType(), Chunked),
	}
	f.Fuzz(func(t *testing.T, xid uint32,
		verfFlavor int32, verfBody []byte, a int32, h int64, flag bool, name string, raw []byte) {
		verf := rpcmsg.OpaqueAuth{Flavor: rpcmsg.AuthFlavor(verfFlavor), Body: verfBody}
		tmpl, err := rpcmsg.NewReplyTemplate(verf)
		if err != nil {
			t.Skip()
		}
		v := fuzzValue(a, h, flag, name, raw)
		for mode, p := range plans {
			rp, err := NewReplyPlan(tmpl, p)
			if err != nil {
				t.Fatalf("%v: %v", mode, err)
			}
			ref := xdr.NewBufEncode(nil)
			ref.SetBuffer(tmpl.AppendReply(nil, xid))
			if err := p.Encode(xdr.NewEncoder(ref), &v); err != nil {
				t.Fatalf("%v: reference encode: %v", mode, err)
			}
			bs := xdr.NewBufEncode(nil)
			if err := rp.AppendReply(bs, xid, &v); err != nil {
				t.Fatalf("%v: fused encode: %v", mode, err)
			}
			if !bytes.Equal(bs.Buffer(), ref.Buffer()) {
				t.Fatalf("%v: fused reply differs from template+plan\n got %x\nwant %x",
					mode, bs.Buffer(), ref.Buffer())
			}

			// Decode side: the fixed-offset path must accept this healthy
			// reply and recover a value that re-encodes identically.
			var got everything
			handled, err := rp.DecodeReply(bs.Buffer(), &got)
			if !handled || err != nil {
				t.Fatalf("%v: DecodeReply handled=%v err=%v", mode, handled, err)
			}
			re := xdr.NewBufEncode(nil)
			if err := p.Encode(xdr.NewEncoder(re), &got); err != nil {
				t.Fatalf("%v: re-encode: %v", mode, err)
			}
			if !bytes.Equal(re.Buffer(), ref.Buffer()[tmpl.Len():]) {
				t.Fatalf("%v: decoded value re-encodes differently", mode)
			}
		}
	})
}
