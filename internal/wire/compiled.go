package wire

import (
	"encoding/binary"
	"sync"
	"unsafe"

	"specrpc/internal/rpcmsg"
	"specrpc/internal/xdr"
)

// This file is the runtime half of the compiled-stub rung: generated
// packages register their rpcgen-emitted straight-line routines against
// the package plan they were derived from, and the transports construct
// CompiledCallCodec/CompiledReplyCodec from the registry when a typed
// procedure's plan has one. The small CallAppender/ReplyAppender/
// ReplyDecoder interfaces are what the client and server hot paths hold,
// so a compiled codec and the fused interpreter slot into the same
// calls; both produce byte-identical messages, and procedures without a
// registered compiled routine keep the fused path unchanged.

// The emitted routines stamp the XID at offset 0 of the message image;
// that is only correct while both header layouts keep it there.
var _ = [1]struct{}{}[rpcmsg.CallXIDOffset|rpcmsg.ReplyXIDOffset]

// CallAppender emits one complete call message for (xid, arg). Both the
// fused CallCodec and the compiled codec implement it.
type CallAppender interface {
	Append(bs *xdr.BufStream, xid uint32, arg unsafe.Pointer) error
}

// ReplyAppender emits one complete accepted-success reply, with
// AppendHeader covering the void/nil-result case.
type ReplyAppender interface {
	Append(bs *xdr.BufStream, xid uint32, res unsafe.Pointer) error
	AppendHeader(bs *xdr.BufStream, xid uint32) error
}

// ReplyDecoder recognizes an accepted-success reply and decodes its
// results, reporting handled=false for any other reply shape.
type ReplyDecoder interface {
	DecodeReply(raw []byte, res unsafe.Pointer) (bool, error)
}

var (
	_ CallAppender  = (*CallCodec)(nil)
	_ CallAppender  = (*CompiledCallCodec)(nil)
	_ ReplyAppender = (*ReplyCodec)(nil)
	_ ReplyAppender = (*CompiledReplyCodec)(nil)
	_ ReplyDecoder  = (*ReplyCodec)(nil)
	_ ReplyDecoder  = (*CompiledReplyCodec)(nil)
)

// Compiled is one registered pair of emitted routines for values of type
// T: Append writes hdr + XID + value as one straight-line pass, Decode
// reads a value back out of raw body bytes. Either half may be nil.
type Compiled[T any] struct {
	Append func(bs *xdr.BufStream, hdr []byte, xid uint32, v *T) error
	Decode func(body []byte, v *T) error
}

// compiledImpl is the untyped registry entry: the generic wrappers
// erase T once at registration so the hot path pays no per-call
// conversion beyond the pointer cast.
type compiledImpl struct {
	app func(bs *xdr.BufStream, hdr []byte, xid uint32, p unsafe.Pointer) error
	dec func(body []byte, p unsafe.Pointer) error
}

// compiledCodecs maps a plan's *Codec identity to its registered
// compiled routines. Registration happens in generated-package inits,
// lookups on first use of each procedure; sync.Map fits that
// write-once, read-many shape.
var compiledCodecs sync.Map // *Codec -> *compiledImpl

// RegisterCompiled installs emitted routines for p's codec; generated
// packages call it from init. Registering again replaces the entry.
func RegisterCompiled[T any](p *Plan[T], c Compiled[T]) {
	if p == nil {
		return
	}
	impl := &compiledImpl{}
	if c.Append != nil {
		app := c.Append
		impl.app = func(bs *xdr.BufStream, hdr []byte, xid uint32, q unsafe.Pointer) error {
			return app(bs, hdr, xid, (*T)(q))
		}
	}
	if c.Decode != nil {
		dec := c.Decode
		impl.dec = func(body []byte, q unsafe.Pointer) error {
			return dec(body, (*T)(q))
		}
	}
	compiledCodecs.Store(p.Codec(), impl)
}

// compiledFor looks up the registered routines for c (nil when none).
func compiledFor(c *Codec) *compiledImpl {
	if c == nil {
		return nil
	}
	if v, ok := compiledCodecs.Load(c); ok {
		return v.(*compiledImpl)
	}
	return nil
}

// CompiledBodyDecode returns the registered straight-line body decoder
// for c, or nil when c has none: the server's typed dispatch prefers it
// over the plan-executor DecodeBody.
func CompiledBodyDecode(c *Codec) func(body []byte, p unsafe.Pointer) error {
	if impl := compiledFor(c); impl != nil {
		return impl.dec
	}
	return nil
}

// ---------------------------------------------------------------------------
// Call side

// CompiledCallCodec is the compiled counterpart of CallCodec: the same
// (header template, procedure, argument type) triple, but the argument
// bytes are produced by the rpcgen-emitted routine instead of the plan
// executor. Immutable and safe for concurrent use.
type CompiledCallCodec struct {
	hdr []byte // template bytes with the procedure stamped, XID zeroed
	app func(bs *xdr.BufStream, hdr []byte, xid uint32, p unsafe.Pointer) error
}

// NewCompiledCallCodec builds the compiled whole-call encoder for proc,
// or nil when args has no registered compiled append routine (void
// sides included: the emitted routines always carry a value).
func NewCompiledCallCodec(tmpl *rpcmsg.CallTemplate, proc uint32, args *Codec) *CompiledCallCodec {
	if tmpl == nil {
		return nil
	}
	impl := compiledFor(args)
	if impl == nil || impl.app == nil {
		return nil
	}
	return &CompiledCallCodec{hdr: tmpl.AppendCall(nil, 0, proc), app: impl.app}
}

// Append emits the complete call message for (xid, arg) onto bs,
// byte-identical to the fused CallCodec and the template+plan pair.
//
//specrpc:hotpath
func (cc *CompiledCallCodec) Append(bs *xdr.BufStream, xid uint32, arg unsafe.Pointer) error {
	return cc.app(bs, cc.hdr, xid, arg)
}

// ---------------------------------------------------------------------------
// Reply side

// CompiledReplyCodec is the compiled counterpart of ReplyCodec: the
// server encodes accepted-success replies through the emitted routine,
// the client decodes results straight out of raw reply bytes through
// it. A nil template builds a decode-only codec.
type CompiledReplyCodec struct {
	hdr []byte // success template bytes, XID zeroed; nil when decode-only
	app func(bs *xdr.BufStream, hdr []byte, xid uint32, p unsafe.Pointer) error
	dec func(body []byte, p unsafe.Pointer) error
}

// NewCompiledReplyCodec builds the compiled reply codec for results, or
// nil when the needed direction has no registered routine: with a
// template the encoder must exist (the server side), without one the
// decoder must (the client side).
func NewCompiledReplyCodec(tmpl *rpcmsg.ReplyTemplate, results *Codec) *CompiledReplyCodec {
	impl := compiledFor(results)
	if impl == nil {
		return nil
	}
	if tmpl == nil {
		if impl.dec == nil {
			return nil
		}
		return &CompiledReplyCodec{dec: impl.dec}
	}
	if impl.app == nil {
		return nil
	}
	return &CompiledReplyCodec{hdr: tmpl.AppendReply(nil, 0), app: impl.app, dec: impl.dec}
}

// Append emits the complete accepted-success reply for (xid, res).
//
//specrpc:hotpath
func (rc *CompiledReplyCodec) Append(bs *xdr.BufStream, xid uint32, res unsafe.Pointer) error {
	return rc.app(bs, rc.hdr, xid, res)
}

// AppendHeader emits the success header alone (a nil result), exactly
// like ReplyCodec.AppendHeader.
func (rc *CompiledReplyCodec) AppendHeader(bs *xdr.BufStream, xid uint32) error {
	w := bs.Extend(len(rc.hdr))
	copy(w, rc.hdr)
	binary.BigEndian.PutUint32(w[rpcmsg.ReplyXIDOffset:], xid)
	return nil
}

// DecodeReply recognizes an accepted-success reply at fixed offsets and
// decodes the results through the emitted routine; handled=false sends
// any other reply shape to the generic path, exactly as ReplyCodec does.
//
//specrpc:hotpath
func (rc *CompiledReplyCodec) DecodeReply(raw []byte, res unsafe.Pointer) (bool, error) {
	body, ok := rpcmsg.AcceptedSuccessBody(raw)
	if !ok {
		return false, nil
	}
	if res == nil || rc.dec == nil {
		return true, nil
	}
	return true, rc.dec(body, res)
}
