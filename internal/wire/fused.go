package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"unsafe"

	"specrpc/internal/rpcmsg"
	"specrpc/internal/xdr"
)

// This file fuses the two halves of the specialized message path into
// whole-message codecs: the per-connection header template (rpcmsg) and
// the per-type compiled marshal plan (this package) stop being stitched
// together at run time and become one residual program per procedure —
// the paper's "optimized" configuration, where clnt_call through
// argument encode is a single specialized routine.
//
// A CallCodec emits a complete call message: one bounds reservation
// covers the header image plus every leading fixed-size run of the
// argument plan, the XID and procedure number live at fixed offsets
// inside the image (the procedure is stamped at compile time, the XID
// per call), and only the variable-sized tail of the plan still walks
// instruction by instruction. A ReplyCodec does the same for the
// accepted-success reply on the server and decodes results straight out
// of the raw reply bytes on the client, with no intermediate XDR handle.
//
// Both codecs are compiled through the template and plan layers they
// replace, so their bytes are identical to the template-copy + plan
// pair by construction; the differential fuzz tests keep that true.

// fixedRun is one precomputed store of a fused image: a fixed-size plan
// instruction whose wire offset inside the single reservation is known
// at compile time.
type fixedRun struct {
	op   op
	off  uintptr // Go offset within the value
	woff int     // wire offset within the reserved window
	n    int     // units (opUnits/opUnits8/opBools) or bytes (opBytes)
}

// fusedBody is the compiled argument or result half of a whole-message
// codec: the leading fixed-size runs folded into the header's bounds
// reservation, and the variable-sized tail left to the plan executor.
type fusedBody struct {
	fixed     []fixedRun
	fixedWire int // wire bytes the fixed runs cover
	tail      []instr
	chunk     int
}

// compileFusedBody splits a codec's flat program into the runs that can
// share the header's bounds reservation and the variable tail. A nil
// codec (a void side) compiles to the empty body. Chunked codecs keep
// everything in the tail: bounding each reservation to ChunkUnits is the
// point of that configuration, so folding runs into one big window would
// change what is being measured.
func compileFusedBody(c *Codec) (fusedBody, error) {
	if c == nil {
		return fusedBody{}, nil
	}
	if c.mode == Generic {
		return fusedBody{}, fmt.Errorf("wire: cannot fuse a generic codec")
	}
	b := fusedBody{chunk: c.chunk()}
	prog := c.prog
	if c.mode == Chunked {
		b.tail = prog
		return b, nil
	}
	i := 0
fold:
	for ; i < len(prog); i++ {
		in := prog[i]
		var wireBytes int
		switch in.op {
		case opUnits, opBools:
			wireBytes = 4 * in.n
		case opUnits8:
			wireBytes = 8 * in.n
		case opBytes:
			wireBytes = in.n + xdr.Pad(in.n)
		default:
			// First variable-sized instruction: everything from here on
			// runs through the plan executor.
			break fold
		}
		b.fixed = append(b.fixed, fixedRun{op: in.op, off: in.off, woff: b.fixedWire, n: in.n})
		b.fixedWire += wireBytes
	}
	if i < len(prog) {
		b.tail = prog[i:]
	}
	return b, nil
}

// encodeFixed executes the fused stores into the already-reserved
// window: no growth checks, no dispatch through the stream — the
// residual loop of the whole-call specialization.
//
//specrpc:hotpath
func encodeFixed(w []byte, runs []fixedRun, p unsafe.Pointer) {
	for i := range runs {
		r := &runs[i]
		q := unsafe.Add(p, r.off)
		dst := w[r.woff:]
		switch r.op {
		case opUnits:
			for j := 0; j < r.n; j++ {
				binary.BigEndian.PutUint32(dst[4*j:], *(*uint32)(unsafe.Add(q, uintptr(j)*4)))
			}
		case opUnits8:
			for j := 0; j < r.n; j++ {
				binary.BigEndian.PutUint64(dst[8*j:], *(*uint64)(unsafe.Add(q, uintptr(j)*8)))
			}
		case opBools:
			for j := 0; j < r.n; j++ {
				var u uint32
				if *(*byte)(unsafe.Add(q, j)) != 0 {
					u = 1
				}
				binary.BigEndian.PutUint32(dst[4*j:], u)
			}
		case opBytes:
			copy(dst[:r.n], unsafe.Slice((*byte)(q), r.n))
			for j := r.n; j < r.n+xdr.Pad(r.n); j++ {
				dst[j] = 0
			}
		}
	}
}

// appendFused emits one whole message: a single Extend covers the
// header image plus the fixed runs, the XID is stamped at its fixed
// offset, and any variable tail continues through the plan executor on
// the same buffer.
//
//specrpc:hotpath
func appendFused(bs *xdr.BufStream, hdr []byte, xidOff int, body *fusedBody, xid uint32, p unsafe.Pointer) error {
	w := bs.Extend(len(hdr) + body.fixedWire)
	copy(w, hdr)
	binary.BigEndian.PutUint32(w[xidOff:], xid)
	if len(body.fixed) > 0 {
		encodeFixed(w[len(hdr):], body.fixed, p)
	}
	if len(body.tail) > 0 {
		return encodeProg(bs, body.tail, p, body.chunk)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Call side

// CallCodec is a compiled whole-call encoder for one (header template,
// procedure, argument codec) triple: the fused image of everything a
// client sends for that procedure except the XID and the argument
// bytes. Immutable and safe for concurrent use.
type CallCodec struct {
	hdr  []byte // template bytes with the procedure stamped, XID zeroed
	body fusedBody
}

// NewCallCodec fuses tmpl and the argument codec for proc. A nil args
// codec marks a void argument side; a Generic-mode codec is rejected
// (there is no flat program to fuse — callers keep the interpretive
// path).
func NewCallCodec(tmpl *rpcmsg.CallTemplate, proc uint32, args *Codec) (*CallCodec, error) {
	if tmpl == nil {
		return nil, fmt.Errorf("wire: nil call template")
	}
	body, err := compileFusedBody(args)
	if err != nil {
		return nil, err
	}
	return &CallCodec{hdr: tmpl.AppendCall(nil, 0, proc), body: body}, nil
}

// Append emits the complete call message for (xid, arg) onto bs:
// byte-identical to CallTemplate.AppendCall followed by the argument
// plan's Encode, in one pass. arg must point at a value of the argument
// codec's Go type (ignored when the codec was compiled void).
//
//specrpc:hotpath
func (cc *CallCodec) Append(bs *xdr.BufStream, xid uint32, arg unsafe.Pointer) error {
	return appendFused(bs, cc.hdr, rpcmsg.CallXIDOffset, &cc.body, xid, arg)
}

// ---------------------------------------------------------------------------
// Reply side

// ReplyCodec is a compiled whole-reply codec for one (reply template,
// result codec) pair: the server encodes accepted-success replies
// through it in one pass, and the client decodes results straight out
// of the raw reply bytes. A nil template compiles a decode-only codec
// (the client never emits replies). Immutable and safe for concurrent
// use.
type ReplyCodec struct {
	hdr  []byte // success template bytes, XID zeroed; nil when decode-only
	body fusedBody
	resc *Codec // nil for void results
}

// NewReplyCodec fuses tmpl and the result codec. A nil results codec
// marks a void result side; a Generic-mode codec is rejected.
func NewReplyCodec(tmpl *rpcmsg.ReplyTemplate, results *Codec) (*ReplyCodec, error) {
	body, err := compileFusedBody(results)
	if err != nil {
		return nil, err
	}
	rc := &ReplyCodec{body: body, resc: results}
	if tmpl != nil {
		rc.hdr = tmpl.AppendReply(nil, 0)
	}
	return rc, nil
}

// errDecodeOnly reports an encode call on a ReplyCodec built without a
// template: a wiring mistake, constant by nature, and returned from the
// hot append path where fmt.Errorf would allocate per call.
var errDecodeOnly = errors.New("wire: reply codec is decode-only")

// Append emits the complete accepted-success reply for (xid, res) onto
// bs: byte-identical to ReplyTemplate.AppendReply followed by the
// result plan's Encode, in one pass.
//
//specrpc:hotpath
func (rc *ReplyCodec) Append(bs *xdr.BufStream, xid uint32, res unsafe.Pointer) error {
	if rc.hdr == nil {
		return errDecodeOnly
	}
	return appendFused(bs, rc.hdr, rpcmsg.ReplyXIDOffset, &rc.body, xid, res)
}

// AppendHeader emits the success header alone (a void or nil result
// body), byte-identical to ReplyTemplate.AppendReply.
func (rc *ReplyCodec) AppendHeader(bs *xdr.BufStream, xid uint32) error {
	if rc.hdr == nil {
		return errDecodeOnly
	}
	w := bs.Extend(len(rc.hdr))
	copy(w, rc.hdr)
	binary.BigEndian.PutUint32(w[rpcmsg.ReplyXIDOffset:], xid)
	return nil
}

// DecodeReply recognizes an accepted-success reply at fixed offsets and
// decodes the results directly from the raw message into the value at
// res, with no intermediate handle. It reports handled=false — and
// decodes nothing — for any other reply shape (error statuses, denials,
// ill-formed headers), sending the caller to the generic interpretive
// path for the full failure detail; the accept set of the fixed-offset
// test matches the generic walker's exactly (fuzz-asserted).
//
//specrpc:hotpath
func (rc *ReplyCodec) DecodeReply(raw []byte, res unsafe.Pointer) (bool, error) {
	body, ok := rpcmsg.AcceptedSuccessBody(raw)
	if !ok {
		return false, nil
	}
	if rc.resc == nil {
		return true, nil
	}
	return true, rc.resc.DecodeBody(body, res)
}

// ---------------------------------------------------------------------------
// Typed facades

// CallPlan is the typed façade over a CallCodec, mirroring Plan[T]:
// a whole-call marshal plan for argument values of type A.
type CallPlan[A any] struct {
	cc *CallCodec
}

// NewCallPlan fuses the template and the argument plan for proc.
func NewCallPlan[A any](tmpl *rpcmsg.CallTemplate, proc uint32, args *Plan[A]) (*CallPlan[A], error) {
	var argc *Codec
	if args != nil {
		argc = args.Codec()
	}
	cc, err := NewCallCodec(tmpl, proc, argc)
	if err != nil {
		return nil, err
	}
	return &CallPlan[A]{cc: cc}, nil
}

// AppendCall emits the complete call message for (xid, arg) onto bs.
func (p *CallPlan[A]) AppendCall(bs *xdr.BufStream, xid uint32, arg *A) error {
	return p.cc.Append(bs, xid, unsafe.Pointer(arg))
}

// Codec exposes the untyped fused codec.
func (p *CallPlan[A]) Codec() *CallCodec { return p.cc }

// ReplyPlan is the typed façade over a ReplyCodec: a whole-reply
// marshal plan for result values of type R.
type ReplyPlan[R any] struct {
	rc *ReplyCodec
}

// NewReplyPlan fuses the template and the result plan. A nil template
// compiles a decode-only plan.
func NewReplyPlan[R any](tmpl *rpcmsg.ReplyTemplate, results *Plan[R]) (*ReplyPlan[R], error) {
	var resc *Codec
	if results != nil {
		resc = results.Codec()
	}
	rc, err := NewReplyCodec(tmpl, resc)
	if err != nil {
		return nil, err
	}
	return &ReplyPlan[R]{rc: rc}, nil
}

// AppendReply emits the complete accepted-success reply for (xid, res).
func (p *ReplyPlan[R]) AppendReply(bs *xdr.BufStream, xid uint32, res *R) error {
	return p.rc.Append(bs, xid, unsafe.Pointer(res))
}

// DecodeReply decodes an accepted-success reply's results into *res,
// reporting handled=false for any other reply shape.
func (p *ReplyPlan[R]) DecodeReply(raw []byte, res *R) (bool, error) {
	return p.rc.DecodeReply(raw, unsafe.Pointer(res))
}

// Codec exposes the untyped fused codec.
func (p *ReplyPlan[R]) Codec() *ReplyCodec { return p.rc }
