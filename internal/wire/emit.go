package wire

import (
	"fmt"
	"strings"

	"specrpc/internal/xdr"
)

// This file is the codegen backend of the fifth specialization rung:
// where fused.go still *interprets* a flat instruction array at run
// time, the emitter below lowers the same wire shape into straight-line
// Go source that rpcgen writes next to the generated stubs. The emitted
// routines are the paper's compiled specialized stubs: one bounds
// reservation covers the header image plus every leading fixed-size
// field, scalar stores and loads land at offsets the Go compiler
// resolves to constants, fixed opaque data is a copy, and
// variable-length tails run as explicit loops — no Op dispatch at all.
//
// The emitter works from an EmitType tree rather than a compiled Codec
// because generation happens in the rpcgen process, where the Go types
// being described do not exist yet: there is no reflect.Type to take
// offsets from, so the emitted code addresses fields by selector and
// lets the compiler do the offset arithmetic. rpcgen builds the tree
// from its AST, pairing each wire shape with the Go spelling the casts
// and allocations need (enum fields cast through their named type,
// named slice typedefs allocate as themselves).
//
// Byte and error equivalence with the interpretive plans is a hard
// requirement — compiled, fused, and generic codecs multiplex on one
// connection — so every emitted sequence mirrors the corresponding
// encodeProg/decodeProg semantics: bound checks before counts, padding
// written explicitly (Extend may return recycled dirty memory), hostile
// counts rejected before allocation, and the exact slice reuse and
// nil-on-zero rules of ensureSlice/ensureSlicePtrFree. The differential
// fuzz test (FuzzCompiledCodec) pins all of it.

// EmitType pairs one wire shape with the Go type spelling the emitted
// source needs at that node. Trees mirror Type: arrays carry an element,
// structs carry fields.
type EmitType struct {
	// Kind selects the wire shape, as in Type.
	Kind Kind
	// Go is the Go type spelling of this node as the generated package
	// sees it ("int32", "Color", "Numbers", "[]Point", "[8]byte").
	Go string
	// Len is the fixed length for OpaqueFixed and FixedArray.
	Len int
	// Bound limits String/OpaqueVar/VarArray counts; 0 means unbounded.
	Bound uint32
	// Elem is the element for FixedArray and VarArray.
	Elem *EmitType
	// Fields are the struct members in wire order.
	Fields []EmitField
}

// EmitField is one struct member: the Go field selector plus its shape.
type EmitField struct {
	Sel string
	T   *EmitType
}

// EmitCompiledFuncs renders the compiled encoder/decoder pair for one
// root type as Go source: compiledAppend<base> emits a whole message
// (header image, XID stamp, value) onto a BufStream, and
// compiledDecode<base> reads the value back out of raw body bytes. The
// functions are meant to be registered with RegisterCompiled in the
// generated package's init. usesMath reports whether the source needs
// the math import (float fields); encoding/binary is always needed.
func EmitCompiledFuncs(base, goType string, root *EmitType) (src string, usesMath bool, err error) {
	if root == nil {
		return "", false, fmt.Errorf("wire: emit: nil root type")
	}
	e := &emitter{}

	e.pf("// compiledAppend%s is the rpcgen-emitted straight-line encoder for %s:", base, goType)
	e.pf("// one reservation covers the header and the leading fixed-size fields,")
	e.pf("// stores land at constant offsets, and variable-length tails run as")
	e.pf("// explicit loops — no plan-executor dispatch. Byte-identical to the")
	e.pf("// interpretive plan by construction.")
	e.pf("func compiledAppend%s(bs *xdr.BufStream, hdr []byte, xid uint32, v *%s) error {", base, goType)
	e.indent++
	ag := &appendGen{e: e}
	if err := ag.walk(root, "(*v)"); err != nil {
		return "", false, err
	}
	ag.flush()
	e.pf("return nil")
	e.indent--
	e.pf("}")
	e.pf("")

	e.pf("// compiledDecode%s is the matching straight-line decoder: one length", base)
	e.pf("// check per fixed-size run, loads at constant offsets, counts validated")
	e.pf("// before any allocation.")
	e.pf("func compiledDecode%s(body []byte, v *%s) error {", base, goType)
	e.indent++
	dg := &decodeGen{e: e}
	if err := dg.walk(root, "(*v)"); err != nil {
		return "", false, err
	}
	dg.flush()
	e.pf("return nil")
	e.indent--
	e.pf("}")

	return e.sb.String(), e.math, nil
}

// ---------------------------------------------------------------------------
// Emitter plumbing

type emitter struct {
	sb     strings.Builder
	indent int
	names  int
	math   bool
}

func (e *emitter) pf(format string, args ...any) {
	for i := 0; i < e.indent; i++ {
		e.sb.WriteByte('\t')
	}
	fmt.Fprintf(&e.sb, format, args...)
	e.sb.WriteByte('\n')
}

// name mints a fresh local variable name; the counter is per emitted
// function pair, so nested blocks never shadow each other.
func (e *emitter) name(prefix string) string {
	e.names++
	return fmt.Sprintf("%s%d", prefix, e.names)
}

// lineBuf accumulates statements for a pending fixed-size segment; depth
// tracks nesting from loops opened inside the segment itself.
type lineBuf struct {
	lines []string
	depth int
}

func (lb *lineBuf) add(format string, args ...any) {
	lb.lines = append(lb.lines, strings.Repeat("\t", lb.depth)+fmt.Sprintf(format, args...))
}

// emitWireSize reports the static wire size of t, when it has one:
// everything except strings, variable opaque, and counted arrays.
func emitWireSize(t *EmitType) (int, bool) {
	switch t.Kind {
	case Int32, Uint32, Bool, Float32:
		return 4, true
	case Hyper, Uhyper, Float64:
		return 8, true
	case OpaqueFixed:
		return t.Len + xdr.Pad(t.Len), true
	case FixedArray:
		es, ok := emitWireSize(t.Elem)
		return t.Len * es, ok
	case Struct:
		total := 0
		for _, f := range t.Fields {
			n, ok := emitWireSize(f.T)
			if !ok {
				return 0, false
			}
			total += n
		}
		return total, true
	default:
		return 0, false
	}
}

// offExpr renders base+k, folding the literal when there is no base.
func offExpr(base string, k int) string {
	if base == "" {
		return fmt.Sprintf("%d", k)
	}
	if k == 0 {
		return base
	}
	return fmt.Sprintf("%s+%d", base, k)
}

// unrollLimit bounds full unrolling of fixed arrays; longer ones loop
// with a compiler-strength-reduced index, which is what the plan
// executor's run loop compiles to anyway.
const unrollLimit = 4

// ---------------------------------------------------------------------------
// Fixed-size stores and loads
//
// These render the body of one fixed segment: every statement addresses
// buf[base+const] where buf was carved out by a single Extend (encode)
// or covered by a single length check (decode).

func emitStores(e *emitter, lb *lineBuf, t *EmitType, expr, buf, base string, off int) {
	switch t.Kind {
	case Int32, Uint32:
		lb.add("binary.BigEndian.PutUint32(%s[%s:], uint32(%s))", buf, offExpr(base, off), expr)
	case Bool:
		lb.add("if %s {", expr)
		lb.depth++
		lb.add("binary.BigEndian.PutUint32(%s[%s:], 1)", buf, offExpr(base, off))
		lb.depth--
		lb.add("} else {")
		lb.depth++
		lb.add("binary.BigEndian.PutUint32(%s[%s:], 0)", buf, offExpr(base, off))
		lb.depth--
		lb.add("}")
	case Float32:
		e.math = true
		inner := expr
		if t.Go != "float32" {
			inner = fmt.Sprintf("float32(%s)", expr)
		}
		lb.add("binary.BigEndian.PutUint32(%s[%s:], math.Float32bits(%s))", buf, offExpr(base, off), inner)
	case Hyper, Uhyper:
		lb.add("binary.BigEndian.PutUint64(%s[%s:], uint64(%s))", buf, offExpr(base, off), expr)
	case Float64:
		e.math = true
		inner := expr
		if t.Go != "float64" {
			inner = fmt.Sprintf("float64(%s)", expr)
		}
		lb.add("binary.BigEndian.PutUint64(%s[%s:], math.Float64bits(%s))", buf, offExpr(base, off), inner)
	case OpaqueFixed:
		if t.Len == 0 {
			return
		}
		lb.add("copy(%s[%s:%s], %s[:])", buf, offExpr(base, off), offExpr(base, off+t.Len), expr)
		for j := 0; j < xdr.Pad(t.Len); j++ {
			lb.add("%s[%s] = 0", buf, offExpr(base, off+t.Len+j))
		}
	case Struct:
		for _, f := range t.Fields {
			emitStores(e, lb, f.T, expr+"."+f.Sel, buf, base, off)
			n, _ := emitWireSize(f.T)
			off += n
		}
	case FixedArray:
		es, _ := emitWireSize(t.Elem)
		if es == 0 || t.Len == 0 {
			return
		}
		if t.Len <= unrollLimit {
			for j := 0; j < t.Len; j++ {
				emitStores(e, lb, t.Elem, fmt.Sprintf("%s[%d]", expr, j), buf, base, off+j*es)
			}
			return
		}
		iv := e.name("i")
		lb.add("for %s := 0; %s < %d; %s++ {", iv, iv, t.Len, iv)
		lb.depth++
		emitStores(e, lb, t.Elem, fmt.Sprintf("%s[%s]", expr, iv),
			buf, fmt.Sprintf("%s+%s*%d", offExpr(base, off), iv, es), 0)
		lb.depth--
		lb.add("}")
	}
}

func emitLoads(e *emitter, lb *lineBuf, t *EmitType, expr, buf, base string, off int) {
	load32 := fmt.Sprintf("binary.BigEndian.Uint32(%s[%s:])", buf, offExpr(base, off))
	load64 := fmt.Sprintf("binary.BigEndian.Uint64(%s[%s:])", buf, offExpr(base, off))
	switch t.Kind {
	case Int32, Uint32:
		lb.add("%s = %s(%s)", expr, t.Go, load32)
	case Bool:
		if t.Go == "bool" {
			lb.add("%s = %s != 0", expr, load32)
		} else {
			lb.add("%s = %s(%s != 0)", expr, t.Go, load32)
		}
	case Float32:
		e.math = true
		inner := fmt.Sprintf("math.Float32frombits(%s)", load32)
		if t.Go != "float32" {
			inner = fmt.Sprintf("%s(%s)", t.Go, inner)
		}
		lb.add("%s = %s", expr, inner)
	case Hyper, Uhyper:
		lb.add("%s = %s(%s)", expr, t.Go, load64)
	case Float64:
		e.math = true
		inner := fmt.Sprintf("math.Float64frombits(%s)", load64)
		if t.Go != "float64" {
			inner = fmt.Sprintf("%s(%s)", t.Go, inner)
		}
		lb.add("%s = %s", expr, inner)
	case OpaqueFixed:
		if t.Len == 0 {
			return
		}
		lb.add("copy(%s[:], %s[%s:%s])", expr, buf, offExpr(base, off), offExpr(base, off+t.Len))
	case Struct:
		for _, f := range t.Fields {
			emitLoads(e, lb, f.T, expr+"."+f.Sel, buf, base, off)
			n, _ := emitWireSize(f.T)
			off += n
		}
	case FixedArray:
		es, _ := emitWireSize(t.Elem)
		if es == 0 || t.Len == 0 {
			return
		}
		if t.Len <= unrollLimit {
			for j := 0; j < t.Len; j++ {
				emitLoads(e, lb, t.Elem, fmt.Sprintf("%s[%d]", expr, j), buf, base, off+j*es)
			}
			return
		}
		iv := e.name("i")
		lb.add("for %s := 0; %s < %d; %s++ {", iv, iv, t.Len, iv)
		lb.depth++
		emitLoads(e, lb, t.Elem, fmt.Sprintf("%s[%s]", expr, iv),
			buf, fmt.Sprintf("%s+%s*%d", offExpr(base, off), iv, es), 0)
		lb.depth--
		lb.add("}")
	}
}

// ---------------------------------------------------------------------------
// Append generation

// appendGen walks the tree accumulating fixed-size stores into one
// pending segment; variable-size items flush the segment (one Extend)
// and emit their own bounded blocks. The first flush also emits the
// header: the reservation covers hdr plus the leading fixed run, the
// XID is stamped at offset 0 (both message directions carry it there),
// exactly as appendFused does.
type appendGen struct {
	e          *emitter
	pend       *lineBuf
	pendSize   int
	seg        string
	headerDone bool
}

func (g *appendGen) walk(t *EmitType, expr string) error {
	if sz, ok := emitWireSize(t); ok {
		if sz == 0 {
			return nil
		}
		if g.seg == "" {
			g.seg = g.e.name("b")
			g.pend = &lineBuf{}
		}
		emitStores(g.e, g.pend, t, expr, g.seg, "", g.pendSize)
		g.pendSize += sz
		return nil
	}
	switch t.Kind {
	case Struct:
		for _, f := range t.Fields {
			if err := g.walk(f.T, expr+"."+f.Sel); err != nil {
				return err
			}
		}
		return nil
	case FixedArray: // variable-size elements
		g.flush()
		iv := g.e.name("i")
		g.e.pf("for %s := 0; %s < %d; %s++ {", iv, iv, t.Len, iv)
		g.e.indent++
		sub := &appendGen{e: g.e, headerDone: true}
		if err := sub.walk(t.Elem, fmt.Sprintf("%s[%s]", expr, iv)); err != nil {
			return err
		}
		sub.flush()
		g.e.indent--
		g.e.pf("}")
		return nil
	case String, OpaqueVar:
		g.flush()
		g.emitCounted(t, expr)
		return nil
	case VarArray:
		g.flush()
		return g.emitVarArray(t, expr)
	default:
		return fmt.Errorf("wire: emit: cannot compile kind %s", t.Kind)
	}
}

func (g *appendGen) flush() {
	e := g.e
	switch {
	case !g.headerDone:
		w := e.name("w")
		if g.pendSize > 0 {
			e.pf("%s := bs.Extend(len(hdr) + %d)", w, g.pendSize)
		} else {
			e.pf("%s := bs.Extend(len(hdr))", w)
		}
		e.pf("copy(%s, hdr)", w)
		e.pf("binary.BigEndian.PutUint32(%s, xid)", w)
		if g.pendSize > 0 {
			e.pf("%s := %s[len(hdr):]", g.seg, w)
			g.emitPend()
		}
		g.headerDone = true
	case g.pendSize > 0:
		e.pf("%s := bs.Extend(%d)", g.seg, g.pendSize)
		g.emitPend()
	}
	g.pend, g.pendSize, g.seg = nil, 0, ""
}

func (g *appendGen) emitPend() {
	for _, ln := range g.pend.lines {
		g.e.pf("%s", ln)
	}
}

// emitCounted renders a string or variable-opaque item: bound check
// before the count (as encodeProg does), one reservation for count +
// bytes + padding, padding zeroed explicitly.
func (g *appendGen) emitCounted(t *EmitType, expr string) {
	e := g.e
	if t.Bound > 0 {
		e.pf("if uint32(len(%s)) > %d {", expr, t.Bound)
		e.indent++
		e.pf("return xdr.ErrTooBig")
		e.indent--
		e.pf("}")
	}
	nv, pv, wv := e.name("n"), e.name("p"), e.name("w")
	e.pf("%s := len(%s)", nv, expr)
	e.pf("%s := xdr.Pad(%s)", pv, nv)
	e.pf("%s := bs.Extend(4 + %s + %s)", wv, nv, pv)
	e.pf("binary.BigEndian.PutUint32(%s, uint32(%s))", wv, nv)
	src := expr
	if t.Kind == String && t.Go != "string" {
		src = fmt.Sprintf("string(%s)", expr)
	}
	e.pf("copy(%s[4:], %s)", wv, src)
	zv := e.name("z")
	e.pf("for %s := 4 + %s; %s < 4+%s+%s; %s++ {", zv, nv, zv, nv, pv, zv)
	e.indent++
	e.pf("%s[%s] = 0", wv, zv)
	e.indent--
	e.pf("}")
}

func (g *appendGen) emitVarArray(t *EmitType, expr string) error {
	e := g.e
	// Hoist the slice into a local: indexing the original lvalue inside
	// the loop would force the compiler to reload the slice header every
	// iteration (the []byte window it stores through might alias it) and
	// bounds-check every element load; a local header plus a range loop
	// keeps both out of the residual loop, matching encUnits' cost.
	sv := e.name("s")
	e.pf("%s := %s", sv, expr)
	if t.Bound > 0 {
		e.pf("if uint32(len(%s)) > %d {", sv, t.Bound)
		e.indent++
		e.pf("return xdr.ErrTooBig")
		e.indent--
		e.pf("}")
	}
	nv := e.name("n")
	e.pf("%s := len(%s)", nv, sv)
	if es, ok := emitWireSize(t.Elem); ok {
		// Fixed-size elements: count and every element share one
		// reservation, stores strength-reduce to constant strides.
		wv := e.name("w")
		e.pf("%s := bs.Extend(4 + %s*%d)", wv, nv, es)
		e.pf("binary.BigEndian.PutUint32(%s, uint32(%s))", wv, nv)
		if es > 0 {
			// Store through an advancing window over the reservation:
			// every offset inside the loop is a constant, so each bounds
			// check is a length-vs-constant compare instead of the
			// re-derived w[4+i*es:] reslice the prove pass won't fold.
			ov := e.name("o")
			e.pf("%s := %s[4:]", ov, wv)
			iv := e.name("i")
			e.pf("for %s := range %s {", iv, sv)
			e.indent++
			lb := &lineBuf{}
			emitStores(e, lb, t.Elem, fmt.Sprintf("%s[%s]", sv, iv), ov, "", 0)
			for _, ln := range lb.lines {
				e.pf("%s", ln)
			}
			e.pf("%s = %s[%d:]", ov, ov, es)
			e.indent--
			e.pf("}")
		}
		return nil
	}
	// Variable-size elements: count, then each element re-enters the
	// segment machinery inside the loop.
	e.pf("binary.BigEndian.PutUint32(bs.Extend(4), uint32(%s))", nv)
	iv := e.name("i")
	e.pf("for %s := range %s {", iv, sv)
	e.indent++
	sub := &appendGen{e: e, headerDone: true}
	if err := sub.walk(t.Elem, fmt.Sprintf("%s[%s]", sv, iv)); err != nil {
		return err
	}
	sub.flush()
	e.indent--
	e.pf("}")
	return nil
}

// ---------------------------------------------------------------------------
// Decode generation

// decodeGen mirrors appendGen for the read side. While the cursor is
// still statically known (before the first variable-size item) offsets
// are literals and no cursor variable exists at all; the first variable
// item materializes pos. Checks and error choices track decodeProg:
// short bodies are ErrOverflow, counts above their bound ErrTooBig,
// hostile counts rejected against the remaining bytes before any
// allocation, and slice reuse follows ensureSlice exactly (reuse when
// the length already matches, nil on a zero count).
type decodeGen struct {
	e        *emitter
	pend     *lineBuf
	pendSize int
	dynamic  bool
	static   int
}

func (g *decodeGen) walk(t *EmitType, expr string) error {
	if sz, ok := emitWireSize(t); ok {
		if sz == 0 {
			return nil
		}
		if g.pend == nil {
			g.pend = &lineBuf{}
		}
		base, off := "", g.static+g.pendSize
		if g.dynamic {
			base, off = "pos", g.pendSize
		}
		emitLoads(g.e, g.pend, t, expr, "body", base, off)
		g.pendSize += sz
		return nil
	}
	switch t.Kind {
	case Struct:
		for _, f := range t.Fields {
			if err := g.walk(f.T, expr+"."+f.Sel); err != nil {
				return err
			}
		}
		return nil
	case FixedArray: // variable-size elements
		g.flush()
		g.toDynamic()
		iv := g.e.name("i")
		g.e.pf("for %s := 0; %s < %d; %s++ {", iv, iv, t.Len, iv)
		g.e.indent++
		sub := &decodeGen{e: g.e, dynamic: true}
		if err := sub.walk(t.Elem, fmt.Sprintf("%s[%s]", expr, iv)); err != nil {
			return err
		}
		sub.flush()
		g.e.indent--
		g.e.pf("}")
		return nil
	case String, OpaqueVar:
		g.flush()
		g.toDynamic()
		g.emitCounted(t, expr)
		return nil
	case VarArray:
		g.flush()
		g.toDynamic()
		return g.emitVarArray(t, expr)
	default:
		return fmt.Errorf("wire: emit: cannot compile kind %s", t.Kind)
	}
}

func (g *decodeGen) flush() {
	if g.pendSize == 0 {
		g.pend = nil
		return
	}
	e := g.e
	if !g.dynamic {
		e.pf("if len(body) < %d {", g.static+g.pendSize)
		e.indent++
		e.pf("return xdr.ErrOverflow")
		e.indent--
		e.pf("}")
		g.emitPend()
		g.static += g.pendSize
	} else {
		e.pf("if pos+%d > len(body) {", g.pendSize)
		e.indent++
		e.pf("return xdr.ErrOverflow")
		e.indent--
		e.pf("}")
		g.emitPend()
		e.pf("pos += %d", g.pendSize)
	}
	g.pend, g.pendSize = nil, 0
}

func (g *decodeGen) emitPend() {
	for _, ln := range g.pend.lines {
		g.e.pf("%s", ln)
	}
}

// toDynamic materializes the cursor variable at the current static
// offset. It must run before any loop opens so pos is declared in the
// function's own scope.
func (g *decodeGen) toDynamic() {
	if !g.dynamic {
		g.e.pf("pos := %d", g.static)
		g.dynamic = true
	}
}

// emitCount renders the shared count-read prologue: availability check,
// load, bound check. Returns the int count variable name.
func (g *decodeGen) emitCount(bound uint32) string {
	e := g.e
	uv := e.name("u")
	e.pf("if pos+4 > len(body) {")
	e.indent++
	e.pf("return xdr.ErrOverflow")
	e.indent--
	e.pf("}")
	e.pf("%s := binary.BigEndian.Uint32(body[pos:])", uv)
	e.pf("pos += 4")
	if bound > 0 {
		e.pf("if %s > %d {", uv, bound)
		e.indent++
		e.pf("return xdr.ErrTooBig")
		e.indent--
		e.pf("}")
	}
	nv := e.name("n")
	e.pf("%s := int(%s)", nv, uv)
	return nv
}

func (g *decodeGen) emitCounted(t *EmitType, expr string) {
	e := g.e
	nv := g.emitCount(t.Bound)
	pv := e.name("p")
	e.pf("%s := xdr.Pad(%s)", pv, nv)
	e.pf("if %s+%s > len(body)-pos {", nv, pv)
	e.indent++
	e.pf("return xdr.ErrOverflow")
	e.indent--
	e.pf("}")
	if t.Kind == String {
		e.pf("%s = %s(body[pos : pos+%s])", expr, t.Go, nv)
	} else {
		// Mirror decodeProg's opOpaqueV: reallocate only on a length
		// change, so a zero count against a non-empty field leaves a
		// non-nil empty slice, exactly like the plan.
		e.pf("if len(%s) != %s {", expr, nv)
		e.indent++
		e.pf("%s = make(%s, %s)", expr, t.Go, nv)
		e.indent--
		e.pf("}")
		e.pf("copy(%s, body[pos:pos+%s])", expr, nv)
	}
	e.pf("pos += %s + %s", nv, pv)
}

// emitSliceAlloc renders the ensureSlice-equivalent: reuse on matching
// length, nil on zero, fresh allocation otherwise.
func (g *decodeGen) emitSliceAlloc(t *EmitType, expr, nv string) {
	e := g.e
	e.pf("if len(%s) != %s {", expr, nv)
	e.indent++
	e.pf("if %s == 0 {", nv)
	e.indent++
	e.pf("%s = nil", expr)
	e.indent--
	e.pf("} else {")
	e.indent++
	e.pf("%s = make(%s, %s)", expr, t.Go, nv)
	e.indent--
	e.pf("}")
	e.indent--
	e.pf("}")
}

func (g *decodeGen) emitVarArray(t *EmitType, expr string) error {
	e := g.e
	nv := g.emitCount(t.Bound)
	if es, ok := emitWireSize(t.Elem); ok {
		// Fixed-size elements: the exact byte requirement is known up
		// front, so one check rejects hostile counts before allocation
		// and the element loop runs unchecked.
		e.pf("if int64(%s)*%d > int64(len(body)-pos) {", nv, es)
		e.indent++
		e.pf("return xdr.ErrOverflow")
		e.indent--
		e.pf("}")
		g.emitSliceAlloc(t, expr, nv)
		if es > 0 {
			// Hoist the destination into a local (indexing the lvalue
			// would reload its header every iteration) and consume the
			// source through an advancing window: loads sit at constant
			// offsets so each bounds check is a length-vs-constant
			// compare, the one shape the compiler reliably keeps out of
			// the loop-carried work. An indexed body[pos+i*es:] instead
			// re-derives the window per element — multiplication the
			// prove pass won't fold.
			sv := e.name("s")
			e.pf("%s := %s", sv, expr)
			bv := e.name("b")
			e.pf("%s := body[pos:]", bv)
			iv := e.name("i")
			e.pf("for %s := range %s {", iv, sv)
			e.indent++
			lb := &lineBuf{}
			emitLoads(e, lb, t.Elem, fmt.Sprintf("%s[%s]", sv, iv), bv, "", 0)
			for _, ln := range lb.lines {
				e.pf("%s", ln)
			}
			e.pf("%s = %s[%d:]", bv, bv, es)
			e.indent--
			e.pf("}")
			e.pf("pos += %s * %d", nv, es)
		}
		return nil
	}
	// Variable-size elements cost at least the 4-byte floor each (the
	// opSliceSub pre-check); per-element checks do the rest.
	e.pf("if int64(%s)*4 > int64(len(body)-pos) {", nv)
	e.indent++
	e.pf("return xdr.ErrOverflow")
	e.indent--
	e.pf("}")
	g.emitSliceAlloc(t, expr, nv)
	sv := e.name("s")
	e.pf("%s := %s", sv, expr)
	iv := e.name("i")
	e.pf("for %s := range %s {", iv, sv)
	e.indent++
	sub := &decodeGen{e: e, dynamic: true}
	if err := sub.walk(t.Elem, fmt.Sprintf("%s[%s]", sv, iv)); err != nil {
		return err
	}
	sub.flush()
	e.indent--
	e.pf("}")
	return nil
}
