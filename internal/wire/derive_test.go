package wire

// Derivation equivalence: the tempo-derived plan must be structurally
// identical to the hand compiler's output and byte-identical on the
// wire for every fully-compat type in the rpcgen corpus (rich.x,
// rmin.x, pmap). This is the reproduction result of ROADMAP item 3,
// front (a): the paper's binding-time analysis, not our compilation
// rules, produces the live codec shape.

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"unsafe"

	"specrpc/internal/tempo/planext"
	"specrpc/internal/xdr"
)

// Corpus Go types, mirroring the generated stubs they stand in for
// (examples/rmin Pair, internal/pmap Mapping, compiledtest Point and
// Numbers, the quickstart []int32, and rich.x's word-subset pieces).
type (
	dPair    struct{ Int1, Int2 int32 }
	dPoint   struct{ X, Y int32 }
	dMapping struct{ Prog, Vers, Prot, Port uint32 }
	dWindow  struct{ Window [5]int32 }
	dMixed   struct {
		A    int32
		B    uint32
		Flag bool
		At   dPoint
		Win  [3]int32
		Nums []int32
		Bits []bool
	}
)

// derivedCorpus lists every corpus type inside the derivable word
// subset, with a generator producing in-bounds random values.
var derivedCorpus = []struct {
	name string
	t    *Type
	rt   reflect.Type
	gen  func(r *rand.Rand) any
}{
	{
		"rmin.pair",
		StructT("pair", F("int1", Int32T()), F("int2", Int32T())),
		reflect.TypeOf(dPair{}),
		func(r *rand.Rand) any { return &dPair{r.Int31(), -r.Int31()} },
	},
	{
		"rich.point",
		StructT("point", F("x", Int32T()), F("y", Int32T())),
		reflect.TypeOf(dPoint{}),
		func(r *rand.Rand) any { return &dPoint{r.Int31(), r.Int31()} },
	},
	{
		"pmap.mapping",
		StructT("mapping", F("prog", Uint32T()), F("vers", Uint32T()), F("prot", Uint32T()), F("port", Uint32T())),
		reflect.TypeOf(dMapping{}),
		func(r *rand.Rand) any { return &dMapping{r.Uint32(), r.Uint32(), r.Uint32(), r.Uint32()} },
	},
	{
		"rich.numbers",
		VarArrayT(2000, Int32T()),
		reflect.TypeOf([]int32(nil)),
		func(r *rand.Rand) any {
			v := make([]int32, r.Intn(50))
			for i := range v {
				v[i] = r.Int31()
			}
			return &v
		},
	},
	{
		"quickstart.ints",
		VarArrayT(4096, Int32T()),
		reflect.TypeOf([]int32(nil)),
		func(r *rand.Rand) any {
			v := make([]int32, r.Intn(20))
			for i := range v {
				v[i] = -r.Int31()
			}
			return &v
		},
	},
	{
		"rich.bits",
		VarArrayT(8, BoolT()),
		reflect.TypeOf([]bool(nil)),
		func(r *rand.Rand) any {
			v := make([]bool, r.Intn(9))
			for i := range v {
				v[i] = r.Intn(2) == 1
			}
			return &v
		},
	},
	{
		"rich.window",
		StructT("win", F("window", FixedArrayT(5, Int32T()))),
		reflect.TypeOf(dWindow{}),
		func(r *rand.Rand) any {
			var v dWindow
			for i := range v.Window {
				v.Window[i] = r.Int31()
			}
			return &v
		},
	},
	{
		"scalar.int32",
		Int32T(),
		reflect.TypeOf(int32(0)),
		func(r *rand.Rand) any { v := r.Int31(); return &v },
	},
	{
		"scalar.uint32",
		Uint32T(),
		reflect.TypeOf(uint32(0)),
		func(r *rand.Rand) any { v := r.Uint32(); return &v },
	},
	{
		"scalar.bool",
		BoolT(),
		reflect.TypeOf(false),
		func(r *rand.Rand) any { v := r.Intn(2) == 1; return &v },
	},
	{
		"mixed.word-subset",
		StructT("mixed",
			F("a", Int32T()), F("b", Uint32T()), F("flag", BoolT()),
			F("at", StructT("point", F("x", Int32T()), F("y", Int32T()))),
			F("win", FixedArrayT(3, Int32T())),
			F("nums", VarArrayT(2000, Int32T())),
			F("bits", VarArrayT(8, BoolT())),
		),
		reflect.TypeOf(dMixed{}),
		func(r *rand.Rand) any {
			v := dMixed{
				A: r.Int31(), B: r.Uint32(), Flag: r.Intn(2) == 1,
				At:   dPoint{r.Int31(), r.Int31()},
				Nums: make([]int32, r.Intn(10)),
				Bits: make([]bool, r.Intn(9)),
			}
			for i := range v.Win {
				v.Win[i] = r.Int31()
			}
			for i := range v.Nums {
				v.Nums[i] = r.Int31()
			}
			for i := range v.Bits {
				v.Bits[i] = r.Intn(2) == 1
			}
			return &v
		},
	},
}

// TestDerivedPlanStructuralEquality pins the strongest form of the
// reproduction claim: for every corpus type, the program lowered from
// the specializer's residual is instruction-for-instruction the program
// the hand compiler builds.
func TestDerivedPlanStructuralEquality(t *testing.T) {
	for _, tc := range derivedCorpus {
		for _, mode := range []Mode{Specialized, Chunked} {
			hand, err := Compile(tc.t, tc.rt, mode)
			if err != nil {
				t.Fatalf("%s: Compile: %v", tc.name, err)
			}
			derived, err := DeriveCodec(tc.t, tc.rt, mode)
			if err != nil {
				t.Fatalf("%s: DeriveCodec: %v", tc.name, err)
			}
			if !reflect.DeepEqual(hand.prog, derived.prog) {
				t.Errorf("%s (%s): derived program differs from hand-built\nhand:\n%sderived:\n%s",
					tc.name, mode, hand.ProgString(), derived.ProgString())
			}
			if derived.Instructions() == 0 {
				t.Errorf("%s: derived codec has an empty program", tc.name)
			}
		}
	}
}

// TestDerivedPlanDifferential round-trips random values through both
// codecs: byte-identical encodes, value-identical decodes of each
// other's bytes.
func TestDerivedPlanDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, tc := range derivedCorpus {
		hand, err := Compile(tc.t, tc.rt, Specialized)
		if err != nil {
			t.Fatalf("%s: Compile: %v", tc.name, err)
		}
		derived, err := DeriveCodec(tc.t, tc.rt, Specialized)
		if err != nil {
			t.Fatalf("%s: DeriveCodec: %v", tc.name, err)
		}
		for pass := 0; pass < 50; pass++ {
			v := tc.gen(r)
			p := unsafe.Pointer(reflect.ValueOf(v).Pointer())

			hb, db := xdr.NewBufEncode(nil), xdr.NewBufEncode(nil)
			if err := hand.Encode(xdr.NewEncoder(hb), p); err != nil {
				t.Fatalf("%s: hand encode: %v", tc.name, err)
			}
			if err := derived.Encode(xdr.NewEncoder(db), p); err != nil {
				t.Fatalf("%s: derived encode: %v", tc.name, err)
			}
			if !bytes.Equal(hb.Buffer(), db.Buffer()) {
				t.Fatalf("%s: encode bytes differ\nhand:    %x\nderived: %x", tc.name, hb.Buffer(), db.Buffer())
			}

			// Cross-decode: the derived codec must accept the hand bytes
			// and reproduce the value, and vice versa.
			hv := reflect.New(tc.rt)
			dv := reflect.New(tc.rt)
			if err := hand.DecodeBody(db.Buffer(), unsafe.Pointer(hv.Pointer())); err != nil {
				t.Fatalf("%s: hand decode of derived bytes: %v", tc.name, err)
			}
			if err := derived.DecodeBody(hb.Buffer(), unsafe.Pointer(dv.Pointer())); err != nil {
				t.Fatalf("%s: derived decode of hand bytes: %v", tc.name, err)
			}
			if !reflect.DeepEqual(hv.Elem().Interface(), dv.Elem().Interface()) {
				t.Fatalf("%s: decoded values differ\nhand:    %+v\nderived: %+v",
					tc.name, hv.Elem().Interface(), dv.Elem().Interface())
			}
		}
	}
}

// TestDeriveUnsupportedFallsBack pins the failure mode: out-of-subset
// shapes (strings, opaque, 8-byte scalars, floats, arrays of
// composites) must return *planext.UnsupportedError — the explicit
// fall-back-to-Compile signal — never a silently wrong plan.
func TestDeriveUnsupportedFallsBack(t *testing.T) {
	point := StructT("point", F("x", Int32T()), F("y", Int32T()))
	cases := []struct {
		name string
		t    *Type
		rt   reflect.Type
	}{
		{"string", StringT(16), reflect.TypeOf("")},
		{"opaque-fixed", OpaqueFixedT(10), reflect.TypeOf([10]byte{})},
		{"opaque-var", OpaqueVarT(64), reflect.TypeOf([]byte(nil))},
		{"hyper", HyperT(), reflect.TypeOf(int64(0))},
		{"double", Float64T(), reflect.TypeOf(float64(0))},
		{"float", Float32T(), reflect.TypeOf(float32(0))},
		{"array-of-struct", FixedArrayT(3, point), reflect.TypeOf([3]dPoint{})},
		{"slice-of-struct", VarArrayT(7, point), reflect.TypeOf([]dPoint(nil))},
		{
			"struct-with-string",
			StructT("s", F("a", Int32T()), F("name", StringT(32))),
			reflect.TypeOf(struct {
				A    int32
				Name string
			}{}),
		},
	}
	for _, tc := range cases {
		_, err := DeriveCodec(tc.t, tc.rt, Specialized)
		if err == nil {
			t.Errorf("%s: DeriveCodec succeeded, want UnsupportedError", tc.name)
			continue
		}
		var ue *planext.UnsupportedError
		if !errors.As(err, &ue) {
			t.Errorf("%s: error %v is not *planext.UnsupportedError", tc.name, err)
		}
		// The hand compiler must still take the type — fallback works.
		if _, cerr := Compile(tc.t, tc.rt, Specialized); cerr != nil {
			t.Errorf("%s: Compile fallback failed too: %v", tc.name, cerr)
		}
	}
}

// TestDeriveRejectsGenericMode pins that derivation refuses the
// walker mode instead of returning a codec with no program.
func TestDeriveRejectsGenericMode(t *testing.T) {
	if _, err := DeriveCodec(Int32T(), reflect.TypeOf(int32(0)), Generic); err == nil {
		t.Fatal("DeriveCodec(Generic) succeeded, want error")
	}
}

// TestDerivePlanTyped exercises the generic façade end to end.
func TestDerivePlanTyped(t *testing.T) {
	p, err := DerivePlan[dPair](StructT("pair", F("int1", Int32T()), F("int2", Int32T())), Specialized)
	if err != nil {
		t.Fatalf("DerivePlan: %v", err)
	}
	bs := xdr.NewBufEncode(nil)
	in := dPair{7, -9}
	if err := p.Encode(xdr.NewEncoder(bs), &in); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var out dPair
	if err := p.Decode(xdr.NewDecoder(xdr.NewMemDecode(bs.Buffer())), &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

// FuzzDerivedPlan is the differential fuzz target of the derivation
// pipeline: fuzzer-chosen values of the mixed word-subset corpus type
// must encode byte-identically and decode value- and error-identically
// through the hand-built and tempo-derived codecs, in both directions —
// including on arbitrary (often hostile) body bytes.
func FuzzDerivedPlan(f *testing.F) {
	mixed := derivedCorpus[len(derivedCorpus)-1]
	hand, err := Compile(mixed.t, mixed.rt, Specialized)
	if err != nil {
		f.Fatal(err)
	}
	derived, err := DeriveCodec(mixed.t, mixed.rt, Specialized)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(int32(1), uint32(2), true, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(int32(-1), uint32(0), false, []byte{})
	f.Fuzz(func(t *testing.T, a int32, b uint32, flag bool, raw []byte) {
		v := dMixed{A: a, B: b, Flag: flag, At: dPoint{a ^ 1, a ^ 2}}
		for i := range v.Win {
			v.Win[i] = a + int32(i)
		}
		nn := int(b % 10)
		v.Nums = make([]int32, nn)
		for i := range v.Nums {
			v.Nums[i] = a - int32(i)
		}
		v.Bits = make([]bool, int(uint32(a)%9))
		for i := range v.Bits {
			v.Bits[i] = (a>>i)&1 == 1
		}

		hb, db := xdr.NewBufEncode(nil), xdr.NewBufEncode(nil)
		if err := hand.Encode(xdr.NewEncoder(hb), unsafe.Pointer(&v)); err != nil {
			t.Fatalf("hand encode: %v", err)
		}
		if err := derived.Encode(xdr.NewEncoder(db), unsafe.Pointer(&v)); err != nil {
			t.Fatalf("derived encode: %v", err)
		}
		if !bytes.Equal(hb.Buffer(), db.Buffer()) {
			t.Fatalf("encode bytes differ\nhand:    %x\nderived: %x", hb.Buffer(), db.Buffer())
		}

		// Decode differential on arbitrary bytes: same accept/reject
		// decision, same value on accept.
		var hv, dv dMixed
		herr := hand.DecodeBody(raw, unsafe.Pointer(&hv))
		derr := derived.DecodeBody(raw, unsafe.Pointer(&dv))
		if (herr == nil) != (derr == nil) {
			t.Fatalf("decode disagreement on %x: hand=%v derived=%v", raw, herr, derr)
		}
		if herr == nil && !reflect.DeepEqual(hv, dv) {
			t.Fatalf("decoded values differ on %x\nhand:    %+v\nderived: %+v", raw, hv, dv)
		}
	})
}
