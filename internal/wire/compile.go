package wire

import (
	"fmt"
	"reflect"
	"strings"
	"unsafe"
)

// Mode selects which of the paper's §5 marshaling configurations a plan
// executes.
type Mode int

// Codec modes.
const (
	// Generic is the interpretive tree-walker: per-unit dispatch through
	// the XDR handle, the original Sun RPC cost profile.
	Generic Mode = iota + 1
	// Specialized is the flat compiled plan: fused runs, one bounds check
	// per run, direct stream access.
	Specialized
	// Chunked is the specialized plan with runs bounded to ChunkUnits,
	// executed under an outer driver loop (paper Table 4).
	Chunked
)

// String names the mode as the paper's tables do.
func (m Mode) String() string {
	switch m {
	case Generic:
		return "generic"
	case Specialized:
		return "specialized"
	case Chunked:
		return "chunked"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ChunkUnits is the bounded-unrolling run length in 4-byte units,
// matching the 250-element chunks of the paper's Table 4.
const ChunkUnits = 250

// node is the bound form of a Type used by the generic walker: the type
// tree annotated with the Go offsets resolved against the concrete struct
// layout. The walker still interprets — one dispatch and one handle call
// per leaf unit — which is what makes it the faithful generic baseline.
type node struct {
	t      *Type
	off    uintptr // offset within the enclosing value
	fields []node  // Struct
	elem   *node   // FixedArray / VarArray element (off 0 within element)
	stride uintptr // element size in Go memory for arrays
	sliceT reflect.Type
	bound  uint32
}

// op is one compiled instruction class of the flat plan.
type op uint8

const (
	// opUnits moves n 4-byte big-endian units at off: fused runs of
	// int32/uint32/float32 fields and fixed arrays thereof.
	opUnits op = iota + 1
	// opUnits8 moves n 8-byte big-endian units at off: hyper/uhyper/double
	// runs.
	opUnits8
	// opBools moves n Go bools at off, each a 4-byte 0/1 wire unit.
	opBools
	// opBytes moves n raw bytes plus padding at off (fixed opaque): the
	// fused-memcpy run.
	opBytes
	// opString moves a counted string at off.
	opString
	// opOpaqueV moves counted raw bytes ([]byte) at off.
	opOpaqueV
	// opSliceUnits moves a counted slice at off whose element flattens to
	// unitsPer 4-byte units (e.g. []int32, []color, or a []point whose
	// fields fuse completely).
	opSliceUnits
	// opSliceUnits8 is opSliceUnits for 8-byte-unit elements.
	opSliceUnits8
	// opSliceBools moves a counted []bool at off.
	opSliceBools
	// opSliceSub moves a counted slice of composite elements: count, then
	// the sub-program per element advancing by stride.
	opSliceSub
	// opVecSub runs the sub-program n times advancing by stride (fixed
	// array of composite elements that did not fuse).
	opVecSub
)

// instr is one step of a compiled plan. The offsets and counts are the
// "static" data of the paper's specialization: everything knowable from
// the type alone is folded in here, so executing the plan touches only
// the dynamic bytes.
type instr struct {
	op       op
	off      uintptr
	n        int     // unit/byte count (opUnits*, opBytes, opVecSub)
	bound    uint32  // decode limit for counted ops
	stride   uintptr // Go element size for slice/vector ops
	unitsPer int     // fused units per element (opSliceUnits*)
	sub      []instr
	sliceT   reflect.Type // concrete slice type for decode allocation
}

// Codec is a compiled marshal plan for one (wire.Type, Go type) pair in
// one mode. Codecs are immutable after compilation and safe for
// concurrent use. Most callers want the typed Plan[T] façade.
type Codec struct {
	mode Mode
	t    *Type
	rt   reflect.Type
	root node    // generic walker (also the fallback for foreign streams)
	prog []instr // flat plan (Specialized / Chunked)
}

// Mode reports the configuration the codec was compiled for.
func (c *Codec) Mode() Mode { return c.mode }

// WireType returns the description the codec was compiled from.
func (c *Codec) WireType() *Type { return c.t }

// GoType returns the Go type the codec marshals.
func (c *Codec) GoType() reflect.Type { return c.rt }

// Instructions reports the length of the flat plan (0 for Generic): the
// live analog of the paper's Table 3 residual-code-size column.
func (c *Codec) Instructions() int { return len(c.prog) }

// Compile builds the codec marshaling Go values of type rt as described
// by t. It validates the two shapes against each other field by field and
// resolves every offset, stride, and run length now, so the marshal path
// does no reflection.
func Compile(t *Type, rt reflect.Type, mode Mode) (*Codec, error) {
	switch mode {
	case Generic, Specialized, Chunked:
	default:
		return nil, fmt.Errorf("wire: unknown mode %d", int(mode))
	}
	if t == nil {
		return nil, fmt.Errorf("wire: nil type description")
	}
	if rt == nil {
		return nil, fmt.Errorf("wire: nil Go type")
	}
	c := &Codec{mode: mode, t: t, rt: rt}
	root, err := bind(t, rt, 0)
	if err != nil {
		return nil, err
	}
	c.root = root
	if mode != Generic {
		prog, err := flatten(root, 0)
		if err != nil {
			return nil, err
		}
		c.prog = prog
	}
	return c, nil
}

// bind validates t against rt and resolves offsets, producing the bound
// node tree.
func bind(t *Type, rt reflect.Type, off uintptr) (node, error) {
	n := node{t: t, off: off, bound: effBound(t.Bound)}
	mismatch := func() (node, error) {
		return node{}, fmt.Errorf("wire: %s does not match Go type %s", t.Kind, rt)
	}
	switch t.Kind {
	case Int32:
		if rt.Kind() != reflect.Int32 {
			return mismatch()
		}
	case Uint32:
		if rt.Kind() != reflect.Uint32 {
			return mismatch()
		}
	case Bool:
		if rt.Kind() != reflect.Bool {
			return mismatch()
		}
	case Float32:
		if rt.Kind() != reflect.Float32 {
			return mismatch()
		}
	case Hyper:
		if rt.Kind() != reflect.Int64 {
			return mismatch()
		}
	case Uhyper:
		if rt.Kind() != reflect.Uint64 {
			return mismatch()
		}
	case Float64:
		if rt.Kind() != reflect.Float64 {
			return mismatch()
		}
	case String:
		if rt.Kind() != reflect.String {
			return mismatch()
		}
	case OpaqueFixed:
		if rt.Kind() != reflect.Array || rt.Elem().Kind() != reflect.Uint8 || rt.Len() != t.Len {
			return mismatch()
		}
	case OpaqueVar:
		if rt.Kind() != reflect.Slice || rt.Elem().Kind() != reflect.Uint8 {
			return mismatch()
		}
	case FixedArray:
		if rt.Kind() != reflect.Array || rt.Len() != t.Len {
			return mismatch()
		}
		elem, err := bind(t.Elem, rt.Elem(), 0)
		if err != nil {
			return node{}, fmt.Errorf("wire: array element: %w", err)
		}
		n.elem = &elem
		n.stride = rt.Elem().Size()
	case VarArray:
		if rt.Kind() != reflect.Slice {
			return mismatch()
		}
		elem, err := bind(t.Elem, rt.Elem(), 0)
		if err != nil {
			return node{}, fmt.Errorf("wire: array element: %w", err)
		}
		n.elem = &elem
		n.stride = rt.Elem().Size()
		n.sliceT = rt
	case Struct:
		if rt.Kind() != reflect.Struct {
			return mismatch()
		}
		if rt.NumField() != len(t.Fields) {
			return node{}, fmt.Errorf("wire: struct %s has %d fields, Go type %s has %d",
				t.Name, len(t.Fields), rt, rt.NumField())
		}
		n.fields = make([]node, len(t.Fields))
		for i, f := range t.Fields {
			gf := rt.Field(i)
			if !nameMatches(f.Name, gf.Name) {
				return node{}, fmt.Errorf("wire: struct %s field %d: wire name %q does not match Go field %q",
					t.Name, i, f.Name, gf.Name)
			}
			fn, err := bind(f.Type, gf.Type, off+gf.Offset)
			if err != nil {
				return node{}, fmt.Errorf("wire: struct %s field %s: %w", t.Name, f.Name, err)
			}
			n.fields[i] = fn
		}
	default:
		return node{}, fmt.Errorf("wire: unknown kind %d", uint8(t.Kind))
	}
	return n, nil
}

// nameMatches compares an IDL field name to a Go field name loosely:
// case and underscores are ignored, so "int_val" matches "IntVal".
func nameMatches(wireName, goName string) bool {
	if wireName == "" {
		return true
	}
	canon := func(s string) string {
		return strings.ToLower(strings.ReplaceAll(s, "_", ""))
	}
	return canon(wireName) == canon(goName)
}

// flatten compiles a bound node into the linear instruction array,
// fusing adjacent fixed-size runs. base is the offset of the node within
// the pointer the program will run against.
func flatten(n node, base uintptr) ([]instr, error) {
	var prog []instr
	if err := flattenInto(&prog, n, base); err != nil {
		return nil, err
	}
	return prog, nil
}

// appendRun appends a fixed-size run, fusing with the previous
// instruction when the two are the same class and contiguous in Go
// memory — the compile-time analog of the specializer coalescing
// adjacent stores.
func appendRun(prog *[]instr, o op, off uintptr, n int, width uintptr) {
	if k := len(*prog); k > 0 {
		prev := &(*prog)[k-1]
		if prev.op == o && prev.off+uintptr(prev.n)*width == off {
			// opBytes runs carry wire padding after them; only a run that
			// ends 4-byte aligned can absorb more bytes.
			if o != opBytes || prev.n%4 == 0 {
				prev.n += n
				return
			}
		}
	}
	*prog = append(*prog, instr{op: o, off: off, n: n})
}

func flattenInto(prog *[]instr, n node, base uintptr) error {
	off := base + n.off
	switch n.t.Kind {
	case Int32, Uint32, Float32:
		appendRun(prog, opUnits, off, 1, 4)
	case Hyper, Uhyper, Float64:
		appendRun(prog, opUnits8, off, 1, 8)
	case Bool:
		appendRun(prog, opBools, off, 1, 1)
	case String:
		*prog = append(*prog, instr{op: opString, off: off, bound: n.bound})
	case OpaqueFixed:
		appendRun(prog, opBytes, off, n.t.Len, 1)
	case OpaqueVar:
		*prog = append(*prog, instr{op: opOpaqueV, off: off, bound: n.bound})
	case Struct:
		for _, f := range n.fields {
			if err := flattenInto(prog, f, base); err != nil {
				return err
			}
		}
	case FixedArray:
		sub, err := flatten(*n.elem, 0)
		if err != nil {
			return err
		}
		if units, w, ok := fullyFused(sub, n.stride); ok {
			// The element flattens to contiguous units covering its whole
			// stride, so the array is one big run: loop bounds resolved at
			// compile time.
			switch w {
			case opUnits:
				appendRun(prog, opUnits, off, n.t.Len*units, 4)
			case opUnits8:
				appendRun(prog, opUnits8, off, n.t.Len*units, 8)
			case opBools:
				appendRun(prog, opBools, off, n.t.Len*units, 1)
			case opBytes:
				appendRun(prog, opBytes, off, n.t.Len*units, 1)
			}
			return nil
		}
		*prog = append(*prog, instr{op: opVecSub, off: off, n: n.t.Len, stride: n.stride, sub: sub})
	case VarArray:
		sub, err := flatten(*n.elem, 0)
		if err != nil {
			return err
		}
		if units, w, ok := fullyFused(sub, n.stride); ok && w != opBytes {
			o := opSliceUnits
			switch w {
			case opUnits8:
				o = opSliceUnits8
			case opBools:
				o = opSliceBools
			}
			*prog = append(*prog, instr{
				op: o, off: off, bound: n.bound,
				stride: n.stride, unitsPer: units, sliceT: n.sliceT,
			})
			return nil
		}
		*prog = append(*prog, instr{
			op: opSliceSub, off: off, bound: n.bound,
			stride: n.stride, sub: sub, sliceT: n.sliceT,
		})
	default:
		return fmt.Errorf("wire: cannot flatten kind %s", n.t.Kind)
	}
	return nil
}

// fullyFused reports whether a compiled element program is a single run
// starting at offset 0 and covering the whole element stride, i.e. the
// element can be folded into its enclosing array's run.
func fullyFused(sub []instr, stride uintptr) (count int, o op, ok bool) {
	if len(sub) != 1 || sub[0].off != 0 {
		return 0, 0, false
	}
	in := sub[0]
	var width uintptr
	switch in.op {
	case opUnits:
		width = 4
	case opUnits8:
		width = 8
	case opBools, opBytes:
		width = 1
	default:
		return 0, 0, false
	}
	if uintptr(in.n)*width != stride {
		return 0, 0, false // Go padding inside the element: cannot fuse
	}
	if in.op == opBytes && in.n%4 != 0 {
		return 0, 0, false // wire padding between elements: cannot fuse
	}
	return in.n, in.op, true
}

// sliceHeader mirrors the runtime slice layout for direct header access.
// The plan only reads or writes headers of types whose layout is
// validated at compile time.
type sliceHeader struct {
	data unsafe.Pointer
	len  int
	cap  int
}

// stringHeader mirrors the runtime string layout.
type stringHeader struct {
	data unsafe.Pointer
	len  int
}
