// Package platform models the paper's two measurement platforms — a Sun
// IPX 4/50 under SunOS with 100 Mb/s ATM, and a 166 MHz Pentium PC under
// Linux with 100 Mb/s Fast-Ethernet — as calibrated cost models over the
// virtual machine's execution meters.
//
// We cannot fabricate 1997 hardware; what we can do is keep the paper's
// *shape*: every time is computed from deterministic VM counters
// (operations, calls, memory bytes) and message sizes through a small
// linear model with two non-linearities the paper itself identifies:
//
//   - a data-cache knee (§5: "program execution time is dominated by
//     memory accesses"), which makes the IPX marshaling speedup *decrease*
//     beyond N≈250 while the PC curve only bends;
//   - an instruction-cache penalty for very large residual code (§5
//     Table 4), which bounded unrolling avoids.
//
// The constants were calibrated once against Tables 1 and 2 and are fixed;
// EXPERIMENTS.md records paper-vs-model values.
package platform

import (
	"specrpc/internal/vm"
)

// Model converts VM cost counters into milliseconds on a modeled machine.
type Model struct {
	// Name identifies the platform in table output.
	Name string
	// Network names the link for figure labels.
	Network string

	// OpNS is the cost of one VM operation (the CPU term).
	OpNS float64
	// CallNS is the per-function-call overhead (frame push/pop).
	CallNS float64
	// MemFastNS and MemSlowNS bound the per-byte memory cost inside and
	// beyond the data cache.
	MemFastNS float64
	MemSlowNS float64
	// DCacheBytes is the effective data-cache capacity.
	DCacheBytes int
	// ICacheBytes is the effective instruction-cache capacity; code
	// larger than this pays IMissFactor extra per operation.
	ICacheBytes int
	// IMissFactor scales the instruction-fetch penalty.
	IMissFactor float64

	// StubFixedNS is the fixed per-invocation cost of one marshaling
	// stage (timer reads, client handle setup, loop overhead of the test
	// program). The PC's measured Table 1 times carry a large constant —
	// original 71 µs vs specialized 63 µs at N=20 — which is why its
	// speedup *rises* with N; this constant models it.
	StubFixedNS float64

	// SyscallNS is the fixed cost of one send or receive system call.
	SyscallNS float64
	// KernelNSPerByte is the kernel copy cost per message byte per
	// traversal (socket buffer copies).
	KernelNSPerByte float64
	// LatencyNS is the one-way wire+adapter latency.
	LatencyNS float64
	// Mbps is the link bandwidth.
	Mbps float64
	// BzeroNSPerByte is the buffer-clearing cost the paper names as a
	// round-trip-only overhead.
	BzeroNSPerByte float64
}

// IPX is the Sun IPX 4/50 + SunOS 4.1.4 + 100 Mb/s ATM model. The IPX is
// a ~28 MHz SPARC with a small cache and a slow, write-through memory
// system: memory traffic dominates early, which is what caps and then
// erodes its specialization speedup at large arrays.
func IPX() Model {
	return Model{
		Name: "IPX/SunOS", Network: "ATM 100Mbits",
		OpNS: 30, CallNS: 147,
		MemFastNS: 6, MemSlowNS: 53, DCacheBytes: 2 * 1024,
		ICacheBytes: 64 * 1024, IMissFactor: 0.30,
		StubFixedNS: 6e3,
		SyscallNS:   400e3, KernelNSPerByte: 450, LatencyNS: 650e3,
		Mbps: 100, BzeroNSPerByte: 45,
	}
}

// PC is the 166 MHz Pentium + Linux + 100 Mb/s Fast-Ethernet model: a
// much faster CPU, a larger cache, and a lighter protocol stack.
func PC() Model {
	return Model{
		Name: "PC/Linux", Network: "Ethernet 100Mbits",
		OpNS: 7, CallNS: 33,
		MemFastNS: 1.2, MemSlowNS: 4, DCacheBytes: 16 * 1024,
		ICacheBytes: 8 * 1024, IMissFactor: 0.45,
		StubFixedNS: 60e3,
		SyscallNS:   60e3, KernelNSPerByte: 150, LatencyNS: 80e3,
		Mbps: 100, BzeroNSPerByte: 10,
	}
}

// Both returns the two paper platforms in presentation order.
func Both() []Model { return []Model{IPX(), PC()} }

// CPUTimeMS converts an execution's meters to milliseconds of compute.
// workingSet is the bytes of data the run touches repeatedly (arguments +
// message buffer); codeBytes is the size of the code it executes.
func (m Model) CPUTimeMS(c vm.Cost, workingSet, codeBytes int) float64 {
	opNS := m.OpNS
	if codeBytes > m.ICacheBytes && m.ICacheBytes > 0 {
		spill := float64(codeBytes-m.ICacheBytes) / float64(codeBytes)
		opNS *= 1 + m.IMissFactor*spill
	}
	memNS := m.MemFastNS
	if workingSet > m.DCacheBytes && m.DCacheBytes > 0 {
		spill := float64(workingSet-m.DCacheBytes) / float64(workingSet)
		memNS = m.MemFastNS + (m.MemSlowNS-m.MemFastNS)*spill
	}
	ns := m.StubFixedNS + float64(c.Ops)*opNS + float64(c.Calls)*m.CallNS + float64(c.MemBytes)*memNS
	return ns / 1e6
}

// WireMS models one message traversal: syscall, kernel copies, latency,
// and serialization delay. At M megabits per second one byte serializes
// in 8000/M nanoseconds.
func (m Model) WireMS(msgBytes int) float64 {
	serializationNS := float64(msgBytes) * 8000 / m.Mbps
	total := m.SyscallNS + m.LatencyNS + float64(msgBytes)*m.KernelNSPerByte + serializationNS
	return total / 1e6
}

// BzeroMS models clearing an n-byte receive buffer.
func (m Model) BzeroMS(n int) float64 { return float64(n) * m.BzeroNSPerByte / 1e6 }
