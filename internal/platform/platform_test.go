package platform

import (
	"testing"

	"specrpc/internal/vm"
)

func TestCPUTimeScalesWithCost(t *testing.T) {
	m := PC()
	small := m.CPUTimeMS(vm.Cost{Ops: 100, Calls: 10, MemBytes: 100}, 1024, 1024)
	big := m.CPUTimeMS(vm.Cost{Ops: 1000, Calls: 100, MemBytes: 1000}, 1024, 1024)
	if big <= small {
		t.Fatalf("cost scaling broken: %f <= %f", big, small)
	}
}

func TestDCacheKnee(t *testing.T) {
	m := IPX()
	c := vm.Cost{Ops: 1000, MemBytes: 10000}
	inCache := m.CPUTimeMS(c, m.DCacheBytes/2, 1024)
	outCache := m.CPUTimeMS(c, m.DCacheBytes*8, 1024)
	if outCache <= inCache {
		t.Fatalf("no cache penalty: %f <= %f", outCache, inCache)
	}
}

func TestICachePenalty(t *testing.T) {
	m := PC()
	c := vm.Cost{Ops: 10000}
	smallCode := m.CPUTimeMS(c, 1024, m.ICacheBytes/2)
	bigCode := m.CPUTimeMS(c, 1024, m.ICacheBytes*20)
	if bigCode <= smallCode {
		t.Fatalf("no i-cache penalty: %f <= %f", bigCode, smallCode)
	}
}

func TestWireScalesWithBytes(t *testing.T) {
	for _, m := range Both() {
		small := m.WireMS(100)
		big := m.WireMS(10000)
		if big <= small {
			t.Fatalf("%s: wire scaling broken", m.Name)
		}
		// Latency floor: even one byte costs at least the fixed terms.
		if m.WireMS(1) < (m.SyscallNS+m.LatencyNS)/1e6 {
			t.Fatalf("%s: missing latency floor", m.Name)
		}
	}
}

func TestPlatformContrast(t *testing.T) {
	// The PC is strictly faster per operation and has a lighter stack;
	// the IPX has the higher wire latency. These orderings are what the
	// figures rely on.
	ipx, pc := IPX(), PC()
	if pc.OpNS >= ipx.OpNS {
		t.Fatal("PC should have a faster CPU")
	}
	if pc.WireMS(1000) >= ipx.WireMS(1000) {
		t.Fatal("PC stack should be lighter")
	}
}

func TestBzero(t *testing.T) {
	m := IPX()
	if m.BzeroMS(0) != 0 || m.BzeroMS(1000) <= 0 {
		t.Fatal("bzero model broken")
	}
}
