package batchio

import (
	"fmt"
	"net"
	"testing"
	"time"
)

// udpPair returns two kernel UDP sockets on the loopback.
func udpPair(t *testing.T) (a, b net.PacketConn) {
	t.Helper()
	mk := func() net.PacketConn {
		pc, err := net.ListenPacket("udp4", "127.0.0.1:0")
		if err != nil {
			t.Skipf("no loopback UDP: %v", err)
		}
		t.Cleanup(func() { pc.Close() })
		return pc
	}
	return mk(), mk()
}

// TestRoundTrip pushes a burst through WriteBatch and reads it back with
// ReadBatch on whichever path the platform engages, checking payloads
// and source addresses survive and the counters stay consistent.
func TestRoundTrip(t *testing.T) {
	for _, batch := range []int{1, 8} {
		t.Run(fmt.Sprintf("batch%d", batch), func(t *testing.T) {
			a, b := udpPair(t)
			ca, cb := New(a, batch), New(b, batch)
			t.Logf("batched: a=%v b=%v", ca.Batched(), cb.Batched())

			const total = 16
			out := make([]Message, total)
			for i := range out {
				out[i].Buf = []byte(fmt.Sprintf("datagram-%02d", i))
				out[i].Addr = b.LocalAddr()
			}
			if err := ca.WriteBatch(out); err != nil {
				t.Fatalf("WriteBatch: %v", err)
			}
			if got := ca.Stats().WriteMsgs.Load(); got != total {
				t.Fatalf("WriteMsgs = %d, want %d", got, total)
			}
			if batch == 1 && ca.Stats().WriteCalls.Load() != total {
				t.Fatalf("portable path: WriteCalls = %d, want %d", ca.Stats().WriteCalls.Load(), total)
			}

			b.SetReadDeadline(time.Now().Add(5 * time.Second))
			seen := make(map[string]bool)
			in := make([]Message, batch)
			for len(seen) < total {
				for i := range in {
					in[i].Buf = make([]byte, 64)
				}
				n, err := cb.ReadBatch(in)
				if err != nil {
					t.Fatalf("ReadBatch after %d msgs: %v", len(seen), err)
				}
				for i := 0; i < n; i++ {
					seen[string(in[i].Buf[:in[i].N])] = true
					ua, ok := in[i].Addr.(*net.UDPAddr)
					if !ok || ua.Port != a.LocalAddr().(*net.UDPAddr).Port {
						t.Fatalf("message %d: source addr %v, want %v", i, in[i].Addr, a.LocalAddr())
					}
				}
			}
			if got := cb.Stats().ReadMsgs.Load(); got != total {
				t.Fatalf("ReadMsgs = %d, want %d", got, total)
			}
			if cb.Stats().ReadCalls.Load() > cb.Stats().ReadMsgs.Load() {
				t.Fatalf("ReadCalls %d exceeds ReadMsgs %d", cb.Stats().ReadCalls.Load(), cb.Stats().ReadMsgs.Load())
			}
		})
	}
}

// TestSenderCoalesces drives the group-commit sender from one goroutine
// (the degenerate case: every Send flushes immediately) and checks all
// datagrams arrive intact.
func TestSenderCoalesces(t *testing.T) {
	a, b := udpPair(t)
	ca := New(a, 8)
	pool := func(n int) *[]byte { buf := make([]byte, 0, n); return &buf }
	s := NewSender(ca, pool, func(*[]byte) {})
	const total = 12
	for i := 0; i < total; i++ {
		s.Send(b.LocalAddr(), []byte(fmt.Sprintf("reply-%02d", i)))
	}
	b.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	seen := make(map[string]bool)
	for len(seen) < total {
		n, _, err := b.ReadFrom(buf)
		if err != nil {
			t.Fatalf("after %d: %v", len(seen), err)
		}
		seen[string(buf[:n])] = true
	}
}

// TestPortableFallbackShim: a wrapped conn (not *net.UDPConn) must stay
// on the portable path even with batch > 1 — this is what keeps counter
// shims honest in the benchmarks.
func TestPortableFallbackShim(t *testing.T) {
	a, _ := udpPair(t)
	c := New(shimConn{a}, 8)
	if c.Batched() {
		t.Fatal("wrapped conn engaged the mmsg path")
	}
}

type shimConn struct{ net.PacketConn }
