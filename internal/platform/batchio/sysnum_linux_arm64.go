//go:build linux && arm64

package batchio

// The frozen syscall package predates sendmmsg (kernel 3.0), so the
// numbers are pinned here per architecture.
const (
	sysRecvmmsg uintptr = 243
	sysSendmmsg uintptr = 269
)
