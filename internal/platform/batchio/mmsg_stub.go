//go:build !linux || !(amd64 || arm64)

package batchio

import "net"

// mmsgConn is absent on platforms without recvmmsg/sendmmsg (or where
// this module has not wired their syscall numbers); every Conn stays on
// the portable one-datagram-per-syscall path.
type mmsgConn struct{}

func newMMsg(net.PacketConn, int, *Stats) *mmsgConn { return nil }

func (*mmsgConn) readBatch([]Message) (int, error) {
	panic("batchio: mmsg path invoked on a non-mmsg platform")
}

func (*mmsgConn) writeBatch([]Message) error {
	panic("batchio: mmsg path invoked on a non-mmsg platform")
}
