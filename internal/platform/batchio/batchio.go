// Package batchio is the datagram syscall-amortization layer: it moves
// several UDP messages per kernel crossing where the platform allows it
// (recvmmsg/sendmmsg on Linux, see mmsg_linux.go) and degrades to the
// exact one-datagram-per-syscall behavior of net.PacketConn everywhere
// else. The bytes on the wire are identical on both paths — only the
// syscall boundaries move — and atomic counters record calls and
// messages so benchmarks can report syscalls/op from counts, not
// timing. See DESIGN.md, "Batching & flush policy".
package batchio

import (
	"net"
	"sync"
	"sync/atomic"
)

// Message is one datagram moving through a batch. On reads Buf is the
// receive buffer and N/Addr report what arrived; on writes Buf is the
// complete datagram (N is ignored) and Addr the destination.
type Message struct {
	Buf  []byte
	N    int
	Addr net.Addr
}

// Stats counts syscalls and the messages they moved. Calls==Msgs means
// no amortization (the portable path); Msgs/Calls is the measured batch
// factor.
type Stats struct {
	ReadCalls, ReadMsgs   atomic.Uint64
	WriteCalls, WriteMsgs atomic.Uint64
}

// Conn wraps a PacketConn for batched datagram I/O, moving at most
// batch messages per syscall. The mmsg fast path engages only when
// batch > 1 and the platform and socket support it (Batched reports
// which); otherwise every operation maps to exactly one ReadFrom or
// WriteTo, so a Conn with batch 1 is the measurable baseline running
// the pre-batching code path.
type Conn struct {
	pc    net.PacketConn
	batch int
	stats Stats
	mm    *mmsgConn // nil on the portable path
}

// New wraps pc. batch < 1 is treated as 1.
func New(pc net.PacketConn, batch int) *Conn {
	if batch < 1 {
		batch = 1
	}
	c := &Conn{pc: pc, batch: batch}
	if batch > 1 {
		c.mm = newMMsg(pc, batch, &c.stats)
	}
	return c
}

// Batch reports the configured messages-per-syscall bound.
func (c *Conn) Batch() int { return c.batch }

// Batched reports whether the multi-message kernel path is active.
func (c *Conn) Batched() bool { return c.mm != nil }

// Stats exposes the live counters.
func (c *Conn) Stats() *Stats { return &c.stats }

// ReadBatch fills msgs with received datagrams and returns how many
// arrived. Each msgs[i].Buf must be a ready receive buffer; N and Addr
// are set per message. On the portable path exactly one datagram is
// read per call — the same blocking single-recvfrom the pre-batching
// read loop performed — so a caller's loop works identically on both
// paths, just with different arrival counts.
func (c *Conn) ReadBatch(msgs []Message) (int, error) {
	if len(msgs) == 0 {
		return 0, nil
	}
	if c.mm != nil {
		return c.mm.readBatch(msgs)
	}
	m := &msgs[0]
	n, addr, err := c.pc.ReadFrom(m.Buf)
	if err != nil {
		return 0, err
	}
	m.N, m.Addr = n, addr
	c.stats.ReadCalls.Add(1)
	c.stats.ReadMsgs.Add(1)
	return 1, nil
}

// WriteBatch sends every message. On the portable path each message is
// one WriteTo; the mmsg path moves up to Batch of them per sendmmsg.
// The first send error is returned, with later messages unsent — the
// caller treats errors exactly as it treated WriteTo's (datagram reply
// errors are dropped, the client retransmits).
func (c *Conn) WriteBatch(msgs []Message) error {
	if c.mm != nil {
		return c.mm.writeBatch(msgs)
	}
	for i := range msgs {
		if _, err := c.pc.WriteTo(msgs[i].Buf, msgs[i].Addr); err != nil {
			return err
		}
		c.stats.WriteCalls.Add(1)
		c.stats.WriteMsgs.Add(1)
	}
	return nil
}

// WriteTo sends one datagram directly, counted like any other write —
// the baseline reply path when batching is off.
func (c *Conn) WriteTo(b []byte, to net.Addr) {
	if _, err := c.pc.WriteTo(b, to); err != nil {
		return
	}
	c.stats.WriteCalls.Add(1)
	c.stats.WriteMsgs.Add(1)
}

// Sender coalesces reply datagrams by group commit, mirroring
// xdr.RecBatcher on the stream side: the first sender to find no flush
// in progress becomes the leader and drains the queue through
// WriteBatch outside the lock; replies handed in while the leader is
// inside the syscall leave on its next iteration. Under concurrent
// workers many replies leave per sendmmsg; an uncontended Send flushes
// immediately, so batching never adds latency.
//
// Each message is copied into a buffer from the acquire/release pool at
// Send time, so callers keep ownership of msg — the copy is what lets a
// worker's pooled reply buffer recycle immediately while the datagram
// waits in the queue. Send errors are dropped, exactly as the direct
// WriteTo path dropped them: datagram clients retransmit.
type Sender struct {
	c       *Conn
	acquire func(n int) *[]byte
	release func(*[]byte)

	mu       sync.Mutex
	pend     []Message
	bufs     []*[]byte
	flushing bool
}

// NewSender returns a group-commit sender over c using the given buffer
// pool (typically xdr.GetBuf/xdr.PutBuf).
func NewSender(c *Conn, acquire func(n int) *[]byte, release func(*[]byte)) *Sender {
	return &Sender{c: c, acquire: acquire, release: release}
}

// Send queues one reply datagram and ensures a flush is running; the
// caller keeps ownership of msg.
func (s *Sender) Send(to net.Addr, msg []byte) {
	bp := s.acquire(len(msg))
	buf := append((*bp)[:0], msg...)
	*bp = buf
	s.mu.Lock()
	s.pend = append(s.pend, Message{Buf: buf, Addr: to})
	s.bufs = append(s.bufs, bp)
	if s.flushing {
		s.mu.Unlock()
		return
	}
	s.flushing = true
	for len(s.pend) > 0 {
		batch, bufs := s.pend, s.bufs
		if len(batch) > s.c.batch {
			batch, bufs = batch[:s.c.batch], bufs[:s.c.batch]
		}
		s.pend = s.pend[len(batch):]
		s.bufs = s.bufs[len(bufs):]
		if len(s.pend) == 0 {
			s.pend, s.bufs = nil, nil // release the consumed backing arrays
		}
		s.mu.Unlock()
		_ = s.c.WriteBatch(batch)
		for _, bp := range bufs {
			s.release(bp)
		}
		s.mu.Lock()
	}
	s.flushing = false
	s.mu.Unlock()
}
