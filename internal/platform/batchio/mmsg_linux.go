//go:build linux && (amd64 || arm64)

package batchio

// The recvmmsg/sendmmsg fast path. golang.org/x/net wraps these
// syscalls as ipv4.PacketConn.ReadBatch/WriteBatch, but this module is
// deliberately dependency-free, so the same two syscalls are issued
// directly through syscall.RawConn: the runtime's network poller still
// owns readiness (MSG_DONTWAIT plus RawConn's wait-for-ready loop), so
// blocking behavior, deadline handling on close, and goroutine
// scheduling are unchanged — only the number of messages moved per
// kernel crossing grows.

import (
	"net"
	"sync"
	"syscall"
	"unsafe"
)

// mmsghdr mirrors struct mmsghdr: a msghdr plus the kernel-filled
// received length, padded to 8 bytes on LP64.
type mmsghdr struct {
	hdr  syscall.Msghdr
	nlen uint32
	_    [4]byte
}

type mmsgConn struct {
	pc    net.PacketConn
	rc    syscall.RawConn
	stats *Stats
	v6    bool // socket family: chooses the sockaddr written for sends

	rmu  sync.Mutex
	rhs  []mmsghdr
	riov []syscall.Iovec
	rsa  []syscall.RawSockaddrAny

	wmu  sync.Mutex
	whs  []mmsghdr
	wiov []syscall.Iovec
	wsa4 []syscall.RawSockaddrInet4
	wsa6 []syscall.RawSockaddrInet6
}

// newMMsg probes pc for the multi-message path: a kernel UDP socket
// exposing its file descriptor. Anything else — in-process simulators,
// test shims, wrapped conns — reports nil and the caller stays on the
// portable path.
func newMMsg(pc net.PacketConn, batch int, stats *Stats) *mmsgConn {
	u, ok := pc.(*net.UDPConn)
	if !ok {
		return nil
	}
	rc, err := u.SyscallConn()
	if err != nil {
		return nil
	}
	m := &mmsgConn{
		pc: pc, rc: rc, stats: stats,
		rhs:  make([]mmsghdr, batch),
		riov: make([]syscall.Iovec, batch),
		rsa:  make([]syscall.RawSockaddrAny, batch),
		whs:  make([]mmsghdr, batch),
		wiov: make([]syscall.Iovec, batch),
		wsa4: make([]syscall.RawSockaddrInet4, batch),
		wsa6: make([]syscall.RawSockaddrInet6, batch),
	}
	if la, ok := u.LocalAddr().(*net.UDPAddr); ok && la.IP.To4() == nil {
		m.v6 = true
	}
	return m
}

func (m *mmsgConn) readBatch(msgs []Message) (int, error) {
	m.rmu.Lock()
	defer m.rmu.Unlock()
	n := len(msgs)
	if n > len(m.rhs) {
		n = len(m.rhs)
	}
	for i := 0; i < n; i++ {
		m.riov[i].Base = &msgs[i].Buf[0]
		m.riov[i].Len = uint64(len(msgs[i].Buf))
		m.rhs[i] = mmsghdr{}
		m.rhs[i].hdr.Name = (*byte)(unsafe.Pointer(&m.rsa[i]))
		m.rhs[i].hdr.Namelen = uint32(syscall.SizeofSockaddrAny)
		m.rhs[i].hdr.Iov = &m.riov[i]
		m.rhs[i].hdr.Iovlen = 1
	}
	var got int
	var sysErr error
	err := m.rc.Read(func(fd uintptr) bool {
		r1, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
			uintptr(unsafe.Pointer(&m.rhs[0])), uintptr(n),
			uintptr(syscall.MSG_DONTWAIT), 0, 0)
		switch errno {
		case syscall.EAGAIN, syscall.EINTR:
			return false // let the poller wait for readability
		case 0:
			got = int(r1)
			m.stats.ReadCalls.Add(1)
			m.stats.ReadMsgs.Add(uint64(got))
			return true
		default:
			sysErr = errno
			return true
		}
	})
	if err != nil {
		return 0, err // poller error: the socket was closed
	}
	if sysErr != nil {
		return 0, sysErr
	}
	for i := 0; i < got; i++ {
		msgs[i].N = int(m.rhs[i].nlen)
		msgs[i].Addr = sockaddrToUDP(&m.rsa[i])
	}
	return got, nil
}

func (m *mmsgConn) writeBatch(msgs []Message) error {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	for off := 0; off < len(msgs); {
		n := len(msgs) - off
		if n > len(m.whs) {
			n = len(m.whs)
		}
		batch := msgs[off : off+n]
		k := 0
		for i := range batch {
			if !m.setName(k, batch[i].Addr) {
				// An address the raw path cannot encode: send this one
				// message through the conn's own WriteTo instead. Reads on
				// this socket never produce such an address, so this is a
				// defensive path, not a hot one.
				m.mu2one(&batch[i])
				continue
			}
			m.wiov[k].Base = &batch[i].Buf[0]
			m.wiov[k].Len = uint64(len(batch[i].Buf))
			m.whs[k].hdr.Iov = &m.wiov[k]
			m.whs[k].hdr.Iovlen = 1
			m.whs[k].nlen = 0
			k++
		}
		n = k
		sent := 0
		for sent < n {
			var wrote int
			var sysErr error
			err := m.rc.Write(func(fd uintptr) bool {
				r1, _, errno := syscall.Syscall6(sysSendmmsg, fd,
					uintptr(unsafe.Pointer(&m.whs[sent])), uintptr(n-sent),
					uintptr(syscall.MSG_DONTWAIT), 0, 0)
				switch errno {
				case syscall.EAGAIN, syscall.EINTR:
					return false // let the poller wait for writability
				case 0:
					wrote = int(r1)
					m.stats.WriteCalls.Add(1)
					m.stats.WriteMsgs.Add(uint64(wrote))
					return true
				default:
					sysErr = errno
					return true
				}
			})
			if err != nil {
				return err
			}
			if sysErr != nil {
				return sysErr
			}
			if wrote == 0 {
				break // defensive: a zero-progress success cannot loop forever
			}
			sent += wrote
		}
		off += n
	}
	return nil
}

// mu2one sends one message through the portable path (used only for
// addresses the raw sockaddr encoding rejects, which reads on this
// socket never produce).
func (m *mmsgConn) mu2one(msg *Message) {
	if _, err := m.pc.WriteTo(msg.Buf, msg.Addr); err != nil {
		return
	}
	m.stats.WriteCalls.Add(1)
	m.stats.WriteMsgs.Add(1)
}

// setName encodes batch destination i into the preallocated sockaddr
// matching the socket's family.
func (m *mmsgConn) setName(i int, a net.Addr) bool {
	u, ok := a.(*net.UDPAddr)
	if !ok {
		return false
	}
	if m.v6 {
		ip := u.IP.To16()
		if ip == nil {
			return false
		}
		sa := &m.wsa6[i]
		*sa = syscall.RawSockaddrInet6{Family: syscall.AF_INET6}
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		p[0], p[1] = byte(u.Port>>8), byte(u.Port)
		copy(sa.Addr[:], ip)
		m.whs[i].hdr.Name = (*byte)(unsafe.Pointer(sa))
		m.whs[i].hdr.Namelen = syscall.SizeofSockaddrInet6
		return true
	}
	ip := u.IP.To4()
	if ip == nil {
		return false
	}
	sa := &m.wsa4[i]
	*sa = syscall.RawSockaddrInet4{Family: syscall.AF_INET}
	p := (*[2]byte)(unsafe.Pointer(&sa.Port))
	p[0], p[1] = byte(u.Port>>8), byte(u.Port)
	copy(sa.Addr[:], ip)
	m.whs[i].hdr.Name = (*byte)(unsafe.Pointer(sa))
	m.whs[i].hdr.Namelen = syscall.SizeofSockaddrInet4
	return true
}

// sockaddrToUDP decodes a kernel-filled sockaddr. The address bytes are
// copied out because the sockaddr buffer is reused by the next batch.
func sockaddrToUDP(rsa *syscall.RawSockaddrAny) net.Addr {
	switch rsa.Addr.Family {
	case syscall.AF_INET:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(rsa))
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		ip := make(net.IP, net.IPv4len)
		copy(ip, sa.Addr[:])
		return &net.UDPAddr{IP: ip, Port: int(p[0])<<8 | int(p[1])}
	case syscall.AF_INET6:
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(rsa))
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		ip := make(net.IP, net.IPv6len)
		copy(ip, sa.Addr[:])
		return &net.UDPAddr{IP: ip, Port: int(p[0])<<8 | int(p[1])}
	}
	return nil
}
