//go:build linux && amd64

package batchio

// The frozen syscall package predates sendmmsg (kernel 3.0), so the
// numbers are pinned here per architecture.
const (
	sysRecvmmsg uintptr = 299
	sysSendmmsg uintptr = 307
)
