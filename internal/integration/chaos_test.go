// Chaos suite: seeded fault schedules over the simulated network, real
// UDP, and real TCP, asserting the invariants the fault-tolerance layer
// exists to keep. Every test pins some combination of:
//
//   - exactly-once acknowledged effects: a call the client reports
//     successful executed exactly once on the server (duplicates and
//     retransmissions are absorbed by the in-flight claim and the
//     duplicate-reply cache);
//   - no leaks: cancelled and expired calls release their demux reply
//     slot and leave nothing in the batcher queue;
//   - convergence: after a partition heals or a connection is torn down
//     mid-call, the client recovers and later calls succeed.
//
// Two schedule families: the strict-accounting schedules inject loss,
// duplication, reordering, jitter, partitions, and connection faults —
// everything that at-most-once must absorb; the liveness schedule adds
// byte corruption, which ONC RPC cannot detect (no checksum below the
// transport), so there the assertion is progress, not accounting.
package integration

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"specrpc/internal/client"
	"specrpc/internal/faultconn"
	"specrpc/internal/netsim"
	"specrpc/internal/server"
	"specrpc/internal/xdr"
)

const procEffect = uint32(3)

// effectLog counts executions per effect ID — the server-side ground
// truth the exactly-once assertions check against.
type effectLog struct {
	mu    sync.Mutex
	execs map[int64]int
}

func (l *effectLog) bump(id int64) {
	l.mu.Lock()
	l.execs[id]++
	l.mu.Unlock()
}

func (l *effectLog) count(id int64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.execs[id]
}

func (l *effectLog) maxCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	max := 0
	for _, c := range l.execs {
		if c > max {
			max = c
		}
	}
	return max
}

// newEffectServer registers procEffect: bump the per-ID execution
// counter, echo the ID back.
func newEffectServer(opts ...server.Option) (*server.Server, *effectLog) {
	log := &effectLog{execs: make(map[int64]int)}
	s := server.New(opts...)
	s.Register(prog, vers, procEffect, func(dec *xdr.XDR) (server.Marshal, error) {
		var id int64
		if err := dec.Hyper(&id); err != nil {
			return nil, errors.Join(server.ErrGarbageArgs, err)
		}
		log.bump(id)
		return func(enc *xdr.XDR) error { return enc.Hyper(&id) }, nil
	})
	return s, log
}

func effectArgs(id *int64) client.Marshal {
	return func(x *xdr.XDR) error { return x.Hyper(id) }
}

// chaosPolicy is the aggressive-but-budgetless retry policy the sim
// schedules run under: fast retransmits so tests finish quickly, no
// budget so the loss schedule can't starve the tail of a run.
func chaosPolicy() *client.RetryPolicy {
	return &client.RetryPolicy{
		MaxAttempts: 8,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    40 * time.Millisecond,
		BudgetRate:  -1,
	}
}

// TestChaosSimLossDupReorder: strict accounting under the full datagram
// fault mix (loss + duplication + reordering + jitter, both directions,
// seeded). Every acknowledged call must have executed exactly once, the
// schedule must actually have injected faults, and the client must have
// retransmitted through them.
func TestChaosSimLossDupReorder(t *testing.T) {
	n := netsim.New(netsim.WithSeed(42))
	n.SetLink("", "", netsim.LinkFaults{
		Loss: 0.15, Dup: 0.2, Reorder: 0.2, JitterMax: 2 * time.Millisecond,
	})
	s, log := newEffectServer(server.WithCacheSize(4096))
	ep := n.Attach("server")
	go func() { _ = s.ServeUDP(ep) }()
	defer s.Close()

	c := client.NewUDP(n.Attach("chaos"), netsim.Addr("server"), client.Config{
		Prog: prog, Vers: vers, FirstXID: 9000,
		Timeout: 2 * time.Second,
		Retry:   chaosPolicy(),
	})
	defer c.Close()

	const calls = 200
	acked := 0
	for i := 0; i < calls; i++ {
		id := int64(i)
		var out int64
		if err := c.CallCtx(context.Background(), procEffect, effectArgs(&id), effectArgs(&out)); err != nil {
			continue
		}
		acked++
		if out != id {
			t.Fatalf("call %d: echoed id %d", i, out)
		}
		if got := log.count(id); got != 1 {
			t.Fatalf("acknowledged call %d executed %d times, want exactly 1", i, got)
		}
	}
	if acked < calls*9/10 {
		t.Fatalf("only %d/%d calls acknowledged under 15%% loss with 8 attempts", acked, calls)
	}
	if got := log.maxCount(); got > 1 {
		t.Fatalf("some call executed %d times", got)
	}
	fs := n.FaultStats()
	if fs.Dropped == 0 || fs.Duplicated == 0 || fs.Reordered == 0 {
		t.Fatalf("fault schedule did not fire: %+v", fs)
	}
	if rs := c.RetryStats(); rs.Retransmits == 0 {
		t.Fatalf("no retransmissions under 15%% loss: %+v", rs)
	}
	if s.CacheHits() == 0 {
		t.Fatal("no reply-cache hits: duplicates/retransmits were never absorbed from cache")
	}
	if got := c.InFlight(); got != 0 {
		t.Fatalf("%d reply slots leaked", got)
	}
}

// TestChaosAtMostOnceDuplicateAllReorder: the satellite schedule —
// every packet duplicated, replies lossy and reordered — with the
// server-side execution counter proving zero double executions and the
// reply cache actually serving the duplicates.
func TestChaosAtMostOnceDuplicateAllReorder(t *testing.T) {
	n := netsim.New(netsim.WithSeed(7), netsim.WithFaults(netsim.DuplicateAll()))
	// Reply direction: lossy and reordered. Dropped replies force
	// retransmissions of already-executed calls, which must be answered
	// from the duplicate-reply cache, never re-executed.
	n.SetLink("server", "", netsim.LinkFaults{
		Loss: 0.3, Reorder: 0.3, JitterMax: time.Millisecond,
	})
	s, log := newEffectServer(server.WithCacheSize(1024))
	ep := n.Attach("server")
	go func() { _ = s.ServeUDP(ep) }()
	defer s.Close()

	c := client.NewUDP(n.Attach("dup"), netsim.Addr("server"), client.Config{
		Prog: prog, Vers: vers, FirstXID: 5000,
		Timeout: 2 * time.Second,
		Retry:   chaosPolicy(),
	})
	defer c.Close()

	const calls = 100
	for i := 0; i < calls; i++ {
		id := int64(1000 + i)
		var out int64
		if err := c.CallCtx(context.Background(), procEffect, effectArgs(&id), effectArgs(&out)); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got := log.count(id); got != 1 {
			t.Fatalf("call %d executed %d times, want exactly 1", i, got)
		}
	}
	if got := log.maxCount(); got != 1 {
		t.Fatalf("max executions per call = %d, want 1", got)
	}
	if s.CacheHits() == 0 {
		t.Fatal("no reply-cache hits under duplicated requests and 30%% reply loss")
	}
}

// TestChaosPartitionHeal: a directional partition black-holes the
// request direction mid-call; after it heals, the in-flight call's
// retransmission schedule converges without re-execution.
func TestChaosPartitionHeal(t *testing.T) {
	n := netsim.New(netsim.WithSeed(3))
	s, log := newEffectServer(server.WithCacheSize(256))
	ep := n.Attach("server")
	go func() { _ = s.ServeUDP(ep) }()
	defer s.Close()

	// A persistent schedule: the partition outlives a short attempt
	// budget, so this client keeps retransmitting until the heal.
	c := client.NewUDP(n.Attach("part"), netsim.Addr("server"), client.Config{
		Prog: prog, Vers: vers, FirstXID: 100,
		Timeout: 5 * time.Second,
		Retry: &client.RetryPolicy{
			MaxAttempts: 1000,
			BaseDelay:   10 * time.Millisecond,
			MaxDelay:    20 * time.Millisecond,
			BudgetRate:  -1,
		},
	})
	defer c.Close()

	// Phase 1: cut the request direction, launch a call into the hole,
	// heal while it is still retrying.
	n.Partition("part", "server")
	done := make(chan error, 1)
	id := int64(777)
	var out int64
	go func() {
		done <- c.CallCtx(context.Background(), procEffect, effectArgs(&id), effectArgs(&out))
	}()
	time.Sleep(60 * time.Millisecond)
	n.Heal("part", "server")
	if err := <-done; err != nil {
		t.Fatalf("call across heal: %v", err)
	}
	if out != id || log.count(id) != 1 {
		t.Fatalf("converged call: out=%d execs=%d", out, log.count(id))
	}
	if fs := n.FaultStats(); fs.Partitioned == 0 {
		t.Fatalf("partition never dropped a packet: %+v", fs)
	}

	// Phase 2: cut the reply direction instead — the call executes on
	// the first attempt, the reply is black-holed, and after heal the
	// retransmission must be served from the reply cache, not re-run.
	n.Partition("server", "part")
	id2 := int64(778)
	go func() {
		done <- c.CallCtx(context.Background(), procEffect, effectArgs(&id2), effectArgs(&out))
	}()
	time.Sleep(60 * time.Millisecond)
	n.Heal("server", "part")
	if err := <-done; err != nil {
		t.Fatalf("call across reply-side heal: %v", err)
	}
	if log.count(id2) != 1 {
		t.Fatalf("reply-partitioned call executed %d times, want 1", log.count(id2))
	}
}

// TestChaosCorruptionLiveness: the robustness schedule — corrupted
// bytes on top of loss. ONC RPC carries no checksum, so corruption can
// surface as ill-formed replies, misrouted XIDs, or garbage arguments;
// the assertion here is liveness (the client keeps making progress and
// cleans up), not per-ID accounting.
func TestChaosCorruptionLiveness(t *testing.T) {
	n := netsim.New(netsim.WithSeed(13))
	n.SetLink("", "", netsim.LinkFaults{Loss: 0.1, Corrupt: 0.2, JitterMax: time.Millisecond})
	s, _ := newEffectServer(server.WithCacheSize(256))
	ep := n.Attach("server")
	go func() { _ = s.ServeUDP(ep) }()
	defer s.Close()

	c := client.NewUDP(n.Attach("corrupt"), netsim.Addr("server"), client.Config{
		Prog: prog, Vers: vers, FirstXID: 300,
		Timeout: 2 * time.Second,
		Retry:   chaosPolicy(),
	})
	defer c.Close()

	const calls = 100
	ok := 0
	for i := 0; i < calls; i++ {
		id := int64(40000 + i)
		var out int64
		if err := c.CallCtx(context.Background(), procEffect, effectArgs(&id), effectArgs(&out)); err == nil {
			ok++
		}
	}
	if ok < calls/2 {
		t.Fatalf("only %d/%d calls made progress under corruption", ok, calls)
	}
	if fs := n.FaultStats(); fs.Corrupted == 0 {
		t.Fatalf("corruption never fired: %+v", fs)
	}
	if got := c.InFlight(); got != 0 {
		t.Fatalf("%d reply slots leaked", got)
	}
}

// TestChaosCancelNoLeaksUDP: calls cancelled while black-holed must
// return promptly with the context error and leave no demux slots
// behind.
func TestChaosCancelNoLeaksUDP(t *testing.T) {
	n := netsim.New()
	n.Partition("", "server") // permanent black hole
	s, _ := newEffectServer()
	ep := n.Attach("server")
	go func() { _ = s.ServeUDP(ep) }()
	defer s.Close()

	c := client.NewUDP(n.Attach("cancel"), netsim.Addr("server"), client.Config{
		Prog: prog, Vers: vers, FirstXID: 1,
		Timeout: 30 * time.Second, // the context, not the timeout, ends these calls
		Retry:   chaosPolicy(),
	})
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	const inflight = 8
	var wg sync.WaitGroup
	errs := make([]error, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			id := int64(k)
			errs[k] = c.CallCtx(ctx, procEffect, effectArgs(&id), effectArgs(&id))
		}(i)
	}
	time.Sleep(50 * time.Millisecond)
	if got := c.InFlight(); got != inflight {
		t.Fatalf("in-flight = %d before cancel, want %d", got, inflight)
	}
	start := time.Now()
	cancel()
	wg.Wait()
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("cancelled calls took %v to return", waited)
	}
	for k, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("call %d: err = %v, want context.Canceled", k, err)
		}
	}
	if got := c.InFlight(); got != 0 {
		t.Fatalf("%d reply slots leaked after cancel", got)
	}
}

// TestChaosCancelNoLeaksTCP: same invariant over a real TCP connection
// to a server that never replies — cancelled calls release their reply
// slots and strand nothing in the batcher queue.
func TestChaosCancelNoLeaksTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback TCP: %v", err)
	}
	defer ln.Close()
	go func() { // accept and read forever, reply never
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()

	c, err := client.DialTCP("tcp", ln.Addr().String(), client.Config{
		Prog: prog, Vers: vers,
		Timeout: 30 * time.Second,
		Retry:   chaosPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	const inflight = 8
	var wg sync.WaitGroup
	errs := make([]error, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			id := int64(k)
			errs[k] = c.CallCtx(ctx, procEffect, effectArgs(&id), effectArgs(&id))
		}(i)
	}
	time.Sleep(100 * time.Millisecond)
	if got := c.InFlight(); got != inflight {
		t.Fatalf("in-flight = %d before cancel, want %d", got, inflight)
	}
	cancel()
	wg.Wait()
	for k, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("call %d: err = %v, want context.Canceled", k, err)
		}
	}
	if got := c.InFlight(); got != 0 {
		t.Fatalf("%d reply slots leaked after cancel", got)
	}
	if got := c.QueuedRecords(); got != 0 {
		t.Fatalf("%d records stranded in the batcher queue", got)
	}
}

// TestChaosUDPLive: the strict-accounting schedule over real loopback
// UDP, with loss and duplication injected at the client socket by
// faultconn. Proves the retry machinery against actual kernel sockets.
func TestChaosUDPLive(t *testing.T) {
	s, log := newEffectServer(server.WithCacheSize(1024))
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	go func() { _ = s.ServeUDP(pc) }()
	defer s.Close()

	cconn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stats := &faultconn.Stats{}
	c := client.NewUDP(faultconn.WrapPacket(cconn, faultconn.Plan{
		Seed: 5, DropRate: 0.2, DupRate: 0.2,
	}, stats), pc.LocalAddr(), client.Config{
		Prog: prog, Vers: vers,
		Timeout: 2 * time.Second,
		Retry:   chaosPolicy(),
	})
	defer c.Close()

	const calls = 150
	acked := 0
	for i := 0; i < calls; i++ {
		id := int64(70000 + i)
		var out int64
		if err := c.CallCtx(context.Background(), procEffect, effectArgs(&id), effectArgs(&out)); err != nil {
			continue
		}
		acked++
		if out != id || log.count(id) != 1 {
			t.Fatalf("call %d: out=%d execs=%d", i, out, log.count(id))
		}
	}
	if acked < calls*9/10 {
		t.Fatalf("only %d/%d calls acknowledged", acked, calls)
	}
	if got := log.maxCount(); got > 1 {
		t.Fatalf("some call executed %d times", got)
	}
	if stats.Dropped.Load() == 0 || stats.Duplicated.Load() == 0 {
		t.Fatalf("socket faults never fired: dropped=%d dup=%d",
			stats.Dropped.Load(), stats.Duplicated.Load())
	}
}

// TestChaosTCPReconnect: real TCP through a fault-injecting listener
// that resets connections mid-stream and splits reply records across
// kernel writes. The client must reconnect transparently, acknowledged
// calls must have executed exactly once, and ambiguous failures must
// surface as TransportError rather than being silently replayed.
func TestChaosTCPReconnect(t *testing.T) {
	s, log := newEffectServer()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback TCP: %v", err)
	}
	stats := &faultconn.Stats{}
	fln := faultconn.WrapListener(ln, faultconn.Plan{
		Seed: 11, ResetRate: 0.05, SplitWrite: 0.25, ResetAfter: 3,
	}, stats)
	go func() { _ = s.ServeTCP(fln) }()
	defer s.Close()

	c, err := client.DialTCP("tcp", ln.Addr().String(), client.Config{
		Prog: prog, Vers: vers,
		Timeout: 2 * time.Second,
		Retry: &client.RetryPolicy{
			MaxAttempts: 5,
			BaseDelay:   2 * time.Millisecond,
			MaxDelay:    20 * time.Millisecond,
			BudgetRate:  -1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const calls = 300
	acked, ambiguous := 0, 0
	for i := 0; i < calls; i++ {
		id := int64(90000 + i)
		var out int64
		err := c.CallCtx(context.Background(), procEffect, effectArgs(&id), effectArgs(&out))
		if err != nil {
			var te *client.TransportError
			if errors.As(err, &te) {
				if !te.MaybeSent {
					t.Fatalf("call %d: not-sent failure leaked through the retry loop: %v", i, err)
				}
				ambiguous++
				continue
			}
			t.Fatalf("call %d: %v", i, err)
		}
		acked++
		if out != id {
			t.Fatalf("call %d: echoed %d", i, out)
		}
		if got := log.count(id); got != 1 {
			t.Fatalf("acknowledged call %d executed %d times, want exactly 1", i, got)
		}
	}
	if acked < calls/2 {
		t.Fatalf("only %d/%d calls acknowledged (%d ambiguous)", acked, calls, ambiguous)
	}
	rc := c.ReconnectStats()
	if rc.Reconnects == 0 {
		t.Fatalf("no reconnects despite %d injected resets", stats.Resets.Load())
	}
	if stats.Resets.Load() == 0 || stats.SplitWrites.Load() == 0 {
		t.Fatalf("connection faults never fired: %d resets, %d splits",
			stats.Resets.Load(), stats.SplitWrites.Load())
	}
	// The client must have converged: a clean closing call on the live
	// (possibly replacement) connection.
	id := int64(99999)
	var out int64
	if err := c.CallCtx(context.Background(), procEffect, effectArgs(&id), effectArgs(&out)); err != nil {
		t.Fatalf("post-chaos call: %v", err)
	}
	if out != id || log.count(id) != 1 {
		t.Fatalf("post-chaos call: out=%d execs=%d", out, log.count(id))
	}
}
