// Live round-trips for the fused whole-call path: typed procedures
// registered through RegisterTyped and called through CallTyped run the
// fused codecs end to end over netsim, real UDP loopback, and real TCP
// loopback — mixed freely with closure-based calls on the same
// connection, since both produce identical bytes.
package integration

import (
	"errors"
	"net"
	"testing"
	"time"

	"specrpc/internal/client"
	"specrpc/internal/netsim"
	"specrpc/internal/rpcmsg"
	"specrpc/internal/server"
	"specrpc/internal/wire"
)

const (
	typedProg    = uint32(0x20000042)
	typedVers    = uint32(1)
	procTypedRev = uint32(1)
	procTypedVer = uint32(2)
)

type revArgs struct {
	Tag  [4]byte
	Vals []int32
}

var (
	revArgsPlan = wire.MustPlan[revArgs](wire.StructT("rev_args",
		wire.F("tag", wire.OpaqueFixedT(4)),
		wire.F("vals", wire.VarArrayT(0, wire.Int32T())),
	), wire.Specialized)
	revResPlan = wire.MustPlan[[]int32](wire.VarArrayT(0, wire.Int32T()), wire.Specialized)
)

// newTypedServer registers a reverse procedure (mixed fixed and
// variable fields, so the fused image carries both a folded prefix and
// an instruction tail) and a failing procedure.
func newTypedServer() *server.Server {
	s := server.New()
	server.RegisterTyped(s, typedProg, typedVers, procTypedRev, revArgsPlan, revResPlan,
		func(arg *revArgs) (*[]int32, error) {
			if arg.Tag != [4]byte{'r', 'e', 'v', '!'} {
				return nil, errors.New("bad tag")
			}
			out := make([]int32, len(arg.Vals))
			for i, v := range arg.Vals {
				out[len(out)-1-i] = v
			}
			return &out, nil
		})
	server.RegisterTyped(s, typedProg, typedVers, procTypedVer, revArgsPlan, revResPlan,
		func(arg *revArgs) (*[]int32, error) { return nil, errors.New("always fails") })
	return s
}

func typedRoundTrip(t *testing.T, c client.Caller) {
	t.Helper()
	arg := revArgs{Tag: [4]byte{'r', 'e', 'v', '!'}, Vals: []int32{1, 2, 3, 4, 5}}
	var out []int32
	for i := 0; i < 5; i++ {
		if err := client.CallTyped(c, procTypedRev, revArgsPlan, &arg, revResPlan, &out); err != nil {
			t.Fatal(err)
		}
		if len(out) != 5 || out[0] != 5 || out[4] != 1 {
			t.Fatalf("bad reverse: %v", out)
		}
	}
	// Error outcomes keep their RFC detail through the fused path.
	err := client.CallTyped(c, procTypedVer, revArgsPlan, &arg, revResPlan, &out)
	var rpcErr *client.RPCError
	if !errors.As(err, &rpcErr) || rpcErr.AcceptStat != rpcmsg.SystemErr {
		t.Fatalf("failing proc: err = %v, want SYSTEM_ERR", err)
	}
	// A wrong tag is a handler error too, proving arguments decoded.
	bad := revArgs{Vals: []int32{1}}
	if err := client.CallTyped(c, procTypedRev, revArgsPlan, &bad, revResPlan, &out); !errors.As(err, &rpcErr) {
		t.Fatalf("bad tag: err = %v, want RPCError", err)
	}
}

func TestFusedSimRoundTrip(t *testing.T) {
	n := netsim.New()
	s := newTypedServer()
	sep := n.Attach("server")
	go func() { _ = s.ServeUDP(sep) }()
	defer s.Close()
	c := client.NewUDP(n.Attach("client"), netsim.Addr("server"),
		client.Config{Prog: typedProg, Vers: typedVers, Timeout: 5 * time.Second})
	defer c.Close()
	typedRoundTrip(t, c)
}

func TestFusedUDPRoundTrip(t *testing.T) {
	s := newTypedServer()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.ServeUDP(pc) }()
	defer s.Close()
	cc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := client.NewUDP(cc, pc.LocalAddr(),
		client.Config{Prog: typedProg, Vers: typedVers, Timeout: 5 * time.Second})
	defer c.Close()
	typedRoundTrip(t, c)
}

func TestFusedTCPRoundTrip(t *testing.T) {
	s := newTypedServer()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.ServeTCP(ln) }()
	defer s.Close()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := client.NewTCP(conn, client.Config{Prog: typedProg, Vers: typedVers, Timeout: 5 * time.Second})
	defer c.Close()
	typedRoundTrip(t, c)
}
