// Package integration exercises the full RPC stack — client, server,
// rpcmsg, xdr — over both the simulated network (with injected faults)
// and real loopback sockets.
package integration

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"specrpc/internal/client"
	"specrpc/internal/netsim"
	"specrpc/internal/rpcmsg"
	"specrpc/internal/server"
	"specrpc/internal/xdr"
)

const (
	prog     = uint32(0x20000001)
	vers     = uint32(1)
	procEcho = uint32(1)
	procSum  = uint32(2)
)

// newEchoServer registers an int32-array echo and a sum procedure and
// returns the server plus a counter of echo executions.
func newEchoServer(opts ...server.Option) (*server.Server, *atomic.Int32) {
	var execs atomic.Int32
	s := server.New(opts...)
	s.Register(prog, vers, procEcho, func(dec *xdr.XDR) (server.Marshal, error) {
		execs.Add(1)
		var arr []int32
		if err := xdr.Array(dec, &arr, xdr.NoSizeLimit, (*xdr.XDR).Long); err != nil {
			return nil, errors.Join(server.ErrGarbageArgs, err)
		}
		return func(enc *xdr.XDR) error {
			return xdr.Array(enc, &arr, xdr.NoSizeLimit, (*xdr.XDR).Long)
		}, nil
	})
	s.Register(prog, vers, procSum, func(dec *xdr.XDR) (server.Marshal, error) {
		var arr []int32
		if err := xdr.Array(dec, &arr, xdr.NoSizeLimit, (*xdr.XDR).Long); err != nil {
			return nil, errors.Join(server.ErrGarbageArgs, err)
		}
		var sum int32
		for _, v := range arr {
			sum += v
		}
		return func(enc *xdr.XDR) error { return enc.Long(&sum) }, nil
	})
	return s, &execs
}

func echoArgs(arr *[]int32) client.Marshal {
	return func(x *xdr.XDR) error {
		return xdr.Array(x, arr, xdr.NoSizeLimit, (*xdr.XDR).Long)
	}
}

// startSimServer runs the echo server on a netsim endpoint.
func startSimServer(t *testing.T, n *netsim.Network) (*server.Server, *atomic.Int32) {
	t.Helper()
	s, execs := newEchoServer()
	ep := n.Attach("server")
	go func() { _ = s.ServeUDP(ep) }()
	t.Cleanup(func() { _ = s.Close() })
	return s, execs
}

func simClient(n *netsim.Network, name string, cfg client.Config) *client.UDP {
	cfg.Prog, cfg.Vers = prog, vers
	if cfg.FirstXID == 0 {
		cfg.FirstXID = 1000
	}
	return client.NewUDP(n.Attach(netsim.Addr(name)), netsim.Addr("server"), cfg)
}

func TestSimEchoRoundTrip(t *testing.T) {
	n := netsim.New()
	startSimServer(t, n)
	c := simClient(n, "client", client.Config{Timeout: 2 * time.Second})
	defer c.Close()

	in := []int32{10, -20, 30}
	var out []int32
	if err := c.Call(procEcho, echoArgs(&in), echoArgs(&out)); err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0] != 10 || out[1] != -20 || out[2] != 30 {
		t.Fatalf("echo = %v", out)
	}
}

func TestSimSum(t *testing.T) {
	n := netsim.New()
	startSimServer(t, n)
	c := simClient(n, "client", client.Config{Timeout: 2 * time.Second})
	defer c.Close()

	in := []int32{1, 2, 3, 4}
	var sum int32
	err := c.Call(procSum, echoArgs(&in), func(x *xdr.XDR) error { return x.Long(&sum) })
	if err != nil {
		t.Fatal(err)
	}
	if sum != 10 {
		t.Fatalf("sum = %d, want 10", sum)
	}
}

func TestSimRetransmitOnRequestLoss(t *testing.T) {
	// Drop the first request; the client must retransmit and succeed,
	// and the handler must run exactly once.
	n := netsim.New(netsim.WithFaults(netsim.DropFirst(1)))
	_, execs := startSimServer(t, n)
	c := simClient(n, "client", client.Config{
		Timeout: 3 * time.Second, Retransmit: 30 * time.Millisecond,
	})
	defer c.Close()

	in := []int32{7}
	var out []int32
	if err := c.Call(procEcho, echoArgs(&in), echoArgs(&out)); err != nil {
		t.Fatal(err)
	}
	if out[0] != 7 {
		t.Fatalf("echo = %v", out)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("handler executed %d times, want 1", got)
	}
}

func TestSimReplyLossServedFromCache(t *testing.T) {
	// Packet 0 = request (delivered), packet 1 = reply (dropped).
	// The retransmitted request must be answered from the reply cache
	// without re-executing the handler: at-most-once per XID.
	n := netsim.New(netsim.WithFaults(netsim.DropSeq(1)))
	_, execs := startSimServer(t, n)
	c := simClient(n, "client", client.Config{
		Timeout: 3 * time.Second, Retransmit: 30 * time.Millisecond,
	})
	defer c.Close()

	in := []int32{1, 2}
	var out []int32
	if err := c.Call(procEcho, echoArgs(&in), echoArgs(&out)); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("echo = %v", out)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("handler executed %d times, want 1 (reply cache miss?)", got)
	}
}

func TestSimDuplicatedPackets(t *testing.T) {
	// Every packet duplicated: the duplicate request must not re-execute
	// the handler, and the duplicate reply must be ignored by XID logic.
	n := netsim.New(netsim.WithFaults(netsim.DuplicateAll()))
	_, execs := startSimServer(t, n)
	c := simClient(n, "client", client.Config{Timeout: 2 * time.Second})
	defer c.Close()

	in := []int32{5}
	var out []int32
	if err := c.Call(procEcho, echoArgs(&in), echoArgs(&out)); err != nil {
		t.Fatal(err)
	}
	// Give the duplicate a moment to be (not) processed.
	time.Sleep(20 * time.Millisecond)
	if got := execs.Load(); got != 1 {
		t.Fatalf("handler executed %d times, want 1", got)
	}
	// A second call must still work with stale duplicates around.
	in[0] = 6
	if err := c.Call(procEcho, echoArgs(&in), echoArgs(&out)); err != nil {
		t.Fatal(err)
	}
	if out[0] != 6 {
		t.Fatalf("echo = %v", out)
	}
}

func TestSimTimeout(t *testing.T) {
	n := netsim.New(netsim.WithFaults(func(_, _ net.Addr, _ int, _ []byte) netsim.Verdict {
		return netsim.Drop // black hole
	}))
	startSimServer(t, n)
	c := simClient(n, "client", client.Config{
		Timeout: 100 * time.Millisecond, Retransmit: 20 * time.Millisecond,
	})
	defer c.Close()

	in := []int32{1}
	err := c.Call(procEcho, echoArgs(&in), client.Void)
	if !errors.Is(err, client.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestSimProcUnavailSurfacesRPCError(t *testing.T) {
	n := netsim.New()
	startSimServer(t, n)
	c := simClient(n, "client", client.Config{Timeout: 2 * time.Second})
	defer c.Close()

	err := c.Call(42, client.Void, client.Void)
	var rpcErr *client.RPCError
	if !errors.As(err, &rpcErr) {
		t.Fatalf("err = %v, want *RPCError", err)
	}
	if rpcErr.AcceptStat != rpcmsg.ProcUnavail {
		t.Fatalf("stat = %v, want PROC_UNAVAIL", rpcErr.AcceptStat)
	}
}

func TestSimConcurrentClients(t *testing.T) {
	n := netsim.New()
	startSimServer(t, n)
	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := simClient(n, string(rune('A'+id)), client.Config{
				Timeout: 3 * time.Second, FirstXID: uint32(1000 * (id + 1)),
			})
			defer c.Close()
			for k := 0; k < 10; k++ {
				in := []int32{int32(id), int32(k)}
				var out []int32
				if err := c.Call(procEcho, echoArgs(&in), echoArgs(&out)); err != nil {
					errs[id] = err
					return
				}
				if len(out) != 2 || out[0] != int32(id) || out[1] != int32(k) {
					errs[id] = errors.New("wrong echo")
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", id, err)
		}
	}
}

func TestRealUDPLoopback(t *testing.T) {
	s, _ := newEchoServer()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	go func() { _ = s.ServeUDP(pc) }()
	defer s.Close()

	cconn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := client.NewUDP(cconn, pc.LocalAddr(), client.Config{
		Prog: prog, Vers: vers, Timeout: 3 * time.Second,
	})
	defer c.Close()

	in := make([]int32, 250)
	for i := range in {
		in[i] = int32(i * i)
	}
	var out []int32
	if err := c.Call(procEcho, echoArgs(&in), echoArgs(&out)); err != nil {
		t.Fatal(err)
	}
	if len(out) != 250 || out[249] != 249*249 {
		t.Fatalf("echo len=%d last=%d", len(out), out[len(out)-1])
	}
}

func TestRealTCPLoopback(t *testing.T) {
	s, _ := newEchoServer()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback TCP: %v", err)
	}
	go func() { _ = s.ServeTCP(ln) }()
	defer s.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := client.NewTCP(conn, client.Config{Prog: prog, Vers: vers, Timeout: 3 * time.Second})
	defer c.Close()

	// Several sequential calls on one connection, including one large
	// enough to span multiple record fragments.
	for _, size := range []int{1, 100, 3000} {
		in := make([]int32, size)
		for i := range in {
			in[i] = int32(i)
		}
		var out []int32
		if err := c.Call(procEcho, echoArgs(&in), echoArgs(&out)); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if len(out) != size || (size > 0 && out[size-1] != int32(size-1)) {
			t.Fatalf("size %d: bad echo (len %d)", size, len(out))
		}
	}
}

func TestTCPProcUnavail(t *testing.T) {
	s, _ := newEchoServer()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback TCP: %v", err)
	}
	go func() { _ = s.ServeTCP(ln) }()
	defer s.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := client.NewTCP(conn, client.Config{Prog: prog, Vers: vers, Timeout: 3 * time.Second})
	defer c.Close()

	err = c.Call(77, client.Void, client.Void)
	var rpcErr *client.RPCError
	if !errors.As(err, &rpcErr) || rpcErr.AcceptStat != rpcmsg.ProcUnavail {
		t.Fatalf("err = %v", err)
	}
	// The connection must remain usable after an error reply.
	in := []int32{3}
	var out []int32
	if err := c.Call(procEcho, echoArgs(&in), echoArgs(&out)); err != nil {
		t.Fatalf("call after error: %v", err)
	}
}

func TestClosedClient(t *testing.T) {
	n := netsim.New()
	startSimServer(t, n)
	c := simClient(n, "client", client.Config{})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	err := c.Call(procEcho, client.Void, client.Void)
	if !errors.Is(err, client.ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
}

func TestAuthSysCredentialPassesThrough(t *testing.T) {
	// The server currently accepts any flavor; the credential must
	// survive the trip intact for handlers that inspect it later.
	cred, err := (&rpcmsg.SysCred{MachineName: "testhost", UID: 7, GID: 8}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	n := netsim.New()
	startSimServer(t, n)
	c := simClient(n, "client", client.Config{Cred: cred, Timeout: 2 * time.Second})
	defer c.Close()

	in := []int32{1}
	var out []int32
	if err := c.Call(procEcho, echoArgs(&in), echoArgs(&out)); err != nil {
		t.Fatal(err)
	}
}
