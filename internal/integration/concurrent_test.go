package integration

// Concurrency tests for the multiplexed transport: many goroutines
// interleaving calls on ONE connection, with replies delivered out of
// order. All of these must stay clean under `go test -race`.

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"specrpc/internal/client"
	"specrpc/internal/netsim"
	"specrpc/internal/server"
	"specrpc/internal/xdr"
)

// dialTCPServer starts the echo server on loopback TCP and returns a
// multiplexed client on one connection.
func dialTCPServer(t *testing.T, s *server.Server) *client.TCP {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback TCP: %v", err)
	}
	go func() { _ = s.ServeTCP(ln) }()
	t.Cleanup(func() { _ = s.Close() })
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := client.NewTCP(conn, client.Config{Prog: prog, Vers: vers, Timeout: 5 * time.Second})
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// TestTCPConcurrentInterleavedCalls drives one TCP connection from many
// goroutines with varied payload sizes (including multi-fragment
// records) and verifies every echo, exercising XID demultiplexing of
// interleaved replies.
func TestTCPConcurrentInterleavedCalls(t *testing.T) {
	s, _ := newEchoServer()
	c := dialTCPServer(t, s)

	const goroutines = 8
	const callsEach = 20
	sizes := []int{1, 100, 1500, 5000} // 5000 ints spans multiple 4000-byte fragments
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < callsEach; k++ {
				size := sizes[(g+k)%len(sizes)]
				in := make([]int32, size)
				for i := range in {
					in[i] = int32(g*1_000_000 + k*10_000 + i)
				}
				var out []int32
				if err := c.Call(procEcho, echoArgs(&in), echoArgs(&out)); err != nil {
					errs[g] = err
					return
				}
				if len(out) != size {
					errs[g] = errors.New("wrong echo length")
					return
				}
				for i := range out {
					if out[i] != in[i] {
						errs[g] = errors.New("wrong echo payload")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

// TestTCPBarrierRequiresFourInFlight registers a handler that blocks
// until four calls are executing simultaneously. With four goroutines
// issuing one call each over ONE connection, the test can only pass if
// the transport truly keeps four calls in flight on that connection.
func TestTCPBarrierRequiresFourInFlight(t *testing.T) {
	const want = 4
	var (
		mu      sync.Mutex
		cur     int
		release = make(chan struct{})
		opened  bool
	)
	s := server.New(server.WithWorkers(want))
	s.Register(prog, vers, procEcho, func(dec *xdr.XDR) (server.Marshal, error) {
		var arr []int32
		if err := xdr.Array(dec, &arr, xdr.NoSizeLimit, (*xdr.XDR).Long); err != nil {
			return nil, errors.Join(server.ErrGarbageArgs, err)
		}
		mu.Lock()
		cur++
		if cur >= want && !opened {
			opened = true
			close(release)
		}
		mu.Unlock()
		<-release
		return func(enc *xdr.XDR) error {
			return xdr.Array(enc, &arr, xdr.NoSizeLimit, (*xdr.XDR).Long)
		}, nil
	})
	c := dialTCPServer(t, s)

	var wg sync.WaitGroup
	errs := make([]error, want)
	for g := 0; g < want; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			in := []int32{int32(g)}
			var out []int32
			errs[g] = c.Call(procEcho, echoArgs(&in), echoArgs(&out))
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", g, err)
		}
	}
}

// TestTCPOutOfOrderReplies proves a fast call issued after a slow one
// completes first on the same connection: the slow handler is gated on
// the fast call's completion, which would deadlock a transport that
// serves one call at a time per connection.
func TestTCPOutOfOrderReplies(t *testing.T) {
	const procGated = uint32(7)
	fastDone := make(chan struct{})
	s := server.New()
	s.Register(prog, vers, procEcho, func(dec *xdr.XDR) (server.Marshal, error) {
		var arr []int32
		if err := xdr.Array(dec, &arr, xdr.NoSizeLimit, (*xdr.XDR).Long); err != nil {
			return nil, errors.Join(server.ErrGarbageArgs, err)
		}
		return func(enc *xdr.XDR) error {
			return xdr.Array(enc, &arr, xdr.NoSizeLimit, (*xdr.XDR).Long)
		}, nil
	})
	s.Register(prog, vers, procGated, func(dec *xdr.XDR) (server.Marshal, error) {
		<-fastDone // reply only after the fast call finished
		return func(*xdr.XDR) error { return nil }, nil
	})
	c := dialTCPServer(t, s)

	var slowRet, fastRet atomic.Int64
	var wg sync.WaitGroup
	wg.Add(2)
	started := make(chan struct{})
	errs := make([]error, 2)
	go func() {
		defer wg.Done()
		close(started)
		errs[0] = c.Call(procGated, client.Void, client.Void)
		slowRet.Store(time.Now().UnixNano())
	}()
	go func() {
		defer wg.Done()
		<-started // issue the fast call after the slow one
		time.Sleep(20 * time.Millisecond)
		in := []int32{42}
		var out []int32
		errs[1] = c.Call(procEcho, echoArgs(&in), echoArgs(&out))
		fastRet.Store(time.Now().UnixNano())
		close(fastDone)
	}()
	wg.Wait()
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("slow err = %v, fast err = %v", errs[0], errs[1])
	}
	if fastRet.Load() >= slowRet.Load() {
		t.Fatal("fast call did not complete before the gated slow call")
	}
}

// TestSimConcurrentCallsOneClient issues interleaved calls from many
// goroutines over a SINGLE netsim datagram client, exercising the
// demultiplexer's XID routing on the datagram path.
func TestSimConcurrentCallsOneClient(t *testing.T) {
	n := netsim.New()
	startSimServer(t, n)
	c := simClient(n, "client", client.Config{Timeout: 5 * time.Second})
	defer c.Close()

	const goroutines = 8
	const callsEach = 20
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < callsEach; k++ {
				in := []int32{int32(g), int32(k)}
				var out []int32
				if err := c.Call(procEcho, echoArgs(&in), echoArgs(&out)); err != nil {
					errs[g] = err
					return
				}
				if len(out) != 2 || out[0] != int32(g) || out[1] != int32(k) {
					errs[g] = errors.New("wrong echo")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

// TestUDPLoopbackConcurrentCallsOneClient is the same interleaving over
// one real UDP socket.
func TestUDPLoopbackConcurrentCallsOneClient(t *testing.T) {
	s, _ := newEchoServer()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	go func() { _ = s.ServeUDP(pc) }()
	defer s.Close()

	cconn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := client.NewUDP(cconn, pc.LocalAddr(), client.Config{
		Prog: prog, Vers: vers, Timeout: 5 * time.Second,
	})
	defer c.Close()

	const goroutines = 6
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 15; k++ {
				in := []int32{int32(g * k)}
				var out []int32
				if err := c.Call(procEcho, echoArgs(&in), echoArgs(&out)); err != nil {
					errs[g] = err
					return
				}
				if len(out) != 1 || out[0] != int32(g*k) {
					errs[g] = errors.New("wrong echo")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

// TestCloseUnblocksInFlightCalls closes the client while calls wait on a
// never-replying server; every call must fail with ErrClosed promptly
// instead of hanging until the timeout.
func TestCloseUnblocksInFlightCalls(t *testing.T) {
	n := netsim.New(netsim.WithFaults(func(_, _ net.Addr, _ int, _ []byte) netsim.Verdict {
		return netsim.Drop // black hole
	}))
	startSimServer(t, n)
	c := simClient(n, "client", client.Config{
		Timeout: 30 * time.Second, Retransmit: 10 * time.Second,
	})

	const goroutines = 4
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			in := []int32{1}
			errs[g] = c.Call(procEcho, echoArgs(&in), client.Void)
		}(g)
	}
	time.Sleep(50 * time.Millisecond) // let the calls get in flight
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("calls did not unblock on Close")
	}
	for g, err := range errs {
		if !errors.Is(err, client.ErrClosed) {
			t.Fatalf("call %d err = %v, want ErrClosed", g, err)
		}
	}
}
