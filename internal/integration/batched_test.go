package integration

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"specrpc/internal/server"
	"specrpc/internal/xdr"
)

// Batched-call and write-coalescing coverage over the real stack: the
// fire-and-forget calls must execute on a live server once the terminal
// call flushes them, and the batched write path must interoperate with
// an unbatched peer on the same wire.

// waitForExecs polls until the server-side execution counter reaches
// want: batched calls carry no reply, so the terminal call's return
// only proves their records were *read*, not that their handlers have
// finished.
func waitForExecs(t *testing.T, execs *atomic.Int32, want int32) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for execs.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("server executed %d calls, want %d", execs.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTCPBatchedCallsExecuteOnServer drives CallBatched end to end: the
// queued calls reach a real server and run, the terminal call returns
// the correct echo, and nothing is lost across several groups.
func TestTCPBatchedCallsExecuteOnServer(t *testing.T) {
	s, execs := newEchoServer()
	c := dialTCPServer(t, s)

	const groups, perGroup = 5, 7
	arr := []int32{1, 2, 3}
	for g := 0; g < groups; g++ {
		for i := 0; i < perGroup; i++ {
			if err := c.CallBatched(procEcho, echoArgs(&arr)); err != nil {
				t.Fatalf("group %d CallBatched %d: %v", g, i, err)
			}
		}
		var out []int32
		err := c.Call(procEcho, echoArgs(&arr), func(x *xdr.XDR) error {
			return xdr.Array(x, &out, xdr.NoSizeLimit, (*xdr.XDR).Long)
		})
		if err != nil {
			t.Fatalf("group %d terminal Call: %v", g, err)
		}
		if len(out) != len(arr) {
			t.Fatalf("group %d echo length %d, want %d", g, len(out), len(arr))
		}
	}
	waitForExecs(t, execs, groups*(perGroup+1))
}

// TestTCPBatchedClientAgainstUnbatchedServer pins interoperability: a
// coalescing client against a server with write batching disabled (and
// vice-versa arrangements of the same wire bytes) must behave exactly
// like the plain path — batching changes syscall counts, never framing.
func TestTCPBatchedClientAgainstUnbatchedServer(t *testing.T) {
	s, execs := newEchoServer(server.WithWriteBatching(false))
	c := dialTCPServer(t, s)

	const callers, callsEach = 4, 25
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			arr := []int32{int32(g), int32(g + 1)}
			for i := 0; i < callsEach; i++ {
				var out []int32
				err := c.Call(procEcho, echoArgs(&arr), func(x *xdr.XDR) error {
					return xdr.Array(x, &out, xdr.NoSizeLimit, (*xdr.XDR).Long)
				})
				if err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", g, err)
		}
	}
	waitForExecs(t, execs, callers*callsEach)
}
