package integration

// Regression: a datagram reply larger than the server's buffer must come
// back as a cached SYSTEM_ERR, not be silently dropped — a drop would
// re-execute the handler on every retransmission and leave the client
// waiting out its full timeout.

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"specrpc/internal/client"
	"specrpc/internal/netsim"
	"specrpc/internal/rpcmsg"
	"specrpc/internal/server"
	"specrpc/internal/xdr"
)

func TestSimOversizedDatagramReplyYieldsSystemErr(t *testing.T) {
	const procExpand = uint32(3)
	var execs atomic.Int32
	s := server.New()
	s.Register(prog, vers, procExpand, func(dec *xdr.XDR) (server.Marshal, error) {
		execs.Add(1)
		var n int32
		if err := dec.Long(&n); err != nil {
			return nil, errors.Join(server.ErrGarbageArgs, err)
		}
		arr := make([]int32, n)
		return func(enc *xdr.XDR) error {
			return xdr.Array(enc, &arr, xdr.NoSizeLimit, (*xdr.XDR).Long)
		}, nil
	})
	n := netsim.New()
	ep := n.Attach("server")
	go func() { _ = s.ServeUDP(ep) }()
	t.Cleanup(func() { _ = s.Close() })

	c := simClient(n, "client", client.Config{
		Timeout: 5 * time.Second, Retransmit: 50 * time.Millisecond,
	})
	defer c.Close()

	// 5000 int32s ≈ 20KB of reply, far over the 8900-byte datagram buffer,
	// from a request of a few bytes.
	count := int32(5000)
	err := c.Call(procExpand, func(x *xdr.XDR) error { return x.Long(&count) }, client.Void)
	var rpcErr *client.RPCError
	if !errors.As(err, &rpcErr) {
		t.Fatalf("err = %v, want *RPCError", err)
	}
	if rpcErr.AcceptStat != rpcmsg.SystemErr {
		t.Fatalf("AcceptStat = %v, want SystemErr", rpcErr.AcceptStat)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("handler executed %d times, want exactly 1 (reply must be cached)", got)
	}
}
