package client

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"specrpc/internal/netsim"
	"specrpc/internal/rpcmsg"
	"specrpc/internal/xdr"
)

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.fill()
	if c.Timeout != 5*time.Second {
		t.Fatalf("Timeout = %v", c.Timeout)
	}
	if c.Retransmit != 500*time.Millisecond {
		t.Fatalf("Retransmit = %v", c.Retransmit)
	}
	if c.BufSize != 8900 {
		t.Fatalf("BufSize = %d", c.BufSize)
	}
	if c.FirstXID == 0 {
		t.Fatal("FirstXID not seeded")
	}
	if c.Cred.Flavor != rpcmsg.AuthNone {
		t.Fatalf("Cred flavor = %d", c.Cred.Flavor)
	}
}

func TestConfigExplicitValuesKept(t *testing.T) {
	c := Config{Timeout: time.Second, Retransmit: time.Millisecond,
		BufSize: 128, FirstXID: 7}
	c.fill()
	if c.Timeout != time.Second || c.Retransmit != time.Millisecond ||
		c.BufSize != 128 || c.FirstXID != 7 {
		t.Fatalf("explicit config overridden: %+v", c)
	}
}

func TestRPCErrorStrings(t *testing.T) {
	tests := []struct {
		err  RPCError
		want string
	}{
		{RPCError{Stat: rpcmsg.MsgAccepted, AcceptStat: rpcmsg.ProcUnavail},
			"PROC_UNAVAIL"},
		{RPCError{Stat: rpcmsg.MsgAccepted, AcceptStat: rpcmsg.ProgMismatch,
			Mismatch: rpcmsg.MismatchInfo{Low: 1, High: 3}},
			"server supports 1..3"},
		{RPCError{Stat: rpcmsg.MsgDenied, RejectStat: rpcmsg.AuthError,
			AuthStat: rpcmsg.AuthBadCred},
			"AUTH_ERROR"},
		{RPCError{Stat: rpcmsg.MsgDenied, RejectStat: rpcmsg.RPCMismatch,
			Mismatch: rpcmsg.MismatchInfo{Low: 2, High: 2}},
			"RPC_MISMATCH"},
	}
	for _, tt := range tests {
		if got := tt.err.Error(); !strings.Contains(got, tt.want) {
			t.Errorf("Error() = %q, want substring %q", got, tt.want)
		}
	}
}

func TestVoidMarshaler(t *testing.T) {
	if err := Void(nil); err != nil {
		t.Fatalf("Void = %v", err)
	}
}

// ---------------------------------------------------------------------------
// Call-path specialization: differential and allocation tests

// TestMarshalCallTemplateMatchesGeneric pins the tentpole property on
// the client: the templated marshal path emits byte-identical requests
// to the generic interpretive path, with and without a reserved record
// mark prefix.
func TestMarshalCallTemplateMatchesGeneric(t *testing.T) {
	sysCred, err := (&rpcmsg.SysCred{Stamp: 1, MachineName: "pc", UID: 2, GID: 3}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, cred := range []rpcmsg.OpaqueAuth{rpcmsg.None(), sysCred} {
		cfg := Config{Prog: 0x20000099, Vers: 2, Cred: cred}
		cfg.fill()
		tmpl := callTemplate(&cfg)
		if tmpl == nil {
			t.Fatal("template compile failed for ordinary auth")
		}
		args := func(x *xdr.XDR) error {
			v := uint32(0xFEEDFACE)
			return x.Uint32(&v)
		}
		spec, err := marshalCall(&cfg, tmpl, 77, 5, args, 0)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := marshalCall(&cfg, nil, 77, 5, args, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(*spec, *gen) {
			t.Fatalf("templated call diverged:\n got %x\nwant %x", *spec, *gen)
		}
		pre, err := marshalCall(&cfg, tmpl, 77, 5, args, xdr.RecordMarkLen)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal((*pre)[xdr.RecordMarkLen:], *gen) {
			t.Fatalf("prefixed call diverged after the mark:\n got %x\nwant %x",
				(*pre)[xdr.RecordMarkLen:], *gen)
		}
		xdr.PutBuf(spec)
		xdr.PutBuf(gen)
		xdr.PutBuf(pre)
	}
}

// TestMarshalCallOversizedAuthFallsBack: auth the template compiler
// rejects must still fail identically through the generic path.
func TestMarshalCallOversizedAuthFallsBack(t *testing.T) {
	cfg := Config{Prog: 1, Vers: 1,
		Cred: rpcmsg.OpaqueAuth{Flavor: rpcmsg.AuthSys, Body: make([]byte, rpcmsg.MaxAuthBytes+1)}}
	cfg.fill()
	if tmpl := callTemplate(&cfg); tmpl != nil {
		t.Fatal("oversized cred compiled to a template")
	}
	if _, err := marshalCall(&cfg, nil, 1, 1, Void, 0); err == nil {
		t.Fatal("oversized cred marshaled")
	}
}

// TestCallPathAllocFree pins the perf acceptance criterion: with the
// header template and pooled buffers/handles, the transport layers —
// header marshal, framing, reply header decode — allocate nothing.
// The body marshalers here use the stream bulk primitives, as compiled
// wire plans do; the per-primitive escape of the generic x.Uint32 path
// is the interpretive-layer cost the plans exist to remove, and is
// measured separately by the header-path benchmarks.
func TestCallPathAllocFree(t *testing.T) {
	cfg := Config{Prog: 0x20000099, Vers: 2}
	cfg.fill()
	tmpl := callTemplate(&cfg)
	args := func(x *xdr.XDR) error { return x.Stream.PutLong(7) }
	if allocs := testing.AllocsPerRun(100, func() {
		req, err := marshalCall(&cfg, tmpl, 42, 1, args, xdr.RecordMarkLen)
		if err != nil {
			t.Fatal(err)
		}
		xdr.PutBuf(req)
	}); allocs != 0 {
		t.Errorf("templated marshalCall: %.1f allocs/op, want 0", allocs)
	}

	reply := rpcmsg.MustReplyTemplate(rpcmsg.None()).AppendReply(nil, 42)
	reply = append(reply, 0, 0, 0, 9)
	var got int32
	dec := func(x *xdr.XDR) error { return x.Stream.GetLong(&got) }
	if allocs := testing.AllocsPerRun(100, func() {
		if err := decodeReply(reply, dec); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("fast-path decodeReply: %.1f allocs/op, want 0", allocs)
	}
	if got != 9 {
		t.Fatalf("result = %d, want 9", got)
	}
}

// ---------------------------------------------------------------------------
// Error-path coverage: the demux guards

// successReplyBytes builds an accepted-success reply carrying one uint32.
func successReplyBytes(t *testing.T, xid, result uint32) []byte {
	t.Helper()
	bs := xdr.NewBufEncode(nil)
	enc := xdr.NewEncoder(bs)
	rh := rpcmsg.AcceptedReply(xid)
	if err := rh.Marshal(enc); err != nil {
		t.Fatal(err)
	}
	if err := enc.Uint32(&result); err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), bs.Buffer()...)
}

func pooledCopy(b []byte) *[]byte {
	bp := xdr.GetBuf(len(b))
	*bp = append((*bp)[:0], b...)
	return bp
}

// TestDrainReply exercises the last-instant check Call makes before
// returning a transport error: a decodable reply already in the channel
// must win, an ill-formed one must not, an empty channel reports none.
func TestDrainReply(t *testing.T) {
	var got uint32
	dec := func(x *xdr.XDR) error { return x.Uint32(&got) }

	ch := make(chan *[]byte, 1)
	ch <- pooledCopy(successReplyBytes(t, 9, 1234))
	ok, err := drainReply(ch, &replySink{fn: dec})
	if !ok || err != nil || got != 1234 {
		t.Fatalf("success reply: ok=%v err=%v got=%d", ok, err, got)
	}

	ch <- pooledCopy([]byte{1, 2, 3})
	if ok, err := drainReply(ch, &replySink{fn: dec}); ok || err != nil {
		t.Fatalf("ill-formed reply: ok=%v err=%v", ok, err)
	}

	if ok, err := drainReply(ch, &replySink{fn: dec}); ok || err != nil {
		t.Fatalf("empty channel: ok=%v err=%v", ok, err)
	}

	// An error reply is still an answer: it must surface as *RPCError,
	// not be masked by the transport error.
	bs := xdr.NewBufEncode(nil)
	eh := rpcmsg.ErrorReply(9, rpcmsg.SystemErr)
	if err := eh.Marshal(xdr.NewEncoder(bs)); err != nil {
		t.Fatal(err)
	}
	ch <- pooledCopy(bs.Buffer())
	ok, err = drainReply(ch, &replySink{fn: Void})
	var rpcErr *RPCError
	if !ok || !errors.As(err, &rpcErr) || rpcErr.AcceptStat != rpcmsg.SystemErr {
		t.Fatalf("error reply: ok=%v err=%v", ok, err)
	}
}

// dieAfterReplyConn answers the first request with a success reply and
// then fails every read: the reply and the terminal transport error
// race to the caller, which must prefer the reply (via drainReply) no
// matter which select arm wins.
type dieAfterReplyConn struct {
	t     *testing.T
	reply chan []byte
	once  sync.Once
}

func newDieAfterReplyConn(t *testing.T) *dieAfterReplyConn {
	return &dieAfterReplyConn{t: t, reply: make(chan []byte, 1)}
}

func (c *dieAfterReplyConn) WriteTo(p []byte, _ net.Addr) (int, error) {
	c.once.Do(func() {
		xid, ok := rpcmsg.PeekXID(p)
		if !ok {
			c.t.Error("request without XID")
		}
		c.reply <- successReplyBytes(c.t, xid, 4321)
		close(c.reply)
	})
	return len(p), nil
}

func (c *dieAfterReplyConn) ReadFrom(p []byte) (int, net.Addr, error) {
	r, ok := <-c.reply
	if !ok {
		return 0, nil, errors.New("socket died")
	}
	return copy(p, r), fakeAddr{}, nil
}

func (c *dieAfterReplyConn) Close() error                     { return nil }
func (c *dieAfterReplyConn) LocalAddr() net.Addr              { return fakeAddr{} }
func (c *dieAfterReplyConn) SetDeadline(time.Time) error      { return nil }
func (c *dieAfterReplyConn) SetReadDeadline(time.Time) error  { return nil }
func (c *dieAfterReplyConn) SetWriteDeadline(time.Time) error { return nil }

type fakeAddr struct{}

func (fakeAddr) Network() string { return "fake" }
func (fakeAddr) String() string  { return "fake" }

// TestUDPCallPrefersReplyOverTransportError: the reader delivers a valid
// reply and immediately afterwards the socket dies, closing dmx.done.
// Call's select then has two ready arms; whichever fires, the call must
// return the reply, not the transport error. Iterated because select
// picks ready arms at random.
func TestUDPCallPrefersReplyOverTransportError(t *testing.T) {
	for i := 0; i < 25; i++ {
		conn := newDieAfterReplyConn(t)
		c := NewUDP(conn, fakeAddr{}, Config{
			Prog: 1, Vers: 1,
			Timeout:    10 * time.Second,
			Retransmit: time.Hour, // keep retransmission out of the race
		})
		var got uint32
		err := c.Call(1, Void, func(x *xdr.XDR) error { return x.Uint32(&got) })
		if err != nil {
			t.Fatalf("iteration %d: Call = %v, want reply 4321", i, err)
		}
		if got != 4321 {
			t.Fatalf("iteration %d: result = %d", i, got)
		}
		_ = c.Close()
	}
}

// TestUDPRetransmitAfterDrop: the first request datagram is dropped by
// the network; the call must retransmit after cfg.Retransmit and
// complete against the echoing responder.
func TestUDPRetransmitAfterDrop(t *testing.T) {
	var sends atomic.Int32
	n := netsim.New(netsim.WithFaults(func(from, to net.Addr, seq int, p []byte) netsim.Verdict {
		if to.String() == "server" && sends.Add(1) == 1 {
			return netsim.Drop
		}
		return netsim.Deliver
	}))
	sep := n.Attach("server")
	defer sep.Close()
	go func() {
		buf := make([]byte, 9000)
		for {
			nr, from, err := sep.ReadFrom(buf)
			if err != nil {
				return
			}
			dec := xdr.NewDecoder(xdr.NewMemDecode(buf[:nr]))
			var hdr rpcmsg.CallHeader
			if hdr.Marshal(dec) != nil {
				continue
			}
			var v uint32
			if dec.Uint32(&v) != nil {
				continue
			}
			if _, err := sep.WriteTo(successReplyBytes(t, hdr.XID, v+1), from); err != nil {
				return
			}
		}
	}()

	cep := n.Attach("client")
	c := NewUDP(cep, netsim.Addr("server"), Config{
		Prog: 1, Vers: 1,
		Timeout:    5 * time.Second,
		Retransmit: 20 * time.Millisecond,
	})
	defer c.Close()

	arg := uint32(41)
	var got uint32
	err := c.Call(1,
		func(x *xdr.XDR) error { return x.Uint32(&arg) },
		func(x *xdr.XDR) error { return x.Uint32(&got) })
	if err != nil {
		t.Fatalf("Call after dropped datagram: %v", err)
	}
	if got != 42 {
		t.Fatalf("result = %d, want 42", got)
	}
	if s := sends.Load(); s < 2 {
		t.Fatalf("saw %d request sends, want a retransmission", s)
	}
}
