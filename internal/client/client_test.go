package client

import (
	"strings"
	"testing"
	"time"

	"specrpc/internal/rpcmsg"
)

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.fill()
	if c.Timeout != 5*time.Second {
		t.Fatalf("Timeout = %v", c.Timeout)
	}
	if c.Retransmit != 500*time.Millisecond {
		t.Fatalf("Retransmit = %v", c.Retransmit)
	}
	if c.BufSize != 8900 {
		t.Fatalf("BufSize = %d", c.BufSize)
	}
	if c.FirstXID == 0 {
		t.Fatal("FirstXID not seeded")
	}
	if c.Cred.Flavor != rpcmsg.AuthNone {
		t.Fatalf("Cred flavor = %d", c.Cred.Flavor)
	}
}

func TestConfigExplicitValuesKept(t *testing.T) {
	c := Config{Timeout: time.Second, Retransmit: time.Millisecond,
		BufSize: 128, FirstXID: 7}
	c.fill()
	if c.Timeout != time.Second || c.Retransmit != time.Millisecond ||
		c.BufSize != 128 || c.FirstXID != 7 {
		t.Fatalf("explicit config overridden: %+v", c)
	}
}

func TestRPCErrorStrings(t *testing.T) {
	tests := []struct {
		err  RPCError
		want string
	}{
		{RPCError{Stat: rpcmsg.MsgAccepted, AcceptStat: rpcmsg.ProcUnavail},
			"PROC_UNAVAIL"},
		{RPCError{Stat: rpcmsg.MsgAccepted, AcceptStat: rpcmsg.ProgMismatch,
			Mismatch: rpcmsg.MismatchInfo{Low: 1, High: 3}},
			"server supports 1..3"},
		{RPCError{Stat: rpcmsg.MsgDenied, RejectStat: rpcmsg.AuthError,
			AuthStat: rpcmsg.AuthBadCred},
			"AUTH_ERROR"},
		{RPCError{Stat: rpcmsg.MsgDenied, RejectStat: rpcmsg.RPCMismatch,
			Mismatch: rpcmsg.MismatchInfo{Low: 2, High: 2}},
			"RPC_MISMATCH"},
	}
	for _, tt := range tests {
		if got := tt.err.Error(); !strings.Contains(got, tt.want) {
			t.Errorf("Error() = %q, want substring %q", got, tt.want)
		}
	}
}

func TestVoidMarshaler(t *testing.T) {
	if err := Void(nil); err != nil {
		t.Fatalf("Void = %v", err)
	}
}
