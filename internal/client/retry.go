package client

// Retry policy, backoff schedule, and the token-bucket retry budget —
// the production call semantics around doCall. The policy decides how a
// datagram call retransmits (exponential backoff with full jitter
// instead of the classic fixed tick) and how a stream client behaves
// when its connection breaks (which failures are safe to retry, how
// redialing backs off). The budget is the storm brake: retries spend
// from a per-client token bucket refilled at a bounded rate, so a
// failing server sees client load decay toward the refill rate instead
// of multiplying by the retry count. See DESIGN.md, "Failure semantics
// and retry policy".

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// RetryPolicy configures retransmission, call retry, and reconnect
// backoff for one client. The zero value of each field selects the
// documented default; Config.Retry == nil keeps the legacy behavior
// (fixed Retransmit tick over UDP, no call retry over TCP).
type RetryPolicy struct {
	// MaxAttempts bounds the total send attempts per call, including the
	// first (default 4). Over UDP, reaching the bound stops further
	// retransmissions but the call keeps waiting for a straggling reply
	// until its deadline: the deadline owns the call's lifetime, the
	// attempt bound owns its network load. Over TCP it bounds how many
	// times a call may be re-sent across reconnects, and how many dial
	// attempts one reconnect makes.
	MaxAttempts int
	// BaseDelay is the first backoff interval (default 50ms; over UDP a
	// zero BaseDelay inherits Config.Retransmit so existing retransmit
	// tuning carries over). Attempt k waits a uniformly random duration
	// in (0, min(MaxDelay, BaseDelay·2^(k-1))] — "full jitter", which
	// decorrelates the retry storms of many clients hitting the same
	// fault.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (default 2s).
	MaxDelay time.Duration
	// RetryAmbiguous permits retrying stream calls whose request may
	// have reached the server (the connection died after the record was
	// handed to the wire, before a reply arrived). Retrying such a call
	// can execute it twice, so this must only be set when the procedures
	// issued through the client are idempotent. Calls that provably
	// never left (the batcher rejected the record before queueing it)
	// are always safe and always eligible.
	RetryAmbiguous bool
	// BudgetRate is the sustained retries-per-second the token bucket
	// refills at (default 10; negative disables budgeting entirely).
	// Every retransmission, call retry, and redial attempt spends one
	// token; with the bucket empty the retry is suppressed and counted
	// (RetryStats.BudgetDenied) instead of amplifying overload.
	BudgetRate float64
	// BudgetBurst is the bucket capacity — the retries a quiet client
	// may burst before the rate limit binds (default 32).
	BudgetBurst int
}

// norm returns the policy with defaults filled in. retransmit seeds
// BaseDelay for datagram clients (their legacy knob); pass 0 elsewhere.
func (p *RetryPolicy) norm(retransmit time.Duration) RetryPolicy {
	q := *p
	if q.MaxAttempts <= 0 {
		q.MaxAttempts = 4
	}
	if q.BaseDelay <= 0 {
		q.BaseDelay = retransmit
	}
	if q.BaseDelay <= 0 {
		q.BaseDelay = 50 * time.Millisecond
	}
	if q.MaxDelay <= 0 {
		q.MaxDelay = 2 * time.Second
	}
	if q.BudgetRate == 0 {
		q.BudgetRate = 10
	}
	if q.BudgetBurst <= 0 {
		q.BudgetBurst = 32
	}
	return q
}

// delay computes the backoff before send attempt+1, with attempt 1 the
// first retry: full jitter over an exponentially growing ceiling.
func (p *RetryPolicy) delay(attempt int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if d <= 0 {
		return time.Millisecond
	}
	return time.Duration(rand.Int63n(int64(d))) + 1
}

// retryBudget is the token bucket retries spend from. A nil budget
// always admits (no policy, or BudgetRate < 0).
type retryBudget struct {
	mu     sync.Mutex // guards tokens, last
	tokens float64
	last   time.Time
	rate   float64
	burst  float64
}

func newRetryBudget(p *RetryPolicy) *retryBudget {
	if p == nil || p.BudgetRate < 0 {
		return nil
	}
	return &retryBudget{
		tokens: float64(p.BudgetBurst),
		last:   time.Now(),
		rate:   p.BudgetRate,
		burst:  float64(p.BudgetBurst),
	}
}

// take spends one token, reporting false — the retry must be
// suppressed — when the bucket is empty.
func (b *retryBudget) take() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// RetryStats counts a client's retry-path events.
type RetryStats struct {
	// Retransmits is the datagram re-sends beyond each call's first.
	Retransmits uint64
	// Retries is the stream calls re-attempted after a transport
	// failure classified as retryable.
	Retries uint64
	// BudgetDenied is the retransmissions and retries suppressed
	// because the token-bucket budget was empty.
	BudgetDenied uint64
}

// ReconnectStats counts a stream client's transparent-reconnect events.
type ReconnectStats struct {
	// Reconnects is the replacement connections successfully installed.
	Reconnects uint64
	// RedialFailures is the dial attempts that failed (each backs off
	// under the retry policy before the next).
	RedialFailures uint64
}

// retryCounters is the atomic backing store shared by both transports.
type retryCounters struct {
	retransmits, retries, budgetDenied atomic.Uint64
	reconnects, redialFailures         atomic.Uint64
}

func (c *retryCounters) retryStats() RetryStats {
	return RetryStats{
		Retransmits:  c.retransmits.Load(),
		Retries:      c.retries.Load(),
		BudgetDenied: c.budgetDenied.Load(),
	}
}

func (c *retryCounters) reconnectStats() ReconnectStats {
	return ReconnectStats{
		Reconnects:     c.reconnects.Load(),
		RedialFailures: c.redialFailures.Load(),
	}
}

// TransportError reports a transport-level call failure on a stream
// client with reconnect enabled, carrying the execution ambiguity the
// retry layer decided on: MaybeSent == false means the request
// provably never reached the wire (safe to retry, and the client
// already retried it as far as the policy allowed); MaybeSent == true
// means the record was handed to the connection before it died, so the
// server may have executed the call even though no reply arrived —
// only the caller can decide whether re-issuing is safe (see
// RetryPolicy.RetryAmbiguous for making that decision per client).
type TransportError struct {
	Err       error
	MaybeSent bool
}

func (e *TransportError) Error() string {
	if e.MaybeSent {
		return fmt.Sprintf("client: transport failed after send (execution unknown): %v", e.Err)
	}
	return fmt.Sprintf("client: transport failed before send: %v", e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// callDeadline resolves a call's absolute deadline: the earlier of the
// context deadline and now+timeout.
func callDeadline(ctx context.Context, timeout time.Duration) time.Time {
	dl := time.Now().Add(timeout)
	if cd, ok := ctx.Deadline(); ok && cd.Before(dl) {
		dl = cd
	}
	return dl
}
