package client

// Regression tests for the fault-tolerance layer: the per-call write
// deadline (a nearly-expired call must not wedge the shared connection
// for a whole fresh Timeout), Close interrupting backoff/redial sleeps,
// the token-bucket retry budget, and a fused-codec call surviving a
// mid-call reconnect byte-identically.

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"specrpc/internal/netsim"
	"specrpc/internal/server"
)

// writeObserver reports the first Write error on a wrapped conn, so a
// test can see when a stalled write actually unblocked.
type writeObserver struct {
	net.Conn
	wrote chan error
}

func (o *writeObserver) Write(p []byte) (int, error) {
	n, err := o.Conn.Write(p)
	if err != nil {
		select {
		case o.wrote <- err:
		default:
		}
	}
	return n, err
}

// TestTCPWriteDeadlineFromCallBudget pins the satellite bugfix: the
// batcher used to arm the connection's write deadline with a full
// cfg.Timeout on every write, so a call with 80ms of budget left could
// block the shared connection for 10s against a stalled peer. The
// deadline must come from the earliest per-call deadline in the batch.
func TestTCPWriteDeadlineFromCallBudget(t *testing.T) {
	p1, p2 := net.Pipe()
	defer p2.Close() // never read: every write stalls until its deadline
	obs := &writeObserver{Conn: p1, wrote: make(chan error, 1)}
	c := NewTCP(obs, Config{Prog: 1, Vers: 1, FirstXID: 10, Timeout: 10 * time.Second})
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.CallCtx(ctx, 1, Void, Void)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("call against a stalled peer succeeded")
	}
	if elapsed > 3*time.Second {
		t.Fatalf("call took %v: write deadline was not derived from the call budget", elapsed)
	}
	select {
	case <-obs.wrote:
		// The stalled write itself unblocked at the per-call deadline.
	case <-time.After(3 * time.Second):
		t.Fatal("stalled write still blocked 3s after an 80ms call budget expired")
	}
}

// TestCloseInterruptsRetryBackoff pins the second satellite bugfix:
// Close must wake a client sleeping in retry backoff or redial backoff
// immediately (the sleeps select on the lifecycle's done channel), not
// after the jittered delay finishes.
func TestCloseInterruptsRetryBackoff(t *testing.T) {
	p1, p2 := net.Pipe()
	_ = p2.Close() // the connection is dead from the start
	dialErr := errors.New("dial refused")
	c := NewTCP(p1, Config{
		Prog: 1, Vers: 1, FirstXID: 10,
		Timeout: 30 * time.Second,
		Retry: &RetryPolicy{
			MaxAttempts:    1000,
			BaseDelay:      5 * time.Second,
			MaxDelay:       5 * time.Second,
			RetryAmbiguous: true,
			BudgetRate:     -1,
		},
		Redial: func() (net.Conn, error) { return nil, dialErr },
	})

	callDone := make(chan error, 1)
	go func() { callDone <- c.Call(1, Void, Void) }()
	time.Sleep(100 * time.Millisecond) // let the call fail and enter backoff

	start := time.Now()
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("Close took %v mid-backoff, want immediate", took)
	}
	select {
	case err := <-callDone:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("interrupted call returned %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("call still sleeping 2s after Close")
	}
}

// TestRetryBudgetSuppressesRetransmits: with the token bucket drained,
// further retransmissions are counted as denied instead of sent — the
// storm brake under sustained failure.
func TestRetryBudgetSuppressesRetransmits(t *testing.T) {
	n := netsim.New()
	n.Partition("", "") // total black hole
	_ = n.Attach("server")
	c := NewUDP(n.Attach("client"), netsim.Addr("server"), Config{
		Prog: 1, Vers: 1, FirstXID: 10,
		Timeout: 400 * time.Millisecond,
		Retry: &RetryPolicy{
			MaxAttempts: 50,
			BaseDelay:   10 * time.Millisecond,
			MaxDelay:    10 * time.Millisecond,
			BudgetRate:  0.001, // effectively no refill during the test
			BudgetBurst: 2,
		},
	})
	defer c.Close()

	if err := c.Call(1, Void, Void); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	st := c.RetryStats()
	if st.Retransmits == 0 {
		t.Fatal("no retransmits before the budget drained")
	}
	if st.Retransmits > 2 {
		t.Fatalf("%d retransmits leaked past a burst-2 budget", st.Retransmits)
	}
	if st.BudgetDenied == 0 {
		t.Fatal("drained budget never denied a retransmit")
	}
}

// readRecord accumulates stream bytes until one complete record-marked
// message is buffered, and returns it (mark included).
func readRecord(conn net.Conn) ([]byte, error) {
	var buf []byte
	tmp := make([]byte, 4096)
	for {
		if len(buf) >= 4 {
			size := int(binary.BigEndian.Uint32(buf) & 0x7fffffff)
			if len(buf) >= 4+size {
				return buf[:4+size], nil
			}
		}
		n, err := conn.Read(tmp)
		buf = append(buf, tmp[:n]...)
		if err != nil {
			return buf, err
		}
	}
}

// teeConn captures everything written through it.
type teeConn struct {
	net.Conn
	mu  sync.Mutex
	buf bytes.Buffer
}

func (tc *teeConn) Write(p []byte) (int, error) {
	tc.mu.Lock()
	tc.buf.Write(p)
	tc.mu.Unlock()
	return tc.Conn.Write(p)
}

func (tc *teeConn) captured() []byte {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return append([]byte(nil), tc.buf.Bytes()...)
}

// TestFusedCallSurvivesReconnectByteIdentical: a typed call on the
// fused whole-call codec is sent, the connection dies before any reply,
// and the transparent retry re-sends it on a fresh connection. The
// retried request record must be byte-identical to the original except
// for the XID — same cached template, same fused codec, no
// recompilation drift across the reconnect.
func TestFusedCallSurvivesReconnectByteIdentical(t *testing.T) {
	// Real echo server for the second (successful) attempt.
	srv := server.New()
	server.RegisterTyped(srv, fusedProg, fusedVers, fusedProc, fusedArgPlan, fusedArgPlan,
		func(arg *[]int32) (*[]int32, error) { return arg, nil })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback TCP: %v", err)
	}
	go func() { _ = srv.ServeTCP(ln) }()
	defer srv.Close()

	// First connection: a pipe to a peer that captures one request
	// record and slams the connection shut without replying.
	p1, p2 := net.Pipe()
	firstRec := make(chan []byte, 1)
	go func() {
		rec, _ := readRecord(p2)
		firstRec <- rec
		_ = p2.Close()
	}()

	var tee *teeConn
	c := NewTCP(p1, Config{
		Prog: fusedProg, Vers: fusedVers, FirstXID: 4000,
		Timeout: 5 * time.Second,
		Retry: &RetryPolicy{
			MaxAttempts:    4,
			BaseDelay:      time.Millisecond,
			MaxDelay:       5 * time.Millisecond,
			RetryAmbiguous: true, // the echo is idempotent
			BudgetRate:     -1,
		},
		Redial: func() (net.Conn, error) {
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				return nil, err
			}
			tee = &teeConn{Conn: conn}
			return tee, nil
		},
	})
	defer c.Close()

	in := []int32{3, 1, 4, 1, 5, 9, 2, 6}
	var out []int32
	if err := CallTyped(c, fusedProc, fusedArgPlan, &in, fusedArgPlan, &out); err != nil {
		t.Fatalf("call across reconnect: %v", err)
	}
	if len(out) != len(in) || out[0] != 3 || out[7] != 6 {
		t.Fatalf("bad echo after reconnect: %v", out)
	}
	if e := c.planned.lookup(c.tmpl, fusedProc, fusedArgPlan.Codec(), fusedArgPlan.Codec()); e == nil {
		t.Fatal("call did not take the fused path")
	}
	if rc := c.ReconnectStats(); rc.Reconnects != 1 {
		t.Fatalf("reconnects = %d, want 1", rc.Reconnects)
	}
	if rs := c.RetryStats(); rs.Retries != 1 {
		t.Fatalf("retries = %d, want 1", rs.Retries)
	}

	first := <-firstRec
	second := tee.captured()
	if len(first) < 8 || len(second) < len(first) {
		t.Fatalf("captured records too short: first=%d second=%d", len(first), len(second))
	}
	second = second[:len(first)] // the retried call is the only record sent
	// Record mark (length) identical, XID advanced, body identical.
	if !bytes.Equal(first[:4], second[:4]) {
		t.Fatalf("record marks differ: % x vs % x", first[:4], second[:4])
	}
	if bytes.Equal(first[4:8], second[4:8]) {
		t.Fatal("retried call reused the original XID")
	}
	if !bytes.Equal(first[8:], second[8:]) {
		t.Fatal("retried request body diverged from the original: codec state not reused byte-identically")
	}
}

// TestTransportErrorClassification: a connection that dies after the
// request was handed to the wire must surface MaybeSent=true without a
// redial configured... with one, and RetryAmbiguous unset, the failure
// still surfaces rather than being silently replayed.
func TestTransportErrorAmbiguousSurfaces(t *testing.T) {
	p1, p2 := net.Pipe()
	go func() {
		_, _ = readRecord(p2) // swallow the request
		_ = p2.Close()        // die without replying
	}()
	dialed := make(chan struct{}, 4)
	c := NewTCP(p1, Config{
		Prog: 1, Vers: 1, FirstXID: 20,
		Timeout: 2 * time.Second,
		Retry: &RetryPolicy{
			MaxAttempts: 4,
			BaseDelay:   time.Millisecond,
			BudgetRate:  -1,
			// RetryAmbiguous deliberately false.
		},
		Redial: func() (net.Conn, error) {
			dialed <- struct{}{}
			return nil, errors.New("unreachable")
		},
	})
	defer c.Close()

	err := c.Call(1, Void, Void)
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TransportError", err)
	}
	if !te.MaybeSent {
		t.Fatal("request reached the wire but MaybeSent = false")
	}
	select {
	case <-dialed:
		t.Fatal("ambiguous failure was retried without RetryAmbiguous")
	default:
	}
}
