package client

import (
	"specrpc/internal/wire"
	"specrpc/internal/xdr"
)

// CallTyped performs one RPC with the argument and result bodies
// marshaled by compiled wire plans instead of hand-written closures: the
// codec-based entry point generated stubs route through. A nil plan
// marks a void side. The legacy closure-based Call remains the transport
// core; CallTyped adapts plans onto it, so typed and closure calls
// multiplex freely on the same connection.
func CallTyped[A, R any](c Caller, proc uint32, args *wire.Plan[A], arg *A, results *wire.Plan[R], res *R) error {
	am := Void
	if args != nil {
		am = func(x *xdr.XDR) error { return args.Marshal(x, arg) }
	}
	rm := Void
	if results != nil {
		rm = func(x *xdr.XDR) error { return results.Marshal(x, res) }
	}
	return c.Call(proc, am, rm)
}
