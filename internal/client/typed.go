package client

import (
	"context"
	"unsafe"

	"specrpc/internal/wire"
	"specrpc/internal/xdr"
)

// CallTyped performs one RPC with the argument and result bodies
// marshaled by compiled wire plans instead of hand-written closures: the
// codec-based entry point generated stubs route through. A nil plan
// marks a void side.
//
// On the package's own transports the call runs through a fused
// whole-call codec: the header template and the argument plan execute
// as one residual program over one buffer (compiled on first use of
// each procedure and cached), and the results decode straight out of
// the accepted-success reply. Procedures that cannot fuse — exotic
// auth the template compiler rejects, or interpretive-mode plans —
// take the closure adapter below, byte-identical on the wire either
// way, so typed and closure calls multiplex freely on one connection.
func CallTyped[A, R any](c Caller, proc uint32, args *wire.Plan[A], arg *A, results *wire.Plan[R], res *R) error {
	return CallTypedCtx(context.Background(), c, proc, args, arg, results, res)
}

// CallTypedCtx is CallTyped with a per-call context: the context's
// deadline and cancellation compose with the client's global timeout
// exactly as in CallCtx, on both the fused and the closure path (the
// closure fallback requires the transport to implement CtxCaller; a
// plain Caller falls back to Call and ignores the context).
func CallTypedCtx[A, R any](ctx context.Context, c Caller, proc uint32, args *wire.Plan[A], arg *A, results *wire.Plan[R], res *R) error {
	if pc, ok := c.(plannedCaller); ok {
		var argc, resc *wire.Codec
		var ap, rp unsafe.Pointer
		if args != nil {
			argc, ap = args.Codec(), unsafe.Pointer(arg)
		}
		if results != nil {
			resc, rp = results.Codec(), unsafe.Pointer(res)
		}
		if handled, err := pc.callPlanned(ctx, proc, argc, ap, resc, rp); handled {
			return err
		}
	}
	am := Void
	if args != nil {
		am = func(x *xdr.XDR) error { return args.Marshal(x, arg) }
	}
	rm := Void
	if results != nil {
		rm = func(x *xdr.XDR) error { return results.Marshal(x, res) }
	}
	if cc, ok := c.(CtxCaller); ok {
		return cc.CallCtx(ctx, proc, am, rm)
	}
	return c.Call(proc, am, rm)
}
