// Package client implements the client half of Sun RPC: the Go rendering
// of clnt_udp.c and clnt_tcp.c, extended with a concurrent multiplexed
// transport. A Client owns a transport, assigns XIDs atomically, marshals
// the call header and arguments into pooled buffers, retransmits over
// datagram transports, and decodes the reply header before handing the
// result stream to the caller's unmarshaler.
//
// Unlike the original one-call-at-a-time clients, both transports allow
// many in-flight calls per connection: a single reader goroutine
// demultiplexes replies on their XID and routes each to the per-call
// channel registered by the issuing goroutine. Call is therefore safe —
// and useful — to invoke from many goroutines at once: over TCP the call
// records are pipelined onto one record-marked stream, and over datagram
// transports each call retransmits independently.
//
// Argument and result marshalers are pluggable (the Marshal type), which
// is what lets the benchmark harness swap the generic micro-layered stubs
// for the specialized stubs produced by internal/tempo without touching
// the transport code.
//
// In the five-layer specialization stack (see DESIGN.md) this is layer
// 4, the transport endpoint: it drives the internal/xdr streams and
// internal/rpcmsg headers on behalf of the stubs from internal/wire.
// Two batching mechanisms amortize its syscalls (DESIGN.md, "Batching
// and flush policy"): concurrent TCP calls coalesce their records into
// shared vectored writes via the group-commit RecBatcher, and
// CallBatched queues ONC fire-and-forget calls that leave with the next
// terminal Call, Flush, or Close.
package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"specrpc/internal/rpcmsg"
	"specrpc/internal/wire"
	"specrpc/internal/xdr"
)

// Marshal serializes or deserializes one value against an XDR handle; it
// is the xdrproc_t of the original API.
type Marshal func(x *xdr.XDR) error

// Void is the marshaler for procedures without arguments or results.
func Void(*xdr.XDR) error { return nil }

// Errors returned by calls.
var (
	// ErrTimeout reports that the total call timeout elapsed without a
	// matching reply.
	ErrTimeout = errors.New("client: call timed out")
	// ErrClosed reports use of a closed client.
	ErrClosed = errors.New("client: closed")
)

// RPCError reports a failure delivered inside an RPC reply (rather than a
// transport fault): a non-success accept status or a rejection.
type RPCError struct {
	// Stat is the reply status (accepted vs denied).
	Stat rpcmsg.ReplyStat
	// AcceptStat holds the failure for accepted replies.
	AcceptStat rpcmsg.AcceptStat
	// RejectStat and AuthStat hold the failure for denied replies.
	RejectStat rpcmsg.RejectStat
	AuthStat   rpcmsg.AuthStat
	// Mismatch holds the supported version range for mismatch failures.
	Mismatch rpcmsg.MismatchInfo
}

// Error describes the failure in RFC terms.
func (e *RPCError) Error() string {
	if e.Stat == rpcmsg.MsgDenied {
		if e.RejectStat == rpcmsg.RPCMismatch {
			return fmt.Sprintf("rpc denied: RPC_MISMATCH (server supports %d..%d)",
				e.Mismatch.Low, e.Mismatch.High)
		}
		return fmt.Sprintf("rpc denied: AUTH_ERROR (auth_stat %d)", e.AuthStat)
	}
	if e.AcceptStat == rpcmsg.ProgMismatch {
		return fmt.Sprintf("rpc failed: PROG_MISMATCH (server supports %d..%d)",
			e.Mismatch.Low, e.Mismatch.High)
	}
	return fmt.Sprintf("rpc failed: %v", e.AcceptStat)
}

// Config carries the knobs shared by the UDP and TCP clients.
type Config struct {
	// Prog and Vers identify the remote program.
	Prog, Vers uint32
	// Cred is the credential attached to every call (default AUTH_NULL).
	Cred rpcmsg.OpaqueAuth
	// Timeout bounds the whole call including retransmissions
	// (clnt_call's total timeout). Default 5s.
	Timeout time.Duration
	// Retransmit is the datagram retransmission interval (clntudp_create's
	// wait argument). Default 500ms. Ignored over TCP.
	Retransmit time.Duration
	// BufSize is the marshaling buffer size. Default 8900 bytes (UDPMSGSIZE
	// was 8800 in the original; we round up for headers). Over TCP it is
	// only the initial buffer size: records grow as needed.
	BufSize int
	// FirstXID seeds the transaction-id sequence; 0 derives one from the
	// clock, as gettimeofday did in clntudp_create.
	FirstXID uint32
	// NoBatch disables write coalescing on stream transports: every call
	// record is written with its own syscall, the pre-batching behavior.
	// Kept as the measurable baseline for the batch benchmarks; queued
	// batched calls (CallBatched) still queue, they just flush one record
	// per Write.
	NoBatch bool
	// MaxFlushDelay, when positive, lets the stream transport's group-
	// commit leader wait this long for concurrent calls to queue behind
	// it before the first vectored write (xdr.RecBatcher.MaxFlushDelay).
	// Group commit alone only coalesces requests issued while the leader
	// is inside the write syscall, so at shallow pipeline depth on an
	// idle host batches stay near one record; a bounded delay buys
	// coalescing there at the price of up to the delay added per call.
	// 0 (the default) writes immediately. Ignored over UDP and with
	// NoBatch.
	MaxFlushDelay time.Duration
	// Retry selects policy-driven retransmission and retry: over UDP the
	// fixed Retransmit tick becomes exponential backoff with full jitter
	// under a token-bucket budget; over TCP (with Redial set) calls that
	// fail on a broken connection are retried across reconnects when the
	// policy classifies them as safe. nil keeps the legacy semantics.
	Retry *RetryPolicy
	// Redial, on a stream client, enables transparent reconnect: when the
	// connection breaks, in-flight calls fail with a *TransportError, the
	// client redials through this function under the retry policy's
	// backoff and budget, and later calls proceed on the replacement
	// connection reusing the client's cached header templates and fused/
	// compiled codecs. nil (the default) keeps the legacy one-connection
	// lifetime. DialTCP installs a Redial automatically.
	Redial func() (net.Conn, error)
}

func (c *Config) fill() {
	if c.Timeout == 0 {
		c.Timeout = 5 * time.Second
	}
	if c.Retransmit == 0 {
		c.Retransmit = 500 * time.Millisecond
	}
	if c.BufSize == 0 {
		c.BufSize = 8900
	}
	if c.FirstXID == 0 {
		c.FirstXID = uint32(time.Now().UnixNano())
	}
	if c.Cred.Flavor == 0 && c.Cred.Body == nil {
		c.Cred = rpcmsg.None()
	}
}

// ---------------------------------------------------------------------------
// Reply demultiplexer

// demux routes reply buffers from the transport's reader goroutine to the
// per-call channels registered by issuing goroutines, keyed on XID. It is
// the concurrency core shared by both transports.
type demux struct {
	mu    sync.Mutex // guards calls, err
	calls map[uint32]chan *[]byte
	err   error         // terminal transport error; set once
	done  chan struct{} // closed when err is set
}

func newDemux() *demux {
	return &demux{calls: make(map[uint32]chan *[]byte), done: make(chan struct{})}
}

// errXIDInFlight reports a registration colliding with a call already
// in flight on the same XID. Never surfaced to callers: registerCall
// absorbs it by advancing to the next XID.
var errXIDInFlight = errors.New("client: xid already in flight")

// register installs a reply channel for xid. The channel stays registered
// until unregister, so duplicate replies and ill-formed datagrams can be
// absorbed without losing the slot. A second registration on an XID that
// is still in flight is rejected: silently replacing the slot — what an
// unchecked map store would do — loses the first call's channel, and a
// reply for that XID would then be delivered to the wrong waiter. The
// collision is reachable once the 32-bit counter wraps on a long-lived
// connection while a slow call from the previous epoch is still waiting.
func (d *demux) register(xid uint32) (chan *[]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.err != nil {
		return nil, d.err
	}
	if _, busy := d.calls[xid]; busy {
		return nil, errXIDInFlight
	}
	ch := make(chan *[]byte, 1)
	d.calls[xid] = ch
	return ch, nil
}

// unregister removes the slot and reclaims any undelivered reply buffer.
func (d *demux) unregister(xid uint32) {
	d.mu.Lock()
	ch := d.calls[xid]
	delete(d.calls, xid)
	d.mu.Unlock()
	if ch != nil {
		select {
		case bp := <-ch:
			xdr.PutBuf(bp)
		default:
		}
	}
}

// deliver hands a pooled reply buffer to the call waiting on xid. It
// reports false — and the caller keeps ownership of bp — when no call
// waits on that xid or its channel is already full (a stale or duplicate
// reply, dropped exactly as clntudp_call dropped mismatched XIDs).
func (d *demux) deliver(xid uint32, bp *[]byte) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	ch, ok := d.calls[xid]
	if !ok {
		return false
	}
	select {
	case ch <- bp:
		return true
	default:
		return false
	}
}

// fail records the terminal transport error and wakes every waiter. Only
// the first error sticks.
func (d *demux) fail(err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.err == nil {
		d.err = err
		close(d.done)
	}
}

func (d *demux) error() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}

// inFlight reports how many reply slots are registered — the in-flight
// call count, exposed so leak tests can pin "cancelled calls release
// their slot".
func (d *demux) inFlight() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.calls)
}

// lifecycle is the close state machine shared by both transports. done
// is closed the moment Close begins, so backoff and redial sleeps can
// select on it and unblock immediately instead of finishing their
// timer (the client-side mirror of the server's accept-backoff fix).
type lifecycle struct {
	mu     sync.Mutex // guards closed
	closed bool
	done   chan struct{}
}

func newLifecycle() lifecycle {
	return lifecycle{done: make(chan struct{})}
}

func (l *lifecycle) isClosed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

// beginClose marks the lifecycle closed and wakes every sleeper
// selecting on done. It reports whether this call was the one that
// performed the transition (repeat closes are no-ops).
func (l *lifecycle) beginClose() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return false
	}
	l.closed = true
	if l.done != nil {
		close(l.done)
	}
	return true
}

// closeOnce performs the shared close sequence: mark closed, close the
// underlying connection (which stops the reader goroutine), then fail
// in-flight calls with ErrClosed. Repeat closes are no-ops.
func (l *lifecycle) closeOnce(conn io.Closer, dmx *demux) error {
	if !l.beginClose() {
		return nil
	}
	err := conn.Close()
	dmx.fail(ErrClosed)
	return err
}

// registerCall assigns the next XID and registers its reply slot,
// skipping over XIDs still claimed by in-flight calls from a previous
// counter epoch (post-wrap collisions). The loop terminates because
// fewer than 2^32 calls can be in flight at once.
func registerCall(xid *atomic.Uint32, dmx *demux) (uint32, chan *[]byte, error) {
	for {
		id := xid.Add(1)
		ch, err := dmx.register(id)
		if errors.Is(err, errXIDInFlight) {
			continue
		}
		return id, ch, err
	}
}

// ---------------------------------------------------------------------------
// Shared call-side helpers

// callTemplate compiles the per-client header template: Prog, Vers,
// Cred, and Verf are constant for a client's lifetime, so the header
// bytes are folded once and only the XID and procedure number are
// patched per call. A nil result (auth material the template compiler
// rejects — which the generic encoder rejects too) selects the generic
// interpretive path in marshalCall.
func callTemplate(cfg *Config) *rpcmsg.CallTemplate {
	t, err := rpcmsg.NewCallTemplate(cfg.Prog, cfg.Vers, cfg.Cred, rpcmsg.None())
	if err != nil {
		return nil
	}
	return t
}

// marshalCall encodes the call header and arguments into a pooled
// buffer, leaving prefix reserved bytes at its head (the TCP transport
// reserves the record mark there, so the record layer frames and writes
// the message without copying it again). With a template the header is
// one copy plus two 4-byte stores; without one it runs the generic
// encoder. Both produce byte-identical headers. The returned buffer
// must go back via xdr.PutBuf.
func marshalCall(cfg *Config, tmpl *rpcmsg.CallTemplate, xid, proc uint32, args Marshal, prefix int) (*[]byte, error) {
	bp := xdr.GetBuf(cfg.BufSize + prefix)
	buf := (*bp)[:prefix]
	e := xdr.GetEnc(buf)
	var err error
	if tmpl != nil {
		e.BS.SetBuffer(tmpl.AppendCall(buf, xid, proc))
		if err = args(&e.X); err != nil {
			err = fmt.Errorf("client: marshal args: %w", err)
		}
	} else {
		hdr := rpcmsg.CallHeader{
			XID: xid, Prog: cfg.Prog, Vers: cfg.Vers, Proc: proc,
			Cred: cfg.Cred, Verf: rpcmsg.None(),
		}
		if err = hdr.Marshal(&e.X); err != nil {
			err = fmt.Errorf("client: marshal call header: %w", err)
		} else if err = args(&e.X); err != nil {
			err = fmt.Errorf("client: marshal args: %w", err)
		}
	}
	*bp = e.BS.Buffer() // keep any growth pooled
	xdr.PutEnc(e)
	if err != nil {
		xdr.PutBuf(bp)
		return nil, err
	}
	return bp, nil
}

// callReq selects how a call's request bytes are produced: args is the
// closure path (the legacy Marshal API), cc+argp is the fused path (one
// whole-call codec pass). Exactly one is set.
type callReq struct {
	args Marshal
	cc   wire.CallAppender
	argp unsafe.Pointer
}

// marshalReq encodes one complete request into a pooled buffer with
// prefix reserved bytes at its head. The fused path reserves header and
// fixed-size argument bytes in one bounds check and stamps the XID into
// the image; the closure path is marshalCall unchanged. Both produce
// byte-identical messages.
func marshalReq(cfg *Config, tmpl *rpcmsg.CallTemplate, r callReq, xid, proc uint32, prefix int) (*[]byte, error) {
	if r.cc == nil {
		return marshalCall(cfg, tmpl, xid, proc, r.args, prefix)
	}
	bp := xdr.GetBuf(cfg.BufSize + prefix)
	var bs xdr.BufStream
	bs.SetBuffer((*bp)[:prefix])
	err := r.cc.Append(&bs, xid, r.argp)
	*bp = bs.Buffer() // keep any growth pooled
	if err != nil {
		xdr.PutBuf(bp)
		return nil, fmt.Errorf("client: marshal args: %w", err)
	}
	return bp, nil
}

// replySink selects how a call's reply bytes are consumed: fn is the
// closure path, rc+resp the fused path. The fused path decodes results
// straight out of the accepted-success reply; any other reply shape
// falls back to the generic header walk (via resc for the results), so
// failure detail is identical on both paths.
type replySink struct {
	fn   Marshal
	rc   wire.ReplyDecoder
	resc *wire.Codec // fallback result codec; nil for void results
	resp unsafe.Pointer
}

func (s *replySink) decode(raw []byte) error {
	if s.rc == nil {
		return decodeReply(raw, s.fn)
	}
	if handled, err := s.rc.DecodeReply(raw, s.resp); handled {
		if err != nil {
			return fmt.Errorf("client: unmarshal results: %w", err)
		}
		return nil
	}
	// Non-success, exotic, or ill-formed reply: cold path — extract the
	// full failure detail interpretively, exactly as the closure path
	// would.
	rm := Void
	if s.resc != nil {
		resc, resp := s.resc, s.resp
		rm = func(x *xdr.XDR) error { return resc.Marshal(x, resp) }
	}
	return decodeReply(raw, rm)
}

// errIllFormed marks a reply buffer whose header failed to decode; over a
// datagram transport the call keeps waiting, as clntudp_call ignored
// undecodable datagrams. It only surfaces wrapped (stream transports
// treat it as fatal), so it carries no "client:" prefix of its own.
var errIllFormed = errors.New("ill-formed reply header")

// decodeReply interprets one complete reply message and runs the caller's
// result unmarshaler. The common shape — an accepted SUCCESS with an
// in-bounds verifier — is recognized at fixed offsets without touching
// the interpretive walker; anything unusual (error statuses, denials,
// ill-formed headers) falls back to the generic ReplyHeader.Marshal so
// the full failure detail is still extracted.
func decodeReply(raw []byte, reply Marshal) error {
	if body, ok := rpcmsg.AcceptedSuccessBody(raw); ok {
		d := xdr.GetDec(body)
		err := reply(&d.X)
		xdr.PutDec(d)
		if err != nil {
			return fmt.Errorf("client: unmarshal results: %w", err)
		}
		return nil
	}
	d := xdr.GetDec(raw)
	defer xdr.PutDec(d)
	var rh rpcmsg.ReplyHeader
	if err := rh.Marshal(&d.X); err != nil {
		return errIllFormed
	}
	if err := checkReply(&rh); err != nil {
		return err
	}
	if err := reply(&d.X); err != nil {
		return fmt.Errorf("client: unmarshal results: %w", err)
	}
	return nil
}

// drainReply makes a last non-blocking check of the reply channel before
// Call returns a transport error or timeout. The reader goroutine may have
// delivered a valid reply in the same instant the connection failed, and
// select picks among ready arms at random, so without this a call could
// discard its own answer. Reports true when a decodable reply was found.
func drainReply(ch chan *[]byte, sink *replySink) (bool, error) {
	select {
	case bp := <-ch:
		err := sink.decode(*bp)
		xdr.PutBuf(bp)
		if errors.Is(err, errIllFormed) {
			return false, nil
		}
		return true, err
	default:
		return false, nil
	}
}

// ---------------------------------------------------------------------------
// Fused whole-call plans

// plannedProcs caches the fused whole-call codecs a client compiles on
// first typed use of each (procedure, plan pair): the call side fuses
// the client's header template with the argument plan, the reply side
// wraps the result plan for direct decode. An entry with no codecs
// records that its plan pair cannot fuse (exotic auth, generic-mode
// plans). The cache keys on the procedure and re-resolves when the
// caller's plans differ from the cached pair, so the fusion decision
// always belongs to the plans in hand, never to whichever caller
// happened to arrive first.
type plannedProcs struct {
	mu sync.RWMutex // guards m
	m  map[uint32]*plannedProc
}

type plannedProc struct {
	argc, resc *wire.Codec // identity of the plans the entry was compiled for
	call       wire.CallAppender
	rep        wire.ReplyDecoder // call == nil marks an unfusable pair
}

// lookup resolves (compiling on first use, or when the plans changed)
// the fused codecs for proc. It returns nil — route through the
// closure path — when this plan pair cannot fuse.
func (ps *plannedProcs) lookup(tmpl *rpcmsg.CallTemplate, proc uint32, argc, resc *wire.Codec) *plannedProc {
	ps.mu.RLock()
	e := ps.m[proc]
	ps.mu.RUnlock()
	if e == nil || e.argc != argc || e.resc != resc {
		e = compilePlanned(tmpl, proc, argc, resc)
		ps.mu.Lock()
		if ps.m == nil {
			ps.m = make(map[uint32]*plannedProc)
		}
		// Last writer wins: concurrent compilations for the same pair are
		// equivalent, and a different pair claims the slot for its own
		// steady state (alternating pairs on one procedure would thrash
		// the cache, but each call still gets a correct codec).
		ps.m[proc] = e
		ps.mu.Unlock()
	}
	if e.call == nil {
		return nil
	}
	return e
}

// compilePlanned builds the fused entry for one plan pair; when the
// pair must stay on the template+plan path — no template (auth material
// the template compiler rejects) or interpretive-mode plans — the entry
// carries no codecs and records the negative decision for that pair.
func compilePlanned(tmpl *rpcmsg.CallTemplate, proc uint32, argc, resc *wire.Codec) *plannedProc {
	e := &plannedProc{argc: argc, resc: resc}
	if tmpl == nil {
		return e
	}
	// Generic-mode codecs are rejected by the constructors themselves
	// (no flat program to fuse), so no mode pre-check is needed here.
	call, err := wire.NewCallCodec(tmpl, proc, argc)
	if err != nil {
		return e
	}
	rep, err := wire.NewReplyCodec(nil, resc)
	if err != nil {
		return e
	}
	e.call, e.rep = call, rep
	// An rpcgen-emitted compiled codec registered for either plan takes
	// precedence over the fused interpreter; the message bytes are
	// identical, only the marshaling engine changes. The concrete values
	// are checked for nil before the interface assignment so a missing
	// registration can never plant a typed-nil appender.
	if cc := wire.NewCompiledCallCodec(tmpl, proc, argc); cc != nil {
		e.call = cc
	}
	if rc := wire.NewCompiledReplyCodec(nil, resc); rc != nil {
		e.rep = rc
	}
	return e
}

// plannedCaller is the transport hook CallTyped probes for: transports
// that can compile fused whole-call codecs report handled=true and
// perform the call; anything else falls back to the closure path.
type plannedCaller interface {
	callPlanned(ctx context.Context, proc uint32, argc *wire.Codec, arg unsafe.Pointer, resc *wire.Codec, res unsafe.Pointer) (bool, error)
}

func checkReply(rh *rpcmsg.ReplyHeader) error {
	if rh.Stat == rpcmsg.MsgAccepted && rh.AcceptStat == rpcmsg.Success {
		return nil
	}
	return &RPCError{
		Stat:       rh.Stat,
		AcceptStat: rh.AcceptStat,
		RejectStat: rh.RejectStat,
		AuthStat:   rh.AuthStat,
		Mismatch:   rh.Mismatch,
	}
}

// ---------------------------------------------------------------------------
// UDP

// UDP is a datagram client (CLIENT from clntudp_create): unreliable
// transport, at-least-once semantics via retransmission, reply matched to
// request by XID. Any number of goroutines may Call concurrently; each
// call retransmits independently while a shared reader goroutine routes
// replies.
type UDP struct {
	cfg    Config
	tmpl   *rpcmsg.CallTemplate
	conn   net.PacketConn
	server net.Addr

	xid       atomic.Uint32
	dmx       *demux
	planned   plannedProcs
	truncated atomic.Uint64
	reader    sync.Once
	life      lifecycle

	policy *RetryPolicy // nil → legacy fixed-tick retransmission
	budget *retryBudget
	stats  retryCounters
}

// NewUDP returns a client sending calls for cfg.Prog/cfg.Vers to server
// over conn. The caller retains ownership of conn's lifetime via Close.
func NewUDP(conn net.PacketConn, server net.Addr, cfg Config) *UDP {
	cfg.fill()
	c := &UDP{cfg: cfg, tmpl: callTemplate(&cfg), conn: conn, server: server,
		dmx: newDemux(), life: newLifecycle()}
	c.xid.Store(cfg.FirstXID)
	if cfg.Retry != nil {
		p := cfg.Retry.norm(cfg.Retransmit)
		c.policy = &p
		c.budget = newRetryBudget(&p)
	}
	return c
}

// Call performs one remote procedure call: marshal header + args, send,
// await the XID-matched reply (retransmitting every cfg.Retransmit), then
// decode the results with reply. It is safe for concurrent use; unlike
// the original one-socket client, concurrent calls proceed in parallel
// and replies may arrive in any order.
func (c *UDP) Call(proc uint32, args, reply Marshal) error {
	return c.doCall(context.Background(), proc, callReq{args: args}, replySink{fn: reply})
}

// CallCtx is Call with a per-call context: the call's deadline is the
// earlier of the context deadline and the client's Timeout, and
// cancelling the context abandons the call immediately (releasing its
// reply slot; a late reply is dropped by the demultiplexer exactly like
// any stale datagram).
func (c *UDP) CallCtx(ctx context.Context, proc uint32, args, reply Marshal) error {
	return c.doCall(ctx, proc, callReq{args: args}, replySink{fn: reply})
}

// callPlanned is the fused entry point CallTyped routes typed calls
// through: same transport semantics as Call, with the request encoded
// by a whole-call codec and the results decoded straight from the
// reply. handled=false sends the caller to the closure path.
func (c *UDP) callPlanned(ctx context.Context, proc uint32, argc *wire.Codec, arg unsafe.Pointer, resc *wire.Codec, res unsafe.Pointer) (bool, error) {
	e := c.planned.lookup(c.tmpl, proc, argc, resc)
	if e == nil {
		return false, nil
	}
	return true, c.doCall(ctx, proc,
		callReq{cc: e.call, argp: arg},
		replySink{rc: e.rep, resc: resc, resp: res})
}

func (c *UDP) doCall(ctx context.Context, proc uint32, req callReq, sink replySink) error {
	if c.isClosed() {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	c.reader.Do(func() { go c.readLoop() })

	xid, ch, err := registerCall(&c.xid, c.dmx)
	if err != nil {
		return err
	}
	defer c.dmx.unregister(xid)

	reqBuf, err := marshalReq(&c.cfg, c.tmpl, req, xid, proc, 0)
	if err != nil {
		return err
	}
	defer xdr.PutBuf(reqBuf)
	if len(*reqBuf) >= c.cfg.BufSize {
		// The growable marshal buffer fits any request, but a datagram
		// transport must still bound it: reject client-side, as the
		// original fixed-buffer client did with a marshal overflow. The
		// bound is exclusive: a datagram that *fills* the receiver's
		// buffer is indistinguishable from a truncated one and is
		// dropped on arrival, so sending it would only burn the timeout.
		return fmt.Errorf("client: marshal args: %w (request %d bytes reaches datagram buffer %d)",
			xdr.ErrOverflow, len(*reqBuf), c.cfg.BufSize)
	}

	if err := c.send(*reqBuf); err != nil {
		return err
	}
	// attempt counts datagrams sent so far. With a policy the schedule is
	// exponential backoff with full jitter, bounded by MaxAttempts and the
	// retry budget; without one it is the classic fixed tick. Either way
	// the deadline — not the attempt bound — ends the call: a stopped
	// retransmission schedule still waits for a straggling reply.
	deadline := callDeadline(ctx, c.cfg.Timeout)
	overall := time.NewTimer(time.Until(deadline))
	defer overall.Stop()
	attempt := 1
	next := c.cfg.Retransmit
	if c.policy != nil {
		next = c.policy.delay(attempt)
	}
	retrans := time.NewTimer(next)
	defer retrans.Stop()
	for {
		select {
		case bp := <-ch:
			err := sink.decode(*bp)
			xdr.PutBuf(bp)
			if errors.Is(err, errIllFormed) {
				continue // undecodable datagram: ignore, keep waiting
			}
			return err
		case <-retrans.C:
			if c.policy != nil {
				if attempt >= c.policy.MaxAttempts {
					continue // schedule exhausted: wait out the deadline
				}
				if !c.budget.take() {
					// Suppressed, not failed: count it, keep the schedule
					// running so a refilled bucket resumes retransmitting.
					c.stats.budgetDenied.Add(1)
					retrans.Reset(c.policy.delay(attempt))
					continue
				}
			}
			if err := c.send(*reqBuf); err != nil {
				if ok, derr := drainReply(ch, &sink); ok {
					return derr
				}
				return err
			}
			attempt++
			c.stats.retransmits.Add(1)
			if c.policy != nil {
				retrans.Reset(c.policy.delay(attempt))
			} else {
				retrans.Reset(c.cfg.Retransmit)
			}
		case <-overall.C:
			if ok, err := drainReply(ch, &sink); ok {
				return err
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			return ErrTimeout
		case <-ctx.Done():
			if ok, err := drainReply(ch, &sink); ok {
				return err
			}
			return ctx.Err()
		case <-c.dmx.done:
			if ok, err := drainReply(ch, &sink); ok {
				return err
			}
			return c.dmx.error()
		}
	}
}

// RetryStats reports the client's retransmission counters.
func (c *UDP) RetryStats() RetryStats { return c.stats.retryStats() }

// InFlight reports how many calls currently hold a reply slot; it
// returns to zero once every outstanding call finishes, times out, or
// is cancelled (no slot leaks).
func (c *UDP) InFlight() int { return c.dmx.inFlight() }

func (c *UDP) send(req []byte) error {
	if _, err := c.conn.WriteTo(req, c.server); err != nil {
		if c.isClosed() {
			return ErrClosed
		}
		return fmt.Errorf("client: send: %w", err)
	}
	return nil
}

// maxConsecReadErrs bounds how many back-to-back datagram read errors the
// reader tolerates before declaring the socket dead.
const maxConsecReadErrs = 64

// readLoop is the demultiplexer: it owns the socket's read side, peeks
// the XID of each datagram, and hands the pooled buffer to the matching
// call. It exits when the socket is closed or persistently failing.
func (c *UDP) readLoop() {
	consecErrs := 0
	for {
		bp := xdr.GetBuf(c.cfg.BufSize)
		// Read into exactly BufSize bytes: recycled pool buffers may be
		// larger, and the datagram size bound must not vary with them.
		buf := (*bp)[:c.cfg.BufSize]
		n, _, err := c.conn.ReadFrom(buf)
		if err != nil {
			xdr.PutBuf(bp)
			if c.isClosed() || errors.Is(err, net.ErrClosed) {
				c.dmx.fail(ErrClosed)
				return
			}
			// Datagram read errors are usually per-packet (e.g. an ICMP
			// port-unreachable surfaced on read after a send to a briefly
			// down server): keep reading so one transient error does not
			// brick the client — calls keep retransmitting meanwhile. A
			// persistent error stream means the socket is dead; fail every
			// call rather than spinning forever.
			if consecErrs++; consecErrs >= maxConsecReadErrs {
				c.dmx.fail(fmt.Errorf("client: recv: %w", err))
				return
			}
			continue
		}
		consecErrs = 0
		if n == c.cfg.BufSize {
			// A datagram that fills the read buffer exactly cannot be told
			// apart from one the kernel truncated to fit it; handing it to
			// the reply decoder would risk parsing a prefix of the real
			// message as if complete. Drop it — the call retransmits — and
			// count the drop so operators can size BufSize accordingly.
			c.truncated.Add(1)
			xdr.PutBuf(bp)
			continue
		}
		*bp = buf[:n]
		xid, ok := rpcmsg.PeekXID(*bp)
		if !ok || !c.dmx.deliver(xid, bp) {
			xdr.PutBuf(bp) // stale or duplicate reply: discard
		}
	}
}

// TruncatedDrops reports how many possibly-truncated reply datagrams
// (received length == BufSize) the reader has discarded.
func (c *UDP) TruncatedDrops() uint64 { return c.truncated.Load() }

func (c *UDP) isClosed() bool { return c.life.isClosed() }

// Close releases the client and its socket. In-flight calls fail with
// ErrClosed.
func (c *UDP) Close() error { return c.life.closeOnce(c.conn, c.dmx) }

// ---------------------------------------------------------------------------
// TCP

// TCP is a connection-oriented client (clnttcp_create): reliable
// transport, record-marked stream, no retransmission. Calls from many
// goroutines are pipelined onto the single connection: requests are
// written back to back and a reader goroutine routes each reply record to
// its call by XID, so replies may be consumed out of order.
//
// Record writes go through a group-commit batcher: when several calls
// are in flight their request records coalesce into one vectored write,
// so syscalls amortize across the pipeline depth (Config.NoBatch keeps
// the one-write-per-record baseline). CallBatched queues fire-and-forget
// requests on the same writer.
type TCP struct {
	cfg  Config
	tmpl *rpcmsg.CallTemplate

	xid     atomic.Uint32
	planned plannedProcs
	life    lifecycle

	policy *RetryPolicy             // nil → legacy single-connection client
	budget *retryBudget             // shared by call retries and redials
	redial func() (net.Conn, error) // nil → no transparent reconnect
	stats  retryCounters

	// connMu guards cur, redialCh — the connection generations. cur is the connection
	// calls go out on; each generation owns its conn, demultiplexer,
	// batcher, and reader, so a dead generation's state never bleeds
	// into its replacement. redialCh is non-nil while one goroutine is
	// reconnecting (closed when it finishes): single-flight, so a burst
	// of failing calls produces one dial sequence, not one each.
	connMu   sync.Mutex
	cur      *tcpConn
	redialCh chan struct{}
}

// tcpConn is one connection generation: everything whose lifetime is
// the connection's, not the client's. The client-lifetime state — XID
// counter, header template, fused/compiled codec cache, retry budget,
// stats — lives on TCP and is reused across generations, which is what
// makes reconnect cheap: a replacement connection recompiles nothing.
type tcpConn struct {
	conn   net.Conn
	dmx    *demux
	batch  *xdr.RecBatcher // owns the write side of the record stream
	reader sync.Once
}

func (tc *tcpConn) start(c *TCP) {
	tc.reader.Do(func() { go c.readLoop(tc) })
}

// minWriteGrace floors the armed write deadline: a call whose own
// deadline already passed (it will time out regardless) must not arm an
// instantly-expired deadline and poison the shared write for the
// healthy calls batched with it.
const minWriteGrace = 5 * time.Millisecond

// newConn builds a connection generation around conn, wiring the
// batcher's deadline and failure hooks to this generation only.
func (c *TCP) newConn(conn net.Conn) *tcpConn {
	tc := &tcpConn{conn: conn, dmx: newDemux()}
	tc.batch = xdr.NewRecBatcher(xdr.NewRecStream(conn, 0))
	// The write deadline covers each vectored write: a peer that stopped
	// reading must not wedge the writers sharing the stream past their
	// call budget. earliest is the tightest per-call deadline among the
	// batched records (from WriteDeadline), so a nearly-expired call
	// bounds the write by its own remaining budget, never by a whole
	// fresh Timeout; records with no deadline fall back to Timeout.
	tc.batch.PreWrite = func(earliest time.Time) error {
		dl := time.Now().Add(c.cfg.Timeout)
		if !earliest.IsZero() && earliest.Before(dl) {
			dl = earliest
			if floor := time.Now().Add(minWriteGrace); dl.Before(floor) {
				dl = floor
			}
		}
		return conn.SetWriteDeadline(dl)
	}
	// A failed or timed-out batch write leaves the record framing
	// unusable for every call sharing the stream — including calls whose
	// records were queued by a leader that already returned — so fail the
	// generation and close its connection so everyone unblocks now.
	tc.batch.OnError = func(err error) {
		if c.isClosed() {
			tc.dmx.fail(ErrClosed)
		} else {
			tc.dmx.fail(fmt.Errorf("client: send record: %w", err))
		}
		_ = conn.Close()
	}
	if c.cfg.NoBatch {
		tc.batch.MaxBatch = 1
	} else if c.cfg.MaxFlushDelay > 0 {
		tc.batch.MaxFlushDelay = c.cfg.MaxFlushDelay
	}
	return tc
}

// NewTCP returns a client issuing calls over the established connection.
// With cfg.Redial set the connection is only the first of possibly many:
// when it breaks, the client redials under the retry policy and swaps in
// a replacement generation transparently.
func NewTCP(conn net.Conn, cfg Config) *TCP {
	cfg.fill()
	c := &TCP{cfg: cfg, tmpl: callTemplate(&cfg), life: newLifecycle(), redial: cfg.Redial}
	c.xid.Store(cfg.FirstXID)
	if cfg.Retry != nil || cfg.Redial != nil {
		var p RetryPolicy
		if cfg.Retry != nil {
			p = *cfg.Retry
		}
		p = p.norm(0)
		c.policy = &p
		c.budget = newRetryBudget(&p)
	}
	c.cur = c.newConn(conn)
	return c
}

// DialTCP dials addr and returns a stream client with transparent
// reconnect enabled: cfg.Redial defaults to redialing the same address.
func DialTCP(network, addr string, cfg Config) (*TCP, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	if cfg.Redial == nil {
		cfg.Redial = func() (net.Conn, error) { return net.Dial(network, addr) }
	}
	return NewTCP(conn, cfg), nil
}

// current returns the live connection generation (nil only after Close
// races the first use — cur is set before NewTCP returns).
func (c *TCP) current() *tcpConn {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.cur
}

// errBudget reports a retry or redial suppressed by the token-bucket
// budget: the client is failing faster than the policy lets it retry.
var errBudget = errors.New("client: retry budget exhausted")

// acquire returns a healthy connection generation, reconnecting if the
// current one has failed. Without a Redial it returns the current
// generation regardless of health — the call then surfaces the dead
// generation's error exactly as the legacy client did. With one, the
// first goroutine to find the generation dead becomes the redialer and
// the rest wait on its outcome (bounded by the caller's deadline).
func (c *TCP) acquire(ctx context.Context, deadline time.Time) (*tcpConn, error) {
	for {
		c.connMu.Lock()
		if c.life.isClosed() {
			c.connMu.Unlock()
			return nil, ErrClosed
		}
		tc := c.cur
		if tc != nil && tc.dmx.error() == nil {
			c.connMu.Unlock()
			return tc, nil
		}
		if c.redial == nil {
			c.connMu.Unlock()
			if tc == nil {
				return nil, ErrClosed
			}
			return tc, nil
		}
		if c.redialCh == nil {
			ch := make(chan struct{})
			c.redialCh = ch
			c.connMu.Unlock()
			err := c.reconnect(tc)
			c.connMu.Lock()
			c.redialCh = nil
			c.connMu.Unlock()
			close(ch)
			if err != nil {
				return nil, err
			}
			continue
		}
		ch := c.redialCh
		c.connMu.Unlock()
		wait := time.NewTimer(time.Until(deadline))
		select {
		case <-ch:
			wait.Stop()
		case <-wait.C:
			return nil, ErrTimeout
		case <-ctx.Done():
			wait.Stop()
			return nil, ctx.Err()
		case <-c.life.done:
			wait.Stop()
			return nil, ErrClosed
		}
	}
}

// reconnect retires the dead generation and dials its replacement under
// the retry policy: each attempt after the first spends a budget token
// and backs off with full jitter, interruptible by Close. On success
// the replacement is installed as cur (unless Close won the race, in
// which case the fresh connection is closed again).
func (c *TCP) reconnect(old *tcpConn) error {
	if old != nil {
		_ = old.conn.Close()
	}
	var lastErr error
	for attempt := 1; attempt <= c.policy.MaxAttempts; attempt++ {
		if attempt > 1 {
			if !c.budget.take() {
				c.stats.budgetDenied.Add(1)
				return fmt.Errorf("client: reconnect: %w", errBudget)
			}
			backoff := time.NewTimer(c.policy.delay(attempt - 1))
			select {
			case <-backoff.C:
			case <-c.life.done:
				backoff.Stop()
				return ErrClosed
			}
		}
		if c.life.isClosed() {
			return ErrClosed
		}
		conn, err := c.redial()
		if err != nil {
			c.stats.redialFailures.Add(1)
			lastErr = err
			continue
		}
		tc := c.newConn(conn)
		c.connMu.Lock()
		if c.life.isClosed() {
			c.connMu.Unlock()
			_ = conn.Close()
			return ErrClosed
		}
		c.cur = tc
		c.connMu.Unlock()
		c.stats.reconnects.Add(1)
		return nil
	}
	return fmt.Errorf("client: reconnect: %w", lastErr)
}

// Call performs one call over the stream: one record out, one record
// back, with the wait multiplexed so concurrent calls share the
// connection. The arguments are marshaled into a pooled buffer outside
// the write lock, so slow marshaling never blocks other senders.
func (c *TCP) Call(proc uint32, args, reply Marshal) error {
	return c.doCall(context.Background(), proc, callReq{args: args}, replySink{fn: reply})
}

// CallCtx is Call with a per-call context; see (*UDP).CallCtx. Over the
// stream the context deadline also bounds the shared record write (the
// batcher arms the connection's write deadline from the earliest
// deadline in each batch).
func (c *TCP) CallCtx(ctx context.Context, proc uint32, args, reply Marshal) error {
	return c.doCall(ctx, proc, callReq{args: args}, replySink{fn: reply})
}

// callPlanned is the fused entry point CallTyped routes typed calls
// through; see (*UDP).callPlanned.
func (c *TCP) callPlanned(ctx context.Context, proc uint32, argc *wire.Codec, arg unsafe.Pointer, resc *wire.Codec, res unsafe.Pointer) (bool, error) {
	e := c.planned.lookup(c.tmpl, proc, argc, resc)
	if e == nil {
		return false, nil
	}
	return true, c.doCall(ctx, proc,
		callReq{cc: e.call, argp: arg},
		replySink{rc: e.rep, resc: resc, resp: res})
}

// doCall drives one call to completion, possibly across connection
// generations. Each attempt runs on the then-current generation; a
// transport failure is classified by whether the request could have
// reached the server. "Definitely not sent" failures (the batcher
// rejected the record before queueing it, or the generation was already
// dead at registration) are always safe to retry; "maybe sent" failures
// (the record was handed to the wire before the connection died) are
// retried only under RetryPolicy.RetryAmbiguous, because the stream
// path has no duplicate-request cache to absorb a re-execution.
func (c *TCP) doCall(ctx context.Context, proc uint32, req callReq, sink replySink) error {
	if c.isClosed() {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	deadline := callDeadline(ctx, c.cfg.Timeout)
	maxAttempts := 1
	if c.policy != nil && c.redial != nil {
		maxAttempts = c.policy.MaxAttempts
	}
	var lastErr error
	lastSent := false
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		if attempt > 1 {
			if lastSent && !c.policy.RetryAmbiguous {
				break
			}
			if !c.budget.take() {
				c.stats.budgetDenied.Add(1)
				lastErr = fmt.Errorf("%w (%w)", lastErr, errBudget)
				break
			}
			backoff := time.NewTimer(c.policy.delay(attempt - 1))
			select {
			case <-backoff.C:
			case <-ctx.Done():
				backoff.Stop()
				return ctx.Err()
			case <-c.life.done:
				backoff.Stop()
				return ErrClosed
			}
			if time.Now().After(deadline) {
				break
			}
			c.stats.retries.Add(1)
		}
		final, err, sent := c.attemptOnce(ctx, proc, req, sink, deadline)
		if final {
			return err
		}
		lastErr, lastSent = err, sent
	}
	if c.redial == nil {
		return lastErr
	}
	return &TransportError{Err: lastErr, MaybeSent: lastSent}
}

// attemptOnce runs one send/await cycle on the current generation.
// final=true means err is the call's outcome (reply decoded, RPC error,
// timeout, cancellation, closed client); final=false means a transport
// failure the retry loop may act on, with sent reporting whether the
// request could have reached the server.
func (c *TCP) attemptOnce(ctx context.Context, proc uint32, req callReq, sink replySink, deadline time.Time) (final bool, err error, sent bool) {
	tc, aerr := c.acquire(ctx, deadline)
	if aerr != nil {
		if errors.Is(aerr, ErrClosed) || errors.Is(aerr, ErrTimeout) ||
			errors.Is(aerr, context.Canceled) || errors.Is(aerr, context.DeadlineExceeded) {
			return true, aerr, false
		}
		// Reconnect already retried dialing under the policy; surface its
		// failure with the not-sent classification rather than looping.
		return true, &TransportError{Err: aerr, MaybeSent: false}, false
	}
	tc.start(c)

	xid, ch, rerr := registerCall(&c.xid, tc.dmx)
	if rerr != nil {
		// The generation died before the call registered: nothing sent.
		if c.isClosed() {
			return true, ErrClosed, false
		}
		return false, rerr, false
	}
	defer tc.dmx.unregister(xid)

	// The record mark is reserved at the head of the marshal buffer, so
	// the record layer patches it in place and the whole call leaves in
	// one Write — the message is never copied into the fragment buffer.
	reqBuf, merr := marshalReq(&c.cfg, c.tmpl, req, xid, proc, xdr.RecordMarkLen)
	if merr != nil {
		return true, merr, false
	}
	// Ownership of reqBuf transfers to the batcher: it is released after
	// the batch carrying it is written. Concurrent callers coalesce —
	// their records leave in one vectored write — and any queued batched
	// calls (CallBatched) ride out with this record. The call's deadline
	// rides along so the batch write is armed with the earliest deadline
	// among its records.
	if werr := tc.batch.WriteDeadline(reqBuf, deadline); werr != nil {
		if c.isClosed() {
			return true, ErrClosed, false
		}
		// A record rejected by an already-failed batcher never entered the
		// queue: definitively not sent. Any other write failure may have
		// put a prefix of the batch — including this record — on the wire.
		return false, fmt.Errorf("client: send record: %w", werr), !errors.Is(werr, xdr.ErrRejected)
	}

	overall := time.NewTimer(time.Until(deadline))
	defer overall.Stop()
	select {
	case bp := <-ch:
		derr := sink.decode(*bp)
		xdr.PutBuf(bp)
		if errors.Is(derr, errIllFormed) {
			return true, fmt.Errorf("client: read reply: %w", derr), true
		}
		return true, derr, true
	case <-overall.C:
		if ok, derr := drainReply(ch, &sink); ok {
			return true, derr, true
		}
		if cerr := ctx.Err(); cerr != nil {
			return true, cerr, true
		}
		return true, ErrTimeout, true
	case <-ctx.Done():
		if ok, derr := drainReply(ch, &sink); ok {
			return true, derr, true
		}
		return true, ctx.Err(), true
	case <-tc.dmx.done:
		if ok, derr := drainReply(ch, &sink); ok {
			return true, derr, true
		}
		if c.isClosed() {
			return true, ErrClosed, false
		}
		// The request was handed to the wire before the generation died:
		// the server may have executed it even though no reply arrived.
		return false, tc.dmx.error(), true
	}
}

// RetryStats reports the client's retry counters.
func (c *TCP) RetryStats() RetryStats { return c.stats.retryStats() }

// ReconnectStats reports the client's transparent-reconnect counters.
func (c *TCP) ReconnectStats() ReconnectStats { return c.stats.reconnectStats() }

// InFlight reports how many calls currently hold a reply slot on the
// live connection generation; see (*UDP).InFlight.
func (c *TCP) InFlight() int {
	tc := c.current()
	if tc == nil {
		return 0
	}
	return tc.dmx.inFlight()
}

// QueuedRecords reports how many records sit unflushed in the live
// generation's batcher queue (leak gauge: cancelled and failed calls
// must not strand entries there).
func (c *TCP) QueuedRecords() int {
	tc := c.current()
	if tc == nil {
		return 0
	}
	return tc.batch.Pending()
}

// CallBatched issues one ONC batched (fire-and-forget) call: the request
// is marshaled and queued on the connection's record writer, and no
// reply is awaited — the original batching protocol of clnt_tcp, where a
// sequence of batched calls is terminated by a normal Call whose write
// flushes the queue and whose reply confirms the connection is alive.
// Queued calls also leave when the queued bytes reach the batcher's
// watermark, on an explicit Flush, or on Close.
//
// The semantics are strictly weaker than Call: no reply means no
// at-most-once confirmation and no error report from the server (the
// server's reply, if any, is discarded by the demultiplexer), and a
// transport failure after CallBatched returns surfaces only on the next
// Call, Flush, or CallBatched. Not supported over UDP, exactly as in the
// original: a datagram transport would need retransmission, which needs
// a reply.
func (c *TCP) CallBatched(proc uint32, args Marshal) error {
	if c.isClosed() {
		return ErrClosed
	}
	tc, aerr := c.acquire(context.Background(), time.Now().Add(c.cfg.Timeout))
	if aerr != nil {
		return aerr
	}
	// Start the reader even though no reply is expected: the server
	// replies to batched calls it cannot tell apart from normal ones, and
	// someone must drain those records off the connection.
	tc.start(c)
	xid := c.xid.Add(1)
	reqBuf, err := marshalReq(&c.cfg, c.tmpl, callReq{args: args}, xid, proc, xdr.RecordMarkLen)
	if err != nil {
		return err
	}
	if err := tc.batch.Queue(reqBuf); err != nil {
		if c.isClosed() {
			return ErrClosed
		}
		return fmt.Errorf("client: send record: %w", err)
	}
	return nil
}

// Flush forces out every queued batched call without issuing a terminal
// Call. A failure here poisons the connection like any other write
// failure.
func (c *TCP) Flush() error {
	tc := c.current()
	if tc == nil {
		return ErrClosed
	}
	if err := tc.batch.Flush(); err != nil {
		if c.isClosed() {
			return ErrClosed
		}
		return fmt.Errorf("client: send record: %w", err)
	}
	return nil
}

// readLoop owns one generation's read side: it slurps one reply record
// at a time into a pooled buffer and routes it by XID. Records for XIDs
// with no waiter (e.g. replies arriving after a call timed out) are
// dropped. A read failure fails only this generation; with Redial set
// the next call swaps in a replacement.
func (c *TCP) readLoop(tc *tcpConn) {
	rrec := xdr.NewRecStream(tc.conn, 0)
	for {
		bp := xdr.GetBuf(c.cfg.BufSize)
		rec, err := rrec.ReadRecord((*bp)[:0])
		*bp = rec
		if err != nil {
			xdr.PutBuf(bp)
			if c.isClosed() {
				tc.dmx.fail(ErrClosed)
			} else {
				tc.dmx.fail(fmt.Errorf("client: read reply: %w", err))
			}
			return
		}
		xid, ok := rpcmsg.PeekXID(rec)
		if !ok || !tc.dmx.deliver(xid, bp) {
			xdr.PutBuf(bp) // stale record (timed-out call): discard
		}
	}
}

func (c *TCP) isClosed() bool { return c.life.isClosed() }

// Close flushes any queued batched calls, then releases the client and
// its connection. In-flight calls fail with ErrClosed; a flush failure
// is reported once close itself succeeded (repeat closes stay nil — the
// batcher's empty Flush is a no-op even after a transport failure).
// Closing also interrupts any in-progress retry backoff or redial sleep
// immediately: sleepers select on the lifecycle's done channel.
func (c *TCP) Close() error {
	if !c.life.beginClose() {
		return nil
	}
	c.connMu.Lock()
	tc := c.cur
	c.connMu.Unlock()
	if tc == nil {
		return nil
	}
	ferr := tc.batch.Flush()
	err := tc.conn.Close()
	tc.dmx.fail(ErrClosed)
	if err == nil && ferr != nil {
		err = fmt.Errorf("client: flush batched calls: %w", ferr)
	}
	return err
}

// Caller is the interface satisfied by both transports; generated stubs
// are written against it.
type Caller interface {
	Call(proc uint32, args, reply Marshal) error
	Close() error
}

// CtxCaller extends Caller with per-call contexts; both transports
// satisfy it.
type CtxCaller interface {
	Caller
	CallCtx(ctx context.Context, proc uint32, args, reply Marshal) error
}

var (
	_ Caller        = (*UDP)(nil)
	_ Caller        = (*TCP)(nil)
	_ CtxCaller     = (*UDP)(nil)
	_ CtxCaller     = (*TCP)(nil)
	_ plannedCaller = (*UDP)(nil)
	_ plannedCaller = (*TCP)(nil)
)
