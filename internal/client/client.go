// Package client implements the client half of Sun RPC: the Go rendering
// of clnt_udp.c and clnt_tcp.c. A Client owns a transport, assigns XIDs,
// marshals the call header and arguments, retransmits over datagram
// transports, and decodes the reply header before handing the result
// stream to the caller's unmarshaler.
//
// Argument and result marshalers are pluggable (the Marshal type), which
// is what lets the benchmark harness swap the generic micro-layered stubs
// for the specialized stubs produced by internal/tempo without touching
// the transport code.
package client

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"specrpc/internal/rpcmsg"
	"specrpc/internal/xdr"
)

// Marshal serializes or deserializes one value against an XDR handle; it
// is the xdrproc_t of the original API.
type Marshal func(x *xdr.XDR) error

// Void is the marshaler for procedures without arguments or results.
func Void(*xdr.XDR) error { return nil }

// Errors returned by calls.
var (
	// ErrTimeout reports that the total call timeout elapsed without a
	// matching reply.
	ErrTimeout = errors.New("client: call timed out")
	// ErrClosed reports use of a closed client.
	ErrClosed = errors.New("client: closed")
)

// RPCError reports a failure delivered inside an RPC reply (rather than a
// transport fault): a non-success accept status or a rejection.
type RPCError struct {
	// Stat is the reply status (accepted vs denied).
	Stat rpcmsg.ReplyStat
	// AcceptStat holds the failure for accepted replies.
	AcceptStat rpcmsg.AcceptStat
	// RejectStat and AuthStat hold the failure for denied replies.
	RejectStat rpcmsg.RejectStat
	AuthStat   rpcmsg.AuthStat
	// Mismatch holds the supported version range for mismatch failures.
	Mismatch rpcmsg.MismatchInfo
}

// Error describes the failure in RFC terms.
func (e *RPCError) Error() string {
	if e.Stat == rpcmsg.MsgDenied {
		if e.RejectStat == rpcmsg.RPCMismatch {
			return fmt.Sprintf("rpc denied: RPC_MISMATCH (server supports %d..%d)",
				e.Mismatch.Low, e.Mismatch.High)
		}
		return fmt.Sprintf("rpc denied: AUTH_ERROR (auth_stat %d)", e.AuthStat)
	}
	if e.AcceptStat == rpcmsg.ProgMismatch {
		return fmt.Sprintf("rpc failed: PROG_MISMATCH (server supports %d..%d)",
			e.Mismatch.Low, e.Mismatch.High)
	}
	return fmt.Sprintf("rpc failed: %v", e.AcceptStat)
}

// Config carries the knobs shared by the UDP and TCP clients.
type Config struct {
	// Prog and Vers identify the remote program.
	Prog, Vers uint32
	// Cred is the credential attached to every call (default AUTH_NULL).
	Cred rpcmsg.OpaqueAuth
	// Timeout bounds the whole call including retransmissions
	// (clnt_call's total timeout). Default 5s.
	Timeout time.Duration
	// Retransmit is the datagram retransmission interval (clntudp_create's
	// wait argument). Default 500ms. Ignored over TCP.
	Retransmit time.Duration
	// BufSize is the marshaling buffer size. Default 8900 bytes (UDPMSGSIZE
	// was 8800 in the original; we round up for headers).
	BufSize int
	// FirstXID seeds the transaction-id sequence; 0 derives one from the
	// clock, as gettimeofday did in clntudp_create.
	FirstXID uint32
}

func (c *Config) fill() {
	if c.Timeout == 0 {
		c.Timeout = 5 * time.Second
	}
	if c.Retransmit == 0 {
		c.Retransmit = 500 * time.Millisecond
	}
	if c.BufSize == 0 {
		c.BufSize = 8900
	}
	if c.FirstXID == 0 {
		c.FirstXID = uint32(time.Now().UnixNano())
	}
	if c.Cred.Flavor == 0 && c.Cred.Body == nil {
		c.Cred = rpcmsg.None()
	}
}

// UDP is a datagram client (CLIENT from clntudp_create): unreliable
// transport, at-least-once semantics via retransmission, reply matched to
// request by XID.
type UDP struct {
	cfg    Config
	conn   net.PacketConn
	server net.Addr

	mu      sync.Mutex
	xid     uint32
	sendBuf []byte
	recvBuf []byte
	closed  bool
}

// NewUDP returns a client sending calls for cfg.Prog/cfg.Vers to server
// over conn. The caller retains ownership of conn's lifetime via Close.
func NewUDP(conn net.PacketConn, server net.Addr, cfg Config) *UDP {
	cfg.fill()
	return &UDP{
		cfg:     cfg,
		conn:    conn,
		server:  server,
		xid:     cfg.FirstXID,
		sendBuf: make([]byte, cfg.BufSize),
		recvBuf: make([]byte, cfg.BufSize),
	}
}

// Call performs one remote procedure call: marshal header + args, send,
// await the XID-matched reply (retransmitting every cfg.Retransmit), then
// decode the results with reply. It is safe for concurrent use; calls are
// serialized as in the original one-socket client.
func (c *UDP) Call(proc uint32, args, reply Marshal) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.xid++
	xid := c.xid

	// Marshal call header and arguments into the send buffer. This is the
	// paper's Figure 1 encoding path.
	mem := xdr.NewMemEncode(c.sendBuf)
	enc := xdr.NewEncoder(mem)
	hdr := rpcmsg.CallHeader{
		XID: xid, Prog: c.cfg.Prog, Vers: c.cfg.Vers, Proc: proc,
		Cred: c.cfg.Cred, Verf: rpcmsg.None(),
	}
	if err := hdr.Marshal(enc); err != nil {
		return fmt.Errorf("client: marshal call header: %w", err)
	}
	if err := args(enc); err != nil {
		return fmt.Errorf("client: marshal args: %w", err)
	}
	request := mem.Buffer()

	deadline := time.Now().Add(c.cfg.Timeout)
	for {
		if _, err := c.conn.WriteTo(request, c.server); err != nil {
			return fmt.Errorf("client: send: %w", err)
		}
		retry := time.Now().Add(c.cfg.Retransmit)
		if retry.After(deadline) {
			retry = deadline
		}
		switch err := c.awaitReply(xid, retry, reply); {
		case err == nil:
			return nil
		case errors.Is(err, errRetry):
			if !time.Now().Before(deadline) {
				return ErrTimeout
			}
			// Loop: retransmit.
		default:
			return err
		}
	}
}

// errRetry signals the retransmission loop to resend.
var errRetry = errors.New("retry")

// awaitReply reads datagrams until one carries the expected XID or the
// retry deadline passes. Mismatched XIDs (stale retransmission replies)
// are discarded exactly as in clntudp_call.
func (c *UDP) awaitReply(xid uint32, retry time.Time, reply Marshal) error {
	for {
		if err := c.conn.SetReadDeadline(retry); err != nil {
			return fmt.Errorf("client: set deadline: %w", err)
		}
		n, _, err := c.conn.ReadFrom(c.recvBuf)
		if err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				return errRetry
			}
			return fmt.Errorf("client: recv: %w", err)
		}
		dec := xdr.NewDecoder(xdr.NewMemDecode(c.recvBuf[:n]))
		var rh rpcmsg.ReplyHeader
		if err := rh.Marshal(dec); err != nil {
			continue // ill-formed datagram: ignore, keep waiting
		}
		if rh.XID != xid {
			continue // stale reply to an earlier transmission
		}
		if err := checkReply(&rh); err != nil {
			return err
		}
		if err := reply(dec); err != nil {
			return fmt.Errorf("client: unmarshal results: %w", err)
		}
		return nil
	}
}

func checkReply(rh *rpcmsg.ReplyHeader) error {
	if rh.Stat == rpcmsg.MsgAccepted && rh.AcceptStat == rpcmsg.Success {
		return nil
	}
	return &RPCError{
		Stat:       rh.Stat,
		AcceptStat: rh.AcceptStat,
		RejectStat: rh.RejectStat,
		AuthStat:   rh.AuthStat,
		Mismatch:   rh.Mismatch,
	}
}

// Close releases the client and its socket.
func (c *UDP) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

// TCP is a connection-oriented client (clnttcp_create): reliable
// transport, record-marked stream, no retransmission.
type TCP struct {
	cfg  Config
	conn net.Conn

	mu     sync.Mutex
	xid    uint32
	rec    *xdr.RecStream
	closed bool
}

// NewTCP returns a client issuing calls over the established connection.
func NewTCP(conn net.Conn, cfg Config) *TCP {
	cfg.fill()
	return &TCP{cfg: cfg, conn: conn, xid: cfg.FirstXID, rec: xdr.NewRecStream(conn, 0)}
}

// Call performs one call over the stream: one record out, one record back.
func (c *TCP) Call(proc uint32, args, reply Marshal) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.xid++
	xid := c.xid

	enc := xdr.NewEncoder(c.rec)
	hdr := rpcmsg.CallHeader{
		XID: xid, Prog: c.cfg.Prog, Vers: c.cfg.Vers, Proc: proc,
		Cred: c.cfg.Cred, Verf: rpcmsg.None(),
	}
	if err := hdr.Marshal(enc); err != nil {
		return fmt.Errorf("client: marshal call header: %w", err)
	}
	if err := args(enc); err != nil {
		return fmt.Errorf("client: marshal args: %w", err)
	}
	if err := c.rec.EndRecord(); err != nil {
		return fmt.Errorf("client: send record: %w", err)
	}

	if err := c.conn.SetReadDeadline(time.Now().Add(c.cfg.Timeout)); err != nil {
		return fmt.Errorf("client: set deadline: %w", err)
	}
	dec := xdr.NewDecoder(c.rec)
	for {
		var rh rpcmsg.ReplyHeader
		if err := rh.Marshal(dec); err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				return ErrTimeout
			}
			return fmt.Errorf("client: read reply: %w", err)
		}
		if rh.XID != xid {
			if err := c.rec.SkipRecord(); err != nil {
				return fmt.Errorf("client: skip stale record: %w", err)
			}
			continue
		}
		if err := checkReply(&rh); err != nil {
			_ = c.rec.SkipRecord()
			return err
		}
		if err := reply(dec); err != nil {
			return fmt.Errorf("client: unmarshal results: %w", err)
		}
		return c.rec.SkipRecord()
	}
}

// Close releases the client and its connection.
func (c *TCP) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

// Caller is the interface satisfied by both transports; generated stubs
// are written against it.
type Caller interface {
	Call(proc uint32, args, reply Marshal) error
	Close() error
}

var (
	_ Caller = (*UDP)(nil)
	_ Caller = (*TCP)(nil)
)
