package client

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"specrpc/internal/rpcmsg"
	"specrpc/internal/xdr"
)

// Batched-call (CallBatched) coverage: the differential wire-bytes pin
// and the error/flush semantics — queued calls leave with the terminal
// Call, with Flush, and with Close, and a dead peer surfaces on the
// flushing call instead of a timeout.

// batchedCfg returns a config with a deterministic XID seed so two
// clients produce comparable wire bytes.
func batchedCfg(noBatch bool) Config {
	return Config{Prog: 0x20000999, Vers: 1, FirstXID: 700,
		Timeout: 5 * time.Second, NoBatch: noBatch}
}

// batchedWire runs n CallBatched + Flush against a pipe and returns
// every byte the peer saw.
func batchedWire(t *testing.T, noBatch bool, n int) []byte {
	t.Helper()
	p1, p2 := net.Pipe()
	var mu sync.Mutex
	var wire bytes.Buffer
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 4096)
		for {
			k, err := p2.Read(buf)
			mu.Lock()
			wire.Write(buf[:k])
			mu.Unlock()
			if err != nil {
				return
			}
		}
	}()
	c := NewTCP(p1, batchedCfg(noBatch))
	v := uint32(0xDEADBEEF)
	args := func(x *xdr.XDR) error { return x.Uint32(&v) }
	for i := 0; i < n; i++ {
		if err := c.CallBatched(5, args); err != nil {
			t.Fatalf("CallBatched %d: %v", i, err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	<-done
	mu.Lock()
	defer mu.Unlock()
	return append([]byte(nil), wire.Bytes()...)
}

// TestBatchedWireIdentical is the differential pin of the acceptance
// criteria: batched-and-flushed calls put byte-identical records on the
// wire as the same calls written unbatched one record at a time, and
// the stream parses back into exactly the queued record count.
func TestBatchedWireIdentical(t *testing.T) {
	const calls = 3
	batched := batchedWire(t, false, calls)
	unbatched := batchedWire(t, true, calls)
	if !bytes.Equal(batched, unbatched) {
		t.Fatalf("wire bytes diverge: batched %d bytes, unbatched %d bytes",
			len(batched), len(unbatched))
	}
	r := xdr.NewRecStream(readOnly{bytes.NewReader(batched)}, 0)
	for i := 0; i < calls; i++ {
		rec, err := r.ReadRecord(nil)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if xid, ok := rpcmsg.PeekXID(rec); !ok || xid != uint32(700+1+i) {
			t.Fatalf("record %d: xid %d ok=%v, want %d", i, xid, ok, 700+1+i)
		}
	}
}

// readOnly adapts a reader into the ReadWriter NewRecStream wants.
type readOnly struct{ *bytes.Reader }

func (readOnly) Write(p []byte) (int, error) { return len(p), nil }

// replyTo frames and writes an accepted-success reply carrying result.
func replyTo(wrec *xdr.RecStream, xid, result uint32) error {
	var bs xdr.BufStream
	bs.SetBuffer(make([]byte, xdr.RecordMarkLen)) // keep room for the record mark
	enc := xdr.NewEncoder(&bs)
	rh := rpcmsg.AcceptedReply(xid)
	if err := rh.Marshal(enc); err != nil {
		return err
	}
	if err := enc.Uint32(&result); err != nil {
		return err
	}
	return wrec.WriteRecord(bs.Buffer())
}

// TestCallBatchedFlushedByTerminalCall: three queued batched calls must
// reach the peer before the terminal Call's own record, all in the
// flush the terminal call forces; the terminal call completes normally.
func TestCallBatchedFlushedByTerminalCall(t *testing.T) {
	p1, p2 := net.Pipe()
	defer p2.Close()
	c := NewTCP(p1, batchedCfg(false))
	defer c.Close()

	const batchedCalls = 3
	go func() {
		rrec := xdr.NewRecStream(p2, 0)
		wrec := xdr.NewRecStream(p2, 0)
		var lastXID uint32
		for i := 0; i < batchedCalls+1; i++ {
			rec, err := rrec.ReadRecord(nil)
			if err != nil {
				t.Errorf("peer read %d: %v", i, err)
				return
			}
			if xid, ok := rpcmsg.PeekXID(rec); ok {
				lastXID = xid
			}
		}
		// All four records arrived; answer only the terminal call.
		if err := replyTo(wrec, lastXID, 42); err != nil {
			t.Errorf("peer reply: %v", err)
		}
	}()

	v := uint32(7)
	args := func(x *xdr.XDR) error { return x.Uint32(&v) }
	for i := 0; i < batchedCalls; i++ {
		if err := c.CallBatched(5, args); err != nil {
			t.Fatalf("CallBatched %d: %v", i, err)
		}
	}
	var got uint32
	err := c.Call(5, args, func(x *xdr.XDR) error { return x.Uint32(&got) })
	if err != nil {
		t.Fatalf("terminal Call: %v", err)
	}
	if got != 42 {
		t.Fatalf("terminal Call result = %d, want 42", got)
	}
}

// TestCallBatchedFlushedByClose: Close must push queued batched calls
// onto the wire before tearing the connection down.
func TestCallBatchedFlushedByClose(t *testing.T) {
	p1, p2 := net.Pipe()
	defer p2.Close()
	c := NewTCP(p1, batchedCfg(false))

	const batchedCalls = 3
	records := make(chan int, 1)
	go func() {
		rrec := xdr.NewRecStream(p2, 0)
		n := 0
		for {
			if _, err := rrec.ReadRecord(nil); err != nil {
				records <- n
				return
			}
			n++
		}
	}()

	v := uint32(9)
	args := func(x *xdr.XDR) error { return x.Uint32(&v) }
	for i := 0; i < batchedCalls; i++ {
		if err := c.CallBatched(5, args); err != nil {
			t.Fatalf("CallBatched %d: %v", i, err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := <-records; got != batchedCalls {
		t.Fatalf("peer saw %d records before close, want %d", got, batchedCalls)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("repeat Close: %v", err)
	}
}

// TestBatchedFailingTerminalCall: with the peer gone, the terminal call
// that flushes the queue must surface the transport failure promptly —
// not a timeout — and the failure must stick for later batched calls.
func TestBatchedFailingTerminalCall(t *testing.T) {
	p1, p2 := net.Pipe()
	c := NewTCP(p1, batchedCfg(false))
	defer c.Close()

	v := uint32(1)
	args := func(x *xdr.XDR) error { return x.Uint32(&v) }
	for i := 0; i < 2; i++ {
		if err := c.CallBatched(5, args); err != nil {
			t.Fatalf("CallBatched %d: %v", i, err)
		}
	}
	p2.Close()

	start := time.Now()
	err := c.Call(5, args, Void)
	if err == nil {
		t.Fatal("terminal Call on a dead peer succeeded")
	}
	if errors.Is(err, ErrTimeout) {
		t.Fatalf("terminal Call timed out instead of surfacing the write error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("terminal Call took %v to fail", elapsed)
	}
	if err := c.CallBatched(5, args); err == nil {
		t.Fatal("CallBatched after transport failure succeeded")
	}
}
