package client

import (
	"errors"
	"sync"
	"testing"
	"time"

	"specrpc/internal/netsim"
	"specrpc/internal/rpcmsg"
	"specrpc/internal/server"
	"specrpc/internal/wire"
	"specrpc/internal/xdr"
)

// These tests cover the fused whole-call path end to end on the live
// transports, plus the demux-path regressions this PR fixes: the XID
// collision after counter wrap and the silent truncation of
// buffer-filling datagrams.

const (
	fusedProg = uint32(0x20000777)
	fusedVers = uint32(1)
	fusedProc = uint32(1)
)

var (
	fusedArgPlan = wire.MustPlan[[]int32](wire.VarArrayT(0, wire.Int32T()), wire.Specialized)
	fusedGenPlan = wire.MustPlan[[]int32](wire.VarArrayT(0, wire.Int32T()), wire.Generic)
)

// newFusedSimPair builds a netsim network with an echo server
// registered through RegisterTyped and a UDP client attached to it.
func newFusedSimPair(t *testing.T, cfg Config) (*UDP, *server.Server) {
	t.Helper()
	n := netsim.New()
	srv := server.New()
	server.RegisterTyped(srv, fusedProg, fusedVers, fusedProc, fusedArgPlan, fusedArgPlan,
		func(arg *[]int32) (*[]int32, error) { return arg, nil })
	sep := n.Attach("server")
	go func() { _ = srv.ServeUDP(sep) }()
	cfg.Prog, cfg.Vers = fusedProg, fusedVers
	c := NewUDP(n.Attach("client"), netsim.Addr("server"), cfg)
	t.Cleanup(func() {
		c.Close()
		srv.Close()
	})
	return c, srv
}

// TestCallTypedFusedRoundTrip drives typed calls over netsim and checks
// that they actually took the fused path: the per-procedure plan cache
// must hold a compiled whole-call codec afterwards.
func TestCallTypedFusedRoundTrip(t *testing.T) {
	c, _ := newFusedSimPair(t, Config{Timeout: 5 * time.Second})
	in := []int32{3, 1, 4, 1, 5, 9, 2, 6}
	var out []int32
	for i := 0; i < 3; i++ {
		if err := CallTyped(c, fusedProc, fusedArgPlan, &in, fusedArgPlan, &out); err != nil {
			t.Fatal(err)
		}
		if len(out) != len(in) || out[0] != 3 || out[7] != 6 {
			t.Fatalf("bad echo: %v", out)
		}
	}
	e := c.planned.lookup(c.tmpl, fusedProc, fusedArgPlan.Codec(), fusedArgPlan.Codec())
	if e == nil || e.call == nil || e.rep == nil {
		t.Fatal("typed call did not compile a fused whole-call codec")
	}
}

// TestCallTypedGenericPlanFallsBack: interpretive-mode plans have no
// flat program to fuse, so CallTyped must take the closure path — and
// still round-trip.
func TestCallTypedGenericPlanFallsBack(t *testing.T) {
	c, srv := newFusedSimPair(t, Config{Timeout: 5 * time.Second})
	server.RegisterTyped(srv, fusedProg, fusedVers, 2, fusedGenPlan, fusedGenPlan,
		func(arg *[]int32) (*[]int32, error) { return arg, nil })
	in := []int32{7, 8}
	var out []int32
	if err := CallTyped(c, 2, fusedGenPlan, &in, fusedGenPlan, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[1] != 8 {
		t.Fatalf("bad echo: %v", out)
	}
	if e := c.planned.lookup(c.tmpl, 2, fusedGenPlan.Codec(), fusedGenPlan.Codec()); e != nil {
		t.Fatal("generic plan unexpectedly fused")
	}
}

// TestCallTypedPlanSwitchRecompiles: the fused cache keys on the plan
// pair in hand — a cached entry never serves a different pair, and
// switching plans on one procedure re-resolves instead of inheriting
// the first caller's decision, so a generic-plan call cannot
// permanently de-optimize a procedure.
func TestCallTypedPlanSwitchRecompiles(t *testing.T) {
	c, _ := newFusedSimPair(t, Config{Timeout: 5 * time.Second})
	in := []int32{1, 2, 3}
	var out []int32
	// First caller uses interpretive plans: closure path, negative entry.
	if err := CallTyped(c, fusedProc, fusedGenPlan, &in, fusedGenPlan, &out); err != nil {
		t.Fatal(err)
	}
	if e := c.planned.lookup(c.tmpl, fusedProc, fusedGenPlan.Codec(), fusedGenPlan.Codec()); e != nil {
		t.Fatal("generic pair unexpectedly fused")
	}
	// A later caller with specialized plans must still get fusion.
	if err := CallTyped(c, fusedProc, fusedArgPlan, &in, fusedArgPlan, &out); err != nil {
		t.Fatal(err)
	}
	if e := c.planned.lookup(c.tmpl, fusedProc, fusedArgPlan.Codec(), fusedArgPlan.Codec()); e == nil {
		t.Fatal("specialized pair did not fuse after a generic-plan call")
	}
	// And a distinct-but-equivalent specialized pair round-trips too.
	other := wire.MustPlan[[]int32](wire.VarArrayT(0, wire.Int32T()), wire.Specialized)
	if err := CallTyped(c, fusedProc, other, &in, other, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[2] != 3 {
		t.Fatalf("bad echo: %v", out)
	}
}

// TestFusedErrorRepliesSurface: non-success replies must carry full
// RFC detail through the fused path's interpretive fallback.
func TestFusedErrorRepliesSurface(t *testing.T) {
	c, _ := newFusedSimPair(t, Config{Timeout: 5 * time.Second})
	in := []int32{1}
	var out []int32
	err := CallTyped(c, uint32(99), fusedArgPlan, &in, fusedArgPlan, &out) // unregistered proc
	var rpcErr *RPCError
	if !errors.As(err, &rpcErr) || rpcErr.AcceptStat != rpcmsg.ProcUnavail {
		t.Fatalf("err = %v, want PROC_UNAVAIL", err)
	}
}

// TestXIDWrapCollision is the demux regression: when the 32-bit XID
// counter comes back around while a slow call from the previous epoch
// is still in flight, the second call must be fenced onto a fresh XID.
// Before the fix the second registration silently replaced the first
// call's reply slot, so the first reply was delivered to the wrong
// waiter (wrong results) and the first call timed out.
func TestXIDWrapCollision(t *testing.T) {
	n := netsim.New()
	sep := n.Attach("server")
	cep := n.Attach("client")
	// Seed the counter two below wrap so the collision crosses it.
	c := NewUDP(cep, netsim.Addr("server"), Config{
		Prog: fusedProg, Vers: fusedVers,
		FirstXID: ^uint32(0) - 1, Timeout: 5 * time.Second, Retransmit: 2 * time.Second,
	})
	defer c.Close()

	// Hand-rolled responder: hold the first request until the second
	// arrives, then answer them oldest-first so the first reply is the
	// one a collided slot would misdeliver.
	type pending struct {
		xid uint32
		arg uint32
	}
	reqs := make(chan pending, 2)
	go func() {
		buf := make([]byte, 2048)
		for i := 0; i < 2; i++ {
			nr, _, err := sep.ReadFrom(buf)
			if err != nil {
				return
			}
			xid, _, _, _, body, ok := rpcmsg.CallBody(buf[:nr])
			if !ok || len(body) < 4 {
				continue
			}
			reqs <- pending{xid: xid, arg: uint32(body[0])<<24 | uint32(body[1])<<16 | uint32(body[2])<<8 | uint32(body[3])}
		}
	}()

	uintArg := func(v uint32) Marshal {
		return func(x *xdr.XDR) error { return x.Uint32(&v) }
	}
	call := func(arg uint32, got *uint32) error {
		return c.Call(fusedProc, uintArg(arg), func(x *xdr.XDR) error { return x.Uint32(got) })
	}

	var wg sync.WaitGroup
	var got1, got2 uint32
	var err1, err2 error
	wg.Add(1)
	go func() {
		defer wg.Done()
		err1 = call(111, &got1)
	}()
	first := <-reqs

	// Simulate 2^32 intervening calls: rewind the counter so the next
	// call would claim the in-flight XID again.
	c.xid.Store(first.xid - 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		err2 = call(222, &got2)
	}()
	second := <-reqs
	if second.xid == first.xid {
		t.Fatalf("second call reused in-flight xid %#x", first.xid)
	}

	// Answer oldest-first.
	reply := func(p pending) {
		if _, err := sep.WriteTo(successReplyBytes(t, p.xid, p.arg), netsim.Addr("client")); err != nil {
			t.Error(err)
		}
	}
	reply(first)
	reply(second)
	wg.Wait()
	if err1 != nil || got1 != 111 {
		t.Errorf("first call: err=%v got=%d want 111", err1, got1)
	}
	if err2 != nil || got2 != 222 {
		t.Errorf("second call: err=%v got=%d want 222", err2, got2)
	}
}

// TestTruncatedReplyDropped is the datagram-truncation regression: a
// reply that fills the read buffer exactly is indistinguishable from a
// kernel-truncated one and must be discarded (counted), not parsed as
// if complete. Before the fix the truncated prefix reached the result
// unmarshaler and surfaced a bogus decode error (or worse, a wrong
// value); after it the call simply retransmits and times out.
func TestTruncatedReplyDropped(t *testing.T) {
	n := netsim.New()
	sep := n.Attach("server")
	cep := n.Attach("client")
	c := NewUDP(cep, netsim.Addr("server"), Config{
		Prog: fusedProg, Vers: fusedVers,
		BufSize: 512, Timeout: 400 * time.Millisecond, Retransmit: 100 * time.Millisecond,
	})
	defer c.Close()

	// Responder: answer every request with an 800-byte opaque result —
	// larger than the client's 512-byte datagram buffer, so every copy
	// of the reply arrives truncated.
	go func() {
		buf := make([]byte, 2048)
		for {
			nr, _, err := sep.ReadFrom(buf)
			if err != nil {
				return
			}
			xid, ok := rpcmsg.PeekXID(buf[:nr])
			if !ok {
				continue
			}
			bs := xdr.NewBufEncode(nil)
			enc := xdr.NewEncoder(bs)
			rh := rpcmsg.AcceptedReply(xid)
			if err := rh.Marshal(enc); err != nil {
				return
			}
			big := make([]byte, 800)
			if err := enc.Bytes(&big, xdr.NoSizeLimit); err != nil {
				return
			}
			if _, err := sep.WriteTo(bs.Buffer(), netsim.Addr("client")); err != nil {
				return
			}
		}
	}()

	var out []byte
	err := c.Call(fusedProc, Void, func(x *xdr.XDR) error { return x.Bytes(&out, xdr.NoSizeLimit) })
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout (truncated replies must be dropped, not parsed)", err)
	}
	if c.TruncatedDrops() == 0 {
		t.Fatal("truncation drop counter did not advance")
	}
}

// TestExactBufSizeRequestRejected pins the send-side bound as
// exclusive: a request that would exactly fill the receiver's buffer
// is indistinguishable from a truncated one on arrival and is dropped
// there, so the client must fail it fast instead of burning the
// timeout retransmitting.
func TestExactBufSizeRequestRejected(t *testing.T) {
	c, _ := newFusedSimPair(t, Config{Timeout: 2 * time.Second, BufSize: 512})
	// 40-byte AUTH_NULL header + 4-byte count + 4*117 = exactly 512.
	in := make([]int32, 117)
	var out []int32
	err := CallTyped(c, fusedProc, fusedArgPlan, &in, fusedArgPlan, &out)
	if !errors.Is(err, xdr.ErrOverflow) {
		t.Fatalf("err = %v, want marshal overflow", err)
	}
	// One element fewer stays under the bound and round-trips.
	in = in[:116]
	if err := CallTyped(c, fusedProc, fusedArgPlan, &in, fusedArgPlan, &out); err != nil {
		t.Fatal(err)
	}
}
