package xdr

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func encodeBuf(t *testing.T, size int, fn func(x *XDR) error) []byte {
	t.Helper()
	buf := make([]byte, size)
	m := NewMemEncode(buf)
	x := NewEncoder(m)
	if err := fn(x); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return m.Buffer()
}

func TestOpString(t *testing.T) {
	tests := []struct {
		op   Op
		want string
	}{
		{Encode, "XDR_ENCODE"},
		{Decode, "XDR_DECODE"},
		{Free, "XDR_FREE"},
		{Op(0), "XDR_INVALID"},
		{Op(42), "XDR_INVALID"},
	}
	for _, tt := range tests {
		if got := tt.op.String(); got != tt.want {
			t.Errorf("Op(%d).String() = %q, want %q", tt.op, got, tt.want)
		}
	}
}

func TestLongWireFormat(t *testing.T) {
	// XDR integers are big-endian; this is the htonl micro-layer.
	got := encodeBuf(t, 8, func(x *XDR) error {
		v := int32(0x01020304)
		return x.Long(&v)
	})
	want := []byte{1, 2, 3, 4}
	if !bytes.Equal(got, want) {
		t.Fatalf("wire = %v, want %v", got, want)
	}
}

func TestLongNegativeWireFormat(t *testing.T) {
	got := encodeBuf(t, 8, func(x *XDR) error {
		v := int32(-2)
		return x.Long(&v)
	})
	want := []byte{0xff, 0xff, 0xff, 0xfe}
	if !bytes.Equal(got, want) {
		t.Fatalf("wire = %v, want %v", got, want)
	}
}

func TestLongRoundTrip(t *testing.T) {
	f := func(v int32) bool {
		buf := make([]byte, 4)
		enc := NewEncoder(NewMemEncode(buf))
		if err := enc.Long(&v); err != nil {
			return false
		}
		var got int32
		dec := NewDecoder(NewMemDecode(buf))
		if err := dec.Long(&got); err != nil {
			return false
		}
		return got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHyperRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		buf := make([]byte, 8)
		enc := NewEncoder(NewMemEncode(buf))
		if err := enc.Hyper(&v); err != nil {
			return false
		}
		var got int64
		dec := NewDecoder(NewMemDecode(buf))
		if err := dec.Hyper(&got); err != nil {
			return false
		}
		return got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScalarRoundTrips(t *testing.T) {
	buf := make([]byte, 256)
	type payload struct {
		i   int
		u   uint32
		b   bool
		e   int32
		h   int64
		u64 uint64
		f32 float32
		f64 float64
		s   string
		by  []byte
	}
	in := payload{
		i: -7, u: 0xdeadbeef, b: true, e: 3, h: -1 << 40, u64: 1<<63 + 5,
		f32: 3.25, f64: -2.5e10, s: "hello xdr", by: []byte{9, 8, 7},
	}
	marshal := func(x *XDR, p *payload) error {
		if err := x.Int(&p.i); err != nil {
			return err
		}
		if err := x.Uint32(&p.u); err != nil {
			return err
		}
		if err := x.Bool(&p.b); err != nil {
			return err
		}
		if err := x.Enum(&p.e); err != nil {
			return err
		}
		if err := x.Hyper(&p.h); err != nil {
			return err
		}
		if err := x.Uint64(&p.u64); err != nil {
			return err
		}
		if err := x.Float32(&p.f32); err != nil {
			return err
		}
		if err := x.Float64(&p.f64); err != nil {
			return err
		}
		if err := x.String(&p.s, 64); err != nil {
			return err
		}
		return x.Bytes(&p.by, 64)
	}
	m := NewMemEncode(buf)
	if err := marshal(NewEncoder(m), &in); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var out payload
	if err := marshal(NewDecoder(NewMemDecode(m.Buffer())), &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.i != in.i || out.u != in.u || out.b != in.b || out.e != in.e ||
		out.h != in.h || out.u64 != in.u64 || out.f32 != in.f32 ||
		out.f64 != in.f64 || out.s != in.s || !bytes.Equal(out.by, in.by) {
		t.Fatalf("round trip mismatch: got %+v want %+v", out, in)
	}
}

func TestStringPadding(t *testing.T) {
	// "abcde" = count 5 + 5 bytes + 3 pad = 12 bytes total.
	got := encodeBuf(t, 32, func(x *XDR) error {
		s := "abcde"
		return x.String(&s, 16)
	})
	if len(got) != 12 {
		t.Fatalf("encoded length = %d, want 12", len(got))
	}
	if got[9] != 0 || got[10] != 0 || got[11] != 0 {
		t.Fatalf("padding not zeroed: %v", got)
	}
}

func TestStringTooBig(t *testing.T) {
	buf := make([]byte, 64)
	s := "too long for the declared bound"
	err := NewEncoder(NewMemEncode(buf)).String(&s, 4)
	if !errors.Is(err, ErrTooBig) {
		t.Fatalf("err = %v, want ErrTooBig", err)
	}
	// Decoding a forged oversized count must fail too.
	m := NewMemEncode(buf)
	n := uint32(1 << 20)
	if err := NewEncoder(m).Uint32(&n); err != nil {
		t.Fatal(err)
	}
	var out string
	err = NewDecoder(NewMemDecode(m.Buffer())).String(&out, 16)
	if !errors.Is(err, ErrTooBig) {
		t.Fatalf("decode err = %v, want ErrTooBig", err)
	}
}

func TestOverflowEncode(t *testing.T) {
	buf := make([]byte, 6) // room for one long, not two
	x := NewEncoder(NewMemEncode(buf))
	v := int32(1)
	if err := x.Long(&v); err != nil {
		t.Fatalf("first long: %v", err)
	}
	if err := x.Long(&v); !errors.Is(err, ErrOverflow) {
		t.Fatalf("second long err = %v, want ErrOverflow", err)
	}
}

func TestOverflowDecode(t *testing.T) {
	x := NewDecoder(NewMemDecode([]byte{0, 0, 0, 1}))
	var v int32
	if err := x.Long(&v); err != nil {
		t.Fatalf("first long: %v", err)
	}
	if err := x.Long(&v); !errors.Is(err, ErrOverflow) {
		t.Fatalf("err = %v, want ErrOverflow", err)
	}
}

func TestFreeMode(t *testing.T) {
	x := NewFreer()
	v := int32(7)
	if err := x.Long(&v); err != nil {
		t.Fatalf("free long: %v", err)
	}
	s := "data"
	if err := x.String(&s, 16); err != nil {
		t.Fatalf("free string: %v", err)
	}
	if s != "" {
		t.Fatalf("string not cleared by Free: %q", s)
	}
	b := []byte{1}
	if err := x.Bytes(&b, 16); err != nil {
		t.Fatalf("free bytes: %v", err)
	}
	if b != nil {
		t.Fatalf("bytes not cleared by Free: %v", b)
	}
}

func TestBadOp(t *testing.T) {
	x := &XDR{Op: Op(0)}
	var v int32
	if err := x.Long(&v); !errors.Is(err, ErrBadOp) {
		t.Fatalf("err = %v, want ErrBadOp", err)
	}
	var h int64
	if err := x.Hyper(&h); !errors.Is(err, ErrBadOp) {
		t.Fatalf("hyper err = %v, want ErrBadOp", err)
	}
	var s string
	if err := x.String(&s, 4); !errors.Is(err, ErrBadOp) {
		t.Fatalf("string err = %v, want ErrBadOp", err)
	}
}

func TestOpaqueAlignment(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8} {
		in := make([]byte, n)
		for i := range in {
			in[i] = byte(i + 1)
		}
		buf := make([]byte, 32)
		m := NewMemEncode(buf)
		if err := NewEncoder(m).Opaque(in); err != nil {
			t.Fatalf("n=%d encode: %v", n, err)
		}
		wantLen := n + Pad(n)
		if len(m.Buffer()) != wantLen {
			t.Fatalf("n=%d wire len = %d, want %d", n, len(m.Buffer()), wantLen)
		}
		out := make([]byte, n)
		dec := NewDecoder(NewMemDecode(m.Buffer()))
		if err := dec.Opaque(out); err != nil {
			t.Fatalf("n=%d decode: %v", n, err)
		}
		if !bytes.Equal(in, out) {
			t.Fatalf("n=%d mismatch", n)
		}
	}
}

func TestArrayRoundTrip(t *testing.T) {
	f := func(in []int32) bool {
		buf := make([]byte, 4+4*len(in))
		m := NewMemEncode(buf)
		enc := NewEncoder(m)
		if err := Array(enc, &in, NoSizeLimit, (*XDR).Long); err != nil {
			return false
		}
		var out []int32
		dec := NewDecoder(NewMemDecode(m.Buffer()))
		if err := Array(dec, &out, NoSizeLimit, (*XDR).Long); err != nil {
			return false
		}
		if len(out) != len(in) {
			return false
		}
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestArrayMaxLen(t *testing.T) {
	in := []int32{1, 2, 3}
	buf := make([]byte, 64)
	err := Array(NewEncoder(NewMemEncode(buf)), &in, 2, (*XDR).Long)
	if !errors.Is(err, ErrTooBig) {
		t.Fatalf("err = %v, want ErrTooBig", err)
	}
}

func TestVectorRoundTrip(t *testing.T) {
	in := []int32{5, 6, 7, 8}
	buf := make([]byte, 16)
	m := NewMemEncode(buf)
	if err := Vector(NewEncoder(m), in, (*XDR).Long); err != nil {
		t.Fatal(err)
	}
	if len(m.Buffer()) != 16 { // no count word on the wire
		t.Fatalf("wire len = %d, want 16", len(m.Buffer()))
	}
	out := make([]int32, 4)
	if err := Vector(NewDecoder(NewMemDecode(m.Buffer())), out, (*XDR).Long); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("element %d: got %d want %d", i, out[i], in[i])
		}
	}
}

func TestOptionalRoundTrip(t *testing.T) {
	buf := make([]byte, 32)
	v := int32(42)
	in := &v
	m := NewMemEncode(buf)
	if err := Optional(NewEncoder(m), &in, (*XDR).Long); err != nil {
		t.Fatal(err)
	}
	var out *int32
	if err := Optional(NewDecoder(NewMemDecode(m.Buffer())), &out, (*XDR).Long); err != nil {
		t.Fatal(err)
	}
	if out == nil || *out != 42 {
		t.Fatalf("out = %v, want 42", out)
	}

	// Nil pointer encodes as a zero flag and decodes back to nil.
	var nilIn *int32
	m2 := NewMemEncode(buf)
	if err := Optional(NewEncoder(m2), &nilIn, (*XDR).Long); err != nil {
		t.Fatal(err)
	}
	out = &v
	if err := Optional(NewDecoder(NewMemDecode(m2.Buffer())), &out, (*XDR).Long); err != nil {
		t.Fatal(err)
	}
	if out != nil {
		t.Fatalf("out = %v, want nil", out)
	}
}

func TestOptionalFree(t *testing.T) {
	v := int32(1)
	p := &v
	if err := Optional(NewFreer(), &p, (*XDR).Long); err != nil {
		t.Fatal(err)
	}
	if p != nil {
		t.Fatal("free did not clear pointer")
	}
}

func TestUnion(t *testing.T) {
	arms := []UnionArm{
		{Value: 1, Marshal: nil}, // void arm
		{Value: 2, Marshal: func(x *XDR) error { var v int32 = 9; return x.Long(&v) }},
	}
	buf := make([]byte, 32)
	m := NewMemEncode(buf)
	d := int32(2)
	if err := Union(NewEncoder(m), &d, arms, nil); err != nil {
		t.Fatal(err)
	}
	if len(m.Buffer()) != 8 {
		t.Fatalf("wire len = %d, want 8", len(m.Buffer()))
	}

	d = 1
	m2 := NewMemEncode(buf)
	if err := Union(NewEncoder(m2), &d, arms, nil); err != nil {
		t.Fatal(err)
	}
	if len(m2.Buffer()) != 4 {
		t.Fatalf("void arm wire len = %d, want 4", len(m2.Buffer()))
	}

	d = 99
	err := Union(NewEncoder(NewMemEncode(buf)), &d, arms, nil)
	if !errors.Is(err, ErrBadUnion) {
		t.Fatalf("err = %v, want ErrBadUnion", err)
	}

	// A default arm accepts unlisted discriminants.
	called := false
	err = Union(NewEncoder(NewMemEncode(buf)), &d, arms, func(x *XDR) error {
		called = true
		return nil
	})
	if err != nil || !called {
		t.Fatalf("default arm: err=%v called=%v", err, called)
	}
}

func TestMemSetPos(t *testing.T) {
	buf := make([]byte, 16)
	m := NewMemEncode(buf)
	x := NewEncoder(m)
	v := int32(1)
	if err := x.Long(&v); err != nil {
		t.Fatal(err)
	}
	if err := m.SetPos(0); err != nil {
		t.Fatal(err)
	}
	v = 2
	if err := x.Long(&v); err != nil {
		t.Fatal(err)
	}
	if m.Buffer()[3] != 2 {
		t.Fatalf("rewrite failed: %v", m.Buffer())
	}
	if err := m.SetPos(17); !errors.Is(err, ErrBadPos) {
		t.Fatalf("err = %v, want ErrBadPos", err)
	}
	if err := m.SetPos(-1); !errors.Is(err, ErrBadPos) {
		t.Fatalf("err = %v, want ErrBadPos", err)
	}
}

func TestMemReset(t *testing.T) {
	buf := make([]byte, 8)
	m := NewMemEncode(buf)
	x := NewEncoder(m)
	v := int32(1)
	if err := x.Long(&v); err != nil {
		t.Fatal(err)
	}
	if err := x.Long(&v); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	if m.Pos() != 0 || m.Remaining() != 8 {
		t.Fatalf("after reset pos=%d handy=%d", m.Pos(), m.Remaining())
	}
}

func TestPad(t *testing.T) {
	tests := []struct{ n, want int }{{0, 0}, {1, 3}, {2, 2}, {3, 1}, {4, 0}, {5, 3}}
	for _, tt := range tests {
		if got := Pad(tt.n); got != tt.want {
			t.Errorf("Pad(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestXDRPosFreeHandle(t *testing.T) {
	if got := NewFreer().Pos(); got != 0 {
		t.Fatalf("free handle Pos = %d, want 0", got)
	}
}
