package xdr

// Queued-record mode and the group-commit record batcher: the syscall
// amortization layer for stream transports. WriteRecord (rec.go) made
// one message cost one Write; at pipeline depth the next measurable
// overhead is that *each* message still costs its own Write. Here
// complete framed records queue on the stream and leave together —
// one writev (net.Buffers) or one coalesced Write — and RecBatcher
// wraps that queue in a leader/follower protocol so concurrent
// handlers or callers sharing a connection amortize syscalls without
// adding latency. The bytes on the wire are identical either way;
// only the syscall boundaries move.

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// coalesceLimit bounds the copy-and-single-Write flush path: batches at
// or below it are copied into one contiguous buffer and written with a
// single Write (cheaper than writev for small records, and the only
// single-syscall path through writers that are not kernel sockets —
// test shims, counting wrappers, in-process pipes). Larger batches go
// out via net.Buffers, which uses writev on kernel-socket writers.
const coalesceLimit = 32 << 10

// QueueRecord frames buf as one complete record — patching the record
// mark into its reserved head exactly as WriteRecord does — and queues
// it for the next Flush instead of writing it. The caller must keep buf
// untouched until Flush returns; the wire bytes are identical to
// WriteRecord's, only the syscall boundary moves.
//
// A record left open by PutBytes must be completed (EndRecord) before
// queueing: its fragments may already be on the wire, and a queued
// record injected after them would corrupt the stream framing. A
// payload too large for a single fragment flushes the queue (keeping
// FIFO order) and then writes through the generic fragmenting path
// immediately.
func (r *RecStream) QueueRecord(buf []byte) error {
	if r.werr != nil {
		return r.werr
	}
	if len(buf) < RecordMarkLen {
		return fmt.Errorf("xdr: QueueRecord: buffer shorter than the %d-byte record mark", RecordMarkLen)
	}
	if r.wpos != 0 || r.sent != 0 {
		return fmt.Errorf("xdr: QueueRecord: record open (mixing queued and incremental writes)")
	}
	payload := len(buf) - RecordMarkLen
	if payload > maxFragPayload {
		if err := r.Flush(); err != nil {
			return err
		}
		if err := r.PutBytes(buf[RecordMarkLen:]); err != nil {
			return err
		}
		return r.EndRecord()
	}
	u := uint32(payload) | lastFragFlag
	buf[0], buf[1], buf[2], buf[3] = byte(u>>24), byte(u>>16), byte(u>>8), byte(u)
	r.wq = append(r.wq, buf)
	r.wqBytes += len(buf)
	return nil
}

// Queued reports the records and bytes waiting for Flush.
func (r *RecStream) Queued() (records, bytes int) { return len(r.wq), r.wqBytes }

// Flush writes every queued record in one vectored write: small batches
// coalesce into a single contiguous Write, larger ones leave via
// net.Buffers (writev on kernel sockets). On a stream whose write side
// has already failed the queue is discarded and the sticky error
// returned — the records' delivery state is unknowable anyway.
func (r *RecStream) Flush() error {
	if r.werr != nil {
		r.dropQueue()
		return r.werr
	}
	var err error
	switch {
	case len(r.wq) == 0:
		return nil
	case len(r.wq) == 1:
		_, err = r.rw.Write(r.wq[0])
	case r.wqBytes <= coalesceLimit:
		r.wcoal = r.wcoal[:0]
		for _, b := range r.wq {
			r.wcoal = append(r.wcoal, b...)
		}
		_, err = r.rw.Write(r.wcoal)
	default:
		bufs := net.Buffers(r.wq)
		_, err = bufs.WriteTo(r.rw)
	}
	r.dropQueue()
	if err != nil {
		r.werr = fmt.Errorf("xdr: write record batch: %w", err)
		return r.werr
	}
	r.wseal = true
	return nil
}

// dropQueue forgets the queued records without retaining references to
// their (caller-owned, typically pooled) buffers.
func (r *RecStream) dropQueue() {
	for i := range r.wq {
		r.wq[i] = nil
	}
	r.wq = r.wq[:0]
	r.wqBytes = 0
}

// DefaultBatchWatermark is the queued-bytes threshold at which
// RecBatcher.Queue flushes on its own, bounding the memory a
// fire-and-forget caller can pin before a terminal flush arrives.
const DefaultBatchWatermark = coalesceLimit

// RecBatcher serializes concurrent record writes onto one RecStream and
// coalesces them by group commit: the first writer to find no flush in
// progress becomes the leader and writes the queued batch outside the
// lock; records queued by other goroutines while the leader is inside
// the write syscall are picked up on its next loop iteration. Under
// contention many records leave per syscall; an uncontended write
// flushes immediately, so batching never *adds* latency — coalescing
// happens exactly when concurrency makes it possible.
//
// Buffer ownership transfers on every call: the batcher releases each
// pooled buffer with PutBuf after its batch is written (or dropped on a
// sticky error), so callers must not touch a buffer after handing it
// in. Exported fields must be set before first use and not changed
// afterwards.
type RecBatcher struct {
	// PreWrite, when non-nil, runs before each vectored write (under the
	// leader, outside the queue lock) — the hook a client uses to arm a
	// write deadline covering the whole batch. earliest is the earliest
	// per-record deadline attached to the pending records (WriteDeadline),
	// or the zero time when none carries one: the hook can then bound the
	// write by the tightest caller budget in the batch instead of a fixed
	// transport-wide timeout.
	PreWrite func(earliest time.Time) error
	// OnError, when non-nil, is called once with the first write error —
	// the hook a transport uses to fail its demultiplexer and close the
	// connection so every sharer unblocks promptly.
	OnError func(error)
	// Watermark overrides DefaultBatchWatermark for Queue's self-flush
	// threshold.
	Watermark int
	// MaxBatch bounds the records per vectored write; 0 is unlimited.
	// MaxBatch == 1 degenerates to one Write per record — the
	// pre-batching behavior, kept as the measurable baseline.
	MaxBatch int
	// MaxFlushDelay, when positive, lets a Write-triggered leader whose
	// pending batch is still under the watermark wait this long before
	// its first vectored write, giving concurrent writers that much time
	// to queue behind it. Group commit alone only coalesces records that
	// finish while the leader is inside the write syscall; on an idle
	// host with shallow concurrency that window is nearly empty, and a
	// bounded delay is the knob that buys batching there — at the price
	// of adding up to the delay to every reply's latency. 0 (the
	// default) writes immediately: byte-for-byte and syscall-for-syscall
	// the pre-knob behavior. Explicit Flush and watermark-triggered
	// flushes never delay.
	MaxFlushDelay time.Duration

	mu        sync.Mutex // guards pend, pendBytes, pendDL, flushing, err, errFired
	rec       *RecStream
	pend      []*[]byte
	pendBytes int
	pendDL    time.Time // earliest non-zero per-record deadline in pend
	flushing  bool
	err       error
	errFired  bool
}

// ErrRejected wraps the sticky error when a record is refused before
// entering the queue: the batcher had already failed, so the rejected
// record's bytes were definitively never written. A transport can
// therefore treat an ErrRejected failure as "not sent" — safe to retry
// on a fresh connection without risking double execution — whereas any
// other write failure leaves the record's delivery state unknowable.
var ErrRejected = errors.New("xdr: record rejected by failed batcher")

// NewRecBatcher returns a batcher owning the write side of rec. The
// stream must not be written through directly while the batcher is in
// use.
func NewRecBatcher(rec *RecStream) *RecBatcher {
	return &RecBatcher{rec: rec}
}

// Write queues bp's record and ensures a flush is running: the caller
// becomes the leader if no flush is in progress, otherwise the current
// leader writes the record on its next iteration and Write returns
// without waiting (a later failure then surfaces through OnError, not
// this call). Ownership of bp transfers to the batcher.
func (b *RecBatcher) Write(bp *[]byte) error { return b.add(bp, true, time.Time{}) }

// WriteDeadline is Write with the issuing call's absolute deadline
// attached: PreWrite receives the earliest deadline across the batch,
// so the transport can arm a write deadline matching the tightest
// remaining call budget instead of a full fresh timeout.
func (b *RecBatcher) WriteDeadline(bp *[]byte, deadline time.Time) error {
	return b.add(bp, true, deadline)
}

// Queue queues bp's record without forcing a flush — the ONC
// fire-and-forget path: the record leaves with the next Write or Flush
// on this batcher, or immediately once the queued bytes reach the
// watermark. Ownership of bp transfers to the batcher.
func (b *RecBatcher) Queue(bp *[]byte) error { return b.add(bp, false, time.Time{}) }

// Pending reports the records queued and not yet handed to a write —
// the leak gauge chaos tests pin at zero once every call has returned.
func (b *RecBatcher) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pend)
}

func (b *RecBatcher) add(bp *[]byte, flush bool, dl time.Time) error {
	b.mu.Lock()
	if b.err != nil {
		err := b.err
		b.mu.Unlock()
		PutBuf(bp)
		return fmt.Errorf("%w: %w", ErrRejected, err)
	}
	b.pend = append(b.pend, bp)
	b.pendBytes += len(*bp)
	if !dl.IsZero() && (b.pendDL.IsZero() || dl.Before(b.pendDL)) {
		b.pendDL = dl
	}
	wm := b.Watermark
	if wm <= 0 {
		wm = DefaultBatchWatermark
	}
	if !flush && b.pendBytes < wm {
		b.mu.Unlock()
		return nil
	}
	return b.flushLocked(flush)
}

// Flush writes everything queued. With nothing queued it is a no-op
// that returns nil even after a transport failure, so an idempotent
// Close stays clean.
func (b *RecBatcher) Flush() error {
	b.mu.Lock()
	if len(b.pend) == 0 && !b.flushing {
		b.mu.Unlock()
		return nil
	}
	return b.flushLocked(false)
}

// flushLocked runs the leader protocol. Called with b.mu held; returns
// with it released. If another leader is already flushing, the queued
// work is left to it. wait marks a Write-triggered flush, the only kind
// the MaxFlushDelay knob applies to.
func (b *RecBatcher) flushLocked(wait bool) error {
	if b.flushing {
		err := b.err
		b.mu.Unlock()
		return err
	}
	b.flushing = true
	if wait && b.MaxFlushDelay > 0 {
		wm := b.Watermark
		if wm <= 0 {
			wm = DefaultBatchWatermark
		}
		if b.pendBytes < wm {
			// Sleep with the leadership claim held but the lock released:
			// followers queue behind the claim and return immediately, and
			// everything they add leaves in this leader's first write.
			b.mu.Unlock()
			time.Sleep(b.MaxFlushDelay)
			b.mu.Lock()
		}
	}
	for b.err == nil && len(b.pend) > 0 {
		batch := b.pend
		if b.MaxBatch > 0 && len(batch) > b.MaxBatch {
			batch = batch[:b.MaxBatch]
		}
		b.pend = b.pend[len(batch):]
		// The earliest deadline is tracked per flush generation, not per
		// batch slice: a MaxBatch split may arm a later batch with an
		// already-written record's tighter deadline, which only errs on
		// the strict side.
		dl := b.pendDL
		if len(b.pend) == 0 {
			b.pend = nil // release the consumed backing array
			b.pendBytes = 0
			b.pendDL = time.Time{}
		} else {
			for _, bp := range batch {
				b.pendBytes -= len(*bp)
			}
		}
		b.mu.Unlock()
		err := b.writeBatch(batch, dl)
		b.mu.Lock()
		if err != nil && b.err == nil {
			b.err = err
		}
	}
	b.flushing = false
	err := b.err
	if err != nil {
		// Records queued behind a failure can never be delivered in
		// order; drop them so their buffers recycle.
		for _, bp := range b.pend {
			PutBuf(bp)
		}
		b.pend = nil
		b.pendBytes = 0
		b.pendDL = time.Time{}
	}
	fire := err != nil && !b.errFired
	if fire {
		b.errFired = true
	}
	b.mu.Unlock()
	if fire && b.OnError != nil {
		b.OnError(err)
	}
	return err
}

// writeBatch frames and writes one batch, then releases every buffer.
// earliest is the tightest per-record deadline in the flush generation
// (zero when none was attached), forwarded to PreWrite.
func (b *RecBatcher) writeBatch(batch []*[]byte, earliest time.Time) error {
	var err error
	if b.PreWrite != nil {
		err = b.PreWrite(earliest)
	}
	if err == nil {
		for _, bp := range batch {
			if err = b.rec.QueueRecord(*bp); err != nil {
				break
			}
		}
	}
	// Flush even after an error: it discards the stream's queue, so no
	// reference to a released buffer survives.
	if ferr := b.rec.Flush(); err == nil {
		err = ferr
	}
	for _, bp := range batch {
		PutBuf(bp)
	}
	return err
}

// Err reports the sticky write error, if any.
func (b *RecBatcher) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}
