package xdr

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

// queueWire writes each payload through QueueRecord+Flush and returns
// the wire bytes plus the number of Write calls it took.
func queueWire(t *testing.T, payloads [][]byte, flushEvery int) ([]byte, int) {
	t.Helper()
	var cw countingWriter
	var wire bytes.Buffer
	w := NewRecStream(&rwPair{Writer: io.MultiWriter(&cw, &wire)}, 0)
	for i, p := range payloads {
		if err := w.QueueRecord(preframed(p)); err != nil {
			t.Fatalf("queue %d: %v", i, err)
		}
		if flushEvery > 0 && (i+1)%flushEvery == 0 {
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return wire.Bytes(), cw.writes
}

// TestQueueRecordWireIdentical: batched+flushed bytes on the wire equal
// the same records written one WriteRecord at a time, at every batch
// size, including batches past the coalesce limit (the writev path).
func TestQueueRecordWireIdentical(t *testing.T) {
	payloads := [][]byte{
		[]byte("alpha"), {}, []byte("gamma-gamma"),
		bytes.Repeat([]byte{0xAB}, DefaultFragmentSize+17), // big final fragment
		[]byte("tail"),
		bytes.Repeat([]byte{0x5C}, coalesceLimit), // pushes a batch past coalescing
	}
	var want bytes.Buffer
	uw := NewRecStream(&rwPair{Writer: &want}, 0)
	for _, p := range payloads {
		if err := uw.WriteRecord(preframed(p)); err != nil {
			t.Fatal(err)
		}
	}
	for _, every := range []int{0, 1, 2, len(payloads)} {
		got, _ := queueWire(t, payloads, every)
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("flushEvery=%d: wire bytes diverge from WriteRecord", every)
		}
	}
}

// TestFlushSingleWrite: a batch of records at or under the coalesce
// limit leaves in exactly one Write call.
func TestFlushSingleWrite(t *testing.T) {
	payloads := [][]byte{[]byte("one"), []byte("two"), []byte("three")}
	_, writes := queueWire(t, payloads, 0)
	if writes != 1 {
		t.Fatalf("flush of %d queued records issued %d writes, want 1", len(payloads), writes)
	}
}

// TestQueueRecordOpenRecordRejected: queued mode cannot interleave with
// an open incremental record (its fragments may already be on the wire).
func TestQueueRecordOpenRecordRejected(t *testing.T) {
	var wire bytes.Buffer
	w := NewRecStream(&rwPair{Writer: &wire}, 0)
	if err := w.PutLong(1); err != nil {
		t.Fatal(err)
	}
	if err := w.QueueRecord(preframed([]byte("x"))); err == nil {
		t.Fatal("QueueRecord on an open record succeeded; framing would corrupt")
	}
	if err := w.EndRecord(); err != nil {
		t.Fatal(err)
	}
	if err := w.QueueRecord(preframed([]byte("x"))); err != nil {
		t.Fatalf("QueueRecord after EndRecord: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

type failingWriter struct{ err error }

func (f *failingWriter) Write([]byte) (int, error) { return 0, f.err }

// TestFlushStickyError: a failed flush poisons the stream and discards
// later queued records instead of retaining their buffers.
func TestFlushStickyError(t *testing.T) {
	boom := errors.New("boom")
	w := NewRecStream(&rwPair{Writer: &failingWriter{boom}}, 0)
	if err := w.QueueRecord(preframed([]byte("a"))); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); !errors.Is(err, boom) {
		t.Fatalf("Flush error = %v, want %v", err, boom)
	}
	if err := w.QueueRecord(preframed([]byte("b"))); !errors.Is(err, boom) {
		t.Fatalf("QueueRecord after failure = %v, want sticky %v", err, boom)
	}
	if n, _ := w.Queued(); n != 0 {
		t.Fatalf("%d records retained after sticky error", n)
	}
}

// pooled returns a pooled buffer pre-framed with payload.
func pooled(payload []byte) *[]byte {
	bp := GetBuf(RecordMarkLen + len(payload))
	*bp = append(append((*bp)[:0], make([]byte, RecordMarkLen)...), payload...)
	return bp
}

// TestRecBatcherCoalesces: concurrent writers sharing one batcher
// produce the exact per-record wire stream with strictly fewer Write
// calls than records once writers contend.
func TestRecBatcherCoalesces(t *testing.T) {
	const writers, perWriter = 8, 50
	var cw countingWriter
	var wire bytes.Buffer
	var mu sync.Mutex
	lockedTee := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		cw.Write(p)
		return wire.Write(p)
	})
	b := NewRecBatcher(NewRecStream(&rwPair{Writer: lockedTee}, 0))
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := b.Write(pooled([]byte(fmt.Sprintf("w%d-%d", w, i)))); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewRecStream(&rwPair{Reader: &wire}, 0)
	for i := 0; i < writers*perWriter; i++ {
		rec, err := r.ReadRecord(nil)
		if err != nil {
			t.Fatalf("after %d records: %v", i, err)
		}
		if len(rec) == 0 {
			t.Fatalf("record %d empty", i)
		}
	}
	if wire.Len() != 0 {
		t.Fatalf("%d trailing bytes after the expected records", wire.Len())
	}
	if cw.writes > writers*perWriter {
		t.Fatalf("%d writes for %d records: batcher split records", cw.writes, writers*perWriter)
	}
	t.Logf("%d records in %d writes", writers*perWriter, cw.writes)
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestRecBatcherQueueWatermark: Queue alone does not write; crossing
// the watermark flushes without an explicit Write/Flush.
func TestRecBatcherQueueWatermark(t *testing.T) {
	var cw countingWriter
	b := NewRecBatcher(NewRecStream(&rwPair{Writer: &cw}, 0))
	b.Watermark = 64
	if err := b.Queue(pooled(bytes.Repeat([]byte{1}, 16))); err != nil {
		t.Fatal(err)
	}
	if cw.writes != 0 {
		t.Fatalf("Queue under watermark wrote %d times", cw.writes)
	}
	if err := b.Queue(pooled(bytes.Repeat([]byte{2}, 64))); err != nil {
		t.Fatal(err)
	}
	if cw.writes == 0 {
		t.Fatal("Queue past watermark did not flush")
	}
}

// TestRecBatcherMaxBatchOne: the unbatched baseline issues one Write
// per record even when everything is queued up front.
func TestRecBatcherMaxBatchOne(t *testing.T) {
	var cw countingWriter
	b := NewRecBatcher(NewRecStream(&rwPair{Writer: &cw}, 0))
	b.MaxBatch = 1
	for i := 0; i < 5; i++ {
		if err := b.Queue(pooled([]byte("rec"))); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if cw.writes != 5 {
		t.Fatalf("MaxBatch=1 flush issued %d writes for 5 records", cw.writes)
	}
}

// TestRecBatcherErrorPropagates: the first failure surfaces on the
// flushing call, fires OnError exactly once, and poisons later writes.
func TestRecBatcherErrorPropagates(t *testing.T) {
	boom := errors.New("peer gone")
	b := NewRecBatcher(NewRecStream(&rwPair{Writer: &failingWriter{boom}}, 0))
	fired := 0
	b.OnError = func(err error) {
		fired++
		if !errors.Is(err, boom) {
			t.Errorf("OnError got %v", err)
		}
	}
	if err := b.Write(pooled([]byte("a"))); !errors.Is(err, boom) {
		t.Fatalf("Write = %v, want %v", err, boom)
	}
	if err := b.Write(pooled([]byte("b"))); !errors.Is(err, boom) {
		t.Fatalf("second Write = %v, want sticky %v", err, boom)
	}
	if fired != 1 {
		t.Fatalf("OnError fired %d times", fired)
	}
	// Flush with nothing queued stays nil so Close is idempotent.
	if err := b.Flush(); err != nil {
		t.Fatalf("empty Flush after failure = %v, want nil", err)
	}
}

// TestRecBatcherFlushDelayZeroUnchanged: with MaxFlushDelay at its zero
// default the pre-knob contract holds exactly — each uncontended Write
// costs one syscall as it always did, and the wire bytes match the
// per-record WriteRecord stream.
func TestRecBatcherFlushDelayZeroUnchanged(t *testing.T) {
	payloads := [][]byte{[]byte("a"), []byte("bb"), {}, []byte("dddd")}
	var want bytes.Buffer
	uw := NewRecStream(&rwPair{Writer: &want}, 0)
	for _, p := range payloads {
		if err := uw.WriteRecord(preframed(p)); err != nil {
			t.Fatal(err)
		}
	}
	var cw countingWriter
	var wire bytes.Buffer
	b := NewRecBatcher(NewRecStream(&rwPair{Writer: io.MultiWriter(&cw, &wire)}, 0))
	for i, p := range payloads {
		if err := b.Write(pooled(p)); err != nil {
			t.Fatal(err)
		}
		if cw.writes != i+1 {
			t.Fatalf("after %d uncontended Writes: %d syscalls, want %d", i+1, cw.writes, i+1)
		}
	}
	if !bytes.Equal(wire.Bytes(), want.Bytes()) {
		t.Fatal("MaxFlushDelay=0 wire bytes diverge from WriteRecord")
	}
}

// TestRecBatcherFlushDelayCoalesces: a Write-triggered leader under the
// watermark waits out the knob, and everything queued behind its claim
// by then leaves in the one vectored write.
func TestRecBatcherFlushDelayCoalesces(t *testing.T) {
	var cw countingWriter
	var wire bytes.Buffer
	b := NewRecBatcher(NewRecStream(&rwPair{Writer: io.MultiWriter(&cw, &wire)}, 0))
	b.MaxFlushDelay = 20 * time.Millisecond
	for i := 0; i < 3; i++ {
		if err := b.Queue(pooled([]byte(fmt.Sprintf("q%d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	if err := b.Write(pooled([]byte("leader"))); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < b.MaxFlushDelay {
		t.Fatalf("delayed leader returned after %v, want >= %v", d, b.MaxFlushDelay)
	}
	if cw.writes != 1 {
		t.Fatalf("4 records left in %d writes, want 1 coalesced write", cw.writes)
	}
	r := NewRecStream(&rwPair{Reader: &wire}, 0)
	for i := 0; i < 4; i++ {
		if _, err := r.ReadRecord(nil); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
}

// TestRecBatcherFlushDelayBounds: the delay applies only to
// under-watermark Write-triggered flushes — a Write already past the
// watermark and an explicit Flush go out immediately.
func TestRecBatcherFlushDelayBounds(t *testing.T) {
	var cw countingWriter
	b := NewRecBatcher(NewRecStream(&rwPair{Writer: &cw}, 0))
	b.MaxFlushDelay = 2 * time.Second
	b.Watermark = 8
	start := time.Now()
	if err := b.Write(pooled(bytes.Repeat([]byte{7}, 32))); err != nil {
		t.Fatal(err)
	}
	if err := b.Queue(pooled([]byte("x"))); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d >= b.MaxFlushDelay {
		t.Fatalf("watermark write + explicit Flush took %v: the delay leaked past its trigger", d)
	}
	if cw.writes != 2 {
		t.Fatalf("%d writes, want 2", cw.writes)
	}
}
