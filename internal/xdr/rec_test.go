package xdr

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

// chunkedReader returns data in fixed-size chunks to exercise short reads.
type chunkedReader struct {
	data  []byte
	chunk int
}

func (c *chunkedReader) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := c.chunk
	if n > len(p) {
		n = len(p)
	}
	if n > len(c.data) {
		n = len(c.data)
	}
	copy(p, c.data[:n])
	c.data = c.data[n:]
	return n, nil
}

type rwPair struct {
	io.Reader
	io.Writer
}

func TestRecStreamRoundTrip(t *testing.T) {
	var wire bytes.Buffer
	w := NewRecStream(&rwPair{Writer: &wire}, 16)
	enc := NewEncoder(w)
	for i := int32(0); i < 20; i++ {
		v := i * 3
		if err := enc.Long(&v); err != nil {
			t.Fatalf("encode %d: %v", i, err)
		}
	}
	if err := w.EndRecord(); err != nil {
		t.Fatal(err)
	}

	r := NewRecStream(&rwPair{Reader: &wire}, 16)
	dec := NewDecoder(r)
	for i := int32(0); i < 20; i++ {
		var v int32
		if err := dec.Long(&v); err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if v != i*3 {
			t.Fatalf("element %d = %d, want %d", i, v, i*3)
		}
	}
	// The record is exhausted: one more read overflows.
	var v int32
	if err := dec.Long(&v); !errors.Is(err, ErrOverflow) {
		t.Fatalf("past-end err = %v, want ErrOverflow", err)
	}
}

func TestRecStreamFragmentation(t *testing.T) {
	// 100 bytes of payload through 16-byte fragments = 7 fragments.
	var wire bytes.Buffer
	w := NewRecStream(&rwPair{Writer: &wire}, 16)
	payload := make([]byte, 100)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := w.PutBytes(payload); err != nil {
		t.Fatal(err)
	}
	if err := w.EndRecord(); err != nil {
		t.Fatal(err)
	}
	wantWire := 100 + 7*4 // payload + 7 fragment headers
	if wire.Len() != wantWire {
		t.Fatalf("wire bytes = %d, want %d", wire.Len(), wantWire)
	}

	// Reassembly must be byte-identical regardless of how the transport
	// fragments reads (property over chunk size).
	f := func(chunk uint8) bool {
		c := int(chunk%13) + 1
		r := NewRecStream(&rwPair{Reader: &chunkedReader{data: wire.Bytes(), chunk: c}}, 16)
		got := make([]byte, 100)
		if err := r.GetBytes(got); err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecStreamMultipleRecords(t *testing.T) {
	var wire bytes.Buffer
	w := NewRecStream(&rwPair{Writer: &wire}, 8)
	enc := NewEncoder(w)
	for rec := int32(0); rec < 3; rec++ {
		for i := int32(0); i < 5; i++ {
			v := rec*100 + i
			if err := enc.Long(&v); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.EndRecord(); err != nil {
			t.Fatal(err)
		}
	}

	r := NewRecStream(&rwPair{Reader: &wire}, 8)
	dec := NewDecoder(r)
	for rec := int32(0); rec < 3; rec++ {
		// Only read part of each record, then skip to the next —
		// exercising xdrrec_skiprecord.
		var v int32
		if err := dec.Long(&v); err != nil {
			t.Fatalf("record %d: %v", rec, err)
		}
		if v != rec*100 {
			t.Fatalf("record %d first = %d, want %d", rec, v, rec*100)
		}
		if err := r.SkipRecord(); err != nil {
			t.Fatalf("skip record %d: %v", rec, err)
		}
	}
}

func TestRecStreamEmptyRecord(t *testing.T) {
	var wire bytes.Buffer
	w := NewRecStream(&rwPair{Writer: &wire}, 8)
	if err := w.EndRecord(); err != nil {
		t.Fatal(err)
	}
	if wire.Len() != 4 {
		t.Fatalf("empty record wire = %d bytes, want 4", wire.Len())
	}
	r := NewRecStream(&rwPair{Reader: &wire}, 8)
	var v int32
	if err := r.GetLong(&v); !errors.Is(err, ErrOverflow) {
		t.Fatalf("err = %v, want ErrOverflow", err)
	}
}

func TestRecStreamHeaderBits(t *testing.T) {
	var wire bytes.Buffer
	w := NewRecStream(&rwPair{Writer: &wire}, 64)
	v := int32(7)
	if err := w.PutLong(v); err != nil {
		t.Fatal(err)
	}
	if err := w.EndRecord(); err != nil {
		t.Fatal(err)
	}
	h := wire.Bytes()[:4]
	if h[0]&0x80 == 0 {
		t.Fatal("last-fragment bit not set on final fragment")
	}
	length := uint32(h[0]&0x7f)<<24 | uint32(h[1])<<16 | uint32(h[2])<<8 | uint32(h[3])
	if length != 4 {
		t.Fatalf("fragment length = %d, want 4", length)
	}
}

func TestRecStreamWriteError(t *testing.T) {
	w := NewRecStream(&rwPair{Writer: failWriter{}}, 8)
	err := w.EndRecord()
	if err == nil {
		t.Fatal("expected write error")
	}
	// The error is sticky.
	if err2 := w.PutLong(1); err2 == nil {
		t.Fatal("expected sticky error")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("broken pipe") }

func TestRecStreamSetPosUnsupported(t *testing.T) {
	w := NewRecStream(&rwPair{Writer: io.Discard}, 8)
	if err := w.SetPos(0); !errors.Is(err, ErrBadPos) {
		t.Fatalf("err = %v, want ErrBadPos", err)
	}
}

func TestRecStreamPos(t *testing.T) {
	var wire bytes.Buffer
	w := NewRecStream(&rwPair{Writer: &wire}, 8)
	if w.Pos() != 0 {
		t.Fatalf("initial pos = %d", w.Pos())
	}
	if err := w.PutLong(1); err != nil {
		t.Fatal(err)
	}
	if w.Pos() != 4 {
		t.Fatalf("pos after one long = %d, want 4", w.Pos())
	}
	// Crossing a fragment boundary keeps counting record bytes.
	if err := w.PutLong(2); err != nil {
		t.Fatal(err)
	}
	if err := w.PutLong(3); err != nil {
		t.Fatal(err)
	}
	if w.Pos() != 12 {
		t.Fatalf("pos after three longs = %d, want 12", w.Pos())
	}
}

func TestReadRecordBulk(t *testing.T) {
	var wire bytes.Buffer
	w := NewRecStream(&rwPair{Writer: &wire}, 16)
	payload := make([]byte, 100)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	if err := w.PutBytes(payload); err != nil {
		t.Fatal(err)
	}
	if err := w.EndRecord(); err != nil {
		t.Fatal(err)
	}
	// A second record to prove ReadRecord stops at the boundary.
	if err := w.PutBytes([]byte("next")); err != nil {
		t.Fatal(err)
	}
	if err := w.EndRecord(); err != nil {
		t.Fatal(err)
	}

	r := NewRecStream(&rwPair{Reader: &wire}, 16)
	got, err := r.ReadRecord(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("record 1 = %v", got)
	}
	got, err = r.ReadRecord(got[:0])
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "next" {
		t.Fatalf("record 2 = %q", got)
	}
}

func TestReadRecordAppends(t *testing.T) {
	var wire bytes.Buffer
	w := NewRecStream(&rwPair{Writer: &wire}, 8)
	if err := w.PutLong(7); err != nil {
		t.Fatal(err)
	}
	if err := w.EndRecord(); err != nil {
		t.Fatal(err)
	}
	r := NewRecStream(&rwPair{Reader: &wire}, 8)
	prefix := []byte{0xaa, 0xbb}
	got, err := r.ReadRecord(prefix)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 || got[0] != 0xaa || got[5] != 7 {
		t.Fatalf("appended record = %v", got)
	}
}

// preframed builds a WriteRecord buffer: the reserved mark hole followed
// by payload.
func preframed(payload []byte) []byte {
	return append(make([]byte, RecordMarkLen), payload...)
}

func TestWriteRecordRoundTrip(t *testing.T) {
	var wire bytes.Buffer
	w := NewRecStream(&wire, 0)
	payload := []byte("one-syscall record framing")
	if err := w.WriteRecord(preframed(payload)); err != nil {
		t.Fatal(err)
	}
	r := NewRecStream(&wire, 0)
	rec, err := r.ReadRecord(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec, payload) {
		t.Fatalf("got %q, want %q", rec, payload)
	}
}

// TestWriteRecordMatchesStreamingPath: for payloads below the fragment
// size (at exactly the fragment size the streaming path eagerly flushes
// a non-final fragment and then an empty final one) the single-write
// path must be byte-identical on the wire to PutBytes+EndRecord — old
// and new peers interoperate.
func TestWriteRecordMatchesStreamingPath(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 100, DefaultFragmentSize - 1} {
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		var oldWire, newWire bytes.Buffer
		ow := NewRecStream(&oldWire, 0)
		if err := ow.PutBytes(payload); err != nil {
			t.Fatal(err)
		}
		if err := ow.EndRecord(); err != nil {
			t.Fatal(err)
		}
		nw := NewRecStream(&newWire, 0)
		if err := nw.WriteRecord(preframed(payload)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(oldWire.Bytes(), newWire.Bytes()) {
			t.Fatalf("n=%d: wire bytes diverged:\n old %x\n new %x", n, oldWire.Bytes(), newWire.Bytes())
		}
	}
}

// TestWriteRecordSingleWrite asserts the copy-free property observable
// from outside: the mark and payload arrive in exactly one Write call,
// even past the fragment buffer size.
func TestWriteRecordSingleWrite(t *testing.T) {
	var cw countingWriter
	w := NewRecStream(&rwPair{Writer: &cw}, 0)
	payload := make([]byte, 3*DefaultFragmentSize)
	if err := w.WriteRecord(preframed(payload)); err != nil {
		t.Fatal(err)
	}
	if cw.writes != 1 {
		t.Fatalf("WriteRecord issued %d writes, want 1", cw.writes)
	}
	if cw.bytes != RecordMarkLen+len(payload) {
		t.Fatalf("wrote %d bytes, want %d", cw.bytes, RecordMarkLen+len(payload))
	}

	// The streaming path pays two writes per fragment on the same record.
	cw = countingWriter{}
	ow := NewRecStream(&rwPair{Writer: &cw}, 0)
	if err := ow.PutBytes(payload); err != nil {
		t.Fatal(err)
	}
	if err := ow.EndRecord(); err != nil {
		t.Fatal(err)
	}
	if cw.writes <= 1 {
		t.Fatalf("streaming path issued %d writes; counting is broken", cw.writes)
	}
}

type countingWriter struct {
	writes int
	bytes  int
}

func (c *countingWriter) Write(p []byte) (int, error) {
	c.writes++
	c.bytes += len(p)
	return len(p), nil
}

// TestWriteRecordAfterPutBytes: pending streamed data completes through
// the fragmenting path, producing one record carrying both.
func TestWriteRecordAfterPutBytes(t *testing.T) {
	var wire bytes.Buffer
	w := NewRecStream(&wire, 0)
	if err := w.PutLong(42); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRecord(preframed([]byte("tail"))); err != nil {
		t.Fatal(err)
	}
	r := NewRecStream(&wire, 0)
	rec, err := r.ReadRecord(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte{0, 0, 0, 42}, "tail"...)
	if !bytes.Equal(rec, want) {
		t.Fatalf("got %x, want %x", rec, want)
	}
}

func TestWriteRecordTooShort(t *testing.T) {
	w := NewRecStream(&rwPair{Writer: io.Discard}, 0)
	if err := w.WriteRecord([]byte{1, 2}); err == nil {
		t.Fatal("accepted a buffer shorter than the record mark")
	}
}

func TestWriteRecordStickyError(t *testing.T) {
	w := NewRecStream(&rwPair{Writer: failWriter{}}, 0)
	if err := w.WriteRecord(preframed([]byte("x"))); err == nil {
		t.Fatal("expected write error")
	}
	if err := w.WriteRecord(preframed([]byte("y"))); err == nil {
		t.Fatal("expected sticky error")
	}
}

// TestWriteRecordAfterFlushedFragment: an open record whose bytes were
// already flushed (PutBytes of exactly one fragment leaves wpos == 0
// but the record unfinished) must also complete through the fragmenting
// path — the fast path would inject a record mark into the open record.
func TestWriteRecordAfterFlushedFragment(t *testing.T) {
	var wire bytes.Buffer
	w := NewRecStream(&wire, 0)
	head := make([]byte, DefaultFragmentSize) // flushes eagerly, wpos back to 0
	for i := range head {
		head[i] = byte(i)
	}
	if err := w.PutBytes(head); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRecord(preframed([]byte("tail"))); err != nil {
		t.Fatal(err)
	}
	// A fresh WriteRecord on the now-sealed stream is its own record.
	if err := w.WriteRecord(preframed([]byte("second"))); err != nil {
		t.Fatal(err)
	}
	r := NewRecStream(&wire, 0)
	rec1, err := r.ReadRecord(nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := append(append([]byte(nil), head...), "tail"...); !bytes.Equal(rec1, want) {
		t.Fatalf("first record: got %d bytes, want %d of head+tail", len(rec1), len(want))
	}
	rec2, err := r.ReadRecord(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec2, []byte("second")) {
		t.Fatalf("second record: got %q", rec2)
	}
}
