package xdr

import (
	"fmt"
	"io"
)

// RecStream is the record-marking stream of xdr_rec.c used by RPC over
// TCP: the byte stream is cut into records, each a sequence of fragments
// carrying a 4-byte big-endian header whose top bit marks the final
// fragment of the record and whose low 31 bits give the fragment length.
//
// A connection-oriented transport needs this layer because, unlike UDP,
// TCP gives no message boundaries; the record marks let one reply be
// delimited without knowing its encoded size in advance.
type RecStream struct {
	rw io.ReadWriter

	// Write (encode) state.
	wbuf  []byte // pending fragment payload
	wpos  int    // bytes of wbuf filled
	sent  int    // bytes already flushed in the current record
	werr  error  // sticky write error
	wseal bool   // record has been completed and not yet restarted

	// Queued-record state (QueueRecord/Flush): complete framed records
	// awaiting one vectored write.
	wq      [][]byte
	wqBytes int
	wcoal   []byte // scratch for the coalesced single-Write path

	// Read (decode) state.
	rfrag int  // bytes remaining in the current fragment
	rlast bool // current fragment is the record's last
	rcons int  // bytes consumed of the current record
	rinit bool // a fragment header has been read for this record
}

var _ Stream = (*RecStream)(nil)

// DefaultFragmentSize is the payload capacity of one outgoing fragment,
// matching the 4000-byte sendsize/recvsize default of clnttcp_create.
const DefaultFragmentSize = 4000

const lastFragFlag = uint32(1) << 31

// NewRecStream returns a record-marking stream over rw. fragSize bounds
// each outgoing fragment payload; 0 selects DefaultFragmentSize.
func NewRecStream(rw io.ReadWriter, fragSize int) *RecStream {
	if fragSize <= 0 {
		fragSize = DefaultFragmentSize
	}
	return &RecStream{rw: rw, wbuf: make([]byte, fragSize)}
}

// PutLong appends a big-endian 4-byte integer to the current record.
func (r *RecStream) PutLong(v int32) error {
	var b [BytesPerUnit]byte
	u := uint32(v)
	b[0], b[1], b[2], b[3] = byte(u>>24), byte(u>>16), byte(u>>8), byte(u)
	return r.PutBytes(b[:])
}

// PutBytes appends raw bytes to the current record, flushing intermediate
// (non-final) fragments whenever the fragment buffer fills.
func (r *RecStream) PutBytes(p []byte) error {
	if r.werr != nil {
		return r.werr
	}
	r.wseal = false
	for len(p) > 0 {
		n := copy(r.wbuf[r.wpos:], p)
		r.wpos += n
		p = p[n:]
		if r.wpos == len(r.wbuf) {
			if err := r.flushFragment(false); err != nil {
				return err
			}
		}
	}
	return nil
}

// EndRecord completes the current record, flushing the pending data as the
// final fragment (the xdrrec_endofrecord "sendnow" path). An empty record
// still emits one empty final fragment so the peer sees a boundary.
func (r *RecStream) EndRecord() error {
	if r.werr != nil {
		return r.werr
	}
	if err := r.flushFragment(true); err != nil {
		return err
	}
	r.sent = 0
	r.wseal = true
	return nil
}

// RecordMarkLen is the size of the record-marking header. Callers of
// WriteRecord reserve this many bytes at the head of their message
// buffer for the mark to be patched into.
const RecordMarkLen = BytesPerUnit

// maxFragPayload is the largest payload one fragment can carry: the low
// 31 bits of the record mark.
const maxFragPayload = int(^lastFragFlag)

// WriteRecord frames buf as one complete record and writes it with a
// single Write call. buf's first RecordMarkLen bytes are reserved for
// the record mark — the caller marshals the message immediately after
// them — so the message reaches the socket without ever being copied
// into the fragment buffer, and the mark plus payload leave in one
// syscall instead of two-per-fragment. The record content is identical
// to PutBytes+EndRecord on the same payload (byte-identical on the wire
// for payloads within one fragment, which covers every datagram-sized
// message; larger payloads ride in one big final fragment instead of
// 4000-byte slices — both framings every RFC 1057 peer must accept).
//
// Data already buffered by PutBytes, or a payload too large for a
// single fragment, completes through the generic fragmenting path, so
// the two write APIs compose on one stream.
func (r *RecStream) WriteRecord(buf []byte) error {
	if r.werr != nil {
		return r.werr
	}
	if len(buf) < RecordMarkLen {
		return fmt.Errorf("xdr: WriteRecord: buffer shorter than the %d-byte record mark", RecordMarkLen)
	}
	payload := len(buf) - RecordMarkLen
	// An open record — pending bytes in the fragment buffer OR fragments
	// already flushed (r.sent) — must complete through the fragmenting
	// path: the single-write fast path would inject this record's mark
	// into the middle of the open record and corrupt the stream framing.
	if r.wpos != 0 || r.sent != 0 || payload > maxFragPayload {
		if err := r.PutBytes(buf[RecordMarkLen:]); err != nil {
			return err
		}
		return r.EndRecord()
	}
	u := uint32(payload) | lastFragFlag
	buf[0], buf[1], buf[2], buf[3] = byte(u>>24), byte(u>>16), byte(u>>8), byte(u)
	if _, err := r.rw.Write(buf); err != nil {
		r.werr = fmt.Errorf("xdr: write record: %w", err)
		return r.werr
	}
	r.sent = 0
	r.wseal = true
	return nil
}

func (r *RecStream) flushFragment(last bool) error {
	header := uint32(r.wpos)
	if last {
		header |= lastFragFlag
	}
	var h [BytesPerUnit]byte
	h[0], h[1], h[2], h[3] = byte(header>>24), byte(header>>16), byte(header>>8), byte(header)
	if _, err := r.rw.Write(h[:]); err != nil {
		r.werr = fmt.Errorf("xdr: write fragment header: %w", err)
		return r.werr
	}
	if r.wpos > 0 {
		if _, err := r.rw.Write(r.wbuf[:r.wpos]); err != nil {
			r.werr = fmt.Errorf("xdr: write fragment payload: %w", err)
			return r.werr
		}
	}
	r.sent += r.wpos
	r.wpos = 0
	return nil
}

// GetLong consumes a big-endian 4-byte integer from the current record.
func (r *RecStream) GetLong(v *int32) error {
	var b [BytesPerUnit]byte
	if err := r.GetBytes(b[:]); err != nil {
		return err
	}
	*v = int32(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]))
	return nil
}

// GetBytes consumes len(p) bytes from the current record, crossing
// fragment boundaries transparently. Reading past the final fragment of
// the record yields ErrOverflow, as exhausting the record did in C.
func (r *RecStream) GetBytes(p []byte) error {
	for len(p) > 0 {
		if r.rfrag == 0 {
			if r.rinit && r.rlast {
				return ErrOverflow
			}
			if err := r.readFragmentHeader(); err != nil {
				return err
			}
			continue
		}
		n := len(p)
		if n > r.rfrag {
			n = r.rfrag
		}
		if _, err := io.ReadFull(r.rw, p[:n]); err != nil {
			return fmt.Errorf("xdr: read record payload: %w", err)
		}
		r.rfrag -= n
		r.rcons += n
		p = p[n:]
	}
	return nil
}

func (r *RecStream) readFragmentHeader() error {
	var h [BytesPerUnit]byte
	if _, err := io.ReadFull(r.rw, h[:]); err != nil {
		return fmt.Errorf("xdr: read fragment header: %w", err)
	}
	u := uint32(h[0])<<24 | uint32(h[1])<<16 | uint32(h[2])<<8 | uint32(h[3])
	r.rlast = u&lastFragFlag != 0
	r.rfrag = int(u &^ lastFragFlag)
	r.rinit = true
	return nil
}

// maxFragStep bounds how much ReadRecord grows its buffer ahead of the
// bytes actually arriving: a fragment header is attacker-controlled, so
// trusting its length for one big allocation would let a single bogus
// record claim up to 2 GiB before the read fails. Growing in bounded
// steps keeps memory proportional to data received.
const maxFragStep = 1 << 20

// ReadRecord appends one complete record to dst and returns the extended
// slice. It reads fragment-at-a-time, so it is the efficient way for a
// server to slurp a whole request before dispatching.
func (r *RecStream) ReadRecord(dst []byte) ([]byte, error) {
	for {
		for r.rfrag > 0 {
			step := r.rfrag
			if step > maxFragStep {
				step = maxFragStep
			}
			start := len(dst)
			dst = append(dst, make([]byte, step)...)
			if _, err := io.ReadFull(r.rw, dst[start:]); err != nil {
				return dst, fmt.Errorf("xdr: read record payload: %w", err)
			}
			r.rcons += step
			r.rfrag -= step
		}
		if r.rinit && r.rlast {
			r.rinit = false
			r.rlast = false
			r.rcons = 0
			return dst, nil
		}
		if err := r.readFragmentHeader(); err != nil {
			return dst, err
		}
	}
}

// SkipRecord discards the rest of the current record and arms the reader
// for the next one (xdrrec_skiprecord).
func (r *RecStream) SkipRecord() error {
	for {
		if r.rfrag > 0 {
			if _, err := io.CopyN(io.Discard, r.rw, int64(r.rfrag)); err != nil {
				return fmt.Errorf("xdr: skip record: %w", err)
			}
			r.rcons += r.rfrag
			r.rfrag = 0
		}
		if r.rinit && r.rlast {
			break
		}
		if err := r.readFragmentHeader(); err != nil {
			return err
		}
	}
	r.rinit = false
	r.rlast = false
	r.rcons = 0
	return nil
}

// Pos reports bytes consumed (decode) or buffered+sent (encode) within the
// current record.
func (r *RecStream) Pos() int {
	if r.rinit {
		return r.rcons
	}
	return r.sent + r.wpos
}

// SetPos is not supported on record streams, exactly as in xdr_rec.c.
func (r *RecStream) SetPos(int) error { return ErrBadPos }
