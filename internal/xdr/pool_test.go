package xdr

import "testing"

func TestGetBufCapacityAndReuse(t *testing.T) {
	bp := GetBuf(100)
	if len(*bp) != 0 {
		t.Fatalf("len = %d, want 0", len(*bp))
	}
	if cap(*bp) < 100 {
		t.Fatalf("cap = %d, want >= 100", cap(*bp))
	}
	*bp = append(*bp, 1, 2, 3)
	PutBuf(bp)

	big := GetBuf(4 * DefaultPoolBuf)
	if cap(*big) < 4*DefaultPoolBuf {
		t.Fatalf("cap = %d, want >= %d", cap(*big), 4*DefaultPoolBuf)
	}
	PutBuf(big)
	PutBuf(nil) // must not panic
}

func TestBufStreamEncodeGrows(t *testing.T) {
	bs := NewBufEncode(make([]byte, 0, 4))
	enc := NewEncoder(bs)
	for i := int32(0); i < 100; i++ {
		v := i
		if err := enc.Long(&v); err != nil {
			t.Fatal(err)
		}
	}
	if bs.Pos() != 400 {
		t.Fatalf("pos = %d, want 400", bs.Pos())
	}
	// The bytes must round-trip through the mem decoder.
	dec := NewDecoder(NewMemDecode(bs.Buffer()))
	for i := int32(0); i < 100; i++ {
		var v int32
		if err := dec.Long(&v); err != nil {
			t.Fatal(err)
		}
		if v != i {
			t.Fatalf("value %d decoded as %d", i, v)
		}
	}
}

func TestBufStreamRejectsDecode(t *testing.T) {
	bs := NewBufEncode(nil)
	var v int32
	if err := bs.GetLong(&v); err != ErrBadOp {
		t.Fatalf("GetLong err = %v, want ErrBadOp", err)
	}
	if err := bs.GetBytes(make([]byte, 1)); err != ErrBadOp {
		t.Fatalf("GetBytes err = %v, want ErrBadOp", err)
	}
}

func TestBufStreamSetPosTruncates(t *testing.T) {
	bs := NewBufEncode(nil)
	_ = bs.PutBytes([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	if err := bs.SetPos(4); err != nil {
		t.Fatal(err)
	}
	if bs.Pos() != 4 {
		t.Fatalf("pos = %d, want 4", bs.Pos())
	}
	if err := bs.SetPos(8); err != ErrBadPos {
		t.Fatalf("forward seek err = %v, want ErrBadPos", err)
	}
	bs.Reset()
	if bs.Pos() != 0 {
		t.Fatalf("pos after reset = %d", bs.Pos())
	}
}

// BenchmarkMarshalPooledBuf measures the pooled marshal path used by the
// multiplexed client: borrow, encode, return. Steady state performs zero
// buffer allocations per call.
func BenchmarkMarshalPooledBuf(b *testing.B) {
	b.ReportAllocs()
	var v int32
	for i := 0; i < b.N; i++ {
		bp := GetBuf(DefaultPoolBuf)
		bs := NewBufEncode(*bp)
		enc := XDR{Op: Encode, Stream: bs}
		for j := 0; j < 64; j++ {
			v = int32(j)
			if err := enc.Long(&v); err != nil {
				b.Fatal(err)
			}
		}
		*bp = bs.Buffer()
		PutBuf(bp)
	}
}

// BenchmarkMarshalFreshBuf is the seed's per-call allocation pattern: a
// fresh buffer every call. Compare allocs/op against the pooled path.
func BenchmarkMarshalFreshBuf(b *testing.B) {
	b.ReportAllocs()
	var v int32
	for i := 0; i < b.N; i++ {
		buf := make([]byte, DefaultPoolBuf)
		mem := NewMemEncode(buf)
		enc := XDR{Op: Encode, Stream: mem}
		for j := 0; j < 64; j++ {
			v = int32(j)
			if err := enc.Long(&v); err != nil {
				b.Fatal(err)
			}
		}
	}
}
