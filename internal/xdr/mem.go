package xdr

// MemStream is the xdrmem stream of xdr_mem.c: marshaling over a
// caller-supplied contiguous buffer. Its structure deliberately keeps the
// fields of the original XDR handle that the paper specializes on:
//
//	handy   — bytes remaining, decremented and tested on every access,
//	          the x_handy overflow check of Figure 3;
//	pos     — cursor into buf, the x_private pointer.
//
// Every PutLong performs: one decrement, one signed comparison + branch,
// one byte-order conversion, one 4-byte store, one cursor advance. After
// specialization (internal/tempo) all but the store and advance vanish.
type MemStream struct {
	buf   []byte
	pos   int
	handy int
	base  int
}

var _ Stream = (*MemStream)(nil)

// NewMemEncode returns a MemStream writing into buf from its start
// (xdrmem_create with XDR_ENCODE).
func NewMemEncode(buf []byte) *MemStream {
	return &MemStream{buf: buf, handy: len(buf)}
}

// NewMemDecode returns a MemStream reading the len(buf) bytes of buf
// (xdrmem_create with XDR_DECODE).
func NewMemDecode(buf []byte) *MemStream {
	return &MemStream{buf: buf, handy: len(buf)}
}

// Reset rewinds the stream to offset 0 with the full buffer available,
// allowing handle reuse across calls as the original client did.
func (m *MemStream) Reset() {
	m.pos = m.base
	m.handy = len(m.buf) - m.base
}

// SetBuffer rearms the stream to decode (or encode over) buf from its
// start, keeping the MemStream itself reusable — and poolable — across
// calls.
func (m *MemStream) SetBuffer(buf []byte) {
	m.buf = buf
	m.pos = 0
	m.base = 0
	m.handy = len(buf)
}

// PutLong appends v as a big-endian 4-byte integer. The explicit
// decrement-and-test is the Figure 3 overflow check.
func (m *MemStream) PutLong(v int32) error {
	if m.handy -= BytesPerUnit; m.handy < 0 {
		m.handy = 0
		return ErrOverflow
	}
	u := uint32(v) // htonl: explicit big-endian byte stores
	m.buf[m.pos] = byte(u >> 24)
	m.buf[m.pos+1] = byte(u >> 16)
	m.buf[m.pos+2] = byte(u >> 8)
	m.buf[m.pos+3] = byte(u)
	m.pos += BytesPerUnit
	return nil
}

// GetLong consumes a big-endian 4-byte integer into *v.
func (m *MemStream) GetLong(v *int32) error {
	if m.handy -= BytesPerUnit; m.handy < 0 {
		m.handy = 0
		return ErrOverflow
	}
	*v = int32(uint32(m.buf[m.pos])<<24 | uint32(m.buf[m.pos+1])<<16 |
		uint32(m.buf[m.pos+2])<<8 | uint32(m.buf[m.pos+3])) // ntohl
	m.pos += BytesPerUnit
	return nil
}

// PutBytes appends len(p) raw bytes.
func (m *MemStream) PutBytes(p []byte) error {
	if m.handy -= len(p); m.handy < 0 {
		m.handy = 0
		return ErrOverflow
	}
	copy(m.buf[m.pos:], p)
	m.pos += len(p)
	return nil
}

// GetBytes consumes len(p) raw bytes into p.
func (m *MemStream) GetBytes(p []byte) error {
	if m.handy -= len(p); m.handy < 0 {
		m.handy = 0
		return ErrOverflow
	}
	copy(p, m.buf[m.pos:m.pos+len(p)])
	m.pos += len(p)
	return nil
}

// Take consumes the next n bytes and returns them as a window into the
// underlying buffer. It is the bulk counterpart of GetLong/GetBytes: a
// compiled marshal plan performs one x_handy check for a whole run of
// fields and then loads directly from the window, which is exactly the
// per-unit overflow checking the paper's specializer removes. The window
// aliases the stream's buffer and must not be retained.
func (m *MemStream) Take(n int) ([]byte, error) {
	if m.handy -= n; m.handy < 0 {
		m.handy = 0
		return nil, ErrOverflow
	}
	p := m.buf[m.pos : m.pos+n]
	m.pos += n
	return p, nil
}

// Pos reports the current offset within the buffer (XDR_GETPOS).
func (m *MemStream) Pos() int { return m.pos }

// SetPos repositions the cursor (XDR_SETPOS), recomputing the remaining
// space the same way x_handy was rebuilt in xdrmem_setpos.
func (m *MemStream) SetPos(pos int) error {
	if pos < 0 || pos > len(m.buf) {
		return ErrBadPos
	}
	m.pos = pos
	m.handy = len(m.buf) - pos
	return nil
}

// Buffer returns the prefix of the underlying buffer written so far.
func (m *MemStream) Buffer() []byte { return m.buf[:m.pos] }

// Remaining reports the bytes still available, i.e. x_handy.
func (m *MemStream) Remaining() int { return m.handy }
