package xdr

// This file carries the composite constructors of the original xdr.c:
// counted arrays (xdr_array), fixed-length vectors (xdr_vector), optional
// data (xdr_pointer/xdr_reference), and discriminated unions (xdr_union).
// Each is generic over an element routine exactly as the C versions were
// generic over an xdrproc_t — the interpretive layer the paper's §2 calls
// out as a specialization opportunity.

// Array marshals a variable-length counted array: a 4-byte element count
// followed by each element marshaled with elem (xdr_array). maxLen bounds
// the decoded count. On decode the slice is (re)allocated to the decoded
// length.
func Array[T any](x *XDR, v *[]T, maxLen uint32, elem Proc[T]) error {
	switch x.Op {
	case Encode:
		n := uint32(len(*v))
		if n > maxLen {
			return ErrTooBig
		}
		if err := x.Uint32(&n); err != nil {
			return err
		}
		for i := range *v {
			if err := elem(x, &(*v)[i]); err != nil {
				return err
			}
		}
		return nil
	case Decode:
		var n uint32
		if err := x.Uint32(&n); err != nil {
			return err
		}
		if n > maxLen {
			return ErrTooBig
		}
		if uint32(len(*v)) != n {
			*v = make([]T, n)
		}
		for i := range *v {
			if err := elem(x, &(*v)[i]); err != nil {
				return err
			}
		}
		return nil
	case Free:
		for i := range *v {
			if err := elem(x, &(*v)[i]); err != nil {
				return err
			}
		}
		*v = nil
		return nil
	default:
		return ErrBadOp
	}
}

// Vector marshals a fixed-length array whose length is known from the type
// and therefore not on the wire (xdr_vector).
func Vector[T any](x *XDR, v []T, elem Proc[T]) error {
	for i := range v {
		if err := elem(x, &v[i]); err != nil {
			return err
		}
	}
	return nil
}

// Optional marshals `*T` as XDR optional-data: a 4-byte "follows" flag and,
// if nonzero, the pointee (xdr_pointer). On decode a nil target is
// allocated when the flag says data follows; on free the pointer is
// released after freeing the pointee.
func Optional[T any](x *XDR, v **T, elem Proc[T]) error {
	switch x.Op {
	case Encode:
		var follows bool
		if *v != nil {
			follows = true
		}
		if err := x.Bool(&follows); err != nil {
			return err
		}
		if !follows {
			return nil
		}
		return elem(x, *v)
	case Decode:
		var follows bool
		if err := x.Bool(&follows); err != nil {
			return err
		}
		if !follows {
			*v = nil
			return nil
		}
		if *v == nil {
			*v = new(T)
		}
		return elem(x, *v)
	case Free:
		if *v != nil {
			if err := elem(x, *v); err != nil {
				return err
			}
			*v = nil
		}
		return nil
	default:
		return ErrBadOp
	}
}

// UnionArm is one (discriminant, marshaler) pair of a discriminated union.
type UnionArm struct {
	// Value is the discriminant selecting this arm.
	Value int32
	// Marshal handles the arm body; nil means a void arm.
	Marshal func(x *XDR) error
}

// Union marshals a discriminated union (xdr_union): the discriminant is
// marshaled first, then the matching arm's body. defaultArm, if non-nil,
// handles unlisted discriminants; with no default an unknown discriminant
// yields ErrBadUnion, as the NULL-terminated choice table did in C.
func Union(x *XDR, discriminant *int32, arms []UnionArm, defaultArm func(x *XDR) error) error {
	if err := x.Enum(discriminant); err != nil {
		return err
	}
	for _, a := range arms {
		if a.Value == *discriminant {
			if a.Marshal == nil {
				return nil
			}
			return a.Marshal(x)
		}
	}
	if defaultArm != nil {
		return defaultArm(x)
	}
	return ErrBadUnion
}
