// Package xdr implements the Sun XDR (eXternal Data Representation,
// RFC 1014/4506) encoding layer exactly as the 1984 Sun RPC code structures
// it: a generic, micro-layered runtime in which every primitive dispatches
// on the operation mode of an XDR handle and every buffer access re-checks
// the remaining space.
//
// The deliberate genericity of this package is the point: it is the
// "original Sun RPC" baseline of Muller et al. (INRIA RR-3220). Each
// call such as
//
//	x.Long(&v)   // xdr_long(xdrs, lp)
//
// performs the same interpretive work as the paper's Figure 2: a dispatch
// on x.Op, an indirect call through the stream ops, an overflow check
// against the stream's remaining-byte counter, and a byte-order
// conversion. The specialized counterparts produced by internal/tempo
// remove all of that, leaving only the data movement.
//
// In the five-layer specialization stack (see DESIGN.md) this is layer
// 1, the encoding layer: the primitive codecs, the buffer and record
// streams (BufStream, RecStream with its queued-record batching mode
// and the RecBatcher group-commit writer), and the shared buffer pool
// everything above allocates from. internal/rpcmsg (messages),
// internal/wire (compiled stubs), and the transports in internal/client
// and internal/server all bottom out here.
package xdr

import "errors"

// Op selects what an XDR handle does when a marshaling routine runs:
// serialize, deserialize, or release memory. It mirrors the xdr_op enum
// (XDR_ENCODE / XDR_DECODE / XDR_FREE) the paper's Figure 2 dispatches on.
type Op int

// Operation modes. They start at 1 so the zero value of Op is invalid and
// misuse is caught by the ErrBadOp paths rather than silently decoding.
const (
	Encode Op = iota + 1
	Decode
	Free
)

// String returns the Sun-style name of the operation.
func (op Op) String() string {
	switch op {
	case Encode:
		return "XDR_ENCODE"
	case Decode:
		return "XDR_DECODE"
	case Free:
		return "XDR_FREE"
	default:
		return "XDR_INVALID"
	}
}

// Errors reported by the XDR layer.
var (
	// ErrOverflow reports that a stream ran out of space while encoding
	// or out of data while decoding. It is the failure detected by the
	// x_handy check in xdrmem_putlong (paper Figure 3).
	ErrOverflow = errors.New("xdr: buffer overflow")
	// ErrBadOp reports an operation the handle's mode does not support,
	// the fall-through `return FALSE` of the paper's Figure 2.
	ErrBadOp = errors.New("xdr: invalid operation for mode")
	// ErrTooBig reports a counted quantity exceeding its declared bound.
	ErrTooBig = errors.New("xdr: size exceeds declared maximum")
	// ErrBadUnion reports an unknown discriminant while (de)coding a union.
	ErrBadUnion = errors.New("xdr: unknown union discriminant")
	// ErrBadPos reports an out-of-range SetPos.
	ErrBadPos = errors.New("xdr: position out of range")
)

// Stream is the x_ops function table of a Sun XDR handle: the micro-layer
// that moves 4-byte units and opaque bytes in or out of some medium
// (memory buffer, record stream, ...). All counted quantities on the wire
// are big-endian, 4-byte aligned.
type Stream interface {
	// PutLong appends one big-endian 4-byte integer (xdrmem_putlong).
	PutLong(v int32) error
	// GetLong consumes one big-endian 4-byte integer (xdrmem_getlong).
	GetLong(v *int32) error
	// PutBytes appends len(p) raw bytes without padding.
	PutBytes(p []byte) error
	// GetBytes consumes len(p) raw bytes without padding.
	GetBytes(p []byte) error
	// Pos reports the current byte offset within the stream (XDR_GETPOS).
	Pos() int
	// SetPos repositions the stream (XDR_SETPOS); not all streams allow it.
	SetPos(pos int) error
}

// XDR is the operation handle threaded through every marshaling routine,
// the Go rendering of the C `XDR` struct: an operation mode plus the
// stream ops table. Marshaling routines written against XDR work
// unchanged for encoding, decoding, and freeing — which is exactly the
// genericity the paper's specializer later removes.
type XDR struct {
	// Op is the mode every primitive dispatches on.
	Op Op
	// Stream is the underlying byte-moving micro-layer.
	Stream Stream
}

// NewEncoder returns a handle that serializes into s.
func NewEncoder(s Stream) *XDR { return &XDR{Op: Encode, Stream: s} }

// NewDecoder returns a handle that deserializes from s.
func NewDecoder(s Stream) *XDR { return &XDR{Op: Decode, Stream: s} }

// NewFreer returns a handle in XDR_FREE mode. Go is garbage collected, so
// freeing only resets pointer fields; the mode exists for fidelity with
// the three-way dispatch in the original code and for stubs that must
// run under all modes.
func NewFreer() *XDR { return &XDR{Op: Free, Stream: nil} }

// Pos reports the stream position, or 0 for a Free handle.
func (x *XDR) Pos() int {
	if x.Stream == nil {
		return 0
	}
	return x.Stream.Pos()
}

// A Proc marshals one value against a handle; it is the signature of every
// xdr_* routine (xdrproc_t). The value is always passed by pointer so the
// same routine encodes, decodes, and frees.
type Proc[T any] func(x *XDR, v *T) error

// BytesPerUnit is the XDR basic block size: every primitive occupies a
// multiple of 4 bytes on the wire.
const BytesPerUnit = 4

// Pad returns how many zero bytes follow n content bytes to reach 4-byte
// alignment.
func Pad(n int) int { return (BytesPerUnit - n%BytesPerUnit) % BytesPerUnit }

var zeroPad [BytesPerUnit]byte
