package xdr

import "math"

// Long marshals a 32-bit signed integer, the Go rendering of the paper's
// Figure 2 xdr_long(): a three-way dispatch on the handle mode followed by
// an indirect call through the stream ops. This function is the canonical
// "encoding/decoding dispatch" specialization opportunity (§3.1).
func (x *XDR) Long(v *int32) error {
	switch x.Op {
	case Encode:
		return x.Stream.PutLong(*v)
	case Decode:
		return x.Stream.GetLong(v)
	case Free:
		return nil
	default:
		return ErrBadOp
	}
}

// Int marshals an int as a 32-bit quantity. It mirrors xdr_int, the
// "machine dependent switch on integer size" layer of Figure 1: on the
// wire an int is exactly the same as a long.
func (x *XDR) Int(v *int) error {
	l := int32(*v)
	if err := x.Long(&l); err != nil {
		return err
	}
	if x.Op == Decode {
		*v = int(l)
	}
	return nil
}

// Uint32 marshals an unsigned 32-bit integer (xdr_u_long).
func (x *XDR) Uint32(v *uint32) error {
	l := int32(*v)
	if err := x.Long(&l); err != nil {
		return err
	}
	if x.Op == Decode {
		*v = uint32(l)
	}
	return nil
}

// Bool marshals a boolean as a 32-bit 0/1 (xdr_bool). Any nonzero decoded
// value is treated as true, matching the permissive original.
func (x *XDR) Bool(v *bool) error {
	var l int32
	if *v {
		l = 1
	}
	if err := x.Long(&l); err != nil {
		return err
	}
	if x.Op == Decode {
		*v = l != 0
	}
	return nil
}

// Enum marshals an enumeration constant as its 32-bit value (xdr_enum).
func (x *XDR) Enum(v *int32) error { return x.Long(v) }

// Hyper marshals a 64-bit signed integer (xdr_hyper) as two 4-byte units,
// most significant first.
func (x *XDR) Hyper(v *int64) error {
	switch x.Op {
	case Encode:
		hi, lo := int32(uint64(*v)>>32), int32(uint64(*v))
		if err := x.Stream.PutLong(hi); err != nil {
			return err
		}
		return x.Stream.PutLong(lo)
	case Decode:
		var hi, lo int32
		if err := x.Stream.GetLong(&hi); err != nil {
			return err
		}
		if err := x.Stream.GetLong(&lo); err != nil {
			return err
		}
		*v = int64(uint64(uint32(hi))<<32 | uint64(uint32(lo)))
		return nil
	case Free:
		return nil
	default:
		return ErrBadOp
	}
}

// Uint64 marshals a 64-bit unsigned integer (xdr_u_hyper).
func (x *XDR) Uint64(v *uint64) error {
	h := int64(*v)
	if err := x.Hyper(&h); err != nil {
		return err
	}
	if x.Op == Decode {
		*v = uint64(h)
	}
	return nil
}

// Float32 marshals an IEEE-754 single-precision float (xdr_float).
func (x *XDR) Float32(v *float32) error {
	l := int32(math.Float32bits(*v))
	if err := x.Long(&l); err != nil {
		return err
	}
	if x.Op == Decode {
		*v = math.Float32frombits(uint32(l))
	}
	return nil
}

// Float64 marshals an IEEE-754 double-precision float (xdr_double).
func (x *XDR) Float64(v *float64) error {
	h := int64(math.Float64bits(*v))
	if err := x.Hyper(&h); err != nil {
		return err
	}
	if x.Op == Decode {
		*v = math.Float64frombits(uint64(h))
	}
	return nil
}

// Opaque marshals exactly len(p) fixed opaque bytes plus alignment padding
// (xdr_opaque). The length itself is not on the wire.
func (x *XDR) Opaque(p []byte) error {
	if len(p) == 0 {
		return nil
	}
	pad := Pad(len(p))
	switch x.Op {
	case Encode:
		if err := x.Stream.PutBytes(p); err != nil {
			return err
		}
		if pad != 0 {
			return x.Stream.PutBytes(zeroPad[:pad])
		}
		return nil
	case Decode:
		if err := x.Stream.GetBytes(p); err != nil {
			return err
		}
		if pad != 0 {
			var scratch [BytesPerUnit]byte
			return x.Stream.GetBytes(scratch[:pad])
		}
		return nil
	case Free:
		return nil
	default:
		return ErrBadOp
	}
}

// Bytes marshals a variable-length opaque: a 4-byte count followed by the
// bytes and padding (xdr_bytes). maxSize bounds the decoded count;
// pass NoSizeLimit for an unbounded field.
func (x *XDR) Bytes(p *[]byte, maxSize uint32) error {
	switch x.Op {
	case Encode:
		n := uint32(len(*p))
		if n > maxSize {
			return ErrTooBig
		}
		if err := x.Uint32(&n); err != nil {
			return err
		}
		return x.Opaque(*p)
	case Decode:
		var n uint32
		if err := x.Uint32(&n); err != nil {
			return err
		}
		if n > maxSize {
			return ErrTooBig
		}
		if uint32(len(*p)) != n {
			*p = make([]byte, n)
		}
		return x.Opaque(*p)
	case Free:
		*p = nil
		return nil
	default:
		return ErrBadOp
	}
}

// NoSizeLimit disables the bound of a counted field, as passing ~0 did in C.
const NoSizeLimit = ^uint32(0)

// String marshals a counted UTF-8-agnostic byte string (xdr_string).
func (x *XDR) String(s *string, maxSize uint32) error {
	switch x.Op {
	case Encode:
		n := uint32(len(*s))
		if n > maxSize {
			return ErrTooBig
		}
		if err := x.Uint32(&n); err != nil {
			return err
		}
		return x.Opaque([]byte(*s))
	case Decode:
		var n uint32
		if err := x.Uint32(&n); err != nil {
			return err
		}
		if n > maxSize {
			return ErrTooBig
		}
		buf := make([]byte, n)
		if err := x.Opaque(buf); err != nil {
			return err
		}
		*s = string(buf)
		return nil
	case Free:
		*s = ""
		return nil
	default:
		return ErrBadOp
	}
}

// Void marshals nothing (xdr_void); it exists so procedures with no
// arguments or results still have a marshaling routine.
func (x *XDR) Void() error { return nil }
