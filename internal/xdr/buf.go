package xdr

// BufStream is an encode-only Stream appending to a growable byte slice.
// Unlike MemStream it never overflows: the buffer extends as needed, which
// is what lets one reply path serve both small datagram responses and
// record-stream replies larger than any preallocated buffer. Pair it with
// GetBuf/PutBuf to keep the growth amortized across calls.
type BufStream struct {
	buf []byte
}

var _ Stream = (*BufStream)(nil)

// NewBufEncode returns a stream appending to backing[:0]. The backing
// array is reused until an append outgrows it.
func NewBufEncode(backing []byte) *BufStream {
	return &BufStream{buf: backing[:0]}
}

// SetBuffer rearms the stream to append after backing's existing
// contents instead of truncating them — how a caller lays down a
// precompiled prefix (a header template, a reserved record mark) and
// continues encoding behind it — keeping the BufStream itself reusable
// (and poolable) across calls.
func (b *BufStream) SetBuffer(backing []byte) { b.buf = backing }

// PutLong appends v as a big-endian 4-byte integer.
func (b *BufStream) PutLong(v int32) error {
	u := uint32(v)
	b.buf = append(b.buf, byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
	return nil
}

// GetLong is not supported: BufStream is encode-only.
func (b *BufStream) GetLong(*int32) error { return ErrBadOp }

// PutBytes appends len(p) raw bytes.
func (b *BufStream) PutBytes(p []byte) error {
	b.buf = append(b.buf, p...)
	return nil
}

// GetBytes is not supported: BufStream is encode-only.
func (b *BufStream) GetBytes([]byte) error { return ErrBadOp }

// Pos reports the bytes encoded so far.
func (b *BufStream) Pos() int { return len(b.buf) }

// SetPos truncates the stream back to pos; seeking forward is not allowed.
func (b *BufStream) SetPos(pos int) error {
	if pos < 0 || pos > len(b.buf) {
		return ErrBadPos
	}
	b.buf = b.buf[:pos]
	return nil
}

// Extend grows the stream by n bytes and returns the writable window
// covering them. It is the bulk counterpart of PutLong/PutBytes: a
// compiled marshal plan reserves one run of output with a single growth
// check and then stores directly, instead of paying a per-unit call
// through the Stream interface. The window is only valid until the next
// operation on the stream.
func (b *BufStream) Extend(n int) []byte {
	l := len(b.buf)
	if cap(b.buf)-l < n {
		b.buf = append(b.buf[:l], make([]byte, n)...)
	} else {
		b.buf = b.buf[:l+n]
	}
	return b.buf[l : l+n]
}

// Buffer returns the bytes encoded so far.
func (b *BufStream) Buffer() []byte { return b.buf }

// Reset discards the encoded bytes, keeping the backing capacity.
func (b *BufStream) Reset() { b.buf = b.buf[:0] }
