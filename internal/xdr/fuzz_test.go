package xdr

import (
	"bytes"
	"testing"
)

// FuzzRecRead feeds arbitrary bytes to the record-marking reader: the
// first decode boundary a hostile TCP peer reaches. The reader must
// never panic, never return more bytes than arrived, and never allocate
// ahead of the data backing a fragment header's claimed length.
func FuzzRecRead(f *testing.F) {
	// A well-formed single-fragment record.
	var good bytes.Buffer
	rs := NewRecStream(&good, 0)
	if err := rs.PutBytes([]byte("hello world!")); err != nil {
		f.Fatal(err)
	}
	if err := rs.EndRecord(); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	// A record split across two fragments.
	var multi bytes.Buffer
	rs = NewRecStream(&multi, 8)
	if err := rs.PutBytes(bytes.Repeat([]byte{0xab}, 20)); err != nil {
		f.Fatal(err)
	}
	if err := rs.EndRecord(); err != nil {
		f.Fatal(err)
	}
	f.Add(multi.Bytes())
	// An empty final fragment, a truncated header, and a fragment header
	// whose length lies far beyond the data behind it.
	f.Add([]byte{0x80, 0, 0, 0})
	f.Add([]byte{0x80, 0})
	f.Add([]byte{0x7f, 0xff, 0xff, 0xff, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := NewRecStream(bytes.NewBuffer(data), 0).ReadRecord(nil)
		if err == nil && len(rec) > len(data) {
			t.Fatalf("record %d bytes from %d input bytes", len(rec), len(data))
		}
		// The streaming reader and skipper over the same input must not
		// panic either.
		s := NewRecStream(bytes.NewBuffer(data), 0)
		var v int32
		for s.GetLong(&v) == nil {
		}
		_ = NewRecStream(bytes.NewBuffer(data), 0).SkipRecord()
	})
}
