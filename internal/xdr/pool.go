package xdr

import "sync"

// DefaultPoolBuf is the capacity of freshly minted pool buffers. It covers
// a default-size datagram (8900 bytes) plus record headers without growth,
// so the steady state of a busy transport allocates nothing per call.
const DefaultPoolBuf = 9 << 10

// bufPool recycles marshaling and reply buffers across concurrent calls.
// The multiplexed transports borrow one buffer per in-flight call instead
// of owning a single buffer behind a mutex, so pooling is what keeps the
// concurrent hot path allocation-free.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, DefaultPoolBuf)
		return &b
	},
}

// GetBuf borrows a zero-length buffer with capacity at least n from the
// shared pool. Callers may reslice it up to cap and may grow it with
// append; hand it back with PutBuf (including any growth) when the bytes
// are no longer referenced.
func GetBuf(n int) *[]byte {
	bp := bufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, 0, n)
	}
	*bp = (*bp)[:0]
	return bp
}

// maxPoolBuf is the largest capacity PutBuf keeps. Buffers grown past it
// (a huge TCP record, say) are dropped for the GC instead of circulating
// forever in the pool serving ordinary datagram-sized calls.
const maxPoolBuf = 64 << 10

// PutBuf returns a buffer borrowed with GetBuf to the pool. The caller
// must not retain *bp afterwards.
func PutBuf(bp *[]byte) {
	if bp == nil || cap(*bp) > maxPoolBuf {
		return
	}
	bufPool.Put(bp)
}
