package xdr

import "sync"

// DefaultPoolBuf is the capacity of freshly minted pool buffers. It covers
// a default-size datagram (8900 bytes) plus record headers without growth,
// so the steady state of a busy transport allocates nothing per call.
const DefaultPoolBuf = 9 << 10

// bufPool recycles marshaling and reply buffers across concurrent calls.
// The multiplexed transports borrow one buffer per in-flight call instead
// of owning a single buffer behind a mutex, so pooling is what keeps the
// concurrent hot path allocation-free.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, DefaultPoolBuf)
		return &b
	},
}

// GetBuf borrows a zero-length buffer with capacity at least n from the
// shared pool. Callers may reslice it up to cap and may grow it with
// append; hand it back with PutBuf (including any growth) when the bytes
// are no longer referenced.
func GetBuf(n int) *[]byte {
	bp := bufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, 0, n)
	}
	*bp = (*bp)[:0]
	return bp
}

// maxPoolBuf is the largest capacity PutBuf keeps. Buffers grown past it
// (a huge TCP record, say) are dropped for the GC instead of circulating
// forever in the pool serving ordinary datagram-sized calls.
const maxPoolBuf = 64 << 10

// PutBuf returns a buffer borrowed with GetBuf to the pool. The caller
// must not retain *bp afterwards.
func PutBuf(bp *[]byte) {
	if bp == nil || cap(*bp) > maxPoolBuf {
		return
	}
	bufPool.Put(bp)
}

// PooledEnc couples a growable BufStream with its encode handle so the
// per-call stream+handle pair is recycled instead of allocated: the XDR
// handle escapes into the marshal closures it is passed to, so without
// pooling every call pays two heap objects before a single byte moves.
type PooledEnc struct {
	BS BufStream
	X  XDR
}

var encPool = sync.Pool{New: func() any { return new(PooledEnc) }}

// GetEnc borrows an encode handle appending after backing's existing
// contents. Capture BS.Buffer() before handing it back with PutEnc.
func GetEnc(backing []byte) *PooledEnc {
	e := encPool.Get().(*PooledEnc)
	e.BS.SetBuffer(backing)
	e.X = XDR{Op: Encode, Stream: &e.BS}
	return e
}

// PutEnc returns an encode handle to the pool. The caller must not use
// e — or any stream window obtained from it — afterwards.
func PutEnc(e *PooledEnc) {
	e.BS.SetBuffer(nil)
	encPool.Put(e)
}

// PooledDec is the decode-side counterpart of PooledEnc: a MemStream
// plus its decode handle, recycled across calls.
type PooledDec struct {
	MS MemStream
	X  XDR
}

var decPool = sync.Pool{New: func() any { return new(PooledDec) }}

// GetDec borrows a decode handle over buf.
func GetDec(buf []byte) *PooledDec {
	d := decPool.Get().(*PooledDec)
	d.MS.SetBuffer(buf)
	d.X = XDR{Op: Decode, Stream: &d.MS}
	return d
}

// PutDec returns a decode handle to the pool. The caller must not use
// d afterwards and must not retain windows into the decoded buffer.
func PutDec(d *PooledDec) {
	d.MS.SetBuffer(nil)
	decPool.Put(d)
}
