package tempo

import (
	"fmt"

	"specrpc/internal/minic"
)

// ParamKind classifies how an entry-point parameter is declared to the
// specializer — Tempo's "description of the inputs" (§4).
type ParamKind int

// Parameter binding-time declarations.
const (
	// ParamDynamic is an unknown input, kept as a residual parameter.
	ParamDynamic ParamKind = iota + 1
	// ParamStaticInt is a known integer input, folded into the code.
	ParamStaticInt
	// ParamStaticFunc is a known function value.
	ParamStaticFunc
	// ParamObject is a pointer to a (possibly partially static) object
	// described by Obj.
	ParamObject
)

// ParamSpec declares one entry parameter's binding time.
type ParamSpec struct {
	Kind ParamKind
	// Int is the value for ParamStaticInt.
	Int int64
	// Func is the function name for ParamStaticFunc.
	Func string
	// Obj describes the pointee for ParamObject.
	Obj *ObjSpec
}

// StaticInt declares a known integer parameter.
func StaticInt(v int64) ParamSpec { return ParamSpec{Kind: ParamStaticInt, Int: v} }

// StaticFunc declares a known function-value parameter.
func StaticFunc(name string) ParamSpec { return ParamSpec{Kind: ParamStaticFunc, Func: name} }

// Dynamic declares an unknown parameter.
func Dynamic() ParamSpec { return ParamSpec{Kind: ParamDynamic} }

// Object declares a pointer parameter to the described object.
func Object(o *ObjSpec) ParamSpec { return ParamSpec{Kind: ParamObject, Obj: o} }

// ObjSpec describes a partially-static object a parameter points to: which
// fields are static (and their values) and which are dynamic. Dynamic
// fields are accessed at run time through the residual parameter; the
// object must therefore exist at run time with the same layout.
type ObjSpec struct {
	// StructName names the object's struct type.
	StructName string
	// Fields maps field names to their static values: int64, string
	// (function name), *ObjSpec (pointer to a nested static object), or
	// nil for the null pointer. Fields absent from the map are dynamic.
	Fields map[string]any
}

// Context is one specialization request: the entry point, the binding
// times of its inputs, and engine options.
type Context struct {
	// Entry is the function to specialize.
	Entry string
	// Params declares each entry parameter, in order.
	Params []ParamSpec
	// UnrollLimit bounds static loop unrolling: a static loop with more
	// iterations than the limit is residualized as a loop instead of
	// unrolled. 0 means unroll fully (the paper's default behaviour,
	// §5 "the default specialized code unrolls the array
	// encoding/decoding loops completely").
	UnrollLimit int
	// MaxDepth bounds call unfolding depth (default 256).
	MaxDepth int
	// SuffixNames, when set, renames the entry point in the residual
	// program to Entry+Suffix (default "_spec").
	Suffix string
	// Observer, when set, receives the binding-time division as the
	// specializer discovers it: each original AST node is reported as
	// static (evaluated away) or dynamic (residualized). A node observed
	// under several contexts reports each observation.
	Observer func(node any, static bool)
	// KeepDeadStores disables the residual cleanup passes (copy
	// propagation and dead-store elimination); used by tests and the
	// ablation benchmarks.
	KeepDeadStores bool
}

// Result is the outcome of a specialization.
type Result struct {
	// Program is the residual program: all structs and externs of the
	// original plus the specialized entry (and any residual variants).
	Program *minic.Program
	// Entry is the residual entry function's name.
	Entry string
	// Params lists the residual entry's parameter names in call order:
	// the dynamic (and object) parameters that survived specialization.
	Params []string
	// StaticReturn, when non-nil, is the entry's statically known return
	// value: the residual function was made void (§3.3) and every caller
	// may use this constant instead of a runtime test.
	StaticReturn *int64
}

// buildObject instantiates an ObjSpec as a specialization-time object
// rooted at the residual expression base (e.g. the parameter name).
func buildObject(prog *minic.Program, spec *ObjSpec, base minic.Expr, name string) (*SObj, error) {
	st, ok := prog.Structs[spec.StructName]
	if !ok {
		return nil, fmt.Errorf("tempo: object spec references unknown struct %s", spec.StructName)
	}
	layout, slots, err := structLayout(st)
	if err != nil {
		return nil, err
	}
	obj := &SObj{
		Name:    name,
		Struct:  st,
		Slots:   make([]PVal, slots),
		Div:     make([]bool, slots),
		Runtime: base,
	}
	for i := range obj.Slots {
		obj.Slots[i] = Dyn{Expr: nil} // placeholder; dynamic slots rebuilt from paths
	}
	for fi, f := range st.Fields {
		v, static := spec.Fields[f.Name]
		slot := layout[fi]
		if !static {
			continue
		}
		obj.Div[slot] = true
		switch val := v.(type) {
		case int64:
			obj.Slots[slot] = KInt{val}
		case int:
			obj.Slots[slot] = KInt{int64(val)}
		case string:
			obj.Slots[slot] = KFunc{val}
		case nil:
			obj.Slots[slot] = KNull{}
		case *ObjSpec:
			var fieldBase minic.Expr
			if base != nil {
				fieldBase = &minic.Field{X: minic.CloneExpr(base), Name: f.Name, Arrow: true, Struct: st}
			}
			nested, err := buildObject(prog, val, fieldBase, name+"."+f.Name)
			if err != nil {
				return nil, err
			}
			obj.Slots[slot] = KPtr{Obj: nested}
		default:
			return nil, fmt.Errorf("tempo: unsupported static field value %T for %s.%s",
				v, spec.StructName, f.Name)
		}
	}
	return obj, nil
}

// structLayout computes per-field slot offsets and the total slot count,
// mirroring internal/vm's layout so residual programs and the original
// agree on memory shape.
func structLayout(st *minic.Struct) (offsets []int, total int, err error) {
	offsets = make([]int, len(st.Fields))
	off := 0
	for i, f := range st.Fields {
		offsets[i] = off
		n, err := slotCount(f.Type)
		if err != nil {
			return nil, 0, fmt.Errorf("tempo: struct %s field %s: %w", st.Name, f.Name, err)
		}
		off += n
	}
	return offsets, off, nil
}

func slotCount(t minic.Type) (int, error) {
	switch n := t.(type) {
	case *minic.Prim:
		if n.Kind == minic.Void {
			return 0, fmt.Errorf("void has no storage")
		}
		return 1, nil
	case *minic.Ptr:
		return 1, nil
	case *minic.Struct:
		_, total, err := structLayout(n)
		return total, err
	case *minic.Array:
		if n.Elem.Equal(minic.TypeChar) {
			return 0, fmt.Errorf("char arrays unsupported in word objects")
		}
		k, err := slotCount(n.Elem)
		return n.Len * k, err
	default:
		return 0, fmt.Errorf("unsupported type %s", t)
	}
}
