package tempo

import (
	"errors"
	"fmt"

	"specrpc/internal/minic"
)

// Specialize partially evaluates ctx.Entry of prog (which must have
// passed minic.Check) with respect to the declared inputs and returns the
// residual program.
func Specialize(prog *minic.Program, ctx *Context) (*Result, error) {
	if ctx.MaxDepth == 0 {
		ctx.MaxDepth = 256
	}
	if ctx.Suffix == "" {
		ctx.Suffix = "_spec"
	}
	entry, ok := prog.Funcs[ctx.Entry]
	if !ok {
		return nil, fmt.Errorf("tempo: entry function %s not found", ctx.Entry)
	}
	if len(ctx.Params) != len(entry.Params) {
		return nil, fmt.Errorf("tempo: entry %s has %d parameters, %d binding times declared",
			ctx.Entry, len(entry.Params), len(ctx.Params))
	}

	s := &specializer{prog: prog, ctx: ctx, res: minic.NewProgram()}
	// The residual program shares the original's type and extern world.
	for name, st := range prog.Structs {
		s.res.Structs[name] = st
		s.res.Order = append(s.res.Order, "struct "+name)
	}
	for name, ext := range prog.Externs {
		s.res.Externs[name] = ext
		s.res.Order = append(s.res.Order, "extern "+name)
	}

	resName := ctx.Entry + ctx.Suffix
	ret, err := s.specializeEntry(entry, resName)
	if err != nil {
		return nil, err
	}
	if !ctx.KeepDeadStores {
		cleanupProgram(s.res)
	}
	if err := minic.Check(s.res); err != nil {
		return nil, fmt.Errorf("tempo: residual program fails type check: %w\n%s",
			err, minic.PrintProgram(s.res))
	}
	resFn := s.res.Funcs[resName]
	params := make([]string, len(resFn.Params))
	for i, p := range resFn.Params {
		params[i] = p.Name
	}
	return &Result{Program: s.res, Entry: resName, Params: params, StaticReturn: ret}, nil
}

type specializer struct {
	prog      *minic.Program
	res       *minic.Program
	ctx       *Context
	depth     int
	nfn       int
	addrCache map[*minic.FuncDef]map[string]bool
}

// Sentinels driving the unfold-vs-variant and unroll-vs-loop fallbacks.
var (
	errNeedVariant      = errors.New("unfold impossible: residual return under dynamic control")
	errDynamicLoopState = errors.New("loop cannot be unrolled")
)

func (s *specializer) observe(node any, static bool) {
	if s.ctx.Observer != nil {
		s.ctx.Observer(node, static)
	}
}

// ---------------------------------------------------------------------------
// Function-level specialization

// fnSpec builds one residual function.
type fnSpec struct {
	s    *specializer
	def  *minic.FuncDef // original function
	name string         // residual name
	// asFunction: residual returns are allowed (variant/entry mode);
	// otherwise returns must fold statically (unfold mode).
	asFunction bool

	used              map[string]bool
	nextSfx           map[string]int
	outs              []*[]minic.Stmt
	objs              []*SObj // every object created or reachable, for snapshots
	retVals           []PVal  // static return values observed (asFunction mode)
	hasResidualReturn bool
	// staticLoopDepth counts enclosing statically-unrolled loops;
	// residualLoop counts enclosing residual loops.
	staticLoops  int
	residualLoop int
}

func (fs *fnSpec) emit(st minic.Stmt) {
	top := fs.outs[len(fs.outs)-1]
	*top = append(*top, st)
}

func (fs *fnSpec) pushOut() *[]minic.Stmt {
	buf := &[]minic.Stmt{}
	fs.outs = append(fs.outs, buf)
	return buf
}

func (fs *fnSpec) popOut() []minic.Stmt {
	top := fs.outs[len(fs.outs)-1]
	fs.outs = fs.outs[:len(fs.outs)-1]
	return *top
}

func (fs *fnSpec) fresh(base string) string {
	if !fs.used[base] {
		fs.used[base] = true
		return base
	}
	if fs.nextSfx == nil {
		fs.nextSfx = make(map[string]int)
	}
	i := fs.nextSfx[base]
	if i < 2 {
		i = 2
	}
	for {
		name := fmt.Sprintf("%s_%d", base, i)
		i++
		if !fs.used[name] {
			fs.used[name] = true
			fs.nextSfx[base] = i
			return name
		}
	}
}

func (fs *fnSpec) trackObj(o *SObj) *SObj {
	fs.objs = append(fs.objs, o)
	return o
}

// snapshot copies every tracked object's slots for rollback.
func (fs *fnSpec) snapshot() [][]PVal {
	snap := make([][]PVal, len(fs.objs))
	for i, o := range fs.objs {
		snap[i] = append([]PVal(nil), o.Slots...)
	}
	return snap
}

func (fs *fnSpec) restore(snap [][]PVal) {
	for i := range snap {
		copy(fs.objs[i].Slots, snap[i])
	}
	fs.objs = fs.objs[:len(snap)]
}

// env is the flow-sensitive specialization environment.
type env struct {
	fs     *fnSpec
	scopes []*scope
	// def is the original function whose body this environment is
	// specializing (the unfolded callee's, not the residual host's);
	// it scopes the address-taken analysis for local declarations.
	def      *minic.FuncDef
	dynDepth int
	// baseDyn is the dynamic depth at the enclosing function-body entry;
	// control is "statically placed" when dynDepth == baseDyn.
	baseDyn int
	// unfolded marks the body of an inlined callee: returns under dynamic
	// control there force the variant fallback instead of residualizing.
	unfolded bool
	// taint marks a residual-variant body generated from inside a
	// residual loop: static-field writes there would apply once at
	// specialization time but once per iteration at run time, so they
	// are division violations even though the variant's own residualLoop
	// counter is zero.
	taint bool
}

type scope struct {
	names map[string]*binding
}

type binding struct {
	name     string
	resName  string
	typ      minic.Type
	val      PVal  // current partial value (scalars)
	obj      *SObj // aggregate or address-taken locals
	declared bool  // residual declaration emitted
}

func (e *env) push() { e.scopes = append(e.scopes, &scope{names: make(map[string]*binding)}) }
func (e *env) pop()  { e.scopes = e.scopes[:len(e.scopes)-1] }

func (e *env) bind(b *binding) { e.scopes[len(e.scopes)-1].names[b.name] = b }

func (e *env) lookup(name string) (*binding, bool) {
	for i := len(e.scopes) - 1; i >= 0; i-- {
		if b, ok := e.scopes[i].names[name]; ok {
			return b, true
		}
	}
	return nil, false
}

// fork deep-copies bindings (values fork per branch; objects stay shared
// and are reconciled by snapshot comparison).
func (e *env) fork() *env {
	c := &env{fs: e.fs, def: e.def, dynDepth: e.dynDepth, baseDyn: e.baseDyn,
		unfolded: e.unfolded, taint: e.taint}
	for _, sc := range e.scopes {
		ns := &scope{names: make(map[string]*binding, len(sc.names))}
		for k, b := range sc.names {
			cb := *b
			ns.names[k] = &cb
		}
		c.scopes = append(c.scopes, ns)
	}
	return c
}

// flow is the static control-flow outcome of specializing a statement.
type flow int

const (
	fNext flow = iota + 1
	fBreak
	fCont
	fReturn  // static return: ret holds the value
	fStopped // a residual terminator (return/break/continue) was emitted
)

// specializeEntry builds the residual entry function.
func (s *specializer) specializeEntry(def *minic.FuncDef, resName string) (*int64, error) {
	fs := &fnSpec{s: s, def: def, name: resName, asFunction: true, used: map[string]bool{}}
	e := &env{fs: fs, def: def}
	e.push()

	var params []minic.Param
	for i, p := range def.Params {
		spec := s.ctx.Params[i]
		b := &binding{name: p.Name, resName: p.Name, typ: p.Type}
		switch spec.Kind {
		case ParamStaticInt:
			b.val = KInt{spec.Int}
		case ParamStaticFunc:
			b.val = KFunc{spec.Func}
		case ParamDynamic:
			fs.used[p.Name] = true
			b.val = Dyn{Expr: &minic.VarRef{Name: p.Name}}
			b.declared = true
			params = append(params, minic.Param{Name: p.Name, Type: p.Type})
		case ParamObject:
			fs.used[p.Name] = true
			obj, err := buildObject(s.prog, spec.Obj, &minic.VarRef{Name: p.Name}, p.Name)
			if err != nil {
				return nil, err
			}
			fs.trackObj(obj)
			b.val = KPtr{Obj: obj}
			b.declared = true
			params = append(params, minic.Param{Name: p.Name, Type: p.Type})
		default:
			return nil, fmt.Errorf("tempo: parameter %s has no binding time", p.Name)
		}
		e.bind(b)
	}

	fs.pushOut()
	fl, ret, err := s.stmt(e, def.Body)
	if err != nil {
		return nil, err
	}
	body := fs.popOut()

	// Decide the residual return shape (§3.3): if no residual return was
	// needed and the static exit value is known, the function becomes
	// void and the value is reported to callers.
	var staticRet *int64
	retType := def.Ret
	switch {
	case fs.hasResidualReturn:
		// Keep the return type; a trailing static return lifts.
		if fl == fReturn && ret != nil {
			le, lerr := lift(def.Pos, ret)
			if lerr != nil {
				return nil, lerr
			}
			body = append(body, &minic.Return{E: le})
		}
	case fl == fReturn && ret != nil:
		if ki, ok := ret.(KInt); ok {
			v := ki.V
			staticRet = &v
			retType = minic.TypeVoid
		} else {
			le, lerr := lift(def.Pos, ret)
			if lerr != nil {
				return nil, lerr
			}
			body = append(body, &minic.Return{E: le})
		}
	default:
		retType = minic.TypeVoid
	}

	s.res.Funcs[resName] = &minic.FuncDef{
		Name: resName, Ret: retType, Params: params,
		Body: &minic.Block{Stmts: body},
	}
	s.res.Order = append(s.res.Order, "func "+resName)
	return staticRet, nil
}

// ---------------------------------------------------------------------------
// Statements

func (s *specializer) stmt(e *env, st minic.Stmt) (flow, PVal, error) {
	switch n := st.(type) {
	case nil:
		return fNext, nil, nil
	case *minic.Block:
		e.push()
		nobjs := len(e.fs.objs)
		defer func() {
			e.pop()
			// Objects for block-scoped locals die with the scope; stop
			// tracking them so snapshots stay proportional to live state.
			if len(e.fs.objs) > nobjs {
				e.fs.objs = e.fs.objs[:nobjs]
			}
		}()
		for _, inner := range n.Stmts {
			fl, ret, err := s.stmt(e, inner)
			if err != nil {
				return fl, nil, err
			}
			if fl != fNext {
				return fl, ret, nil
			}
		}
		return fNext, nil, nil
	case *minic.ExprStmt:
		s.observe(n, true) // reached; expression-level detail follows
		return s.exprStmt(e, n)
	case *minic.VarDecl:
		return s.varDecl(e, n)
	case *minic.If:
		return s.ifStmt(e, n)
	case *minic.While:
		s.observe(n, true)
		return s.loop(e, nil, n.Cond, nil, n.Body, n.Position())
	case *minic.For:
		s.observe(n, true)
		e.push()
		defer e.pop()
		if n.Init != nil {
			fl, ret, err := s.stmt(e, n.Init)
			if err != nil || fl != fNext {
				return fl, ret, err
			}
		}
		return s.loop(e, nil, n.Cond, n.Post, n.Body, n.Position())
	case *minic.Return:
		return s.returnStmt(e, n)
	case *minic.Break:
		return s.breakCont(e, n, true)
	case *minic.Continue:
		return s.breakCont(e, n, false)
	default:
		return fNext, nil, specErr(st.Position(), "unsupported statement %T", st)
	}
}

func (s *specializer) exprStmt(e *env, n *minic.ExprStmt) (flow, PVal, error) {
	v, err := s.expr(e, n.E)
	if err != nil {
		return fNext, nil, err
	}
	// Assignments emit their effects during s.expr; a bare call used for
	// effect must be emitted as a statement. Pure leftovers drop.
	if _, isAssign := n.E.(*minic.Assign); isAssign {
		return fNext, nil, nil
	}
	if d, ok := v.(Dyn); ok {
		if call, isCall := d.Expr.(*minic.Call); isCall {
			s.observe(n, false)
			e.fs.emit(&minic.ExprStmt{E: call})
			return fNext, nil, nil
		}
	}
	return fNext, nil, nil
}

func (s *specializer) varDecl(e *env, n *minic.VarDecl) (flow, PVal, error) {
	addrTaken := s.addrTakenIn(e.def)[n.Name]
	b := &binding{name: n.Name, typ: n.Type}
	b.resName = e.fs.fresh(n.Name)

	switch t := n.Type.(type) {
	case *minic.Array:
		if t.Elem.Equal(minic.TypeChar) {
			// Residual-only byte buffer: dynamic content.
			b.declared = true
			e.fs.emit(&minic.VarDecl{Name: b.resName, Type: n.Type})
			b.val = Dyn{Expr: &minic.VarRef{Name: b.resName}}
			e.bind(b)
			s.observe(n, false)
			return fNext, nil, nil
		}
		slots, err := slotCount(t)
		if err != nil {
			return fNext, nil, specErr(n.Pos, "array %s: %v", n.Name, err)
		}
		b.obj = e.fs.trackObj(&SObj{Name: b.resName, Slots: make([]PVal, slots),
			Runtime: &minic.VarRef{Name: b.resName}})
		b.declared = true
		b.val = KPtr{Obj: b.obj}
		e.fs.emit(&minic.VarDecl{Name: b.resName, Type: n.Type})
		e.bind(b)
		s.observe(n, false)
		return fNext, nil, nil
	case *minic.Struct:
		_, slots, err := structLayout(t)
		if err != nil {
			return fNext, nil, specErr(n.Pos, "struct local %s: %v", n.Name, err)
		}
		b.obj = e.fs.trackObj(&SObj{Name: b.resName, Struct: t, Slots: make([]PVal, slots),
			Runtime: &minic.VarRef{Name: b.resName}})
		b.declared = true
		b.val = KPtr{Obj: b.obj}
		e.fs.emit(&minic.VarDecl{Name: b.resName, Type: n.Type})
		e.bind(b)
		s.observe(n, false)
		return fNext, nil, nil
	default:
		if addrTaken {
			// Address-taken scalar: a one-slot runtime-backed object.
			b.obj = e.fs.trackObj(&SObj{Name: b.resName, Slots: make([]PVal, 1),
				Runtime: &minic.Unary{Op: "&", X: &minic.VarRef{Name: b.resName}}})
			b.declared = true
			var declInit minic.Expr
			if n.Init != nil {
				v, err := s.expr(e, n.Init)
				if err != nil {
					return fNext, nil, err
				}
				b.obj.Slots[0] = v
				le, lerr := lift(n.Pos, v)
				if lerr == nil {
					declInit = le
				}
				s.observe(n, IsKnown(v))
			} else {
				s.observe(n, false)
			}
			e.fs.emit(&minic.VarDecl{Name: b.resName, Type: n.Type, Init: declInit})
			b.val = KPtr{Obj: b.obj}
			e.bind(b)
			return fNext, nil, nil
		}
		// Plain scalar: fully tracked, residualized lazily.
		if n.Init != nil {
			v, err := s.expr(e, n.Init)
			if err != nil {
				return fNext, nil, err
			}
			if IsKnown(v) {
				b.val = v
				s.observe(n, true)
			} else {
				d := v.(Dyn)
				b.declared = true
				e.fs.emit(&minic.VarDecl{Name: b.resName, Type: n.Type, Init: d.Expr})
				b.val = Dyn{Expr: &minic.VarRef{Name: b.resName}}
				s.observe(n, false)
			}
		} else {
			b.val = KInt{0}
			s.observe(n, true)
		}
		e.bind(b)
		return fNext, nil, nil
	}
}

func (s *specializer) returnStmt(e *env, n *minic.Return) (flow, PVal, error) {
	var v PVal
	if n.E != nil {
		var err error
		v, err = s.expr(e, n.E)
		if err != nil {
			return fNext, nil, err
		}
	} else {
		v = KInt{0}
	}
	if e.dynDepth == e.baseDyn {
		s.observe(n, IsKnown(v))
		return fReturn, v, nil
	}
	// Return under dynamic control: residualize if we are building a
	// residual function body; inside an unfolded callee, fall back to
	// the polyvariant variant mechanism instead.
	if e.unfolded || !e.fs.asFunction {
		return fNext, nil, errNeedVariant
	}
	s.observe(n, false)
	e.fs.hasResidualReturn = true
	if n.E == nil {
		e.fs.emit(&minic.Return{})
		return fStopped, nil, nil
	}
	le, err := lift(n.Pos, v)
	if err != nil {
		return fNext, nil, err
	}
	e.fs.emit(&minic.Return{E: le})
	return fStopped, nil, nil
}

func (s *specializer) breakCont(e *env, st minic.Stmt, isBreak bool) (flow, PVal, error) {
	s.observe(st, e.dynDepth == e.baseDyn)
	if e.dynDepth == e.baseDyn {
		if isBreak {
			return fBreak, nil, nil
		}
		return fCont, nil, nil
	}
	// Under dynamic control: the jump must target a residual loop.
	if e.fs.residualLoop == 0 {
		// Inside a statically unrolled loop but conditionally at run
		// time: the unroll is unsound; fall back to a residual loop.
		return fNext, nil, errDynamicLoopState
	}
	if isBreak {
		e.fs.emit(&minic.Break{})
	} else {
		e.fs.emit(&minic.Continue{})
	}
	return fStopped, nil, nil
}

// ---------------------------------------------------------------------------
// Conditionals

func (s *specializer) ifStmt(e *env, n *minic.If) (flow, PVal, error) {
	cond, err := s.expr(e, n.Cond)
	if err != nil {
		return fNext, nil, err
	}
	if IsKnown(cond) {
		// Static dispatch elimination (§3.1): only the taken branch is
		// specialized; the test disappears.
		s.observe(n, true)
		s.observe(n.Cond, true)
		if truthyPV(cond) {
			return s.stmt(e, n.Then)
		}
		if n.Else != nil {
			return s.stmt(e, n.Else)
		}
		return fNext, nil, nil
	}
	s.observe(n, false)
	s.observe(n.Cond, false)
	condExpr := cond.(Dyn).Expr

	// Materialize bindings the branches may assign, so both branches and
	// the join see one runtime variable.
	if err := s.materializeAssigned(e, []minic.Stmt{n.Then, n.Else}); err != nil {
		return fNext, nil, err
	}

	snap := e.fs.snapshot()
	thenEnv := e.fork()
	thenEnv.dynDepth++
	thenOut := e.fs.pushOut()
	thenFlow, _, err := s.stmt(thenEnv, n.Then)
	_ = thenOut
	thenStmts := e.fs.popOut()
	if err != nil {
		return fNext, nil, err
	}
	if thenFlow == fBreak || thenFlow == fCont || thenFlow == fReturn {
		return fNext, nil, specErr(n.Pos, "internal: static flow escaped dynamic branch")
	}
	thenSnap := e.fs.snapshot()
	e.fs.restore(snap[:len(snap)]) // rewind objects for the else branch
	// Objects created inside the then branch are dropped by restore.

	elseEnv := e.fork()
	elseEnv.dynDepth++
	e.fs.pushOut()
	var elseFlow flow = fNext
	if n.Else != nil {
		elseFlow, _, err = s.stmt(elseEnv, n.Else)
		if err != nil {
			return fNext, nil, err
		}
		if elseFlow == fBreak || elseFlow == fCont || elseFlow == fReturn {
			return fNext, nil, specErr(n.Pos, "internal: static flow escaped dynamic branch")
		}
	}
	elseStmts := e.fs.popOut()

	// Reconcile object state between branches: slots that diverged (or
	// changed in a surviving branch) generalize to their runtime values.
	s.joinObjects(e, snap, thenSnap, thenFlow == fStopped, elseFlow == fStopped, n.Pos)
	// Join scalar bindings flow-sensitively.
	s.joinBindings(e, thenEnv, elseEnv, thenFlow == fStopped, elseFlow == fStopped)

	out := &minic.If{Cond: condExpr, Then: &minic.Block{Stmts: thenStmts}}
	if len(elseStmts) > 0 {
		out.Else = &minic.Block{Stmts: elseStmts}
	}
	e.fs.emit(out)
	if thenFlow == fStopped && elseFlow == fStopped && n.Else != nil {
		return fStopped, nil, nil
	}
	return fNext, nil, nil
}

// materializeAssigned emits residual declarations for currently-known
// scalar bindings that the given statements may assign, so that branch
// and loop bodies can residualize writes to them.
func (s *specializer) materializeAssigned(e *env, stmts []minic.Stmt) error {
	names := map[string]bool{}
	for _, st := range stmts {
		collectAssigned(st, names)
	}
	for name := range names {
		b, ok := e.lookup(name)
		if !ok || b.obj != nil || b.declared {
			continue
		}
		le, err := lift(minic.Pos{}, b.val)
		if err != nil {
			return specErr(minic.Pos{}, "cannot materialize %s before dynamic control: %v", name, err)
		}
		e.fs.emit(&minic.VarDecl{Name: b.resName, Type: b.typ, Init: le})
		b.declared = true
		// The value stays known inside straight-line reasoning; writes
		// under dynamic control will residualize and re-generalize.
		s.propagateDeclared(e, name, b.resName)
	}
	return nil
}

// propagateDeclared marks every visible binding of name as declared (the
// binding structs are per-scope copies after forks).
func (s *specializer) propagateDeclared(e *env, name, resName string) {
	for _, sc := range e.scopes {
		if b, ok := sc.names[name]; ok && b.resName == resName {
			b.declared = true
		}
	}
}

// collectAssigned gathers local names syntactically assigned in st,
// including names whose address escapes into calls.
func collectAssigned(st minic.Stmt, out map[string]bool) {
	var walkExpr func(e minic.Expr)
	walkExpr = func(e minic.Expr) {
		switch n := e.(type) {
		case nil:
		case *minic.Assign:
			if v, ok := rootVar(n.LHS); ok {
				out[v] = true
			}
			walkExpr(n.LHS)
			walkExpr(n.RHS)
		case *minic.Unary:
			if n.Op == "&" {
				if v, ok := rootVar(n.X); ok {
					out[v] = true
				}
			}
			walkExpr(n.X)
		case *minic.Binary:
			walkExpr(n.X)
			walkExpr(n.Y)
		case *minic.Call:
			walkExpr(n.Fun)
			for _, a := range n.Args {
				walkExpr(a)
			}
		case *minic.Field:
			walkExpr(n.X)
		case *minic.Index:
			walkExpr(n.X)
			walkExpr(n.I)
		}
	}
	var walk func(s minic.Stmt)
	walk = func(s minic.Stmt) {
		switch n := s.(type) {
		case nil:
		case *minic.ExprStmt:
			walkExpr(n.E)
		case *minic.VarDecl:
			walkExpr(n.Init)
		case *minic.If:
			walkExpr(n.Cond)
			walk(n.Then)
			walk(n.Else)
		case *minic.While:
			walkExpr(n.Cond)
			walk(n.Body)
		case *minic.For:
			walk(n.Init)
			walkExpr(n.Cond)
			walk(n.Post)
			walk(n.Body)
		case *minic.Return:
			walkExpr(n.E)
		case *minic.Block:
			for _, inner := range n.Stmts {
				walk(inner)
			}
		}
	}
	walk(st)
}

// rootVar finds the base variable of an lvalue expression.
func rootVar(e minic.Expr) (string, bool) {
	switch n := e.(type) {
	case *minic.VarRef:
		return n.Name, true
	case *minic.Field:
		return rootVar(n.X)
	case *minic.Index:
		return rootVar(n.X)
	case *minic.Unary:
		if n.Op == "*" || n.Op == "&" {
			return rootVar(n.X)
		}
	}
	return "", false
}

// joinBindings merges scalar binding states after a dynamic conditional.
func (s *specializer) joinBindings(e *env, thenEnv, elseEnv *env, thenStopped, elseStopped bool) {
	for si, sc := range e.scopes {
		for name, b := range sc.names {
			tb := thenEnv.scopes[si].names[name]
			eb := elseEnv.scopes[si].names[name]
			if tb == nil || eb == nil {
				continue
			}
			var joined PVal
			switch {
			case thenStopped && elseStopped:
				joined = b.val
			case thenStopped:
				joined = eb.val
			case elseStopped:
				joined = tb.val
			case pvalEqual(tb.val, eb.val):
				joined = tb.val
			default:
				joined = Dyn{Expr: &minic.VarRef{Name: b.resName}}
			}
			b.val = joined
			b.declared = b.declared || tb.declared || eb.declared
		}
	}
}

// joinObjects generalizes object slots that changed during the branches.
func (s *specializer) joinObjects(e *env, pre, thenSnap [][]PVal, thenStopped, elseStopped bool, pos minic.Pos) {
	for i := range pre {
		if i >= len(e.fs.objs) {
			break
		}
		obj := e.fs.objs[i]
		for slot := range pre[i] {
			preV := pre[i][slot]
			var thenV PVal
			if i < len(thenSnap) && slot < len(thenSnap[i]) {
				thenV = thenSnap[i][slot]
			}
			elseV := obj.Slots[slot] // current state = after else branch
			tv, ev := thenV, elseV
			if thenStopped {
				tv = preV
			}
			if elseStopped {
				ev = preV
			}
			if pvalEqual(tv, ev) {
				obj.Slots[slot] = tv
				continue
			}
			// Divergent: the runtime copy is authoritative.
			obj.Slots[slot] = Dyn{Expr: nil}
		}
	}
}

func pvalEqual(a, b PVal) bool {
	switch av := a.(type) {
	case KInt:
		bv, ok := b.(KInt)
		return ok && av.V == bv.V
	case KFunc:
		bv, ok := b.(KFunc)
		return ok && av.Name == bv.Name
	case KNull:
		_, ok := b.(KNull)
		return ok
	case KPtr:
		bv, ok := b.(KPtr)
		return ok && av.Obj == bv.Obj && av.Off == bv.Off
	case Dyn:
		bv, ok := b.(Dyn)
		if !ok {
			return false
		}
		if av.Expr == nil || bv.Expr == nil {
			return av.Expr == nil && bv.Expr == nil
		}
		return minic.ExprString(av.Expr) == minic.ExprString(bv.Expr)
	case nil:
		return b == nil
	default:
		return false
	}
}

// ---------------------------------------------------------------------------
// Loops

const hardUnrollCap = 1 << 20

// loop specializes while/for loops: static conditions unroll (§5, loop
// unrolling); dynamic conditions (or unrolls past UnrollLimit) produce a
// residual loop over a generalized environment.
func (s *specializer) loop(e *env, _ minic.Stmt, cond minic.Expr, post minic.Stmt, body minic.Stmt, pos minic.Pos) (flow, PVal, error) {
	// Attempt static unrolling against a rollback point.
	snap := e.fs.snapshot()
	attempt := e.fork()
	out := e.fs.pushOut()
	fl, ret, iters, err := s.unrollLoop(attempt, cond, post, body)
	stmts := e.fs.popOut()
	_ = out
	switch {
	case err == nil && (s.ctx.UnrollLimit == 0 || iters <= s.ctx.UnrollLimit):
		// Success: splice the unrolled statements and adopt the attempt
		// environment's bindings.
		for _, st := range stmts {
			e.fs.emit(st)
		}
		adoptBindings(e, attempt)
		return fl, ret, nil
	case err != nil && !errors.Is(err, errDynamicLoopState):
		return fNext, nil, err
	}
	// Fall back: residual loop. Roll back object state and generalize.
	e.fs.restore(snap)
	return s.residualLoop(e, cond, post, body, pos)
}

func adoptBindings(dst, src *env) {
	for si := range dst.scopes {
		for name, b := range dst.scopes[si].names {
			if sb, ok := src.scopes[si].names[name]; ok {
				*b = *sb
			}
		}
	}
}

// unrollLoop iterates the loop with static conditions, emitting each
// iteration's residual code.
func (s *specializer) unrollLoop(e *env, cond minic.Expr, post, body minic.Stmt) (flow, PVal, int, error) {
	e.fs.staticLoops++
	defer func() { e.fs.staticLoops-- }()
	iters := 0
	for {
		cv, err := s.expr(e, cond)
		if err != nil {
			return fNext, nil, iters, err
		}
		if !IsKnown(cv) {
			return fNext, nil, iters, errDynamicLoopState
		}
		s.observe(cond, true)
		if !truthyPV(cv) {
			return fNext, nil, iters, nil
		}
		iters++
		if iters > hardUnrollCap {
			return fNext, nil, iters, specErr(cond.Position(), "loop unrolled past %d iterations; diverging?", hardUnrollCap)
		}
		if s.ctx.UnrollLimit > 0 && iters > s.ctx.UnrollLimit {
			return fNext, nil, iters, errDynamicLoopState
		}
		fl, ret, err := s.stmt(e, body)
		if err != nil {
			return fNext, nil, iters, err
		}
		switch fl {
		case fReturn:
			return fReturn, ret, iters, nil
		case fBreak:
			return fNext, nil, iters, nil
		case fStopped:
			// A residual terminator ended this iteration's code at run
			// time but specialization cannot know the loop exited.
			return fNext, nil, iters, errDynamicLoopState
		}
		if post != nil {
			fl, ret, err := s.stmt(e, post)
			if err != nil || fl == fReturn {
				return fl, ret, iters, err
			}
		}
	}
}

// residualLoop emits a runtime loop with a generalized environment.
func (s *specializer) residualLoop(e *env, cond minic.Expr, post, body minic.Stmt, pos minic.Pos) (flow, PVal, error) {
	stmts := []minic.Stmt{body}
	if post != nil {
		stmts = append(stmts, post)
	}
	if err := s.materializeAssigned(e, stmts); err != nil {
		return fNext, nil, err
	}
	// Generalize: every binding and object slot the body may write loses
	// its static value for the whole loop region.
	assigned := map[string]bool{}
	for _, st := range stmts {
		collectAssigned(st, assigned)
	}
	collectAssignedExpr(cond, assigned)
	for name := range assigned {
		if b, ok := e.lookup(name); ok {
			if b.obj != nil {
				for i := range b.obj.Slots {
					b.obj.Slots[i] = Dyn{Expr: nil}
				}
				continue
			}
			if !b.declared {
				// Assigned but never materialized (e.g. declared inside
				// the loop); leave it.
				continue
			}
			b.val = Dyn{Expr: &minic.VarRef{Name: b.resName}}
		}
	}

	e.dynDepth++
	e.fs.residualLoop++
	defer func() { e.dynDepth--; e.fs.residualLoop-- }()

	cv, err := s.expr(e, cond)
	if err != nil {
		return fNext, nil, err
	}
	s.observe(cond, false)
	condExpr, err := lift(pos, cv)
	if err != nil {
		return fNext, nil, err
	}

	loopEnv := e.fork()
	e.fs.pushOut()
	fl, _, err := s.stmt(loopEnv, body)
	if err == nil && fl != fNext && fl != fStopped {
		err = specErr(pos, "internal: static flow %d escaped residual loop", fl)
	}
	if err == nil && post != nil && fl != fStopped {
		_, _, err = s.stmt(loopEnv, post)
	}
	bodyStmts := e.fs.popOut()
	if err != nil {
		return fNext, nil, err
	}
	e.fs.emit(&minic.While{Cond: condExpr, Body: &minic.Block{Stmts: bodyStmts}})
	return fNext, nil, nil
}

func collectAssignedExpr(e minic.Expr, out map[string]bool) {
	if e == nil {
		return
	}
	collectAssigned(&minic.ExprStmt{E: e}, out)
}
