package tempo

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"specrpc/internal/minic"
	"specrpc/internal/vm"
)

// xdrSrc is a faithful transliteration of the paper's running example:
// the micro-layered encode path of Figures 1-4.
const xdrSrc = `
struct xdrops {
    funcptr x_putlong;
    funcptr x_getlong;
};
struct xdrbuf {
    int x_op;
    struct xdrops* x_ops;
    char* x_private;
    int x_handy;
};
struct pair {
    int int1;
    int int2;
};
extern void stlong(char* p, int v);
extern int ldlong(char* p);

int xdrmem_putlong(struct xdrbuf* xdrs, int* lp)
{
    if ((xdrs->x_handy -= 4) < 0) {
        return 0;
    }
    stlong(xdrs->x_private, *lp);
    xdrs->x_private += 4;
    return 1;
}

int xdrmem_getlong(struct xdrbuf* xdrs, int* lp)
{
    if ((xdrs->x_handy -= 4) < 0) {
        return 0;
    }
    *lp = ldlong(xdrs->x_private);
    xdrs->x_private += 4;
    return 1;
}

int xdr_long(struct xdrbuf* xdrs, int* lp)
{
    if (xdrs->x_op == 1) { return xdrs->x_ops->x_putlong(xdrs, lp); }
    if (xdrs->x_op == 2) { return xdrs->x_ops->x_getlong(xdrs, lp); }
    if (xdrs->x_op == 3) { return 1; }
    return 0;
}

int xdr_int(struct xdrbuf* xdrs, int* ip)
{
    return xdr_long(xdrs, ip);
}

int xdr_pair(struct xdrbuf* xdrs, struct pair* objp)
{
    if (!xdr_int(xdrs, &objp->int1)) {
        return 0;
    }
    if (!xdr_int(xdrs, &objp->int2)) {
        return 0;
    }
    return 1;
}

int xdr_intarray(struct xdrbuf* xdrs, int* arr, int n)
{
    int i;
    for (i = 0; i < n; i++) {
        if (!xdr_int(xdrs, &arr[i])) {
            return 0;
        }
    }
    return 1;
}
`

const (
	opEncode = 1
	opDecode = 2
)

func parseXDR(t *testing.T) *minic.Program {
	t.Helper()
	p, err := minic.Parse(xdrSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := minic.Check(p); err != nil {
		t.Fatal(err)
	}
	return p
}

// xdrObjSpec builds the paper's binding-time division of the XDR handle:
// x_op, x_ops, x_handy static; x_private dynamic.
func xdrObjSpec(op int64, handy int64) *ObjSpec {
	return &ObjSpec{
		StructName: "xdrbuf",
		Fields: map[string]any{
			"x_op":    op,
			"x_handy": handy,
			"x_ops": &ObjSpec{
				StructName: "xdrops",
				Fields: map[string]any{
					"x_putlong": "xdrmem_putlong",
					"x_getlong": "xdrmem_getlong",
				},
			},
		},
	}
}

// xdrObjSpecDynHandy is the division with x_handy left dynamic: overflow
// checks stay in the residual code (used when loops stay residual).
func xdrObjSpecDynHandy(op int64) *ObjSpec {
	return &ObjSpec{
		StructName: "xdrbuf",
		Fields: map[string]any{
			"x_op": op,
			"x_ops": &ObjSpec{
				StructName: "xdrops",
				Fields: map[string]any{
					"x_putlong": "xdrmem_putlong",
					"x_getlong": "xdrmem_getlong",
				},
			},
		},
	}
}

// funcsText prints only the residual functions (no struct/extern decls),
// so tests can assert on generated code without matching declarations.
func funcsText(p *minic.Program) string {
	var sb strings.Builder
	for _, entry := range p.Order {
		if name, ok := strings.CutPrefix(entry, "func "); ok {
			var pr minic.Printer
			pr.Func(p.Funcs[name])
			sb.WriteString(pr.Program(&minic.Program{
				Funcs: map[string]*minic.FuncDef{name: p.Funcs[name]},
				Order: []string{"func " + name},
			}))
		}
	}
	return sb.String()
}

func specialize(t *testing.T, prog *minic.Program, ctx *Context) *Result {
	t.Helper()
	res, err := Specialize(prog, ctx)
	if err != nil {
		t.Fatalf("specialize %s: %v", ctx.Entry, err)
	}
	return res
}

// newXDRMachineState allocates the runtime XDR handle and buffer.
func newXDRMachineState(t *testing.T, m *vm.Machine, op int64, bufSize int) (*vm.Region, *vm.Region) {
	t.Helper()
	xdrs, err := m.NewStruct("xdrbuf", "xdrs")
	if err != nil {
		t.Fatal(err)
	}
	ops, err := m.NewStruct("xdrops", "ops")
	if err != nil {
		t.Fatal(err)
	}
	opsLayout, _ := m.Layout("xdrops")
	ops.Words[opsLayout.FieldOffset("x_putlong")] = vm.FuncVal("xdrmem_putlong")
	ops.Words[opsLayout.FieldOffset("x_getlong")] = vm.FuncVal("xdrmem_getlong")

	buf := vm.NewBytes("buf", bufSize)
	layout, _ := m.Layout("xdrbuf")
	xdrs.Words[layout.FieldOffset("x_op")] = vm.IntVal(op)
	xdrs.Words[layout.FieldOffset("x_ops")] = vm.PtrVal(ops, 0)
	xdrs.Words[layout.FieldOffset("x_private")] = vm.PtrVal(buf, 0)
	xdrs.Words[layout.FieldOffset("x_handy")] = vm.IntVal(int64(bufSize))
	return xdrs, buf
}

// --- §3.1 + §3.2 + §3.3: the xdr_pair pipeline -----------------------------

func TestSpecializeXdrPair(t *testing.T) {
	prog := parseXDR(t)
	res := specialize(t, prog, &Context{
		Entry: "xdr_pair",
		Params: []ParamSpec{
			Object(xdrObjSpec(opEncode, 64)),
			Dynamic(),
		},
	})

	// §3.3: the return value is static TRUE and the function is void.
	if res.StaticReturn == nil || *res.StaticReturn != 1 {
		t.Fatalf("StaticReturn = %v, want 1", res.StaticReturn)
	}
	fn := res.Program.Funcs[res.Entry]
	if !fn.Ret.Equal(minic.TypeVoid) {
		t.Fatalf("residual return type = %s, want void", fn.Ret)
	}

	txt := funcsText(res.Program)
	// §3.1: no dispatch on x_op survives.
	if strings.Contains(txt, "x_op") {
		t.Fatalf("op dispatch not eliminated:\n%s", txt)
	}
	// §3.2: no overflow checks on x_handy survive.
	if strings.Contains(txt, "x_handy") {
		t.Fatalf("overflow checking not eliminated:\n%s", txt)
	}
	// Figure 5 shape: two stores, two pointer bumps, nothing else.
	if got := strings.Count(txt, "stlong"); got != 2 {
		t.Fatalf("stlong count = %d, want 2:\n%s", got, txt)
	}
	if got := strings.Count(txt, "x_private += 4"); got != 2 {
		t.Fatalf("pointer bumps = %d, want 2:\n%s", got, txt)
	}
	if strings.Contains(txt, "return") {
		t.Fatalf("residual still returns:\n%s", txt)
	}
}

func TestXdrPairResidualEquivalence(t *testing.T) {
	prog := parseXDR(t)
	res := specialize(t, prog, &Context{
		Entry:  "xdr_pair",
		Params: []ParamSpec{Object(xdrObjSpec(opEncode, 64)), Dynamic()},
	})

	genM := vm.MustNew(prog)
	specM := vm.MustNew(res.Program)

	f := func(a, b int32) bool {
		// Generic execution.
		gx, gbuf := newXDRMachineState(t, genM, opEncode, 64)
		gp, _ := genM.NewStruct("pair", "p")
		gp.Words[0] = vm.IntVal(int64(a))
		gp.Words[1] = vm.IntVal(int64(b))
		rv, err := genM.Call("xdr_pair", vm.PtrVal(gx, 0), vm.PtrVal(gp, 0))
		if err != nil || rv.I != 1 {
			return false
		}
		// Specialized execution.
		sx, sbuf := newXDRMachineState(t, specM, opEncode, 64)
		sp, _ := specM.NewStruct("pair", "p")
		sp.Words[0] = vm.IntVal(int64(a))
		sp.Words[1] = vm.IntVal(int64(b))
		if _, err := specM.Call(res.Entry, vm.PtrVal(sx, 0), vm.PtrVal(sp, 0)); err != nil {
			return false
		}
		return bytes.Equal(gbuf.Bytes, sbuf.Bytes)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- Loop unrolling (§5) ----------------------------------------------------

func TestSpecializeIntArrayUnrolls(t *testing.T) {
	prog := parseXDR(t)
	res := specialize(t, prog, &Context{
		Entry: "xdr_intarray",
		Params: []ParamSpec{
			Object(xdrObjSpec(opEncode, 1024)),
			Dynamic(),
			StaticInt(8),
		},
	})
	txt := funcsText(res.Program)
	if got := strings.Count(txt, "stlong(xdrs->x_private"); got != 8 {
		t.Fatalf("unrolled stores = %d, want 8:\n%s", got, txt)
	}
	if strings.Contains(txt, "while") || strings.Contains(txt, "for") {
		t.Fatalf("loop not fully unrolled:\n%s", txt)
	}
	// The loop index is folded into the element accesses.
	if !strings.Contains(txt, "arr[7]") {
		t.Fatalf("missing folded index arr[7]:\n%s", txt)
	}
	if res.StaticReturn == nil || *res.StaticReturn != 1 {
		t.Fatalf("StaticReturn = %v", res.StaticReturn)
	}
}

func TestIntArrayResidualEquivalence(t *testing.T) {
	prog := parseXDR(t)
	const n = 20
	res := specialize(t, prog, &Context{
		Entry:  "xdr_intarray",
		Params: []ParamSpec{Object(xdrObjSpec(opEncode, 4*n)), Dynamic(), StaticInt(n)},
	})
	genM := vm.MustNew(prog)
	specM := vm.MustNew(res.Program)

	f := func(vals [n]int32) bool {
		gx, gbuf := newXDRMachineState(t, genM, opEncode, 4*n)
		garr := vm.NewWords("arr", n)
		for i, v := range vals {
			garr.Words[i] = vm.IntVal(int64(v))
		}
		rv, err := genM.Call("xdr_intarray", vm.PtrVal(gx, 0), vm.PtrVal(garr, 0), vm.IntVal(n))
		if err != nil || rv.I != 1 {
			return false
		}
		sx, sbuf := newXDRMachineState(t, specM, opEncode, 4*n)
		sarr := vm.NewWords("arr", n)
		for i, v := range vals {
			sarr.Words[i] = vm.IntVal(int64(v))
		}
		if _, err := specM.Call(res.Entry, vm.PtrVal(sx, 0), vm.PtrVal(sarr, 0)); err != nil {
			return false
		}
		return bytes.Equal(gbuf.Bytes, sbuf.Bytes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestUnrollLimitRequiresDynamicHandy(t *testing.T) {
	// With x_handy declared static, a residual loop would mutate a
	// static field under dynamic control — the specializer must reject
	// the division rather than emit unsound code.
	prog := parseXDR(t)
	_, err := Specialize(prog, &Context{
		Entry:       "xdr_intarray",
		Params:      []ParamSpec{Object(xdrObjSpec(opEncode, 4096)), Dynamic(), StaticInt(100)},
		UnrollLimit: 10,
	})
	if err == nil {
		t.Fatal("unsound division accepted for residual loop")
	}
}

func TestUnrollLimitFallsBackToResidualLoop(t *testing.T) {
	prog := parseXDR(t)
	res := specialize(t, prog, &Context{
		Entry:       "xdr_intarray",
		Params:      []ParamSpec{Object(xdrObjSpecDynHandy(opEncode)), Dynamic(), StaticInt(100)},
		UnrollLimit: 10,
	})
	txt := funcsText(res.Program)
	if !strings.Contains(txt, "while") {
		t.Fatalf("expected a residual loop with UnrollLimit=10:\n%s", txt)
	}
	// With x_handy dynamic the overflow checks stay in the loop body —
	// the residual is essentially the generic code (Table 3's retained
	// generic functions). Verify behaviour by execution.
	specM := vm.MustNew(res.Program)
	genM := vm.MustNew(prog)
	gx, gbuf := newXDRMachineState(t, genM, opEncode, 4096)
	garr := vm.NewWords("arr", 100)
	sarr := vm.NewWords("arr", 100)
	for i := 0; i < 100; i++ {
		garr.Words[i] = vm.IntVal(int64(i * 3))
		sarr.Words[i] = vm.IntVal(int64(i * 3))
	}
	if _, err := genM.Call("xdr_intarray", vm.PtrVal(gx, 0), vm.PtrVal(garr, 0), vm.IntVal(100)); err != nil {
		t.Fatal(err)
	}
	sx, sbuf := newXDRMachineState(t, specM, opEncode, 4096)
	if _, err := specM.Call(res.Entry, vm.PtrVal(sx, 0), vm.PtrVal(sarr, 0)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gbuf.Bytes, sbuf.Bytes) {
		t.Fatal("bounded-unroll residual produced different bytes")
	}
}

// --- Decode path ------------------------------------------------------------

func TestSpecializeDecode(t *testing.T) {
	prog := parseXDR(t)
	res := specialize(t, prog, &Context{
		Entry:  "xdr_pair",
		Params: []ParamSpec{Object(xdrObjSpec(opDecode, 64)), Dynamic()},
	})
	txt := funcsText(res.Program)
	if !strings.Contains(txt, "ldlong") {
		t.Fatalf("decode residual lacks loads:\n%s", txt)
	}
	if strings.Contains(txt, "x_handy") || strings.Contains(txt, "x_op") {
		t.Fatalf("decode dispatch/overflow not eliminated:\n%s", txt)
	}
	// Round-trip: generic encode, specialized decode.
	genM := vm.MustNew(prog)
	specM := vm.MustNew(res.Program)
	gx, gbuf := newXDRMachineState(t, genM, opEncode, 64)
	gp, _ := genM.NewStruct("pair", "p")
	gp.Words[0] = vm.IntVal(111)
	gp.Words[1] = vm.IntVal(-222)
	if _, err := genM.Call("xdr_pair", vm.PtrVal(gx, 0), vm.PtrVal(gp, 0)); err != nil {
		t.Fatal(err)
	}
	sx, sbuf := newXDRMachineState(t, specM, opDecode, 64)
	copy(sbuf.Bytes, gbuf.Bytes)
	sp, _ := specM.NewStruct("pair", "p")
	if _, err := specM.Call(res.Entry, vm.PtrVal(sx, 0), vm.PtrVal(sp, 0)); err != nil {
		t.Fatal(err)
	}
	if sp.Words[0].I != 111 || sp.Words[1].I != -222 {
		t.Fatalf("decoded pair = %v, %v", sp.Words[0], sp.Words[1])
	}
}

// --- Free mode (§3.1 third arm) ----------------------------------------------

func TestSpecializeFreeMode(t *testing.T) {
	prog := parseXDR(t)
	res := specialize(t, prog, &Context{
		Entry:  "xdr_pair",
		Params: []ParamSpec{Object(xdrObjSpec(3, 64)), Dynamic()},
	})
	// Freeing ints is a no-op: the residual body must be empty.
	fn := res.Program.Funcs[res.Entry]
	if len(fn.Body.Stmts) != 0 {
		t.Fatalf("free-mode residual not empty:\n%s", minic.PrintProgram(res.Program))
	}
	if res.StaticReturn == nil || *res.StaticReturn != 1 {
		t.Fatalf("StaticReturn = %v", res.StaticReturn)
	}
}

// --- Overflow detection at specialization time --------------------------------

func TestSpecializeDetectsOverflow(t *testing.T) {
	prog := parseXDR(t)
	// Buffer of 4 bytes cannot hold two ints: the specializer folds the
	// overflow check to TRUE and the residual returns 0 — statically.
	res := specialize(t, prog, &Context{
		Entry:  "xdr_pair",
		Params: []ParamSpec{Object(xdrObjSpec(opEncode, 4)), Dynamic()},
	})
	if res.StaticReturn == nil || *res.StaticReturn != 0 {
		t.Fatalf("StaticReturn = %v, want 0 (static overflow)", res.StaticReturn)
	}
}

// --- Flow sensitivity and dynamic control -------------------------------------

func TestDynamicIfJoin(t *testing.T) {
	src := `
int f(int d) {
    int x = 1;
    if (d > 0) {
        x = 2;
    }
    return x + 10;
}
`
	prog := minic.MustParse(src)
	if err := minic.Check(prog); err != nil {
		t.Fatal(err)
	}
	res, err := Specialize(prog, &Context{Entry: "f", Params: []ParamSpec{Dynamic()}})
	if err != nil {
		t.Fatal(err)
	}
	m := vm.MustNew(res.Program)
	for _, tc := range []struct{ d, want int64 }{{5, 12}, {-5, 11}, {0, 11}} {
		v, err := m.Call(res.Entry, vm.IntVal(tc.d))
		if err != nil {
			t.Fatal(err)
		}
		if v.I != tc.want {
			t.Fatalf("f(%d) = %d, want %d\n%s", tc.d, v.I, tc.want, minic.PrintProgram(res.Program))
		}
	}
}

func TestFlowSensitivityStaticAfterDynamic(t *testing.T) {
	// x is dynamic, then reassigned a static value: later uses fold.
	src := `
extern int dynsrc(void);
int f(void) {
    int x = dynsrc();
    x = 5;
    return x * 2;
}
`
	prog := minic.MustParse(src)
	if err := minic.Check(prog); err != nil {
		t.Fatal(err)
	}
	res, err := Specialize(prog, &Context{Entry: "f", Params: nil})
	if err != nil {
		t.Fatal(err)
	}
	if res.StaticReturn == nil || *res.StaticReturn != 10 {
		t.Fatalf("StaticReturn = %v, want 10:\n%s", res.StaticReturn, minic.PrintProgram(res.Program))
	}
}

func TestDynamicWhileGeneralizes(t *testing.T) {
	src := `
extern int dynsrc(void);
int f(void) {
    int i = 0;
    int limit = dynsrc();
    while (i < limit) {
        i = i + 1;
    }
    return i;
}
`
	prog := minic.MustParse(src)
	if err := minic.Check(prog); err != nil {
		t.Fatal(err)
	}
	res, err := Specialize(prog, &Context{Entry: "f", Params: nil})
	if err != nil {
		t.Fatal(err)
	}
	m := vm.MustNew(res.Program)
	m.Extern("dynsrc", func(*vm.Machine, []vm.Value) vm.Value { return vm.IntVal(7) })
	v, err := m.Call(res.Entry)
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 7 {
		t.Fatalf("f() = %d, want 7:\n%s", v.I, minic.PrintProgram(res.Program))
	}
}

// --- The expected_inlen idiom (§6.2) -----------------------------------------

func TestExpectedInlenIdiom(t *testing.T) {
	// The paper's manual rewrite: guarding a dynamic length against its
	// expected static value makes the success path fully static.
	src := `
extern int recvlen(void);
extern void consume(int n);
int decode(int expected) {
    int inlen = recvlen();
    if (inlen == expected) {
        inlen = expected;
        consume(inlen * 2);
    } else {
        consume(inlen);
    }
    return 0;
}
`
	prog := minic.MustParse(src)
	if err := minic.Check(prog); err != nil {
		t.Fatal(err)
	}
	res, err := Specialize(prog, &Context{Entry: "decode", Params: []ParamSpec{StaticInt(66)}})
	if err != nil {
		t.Fatal(err)
	}
	txt := minic.PrintProgram(res.Program)
	// In the "then" branch inlen is static: consume(132) is folded.
	if !strings.Contains(txt, "consume(132)") {
		t.Fatalf("then-branch not specialized:\n%s", txt)
	}
	// The else branch keeps the general code.
	if !strings.Contains(txt, "consume(inlen)") {
		t.Fatalf("else-branch lost generality:\n%s", txt)
	}
}

// --- Variant generation (context sensitivity) ---------------------------------

func TestVariantForDynamicReturns(t *testing.T) {
	// checkval's return depends on dynamic data, so calls cannot unfold;
	// a residual variant function must be generated.
	src := `
extern int dynsrc(void);
int checkval(int v, int bias) {
    if (v < 0) { return 0 - bias; }
    return v + bias;
}
int f(void) {
    int d = dynsrc();
    return checkval(d, 100);
}
`
	prog := minic.MustParse(src)
	if err := minic.Check(prog); err != nil {
		t.Fatal(err)
	}
	res, err := Specialize(prog, &Context{Entry: "f", Params: nil})
	if err != nil {
		t.Fatal(err)
	}
	txt := minic.PrintProgram(res.Program)
	// The bias argument (static 100) is baked into the variant.
	if !strings.Contains(txt, "checkval_spec") {
		t.Fatalf("no variant generated:\n%s", txt)
	}
	if strings.Contains(txt, "bias") {
		t.Fatalf("static parameter not eliminated from variant:\n%s", txt)
	}
	m := vm.MustNew(res.Program)
	for _, tc := range []struct{ d, want int64 }{{5, 105}, {-5, -100}} {
		d := tc.d
		m.Extern("dynsrc", func(*vm.Machine, []vm.Value) vm.Value { return vm.IntVal(d) })
		v, err := m.Call(res.Entry)
		if err != nil {
			t.Fatal(err)
		}
		if v.I != tc.want {
			t.Fatalf("f() with d=%d = %d, want %d\n%s", tc.d, v.I, tc.want, txt)
		}
	}
}

// --- Observer: the binding-time division ---------------------------------------

func TestObserverReportsDivision(t *testing.T) {
	prog := parseXDR(t)
	static, dynamic := 0, 0
	_, err := Specialize(prog, &Context{
		Entry:  "xdr_pair",
		Params: []ParamSpec{Object(xdrObjSpec(opEncode, 64)), Dynamic()},
		Observer: func(node any, isStatic bool) {
			if isStatic {
				static++
			} else {
				dynamic++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if static == 0 || dynamic == 0 {
		t.Fatalf("observer saw static=%d dynamic=%d, want both > 0", static, dynamic)
	}
	if static <= dynamic {
		t.Fatalf("encode path should be mostly static: static=%d dynamic=%d", static, dynamic)
	}
}

// --- Error paths ---------------------------------------------------------------

func TestSpecializeErrors(t *testing.T) {
	prog := parseXDR(t)
	if _, err := Specialize(prog, &Context{Entry: "nosuch"}); err == nil {
		t.Fatal("unknown entry accepted")
	}
	if _, err := Specialize(prog, &Context{Entry: "xdr_pair", Params: []ParamSpec{Dynamic()}}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	// Unsound division: handy static but mutated under dynamic control.
	src := `
extern int dynsrc(void);
struct st { int counter; };
int f(struct st* s) {
    if (dynsrc() > 0) {
        s->counter -= 1;
    }
    return s->counter;
}
`
	p2 := minic.MustParse(src)
	if err := minic.Check(p2); err != nil {
		t.Fatal(err)
	}
	_, err := Specialize(p2, &Context{
		Entry: "f",
		Params: []ParamSpec{Object(&ObjSpec{StructName: "st",
			Fields: map[string]any{"counter": int64(5)}})},
	})
	if err == nil {
		t.Fatal("division violation accepted (static field written under dynamic control)")
	}
	if !strings.Contains(err.Error(), "dynamic") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	src := `
int f(int n) { return f(n) + 1; }
int g(void) { return f(3); }
`
	prog := minic.MustParse(src)
	if err := minic.Check(prog); err != nil {
		t.Fatal(err)
	}
	_, err := Specialize(prog, &Context{Entry: "g", Params: nil, MaxDepth: 16})
	if err == nil {
		t.Fatal("diverging recursion accepted")
	}
}

func TestStaticRecursionUnfolds(t *testing.T) {
	src := `
int fact(int n) {
    if (n <= 1) { return 1; }
    return n * fact(n - 1);
}
int g(void) { return fact(6); }
`
	prog := minic.MustParse(src)
	if err := minic.Check(prog); err != nil {
		t.Fatal(err)
	}
	res, err := Specialize(prog, &Context{Entry: "g", Params: nil})
	if err != nil {
		t.Fatal(err)
	}
	if res.StaticReturn == nil || *res.StaticReturn != 720 {
		t.Fatalf("StaticReturn = %v, want 720", res.StaticReturn)
	}
}

// --- Cleanup passes -------------------------------------------------------------

func TestCleanupRemovesDeadStores(t *testing.T) {
	prog := parseXDR(t)
	dirty := specialize(t, prog, &Context{
		Entry:          "xdr_pair",
		Params:         []ParamSpec{Object(xdrObjSpec(opEncode, 64)), Dynamic()},
		KeepDeadStores: true,
		Suffix:         "_dirty",
	})
	clean := specialize(t, prog, &Context{
		Entry:  "xdr_pair",
		Params: []ParamSpec{Object(xdrObjSpec(opEncode, 64)), Dynamic()},
	})
	dirtyLen := len(minic.PrintProgram(dirty.Program))
	cleanLen := len(minic.PrintProgram(clean.Program))
	if cleanLen >= dirtyLen {
		t.Fatalf("cleanup did not shrink the residual: %d >= %d", cleanLen, dirtyLen)
	}
}
