package tempo

import (
	"specrpc/internal/minic"
)

// This file holds the residual-code cleanup passes that stand in for the
// trivial simplifications a C compiler's front end performed on Tempo's
// output: peephole identities (*(&x) → x), constant folding, copy
// propagation of single-use temporaries, and dead-store elimination. They
// make the residual code match the paper's Figure 5 shape instead of
// carrying inlining residue.

// simplify applies local identities to a residual expression.
func simplify(e minic.Expr) minic.Expr {
	switch n := e.(type) {
	case *minic.Unary:
		switch n.Op {
		case "*":
			// *(&x) == x
			if u, ok := n.X.(*minic.Unary); ok && u.Op == "&" {
				return u.X
			}
		case "&":
			// &(*p) == p
			if u, ok := n.X.(*minic.Unary); ok && u.Op == "*" {
				return u.X
			}
		case "!":
			if lit, ok := n.X.(*minic.IntLit); ok {
				return &minic.IntLit{Val: b2i(lit.Val == 0)}
			}
		case "-":
			if lit, ok := n.X.(*minic.IntLit); ok {
				return &minic.IntLit{Val: int64(int32(-lit.Val))}
			}
		}
		return n
	case *minic.Binary:
		lx, lok := n.X.(*minic.IntLit)
		ly, yok := n.Y.(*minic.IntLit)
		if lok && yok {
			if v, err := evalBinary(n.Pos, n.Op, KInt{lx.Val}, KInt{ly.Val}); err == nil {
				if ki, ok := v.(KInt); ok {
					return &minic.IntLit{Val: ki.V}
				}
			}
		}
		// x + 0, x - 0 identities (common after offset folding).
		if yok && ly.Val == 0 && (n.Op == "+" || n.Op == "-") {
			return n.X
		}
		return n
	default:
		return e
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// cleanupProgram runs the cleanup passes over every residual function.
func cleanupProgram(p *minic.Program) {
	for _, f := range p.Funcs {
		for i := 0; i < 4; i++ { // passes enable each other; fixpoint-ish
			changed := copyPropagate(f)
			changed = deadStoreElim(f) || changed
			if !changed {
				break
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Use counting

type useCount struct {
	reads     map[string]int
	writes    map[string]int
	addressed map[string]bool
}

func countUses(f *minic.FuncDef) *useCount {
	u := &useCount{reads: map[string]int{}, writes: map[string]int{}, addressed: map[string]bool{}}
	var walkExpr func(e minic.Expr, asLHS bool)
	walkExpr = func(e minic.Expr, asLHS bool) {
		switch n := e.(type) {
		case nil:
		case *minic.VarRef:
			if asLHS {
				u.writes[n.Name]++
			} else {
				u.reads[n.Name]++
			}
		case *minic.Unary:
			if n.Op == "&" {
				if v, ok := n.X.(*minic.VarRef); ok {
					u.addressed[v.Name] = true
				}
			}
			walkExpr(n.X, false)
		case *minic.Binary:
			walkExpr(n.X, false)
			walkExpr(n.Y, false)
		case *minic.Assign:
			// The base variable of a compound LHS is also read.
			if n.Op != "=" {
				walkExpr(n.LHS, false)
			}
			if v, ok := n.LHS.(*minic.VarRef); ok {
				u.writes[v.Name]++
			} else {
				walkExpr(n.LHS, false)
			}
			walkExpr(n.RHS, false)
		case *minic.Call:
			walkExpr(n.Fun, false)
			for _, a := range n.Args {
				walkExpr(a, false)
			}
		case *minic.Field:
			walkExpr(n.X, false)
		case *minic.Index:
			walkExpr(n.X, false)
			walkExpr(n.I, false)
		}
	}
	var walk func(s minic.Stmt)
	walk = func(s minic.Stmt) {
		switch n := s.(type) {
		case nil:
		case *minic.ExprStmt:
			walkExpr(n.E, false)
		case *minic.VarDecl:
			u.writes[n.Name]++
			walkExpr(n.Init, false)
		case *minic.If:
			walkExpr(n.Cond, false)
			walk(n.Then)
			walk(n.Else)
		case *minic.While:
			walkExpr(n.Cond, false)
			walk(n.Body)
		case *minic.For:
			walk(n.Init)
			walkExpr(n.Cond, false)
			walk(n.Post)
			walk(n.Body)
		case *minic.Return:
			walkExpr(n.E, false)
		case *minic.Block:
			for _, inner := range n.Stmts {
				walk(inner)
			}
		}
	}
	walk(f.Body)
	return u
}

// ---------------------------------------------------------------------------
// Dead-store elimination

// deadStoreElim removes declarations and assignments to variables that
// are never read (and never address-taken), plus pure expression
// statements. Returns whether anything changed.
func deadStoreElim(f *minic.FuncDef) bool {
	changed := false
	for {
		u := countUses(f)
		dead := func(name string) bool {
			return u.reads[name] == 0 && !u.addressed[name]
		}
		pass := false
		var filter func(stmts []minic.Stmt) []minic.Stmt
		filter = func(stmts []minic.Stmt) []minic.Stmt {
			out := stmts[:0]
			for _, st := range stmts {
				switch n := st.(type) {
				case *minic.VarDecl:
					if dead(n.Name) && isPure(n.Init) {
						pass = true
						continue
					}
				case *minic.ExprStmt:
					if a, ok := n.E.(*minic.Assign); ok {
						if v, isVar := a.LHS.(*minic.VarRef); isVar && dead(v.Name) && isPure(a.RHS) {
							pass = true
							continue
						}
					}
					if isPure(n.E) {
						pass = true
						continue
					}
				case *minic.If:
					n.Then = filterStmt(n.Then, filter)
					n.Else = filterStmt(n.Else, filter)
					if emptyStmt(n.Then) && emptyStmt(n.Else) && isPure(n.Cond) {
						pass = true
						continue
					}
				case *minic.While:
					n.Body = filterStmt(n.Body, filter)
				case *minic.For:
					n.Body = filterStmt(n.Body, filter)
				case *minic.Block:
					n.Stmts = filter(n.Stmts)
				}
				out = append(out, st)
			}
			return out
		}
		f.Body.Stmts = filter(f.Body.Stmts)
		if !pass {
			break
		}
		changed = true
	}
	return changed
}

func filterStmt(s minic.Stmt, filter func([]minic.Stmt) []minic.Stmt) minic.Stmt {
	if b, ok := s.(*minic.Block); ok {
		b.Stmts = filter(b.Stmts)
		return b
	}
	return s
}

func emptyStmt(s minic.Stmt) bool {
	if s == nil {
		return true
	}
	b, ok := s.(*minic.Block)
	return ok && len(b.Stmts) == 0
}

// isPure reports whether evaluating e has no side effects.
func isPure(e minic.Expr) bool {
	switch n := e.(type) {
	case nil:
		return true
	case *minic.IntLit, *minic.StrLit, *minic.VarRef, *minic.FuncRef, *minic.SizeOf:
		return true
	case *minic.Unary:
		return isPure(n.X)
	case *minic.Binary:
		return isPure(n.X) && isPure(n.Y)
	case *minic.Field:
		return isPure(n.X)
	case *minic.Index:
		return isPure(n.X) && isPure(n.I)
	default: // Assign, Call
		return false
	}
}

// ---------------------------------------------------------------------------
// Copy propagation

// copyPropagate substitutes single-use, never-reassigned temporaries
// whose initializer is a pure address expression, turning
//
//	int l = arr[5]; stlong(p, l);
//
// into `stlong(p, arr[5])`, the paper's Figure 5 shape.
func copyPropagate(f *minic.FuncDef) bool {
	u := countUses(f)
	// Candidate temps: declared once, read once, never written again,
	// never addressed, with a substitutable initializer whose roots are
	// never written in this function.
	subst := map[string]minic.Expr{}
	var collect func(stmts []minic.Stmt)
	collect = func(stmts []minic.Stmt) {
		for _, st := range stmts {
			switch n := st.(type) {
			case *minic.VarDecl:
				if n.Init == nil || !isAddressExpr(n.Init) {
					continue
				}
				if u.reads[n.Name] != 1 || u.writes[n.Name] != 1 || u.addressed[n.Name] {
					continue
				}
				stable := true
				for _, root := range exprRoots(n.Init) {
					if u.writes[root] > 0 || u.addressed[root] {
						stable = false
						break
					}
				}
				if stable {
					subst[n.Name] = n.Init
				}
			case *minic.If:
				collectInner(n.Then, collect)
				collectInner(n.Else, collect)
			case *minic.While:
				collectInner(n.Body, collect)
			case *minic.For:
				collectInner(n.Body, collect)
			case *minic.Block:
				collect(n.Stmts)
			}
		}
	}
	collect(f.Body.Stmts)
	if len(subst) == 0 {
		return false
	}
	replaceVarRefs(f, subst)
	return true
}

func collectInner(s minic.Stmt, collect func([]minic.Stmt)) {
	if b, ok := s.(*minic.Block); ok {
		collect(b.Stmts)
	}
}

// isAddressExpr reports whether e is a pure chain of variable, field, and
// constant-index accesses (safe to move to its use site).
func isAddressExpr(e minic.Expr) bool {
	switch n := e.(type) {
	case *minic.IntLit, *minic.VarRef:
		return true
	case *minic.Field:
		return isAddressExpr(n.X)
	case *minic.Index:
		return isAddressExpr(n.X) && isAddressExpr(n.I)
	case *minic.Unary:
		return (n.Op == "*" || n.Op == "&" || n.Op == "-") && isAddressExpr(n.X)
	default:
		return false
	}
}

func exprRoots(e minic.Expr) []string {
	var roots []string
	var walk func(e minic.Expr)
	walk = func(e minic.Expr) {
		switch n := e.(type) {
		case nil:
		case *minic.VarRef:
			roots = append(roots, n.Name)
		case *minic.Field:
			walk(n.X)
		case *minic.Index:
			walk(n.X)
			walk(n.I)
		case *minic.Unary:
			walk(n.X)
		case *minic.Binary:
			walk(n.X)
			walk(n.Y)
		}
	}
	walk(e)
	return roots
}

// replaceVarRefs substitutes reads of the mapped variables and deletes
// their (now dead) declarations.
func replaceVarRefs(f *minic.FuncDef, subst map[string]minic.Expr) {
	var rewriteExpr func(e minic.Expr) minic.Expr
	rewriteExpr = func(e minic.Expr) minic.Expr {
		switch n := e.(type) {
		case nil:
			return nil
		case *minic.VarRef:
			if repl, ok := subst[n.Name]; ok {
				return minic.CloneExpr(repl)
			}
			return n
		case *minic.Unary:
			n.X = rewriteExpr(n.X)
			return simplify(n)
		case *minic.Binary:
			n.X = rewriteExpr(n.X)
			n.Y = rewriteExpr(n.Y)
			return simplify(n)
		case *minic.Assign:
			// Never rewrite a substituted temp's own assignment LHS; the
			// decl is removed below and candidates have exactly one write.
			n.LHS = rewriteExpr(n.LHS)
			n.RHS = rewriteExpr(n.RHS)
			return n
		case *minic.Call:
			n.Fun = rewriteExpr(n.Fun)
			for i := range n.Args {
				n.Args[i] = rewriteExpr(n.Args[i])
			}
			return n
		case *minic.Field:
			n.X = rewriteExpr(n.X)
			return n
		case *minic.Index:
			n.X = rewriteExpr(n.X)
			n.I = rewriteExpr(n.I)
			return n
		default:
			return e
		}
	}
	var rewrite func(stmts []minic.Stmt) []minic.Stmt
	rewrite = func(stmts []minic.Stmt) []minic.Stmt {
		out := stmts[:0]
		for _, st := range stmts {
			switch n := st.(type) {
			case *minic.VarDecl:
				if _, gone := subst[n.Name]; gone {
					continue
				}
				n.Init = rewriteExpr(n.Init)
			case *minic.ExprStmt:
				n.E = rewriteExpr(n.E)
			case *minic.If:
				n.Cond = rewriteExpr(n.Cond)
				n.Then = filterStmt(n.Then, rewrite)
				n.Else = filterStmt(n.Else, rewrite)
			case *minic.While:
				n.Cond = rewriteExpr(n.Cond)
				n.Body = filterStmt(n.Body, rewrite)
			case *minic.For:
				if n.Cond != nil {
					n.Cond = rewriteExpr(n.Cond)
				}
				n.Body = filterStmt(n.Body, rewrite)
			case *minic.Return:
				n.E = rewriteExpr(n.E)
			case *minic.Block:
				n.Stmts = rewrite(n.Stmts)
			}
			out = append(out, st)
		}
		return out
	}
	f.Body.Stmts = rewrite(f.Body.Stmts)
}
