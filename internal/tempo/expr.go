package tempo

import (
	"errors"
	"fmt"

	"specrpc/internal/minic"
)

// ---------------------------------------------------------------------------
// Expressions

func (s *specializer) expr(e *env, x minic.Expr) (PVal, error) {
	switch n := x.(type) {
	case *minic.IntLit:
		s.observe(n, true)
		return KInt{n.Val}, nil
	case *minic.StrLit:
		s.observe(n, false)
		return Dyn{Expr: minic.CloneExpr(n)}, nil
	case *minic.FuncRef:
		s.observe(n, true)
		return KFunc{n.Name}, nil
	case *minic.VarRef:
		b, ok := e.lookup(n.Name)
		if !ok {
			return nil, specErr(n.Pos, "unbound variable %s", n.Name)
		}
		if b.obj != nil {
			switch b.typ.(type) {
			case *minic.Array, *minic.Struct:
				s.observe(n, true)
				return KPtr{Obj: b.obj}, nil
			default:
				// Address-taken scalar: read through its object slot.
				return s.locRead(e, sloc{obj: b.obj, slot: 0,
					dynExpr: &minic.VarRef{Name: b.resName}}, n.Position())
			}
		}
		s.observe(n, IsKnown(b.val))
		return b.val, nil
	case *minic.SizeOf:
		return KInt{int64(minic.SizeOfType(n.T))}, nil
	case *minic.Unary:
		return s.unary(e, n)
	case *minic.Binary:
		return s.binary(e, n)
	case *minic.Assign:
		return s.assign(e, n)
	case *minic.Call:
		return s.callExpr(e, n)
	case *minic.Field, *minic.Index:
		l, err := s.loc(e, x)
		if err != nil {
			return nil, err
		}
		// Aggregate-typed results decay to their address.
		switch minic.TypeOf(x).(type) {
		case *minic.Array, *minic.Struct:
			if l.obj != nil {
				s.observe(x, true)
				return KPtr{Obj: l.obj, Off: l.slot}, nil
			}
			s.observe(x, false)
			return Dyn{Expr: l.dynExpr}, nil
		}
		v, err := s.locRead(e, l, x.Position())
		if err != nil {
			return nil, err
		}
		s.observe(x, IsKnown(v))
		return v, nil
	default:
		return nil, specErr(x.Position(), "unsupported expression %T", x)
	}
}

func (s *specializer) unary(e *env, n *minic.Unary) (PVal, error) {
	switch n.Op {
	case "!", "-", "~":
		v, err := s.expr(e, n.X)
		if err != nil {
			return nil, err
		}
		if IsKnown(v) {
			s.observe(n, true)
			switch n.Op {
			case "!":
				return boolPV(!truthyPV(v)), nil
			case "-":
				ki, ok := v.(KInt)
				if !ok {
					return nil, specErr(n.Pos, "unary - on non-integer")
				}
				return KInt{int64(int32(-ki.V))}, nil
			default:
				ki, ok := v.(KInt)
				if !ok {
					return nil, specErr(n.Pos, "unary ~ on non-integer")
				}
				return KInt{int64(int32(^ki.V))}, nil
			}
		}
		s.observe(n, false)
		return Dyn{Expr: &minic.Unary{Op: n.Op, X: v.(Dyn).Expr}}, nil
	case "*":
		l, err := s.loc(e, n)
		if err != nil {
			return nil, err
		}
		v, err := s.locRead(e, l, n.Pos)
		if err != nil {
			return nil, err
		}
		s.observe(n, IsKnown(v))
		return v, nil
	case "&":
		l, err := s.loc(e, n.X)
		if err != nil {
			return nil, err
		}
		if l.obj != nil {
			s.observe(n, true)
			return KPtr{Obj: l.obj, Off: l.slot}, nil
		}
		if l.dynExpr != nil {
			s.observe(n, false)
			return Dyn{Expr: simplify(&minic.Unary{Op: "&", X: l.dynExpr})}, nil
		}
		return nil, specErr(n.Pos, "cannot take address of register-allocated value")
	default:
		return nil, specErr(n.Pos, "unsupported unary %s", n.Op)
	}
}

func (s *specializer) binary(e *env, n *minic.Binary) (PVal, error) {
	if n.Op == "&&" || n.Op == "||" {
		return s.shortCircuit(e, n)
	}
	x, err := s.expr(e, n.X)
	if err != nil {
		return nil, err
	}
	y, err := s.expr(e, n.Y)
	if err != nil {
		return nil, err
	}
	// Static pointer arithmetic stays at specialization time.
	if kp, ok := x.(KPtr); ok && (n.Op == "+" || n.Op == "-") {
		ki, known := y.(KInt)
		if known {
			step, serr := ptrStepFor(minic.TypeOf(n.X), n.Pos)
			if serr != nil {
				return nil, serr
			}
			s.observe(n, true)
			sign := 1
			if n.Op == "-" {
				sign = -1
			}
			return KPtr{Obj: kp.Obj, Off: kp.Off + sign*step*int(ki.V)}, nil
		}
	}
	if IsKnown(x) && IsKnown(y) {
		v, err := evalBinary(n.Pos, n.Op, x, y)
		if err != nil {
			return nil, err
		}
		s.observe(n, true)
		return v, nil
	}
	s.observe(n, false)
	lx, err := lift(n.Pos, x)
	if err != nil {
		return nil, err
	}
	ly, err := lift(n.Pos, y)
	if err != nil {
		return nil, err
	}
	return Dyn{Expr: simplify(&minic.Binary{Op: n.Op, X: lx, Y: ly})}, nil
}

// shortCircuit specializes && and ||, requiring the right operand to be
// effect-free when the left is dynamic (C's conditional evaluation).
func (s *specializer) shortCircuit(e *env, n *minic.Binary) (PVal, error) {
	x, err := s.expr(e, n.X)
	if err != nil {
		return nil, err
	}
	if IsKnown(x) {
		s.observe(n.X, true)
		tx := truthyPV(x)
		if (n.Op == "&&" && !tx) || (n.Op == "||" && tx) {
			return boolPV(tx), nil
		}
		y, err := s.expr(e, n.Y)
		if err != nil {
			return nil, err
		}
		if IsKnown(y) {
			return boolPV(truthyPV(y)), nil
		}
		return Dyn{Expr: simplify(&minic.Binary{Op: "!=", X: y.(Dyn).Expr, Y: &minic.IntLit{}})}, nil
	}
	// Dynamic left: the right side must specialize without emitting code.
	e.fs.pushOut()
	y, err := s.expr(e, n.Y)
	side := e.fs.popOut()
	if err != nil {
		return nil, err
	}
	if len(side) > 0 {
		return nil, specErr(n.Pos, "side effects on the right of %s with a dynamic left operand", n.Op)
	}
	s.observe(n, false)
	ly, err := lift(n.Pos, y)
	if err != nil {
		return nil, err
	}
	return Dyn{Expr: &minic.Binary{Op: n.Op, X: x.(Dyn).Expr, Y: ly}}, nil
}

func ptrStepFor(t minic.Type, pos minic.Pos) (int, error) {
	var elem minic.Type
	switch n := t.(type) {
	case *minic.Ptr:
		elem = n.Elem
	case *minic.Array:
		elem = n.Elem
	default:
		return 0, specErr(pos, "pointer arithmetic on non-pointer %v", t)
	}
	n, err := slotCount(elem)
	if err != nil {
		return 0, specErr(pos, "pointer arithmetic: %v", err)
	}
	return n, nil
}

// ---------------------------------------------------------------------------
// Locations

// sloc is a specialization-time storage location.
type sloc struct {
	b       *binding   // plain scalar binding, or
	obj     *SObj      // object slot, with
	slot    int        //   its index, or
	dynExpr minic.Expr // a runtime lvalue (also the runtime path for obj slots)
}

func (s *specializer) loc(e *env, x minic.Expr) (sloc, error) {
	switch n := x.(type) {
	case *minic.VarRef:
		b, ok := e.lookup(n.Name)
		if !ok {
			return sloc{}, specErr(n.Pos, "unbound variable %s", n.Name)
		}
		if b.obj != nil {
			return sloc{obj: b.obj, slot: 0, dynExpr: &minic.VarRef{Name: b.resName}}, nil
		}
		return sloc{b: b}, nil
	case *minic.Unary:
		if n.Op != "*" {
			return sloc{}, specErr(n.Pos, "not an lvalue: unary %s", n.Op)
		}
		v, err := s.expr(e, n.X)
		if err != nil {
			return sloc{}, err
		}
		switch p := v.(type) {
		case KPtr:
			var path minic.Expr
			if le, lerr := lift(n.Pos, v); lerr == nil {
				path = simplify(&minic.Unary{Op: "*", X: le})
			} else if re := rebuildSlotExpr(p.Obj, p.Off); re != nil {
				path = re
			}
			return sloc{obj: p.Obj, slot: p.Off, dynExpr: path}, nil
		case KNull:
			return sloc{}, specErr(n.Pos, "static null pointer dereference")
		case Dyn:
			return sloc{dynExpr: simplify(&minic.Unary{Op: "*", X: p.Expr})}, nil
		default:
			return sloc{}, specErr(n.Pos, "dereference of %s", v)
		}
	case *minic.Field:
		return s.fieldLoc(e, n)
	case *minic.Index:
		xv, err := s.expr(e, n.X)
		if err != nil {
			return sloc{}, err
		}
		iv, err := s.expr(e, n.I)
		if err != nil {
			return sloc{}, err
		}
		step, serr := ptrStepFor(minic.TypeOf(n.X), n.Pos)
		if serr != nil {
			return sloc{}, serr
		}
		switch p := xv.(type) {
		case KPtr:
			if ki, known := iv.(KInt); known {
				slot := p.Off + step*int(ki.V)
				var path minic.Expr
				if p.Obj.Runtime != nil {
					path = rebuildSlotExpr(p.Obj, slot)
				}
				return sloc{obj: p.Obj, slot: slot, dynExpr: path}, nil
			}
			base, lerr := lift(n.Pos, xv)
			if lerr != nil {
				return sloc{}, specErr(n.Pos, "dynamic index into specialization-time object %s", p.Obj.Name)
			}
			ie, _ := lift(n.Pos, iv)
			return sloc{dynExpr: &minic.Index{X: base, I: ie}}, nil
		case Dyn:
			ie, lerr := lift(n.Pos, iv)
			if lerr != nil {
				return sloc{}, lerr
			}
			return sloc{dynExpr: &minic.Index{X: p.Expr, I: ie}}, nil
		default:
			return sloc{}, specErr(n.Pos, "indexing %s", xv)
		}
	default:
		return sloc{}, specErr(x.Position(), "not an lvalue: %T", x)
	}
}

func (s *specializer) fieldLoc(e *env, n *minic.Field) (sloc, error) {
	if n.Struct == nil {
		return sloc{}, specErr(n.Pos, "unresolved field %s (run minic.Check)", n.Name)
	}
	offsets, _, err := structLayout(n.Struct)
	if err != nil {
		return sloc{}, specErr(n.Pos, "%v", err)
	}
	fi := n.Struct.FieldIndex(n.Name)
	off := offsets[fi]

	if n.Arrow {
		v, err := s.expr(e, n.X)
		if err != nil {
			return sloc{}, err
		}
		switch p := v.(type) {
		case KPtr:
			var path minic.Expr
			if le, lerr := lift(n.Pos, v); lerr == nil {
				path = &minic.Field{X: le, Name: n.Name, Arrow: true, Struct: n.Struct}
			}
			return sloc{obj: p.Obj, slot: p.Off + off, dynExpr: path}, nil
		case KNull:
			return sloc{}, specErr(n.Pos, "static null -> %s", n.Name)
		case Dyn:
			return sloc{dynExpr: &minic.Field{X: p.Expr, Name: n.Name, Arrow: true, Struct: n.Struct}}, nil
		default:
			return sloc{}, specErr(n.Pos, "-> on %s", v)
		}
	}
	base, err := s.loc(e, n.X)
	if err != nil {
		return sloc{}, err
	}
	if base.obj != nil {
		var path minic.Expr
		if base.dynExpr != nil {
			path = &minic.Field{X: base.dynExpr, Name: n.Name, Struct: n.Struct}
		}
		return sloc{obj: base.obj, slot: base.slot + off, dynExpr: path}, nil
	}
	if base.dynExpr != nil {
		return sloc{dynExpr: &minic.Field{X: base.dynExpr, Name: n.Name, Struct: n.Struct}}, nil
	}
	return sloc{}, specErr(n.Pos, "field access on register value")
}

// rebuildSlotExpr reconstructs a runtime lvalue expression for a slot of
// a runtime-backed object (scalar, array element, or struct field chain).
func rebuildSlotExpr(obj *SObj, slot int) minic.Expr {
	if obj.Runtime == nil {
		return nil
	}
	base := minic.CloneExpr(obj.Runtime)
	if obj.Struct != nil {
		return fieldPath(obj.Struct, base, slot, true)
	}
	if obj.Struct == nil && len(obj.Slots) == 1 && slot == 0 {
		// Address-taken scalar: *(&x) simplifies back to x.
		return simplify(&minic.Unary{Op: "*", X: base})
	}
	return &minic.Index{X: base, I: &minic.IntLit{Val: int64(slot)}}
}

// fieldPath renders the field chain reaching `slot` within st.
func fieldPath(st *minic.Struct, base minic.Expr, slot int, arrow bool) minic.Expr {
	offsets, _, err := structLayout(st)
	if err != nil {
		return nil
	}
	for i := len(st.Fields) - 1; i >= 0; i-- {
		if offsets[i] > slot {
			continue
		}
		f := st.Fields[i]
		fe := &minic.Field{X: base, Name: f.Name, Arrow: arrow, Struct: st}
		rest := slot - offsets[i]
		switch ft := f.Type.(type) {
		case *minic.Struct:
			return fieldPath(ft, fe, rest, false)
		case *minic.Array:
			step, serr := slotCount(ft.Elem)
			if serr != nil || step == 0 {
				return nil
			}
			return &minic.Index{X: fe, I: &minic.IntLit{Val: int64(rest / step)}}
		default:
			if rest != 0 {
				return nil
			}
			return fe
		}
	}
	return nil
}

// locRead reads a location as a partial value.
func (s *specializer) locRead(e *env, l sloc, pos minic.Pos) (PVal, error) {
	if l.b != nil {
		s.observe(l.b, IsKnown(l.b.val))
		return l.b.val, nil
	}
	if l.obj != nil {
		if l.slot < 0 || l.slot >= len(l.obj.Slots) {
			return nil, specErr(pos, "slot %d out of range in %s", l.slot, l.obj.Name)
		}
		if l.obj.Div != nil && l.obj.Div[l.slot] {
			v := l.obj.Slots[l.slot]
			if !IsKnown(v) {
				return nil, specErr(pos, "static field of %s read after divergent dynamic branches; declare it dynamic", l.obj.Name)
			}
			return v, nil
		}
		if l.obj.Div != nil {
			// Declared-dynamic field: always a runtime access.
			path := l.dynExpr
			if path == nil {
				path = rebuildSlotExpr(l.obj, l.slot)
			}
			if path == nil {
				return nil, specErr(pos, "dynamic field of %s has no runtime path", l.obj.Name)
			}
			return Dyn{Expr: path}, nil
		}
		// Local object: fold when the slot is known.
		v := l.obj.Slots[l.slot]
		if IsKnown(v) {
			return v, nil
		}
		path := l.dynExpr
		if path == nil {
			path = rebuildSlotExpr(l.obj, l.slot)
		}
		if path == nil {
			return nil, specErr(pos, "value in %s slot %d is unknown and has no runtime location", l.obj.Name, l.slot)
		}
		return Dyn{Expr: path}, nil
	}
	if l.dynExpr != nil {
		return Dyn{Expr: minic.CloneExpr(l.dynExpr)}, nil
	}
	return nil, specErr(pos, "unreadable location")
}

// locWrite stores a partial value into a location, emitting residual code
// as the binding-time division requires.
func (s *specializer) locWrite(e *env, l sloc, v PVal, pos minic.Pos) error {
	switch {
	case l.b != nil:
		b := l.b
		if IsKnown(v) {
			b.val = v
			if b.declared {
				// Keep the runtime copy fresh; dead stores are cleaned
				// by the post pass when never observed.
				le, err := lift(pos, v)
				if err != nil {
					return err
				}
				e.fs.emit(&minic.ExprStmt{E: &minic.Assign{Op: "=",
					LHS: &minic.VarRef{Name: b.resName}, RHS: le}})
			}
			return nil
		}
		d := v.(Dyn)
		if !b.declared {
			// First dynamic write doubles as the residual declaration
			// (legal: bindings assigned across dynamic-control boundaries
			// were materialized by materializeAssigned beforehand).
			e.fs.emit(&minic.VarDecl{Name: b.resName, Type: b.typ, Init: d.Expr})
			b.declared = true
		} else {
			e.fs.emit(&minic.ExprStmt{E: &minic.Assign{Op: "=",
				LHS: &minic.VarRef{Name: b.resName}, RHS: d.Expr}})
		}
		b.val = Dyn{Expr: &minic.VarRef{Name: b.resName}}
		return nil

	case l.obj != nil:
		obj := l.obj
		if l.slot < 0 || l.slot >= len(obj.Slots) {
			return specErr(pos, "slot %d out of range in %s", l.slot, obj.Name)
		}
		if obj.Div != nil && obj.Div[l.slot] {
			// Static field: the write happens at specialization time and
			// vanishes from the residual program (§3.2's x_handy).
			//
			// Under a dynamic *branch* this is allowed: the branch runs
			// at most once, and if the branches leave the field with
			// divergent values the join poisons it (reads after the join
			// fail). Inside a *residual loop* the body runs an unknown
			// number of times, so a static mutation is always unsound.
			if e.fs.residualLoop > 0 || e.taint {
				return specErr(pos, "field of %s declared static but written inside a residual loop; declare it dynamic", obj.Name)
			}
			if !IsKnown(v) {
				return specErr(pos, "field of %s declared static but assigned a dynamic value; declare it dynamic", obj.Name)
			}
			obj.Slots[l.slot] = v
			return nil
		}
		// Dynamic field or local object slot: residualize the store.
		path := l.dynExpr
		if path == nil {
			path = rebuildSlotExpr(obj, l.slot)
		}
		le, lerr := lift(pos, v)
		if lerr == nil && path != nil {
			e.fs.emit(&minic.ExprStmt{E: &minic.Assign{Op: "=", LHS: path, RHS: le}})
		} else if obj.Div != nil {
			// Declared-dynamic fields must be runtime-writable.
			return specErr(pos, "cannot residualize write to dynamic field of %s: %v", obj.Name, lerr)
		}
		if obj.Div == nil {
			if IsKnown(v) {
				obj.Slots[l.slot] = v
			} else {
				obj.Slots[l.slot] = Dyn{Expr: nil}
			}
		}
		return nil

	case l.dynExpr != nil:
		le, err := lift(pos, v)
		if err != nil {
			return err
		}
		e.fs.emit(&minic.ExprStmt{E: &minic.Assign{Op: "=", LHS: minic.CloneExpr(l.dynExpr), RHS: le}})
		return nil
	default:
		return specErr(pos, "unwritable location")
	}
}

func (s *specializer) assign(e *env, n *minic.Assign) (PVal, error) {
	l, err := s.loc(e, n.LHS)
	if err != nil {
		return nil, err
	}
	if n.Op == "=" {
		v, err := s.expr(e, n.RHS)
		if err != nil {
			return nil, err
		}
		s.observe(n, IsKnown(v))
		if err := s.locWrite(e, l, v, n.Pos); err != nil {
			return nil, err
		}
		if IsKnown(v) {
			return v, nil
		}
		// The assignment's value is the stored location, not the RHS
		// expression: re-reading prevents duplicated side effects when
		// the value is consumed (the if ((x = recv()) > 0) idiom).
		return s.locRead(e, l, n.Pos)
	}
	// Compound assignment: read, combine, write.
	binOp := n.Op[:len(n.Op)-1]
	cur, err := s.locRead(e, l, n.Pos)
	if err != nil {
		return nil, err
	}
	rhs, err := s.expr(e, n.RHS)
	if err != nil {
		return nil, err
	}
	// Static pointer stepping (x_private += 4 over a tracked object).
	if kp, ok := cur.(KPtr); ok {
		ki, known := rhs.(KInt)
		if !known {
			return nil, specErr(n.Pos, "dynamic pointer step on static pointer")
		}
		step, serr := ptrStepFor(minic.TypeOf(n.LHS), n.Pos)
		if serr != nil {
			return nil, serr
		}
		sign := 1
		if binOp == "-" {
			sign = -1
		}
		v := KPtr{Obj: kp.Obj, Off: kp.Off + sign*step*int(ki.V)}
		s.observe(n, true)
		return v, s.locWrite(e, l, v, n.Pos)
	}
	if IsKnown(cur) && IsKnown(rhs) {
		v, err := evalBinary(n.Pos, binOp, cur, rhs)
		if err != nil {
			return nil, err
		}
		s.observe(n, true)
		return v, s.locWrite(e, l, v, n.Pos)
	}
	// Residual compound assignment against the runtime location.
	s.observe(n, false)
	path := l.dynExpr
	if l.b != nil {
		if !l.b.declared {
			// Materialize the current known value, then mutate at runtime.
			le, lerr := lift(n.Pos, cur)
			if lerr != nil {
				return nil, lerr
			}
			e.fs.emit(&minic.VarDecl{Name: l.b.resName, Type: l.b.typ, Init: le})
			l.b.declared = true
		}
		path = &minic.VarRef{Name: l.b.resName}
		l.b.val = Dyn{Expr: &minic.VarRef{Name: l.b.resName}}
	}
	if path == nil && l.obj != nil {
		path = rebuildSlotExpr(l.obj, l.slot)
	}
	if path == nil {
		return nil, specErr(n.Pos, "compound assignment to unlocatable value")
	}
	if l.obj != nil && l.obj.Div == nil {
		l.obj.Slots[l.slot] = Dyn{Expr: nil}
	}
	le, err := lift(n.Pos, rhs)
	if err != nil {
		return nil, err
	}
	e.fs.emit(&minic.ExprStmt{E: &minic.Assign{Op: n.Op, LHS: minic.CloneExpr(path), RHS: le}})
	return Dyn{Expr: minic.CloneExpr(path)}, nil
}

// ---------------------------------------------------------------------------
// Calls: unfolding and polyvariant residual functions

func (s *specializer) callExpr(e *env, n *minic.Call) (PVal, error) {
	// Resolve the callee.
	var name string
	switch f := n.Fun.(type) {
	case *minic.FuncRef:
		name = f.Name
		s.observe(f, true)
	default:
		fv, err := s.expr(e, n.Fun)
		if err != nil {
			return nil, err
		}
		kf, ok := fv.(KFunc)
		if !ok {
			return nil, specErr(n.Pos, "indirect call through dynamic function value is not supported")
		}
		// Indirect-call elimination: the function-pointer dispatch of the
		// XDR ops table folds to a direct call.
		s.observe(n.Fun, true)
		name = kf.Name
	}

	args := make([]PVal, len(n.Args))
	for i, a := range n.Args {
		v, err := s.expr(e, a)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}

	if _, isExtern := s.prog.Externs[name]; isExtern {
		// Externs are opaque: always residualized (the dynamic network
		// and buffer primitives).
		s.observe(n, false)
		lifted := make([]minic.Expr, len(args))
		for i, a := range args {
			le, err := lift(n.Args[i].Position(), a)
			if err != nil {
				return nil, err
			}
			lifted[i] = le
		}
		return Dyn{Expr: &minic.Call{Fun: &minic.VarRef{Name: name}, Args: lifted}}, nil
	}

	def, ok := s.prog.Funcs[name]
	if !ok {
		return nil, specErr(n.Pos, "call of unknown function %s", name)
	}
	if len(args) != len(def.Params) {
		return nil, specErr(n.Pos, "%s expects %d args, got %d", name, len(def.Params), len(args))
	}
	if s.depth >= s.ctx.MaxDepth {
		return nil, specErr(n.Pos, "call unfolding exceeded depth %d (recursive specialization?)", s.ctx.MaxDepth)
	}

	// First try unfolding (inlining) — the fate of xdr_long and
	// xdrmem_putlong in the paper. If the callee needs residual early
	// returns, fall back to a polyvariant residual function.
	s.depth++
	v, err := s.unfold(e, def, args, n)
	s.depth--
	if err == nil {
		return v, nil
	}
	if !errors.Is(err, errNeedVariant) {
		return nil, err
	}
	s.depth++
	v, err = s.makeVariant(e, def, args, n)
	s.depth--
	return v, err
}

// unfold inlines a call: the callee's body is specialized in place.
func (s *specializer) unfold(e *env, def *minic.FuncDef, args []PVal, call *minic.Call) (PVal, error) {
	snap := e.fs.snapshot()
	e.fs.pushOut()
	callee := &env{fs: e.fs, def: def, dynDepth: e.dynDepth, baseDyn: e.dynDepth,
		unfolded: true, taint: e.taint}
	callee.push()
	if err := s.bindParams(callee, def, args, call, false); err != nil {
		e.fs.popOut()
		e.fs.restore(snap)
		return nil, err
	}
	fl, ret, err := s.stmt(callee, def.Body)
	stmts := e.fs.popOut()
	if err != nil {
		e.fs.restore(snap)
		return nil, err
	}
	if fl == fStopped || fl == fBreak || fl == fCont {
		e.fs.restore(snap)
		return nil, errNeedVariant
	}
	// The callee's locals are out of scope: stop tracking their objects
	// (their mutations stand, but future snapshots need not copy them —
	// this keeps deep unfolding linear instead of quadratic).
	e.fs.objs = e.fs.objs[:len(snap)]
	for _, st := range stmts {
		e.fs.emit(st)
	}
	s.observe(call, fl == fReturn && ret != nil && IsKnown(ret))
	if fl != fReturn || ret == nil {
		return KInt{0}, nil // void fallthrough
	}
	if d, ok := ret.(Dyn); ok && !isAtomic(d.Expr) {
		// Bind a non-trivial dynamic result once, so the caller cannot
		// duplicate its evaluation.
		tmp := e.fs.fresh("t")
		e.fs.emit(&minic.VarDecl{Name: tmp, Type: def.Ret, Init: d.Expr})
		return Dyn{Expr: &minic.VarRef{Name: tmp}}, nil
	}
	return ret, nil
}

func isAtomic(e minic.Expr) bool {
	switch e.(type) {
	case *minic.VarRef, *minic.IntLit, *minic.FuncRef:
		return true
	default:
		return false
	}
}

// bindParams binds callee parameters to argument partial values. In
// variant mode (asParams) dynamic arguments become residual parameters.
func (s *specializer) bindParams(callee *env, def *minic.FuncDef, args []PVal, call *minic.Call, asParams bool) error {
	addr := s.addrTakenIn(def)
	for i, p := range def.Params {
		b := &binding{name: p.Name, typ: p.Type}
		b.resName = callee.fs.fresh(p.Name)
		arg := args[i]
		if addr[p.Name] {
			// Address-taken parameter: spill to a runtime local.
			b.obj = callee.fs.trackObj(&SObj{Name: b.resName, Slots: []PVal{arg},
				Runtime: &minic.Unary{Op: "&", X: &minic.VarRef{Name: b.resName}}})
			b.declared = true
			var init minic.Expr
			if le, lerr := lift(call.Pos, arg); lerr == nil {
				init = le
			}
			callee.fs.emit(&minic.VarDecl{Name: b.resName, Type: p.Type, Init: init})
			b.val = KPtr{Obj: b.obj}
			callee.bind(b)
			continue
		}
		if d, ok := arg.(Dyn); ok && !isAtomic(d.Expr) && !asParams {
			// Evaluate a compound dynamic argument once into a local.
			callee.fs.emit(&minic.VarDecl{Name: b.resName, Type: p.Type, Init: d.Expr})
			b.declared = true
			b.val = Dyn{Expr: &minic.VarRef{Name: b.resName}}
			callee.bind(b)
			continue
		}
		b.val = arg
		if d, ok := arg.(Dyn); ok {
			b.declared = true
			if asParams {
				b.val = Dyn{Expr: &minic.VarRef{Name: b.resName}}
			} else {
				b.val = d
			}
		}
		callee.bind(b)
	}
	return nil
}

// makeVariant creates a residual function specialized to the call's
// binding times (Tempo's context-sensitive "binding-time instances", §4)
// and emits a call to it.
func (s *specializer) makeVariant(e *env, def *minic.FuncDef, args []PVal, call *minic.Call) (PVal, error) {
	s.nfn++
	vname := fmt.Sprintf("%s%s%d", def.Name, s.ctx.Suffix, s.nfn)

	fs := &fnSpec{s: s, def: def, name: vname, asFunction: true, used: map[string]bool{}}
	fs.objs = append(fs.objs, e.fs.objs...) // shared objects stay visible
	callee := &env{fs: fs, def: def, taint: e.taint || e.fs.residualLoop > 0}
	callee.push()

	var params []minic.Param
	var callArgs []minic.Expr
	var restores []func()
	defer func() {
		for _, r := range restores {
			r()
		}
	}()
	addr := s.addrTakenIn(def)
	for i, p := range def.Params {
		arg := args[i]
		b := &binding{name: p.Name, resName: p.Name, typ: p.Type}
		fs.used[p.Name] = true
		switch a := arg.(type) {
		case KInt, KFunc, KNull:
			b.val = arg
		case Dyn:
			params = append(params, minic.Param{Name: p.Name, Type: p.Type})
			callArgs = append(callArgs, a.Expr)
			b.val = Dyn{Expr: &minic.VarRef{Name: p.Name}}
			b.declared = true
		case KPtr:
			if a.Obj.Runtime != nil && a.Off == 0 {
				params = append(params, minic.Param{Name: p.Name, Type: p.Type})
				origExpr, err := lift(call.Pos, arg)
				if err != nil {
					return nil, err
				}
				callArgs = append(callArgs, origExpr)
				// Rebase the object's runtime path onto the parameter
				// for the duration of the variant's specialization.
				saved := a.Obj.Runtime
				obj := a.Obj
				obj.Runtime = &minic.VarRef{Name: p.Name}
				restores = append(restores, func() { obj.Runtime = saved })
				b.val = arg
				b.declared = true
			} else {
				// Specialization-time object: fully static, not passed.
				b.val = arg
			}
		default:
			return nil, specErr(call.Pos, "unsupported argument value %v", arg)
		}
		if addr[p.Name] && b.obj == nil {
			if _, isDyn := arg.(Dyn); isDyn {
				// &param inside the callee on a dynamic argument: the
				// parameter itself is runtime storage.
				b.obj = fs.trackObj(&SObj{Name: p.Name, Slots: []PVal{Dyn{Expr: nil}},
					Runtime: &minic.Unary{Op: "&", X: &minic.VarRef{Name: p.Name}}})
			}
		}
		callee.bind(b)
	}

	fs.pushOut()
	fl, ret, err := s.stmt(callee, def.Body)
	if err != nil {
		return nil, err
	}
	body := fs.popOut()

	retType := def.Ret
	var staticRet PVal
	switch {
	case fs.hasResidualReturn:
		if fl == fReturn && ret != nil {
			le, lerr := lift(def.Pos, ret)
			if lerr != nil {
				return nil, lerr
			}
			body = append(body, &minic.Return{E: le})
		}
	case fl == fReturn && ret != nil && IsKnown(ret):
		// Static return (§3.3): the variant becomes void.
		staticRet = ret
		retType = minic.TypeVoid
	case fl == fReturn && ret != nil:
		le, lerr := lift(def.Pos, ret)
		if lerr != nil {
			return nil, lerr
		}
		body = append(body, &minic.Return{E: le})
	default:
		retType = minic.TypeVoid
		staticRet = KInt{0}
	}

	s.res.Funcs[vname] = &minic.FuncDef{Name: vname, Ret: retType, Params: params,
		Body: &minic.Block{Stmts: body}}
	s.res.Order = append(s.res.Order, "func "+vname)

	callNode := &minic.Call{Fun: &minic.VarRef{Name: vname}, Args: callArgs}
	if staticRet != nil {
		// The call happens for its effects; the caller folds the result.
		e.fs.emit(&minic.ExprStmt{E: callNode})
		s.observe(call, true)
		return staticRet, nil
	}
	s.observe(call, false)
	return Dyn{Expr: callNode}, nil
}

// addrTakenIn caches the address-taken analysis per function.
func (s *specializer) addrTakenIn(def *minic.FuncDef) map[string]bool {
	if s.addrCache == nil {
		s.addrCache = make(map[*minic.FuncDef]map[string]bool)
	}
	if m, ok := s.addrCache[def]; ok {
		return m
	}
	m := make(map[string]bool)
	collectAddrTaken(def.Body, m)
	s.addrCache[def] = m
	return m
}

func collectAddrTaken(st minic.Stmt, out map[string]bool) {
	var walkExpr func(e minic.Expr)
	walkExpr = func(e minic.Expr) {
		switch n := e.(type) {
		case nil:
		case *minic.Unary:
			if n.Op == "&" {
				if v, ok := n.X.(*minic.VarRef); ok {
					out[v.Name] = true
				}
			}
			walkExpr(n.X)
		case *minic.Binary:
			walkExpr(n.X)
			walkExpr(n.Y)
		case *minic.Assign:
			walkExpr(n.LHS)
			walkExpr(n.RHS)
		case *minic.Call:
			walkExpr(n.Fun)
			for _, a := range n.Args {
				walkExpr(a)
			}
		case *minic.Field:
			walkExpr(n.X)
		case *minic.Index:
			walkExpr(n.X)
			walkExpr(n.I)
		}
	}
	var walk func(s minic.Stmt)
	walk = func(s minic.Stmt) {
		switch n := s.(type) {
		case nil:
		case *minic.ExprStmt:
			walkExpr(n.E)
		case *minic.VarDecl:
			walkExpr(n.Init)
		case *minic.If:
			walkExpr(n.Cond)
			walk(n.Then)
			walk(n.Else)
		case *minic.While:
			walkExpr(n.Cond)
			walk(n.Body)
		case *minic.For:
			walk(n.Init)
			walkExpr(n.Cond)
			walk(n.Post)
			walk(n.Body)
		case *minic.Return:
			walkExpr(n.E)
		case *minic.Block:
			for _, inner := range n.Stmts {
				walk(inner)
			}
		}
	}
	walk(st)
}
