package planext

// The binding-time division dump: the paper's §6.1 evidence artifact
// ("different colors are used to display the static and dynamic parts
// of a program") rendered as text and committed as goldens under
// internal/tempo/testdata/. For each corpus entry the dump shows
//
//   - a per-variable/per-field table of how the BTA classified every
//     object and handle access in the probe stub (static, dynamic,
//     mixed, or dead under the division),
//   - the two-level annotated stub source («…» dynamic, ⟦…⟧ dead),
//   - the residual program the specializer produced, and
//   - the extracted access schedule the wire plan is lowered from.

import (
	"fmt"
	"sort"
	"strings"

	"specrpc/internal/minic"
)

// DivisionDump renders the full binding-time evidence artifact for one
// derivation.
func (d *Derivation) DivisionDump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "binding-time division · entry %s · direction %s\n", d.Entry, d.Schedule.Dir)
	static, dynamic := d.Division.Summary()
	fmt.Fprintf(&sb, "observations: %d static, %d dynamic (%.0f%% of the stub's work folded away)\n",
		static, dynamic, 100*float64(static)/float64(static+dynamic))
	sb.WriteString("\n== variable/field classification ==\n\n")
	sb.WriteString(d.classificationTable())
	sb.WriteString("\n== two-level stub (« » dynamic, ⟦ ⟧ dead) ==\n\n")
	for _, fn := range d.StubFuncs {
		out, err := d.Division.Render(d.Program, fn)
		if err != nil {
			fmt.Fprintf(&sb, "render %s: %v\n", fn, err)
			continue
		}
		sb.WriteString(out)
	}
	sb.WriteString("\n== residual program ==\n\n")
	sb.WriteString(d.residualText())
	sb.WriteString("\n== extracted schedule ==\n\n")
	sb.WriteString(d.Schedule.String())
	return sb.String()
}

// classificationTable tallies every variable and field access in the
// probe stub by binding time.
func (d *Derivation) classificationTable() string {
	type row struct {
		static, dynamic int
		observed        bool
	}
	rows := map[string]*row{}
	var order []string
	note := func(name string, e minic.Expr) {
		r := rows[name]
		if r == nil {
			r = &row{}
			rows[name] = r
			order = append(order, name)
		}
		// The specializer observes the nodes it evaluates, which for a
		// residualized access are the subexpressions; sum over the whole
		// subtree so objp->f0 inherits the binding time of its parts.
		walkExpr(e, func(sub minic.Expr) {
			s, dyn := d.Division.Counts(sub)
			r.static += s
			r.dynamic += dyn
			if d.Division.Observed(sub) {
				r.observed = true
			}
		})
	}
	for _, fn := range d.StubFuncs {
		f := d.Program.Funcs[fn]
		if f == nil {
			continue
		}
		walkExprs(f.Body, func(e minic.Expr) {
			switch e.(type) {
			case *minic.VarRef, *minic.Field:
				note(minic.ExprString(e), e)
			}
		})
	}
	// Rows keep first-appearance order (source order of the stub);
	// a stable sort by class groups the summary reading without losing
	// it: static first, then mixed, dynamic, dead.
	class := func(r *row) string {
		switch {
		case !r.observed:
			return "dead"
		case r.dynamic == 0:
			return "static"
		case r.static == 0:
			return "dynamic"
		default:
			return "mixed"
		}
	}
	rank := map[string]int{"static": 0, "mixed": 1, "dynamic": 2, "dead": 3}
	sort.SliceStable(order, func(i, j int) bool {
		return rank[class(rows[order[i]])] < rank[class(rows[order[j]])]
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %7s %8s  %s\n", "expression", "static", "dynamic", "class")
	for _, name := range order {
		r := rows[name]
		fmt.Fprintf(&sb, "%-28s %7d %8d  %s\n", name, r.static, r.dynamic, class(r))
	}
	return sb.String()
}

// residualText prints the residual entry (and any residual variants) of
// the derivation, without the unchanged library declarations.
func (d *Derivation) residualText() string {
	sub := &minic.Program{Funcs: map[string]*minic.FuncDef{}}
	var names []string
	for name, f := range d.Residual.Program.Funcs {
		// Residual functions carry the specialization suffix; the
		// untouched library copies do not.
		if strings.Contains(name, "_spec") {
			names = append(names, name)
			sub.Funcs[name] = f
		}
	}
	sort.Strings(names)
	for _, name := range names {
		sub.Order = append(sub.Order, "func "+name)
	}
	return minic.PrintProgram(sub)
}

// walkExprs visits every expression under a statement in source order.
func walkExprs(s minic.Stmt, visit func(minic.Expr)) {
	switch n := s.(type) {
	case nil:
	case *minic.Block:
		for _, st := range n.Stmts {
			walkExprs(st, visit)
		}
	case *minic.If:
		walkExpr(n.Cond, visit)
		walkExprs(n.Then, visit)
		if n.Else != nil {
			walkExprs(n.Else, visit)
		}
	case *minic.While:
		walkExpr(n.Cond, visit)
		walkExprs(n.Body, visit)
	case *minic.For:
		if n.Init != nil {
			walkExprs(n.Init, visit)
		}
		walkExpr(n.Cond, visit)
		if n.Post != nil {
			walkExprs(n.Post, visit)
		}
		walkExprs(n.Body, visit)
	case *minic.Return:
		walkExpr(n.E, visit)
	case *minic.ExprStmt:
		walkExpr(n.E, visit)
	case *minic.VarDecl:
		walkExpr(n.Init, visit)
	}
}

func walkExpr(e minic.Expr, visit func(minic.Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch n := e.(type) {
	case *minic.Unary:
		walkExpr(n.X, visit)
	case *minic.Binary:
		walkExpr(n.X, visit)
		walkExpr(n.Y, visit)
	case *minic.Assign:
		walkExpr(n.LHS, visit)
		walkExpr(n.RHS, visit)
	case *minic.Call:
		walkExpr(n.Fun, visit)
		for _, a := range n.Args {
			walkExpr(a, visit)
		}
	case *minic.Field:
		walkExpr(n.X, visit)
	case *minic.Index:
		walkExpr(n.X, visit)
		walkExpr(n.I, visit)
	}
}
