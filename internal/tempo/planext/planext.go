// Package planext closes the paper's front (a): it derives wire-plan
// facts from Tempo's binding-time analysis instead of from hand-written
// compilation rules. Given a marshaling shape (the word-shaped subset of
// the XDR wire types), the package
//
//  1. emits a generic, micro-layered mini-C stub for the shape — the
//     same rpcgen-style code as the paper's Figure 4, calling the
//     xdr_int/xdr_u_int/xdr_bool primitives of internal/minic/lib with
//     their full dispatch stack (XDR_PUTLONG → xdrmem_putlong, mode
//     tests, overflow checks);
//  2. runs the specializer under the paper's binding-time division —
//     operation mode, ops table, and buffer geometry static; buffer
//     pointer and user data dynamic — with counted-array lengths probed
//     at a static count so their loops unroll (§6.2's guarded
//     specialization);
//  3. reads the residual program back as a straight-line store/load
//     schedule: the exact sequence of 4-byte buffer accesses the
//     specialized stub performs, with every interpretation layer gone.
//
// The schedule is the analysis-derived analog of a compiled wire plan.
// internal/wire's DeriveCodec lowers it onto the Go struct layout and
// proves it equivalent to the hand-built compiler's output — the
// differential reproduction result of ROADMAP item 3, front (a).
//
// Shapes outside the word subset (strings, opaque data, 8-byte scalars,
// floats, arrays of records, unions, optional data) are rejected with an
// explicit *UnsupportedError: derivation either reproduces the plan or
// refuses loudly; it never silently mis-derives.
package planext

import (
	"fmt"
	"strconv"
	"strings"

	"specrpc/internal/minic"
	rpclib "specrpc/internal/minic/lib"
	"specrpc/internal/tempo"
	"specrpc/internal/tempo/bta"
)

// Dir selects the marshaling direction a derivation specializes.
type Dir int

// Derivation directions.
const (
	Encode Dir = iota + 1
	Decode
)

// String names the direction.
func (d Dir) String() string {
	switch d {
	case Encode:
		return "encode"
	case Decode:
		return "decode"
	default:
		return fmt.Sprintf("dir(%d)", int(d))
	}
}

// Kind enumerates the word-shaped marshaling subset: every shape whose
// wire image is a sequence of 4-byte units, which is exactly the subset
// the mini-C library marshals (and the paper's rmin/intarray examples
// live in).
type Kind uint8

// Shape kinds.
const (
	// Word is a 32-bit signed integer (xdr_int; also enums).
	Word Kind = iota + 1
	// UWord is a 32-bit unsigned integer (xdr_u_int).
	UWord
	// Flag is an XDR bool: one 4-byte 0/1 unit (xdr_bool).
	Flag
	// Fixed is a fixed-length array of word scalars; Len elements, no
	// count on the wire.
	Fixed
	// Counted is a variable-length array of word scalars: a 4-byte count
	// then the elements; Bound limits the count.
	Counted
	// Record is a struct of fields marshaled in order.
	Record
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Word:
		return "word"
	case UWord:
		return "uword"
	case Flag:
		return "flag"
	case Fixed:
		return "fixed"
	case Counted:
		return "counted"
	case Record:
		return "record"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Shape describes one marshaling shape in the word subset. It mirrors
// the corresponding wire.Type tree but is deliberately independent of
// package wire, so wire can depend on the deriver without a cycle.
type Shape struct {
	Kind   Kind
	Len    int      // Fixed: element count
	Bound  uint32   // Counted: decode bound (0 = unbounded)
	Elem   *Shape   // Fixed / Counted element (must be Word, UWord, or Flag)
	Fields []*Shape // Record members, in wire order
}

// UnsupportedError reports a shape the derivation pipeline cannot probe.
// Callers fall back to the hand-built compiler — explicitly.
type UnsupportedError struct {
	Reason string
}

// Error describes why the shape is outside the probe subset.
func (e *UnsupportedError) Error() string {
	return "planext: unsupported shape: " + e.Reason
}

func unsupported(format string, args ...any) error {
	return &UnsupportedError{Reason: fmt.Sprintf(format, args...)}
}

// Validate checks s against the probe subset.
func (s *Shape) Validate() error {
	if s == nil {
		return unsupported("nil shape")
	}
	switch s.Kind {
	case Word, UWord, Flag:
		return nil
	case Fixed:
		if s.Len <= 0 {
			return unsupported("fixed array of %d elements", s.Len)
		}
		return validateElem(s.Elem)
	case Counted:
		return validateElem(s.Elem)
	case Record:
		if len(s.Fields) == 0 {
			return unsupported("empty record")
		}
		for i, f := range s.Fields {
			if err := f.Validate(); err != nil {
				return fmt.Errorf("field %d: %w", i, err)
			}
		}
		return nil
	default:
		return unsupported("kind %s", s.Kind)
	}
}

func validateElem(e *Shape) error {
	if e == nil {
		return unsupported("array with nil element")
	}
	switch e.Kind {
	case Word, UWord, Flag:
		return nil
	case Record, Fixed, Counted:
		return unsupported("array of %s elements (the mini-C probe subset has word-scalar arrays only)", e.Kind)
	default:
		return unsupported("array of %s elements", e.Kind)
	}
}

// ProbeCount picks the static count a Counted field is probed at: enough
// elements to observe the per-element pattern and its stride (two), or
// the bound when the bound is smaller. The derived plan re-generalizes
// the unrolled elements into a counted run, so the probe count never
// appears in the final plan.
func ProbeCount(bound uint32) int {
	if bound == 1 {
		return 1
	}
	return 2
}

// Step is one component of an access path below the root object.
type Step struct {
	// Field is the record field index, or -1 when this step is an array
	// index.
	Field int
	// Index is the array element index, or -1 when this step is a field.
	Index int
	// Count marks the count word of a Counted field: the step names the
	// field, and the access moves its length, not an element.
	Count bool
}

// String renders the step.
func (st Step) String() string {
	switch {
	case st.Count:
		return fmt.Sprintf(".f%d#len", st.Field)
	case st.Index >= 0:
		return fmt.Sprintf("[%d]", st.Index)
	default:
		return fmt.Sprintf(".f%d", st.Field)
	}
}

// Access is one 4-byte buffer access of the residual schedule.
type Access struct {
	// Path locates the moved word below the root object.
	Path []Step
	// WireOff is the byte offset within the message at which the unit
	// lands, recovered from the residual buffer-pointer arithmetic.
	WireOff int
}

// String renders the access.
func (a Access) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "@%04d obj", a.WireOff)
	for _, st := range a.Path {
		sb.WriteString(st.String())
	}
	return sb.String()
}

// Schedule is the extracted residual program: the straight-line sequence
// of buffer accesses the specialized stub performs on the probe shape.
type Schedule struct {
	Dir Dir
	// Accesses in residual program order.
	Accesses []Access
	// WireBytes is the total encoded size of the probe shape.
	WireBytes int
}

// String renders the schedule, one access per line.
func (s *Schedule) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s schedule, %d accesses, %d wire bytes\n", s.Dir, len(s.Accesses), s.WireBytes)
	for _, a := range s.Accesses {
		sb.WriteString(a.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Derivation is the full output of one probe run: the schedule plus the
// analysis artifacts it was read from, for inspection and the
// binding-time evidence dumps.
type Derivation struct {
	Schedule *Schedule
	// Residual is the specializer's output program.
	Residual *tempo.Result
	// Division is the binding-time division observed while specializing.
	Division *bta.Division
	// Program is the probe program the division annotates (library +
	// generated stub).
	Program *minic.Program
	// Entry is the probe stub's name in Program.
	Entry string
	// StubSource is the generated stub text appended to the library.
	StubSource string
	// StubFuncs names the generated marshaling functions (entry last),
	// in stub source order; the division dump renders exactly these.
	StubFuncs []string
}

// Derive emits the probe stub for shape, specializes it in the given
// direction under the paper's division, and extracts the residual
// schedule.
func Derive(shape *Shape, dir Dir) (*Derivation, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	if dir != Encode && dir != Decode {
		return nil, fmt.Errorf("planext: bad direction %d", int(dir))
	}
	stub, err := emitStub(shape)
	if err != nil {
		return nil, err
	}
	prog, err := minic.Parse(rpclib.Source + stub.src)
	if err != nil {
		return nil, fmt.Errorf("planext: probe stub does not parse: %w\n%s", err, stub.src)
	}
	if err := minic.Check(prog); err != nil {
		return nil, fmt.Errorf("planext: probe stub does not check: %w\n%s", err, stub.src)
	}

	op := rpclib.OpEncode
	if dir == Decode {
		op = rpclib.OpDecode
	}
	// The probe buffer is statically sized to the probe image, so every
	// overflow check folds away (the paper's "buffer geometry static").
	ctx := &tempo.Context{
		Entry: stub.entry,
		Params: []tempo.ParamSpec{
			tempo.Object(rpclib.XDRSpec(op, stub.wireBytes)),
			tempo.Dynamic(),
		},
	}
	div, res, err := bta.Analyze(prog, ctx)
	if err != nil {
		return nil, fmt.Errorf("planext: specializing %s %s: %w", stub.entry, dir, err)
	}
	sched, err := extract(res, dir, stub)
	if err != nil {
		return nil, err
	}
	return &Derivation{
		Schedule:   sched,
		Residual:   res,
		Division:   div,
		Program:    prog,
		Entry:      stub.entry,
		StubSource: stub.src,
		StubFuncs:  stub.funcs,
	}, nil
}

// ---------------------------------------------------------------------------
// Probe stub emission

// stubInfo carries the generated probe stub and its naming metadata.
type stubInfo struct {
	src       string
	entry     string   // root marshaling function name
	funcs     []string // all generated functions, stub source order
	root      *Shape   // root record (original shape wrapped if scalar)
	wrapped   bool     // true when the original shape was wrapped in a record
	wireBytes int      // encoded probe size in bytes
}

// emitStub generates the mini-C probe: struct declarations and generic
// rpcgen-style marshaling functions for shape, named away from the
// library's own declarations (d0, d1, ... / xdr_d0, ...). Non-record
// roots are wrapped in a one-field record, which leaves every access
// path and wire offset unchanged (the field sits at offset 0).
func emitStub(shape *Shape) (*stubInfo, error) {
	root := shape
	wrapped := false
	if shape.Kind != Record {
		root = &Shape{Kind: Record, Fields: []*Shape{shape}}
		wrapped = true
	}

	// Name records in preorder.
	var records []*Shape
	names := map[*Shape]string{}
	var collect func(s *Shape)
	collect = func(s *Shape) {
		if s.Kind != Record {
			return
		}
		names[s] = fmt.Sprintf("d%d", len(records))
		records = append(records, s)
		for _, f := range s.Fields {
			collect(f)
		}
	}
	collect(root)

	var sb strings.Builder
	sb.WriteString("\n/* probe stub generated by planext */\n\n")
	// Declarations first (a nested record must be declared before use,
	// so emit in reverse preorder: leaves before enclosing records).
	for i := len(records) - 1; i >= 0; i-- {
		rec := records[i]
		fmt.Fprintf(&sb, "struct %s {\n", names[rec])
		for fi, f := range rec.Fields {
			switch f.Kind {
			case Word, UWord, Flag:
				fmt.Fprintf(&sb, "    int f%d;\n", fi)
			case Fixed:
				fmt.Fprintf(&sb, "    int f%d[%d];\n", fi, f.Len)
			case Counted:
				fmt.Fprintf(&sb, "    int f%d_len;\n", fi)
				fmt.Fprintf(&sb, "    int f%d[%d];\n", fi, ProbeCount(f.Bound))
			case Record:
				fmt.Fprintf(&sb, "    struct %s f%d;\n", names[f], fi)
			}
		}
		sb.WriteString("};\n\n")
	}
	var funcs []string
	for i := len(records) - 1; i >= 0; i-- {
		rec := records[i]
		name := names[rec]
		funcs = append(funcs, "xdr_"+name)
		fmt.Fprintf(&sb, "int xdr_%s(struct xdrbuf* xdrs, struct %s* objp)\n{\n", name, name)
		for fi, f := range rec.Fields {
			switch f.Kind {
			case Word:
				fmt.Fprintf(&sb, "    if (!xdr_int(xdrs, &objp->f%d)) { return 0; }\n", fi)
			case UWord:
				fmt.Fprintf(&sb, "    if (!xdr_u_int(xdrs, &objp->f%d)) { return 0; }\n", fi)
			case Flag:
				fmt.Fprintf(&sb, "    if (!xdr_bool(xdrs, &objp->f%d)) { return 0; }\n", fi)
			case Fixed:
				emitLoop(&sb, elemProc(f.Elem), fi, f.Len)
			case Counted:
				// The count word moves through the full primitive stack
				// like any datum; the element loop is probed at a static
				// count so it unrolls (§6.2).
				fmt.Fprintf(&sb, "    if (!xdr_u_int(xdrs, &objp->f%d_len)) { return 0; }\n", fi)
				emitLoop(&sb, elemProc(f.Elem), fi, ProbeCount(f.Bound))
			case Record:
				fmt.Fprintf(&sb, "    if (!xdr_%s(xdrs, &objp->f%d)) { return 0; }\n", names[f], fi)
			}
		}
		sb.WriteString("    return 1;\n}\n\n")
	}

	return &stubInfo{
		src:       sb.String(),
		entry:     "xdr_" + names[root],
		funcs:     funcs,
		root:      root,
		wrapped:   wrapped,
		wireBytes: probeWireBytes(root),
	}, nil
}

func emitLoop(sb *strings.Builder, proc string, fi, n int) {
	fmt.Fprintf(sb, "    {\n        int i;\n        for (i = 0; i < %d; i++) {\n", n)
	fmt.Fprintf(sb, "            if (!%s(xdrs, &objp->f%d[i])) { return 0; }\n", proc, fi)
	sb.WriteString("        }\n    }\n")
}

func elemProc(e *Shape) string {
	switch e.Kind {
	case UWord:
		return "xdr_u_int"
	case Flag:
		return "xdr_bool"
	default:
		return "xdr_int"
	}
}

// probeWireBytes sizes the probe image: 4 bytes per word, counted fields
// at their probe count plus the count word.
func probeWireBytes(s *Shape) int {
	switch s.Kind {
	case Word, UWord, Flag:
		return 4
	case Fixed:
		return 4 * s.Len
	case Counted:
		return 4 + 4*ProbeCount(s.Bound)
	case Record:
		total := 0
		for _, f := range s.Fields {
			total += probeWireBytes(f)
		}
		return total
	default:
		return 0
	}
}

// ---------------------------------------------------------------------------
// Residual extraction

// extract reads the residual entry function back as an access schedule.
// The residual grammar is deliberately narrow: after full specialization
// the body must be an alternation of buffer accesses and constant
// pointer bumps. Anything else — a surviving loop, branch, call, or
// overflow check — means the division did not fully specialize the stub,
// and extraction fails loudly.
func extract(res *tempo.Result, dir Dir, stub *stubInfo) (*Schedule, error) {
	fn := res.Program.Funcs[res.Entry]
	if fn == nil {
		return nil, fmt.Errorf("planext: residual program lacks entry %s", res.Entry)
	}
	// The residual must keep exactly the two runtime parameters of the
	// division: the handle (dynamic buffer pointer) and the object.
	if len(res.Params) != 2 {
		return nil, fmt.Errorf("planext: residual entry has params %v, want [xdrs objp]", res.Params)
	}
	handle, obj := res.Params[0], res.Params[1]

	sched := &Schedule{Dir: dir}
	// Pointer temporaries survive inlining of nested records
	// (struct d1* objp_2 = &objp->f1; int* ip = &objp_2->f0); env maps
	// them back to their initializer so paths resolve to the root object.
	env := map[string]minic.Expr{}
	off := 0
	for _, st := range fn.Body.Stmts {
		if vd, ok := st.(*minic.VarDecl); ok {
			if vd.Init == nil {
				return nil, extractErr(st, "uninitialized residual local %s survives specialization", vd.Name)
			}
			env[vd.Name] = vd.Init
			continue
		}
		es, ok := st.(*minic.ExprStmt)
		if !ok {
			return nil, extractErr(st, "residual statement %T survives specialization", st)
		}
		switch e := es.E.(type) {
		case *minic.Call:
			// stlong(xdrs->x_private, objp->...): one encode store.
			name, ok := callName(e)
			if !ok || name != "stlong" {
				return nil, extractErr(st, "residual call %s survives specialization", minic.ExprString(es.E))
			}
			if dir != Encode {
				return nil, extractErr(st, "store %s in a decode residual", minic.ExprString(es.E))
			}
			if len(e.Args) != 2 || !isBufPtr(e.Args[0], handle) {
				return nil, extractErr(st, "store not through the stream pointer: %s", minic.ExprString(es.E))
			}
			path, err := parsePath(e.Args[1], obj, env, stub)
			if err != nil {
				return nil, err
			}
			sched.Accesses = append(sched.Accesses, Access{Path: path, WireOff: off})
		case *minic.Assign:
			// Either the pointer bump or a decode load.
			if isBufBump(e, handle) {
				k, _ := bumpBytes(e)
				off += k
				continue
			}
			if dir != Decode {
				return nil, extractErr(st, "assignment %s in an encode residual", minic.ExprString(es.E))
			}
			call, ok := e.RHS.(*minic.Call)
			if !ok {
				return nil, extractErr(st, "residual assignment %s is not a load", minic.ExprString(es.E))
			}
			name, _ := callName(call)
			if name != "ldlong" || e.Op != "=" {
				return nil, extractErr(st, "residual assignment %s is not a load", minic.ExprString(es.E))
			}
			if len(call.Args) != 1 || !isBufPtr(call.Args[0], handle) {
				return nil, extractErr(st, "load not through the stream pointer: %s", minic.ExprString(es.E))
			}
			path, err := parsePath(e.LHS, obj, env, stub)
			if err != nil {
				return nil, err
			}
			sched.Accesses = append(sched.Accesses, Access{Path: path, WireOff: off})
		default:
			return nil, extractErr(st, "residual expression %s survives specialization", minic.ExprString(es.E))
		}
	}
	sched.WireBytes = off
	if off != stub.wireBytes {
		return nil, fmt.Errorf("planext: residual moves %d wire bytes, probe image is %d", off, stub.wireBytes)
	}
	if len(sched.Accesses)*4 != off {
		return nil, fmt.Errorf("planext: %d accesses do not cover %d wire bytes", len(sched.Accesses), off)
	}
	return sched, nil
}

func extractErr(st minic.Stmt, format string, args ...any) error {
	return fmt.Errorf("planext: %s (the division did not fully specialize the stub)",
		fmt.Sprintf(format, args...))
}

func callName(c *minic.Call) (string, bool) {
	switch f := c.Fun.(type) {
	case *minic.VarRef:
		return f.Name, true
	case *minic.FuncRef:
		return f.Name, true
	default:
		return "", false
	}
}

// isBufPtr matches the residual stream-pointer expression
// <handle>->x_private.
func isBufPtr(e minic.Expr, handle string) bool {
	f, ok := e.(*minic.Field)
	if !ok || f.Name != "x_private" {
		return false
	}
	v, ok := f.X.(*minic.VarRef)
	return ok && v.Name == handle
}

// isBufBump matches <handle>->x_private += <const>.
func isBufBump(a *minic.Assign, handle string) bool {
	if a.Op != "+=" || !isBufPtr(a.LHS, handle) {
		return false
	}
	_, ok := a.RHS.(*minic.IntLit)
	return ok
}

func bumpBytes(a *minic.Assign) (int, bool) {
	lit, ok := a.RHS.(*minic.IntLit)
	if !ok {
		return 0, false
	}
	return int(lit.Val), true
}

// parsePath maps a residual object access (objp->f1.f0[3], or the
// wrapped root's objp->f0...) back to shape steps. Pointer temporaries
// left by record inlining resolve through env; the index must have
// folded to a constant — a symbolic index would mean a loop survived.
func parsePath(e minic.Expr, obj string, env map[string]minic.Expr, stub *stubInfo) ([]Step, error) {
	var rev []Step
	hops := 0
	for {
		switch n := e.(type) {
		case *minic.VarRef:
			if n.Name != obj {
				init, ok := env[n.Name]
				if !ok {
					return nil, fmt.Errorf("planext: access path rooted at unknown %q", n.Name)
				}
				if hops++; hops > 1000 {
					return nil, fmt.Errorf("planext: temporary chain from %q does not reach %q", n.Name, obj)
				}
				e = init
				continue
			}
			// Reverse into root-first order.
			steps := make([]Step, len(rev))
			for i := range rev {
				steps[i] = rev[len(rev)-1-i]
			}
			if stub.wrapped {
				// Strip the synthetic wrapper field f0; its count word
				// stays, flagged as the (fieldless) root count.
				if len(steps) == 0 || steps[0].Index >= 0 || steps[0].Field != 0 {
					return nil, fmt.Errorf("planext: wrapped root access lacks the f0 step")
				}
				if steps[0].Count {
					steps[0] = Step{Field: -1, Index: -1, Count: true}
				} else {
					steps = steps[1:]
				}
			}
			return steps, nil
		case *minic.Field:
			fi, isCount, err := parseFieldName(n.Name)
			if err != nil {
				return nil, err
			}
			rev = append(rev, Step{Field: fi, Index: -1, Count: isCount})
			e = n.X
		case *minic.Index:
			lit, ok := n.I.(*minic.IntLit)
			if !ok {
				return nil, fmt.Errorf("planext: non-constant index %s survives specialization", minic.ExprString(n.I))
			}
			rev = append(rev, Step{Field: -1, Index: int(lit.Val)})
			e = n.X
		case *minic.Unary:
			if n.Op == "*" || n.Op == "&" {
				e = n.X
				continue
			}
			return nil, fmt.Errorf("planext: unexpected access expression %s", minic.ExprString(n))
		default:
			return nil, fmt.Errorf("planext: unexpected access expression %T", e)
		}
	}
}

// parseFieldName decodes the probe naming scheme: fN or fN_len.
func parseFieldName(name string) (field int, count bool, err error) {
	base, isCount := strings.CutSuffix(name, "_len")
	num, ok := strings.CutPrefix(base, "f")
	if !ok {
		return 0, false, fmt.Errorf("planext: unexpected field %q in residual access", name)
	}
	fi, aerr := strconv.Atoi(num)
	if aerr != nil {
		return 0, false, fmt.Errorf("planext: unexpected field %q in residual access", name)
	}
	return fi, isCount, nil
}
