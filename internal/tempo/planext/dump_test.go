package planext

// Golden tests for the binding-time division dumps — the paper's §6.1
// evidence artifact, one per rpcgen corpus entry, committed under
// internal/tempo/testdata/. Regenerate with
//
//	go test ./internal/tempo/planext -run TestDivisionDumpGolden -update

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the division-dump goldens")

// dumpCorpus mirrors the derivable rpcgen corpus entries (rmin.x's pair,
// pmap's mapping, rich.x's point/numbers/bits).
var dumpCorpus = []struct {
	name  string
	shape *Shape
	dir   Dir
}{
	{"rmin_pair_encode", &Shape{Kind: Record, Fields: []*Shape{{Kind: Word}, {Kind: Word}}}, Encode},
	{"rmin_pair_decode", &Shape{Kind: Record, Fields: []*Shape{{Kind: Word}, {Kind: Word}}}, Decode},
	{"pmap_mapping_encode", &Shape{Kind: Record, Fields: []*Shape{
		{Kind: UWord}, {Kind: UWord}, {Kind: UWord}, {Kind: UWord},
	}}, Encode},
	{"rich_point_encode", &Shape{Kind: Record, Fields: []*Shape{{Kind: Word}, {Kind: Word}}}, Encode},
	{"rich_numbers_decode", &Shape{Kind: Counted, Bound: 2000, Elem: &Shape{Kind: Word}}, Decode},
	{"rich_bits_encode", &Shape{Kind: Counted, Bound: 8, Elem: &Shape{Kind: Flag}}, Encode},
}

func TestDivisionDumpGolden(t *testing.T) {
	for _, tc := range dumpCorpus {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Derive(tc.shape, tc.dir)
			if err != nil {
				t.Fatalf("Derive: %v", err)
			}
			got := d.DivisionDump()
			path := filepath.Join("..", "testdata", "division_"+tc.name+".txt")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden missing (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("dump differs from golden %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}

// TestDivisionDumpContent pins the load-bearing facts of the artifact
// independently of the golden bytes: the buffer pointer is dynamic, the
// mode test is static, unreached arms are dead, and the table names the
// object fields.
func TestDivisionDumpContent(t *testing.T) {
	d, err := Derive(&Shape{Kind: Record, Fields: []*Shape{{Kind: Word}, {Kind: Word}}}, Encode)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	dump := d.DivisionDump()
	for _, frag := range []string{
		"== variable/field classification ==",
		"== two-level stub",
		"== residual program ==",
		"== extracted schedule ==",
		"objp->f0",
		"dynamic",
		"«",
	} {
		if !strings.Contains(dump, frag) {
			t.Errorf("dump lacks %q", frag)
		}
	}
	// The handle variable itself is static input; the stores through
	// x_private are the dynamic part.
	if !strings.Contains(dump, "stlong") {
		t.Errorf("residual program lacks the specialized store:\n%s", dump)
	}
}
