package planext

import (
	"strings"
	"testing"
)

// pairShape mirrors examples/rmin: struct pair { int a; int b; }.
func pairShape() *Shape {
	return &Shape{Kind: Record, Fields: []*Shape{{Kind: Word}, {Kind: Word}}}
}

func TestDerivePairEncode(t *testing.T) {
	d, err := Derive(pairShape(), Encode)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	s := d.Schedule
	if len(s.Accesses) != 2 || s.WireBytes != 8 {
		t.Fatalf("schedule = %v", s)
	}
	want := []string{"@0000 obj.f0", "@0004 obj.f1"}
	for i, a := range s.Accesses {
		if a.String() != want[i] {
			t.Errorf("access %d = %s, want %s", i, a, want[i])
		}
	}
}

func TestDerivePairDecode(t *testing.T) {
	d, err := Derive(pairShape(), Decode)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	if got := len(d.Schedule.Accesses); got != 2 {
		t.Fatalf("accesses = %d, want 2\nschedule:\n%s", got, d.Schedule)
	}
}

func TestDeriveScalarWrapped(t *testing.T) {
	for _, k := range []Kind{Word, UWord, Flag} {
		d, err := Derive(&Shape{Kind: k}, Encode)
		if err != nil {
			t.Fatalf("Derive(%s): %v", k, err)
		}
		s := d.Schedule
		if len(s.Accesses) != 1 || s.WireBytes != 4 {
			t.Fatalf("%s schedule = %v", k, s)
		}
		a := s.Accesses[0]
		if len(a.Path) != 0 {
			t.Errorf("%s wrapped scalar path = %v, want empty", k, a.Path)
		}
	}
}

func TestDeriveFixedArray(t *testing.T) {
	sh := &Shape{Kind: Record, Fields: []*Shape{
		{Kind: Fixed, Len: 3, Elem: &Shape{Kind: Word}},
	}}
	d, err := Derive(sh, Encode)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	s := d.Schedule
	if len(s.Accesses) != 3 || s.WireBytes != 12 {
		t.Fatalf("schedule:\n%s", s)
	}
	for i, a := range s.Accesses {
		want := Access{Path: []Step{{Field: 0, Index: -1}, {Field: -1, Index: i}}, WireOff: 4 * i}
		if a.String() != want.String() {
			t.Errorf("access %d = %s, want %s", i, a, want)
		}
	}
}

func TestDeriveCountedArray(t *testing.T) {
	sh := &Shape{Kind: Record, Fields: []*Shape{
		{Kind: Counted, Bound: 7, Elem: &Shape{Kind: Word}},
	}}
	d, err := Derive(sh, Decode)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	s := d.Schedule
	// Count word + ProbeCount(7)=2 probe elements.
	if len(s.Accesses) != 3 || s.WireBytes != 12 {
		t.Fatalf("schedule:\n%s", s)
	}
	if !s.Accesses[0].Path[0].Count {
		t.Errorf("first access %s is not the count word", s.Accesses[0])
	}
	t.Logf("schedule:\n%s", s)
}

func TestDeriveNestedRecord(t *testing.T) {
	inner := &Shape{Kind: Record, Fields: []*Shape{{Kind: Word}, {Kind: Word}}}
	sh := &Shape{Kind: Record, Fields: []*Shape{
		{Kind: UWord},
		inner,
		{Kind: Flag},
	}}
	d, err := Derive(sh, Encode)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	s := d.Schedule
	want := []string{
		"@0000 obj.f0",
		"@0004 obj.f1.f0",
		"@0008 obj.f1.f1",
		"@0012 obj.f2",
	}
	if len(s.Accesses) != len(want) {
		t.Fatalf("schedule:\n%s", s)
	}
	for i, a := range s.Accesses {
		if a.String() != want[i] {
			t.Errorf("access %d = %s, want %s", i, a, want[i])
		}
	}
}

func TestDeriveUnsupported(t *testing.T) {
	cases := []struct {
		name string
		sh   *Shape
	}{
		{"array of records", &Shape{Kind: Record, Fields: []*Shape{
			{Kind: Fixed, Len: 2, Elem: &Shape{Kind: Record, Fields: []*Shape{{Kind: Word}}}},
		}}},
		{"counted of counted", &Shape{Kind: Counted, Bound: 3, Elem: &Shape{Kind: Counted, Bound: 2, Elem: &Shape{Kind: Word}}}},
		{"empty record", &Shape{Kind: Record}},
		{"zero-length fixed", &Shape{Kind: Fixed, Len: 0, Elem: &Shape{Kind: Word}}},
		{"nil", nil},
	}
	for _, tc := range cases {
		_, err := Derive(tc.sh, Encode)
		if err == nil {
			t.Errorf("%s: Derive succeeded, want UnsupportedError", tc.name)
			continue
		}
		var ue *UnsupportedError
		if !asUnsupported(err, &ue) {
			t.Errorf("%s: error %v is not UnsupportedError", tc.name, err)
		}
	}
}

func asUnsupported(err error, out **UnsupportedError) bool {
	for err != nil {
		if ue, ok := err.(*UnsupportedError); ok {
			*out = ue
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestStubSourceShape(t *testing.T) {
	d, err := Derive(pairShape(), Encode)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	for _, frag := range []string{"struct d0", "xdr_d0", "xdr_int(xdrs, &objp->f0)"} {
		if !strings.Contains(d.StubSource, frag) {
			t.Errorf("stub source lacks %q:\n%s", frag, d.StubSource)
		}
	}
}
