// Package tempo implements the paper's program specializer for mini-C: a
// partial evaluator in the style of Tempo (Consel et al.) with the four
// refinements the paper credits for making specialization of system code
// work (§4):
//
//   - partially-static structures: a struct like the XDR handle can have
//     static fields (x_op, x_handy, x_ops) and dynamic fields (x_private)
//     at the same time; static fields fold away, dynamic fields remain
//     runtime accesses;
//   - flow sensitivity: a variable's binding time is a property of the
//     program point, not the program — a local may be dynamic before a
//     guard and static inside it (the expected_inlen idiom of §6.2);
//   - context sensitivity: each call is specialized for its own argument
//     binding times; the procedure-identifier marshaling (static int) and
//     argument marshaling (dynamic int) get different instances;
//   - static returns: a call whose side effects are dynamic can still
//     have a statically known result, which folds the caller's exit-status
//     tests and turns residual functions void (§3.3, Figure 5).
//
// The specializer is online: it interprets static computations over
// partial values and emits residual code for dynamic ones. The binding-
// time division it discovers is observable through Context.Observer,
// which internal/tempo/bta uses to render the two-level program the
// Tempo UI showed its users (§6.1).
package tempo

import (
	"fmt"

	"specrpc/internal/minic"
)

// PVal is a partial value: either known at specialization time (static)
// or a residual expression evaluated at run time (dynamic).
type PVal interface {
	pval()
	String() string
}

// KInt is a known integer.
type KInt struct{ V int64 }

func (KInt) pval() {}

// String renders the value.
func (k KInt) String() string { return fmt.Sprintf("static %d", k.V) }

// KFunc is a known function value.
type KFunc struct{ Name string }

func (KFunc) pval() {}

// String renders the value.
func (k KFunc) String() string { return "static fn:" + k.Name }

// KNull is the known null pointer.
type KNull struct{}

func (KNull) pval() {}

// String renders the value.
func (KNull) String() string { return "static null" }

// KPtr is a known pointer to a specialization-time object.
type KPtr struct {
	Obj *SObj
	Off int // slot offset into Obj
}

func (KPtr) pval() {}

// String renders the value.
func (k KPtr) String() string { return fmt.Sprintf("static &%s+%d", k.Obj.Name, k.Off) }

// Dyn is a dynamic value: Expr computes it in the residual program.
type Dyn struct{ Expr minic.Expr }

func (Dyn) pval() {}

// String renders the residual expression.
func (d Dyn) String() string { return "dynamic " + minic.ExprString(d.Expr) }

// IsKnown reports whether v is static.
func IsKnown(v PVal) bool {
	_, dyn := v.(Dyn)
	return v != nil && !dyn
}

// SObj is a specialization-time memory object: a struct instance or word
// array whose slots hold partial values. Objects may be backed by runtime
// storage (Runtime names the base pointer in residual code, e.g. the
// `xdrs` parameter) or exist only at specialization time (an address-
// taken static local).
type SObj struct {
	Name   string
	Struct *minic.Struct // nil for plain word arrays
	Slots  []PVal
	// Div gives the binding time of each slot for struct-backed objects:
	// true = static (reads fold, writes update Slots, no residual code),
	// false = dynamic (reads/writes residualize against Runtime).
	// For non-struct objects every slot's division follows its value.
	Div []bool
	// Runtime, when non-nil, is the residual expression for the object's
	// base pointer.
	Runtime minic.Expr
}

// slotPV reads a slot.
func (o *SObj) slotPV(i int) (PVal, error) {
	if i < 0 || i >= len(o.Slots) {
		return nil, fmt.Errorf("tempo: slot %d out of range in object %s (size %d)", i, o.Name, len(o.Slots))
	}
	return o.Slots[i], nil
}

// Error is a specialization failure: an unsound binding-time division, an
// unsupported construct, or resource exhaustion during unfolding.
type Error struct {
	Pos minic.Pos
	Msg string
}

// Error formats the failure.
func (e *Error) Error() string {
	if e.Pos.Line == 0 {
		return "tempo: " + e.Msg
	}
	return fmt.Sprintf("tempo: %s: %s", e.Pos, e.Msg)
}

func specErr(pos minic.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// evalBinary folds a binary operator over known values with the subject
// language's 32-bit integer semantics.
func evalBinary(pos minic.Pos, op string, a, b PVal) (PVal, error) {
	// Pointer and function comparisons.
	if isPtrPV(a) || isPtrPV(b) {
		eq, err := ptrPVEq(pos, a, b)
		if err != nil {
			return nil, err
		}
		switch op {
		case "==":
			return boolPV(eq), nil
		case "!=":
			return boolPV(!eq), nil
		default:
			return nil, specErr(pos, "invalid static pointer operation %s", op)
		}
	}
	if fa, ok := a.(KFunc); ok {
		fb, ok2 := b.(KFunc)
		if !ok2 {
			return nil, specErr(pos, "comparing function with non-function")
		}
		switch op {
		case "==":
			return boolPV(fa.Name == fb.Name), nil
		case "!=":
			return boolPV(fa.Name != fb.Name), nil
		default:
			return nil, specErr(pos, "invalid static funcptr operation %s", op)
		}
	}
	ia, ok := a.(KInt)
	ib, ok2 := b.(KInt)
	if !ok || !ok2 {
		return nil, specErr(pos, "static evaluation of %s on non-integers", op)
	}
	x, y := ia.V, ib.V
	switch op {
	case "+":
		return KInt{int64(int32(x + y))}, nil
	case "-":
		return KInt{int64(int32(x - y))}, nil
	case "*":
		return KInt{int64(int32(x * y))}, nil
	case "/":
		if y == 0 {
			return nil, specErr(pos, "static division by zero")
		}
		return KInt{int64(int32(x / y))}, nil
	case "%":
		if y == 0 {
			return nil, specErr(pos, "static modulo by zero")
		}
		return KInt{int64(int32(x % y))}, nil
	case "&":
		return KInt{x & y}, nil
	case "|":
		return KInt{x | y}, nil
	case "^":
		return KInt{int64(int32(x ^ y))}, nil
	case "<<":
		return KInt{int64(int32(x << (uint(y) & 31)))}, nil
	case ">>":
		return KInt{int64(int32(x) >> (uint(y) & 31))}, nil
	case "==":
		return boolPV(x == y), nil
	case "!=":
		return boolPV(x != y), nil
	case "<":
		return boolPV(x < y), nil
	case ">":
		return boolPV(x > y), nil
	case "<=":
		return boolPV(x <= y), nil
	case ">=":
		return boolPV(x >= y), nil
	default:
		return nil, specErr(pos, "unknown operator %s", op)
	}
}

func boolPV(b bool) PVal {
	if b {
		return KInt{1}
	}
	return KInt{0}
}

func isPtrPV(v PVal) bool {
	switch v.(type) {
	case KPtr, KNull:
		return true
	default:
		return false
	}
}

func ptrPVEq(pos minic.Pos, a, b PVal) (bool, error) {
	norm := func(v PVal) (obj *SObj, off int, null bool, err error) {
		switch n := v.(type) {
		case KPtr:
			return n.Obj, n.Off, false, nil
		case KNull:
			return nil, 0, true, nil
		case KInt:
			if n.V == 0 {
				return nil, 0, true, nil
			}
			return nil, 0, false, specErr(pos, "comparing pointer with nonzero integer")
		default:
			return nil, 0, false, specErr(pos, "comparing pointer with %s", v)
		}
	}
	ao, aoff, anull, err := norm(a)
	if err != nil {
		return false, err
	}
	bo, boff, bnull, err := norm(b)
	if err != nil {
		return false, err
	}
	if anull || bnull {
		return anull == bnull, nil
	}
	return ao == bo && aoff == boff, nil
}

// truthyPV reports C truthiness of a known value.
func truthyPV(v PVal) bool {
	switch n := v.(type) {
	case KInt:
		return n.V != 0
	case KNull:
		return false
	case KPtr:
		return true
	case KFunc:
		return n.Name != ""
	default:
		return false
	}
}

// lift converts a known value to a residual expression; pointers to
// specialization-time objects cannot be lifted.
func lift(pos minic.Pos, v PVal) (minic.Expr, error) {
	switch n := v.(type) {
	case KInt:
		return &minic.IntLit{Val: n.V}, nil
	case KNull:
		return &minic.IntLit{Val: 0}, nil
	case Dyn:
		return n.Expr, nil
	case KFunc:
		return &minic.VarRef{Name: n.Name}, nil
	case KPtr:
		if n.Obj.Runtime != nil && n.Off == 0 {
			return minic.CloneExpr(n.Obj.Runtime), nil
		}
		return nil, specErr(pos, "cannot lift pointer to specialization-time object %s", n.Obj.Name)
	default:
		return nil, specErr(pos, "cannot lift %v", v)
	}
}
