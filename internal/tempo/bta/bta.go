// Package bta exposes the binding-time division of a specialization as an
// annotated ("two-level") view of the source program — the reproduction
// of Tempo's visualization interface the paper describes in §6.1:
// "Different colors are used to display the static and dynamic parts of a
// program, thus helping the user to follow the propagation of the inputs
// declared as known and assess the degree of specialization".
//
// The division is context-sensitive: a node specialized under several
// contexts (e.g. xdr_int marshaling a static procedure identifier in one
// call and dynamic arguments in another) accumulates observations from
// each; the rendered view joins them (any dynamic observation renders
// dynamic), while Counts preserves the per-context tallies.
package bta

import (
	"fmt"
	"strings"

	"specrpc/internal/minic"
	"specrpc/internal/tempo"
)

// Division records, per AST node, how often the specializer evaluated it
// statically versus residualized it.
type Division struct {
	static  map[any]int
	dynamic map[any]int
}

// Analyze runs the specialization described by ctx purely for its
// binding-time division; the residual program is returned too (it is a
// by-product). Any Observer already present in ctx is preserved.
func Analyze(prog *minic.Program, ctx *tempo.Context) (*Division, *tempo.Result, error) {
	d := &Division{static: make(map[any]int), dynamic: make(map[any]int)}
	prev := ctx.Observer
	ctx.Observer = func(node any, static bool) {
		if static {
			d.static[node]++
		} else {
			d.dynamic[node]++
		}
		if prev != nil {
			prev(node, static)
		}
	}
	defer func() { ctx.Observer = prev }()
	res, err := tempo.Specialize(prog, ctx)
	if err != nil {
		return nil, nil, err
	}
	return d, res, nil
}

// Counts reports how often node was observed static and dynamic.
func (d *Division) Counts(node any) (static, dynamic int) {
	return d.static[node], d.dynamic[node]
}

// Dynamic reports whether node was ever residualized (the join of all
// contexts, which is what the two-level view displays).
func (d *Division) Dynamic(node any) bool { return d.dynamic[node] > 0 }

// Observed reports whether the specializer reached node at all;
// unobserved code is dead under the declared division.
func (d *Division) Observed(node any) bool {
	return d.static[node] > 0 || d.dynamic[node] > 0
}

// Summary totals the observations.
func (d *Division) Summary() (static, dynamic int) {
	for _, c := range d.static {
		static += c
	}
	for _, c := range d.dynamic {
		dynamic += c
	}
	return static, dynamic
}

// Render prints the named function with its two-level annotations:
// dynamic (residualized) code is wrapped in «…», code never reached under
// the division is wrapped in ⟦…⟧ (dead), and static code is plain — the
// textual equivalent of Tempo's color display.
func (d *Division) Render(prog *minic.Program, fnName string) (string, error) {
	f, ok := prog.Funcs[fnName]
	if !ok {
		return "", fmt.Errorf("bta: no function %s", fnName)
	}
	pr := minic.Printer{Annotate: func(n any, text string) string {
		// Statements render by reachability (unreached code is dead
		// under this division); expressions render by binding time.
		if _, isStmt := n.(minic.Stmt); isStmt {
			if !d.Observed(n) {
				return "⟦" + text + "⟧"
			}
			if d.Dynamic(n) {
				return "«" + text + "»"
			}
			return text
		}
		if d.Dynamic(n) {
			return "«" + text + "»"
		}
		return text
	}}
	var sb strings.Builder
	sub := &minic.Program{
		Funcs: map[string]*minic.FuncDef{fnName: f},
		Order: []string{"func " + fnName},
	}
	sb.WriteString(pr.Program(sub))
	return sb.String(), nil
}
