package bta

import (
	"strings"
	"testing"

	"specrpc/internal/minic"
	rpclib "specrpc/internal/minic/lib"
	"specrpc/internal/tempo"
)

func analyzePutlongPath(t *testing.T) (*Division, *minic.Program) {
	t.Helper()
	prog := rpclib.MustProgram()
	d, _, err := Analyze(prog, &tempo.Context{
		Entry: "xdr_pair",
		Params: []tempo.ParamSpec{
			tempo.Object(rpclib.XDRSpec(rpclib.OpEncode, 64)),
			tempo.Dynamic(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d, prog
}

func TestDivisionSummary(t *testing.T) {
	d, _ := analyzePutlongPath(t)
	static, dynamic := d.Summary()
	if static == 0 || dynamic == 0 {
		t.Fatalf("summary: static=%d dynamic=%d", static, dynamic)
	}
	if static <= dynamic {
		t.Fatalf("encode path should be mostly static (s=%d d=%d)", static, dynamic)
	}
}

func TestRenderMarksDynamicParts(t *testing.T) {
	d, prog := analyzePutlongPath(t)
	out, err := d.Render(prog, "xdrmem_putlong")
	if err != nil {
		t.Fatal(err)
	}
	// The store into the buffer is dynamic.
	if !strings.Contains(out, "«") {
		t.Fatalf("no dynamic marks:\n%s", out)
	}
	// The overflow check folds: the decrement of x_handy must NOT be
	// inside dynamic marks. Find its line and check.
	var handyLine string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "x_handy") {
			handyLine = line
			break
		}
	}
	if handyLine == "" {
		t.Fatalf("x_handy line not found:\n%s", out)
	}
	if strings.Contains(handyLine, "«") {
		t.Fatalf("overflow check rendered dynamic: %q", handyLine)
	}
}

func TestRenderMarksDeadCode(t *testing.T) {
	d, prog := analyzePutlongPath(t)
	// xdr_long's decode and free arms are never reached under the encode
	// division: they render as dead.
	out, err := d.Render(prog, "xdr_long")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "⟦") {
		t.Fatalf("no dead marks in dispatch:\n%s", out)
	}
	if !strings.Contains(out, "XDR_GETLONG") {
		t.Fatalf("decode arm missing:\n%s", out)
	}
}

func TestCountsContextSensitivity(t *testing.T) {
	// marshal_callhdr marshals static header words and marshal_call then
	// marshals dynamic array elements — the same xdr_int body sees both
	// contexts, so *lp inside putlong is observed static (procedure id)
	// and dynamic (arguments).
	prog := rpclib.MustProgram()
	d, _, err := Analyze(prog, &tempo.Context{
		Entry: "marshal_call",
		Params: []tempo.ParamSpec{
			tempo.Object(rpclib.XDRSpec(rpclib.OpEncode, 1024)),
			tempo.Dynamic(),      // xid
			tempo.StaticInt(200), // prog
			tempo.StaticInt(1),   // vers
			tempo.StaticInt(7),   // proc
			tempo.Dynamic(),      // args
			tempo.StaticInt(8),   // nargs
			tempo.StaticInt(8),   // maxargs
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	putlong := prog.Funcs["xdrmem_putlong"]
	// Find the stlong argument *lp inside putlong's body.
	var starLP minic.Expr
	var walk func(s minic.Stmt)
	var walkE func(e minic.Expr)
	walkE = func(e minic.Expr) {
		if u, ok := e.(*minic.Unary); ok && u.Op == "*" {
			if v, ok := u.X.(*minic.VarRef); ok && v.Name == "lp" {
				starLP = u
			}
		}
		switch n := e.(type) {
		case *minic.Call:
			for _, a := range n.Args {
				walkE(a)
			}
		case *minic.Assign:
			walkE(n.LHS)
			walkE(n.RHS)
		case *minic.Binary:
			walkE(n.X)
			walkE(n.Y)
		case *minic.Unary:
			walkE(n.X)
		}
	}
	walk = func(s minic.Stmt) {
		switch n := s.(type) {
		case *minic.ExprStmt:
			walkE(n.E)
		case *minic.If:
			walkE(n.Cond)
			walk(n.Then)
			walk(n.Else)
		case *minic.Block:
			for _, st := range n.Stmts {
				walk(st)
			}
		case *minic.Return:
			walkE(n.E)
		}
	}
	walk(putlong.Body)
	if starLP == nil {
		t.Fatal("*lp not found in putlong")
	}
	static, dynamic := d.Counts(starLP)
	if static == 0 || dynamic == 0 {
		t.Fatalf("*lp contexts: static=%d dynamic=%d, want both > 0 "+
			"(header words static, array elements dynamic)", static, dynamic)
	}
	// 9 static header words after the dynamic xid, 8 dynamic (xid + array).
	if static != 9 || dynamic != 9 {
		t.Logf("note: *lp observed static=%d dynamic=%d", static, dynamic)
	}
}

func TestAnalyzePropagatesErrors(t *testing.T) {
	prog := rpclib.MustProgram()
	_, _, err := Analyze(prog, &tempo.Context{Entry: "nosuch"})
	if err == nil {
		t.Fatal("expected error for unknown entry")
	}
}
