package faultconn

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// TestSplitWriteReassembles: a split write must deliver the same bytes,
// just in two kernel writes.
func TestSplitWriteReassembles(t *testing.T) {
	p1, p2 := net.Pipe()
	defer p2.Close()
	stats := &Stats{}
	c := Wrap(p1, Plan{Seed: 1, SplitWrite: 1.0}, stats)

	msg := []byte("the quick brown fox jumps over the lazy dog")
	got := make([]byte, 0, len(msg))
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 8)
		for len(got) < len(msg) {
			n, err := p2.Read(buf)
			got = append(got, buf[:n]...)
			if err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	if n, err := c.Write(msg); err != nil || n != len(msg) {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if err := <-done; err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("reassembled %q, want %q", got, msg)
	}
	if stats.SplitWrites.Load() == 0 {
		t.Fatal("split never counted")
	}
}

// TestResetClosesSocket: an injected reset surfaces ErrInjectedReset on
// the faulted side and a real close (EOF) on the peer, after exactly
// ResetAfter bytes.
func TestResetClosesSocket(t *testing.T) {
	p1, p2 := net.Pipe()
	stats := &Stats{}
	c := Wrap(p1, Plan{Seed: 1, ResetRate: 1.0, ResetAfter: 3}, stats)

	peer := make(chan []byte, 1)
	go func() {
		b, _ := io.ReadAll(p2)
		peer <- b
	}()
	n, err := c.Write([]byte("abcdef"))
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("Write err = %v, want ErrInjectedReset", err)
	}
	if n != 3 {
		t.Fatalf("wrote %d bytes before reset, want 3", n)
	}
	select {
	case b := <-peer:
		if string(b) != "abc" {
			t.Fatalf("peer saw %q, want %q", b, "abc")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("peer never saw the close")
	}
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("post-reset Write err = %v", err)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("post-reset Read err = %v", err)
	}
	if stats.Resets.Load() != 1 {
		t.Fatalf("resets = %d, want 1", stats.Resets.Load())
	}
}

// TestSeededScheduleReplays: the same seed must produce the same fault
// decisions write for write.
func TestSeededScheduleReplays(t *testing.T) {
	run := func() uint64 {
		p1, p2 := net.Pipe()
		defer p1.Close()
		go func() { _, _ = io.Copy(io.Discard, p2) }()
		stats := &Stats{}
		c := Wrap(p1, Plan{Seed: 99, SplitWrite: 0.5}, stats)
		for i := 0; i < 64; i++ {
			if _, err := c.Write([]byte("0123456789")); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
		}
		return stats.SplitWrites.Load()
	}
	a, b := run(), run()
	if a == 0 || a != b {
		t.Fatalf("schedules diverged: %d vs %d splits", a, b)
	}
}

// TestPacketDropDup: outbound datagram faults — a dropped send still
// reports success to the caller, a duplicated one really sends twice.
func TestPacketDropDup(t *testing.T) {
	dst, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback udp: %v", err)
	}
	defer dst.Close()
	src, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("src socket: %v", err)
	}
	defer src.Close()

	stats := &Stats{}
	fc := WrapPacket(src, Plan{Seed: 3, DropRate: 0.5}, stats)
	for i := 0; i < 32; i++ {
		if n, err := fc.WriteTo([]byte("ping"), dst.LocalAddr()); err != nil || n != 4 {
			t.Fatalf("WriteTo = %d, %v", n, err)
		}
	}
	if stats.Dropped.Load() == 0 || stats.Dropped.Load() == 32 {
		t.Fatalf("dropped = %d, want some but not all of 32", stats.Dropped.Load())
	}

	// Count what actually arrived: sent minus dropped.
	want := 32 - int(stats.Dropped.Load())
	_ = dst.SetReadDeadline(time.Now().Add(2 * time.Second))
	got := 0
	buf := make([]byte, 64)
	for got < want {
		if _, _, err := dst.ReadFrom(buf); err != nil {
			t.Fatalf("after %d/%d datagrams: %v", got, want, err)
		}
		got++
	}
}
