// Package faultconn wraps net.Conn, net.Listener, and net.PacketConn
// with seeded fault injection that works over real transports: short
// writes that split a record mid-frame, stalls that hold a write long
// enough to trip deadlines, injected connection resets, and datagram
// loss/duplication. Where netsim simulates a lossy network in-process,
// faultconn distresses actual kernel sockets, so the chaos suite can
// prove the client's reconnect and retry machinery against the same
// code paths production traffic takes.
package faultconn

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjectedReset is the error surfaced by a connection the Plan chose
// to reset; the underlying socket is really closed, so the peer sees a
// genuine EOF/RST, not a simulated one.
var ErrInjectedReset = errors.New("faultconn: injected connection reset")

// Plan is a seeded fault schedule for one connection (or one listener's
// accepted connections, each deriving its own sub-seed). Rates are
// probabilities in [0, 1], drawn per Write.
type Plan struct {
	// Seed fixes the schedule; the same Plan replays identically.
	Seed int64
	// SplitWrite is the probability a Write is split into two kernel
	// writes at a random boundary — a mid-record short write, which a
	// correct record layer must reassemble invisibly.
	SplitWrite float64
	// StallRate is the probability a Write first sleeps for Stall,
	// simulating a congested or half-dead peer (trips write deadlines).
	StallRate float64
	// Stall is the injected write delay (default 10ms when StallRate is
	// set).
	Stall time.Duration
	// ResetRate is the probability, drawn per Write, that the connection
	// is closed mid-stream after ResetAfter bytes of the record.
	ResetRate float64
	// ResetAfter is how many bytes of the triggering Write are written
	// before the close — a mid-record reset when 0 < ResetAfter < len(p).
	ResetAfter int
	// DropRate / DupRate apply to packet connections (WrapPacket):
	// outbound datagrams are dropped or sent twice.
	DropRate float64
	DupRate  float64
}

func (p *Plan) stall() time.Duration {
	if p.Stall <= 0 {
		return 10 * time.Millisecond
	}
	return p.Stall
}

// Stats counts the faults a wrapper has injected.
type Stats struct {
	SplitWrites atomic.Uint64
	Stalls      atomic.Uint64
	Resets      atomic.Uint64
	Dropped     atomic.Uint64
	Duplicated  atomic.Uint64
}

// Conn is a fault-injecting net.Conn.
type Conn struct {
	net.Conn
	plan  Plan
	stats *Stats

	mu    sync.Mutex // guards rng (Read and Write run on different goroutines)
	rng   *rand.Rand
	reset bool
}

// Wrap returns conn distressed by plan, with faults counted into stats
// (which may be shared across connections; nil allocates a private
// one).
func Wrap(conn net.Conn, plan Plan, stats *Stats) *Conn {
	if stats == nil {
		stats = &Stats{}
	}
	return &Conn{Conn: conn, plan: plan, stats: stats, rng: rand.New(rand.NewSource(plan.Seed))}
}

// draw runs one seeded probability check under the rng lock.
func (c *Conn) draw(rate float64) bool {
	if rate <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64() < rate
}

func (c *Conn) splitPoint(n int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return 1 + c.rng.Intn(n-1)
}

func (c *Conn) isReset() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reset
}

func (c *Conn) markReset() {
	c.mu.Lock()
	c.reset = true
	c.mu.Unlock()
}

// Write applies the plan: maybe stall, maybe reset mid-record, maybe
// split into two kernel writes.
func (c *Conn) Write(p []byte) (int, error) {
	if c.isReset() {
		return 0, ErrInjectedReset
	}
	if c.draw(c.plan.StallRate) {
		c.stats.Stalls.Add(1)
		time.Sleep(c.plan.stall())
	}
	if c.draw(c.plan.ResetRate) {
		c.stats.Resets.Add(1)
		c.markReset()
		n := 0
		if c.plan.ResetAfter > 0 && c.plan.ResetAfter < len(p) {
			n, _ = c.Conn.Write(p[:c.plan.ResetAfter])
		}
		_ = c.Conn.Close()
		return n, ErrInjectedReset
	}
	if len(p) > 1 && c.draw(c.plan.SplitWrite) {
		c.stats.SplitWrites.Add(1)
		k := c.splitPoint(len(p))
		n, err := c.Conn.Write(p[:k])
		if err != nil {
			return n, err
		}
		m, err := c.Conn.Write(p[k:])
		return n + m, err
	}
	return c.Conn.Write(p)
}

func (c *Conn) Read(p []byte) (int, error) {
	if c.isReset() {
		return 0, ErrInjectedReset
	}
	return c.Conn.Read(p)
}

// Listener wraps an accept loop so every accepted connection carries a
// fault plan derived from the listener's seed (connection i uses
// Seed+i, so one seed fixes the whole run's schedule).
type Listener struct {
	net.Listener
	plan  Plan
	stats *Stats
	seq   atomic.Int64
}

// WrapListener returns ln with every accepted conn wrapped in plan;
// stats aggregates across connections (nil allocates one).
func WrapListener(ln net.Listener, plan Plan, stats *Stats) *Listener {
	if stats == nil {
		stats = &Stats{}
	}
	return &Listener{Listener: ln, plan: plan, stats: stats}
}

// Stats returns the shared fault counters.
func (l *Listener) Stats() *Stats { return l.stats }

func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	p := l.plan
	p.Seed += l.seq.Add(1)
	return Wrap(conn, p, l.stats), nil
}

// PacketConn is a fault-injecting net.PacketConn for real-UDP chaos.
type PacketConn struct {
	net.PacketConn
	plan  Plan
	stats *Stats

	mu  sync.Mutex // guards rng
	rng *rand.Rand
}

// WrapPacket returns pc with outbound loss/duplication per plan.
func WrapPacket(pc net.PacketConn, plan Plan, stats *Stats) *PacketConn {
	if stats == nil {
		stats = &Stats{}
	}
	return &PacketConn{PacketConn: pc, plan: plan, stats: stats, rng: rand.New(rand.NewSource(plan.Seed))}
}

func (c *PacketConn) draw(rate float64) bool {
	if rate <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64() < rate
}

func (c *PacketConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	if c.draw(c.plan.DropRate) {
		c.stats.Dropped.Add(1)
		return len(p), nil // lost in flight: the sender still succeeds
	}
	if c.draw(c.plan.DupRate) {
		c.stats.Duplicated.Add(1)
		if _, err := c.PacketConn.WriteTo(p, addr); err != nil {
			return 0, err
		}
	}
	return c.PacketConn.WriteTo(p, addr)
}
