package core

import (
	"bytes"
	"testing"
	"testing/quick"
)

var testSpec = CallSpec{Prog: 0x20000042, Vers: 2, Proc: 7, NArgs: 20}

func echoService(args []int32, res []int32) int {
	copy(res, args)
	return len(args)
}

func mustEncoder(t *testing.T, mode Mode, spec CallSpec, chunk int) *ClientEncoder {
	t.Helper()
	e, err := NewClientEncoder(mode, spec, chunk)
	if err != nil {
		t.Fatalf("encoder %v: %v", mode, err)
	}
	return e
}

func seqArgs(n int) []int32 {
	args := make([]int32, n)
	for i := range args {
		args[i] = int32(i*7 - 3)
	}
	return args
}

func TestEncodeGenericWireFormat(t *testing.T) {
	spec := testSpec
	spec.NArgs = 2
	e := mustEncoder(t, Generic, spec, 0)
	buf := make([]byte, 512)
	n, err := e.Encode(buf, 0xdeadbeef, []int32{5, -1})
	if err != nil {
		t.Fatal(err)
	}
	if n != spec.RequestBytes() {
		t.Fatalf("encoded %d bytes, want %d", n, spec.RequestBytes())
	}
	// Spot-check the header: xid, CALL=0, RPCVERS=2, prog, vers, proc.
	want := []byte{
		0xde, 0xad, 0xbe, 0xef, // xid
		0, 0, 0, 0, // CALL
		0, 0, 0, 2, // RPC version
		0x20, 0x00, 0x00, 0x42, // prog
		0, 0, 0, 2, // vers
		0, 0, 0, 7, // proc
		0, 0, 0, 0, 0, 0, 0, 0, // null cred
		0, 0, 0, 0, 0, 0, 0, 0, // null verf
		0, 0, 0, 2, // array count
		0, 0, 0, 5, // arg 0
		0xff, 0xff, 0xff, 0xff, // arg 1 = -1
	}
	if !bytes.Equal(buf[:n], want) {
		t.Fatalf("wire:\n got %x\nwant %x", buf[:n], want)
	}
}

func TestEncodeSpecializedMatchesGeneric(t *testing.T) {
	gen := mustEncoder(t, Generic, testSpec, 0)
	spc := mustEncoder(t, Specialized, testSpec, 0)
	f := func(xid uint32, raw [20]int32) bool {
		args := raw[:]
		b1 := make([]byte, 512)
		b2 := make([]byte, 512)
		n1, err1 := gen.Encode(b1, xid, args)
		n2, err2 := spc.Encode(b2, xid, args)
		return err1 == nil && err2 == nil && n1 == n2 && bytes.Equal(b1[:n1], b2[:n2])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeChunkedMatchesGeneric(t *testing.T) {
	spec := testSpec
	spec.NArgs = 23 // exercises the remainder chunk (23 = 2*10 + 3)
	gen := mustEncoder(t, Generic, spec, 0)
	chk := mustEncoder(t, Chunked, spec, 10)
	args := seqArgs(spec.NArgs)
	b1 := make([]byte, 1024)
	b2 := make([]byte, 1024)
	n1, err := gen.Encode(b1, 42, args)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := chk.Encode(b2, 42, args)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 || !bytes.Equal(b1[:n1], b2[:n2]) {
		t.Fatalf("chunked wire differs:\n got %x\nwant %x", b2[:n2], b1[:n1])
	}
}

func TestFullCallPipeline(t *testing.T) {
	for _, encMode := range []Mode{Generic, Specialized} {
		for _, srvMode := range []Mode{Generic, Specialized} {
			enc := mustEncoder(t, encMode, testSpec, 0)
			srv, err := NewServerHandler(srvMode, testSpec, echoService)
			if err != nil {
				t.Fatalf("server %v: %v", srvMode, err)
			}
			dec, err := NewReplyDecoder(encMode, testSpec)
			if err != nil {
				t.Fatalf("decoder %v: %v", encMode, err)
			}

			args := seqArgs(testSpec.NArgs)
			req := make([]byte, testSpec.RequestBytes())
			reply := make([]byte, 4096)
			xid := uint32(777)
			if _, err := enc.Encode(req, xid, args); err != nil {
				t.Fatalf("%v/%v encode: %v", encMode, srvMode, err)
			}
			rn, err := srv.Handle(req, reply)
			if err != nil {
				t.Fatalf("%v/%v handle: %v", encMode, srvMode, err)
			}
			res := make([]int32, testSpec.NArgs)
			if err := dec.Decode(reply[:rn], xid, res); err != nil {
				t.Fatalf("%v/%v decode: %v", encMode, srvMode, err)
			}
			for i := range args {
				if res[i] != args[i] {
					t.Fatalf("%v/%v echo mismatch at %d: %d != %d",
						encMode, srvMode, i, res[i], args[i])
				}
			}
		}
	}
}

func TestDecoderRejectsWrongXID(t *testing.T) {
	enc := mustEncoder(t, Generic, testSpec, 0)
	srv, err := NewServerHandler(Generic, testSpec, echoService)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewReplyDecoder(Specialized, testSpec)
	if err != nil {
		t.Fatal(err)
	}
	req := make([]byte, testSpec.RequestBytes())
	reply := make([]byte, 4096)
	if _, err := enc.Encode(req, 1000, seqArgs(testSpec.NArgs)); err != nil {
		t.Fatal(err)
	}
	rn, err := srv.Handle(req, reply)
	if err != nil {
		t.Fatal(err)
	}
	res := make([]int32, testSpec.NArgs)
	if err := dec.Decode(reply[:rn], 999, res); err == nil {
		t.Fatal("stale xid accepted")
	}
}

func TestServerRejectsWrongProgram(t *testing.T) {
	enc := mustEncoder(t, Generic, CallSpec{Prog: 111, Vers: 1, Proc: 1, NArgs: 4}, 0)
	srv, err := NewServerHandler(Specialized, CallSpec{Prog: 222, Vers: 1, Proc: 1, NArgs: 4}, echoService)
	if err != nil {
		t.Fatal(err)
	}
	req := make([]byte, 256)
	reply := make([]byte, 256)
	n, err := enc.Encode(req, 5, seqArgs(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Handle(req[:n], reply); err == nil {
		t.Fatal("wrong program accepted")
	}
}

func TestSpecializedCostIsLower(t *testing.T) {
	// The headline claim: specialization removes interpretation, so the
	// specialized marshaler executes far fewer operations.
	spec := testSpec
	spec.NArgs = 250
	gen := mustEncoder(t, Generic, spec, 0)
	spc := mustEncoder(t, Specialized, spec, 0)
	args := seqArgs(spec.NArgs)
	buf := make([]byte, spec.RequestBytes())

	gen.ResetCost()
	if _, err := gen.Encode(buf, 1, args); err != nil {
		t.Fatal(err)
	}
	gcost := gen.Cost()

	spc.ResetCost()
	if _, err := spc.Encode(buf, 1, args); err != nil {
		t.Fatal(err)
	}
	scost := spc.Cost()

	if scost.Ops*2 >= gcost.Ops {
		t.Fatalf("specialized ops %d not < half generic ops %d", scost.Ops, gcost.Ops)
	}
	if scost.Calls >= gcost.Calls {
		t.Fatalf("specialized calls %d not < generic calls %d", scost.Calls, gcost.Calls)
	}
	// The data movement itself is identical work (paper §5: "the number
	// of memory moves remains constant").
	if scost.MemBytes > gcost.MemBytes {
		t.Fatalf("specialized moved more bytes: %d > %d", scost.MemBytes, gcost.MemBytes)
	}
}

func TestCodeSizeGrowsWithUnrolling(t *testing.T) {
	// Table 3: residual code is larger than generic and grows with N.
	genSize := mustEncoder(t, Generic, testSpec, 0).CodeSize()
	sizes := make(map[int]int)
	for _, n := range []int{20, 100, 250} {
		spec := testSpec
		spec.NArgs = n
		sizes[n] = mustEncoder(t, Specialized, spec, 0).CodeSize()
	}
	if sizes[20] <= 0 || sizes[100] <= sizes[20] || sizes[250] <= sizes[100] {
		t.Fatalf("sizes do not grow: %v", sizes)
	}
	if sizes[250] <= genSize {
		t.Fatalf("residual at N=250 (%d) not larger than generic (%d)", sizes[250], genSize)
	}
}

func TestEncoderArgumentValidation(t *testing.T) {
	e := mustEncoder(t, Specialized, testSpec, 0)
	buf := make([]byte, 4096)
	if _, err := e.Encode(buf, 1, make([]int32, 3)); err == nil {
		t.Fatal("wrong arg count accepted")
	}
}

func TestChunkedNeedsChunkSize(t *testing.T) {
	if _, err := NewClientEncoder(Chunked, testSpec, 0); err == nil {
		t.Fatal("chunked mode without chunk size accepted")
	}
}

func TestModeString(t *testing.T) {
	if Generic.String() != "Original" || Specialized.String() != "Specialized" ||
		Chunked.String() != "Chunked" {
		t.Fatal("mode names changed; tables depend on them")
	}
}
