// Package core is the paper's experiment pipeline: it turns the generic
// Sun RPC marshaling library (internal/minic/lib) into runnable encoders,
// decoders, and server dispatchers — both the original interpretive form
// and the Tempo-specialized form — executing on the same virtual machine
// so their costs are directly comparable.
//
// The pipeline reproduces the three configurations of the paper's §5:
//
//   - Generic: the unmodified micro-layered code (the "original Sun RPC").
//   - Specialized: the residual code produced by internal/tempo with the
//     paper's binding-time division (full loop unrolling).
//   - Chunked: bounded unrolling at a fixed chunk size with a driver loop
//     outside the specialized body, the paper's Table 4 manual transform.
package core

import (
	"fmt"

	"specrpc/internal/minic"
	rpclib "specrpc/internal/minic/lib"
	"specrpc/internal/tempo"
	"specrpc/internal/vm"
)

// CallSpec fixes the static shape of one remote call: the program triple
// and the int-array argument/result length — exactly the invariants the
// paper declares known before execution.
type CallSpec struct {
	Prog, Vers, Proc uint32
	// NArgs is the argument array length (the paper's 20..2000 grid).
	NArgs int
	// NRes is the result array length; defaults to NArgs (echo service).
	NRes int
	// BufSize is the marshaling buffer size; defaults to the exact wire
	// size of the larger direction.
	BufSize int
}

func (s *CallSpec) fill() {
	if s.NRes == 0 {
		s.NRes = s.NArgs
	}
	if s.BufSize == 0 {
		n := s.NArgs
		if s.NRes > n {
			n = s.NRes
		}
		s.BufSize = rpclib.HeaderBytes + 4 + 4*n
	}
}

// RequestBytes is the encoded size of the call message.
func (s CallSpec) RequestBytes() int { return rpclib.HeaderBytes + 4 + 4*s.NArgs }

// ReplyBytes is the encoded size of the reply message.
func (s CallSpec) ReplyBytes() int {
	nres := s.NRes
	if nres == 0 {
		nres = s.NArgs
	}
	return rpclib.ReplyHeaderBytes + 4 + 4*nres
}

// Runner wraps one compiled mini-C program with its entry metadata so
// callers can invoke it by parameter name, independent of how many
// parameters specialization removed.
type Runner struct {
	M            *vm.Machine
	Prog         *minic.Program
	Entry        string
	Params       []string
	StaticReturn *int64
}

// Call invokes the entry with the named argument values.
func (r *Runner) Call(vals map[string]vm.Value) (vm.Value, error) {
	args := make([]vm.Value, len(r.Params))
	for i, name := range r.Params {
		v, ok := vals[name]
		if !ok {
			return vm.Value{}, fmt.Errorf("core: missing argument %q for %s", name, r.Entry)
		}
		args[i] = v
	}
	return r.M.Call(r.Entry, args...)
}

// CodeSize reports the size in source bytes of the program's functions,
// the Table 3 metric (the paper measured binary bytes; source bytes of
// the same code preserve the growth shape).
func (r *Runner) CodeSize() int {
	total := 0
	for name, f := range r.Prog.Funcs {
		var pr minic.Printer
		sub := &minic.Program{Funcs: map[string]*minic.FuncDef{name: f}, Order: []string{"func " + name}}
		total += len(pr.Program(sub))
	}
	return total
}

// genericRunner compiles the whole library unmodified.
func genericRunner(entry string) (*Runner, error) {
	prog, err := rpclib.Program()
	if err != nil {
		return nil, err
	}
	def, ok := prog.Funcs[entry]
	if !ok {
		return nil, fmt.Errorf("core: no library function %s", entry)
	}
	m, err := vm.New(prog)
	if err != nil {
		return nil, err
	}
	params := make([]string, len(def.Params))
	for i, p := range def.Params {
		params[i] = p.Name
	}
	return &Runner{M: m, Prog: prog, Entry: entry, Params: params}, nil
}

// specializedRunner specializes entry under ctx and compiles the residue.
func specializedRunner(ctx *tempo.Context) (*Runner, error) {
	prog, err := rpclib.Program()
	if err != nil {
		return nil, err
	}
	res, err := tempo.Specialize(prog, ctx)
	if err != nil {
		return nil, fmt.Errorf("core: specialize %s: %w", ctx.Entry, err)
	}
	m, err := vm.New(res.Program)
	if err != nil {
		return nil, fmt.Errorf("core: compile residual %s: %w", res.Entry, err)
	}
	return &Runner{M: m, Prog: res.Program, Entry: res.Entry,
		Params: res.Params, StaticReturn: res.StaticReturn}, nil
}

// xdrState holds the reusable runtime XDR handle of one machine.
type xdrState struct {
	m      *vm.Machine
	xdrs   *vm.Region
	ops    *vm.Region
	layout *vm.Layout
}

func newXDRState(m *vm.Machine) (*xdrState, error) {
	xdrs, err := m.NewStruct("xdrbuf", "xdrs")
	if err != nil {
		return nil, err
	}
	ops, err := m.NewStruct("xdrops", "xdrops")
	if err != nil {
		return nil, err
	}
	opsLayout, err := m.Layout("xdrops")
	if err != nil {
		return nil, err
	}
	for _, f := range []struct{ field, fn string }{
		{"x_putlong", "xdrmem_putlong"},
		{"x_getlong", "xdrmem_getlong"},
		{"x_putbytes", "xdrmem_putbytes"},
		{"x_getbytes", "xdrmem_getbytes"},
	} {
		if off := opsLayout.FieldOffset(f.field); off >= 0 && m.HasFunc(f.fn) {
			ops.Words[off] = vm.FuncVal(f.fn)
		} else if off >= 0 {
			// Residual programs may have dropped the generic streams;
			// the funcptr slots are then never called.
			ops.Words[off] = vm.FuncVal(f.fn)
		}
	}
	layout, err := m.Layout("xdrbuf")
	if err != nil {
		return nil, err
	}
	return &xdrState{m: m, xdrs: xdrs, ops: ops, layout: layout}, nil
}

// arm points the handle at buf with the given mode, exactly what
// xdrmem_create did per call.
func (x *xdrState) arm(buf []byte, op int) *vm.Region {
	region := vm.BytesRegion("msgbuf", buf)
	x.xdrs.Words[x.layout.FieldOffset("x_op")] = vm.IntVal(int64(op))
	x.xdrs.Words[x.layout.FieldOffset("x_ops")] = vm.PtrVal(x.ops, 0)
	x.xdrs.Words[x.layout.FieldOffset("x_private")] = vm.PtrVal(region, 0)
	x.xdrs.Words[x.layout.FieldOffset("x_base")] = vm.PtrVal(region, 0)
	x.xdrs.Words[x.layout.FieldOffset("x_handy")] = vm.IntVal(int64(len(buf)))
	return region
}

// pos reports how many bytes have been produced into the armed buffer.
func (x *xdrState) pos(buf []byte) int {
	private := x.xdrs.Words[x.layout.FieldOffset("x_private")]
	if private.Kind != vm.KindPtr {
		return 0
	}
	return private.P.Off
}

// words copies an int32 slice into a reusable word region.
type wordArray struct {
	region *vm.Region
}

func newWordArray(name string, n int) *wordArray {
	return &wordArray{region: vm.NewWords(name, n)}
}

func (w *wordArray) load(vals []int32) *vm.Region {
	if len(vals) > len(w.region.Words) {
		w.region = vm.NewWords(w.region.Name, len(vals))
	}
	for i, v := range vals {
		w.region.Words[i] = vm.IntVal(int64(v))
	}
	return w.region
}

func (w *wordArray) store(dst []int32) {
	for i := range dst {
		dst[i] = int32(w.region.Words[i].I)
	}
}
