package core

import (
	"fmt"

	rpclib "specrpc/internal/minic/lib"
	"specrpc/internal/tempo"
	"specrpc/internal/vm"
)

// ServiceFunc is the Go-side implementation of the remote procedure: it
// receives the decoded arguments and fills the result slice, returning
// the number of results (negative for failure).
type ServiceFunc func(args []int32, res []int32) int

// ServerHandler runs the server half of one call — decode request, run
// the service, encode reply — through the mini-C pipeline (generic or
// specialized svcudp_dispatch).
type ServerHandler struct {
	Spec CallSpec
	Mode Mode

	run  *Runner
	in   *xdrState
	out  *xdrState
	args *wordArray
	res  *wordArray
	svc  ServiceFunc
}

// NewServerHandler builds the handler; svc is invoked by the run_service
// extern from inside the mini-C dispatch.
func NewServerHandler(mode Mode, spec CallSpec, svc ServiceFunc) (*ServerHandler, error) {
	spec.fill()
	h := &ServerHandler{
		Spec: spec, Mode: mode, svc: svc,
		args: newWordArray("srvargs", spec.NArgs),
		res:  newWordArray("srvres", spec.NRes),
	}
	var err error
	switch mode {
	case Generic:
		h.run, err = genericRunner("svcudp_dispatch")
	case Specialized:
		h.run, err = specializedRunner(&tempo.Context{
			Entry: "svcudp_dispatch",
			Params: []tempo.ParamSpec{
				tempo.Object(rpclib.XDRSpec(rpclib.OpDecode, spec.BufSize)), // xin
				tempo.Object(rpclib.XDRSpec(rpclib.OpEncode, spec.BufSize)), // xout
				tempo.StaticInt(int64(spec.Prog)),
				tempo.StaticInt(int64(spec.Vers)),
				tempo.StaticInt(int64(spec.NArgs)), // expected_nargs
				tempo.StaticInt(int64(spec.NRes)),  // maxargs
				tempo.Dynamic(),                    // args
				tempo.Dynamic(),                    // res
			},
		})
	default:
		return nil, fmt.Errorf("core: server handler supports Generic and Specialized, not %v", mode)
	}
	if err != nil {
		return nil, err
	}
	// Two handles on one machine: request in, reply out.
	if h.in, err = newXDRState(h.run.M); err != nil {
		return nil, err
	}
	if h.out, err = newXDRState(h.run.M); err != nil {
		return nil, err
	}
	h.run.M.Extern("run_service", func(m *vm.Machine, callArgs []vm.Value) vm.Value {
		nargs := int(callArgs[1].I)
		argvals := make([]int32, nargs)
		argRegion := callArgs[0].P.Region
		for i := 0; i < nargs; i++ {
			argvals[i] = int32(argRegion.Words[callArgs[0].P.Off+i].I)
		}
		resvals := make([]int32, int(callArgs[3].I))
		n := h.svc(argvals, resvals)
		if n < 0 {
			return vm.IntVal(-1)
		}
		resRegion := callArgs[2].P.Region
		for i := 0; i < n; i++ {
			resRegion.Words[callArgs[2].P.Off+i] = vm.IntVal(int64(resvals[i]))
		}
		return vm.IntVal(int64(n))
	})
	return h, nil
}

// Handle processes one encoded request and produces the encoded reply,
// returning its length.
func (h *ServerHandler) Handle(req []byte, reply []byte) (int, error) {
	h.in.arm(req, rpclib.OpDecode)
	h.out.arm(reply, rpclib.OpEncode)
	rv, err := h.run.Call(map[string]vm.Value{
		"xin":            vm.PtrVal(h.in.xdrs, 0),
		"xout":           vm.PtrVal(h.out.xdrs, 0),
		"prog":           vm.IntVal(int64(h.Spec.Prog)),
		"vers":           vm.IntVal(int64(h.Spec.Vers)),
		"expected_nargs": vm.IntVal(int64(h.Spec.NArgs)),
		"maxargs":        vm.IntVal(int64(h.Spec.NRes)),
		"args":           vm.PtrVal(h.args.load(make([]int32, h.Spec.NArgs)), 0),
		"res":            vm.PtrVal(h.res.load(make([]int32, h.Spec.NRes)), 0),
	})
	if err != nil {
		return 0, err
	}
	ok := rv.I == 1
	if h.run.StaticReturn != nil {
		ok = *h.run.StaticReturn == 1
	}
	if !ok {
		return 0, fmt.Errorf("core: server rejected request")
	}
	return h.Spec.ReplyBytes(), nil
}

// Cost reports accumulated VM cost.
func (h *ServerHandler) Cost() vm.Cost { return h.run.M.Cost }

// ResetCost zeroes the meters.
func (h *ServerHandler) ResetCost() { h.run.M.ResetCost() }

// CodeSize reports the Table 3 metric for the server side.
func (h *ServerHandler) CodeSize() int { return h.run.CodeSize() }
