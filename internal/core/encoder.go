package core

import (
	"fmt"

	rpclib "specrpc/internal/minic/lib"
	"specrpc/internal/tempo"
	"specrpc/internal/vm"
)

// Mode selects which pipeline configuration an encoder/decoder runs.
type Mode int

// Pipeline configurations.
const (
	// Generic runs the unmodified micro-layered library.
	Generic Mode = iota + 1
	// Specialized runs the Tempo residue with full loop unrolling.
	Specialized
	// Chunked runs the Table 4 configuration: bounded unrolling with a
	// driver loop around a fixed-size specialized chunk.
	Chunked
)

// String names the mode as the paper's tables do.
func (m Mode) String() string {
	switch m {
	case Generic:
		return "Original"
	case Specialized:
		return "Specialized"
	case Chunked:
		return "Chunked"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ClientEncoder produces encoded call messages (header + int array), the
// client marshaling process of Table 1.
type ClientEncoder struct {
	Spec CallSpec
	Mode Mode

	run   *Runner
	st    *xdrState
	args  *wordArray
	chunk int
	// chunkRun/restRun drive the Chunked mode.
	prefixRun *Runner
	chunkRun  *Runner
	restRun   *Runner
}

// NewClientEncoder builds an encoder in the given mode. chunk is only
// used by Chunked mode (the paper used 250).
func NewClientEncoder(mode Mode, spec CallSpec, chunk int) (*ClientEncoder, error) {
	spec.fill()
	e := &ClientEncoder{Spec: spec, Mode: mode, chunk: chunk, args: newWordArray("args", spec.NArgs)}
	switch mode {
	case Generic:
		run, err := genericRunner("marshal_call")
		if err != nil {
			return nil, err
		}
		e.run = run
	case Specialized:
		run, err := specializedRunner(&tempo.Context{
			Entry: "marshal_call",
			Params: []tempo.ParamSpec{
				tempo.Object(rpclib.XDRSpec(rpclib.OpEncode, spec.BufSize)), // xdrs
				tempo.Dynamic(),                    // xid
				tempo.StaticInt(int64(spec.Prog)),  // prog
				tempo.StaticInt(int64(spec.Vers)),  // vers
				tempo.StaticInt(int64(spec.Proc)),  // proc
				tempo.Dynamic(),                    // args
				tempo.StaticInt(int64(spec.NArgs)), // nargs
				tempo.StaticInt(int64(spec.NArgs)), // maxargs
			},
		})
		if err != nil {
			return nil, err
		}
		e.run = run
	case Chunked:
		if chunk <= 0 {
			return nil, fmt.Errorf("core: chunked mode needs a positive chunk size")
		}
		prefix, err := specializedRunner(&tempo.Context{
			Entry: "marshal_call_prefix",
			Params: []tempo.ParamSpec{
				tempo.Object(rpclib.XDRSpec(rpclib.OpEncode, spec.BufSize)),
				tempo.Dynamic(), // xid
				tempo.StaticInt(int64(spec.Prog)),
				tempo.StaticInt(int64(spec.Vers)),
				tempo.StaticInt(int64(spec.Proc)),
				tempo.StaticInt(int64(spec.NArgs)),
			},
			Suffix: "_pfx",
		})
		if err != nil {
			return nil, err
		}
		e.prefixRun = prefix
		// The chunk body is specialized once with a huge static x_handy
		// so the per-element overflow checks fold away; the driver below
		// performs the single whole-message bound check, as the paper's
		// manual 250-unrolled variant did.
		e.chunkRun, err = specializedRunner(&tempo.Context{
			Entry: "marshal_chunk",
			Params: []tempo.ParamSpec{
				tempo.Object(rpclib.XDRSpec(rpclib.OpEncode, 1<<30)),
				tempo.Dynamic(),               // base
				tempo.StaticInt(int64(chunk)), // count
			},
			Suffix: "_chunk",
		})
		if err != nil {
			return nil, err
		}
		if rest := spec.NArgs % chunk; rest != 0 {
			e.restRun, err = specializedRunner(&tempo.Context{
				Entry: "marshal_chunk",
				Params: []tempo.ParamSpec{
					tempo.Object(rpclib.XDRSpec(rpclib.OpEncode, 1<<30)),
					tempo.Dynamic(),
					tempo.StaticInt(int64(rest)),
				},
				Suffix: "_rest",
			})
			if err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("core: unknown mode %v", mode)
	}

	var err error
	switch mode {
	case Chunked:
		// The chunk runners share one machine state each; arm both.
		if e.st, err = newXDRState(e.prefixRun.M); err != nil {
			return nil, err
		}
	default:
		if e.st, err = newXDRState(e.run.M); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Encode marshals one call into buf, returning the message length.
func (e *ClientEncoder) Encode(buf []byte, xid uint32, args []int32) (int, error) {
	if len(args) != e.Spec.NArgs {
		return 0, fmt.Errorf("core: encoder specialized for %d args, got %d", e.Spec.NArgs, len(args))
	}
	if len(buf) < e.Spec.RequestBytes() {
		return 0, fmt.Errorf("core: buffer %d short of message %d", len(buf), e.Spec.RequestBytes())
	}
	if e.Mode == Chunked {
		return e.encodeChunked(buf, xid, args)
	}
	argRegion := e.args.load(args)
	e.st.arm(buf, rpclib.OpEncode)
	rv, err := e.run.Call(map[string]vm.Value{
		"xdrs":    vm.PtrVal(e.st.xdrs, 0),
		"xid":     vm.IntVal(int64(xid)),
		"prog":    vm.IntVal(int64(e.Spec.Prog)),
		"vers":    vm.IntVal(int64(e.Spec.Vers)),
		"proc":    vm.IntVal(int64(e.Spec.Proc)),
		"args":    vm.PtrVal(argRegion, 0),
		"nargs":   vm.IntVal(int64(e.Spec.NArgs)),
		"maxargs": vm.IntVal(int64(e.Spec.NArgs)),
	})
	if err != nil {
		return 0, err
	}
	if e.run.StaticReturn != nil {
		if *e.run.StaticReturn != 1 {
			return 0, fmt.Errorf("core: encoder statically fails (buffer too small?)")
		}
	} else if rv.I != 1 {
		return 0, fmt.Errorf("core: encode failed")
	}
	return e.Spec.RequestBytes(), nil
}

func (e *ClientEncoder) encodeChunked(buf []byte, xid uint32, args []int32) (int, error) {
	need := e.Spec.RequestBytes()
	if len(buf) < need {
		return 0, fmt.Errorf("core: buffer %d short of message %d", len(buf), need)
	}
	argRegion := e.args.load(args)
	e.st.arm(buf, rpclib.OpEncode)
	if _, err := e.prefixRun.Call(map[string]vm.Value{
		"xdrs": vm.PtrVal(e.st.xdrs, 0),
		"xid":  vm.IntVal(int64(xid)),
	}); err != nil {
		return 0, err
	}
	// Driver loop: the paper's manual partial unrolling re-runs the same
	// specialized chunk body, so its code stays resident in the i-cache.
	i := 0
	for ; i+e.chunk <= e.Spec.NArgs; i += e.chunk {
		if _, err := e.chunkRun.Call(map[string]vm.Value{
			"xdrs": vm.PtrVal(e.st.xdrs, 0),
			"base": vm.PtrVal(argRegion, i),
		}); err != nil {
			return 0, err
		}
	}
	if i < e.Spec.NArgs {
		if _, err := e.restRun.Call(map[string]vm.Value{
			"xdrs": vm.PtrVal(e.st.xdrs, 0),
			"base": vm.PtrVal(argRegion, i),
		}); err != nil {
			return 0, err
		}
	}
	return need, nil
}

// Cost reports the accumulated VM cost of all machines the encoder runs.
func (e *ClientEncoder) Cost() vm.Cost {
	if e.Mode == Chunked {
		c := e.prefixRun.M.Cost
		c.Add(e.chunkRun.M.Cost)
		if e.restRun != nil {
			c.Add(e.restRun.M.Cost)
		}
		return c
	}
	return e.run.M.Cost
}

// ResetCost zeroes the meters.
func (e *ClientEncoder) ResetCost() {
	if e.Mode == Chunked {
		e.prefixRun.M.ResetCost()
		e.chunkRun.M.ResetCost()
		if e.restRun != nil {
			e.restRun.M.ResetCost()
		}
		return
	}
	e.run.M.ResetCost()
}

// CodeSize reports the Table 3 metric for this configuration.
func (e *ClientEncoder) CodeSize() int {
	if e.Mode == Chunked {
		total := e.prefixRun.CodeSize() + e.chunkRun.CodeSize()
		if e.restRun != nil {
			total += e.restRun.CodeSize()
		}
		return total
	}
	return e.run.CodeSize()
}

// ReplyDecoder decodes reply messages (strict fixed-shape service).
type ReplyDecoder struct {
	Spec CallSpec
	Mode Mode

	run *Runner
	st  *xdrState
	res *wordArray
}

// NewReplyDecoder builds a decoder in the given mode.
func NewReplyDecoder(mode Mode, spec CallSpec) (*ReplyDecoder, error) {
	spec.fill()
	d := &ReplyDecoder{Spec: spec, Mode: mode, res: newWordArray("res", spec.NRes)}
	var err error
	switch mode {
	case Generic:
		d.run, err = genericRunner("unmarshal_reply_strict")
	case Specialized:
		d.run, err = specializedRunner(&tempo.Context{
			Entry: "unmarshal_reply_strict",
			Params: []tempo.ParamSpec{
				tempo.Object(rpclib.XDRSpec(rpclib.OpDecode, spec.BufSize)),
				tempo.Dynamic(), // xid
				tempo.Dynamic(), // res
				tempo.StaticInt(int64(spec.NRes)),
			},
		})
	default:
		return nil, fmt.Errorf("core: decoder supports Generic and Specialized, not %v", mode)
	}
	if err != nil {
		return nil, err
	}
	if d.st, err = newXDRState(d.run.M); err != nil {
		return nil, err
	}
	return d, nil
}

// Decode unpacks a reply into res, validating header and length.
func (d *ReplyDecoder) Decode(buf []byte, xid uint32, res []int32) error {
	if len(res) != d.Spec.NRes {
		return fmt.Errorf("core: decoder specialized for %d results, got %d", d.Spec.NRes, len(res))
	}
	resRegion := d.res.load(res)
	d.st.arm(buf, rpclib.OpDecode)
	rv, err := d.run.Call(map[string]vm.Value{
		"xdrs":          vm.PtrVal(d.st.xdrs, 0),
		"xid":           vm.IntVal(int64(xid)),
		"res":           vm.PtrVal(resRegion, 0),
		"expected_nres": vm.IntVal(int64(d.Spec.NRes)),
	})
	if err != nil {
		return err
	}
	ok := rv.I == 1
	if d.run.StaticReturn != nil {
		ok = *d.run.StaticReturn == 1
	}
	if !ok {
		return fmt.Errorf("core: reply rejected")
	}
	d.res.store(res)
	return nil
}

// Cost reports accumulated VM cost.
func (d *ReplyDecoder) Cost() vm.Cost { return d.run.M.Cost }

// ResetCost zeroes the meters.
func (d *ReplyDecoder) ResetCost() { d.run.M.ResetCost() }

// CodeSize reports the Table 3 metric.
func (d *ReplyDecoder) CodeSize() int { return d.run.CodeSize() }
