package rpcmsg

import (
	"bytes"
	"testing"

	"specrpc/internal/xdr"
)

// FuzzDecodeCallHeader feeds arbitrary bytes to the call-header decoder,
// the first thing a server interprets from an untrusted datagram. A
// successful decode must re-encode and decode again to the same header
// (the marshal routines are their own inverse on the accepted subset).
func FuzzDecodeCallHeader(f *testing.F) {
	seed := CallHeader{
		XID: 7, Prog: 0x20000099, Vers: 1, Proc: 3,
		Cred: OpaqueAuth{Flavor: AuthSys, Body: []byte{1, 2, 3, 4}},
		Verf: None(),
	}
	bs := xdr.NewBufEncode(nil)
	if err := seed.Marshal(xdr.NewEncoder(bs)); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), bs.Buffer()...))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 0}) // xid + CALL, then truncated

	f.Fuzz(func(t *testing.T, data []byte) {
		var h CallHeader
		if err := h.Marshal(xdr.NewDecoder(xdr.NewMemDecode(data))); err != nil {
			return // rejected input is fine; panics and hangs are the bugs
		}
		out := xdr.NewBufEncode(nil)
		if err := h.Marshal(xdr.NewEncoder(out)); err != nil {
			t.Fatalf("decoded header does not re-encode: %v (%+v)", err, h)
		}
		var h2 CallHeader
		if err := h2.Marshal(xdr.NewDecoder(xdr.NewMemDecode(out.Buffer()))); err != nil {
			t.Fatalf("re-encoded header does not decode: %v (%+v)", err, h)
		}
		if h2.XID != h.XID || h2.Prog != h.Prog || h2.Vers != h.Vers || h2.Proc != h.Proc ||
			h2.Cred.Flavor != h.Cred.Flavor || !bytes.Equal(h2.Cred.Body, h.Cred.Body) ||
			h2.Verf.Flavor != h.Verf.Flavor || !bytes.Equal(h2.Verf.Body, h.Verf.Body) {
			t.Fatalf("round trip changed the header:\n was %+v\n now %+v", h, h2)
		}
	})
}
