package rpcmsg

import (
	"bytes"
	"testing"

	"specrpc/internal/xdr"
)

// FuzzDecodeCallHeader feeds arbitrary bytes to the call-header decoder,
// the first thing a server interprets from an untrusted datagram. A
// successful decode must re-encode and decode again to the same header
// (the marshal routines are their own inverse on the accepted subset).
// FuzzCallTemplate is the differential fuzz for the compiled call-header
// path: across random identities, procedures, and auth payloads, the
// template bytes must be identical to CallHeader.Marshal output, and the
// template compiler must reject exactly the inputs the generic encoder
// rejects.
func FuzzCallTemplate(f *testing.F) {
	f.Add(uint32(7), uint32(0x20000099), uint32(1), uint32(3),
		int32(AuthSys), []byte{1, 2, 3, 4}, int32(AuthNone), []byte{})
	f.Add(uint32(0), uint32(0), uint32(0), uint32(0),
		int32(0), []byte{}, int32(AuthShort), []byte{9, 9, 9})
	f.Add(uint32(0xFFFFFFFF), uint32(1), uint32(2), uint32(0xFFFFFFFF),
		int32(-1), make([]byte, MaxAuthBytes), int32(2), []byte{1})

	f.Fuzz(func(t *testing.T, xid, prog, vers, proc uint32,
		credFlavor int32, credBody []byte, verfFlavor int32, verfBody []byte) {
		cred := OpaqueAuth{Flavor: AuthFlavor(credFlavor), Body: credBody}
		verf := OpaqueAuth{Flavor: AuthFlavor(verfFlavor), Body: verfBody}
		hdr := CallHeader{XID: xid, Prog: prog, Vers: vers, Proc: proc, Cred: cred, Verf: verf}
		bs := xdr.NewBufEncode(nil)
		genErr := hdr.Marshal(xdr.NewEncoder(bs))

		tmpl, tmplErr := NewCallTemplate(prog, vers, cred, verf)
		if (genErr == nil) != (tmplErr == nil) {
			t.Fatalf("acceptance diverged: generic err %v, template err %v", genErr, tmplErr)
		}
		if genErr != nil {
			return
		}
		want := bs.Buffer()
		got := tmpl.AppendCall(nil, xid, proc)
		if !bytes.Equal(got, want) {
			t.Fatalf("template diverged:\n got %x\nwant %x", got, want)
		}
		// A template is reused across calls: a second append with other
		// per-call values must not be affected by the first patch.
		again := tmpl.AppendCall(nil, xid+1, proc^0x55)
		hdr2 := CallHeader{XID: xid + 1, Prog: prog, Vers: vers, Proc: proc ^ 0x55, Cred: cred, Verf: verf}
		bs2 := xdr.NewBufEncode(nil)
		if err := hdr2.Marshal(xdr.NewEncoder(bs2)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again, bs2.Buffer()) {
			t.Fatalf("template not reusable:\n got %x\nwant %x", again, bs2.Buffer())
		}
	})
}

// FuzzReplyTemplate: same differential property for the success-reply
// template across random XIDs and verifier payloads.
func FuzzReplyTemplate(f *testing.F) {
	f.Add(uint32(7), int32(AuthNone), []byte{})
	f.Add(uint32(0xDEADBEEF), int32(AuthShort), []byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, xid uint32, verfFlavor int32, verfBody []byte) {
		verf := OpaqueAuth{Flavor: AuthFlavor(verfFlavor), Body: verfBody}
		rh := ReplyHeader{XID: xid, Stat: MsgAccepted, Verf: verf, AcceptStat: Success}
		bs := xdr.NewBufEncode(nil)
		genErr := rh.Marshal(xdr.NewEncoder(bs))

		tmpl, tmplErr := NewReplyTemplate(verf)
		if (genErr == nil) != (tmplErr == nil) {
			t.Fatalf("acceptance diverged: generic err %v, template err %v", genErr, tmplErr)
		}
		if genErr != nil {
			return
		}
		want := bs.Buffer()
		if got := tmpl.AppendReply(nil, xid); !bytes.Equal(got, want) {
			t.Fatalf("template diverged:\n got %x\nwant %x", got, want)
		}
		// The bytes the template emits must take the client's fast decode
		// path and land on the body right after the header.
		raw := append(tmpl.AppendReply(nil, xid), 0xAA, 0xBB, 0xCC, 0xDD)
		body, ok := AcceptedSuccessBody(raw)
		if !ok || len(body) != 4 || body[0] != 0xAA {
			t.Fatalf("fast decode rejected template output: ok=%v body=%x", ok, body)
		}
	})
}

// FuzzAcceptedSuccessBody feeds arbitrary bytes to the fixed-offset
// reply fast path and checks it agrees exactly with the generic
// ReplyHeader.Marshal walker: same accept/reject decision on the
// accepted-success shape, same body offset.
func FuzzAcceptedSuccessBody(f *testing.F) {
	ok := ReplyHeader{XID: 1, Stat: MsgAccepted, Verf: None(), AcceptStat: Success}
	bs := xdr.NewBufEncode(nil)
	if err := ok.Marshal(xdr.NewEncoder(bs)); err != nil {
		f.Fatal(err)
	}
	f.Add(append(append([]byte(nil), bs.Buffer()...), 1, 2, 3, 4))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 1}) // xid + REPLY, then truncated

	f.Fuzz(func(t *testing.T, data []byte) {
		body, fastOK := AcceptedSuccessBody(data)

		var rh ReplyHeader
		dec := xdr.NewDecoder(xdr.NewMemDecode(data))
		genErr := rh.Marshal(dec)
		genOK := genErr == nil && rh.Stat == MsgAccepted && rh.AcceptStat == Success

		if fastOK != genOK {
			t.Fatalf("fast=%v generic=%v (err %v, header %+v) on %x", fastOK, genOK, genErr, rh, data)
		}
		if fastOK && len(data)-len(body) != dec.Pos() {
			t.Fatalf("body offset %d, generic walker stopped at %d on %x",
				len(data)-len(body), dec.Pos(), data)
		}
	})
}

// FuzzCallBody is the call-side accept-set differential: the
// fixed-offset fast parse must accept exactly the messages the generic
// CallHeader walker accepts, agree on the routing fields, and hand back
// the argument bytes at exactly the walker's stop position. This is
// what lets the server's fused dispatch skip the walker without
// changing which requests it serves.
func FuzzCallBody(f *testing.F) {
	seed := CallHeader{
		XID: 7, Prog: 0x20000099, Vers: 1, Proc: 3,
		Cred: OpaqueAuth{Flavor: AuthSys, Body: []byte{1, 2, 3, 4}},
		Verf: None(),
	}
	bs := xdr.NewBufEncode(nil)
	if err := seed.Marshal(xdr.NewEncoder(bs)); err != nil {
		f.Fatal(err)
	}
	f.Add(append(append([]byte(nil), bs.Buffer()...), 9, 9, 9, 9))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 0}) // xid + CALL, then truncated

	f.Fuzz(func(t *testing.T, data []byte) {
		xid, prog, vers, proc, body, fastOK := CallBody(data)

		var h CallHeader
		dec := xdr.NewDecoder(xdr.NewMemDecode(data))
		genOK := h.Marshal(dec) == nil

		if fastOK != genOK {
			t.Fatalf("fast=%v generic=%v on %x", fastOK, genOK, data)
		}
		if !fastOK {
			return
		}
		if xid != h.XID || prog != h.Prog || vers != h.Vers || proc != h.Proc {
			t.Fatalf("routing mismatch: fast (%d %d %d %d) generic (%d %d %d %d) on %x",
				xid, prog, vers, proc, h.XID, h.Prog, h.Vers, h.Proc, data)
		}
		if len(data)-len(body) != dec.Pos() {
			t.Fatalf("body offset %d, generic walker stopped at %d on %x",
				len(data)-len(body), dec.Pos(), data)
		}
	})
}

func FuzzDecodeCallHeader(f *testing.F) {
	seed := CallHeader{
		XID: 7, Prog: 0x20000099, Vers: 1, Proc: 3,
		Cred: OpaqueAuth{Flavor: AuthSys, Body: []byte{1, 2, 3, 4}},
		Verf: None(),
	}
	bs := xdr.NewBufEncode(nil)
	if err := seed.Marshal(xdr.NewEncoder(bs)); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), bs.Buffer()...))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 0}) // xid + CALL, then truncated

	f.Fuzz(func(t *testing.T, data []byte) {
		var h CallHeader
		if err := h.Marshal(xdr.NewDecoder(xdr.NewMemDecode(data))); err != nil {
			return // rejected input is fine; panics and hangs are the bugs
		}
		out := xdr.NewBufEncode(nil)
		if err := h.Marshal(xdr.NewEncoder(out)); err != nil {
			t.Fatalf("decoded header does not re-encode: %v (%+v)", err, h)
		}
		var h2 CallHeader
		if err := h2.Marshal(xdr.NewDecoder(xdr.NewMemDecode(out.Buffer()))); err != nil {
			t.Fatalf("re-encoded header does not decode: %v (%+v)", err, h)
		}
		if h2.XID != h.XID || h2.Prog != h.Prog || h2.Vers != h.Vers || h2.Proc != h.Proc ||
			h2.Cred.Flavor != h.Cred.Flavor || !bytes.Equal(h2.Cred.Body, h.Cred.Body) ||
			h2.Verf.Flavor != h.Verf.Flavor || !bytes.Equal(h2.Verf.Body, h.Verf.Body) {
			t.Fatalf("round trip changed the header:\n was %+v\n now %+v", h, h2)
		}
	})
}
