// Package rpcmsg implements the ONC RPC message protocol of RFC 1057: the
// call and reply headers, accept/reject statuses, and authentication
// material that frame every Sun RPC exchange.
//
// The package is transport-agnostic: messages marshal against an xdr.XDR
// handle, so the same code serves UDP datagrams and TCP record streams.
//
// In the five-layer specialization stack (see DESIGN.md) this is layer
// 2, the message layer: it sits on the internal/xdr encoding layer and
// supplies the header templates that internal/client, internal/server,
// and the fused whole-call plans in internal/wire specialize against.
package rpcmsg

import (
	"errors"
	"fmt"

	"specrpc/internal/xdr"
)

// Version is the RPC protocol version this package speaks (RPCVERS).
const Version = 2

// MsgType discriminates the two top-level message bodies.
type MsgType int32

// RPC message types (msg_type).
const (
	Call  MsgType = 0
	Reply MsgType = 1
)

// ReplyStat discriminates accepted from rejected replies.
type ReplyStat int32

// Reply statuses (reply_stat).
const (
	MsgAccepted ReplyStat = 0
	MsgDenied   ReplyStat = 1
)

// AcceptStat reports the outcome of an accepted call (accept_stat).
type AcceptStat int32

// Accepted-reply statuses.
const (
	Success      AcceptStat = 0 // RPC executed successfully
	ProgUnavail  AcceptStat = 1 // remote has not exported the program
	ProgMismatch AcceptStat = 2 // remote cannot support this version
	ProcUnavail  AcceptStat = 3 // program cannot support this procedure
	GarbageArgs  AcceptStat = 4 // arguments failed to decode
	SystemErr    AcceptStat = 5 // server internal error
)

// String returns the RFC name of the status.
func (s AcceptStat) String() string {
	switch s {
	case Success:
		return "SUCCESS"
	case ProgUnavail:
		return "PROG_UNAVAIL"
	case ProgMismatch:
		return "PROG_MISMATCH"
	case ProcUnavail:
		return "PROC_UNAVAIL"
	case GarbageArgs:
		return "GARBAGE_ARGS"
	case SystemErr:
		return "SYSTEM_ERR"
	default:
		return fmt.Sprintf("accept_stat(%d)", int32(s))
	}
}

// RejectStat reports why a call was rejected (reject_stat).
type RejectStat int32

// Rejected-reply statuses.
const (
	RPCMismatch RejectStat = 0 // RPC version number != 2
	AuthError   RejectStat = 1 // authentication failed
)

// AuthStat details an authentication failure (auth_stat).
type AuthStat int32

// Authentication failure reasons.
const (
	AuthBadCred      AuthStat = 1
	AuthRejectedCred AuthStat = 2
	AuthBadVerf      AuthStat = 3
	AuthRejectedVerf AuthStat = 4
	AuthTooWeak      AuthStat = 5
)

// AuthFlavor identifies a credential scheme.
type AuthFlavor int32

// Authentication flavors.
const (
	AuthNone  AuthFlavor = 0 // AUTH_NULL
	AuthSys   AuthFlavor = 1 // AUTH_UNIX / AUTH_SYS
	AuthShort AuthFlavor = 2
)

// MaxAuthBytes bounds an opaque_auth body (RFC 1057 fixes it at 400).
const MaxAuthBytes = 400

// Errors surfaced while interpreting messages.
var (
	// ErrBadMsgType reports a message that is neither call nor reply.
	ErrBadMsgType = errors.New("rpcmsg: invalid message type")
	// ErrRPCVersion reports a call whose rpcvers is not 2.
	ErrRPCVersion = errors.New("rpcmsg: RPC version mismatch")
	// ErrAuthTooBig reports an auth body above MaxAuthBytes.
	ErrAuthTooBig = errors.New("rpcmsg: auth body exceeds 400 bytes")
)

// OpaqueAuth is the flavor-tagged blob attached to every call (credential
// and verifier) and every accepted reply (verifier).
type OpaqueAuth struct {
	Flavor AuthFlavor
	Body   []byte
}

// None is the empty AUTH_NULL blob.
func None() OpaqueAuth { return OpaqueAuth{Flavor: AuthNone} }

// Marshal encodes or decodes the blob against x.
func (a *OpaqueAuth) Marshal(x *xdr.XDR) error {
	f := int32(a.Flavor)
	if err := x.Enum(&f); err != nil {
		return fmt.Errorf("auth flavor: %w", err)
	}
	a.Flavor = AuthFlavor(f)
	if err := x.Bytes(&a.Body, MaxAuthBytes); err != nil {
		if errors.Is(err, xdr.ErrTooBig) {
			return ErrAuthTooBig
		}
		return fmt.Errorf("auth body: %w", err)
	}
	return nil
}

// SysCred is the AUTH_SYS credential body (authsys_parms): the classic
// UNIX identity sent in clear.
type SysCred struct {
	Stamp       uint32
	MachineName string
	UID         uint32
	GID         uint32
	GIDs        []uint32
}

// MaxMachineName bounds the machinename field per RFC 1057.
const MaxMachineName = 255

// MaxGroups bounds the supplementary group list per RFC 1057.
const MaxGroups = 16

// Marshal encodes or decodes the credential body.
func (c *SysCred) Marshal(x *xdr.XDR) error {
	if err := x.Uint32(&c.Stamp); err != nil {
		return err
	}
	if err := x.String(&c.MachineName, MaxMachineName); err != nil {
		return err
	}
	if err := x.Uint32(&c.UID); err != nil {
		return err
	}
	if err := x.Uint32(&c.GID); err != nil {
		return err
	}
	return xdr.Array(x, &c.GIDs, MaxGroups, (*xdr.XDR).Uint32)
}

// Encode packs the credential into an OpaqueAuth ready to attach to a call.
func (c *SysCred) Encode() (OpaqueAuth, error) {
	buf := make([]byte, 4+4+MaxMachineName+4+4+4+4+4*MaxGroups)
	m := xdr.NewMemEncode(buf)
	if err := c.Marshal(xdr.NewEncoder(m)); err != nil {
		return OpaqueAuth{}, fmt.Errorf("encode AUTH_SYS cred: %w", err)
	}
	return OpaqueAuth{Flavor: AuthSys, Body: append([]byte(nil), m.Buffer()...)}, nil
}

// DecodeSysCred unpacks an AUTH_SYS credential body.
func DecodeSysCred(a OpaqueAuth) (*SysCred, error) {
	if a.Flavor != AuthSys {
		return nil, fmt.Errorf("rpcmsg: flavor %d is not AUTH_SYS", a.Flavor)
	}
	var c SysCred
	if err := c.Marshal(xdr.NewDecoder(xdr.NewMemDecode(a.Body))); err != nil {
		return nil, fmt.Errorf("decode AUTH_SYS cred: %w", err)
	}
	return &c, nil
}

// PeekXID extracts the leading transaction id of a marshaled call or
// reply without building a decoder. Both the client demultiplexer and the
// server duplicate-request cache route messages on the XID before any
// header decoding happens, so this stays on the hot path.
//
//specrpc:hotpath
func PeekXID(b []byte) (uint32, bool) {
	if len(b) < 4 {
		return 0, false
	}
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]), true
}

// CallHeader is the fixed prefix of a call message: everything up to (not
// including) the procedure arguments. Marshaling it is the "write
// procedure identifier" step of the paper's Figure 1 trace.
type CallHeader struct {
	XID  uint32
	Prog uint32
	Vers uint32
	Proc uint32
	Cred OpaqueAuth
	Verf OpaqueAuth
}

// Marshal encodes or decodes the header. On decode it validates the
// message type and RPC version, returning ErrBadMsgType or ErrRPCVersion.
func (c *CallHeader) Marshal(x *xdr.XDR) error {
	if err := x.Uint32(&c.XID); err != nil {
		return fmt.Errorf("xid: %w", err)
	}
	mtype := int32(Call)
	if err := x.Enum(&mtype); err != nil {
		return fmt.Errorf("msg type: %w", err)
	}
	if MsgType(mtype) != Call {
		return ErrBadMsgType
	}
	rpcvers := uint32(Version)
	if err := x.Uint32(&rpcvers); err != nil {
		return fmt.Errorf("rpcvers: %w", err)
	}
	if rpcvers != Version {
		return ErrRPCVersion
	}
	if err := x.Uint32(&c.Prog); err != nil {
		return fmt.Errorf("prog: %w", err)
	}
	if err := x.Uint32(&c.Vers); err != nil {
		return fmt.Errorf("vers: %w", err)
	}
	if err := x.Uint32(&c.Proc); err != nil {
		return fmt.Errorf("proc: %w", err)
	}
	if err := c.Cred.Marshal(x); err != nil {
		return fmt.Errorf("cred: %w", err)
	}
	if err := c.Verf.Marshal(x); err != nil {
		return fmt.Errorf("verf: %w", err)
	}
	return nil
}

// MismatchInfo carries the version range of a PROG_MISMATCH or
// RPC_MISMATCH reply.
type MismatchInfo struct {
	Low  uint32
	High uint32
}

// ReplyHeader is a decoded reply up to (not including) the results: the
// union of accepted and rejected bodies. After DecodeReplyHeader returns
// with Stat == MsgAccepted and AcceptStat == Success, the caller decodes
// the results from the same stream.
type ReplyHeader struct {
	XID        uint32
	Stat       ReplyStat
	Verf       OpaqueAuth   // accepted only
	AcceptStat AcceptStat   // accepted only
	RejectStat RejectStat   // denied only
	AuthStat   AuthStat     // denied + AuthError only
	Mismatch   MismatchInfo // PROG_MISMATCH / RPC_MISMATCH only
}

// Marshal encodes or decodes a reply header against x.
func (r *ReplyHeader) Marshal(x *xdr.XDR) error {
	if err := x.Uint32(&r.XID); err != nil {
		return fmt.Errorf("xid: %w", err)
	}
	mtype := int32(Reply)
	if err := x.Enum(&mtype); err != nil {
		return fmt.Errorf("msg type: %w", err)
	}
	if MsgType(mtype) != Reply {
		return ErrBadMsgType
	}
	stat := int32(r.Stat)
	if err := x.Enum(&stat); err != nil {
		return fmt.Errorf("reply stat: %w", err)
	}
	r.Stat = ReplyStat(stat)
	switch r.Stat {
	case MsgAccepted:
		if err := r.Verf.Marshal(x); err != nil {
			return fmt.Errorf("verf: %w", err)
		}
		astat := int32(r.AcceptStat)
		if err := x.Enum(&astat); err != nil {
			return fmt.Errorf("accept stat: %w", err)
		}
		r.AcceptStat = AcceptStat(astat)
		if r.AcceptStat == ProgMismatch {
			if err := x.Uint32(&r.Mismatch.Low); err != nil {
				return err
			}
			if err := x.Uint32(&r.Mismatch.High); err != nil {
				return err
			}
		}
		return nil
	case MsgDenied:
		rstat := int32(r.RejectStat)
		if err := x.Enum(&rstat); err != nil {
			return fmt.Errorf("reject stat: %w", err)
		}
		r.RejectStat = RejectStat(rstat)
		switch r.RejectStat {
		case RPCMismatch:
			if err := x.Uint32(&r.Mismatch.Low); err != nil {
				return err
			}
			return x.Uint32(&r.Mismatch.High)
		case AuthError:
			astat := int32(r.AuthStat)
			if err := x.Enum(&astat); err != nil {
				return err
			}
			r.AuthStat = AuthStat(astat)
			return nil
		default:
			return fmt.Errorf("rpcmsg: bad reject stat %d", rstat)
		}
	default:
		return fmt.Errorf("rpcmsg: bad reply stat %d", stat)
	}
}

// AcceptedReply returns a success reply header echoing xid.
func AcceptedReply(xid uint32) ReplyHeader {
	return ReplyHeader{XID: xid, Stat: MsgAccepted, Verf: None(), AcceptStat: Success}
}

// ErrorReply returns an accepted-but-failed reply header with the given
// status (e.g. ProcUnavail, GarbageArgs).
func ErrorReply(xid uint32, stat AcceptStat) ReplyHeader {
	return ReplyHeader{XID: xid, Stat: MsgAccepted, Verf: None(), AcceptStat: stat}
}

// DeniedReply returns an auth-rejection reply header.
func DeniedReply(xid uint32, stat AuthStat) ReplyHeader {
	return ReplyHeader{XID: xid, Stat: MsgDenied, RejectStat: AuthError, AuthStat: stat}
}
