package rpcmsg

import (
	"errors"
	"fmt"

	"specrpc/internal/xdr"
)

// This file is the header counterpart of the wire-plan specialization:
// everything in a call or reply header except the XID and the procedure
// number is constant per client (program, version, credential, verifier)
// or per server (the accepted-success status with its verifier), so the
// generic interpretive encoder re-derives the same bytes on every call.
// A template folds those constants into one precompiled byte string with
// fixed patch offsets, turning header marshaling into a single copy plus
// one or two 4-byte stores — the paper's partial-evaluation move applied
// to the RPC message layer instead of the argument codecs.
//
// Templates are compiled *through* the generic marshalers, so their
// bytes are identical to the interpretive path by construction; the
// sentinel check below and the differential fuzz tests keep that true if
// the generic marshalers ever change.

// Fixed byte offsets of the per-call fields inside a marshaled call
// header (RFC 1057 fixes the leading layout: xid, msg_type, rpcvers,
// prog, vers, proc — six 4-byte words).
const (
	callXIDOffset  = 0
	callProcOffset = 20
)

// CallXIDOffset and ReplyXIDOffset are the byte offsets of the
// transaction id inside a marshaled call and reply message: zero for
// both, as RFC 1057 leads every message with the XID (which is also what
// makes PeekXID possible). Exported so fused whole-message codecs can
// stamp the XID into a precompiled image without re-deriving the layout.
const (
	CallXIDOffset  = callXIDOffset
	ReplyXIDOffset = 0
)

// errTemplateDrift reports that the generic marshaler no longer places
// the patchable fields at their RFC offsets — a programming error caught
// at template-compile time, never on the wire path.
var errTemplateDrift = errors.New("rpcmsg: template offsets drifted from generic marshaler")

// templateSentinel is an arbitrary bit pattern planted in the patchable
// fields while compiling a template, then located and zeroed. Compiling
// through the generic marshaler and verifying the sentinels makes the
// template byte-identical to the interpretive path by construction.
const templateSentinel = 0x5CA1AB1E

// CallTemplate is a precompiled call header for one (prog, vers, cred,
// verf) tuple: the constant bytes of every call a client will ever send,
// with the XID and procedure number patched per call at fixed offsets.
// Templates are immutable and safe for concurrent use.
type CallTemplate struct {
	buf []byte
}

// NewCallTemplate compiles the header template. It fails only on
// credential or verifier material the generic encoder also rejects
// (bodies above MaxAuthBytes), so callers can fall back to the
// interpretive path on error and remain exactly as capable.
func NewCallTemplate(prog, vers uint32, cred, verf OpaqueAuth) (*CallTemplate, error) {
	hdr := CallHeader{
		XID: templateSentinel, Prog: prog, Vers: vers, Proc: templateSentinel,
		Cred: cred, Verf: verf,
	}
	bs := xdr.NewBufEncode(nil)
	if err := hdr.Marshal(xdr.NewEncoder(bs)); err != nil {
		return nil, fmt.Errorf("rpcmsg: compile call template: %w", err)
	}
	buf := append([]byte(nil), bs.Buffer()...)
	if len(buf) < callProcOffset+4 ||
		be32(buf[callXIDOffset:]) != templateSentinel ||
		be32(buf[callProcOffset:]) != templateSentinel {
		return nil, errTemplateDrift
	}
	put32(buf[callXIDOffset:], 0)
	put32(buf[callProcOffset:], 0)
	return &CallTemplate{buf: buf}, nil
}

// Len reports the size of the compiled header in bytes.
func (t *CallTemplate) Len() int { return len(t.buf) }

// AppendCall appends the header for (xid, proc) to dst and returns the
// extended slice: one copy of the constant bytes plus two 4-byte stores,
// byte-identical to CallHeader.Marshal on the same fields.
//
//specrpc:hotpath
func (t *CallTemplate) AppendCall(dst []byte, xid, proc uint32) []byte {
	base := len(dst)
	dst = append(dst, t.buf...)
	put32(dst[base+callXIDOffset:], xid)
	put32(dst[base+callProcOffset:], proc)
	return dst
}

// ReplyTemplate is a precompiled accepted-success reply header for one
// verifier: the constant prefix of every healthy reply a server sends,
// with only the XID patched per call. Immutable and safe for concurrent
// use.
type ReplyTemplate struct {
	buf []byte
}

// NewReplyTemplate compiles the template for an accepted SUCCESS reply
// carrying verf. It fails only on verifier material the generic encoder
// also rejects.
func NewReplyTemplate(verf OpaqueAuth) (*ReplyTemplate, error) {
	rh := ReplyHeader{XID: templateSentinel, Stat: MsgAccepted, Verf: verf, AcceptStat: Success}
	bs := xdr.NewBufEncode(nil)
	if err := rh.Marshal(xdr.NewEncoder(bs)); err != nil {
		return nil, fmt.Errorf("rpcmsg: compile reply template: %w", err)
	}
	buf := append([]byte(nil), bs.Buffer()...)
	if len(buf) < 4 || be32(buf) != templateSentinel {
		return nil, errTemplateDrift
	}
	put32(buf, 0)
	return &ReplyTemplate{buf: buf}, nil
}

// MustReplyTemplate is NewReplyTemplate panicking on error, for
// package-level templates over static verifiers.
func MustReplyTemplate(verf OpaqueAuth) *ReplyTemplate {
	t, err := NewReplyTemplate(verf)
	if err != nil {
		panic(err)
	}
	return t
}

// Len reports the size of the compiled header in bytes.
func (t *ReplyTemplate) Len() int { return len(t.buf) }

// AppendReply appends the success header for xid to dst and returns the
// extended slice, byte-identical to AcceptedReply(xid).Marshal.
//
//specrpc:hotpath
func (t *ReplyTemplate) AppendReply(dst []byte, xid uint32) []byte {
	base := len(dst)
	dst = append(dst, t.buf...)
	put32(dst[base:], xid)
	return dst
}

// CopyTo writes the success header for xid into dst, which must be
// exactly Len() bytes (e.g. a window reserved with BufStream.Extend).
//
//specrpc:hotpath
func (t *ReplyTemplate) CopyTo(dst []byte, xid uint32) {
	copy(dst, t.buf)
	put32(dst, xid)
}

// AcceptedSuccessBody is the decode-side counterpart of ReplyTemplate:
// a fixed-offset test for the overwhelmingly common reply shape — an
// accepted SUCCESS with a verifier within bounds — returning the results
// body that follows the header. Anything else (errors, denials,
// truncated or oversized headers) reports false, and the caller falls
// back to the generic ReplyHeader.Marshal walker; the two paths accept
// exactly the same inputs on this shape (fuzz-asserted), the fast one
// just skips the interpretive dispatch.
//
//specrpc:hotpath
func AcceptedSuccessBody(b []byte) ([]byte, bool) {
	// Fixed prefix: xid, msg_type, reply_stat, verf flavor, verf length —
	// five words — then the verf body (padded) and the accept_stat word.
	if len(b) < 24 {
		return nil, false
	}
	if be32(b[4:]) != uint32(Reply) || be32(b[8:]) != uint32(MsgAccepted) {
		return nil, false
	}
	vlen := be32(b[16:])
	if vlen > MaxAuthBytes {
		return nil, false
	}
	off := 20 + int(vlen) + xdr.Pad(int(vlen))
	if off+4 > len(b) {
		return nil, false
	}
	if be32(b[off:]) != uint32(Success) {
		return nil, false
	}
	return b[off+4:], true
}

// CallBody is the call-side counterpart of AcceptedSuccessBody: a
// fixed-offset parse of a marshaled call message, returning the routing
// triple and the argument bytes that follow the header. It accepts
// exactly the messages CallHeader.Marshal accepts (fuzz-asserted) — any
// RPC-version-2 call whose credential and verifier are within
// MaxAuthBytes — and reports false for anything else, sending the caller
// to the generic interpretive walk. This is what lets a server's
// per-procedure dispatch table skip the header walker entirely on the
// hot path.
//
//specrpc:hotpath
func CallBody(b []byte) (xid, prog, vers, proc uint32, body []byte, ok bool) {
	// Fixed prefix: xid, msg_type, rpcvers, prog, vers, proc, cred
	// flavor, cred length — eight words — then the cred body (padded),
	// the verf flavor and length words, and the verf body (padded).
	if len(b) < 32 {
		return 0, 0, 0, 0, nil, false
	}
	if be32(b[4:]) != uint32(Call) || be32(b[8:]) != Version {
		return 0, 0, 0, 0, nil, false
	}
	clen := be32(b[28:])
	if clen > MaxAuthBytes {
		return 0, 0, 0, 0, nil, false
	}
	off := 32 + int(clen) + xdr.Pad(int(clen))
	if off+8 > len(b) {
		return 0, 0, 0, 0, nil, false
	}
	vlen := be32(b[off+4:])
	if vlen > MaxAuthBytes {
		return 0, 0, 0, 0, nil, false
	}
	off += 8 + int(vlen) + xdr.Pad(int(vlen))
	if off > len(b) {
		return 0, 0, 0, 0, nil, false
	}
	return be32(b), be32(b[12:]), be32(b[16:]), be32(b[20:]), b[off:], true
}

func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func put32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}
