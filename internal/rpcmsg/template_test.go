package rpcmsg

import (
	"bytes"
	"testing"

	"specrpc/internal/xdr"
)

// genericCallBytes marshals a call header through the interpretive
// encoder — the reference the templates must match byte for byte.
func genericCallBytes(t *testing.T, h CallHeader) []byte {
	t.Helper()
	bs := xdr.NewBufEncode(nil)
	if err := h.Marshal(xdr.NewEncoder(bs)); err != nil {
		t.Fatalf("generic marshal: %v", err)
	}
	return append([]byte(nil), bs.Buffer()...)
}

func genericReplyBytes(t *testing.T, rh ReplyHeader) []byte {
	t.Helper()
	bs := xdr.NewBufEncode(nil)
	if err := rh.Marshal(xdr.NewEncoder(bs)); err != nil {
		t.Fatalf("generic marshal: %v", err)
	}
	return append([]byte(nil), bs.Buffer()...)
}

// TestCallTemplateMatchesGeneric pins the differential property across
// representative auth material: template bytes == generic bytes.
func TestCallTemplateMatchesGeneric(t *testing.T) {
	sysCred, err := (&SysCred{Stamp: 9, MachineName: "ipx", UID: 10, GID: 20,
		GIDs: []uint32{20, 33}}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	auths := []struct {
		name       string
		cred, verf OpaqueAuth
	}{
		{"null", None(), None()},
		{"sys", sysCred, None()},
		{"odd-body", OpaqueAuth{Flavor: AuthShort, Body: []byte{1, 2, 3}}, None()},
		{"both", sysCred, OpaqueAuth{Flavor: AuthShort, Body: []byte{0xFF}}},
	}
	for _, a := range auths {
		tmpl, err := NewCallTemplate(0x20000099, 3, a.cred, a.verf)
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		for _, pair := range [][2]uint32{{0, 0}, {1, 2}, {0xFFFFFFFF, 7}, {0x5CA1AB1E, 0x5CA1AB1E}} {
			xid, proc := pair[0], pair[1]
			want := genericCallBytes(t, CallHeader{
				XID: xid, Prog: 0x20000099, Vers: 3, Proc: proc,
				Cred: a.cred, Verf: a.verf,
			})
			got := tmpl.AppendCall(nil, xid, proc)
			if !bytes.Equal(got, want) {
				t.Errorf("%s xid=%d proc=%d:\n got %x\nwant %x", a.name, xid, proc, got, want)
			}
			if tmpl.Len() != len(got) {
				t.Errorf("%s: Len() = %d, appended %d", a.name, tmpl.Len(), len(got))
			}
		}
		// Appending after existing content must not disturb it.
		prefix := []byte{9, 8, 7}
		out := tmpl.AppendCall(append([]byte(nil), prefix...), 5, 6)
		if !bytes.Equal(out[:3], prefix) {
			t.Errorf("%s: prefix clobbered: %x", a.name, out[:3])
		}
	}
}

// TestCallTemplateRejectsOversizedAuth: the template compiler must fail
// exactly where the generic encoder fails, so a nil-template fallback
// loses no capability.
func TestCallTemplateRejectsOversizedAuth(t *testing.T) {
	big := OpaqueAuth{Flavor: AuthSys, Body: make([]byte, MaxAuthBytes+1)}
	if _, err := NewCallTemplate(1, 1, big, None()); err == nil {
		t.Fatal("oversized cred accepted")
	}
	if _, err := NewReplyTemplate(big); err == nil {
		t.Fatal("oversized verf accepted")
	}
}

// TestReplyTemplateMatchesGeneric covers AppendReply and CopyTo against
// the generic success-reply encoder.
func TestReplyTemplateMatchesGeneric(t *testing.T) {
	verfs := []OpaqueAuth{None(), {Flavor: AuthShort, Body: []byte{1, 2, 3, 4, 5}}}
	for _, verf := range verfs {
		tmpl, err := NewReplyTemplate(verf)
		if err != nil {
			t.Fatal(err)
		}
		for _, xid := range []uint32{0, 1, 77, 0xDEADBEEF} {
			want := genericReplyBytes(t, ReplyHeader{
				XID: xid, Stat: MsgAccepted, Verf: verf, AcceptStat: Success,
			})
			got := tmpl.AppendReply(nil, xid)
			if !bytes.Equal(got, want) {
				t.Errorf("xid=%d:\n got %x\nwant %x", xid, got, want)
			}
			dst := make([]byte, tmpl.Len())
			tmpl.CopyTo(dst, xid)
			if !bytes.Equal(dst, want) {
				t.Errorf("CopyTo xid=%d:\n got %x\nwant %x", xid, dst, want)
			}
		}
	}
}

// TestAcceptedSuccessBody checks the fixed-offset fast path on crafted
// replies: it must accept exactly the accepted-success shape and report
// the same body offset the generic walker reaches.
func TestAcceptedSuccessBody(t *testing.T) {
	body := []byte{0, 0, 0, 42}
	success := func(verf OpaqueAuth) []byte {
		raw := genericReplyBytes(t, ReplyHeader{XID: 3, Stat: MsgAccepted, Verf: verf, AcceptStat: Success})
		return append(raw, body...)
	}

	for _, verf := range []OpaqueAuth{None(), {Flavor: AuthShort, Body: []byte{1, 2, 3}}} {
		got, ok := AcceptedSuccessBody(success(verf))
		if !ok || !bytes.Equal(got, body) {
			t.Errorf("verf %+v: ok=%v body=%x", verf, ok, got)
		}
	}

	rejects := map[string][]byte{
		"prog-unavail": genericReplyBytes(t, ErrorReply(3, ProgUnavail)),
		"system-err":   genericReplyBytes(t, ErrorReply(3, SystemErr)),
		"denied":       genericReplyBytes(t, DeniedReply(3, AuthBadCred)),
		"truncated":    genericReplyBytes(t, AcceptedReply(3))[:20],
		"short":        {0, 0, 0, 1},
		"call-msg": genericCallBytes(t, CallHeader{XID: 3, Prog: 1, Vers: 1, Proc: 1,
			Cred: None(), Verf: None()}),
	}
	for name, raw := range rejects {
		if _, ok := AcceptedSuccessBody(raw); ok {
			t.Errorf("%s: fast path accepted %x", name, raw)
		}
	}

	// Oversized verifier length: both paths must reject.
	raw := success(None())
	raw[16], raw[17], raw[18], raw[19] = 0, 0, 0xFF, 0xFF
	if _, ok := AcceptedSuccessBody(raw); ok {
		t.Error("fast path accepted an oversized verifier length")
	}
}
