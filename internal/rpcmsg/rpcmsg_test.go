package rpcmsg

import (
	"errors"
	"testing"
	"testing/quick"

	"specrpc/internal/xdr"
)

func TestCallHeaderRoundTrip(t *testing.T) {
	in := CallHeader{
		XID:  0xcafebabe,
		Prog: 200100,
		Vers: 3,
		Proc: 7,
		Cred: None(),
		Verf: None(),
	}
	buf := make([]byte, 256)
	m := xdr.NewMemEncode(buf)
	if err := in.Marshal(xdr.NewEncoder(m)); err != nil {
		t.Fatalf("encode: %v", err)
	}
	// Header with empty auth = 10 words.
	if got := len(m.Buffer()); got != 40 {
		t.Fatalf("wire length = %d, want 40", got)
	}
	var out CallHeader
	if err := out.Marshal(xdr.NewDecoder(xdr.NewMemDecode(m.Buffer()))); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.XID != in.XID || out.Prog != in.Prog || out.Vers != in.Vers || out.Proc != in.Proc {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestCallHeaderQuick(t *testing.T) {
	f := func(xid, prog, vers, proc uint32) bool {
		in := CallHeader{XID: xid, Prog: prog, Vers: vers, Proc: proc, Cred: None(), Verf: None()}
		buf := make([]byte, 256)
		m := xdr.NewMemEncode(buf)
		if err := in.Marshal(xdr.NewEncoder(m)); err != nil {
			return false
		}
		var out CallHeader
		if err := out.Marshal(xdr.NewDecoder(xdr.NewMemDecode(m.Buffer()))); err != nil {
			return false
		}
		return out.XID == xid && out.Prog == prog && out.Vers == vers && out.Proc == proc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCallHeaderRejectsReplyType(t *testing.T) {
	buf := make([]byte, 64)
	m := xdr.NewMemEncode(buf)
	x := xdr.NewEncoder(m)
	xid := uint32(1)
	if err := x.Uint32(&xid); err != nil {
		t.Fatal(err)
	}
	mtype := int32(Reply) // wrong type for a call
	if err := x.Enum(&mtype); err != nil {
		t.Fatal(err)
	}
	var out CallHeader
	err := out.Marshal(xdr.NewDecoder(xdr.NewMemDecode(m.Buffer())))
	if !errors.Is(err, ErrBadMsgType) {
		t.Fatalf("err = %v, want ErrBadMsgType", err)
	}
}

func TestCallHeaderRejectsBadVersion(t *testing.T) {
	buf := make([]byte, 64)
	m := xdr.NewMemEncode(buf)
	x := xdr.NewEncoder(m)
	words := []int32{9 /*xid*/, int32(Call), 3 /*rpcvers != 2*/, 1, 1, 1}
	for i := range words {
		if err := x.Long(&words[i]); err != nil {
			t.Fatal(err)
		}
	}
	var out CallHeader
	err := out.Marshal(xdr.NewDecoder(xdr.NewMemDecode(m.Buffer())))
	if !errors.Is(err, ErrRPCVersion) {
		t.Fatalf("err = %v, want ErrRPCVersion", err)
	}
}

func TestSysCredRoundTrip(t *testing.T) {
	in := SysCred{
		Stamp:       12345,
		MachineName: "node-17.cluster",
		UID:         501,
		GID:         100,
		GIDs:        []uint32{100, 101, 102},
	}
	blob, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if blob.Flavor != AuthSys {
		t.Fatalf("flavor = %d, want AUTH_SYS", blob.Flavor)
	}
	out, err := DecodeSysCred(blob)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stamp != in.Stamp || out.MachineName != in.MachineName ||
		out.UID != in.UID || out.GID != in.GID || len(out.GIDs) != 3 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestDecodeSysCredWrongFlavor(t *testing.T) {
	if _, err := DecodeSysCred(None()); err == nil {
		t.Fatal("expected error for AUTH_NULL blob")
	}
}

func TestSysCredTooManyGroups(t *testing.T) {
	in := SysCred{GIDs: make([]uint32, MaxGroups+1)}
	if _, err := in.Encode(); err == nil {
		t.Fatal("expected error for >16 groups")
	}
}

func TestReplyHeaderAcceptedRoundTrip(t *testing.T) {
	in := AcceptedReply(77)
	buf := make([]byte, 128)
	m := xdr.NewMemEncode(buf)
	if err := in.Marshal(xdr.NewEncoder(m)); err != nil {
		t.Fatal(err)
	}
	var out ReplyHeader
	if err := out.Marshal(xdr.NewDecoder(xdr.NewMemDecode(m.Buffer()))); err != nil {
		t.Fatal(err)
	}
	if out.XID != 77 || out.Stat != MsgAccepted || out.AcceptStat != Success {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestReplyHeaderErrorStatuses(t *testing.T) {
	for _, stat := range []AcceptStat{ProgUnavail, ProcUnavail, GarbageArgs, SystemErr} {
		in := ErrorReply(5, stat)
		buf := make([]byte, 128)
		m := xdr.NewMemEncode(buf)
		if err := in.Marshal(xdr.NewEncoder(m)); err != nil {
			t.Fatalf("%v: %v", stat, err)
		}
		var out ReplyHeader
		if err := out.Marshal(xdr.NewDecoder(xdr.NewMemDecode(m.Buffer()))); err != nil {
			t.Fatalf("%v: %v", stat, err)
		}
		if out.AcceptStat != stat {
			t.Fatalf("got %v, want %v", out.AcceptStat, stat)
		}
	}
}

func TestReplyHeaderProgMismatch(t *testing.T) {
	in := ErrorReply(5, ProgMismatch)
	in.Mismatch = MismatchInfo{Low: 2, High: 4}
	buf := make([]byte, 128)
	m := xdr.NewMemEncode(buf)
	if err := in.Marshal(xdr.NewEncoder(m)); err != nil {
		t.Fatal(err)
	}
	var out ReplyHeader
	if err := out.Marshal(xdr.NewDecoder(xdr.NewMemDecode(m.Buffer()))); err != nil {
		t.Fatal(err)
	}
	if out.Mismatch.Low != 2 || out.Mismatch.High != 4 {
		t.Fatalf("mismatch info = %+v", out.Mismatch)
	}
}

func TestReplyHeaderDenied(t *testing.T) {
	in := DeniedReply(9, AuthBadCred)
	buf := make([]byte, 128)
	m := xdr.NewMemEncode(buf)
	if err := in.Marshal(xdr.NewEncoder(m)); err != nil {
		t.Fatal(err)
	}
	var out ReplyHeader
	if err := out.Marshal(xdr.NewDecoder(xdr.NewMemDecode(m.Buffer()))); err != nil {
		t.Fatal(err)
	}
	if out.Stat != MsgDenied || out.RejectStat != AuthError || out.AuthStat != AuthBadCred {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestReplyHeaderRPCMismatch(t *testing.T) {
	in := ReplyHeader{XID: 3, Stat: MsgDenied, RejectStat: RPCMismatch,
		Mismatch: MismatchInfo{Low: 2, High: 2}}
	buf := make([]byte, 128)
	m := xdr.NewMemEncode(buf)
	if err := in.Marshal(xdr.NewEncoder(m)); err != nil {
		t.Fatal(err)
	}
	var out ReplyHeader
	if err := out.Marshal(xdr.NewDecoder(xdr.NewMemDecode(m.Buffer()))); err != nil {
		t.Fatal(err)
	}
	if out.RejectStat != RPCMismatch || out.Mismatch.Low != 2 || out.Mismatch.High != 2 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestAuthBodyTooBig(t *testing.T) {
	a := OpaqueAuth{Flavor: AuthSys, Body: make([]byte, MaxAuthBytes+1)}
	buf := make([]byte, 1024)
	err := a.Marshal(xdr.NewEncoder(xdr.NewMemEncode(buf)))
	if !errors.Is(err, ErrAuthTooBig) {
		t.Fatalf("err = %v, want ErrAuthTooBig", err)
	}
}

func TestAcceptStatString(t *testing.T) {
	if Success.String() != "SUCCESS" || ProcUnavail.String() != "PROC_UNAVAIL" {
		t.Fatal("unexpected status names")
	}
	if AcceptStat(42).String() != "accept_stat(42)" {
		t.Fatalf("got %q", AcceptStat(42).String())
	}
}

func TestPeekXID(t *testing.T) {
	h := CallHeader{XID: 0xdeadbeef, Prog: 1, Vers: 1, Proc: 1, Cred: None(), Verf: None()}
	buf := make([]byte, 256)
	m := xdr.NewMemEncode(buf)
	if err := h.Marshal(xdr.NewEncoder(m)); err != nil {
		t.Fatal(err)
	}
	xid, ok := PeekXID(m.Buffer())
	if !ok || xid != 0xdeadbeef {
		t.Fatalf("PeekXID = %#x, %v", xid, ok)
	}
	if _, ok := PeekXID([]byte{1, 2, 3}); ok {
		t.Fatal("PeekXID accepted a short message")
	}
}
