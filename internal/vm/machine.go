package vm

import (
	"fmt"
	"sort"

	"specrpc/internal/minic"
)

// ExternFn is a host-provided implementation of an extern function.
type ExternFn func(m *Machine, args []Value) Value

// Machine executes a compiled mini-C program.
type Machine struct {
	prog    *minic.Program
	funcs   map[string]*compiledFunc
	externs map[string]ExternFn
	layouts map[string]*Layout
	strings map[string]*Region

	// Cost accumulates execution metering; reset it between measurements.
	Cost Cost
}

// New compiles every function in p (which must already have passed
// minic.Check) and returns a machine ready to call them.
func New(p *minic.Program) (*Machine, error) {
	m := &Machine{
		prog:    p,
		funcs:   make(map[string]*compiledFunc),
		externs: make(map[string]ExternFn),
		layouts: make(map[string]*Layout),
		strings: make(map[string]*Region),
	}
	m.installBuiltins()
	// Deterministic compile order for reproducible error reporting.
	names := make([]string, 0, len(p.Funcs))
	for name := range p.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cf, err := m.compileFunc(p.Funcs[name])
		if err != nil {
			return nil, fmt.Errorf("vm: compile %s: %w", name, err)
		}
		m.funcs[name] = cf
	}
	return m, nil
}

// MustNew compiles p and panics on error; for programs embedded in the
// library whose validity is covered by tests.
func MustNew(p *minic.Program) *Machine {
	m, err := New(p)
	if err != nil {
		panic(err)
	}
	return m
}

// Extern registers (or overrides) the host implementation of an extern
// function, e.g. the dynamic network operations of the RPC substrate.
func (m *Machine) Extern(name string, fn ExternFn) { m.externs[name] = fn }

// ResetCost zeroes the meters.
func (m *Machine) ResetCost() { m.Cost = Cost{} }

// HasFunc reports whether name is a compiled function.
func (m *Machine) HasFunc(name string) bool {
	_, ok := m.funcs[name]
	return ok
}

// Call invokes a compiled function by name. Mini-C runtime failures
// (null dereference, bounds, missing function) return a *RuntimeError.
func (m *Machine) Call(name string, args ...Value) (result Value, err error) {
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(*RuntimeError); ok {
				result, err = Value{}, re
				return
			}
			panic(r)
		}
	}()
	result = m.call(name, args)
	return result, nil
}

func (m *Machine) call(name string, args []Value) Value {
	cf, ok := m.funcs[name]
	if !ok {
		if ext, ok := m.externs[name]; ok {
			m.Cost.Calls++
			return ext(m, args)
		}
		throw("call of unknown function %s", name)
	}
	if len(args) != len(cf.def.Params) {
		throw("%s expects %d args, got %d", name, len(cf.def.Params), len(args))
	}
	m.Cost.Calls++
	f := &frame{vals: make([]Value, cf.nslots)}
	for i, a := range args {
		if cf.paramRegions[i] {
			// Address-taken parameter: spill to a one-slot region.
			r := NewWords(cf.def.Params[i].Name, 1)
			r.Words[0] = a
			f.vals[i] = PtrVal(r, 0)
		} else {
			f.vals[i] = a
		}
	}
	ctrl, v := cf.body(m, f)
	if ctrl == ctrlReturn {
		return v
	}
	return VoidVal()
}

// Layout describes how a struct maps onto a word region.
type Layout struct {
	Struct *minic.Struct
	// Offsets[i] is the slot offset of field i.
	Offsets []int
	// Slots is the total region size.
	Slots int
}

// FieldOffset returns the slot of the named field.
func (l *Layout) FieldOffset(name string) int {
	i := l.Struct.FieldIndex(name)
	if i < 0 {
		return -1
	}
	return l.Offsets[i]
}

// Layout returns (computing on demand) the layout of a named struct.
func (m *Machine) Layout(name string) (*Layout, error) {
	if l, ok := m.layouts[name]; ok {
		return l, nil
	}
	s, ok := m.prog.Structs[name]
	if !ok {
		return nil, fmt.Errorf("vm: unknown struct %s", name)
	}
	l := &Layout{Struct: s, Offsets: make([]int, len(s.Fields))}
	off := 0
	for i, f := range s.Fields {
		l.Offsets[i] = off
		n, err := slotsOf(f.Type)
		if err != nil {
			return nil, fmt.Errorf("vm: struct %s field %s: %w", name, f.Name, err)
		}
		off += n
	}
	l.Slots = off
	m.layouts[name] = l
	return l, nil
}

// NewStruct allocates a word region sized for the named struct.
func (m *Machine) NewStruct(structName, regionName string) (*Region, error) {
	l, err := m.Layout(structName)
	if err != nil {
		return nil, err
	}
	return NewWords(regionName, l.Slots), nil
}

// slotsOf returns how many word slots a type occupies in a word region.
func slotsOf(t minic.Type) (int, error) {
	switch n := t.(type) {
	case *minic.Prim:
		if n.Kind == minic.Void {
			return 0, fmt.Errorf("void has no storage")
		}
		return 1, nil
	case *minic.Ptr:
		return 1, nil
	case *minic.Struct:
		total := 0
		for _, f := range n.Fields {
			k, err := slotsOf(f.Type)
			if err != nil {
				return 0, err
			}
			total += k
		}
		return total, nil
	case *minic.Array:
		if n.Elem.Equal(minic.TypeChar) {
			return 0, fmt.Errorf("char arrays are only supported as locals (byte regions)")
		}
		k, err := slotsOf(n.Elem)
		if err != nil {
			return 0, err
		}
		return n.Len * k, nil
	default:
		return 0, fmt.Errorf("unsupported type %s", t)
	}
}

// internString returns a byte region holding the literal plus NUL.
func (m *Machine) internString(s string) *Region {
	if r, ok := m.strings[s]; ok {
		return r
	}
	r := BytesRegion("str", append([]byte(s), 0))
	m.strings[s] = r
	return r
}

// ---------------------------------------------------------------------------
// Builtins: the byte-buffer micro-operations that stand in for the
// casted pointer stores of the original C (see the package comment of
// internal/minic).

func (m *Machine) installBuiltins() {
	m.externs["stlong"] = func(m *Machine, args []Value) Value {
		p := wantPtr(args[0], "stlong")
		b := wantBytes(p, 4, "stlong")
		v := uint32(args[1].I)
		b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
		m.Cost.MemBytes += 4
		m.Cost.Ops++
		return VoidVal()
	}
	m.externs["ldlong"] = func(m *Machine, args []Value) Value {
		p := wantPtr(args[0], "ldlong")
		b := wantBytes(p, 4, "ldlong")
		m.Cost.MemBytes += 4
		m.Cost.Ops++
		return IntVal(int64(int32(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]))))
	}
	m.externs["stbyte"] = func(m *Machine, args []Value) Value {
		p := wantPtr(args[0], "stbyte")
		b := wantBytes(p, 1, "stbyte")
		b[0] = byte(args[1].I)
		m.Cost.MemBytes++
		m.Cost.Ops++
		return VoidVal()
	}
	m.externs["ldbyte"] = func(m *Machine, args []Value) Value {
		p := wantPtr(args[0], "ldbyte")
		b := wantBytes(p, 1, "ldbyte")
		m.Cost.MemBytes++
		m.Cost.Ops++
		return IntVal(int64(b[0]))
	}
	m.externs["memcopy"] = func(m *Machine, args []Value) Value {
		n := int(args[2].I)
		if n < 0 {
			throw("memcopy: negative length %d", n)
		}
		dst := wantBytes(wantPtr(args[0], "memcopy"), n, "memcopy dst")
		src := wantBytes(wantPtr(args[1], "memcopy"), n, "memcopy src")
		copy(dst[:n], src[:n])
		m.Cost.MemBytes += 2 * int64(n)
		m.Cost.Ops++
		return VoidVal()
	}
	m.externs["bzero"] = func(m *Machine, args []Value) Value {
		n := int(args[1].I)
		if n < 0 {
			throw("bzero: negative length %d", n)
		}
		b := wantBytes(wantPtr(args[0], "bzero"), n, "bzero")
		for i := 0; i < n; i++ {
			b[i] = 0
		}
		m.Cost.MemBytes += int64(n)
		m.Cost.Ops++
		return VoidVal()
	}
	m.externs["htonl"] = func(m *Machine, args []Value) Value {
		// Big-endian wire conversion; the VM's abstract host is
		// big-endian (stlong already stores network order), so this is
		// the identity with one op of cost, exactly the SPARC macro.
		m.Cost.Ops++
		return IntVal(int64(int32(args[0].I)))
	}
	m.externs["ntohl"] = m.externs["htonl"]
}

func wantPtr(v Value, who string) Pointer {
	if v.Kind != KindPtr || v.P.Region == nil {
		throw("%s: not a valid pointer: %s", who, v)
	}
	return v.P
}

func wantBytes(p Pointer, n int, who string) []byte {
	if p.Region.Kind != RegionBytes {
		throw("%s: pointer %s+%d is not into byte memory", who, p.Region.Name, p.Off)
	}
	if p.Off < 0 || p.Off+n > len(p.Region.Bytes) {
		throw("%s: out of bounds: %s+%d..+%d (size %d)", who, p.Region.Name, p.Off, n, len(p.Region.Bytes))
	}
	return p.Region.Bytes[p.Off:]
}
