package vm

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"specrpc/internal/minic"
)

// mustMachine parses, checks, and compiles src.
func mustMachine(t *testing.T, src string) *Machine {
	t.Helper()
	p, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := minic.Check(p); err != nil {
		t.Fatalf("check: %v", err)
	}
	m, err := New(p)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

func callInt(t *testing.T, m *Machine, name string, args ...Value) int64 {
	t.Helper()
	v, err := m.Call(name, args...)
	if err != nil {
		t.Fatalf("call %s: %v", name, err)
	}
	if v.Kind != KindInt {
		t.Fatalf("call %s: result %s is not int", name, v)
	}
	return v.I
}

func TestArithmetic(t *testing.T) {
	m := mustMachine(t, `
int calc(int a, int b) { return (a + b) * 2 - a / b + a % b; }
int bits(int a, int b) { return ((a & b) | (a ^ b)) + (a << 2) + (b >> 1); }
int cmp(int a, int b) { return (a < b) + (a <= b) + (a > b)*10 + (a >= b)*10 + (a == b)*100 + (a != b); }
int logic(int a, int b) { return (a && b) + (a || b)*2 + !a*4; }
int neg(int a) { return -a + ~a; }
`)
	// (7+3)*2 - 7/3 + 7%3 = 20 - 2 + 1 = 19.
	if got := callInt(t, m, "calc", IntVal(7), IntVal(3)); got != 19 {
		t.Fatalf("calc = %d, want 19", got)
	}
	if got := callInt(t, m, "bits", IntVal(6), IntVal(3)); got != 6|3^0+(6&3)+24+1 && got != 32 {
		// ((6&3)|(6^3)) + (6<<2) + (3>>1) = (2|5) + 24 + 1 = 7+25 = 32
		t.Fatalf("bits = %d, want 32", got)
	}
	if got := callInt(t, m, "cmp", IntVal(2), IntVal(2)); got != 0+1+0+10+100+0 {
		t.Fatalf("cmp = %d, want 111", got)
	}
	if got := callInt(t, m, "logic", IntVal(0), IntVal(5)); got != 0+2+4 {
		t.Fatalf("logic = %d, want 6", got)
	}
	if got := callInt(t, m, "neg", IntVal(5)); got != -5-6 {
		t.Fatalf("neg = %d, want -11", got)
	}
}

func TestInt32Wraparound(t *testing.T) {
	m := mustMachine(t, `int f(int a) { return a * a; }`)
	// 100000^2 = 10^10 wraps as int32.
	big := int64(100000)
	want := int64(int32(big * big))
	if got := callInt(t, m, "f", IntVal(100000)); got != want {
		t.Fatalf("wrap = %d, want %d", got, want)
	}
}

func TestDivModByZero(t *testing.T) {
	m := mustMachine(t, `
int div(int a, int b) { return a / b; }
int mod(int a, int b) { return a % b; }
`)
	var re *RuntimeError
	if _, err := m.Call("div", IntVal(1), IntVal(0)); !errors.As(err, &re) {
		t.Fatalf("div err = %v", err)
	}
	if _, err := m.Call("mod", IntVal(1), IntVal(0)); !errors.As(err, &re) {
		t.Fatalf("mod err = %v", err)
	}
}

func TestControlFlow(t *testing.T) {
	m := mustMachine(t, `
int sumto(int n) {
    int s = 0;
    for (int i = 1; i <= n; i++) { s += i; }
    return s;
}
int collatz(int n) {
    int steps = 0;
    while (n != 1) {
        if (n % 2 == 0) { n = n / 2; } else { n = 3*n + 1; }
        steps++;
    }
    return steps;
}
int findfirst(int limit) {
    int i = 0;
    while (1) {
        i++;
        if (i % 7 == 0) { break; }
        if (i > limit) { return 0 - 1; }
        continue;
    }
    return i;
}
`)
	if got := callInt(t, m, "sumto", IntVal(100)); got != 5050 {
		t.Fatalf("sumto = %d", got)
	}
	if got := callInt(t, m, "collatz", IntVal(27)); got != 111 {
		t.Fatalf("collatz = %d, want 111", got)
	}
	if got := callInt(t, m, "findfirst", IntVal(100)); got != 7 {
		t.Fatalf("findfirst = %d", got)
	}
}

func TestShortCircuit(t *testing.T) {
	// The right operand of && must not run when the left is false:
	// here it would divide by zero.
	m := mustMachine(t, `
int f(int a, int b) { return a != 0 && 10 / a > b; }
int g(int a) { return a == 0 || 10 / a == 2; }
`)
	if got := callInt(t, m, "f", IntVal(0), IntVal(1)); got != 0 {
		t.Fatalf("f = %d", got)
	}
	if got := callInt(t, m, "g", IntVal(0)); got != 1 {
		t.Fatalf("g = %d", got)
	}
}

func TestPointersAndArrays(t *testing.T) {
	m := mustMachine(t, `
int sum(int* a, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s += a[i]; }
    return s;
}
int sumptr(int* a, int n) {
    int s = 0;
    int* p = a;
    while (n > 0) { s += *p; p++; n--; }
    return s;
}
int locals(void) {
    int arr[4];
    for (int i = 0; i < 4; i++) { arr[i] = i * i; }
    return sum(&arr[0], 4) + sum(arr, 4);
}
int swap(int* x, int* y) {
    int tmp = *x;
    *x = *y;
    *y = tmp;
    return *x;
}
int useswap(void) {
    int a = 1;
    int b = 2;
    swap(&a, &b);
    return a * 10 + b;
}
`)
	arr := NewWords("a", 5)
	for i := range arr.Words {
		arr.Words[i] = IntVal(int64(i + 1))
	}
	if got := callInt(t, m, "sum", PtrVal(arr, 0), IntVal(5)); got != 15 {
		t.Fatalf("sum = %d", got)
	}
	if got := callInt(t, m, "sumptr", PtrVal(arr, 0), IntVal(5)); got != 15 {
		t.Fatalf("sumptr = %d", got)
	}
	if got := callInt(t, m, "locals", nil...); got != 14+14 {
		t.Fatalf("locals = %d, want 28", got)
	}
	if got := callInt(t, m, "useswap", nil...); got != 21 {
		t.Fatalf("useswap = %d, want 21", got)
	}
}

func TestStructsAndFuncPtrs(t *testing.T) {
	m := mustMachine(t, `
struct ops { funcptr apply; int bias; };
struct item { int v; struct ops* o; };

int double_it(int x) { return 2 * x; }
int triple_it(int x) { return 3 * x; }

int run(struct item* it) {
    return it->o->apply(it->v) + it->o->bias;
}
int setup(struct item* it, struct ops* o, int which, int v) {
    if (which == 2) { o->apply = double_it; } else { o->apply = triple_it; }
    o->bias = 100;
    it->v = v;
    it->o = o;
    return run(it);
}
`)
	itemR, err := m.NewStruct("item", "it")
	if err != nil {
		t.Fatal(err)
	}
	opsR, err := m.NewStruct("ops", "ops")
	if err != nil {
		t.Fatal(err)
	}
	if got := callInt(t, m, "setup", PtrVal(itemR, 0), PtrVal(opsR, 0), IntVal(2), IntVal(21)); got != 142 {
		t.Fatalf("setup(double) = %d, want 142", got)
	}
	if got := callInt(t, m, "setup", PtrVal(itemR, 0), PtrVal(opsR, 0), IntVal(3), IntVal(10)); got != 130 {
		t.Fatalf("setup(triple) = %d, want 130", got)
	}
}

func TestStructLayoutNested(t *testing.T) {
	m := mustMachine(t, `
struct inner { int a; int b; };
struct outer { int x; struct inner in; int y; };
int f(struct outer* o) {
    o->x = 1;
    o->in.a = 2;
    o->in.b = 3;
    o->y = 4;
    return o->x + o->in.a * 10 + o->in.b * 100 + o->y * 1000;
}
`)
	l, err := m.Layout("outer")
	if err != nil {
		t.Fatal(err)
	}
	if l.Slots != 4 || l.FieldOffset("y") != 3 {
		t.Fatalf("layout = %+v", l)
	}
	r, err := m.NewStruct("outer", "o")
	if err != nil {
		t.Fatal(err)
	}
	if got := callInt(t, m, "f", PtrVal(r, 0)); got != 1+20+300+4000 {
		t.Fatalf("f = %d", got)
	}
}

func TestBuiltinsBigEndianStore(t *testing.T) {
	m := mustMachine(t, `
extern void stlong(char* p, int v);
extern int ldlong(char* p);
extern void stbyte(char* p, int v);
extern int ldbyte(char* p);
int store(char* buf, int v) {
    stlong(buf, v);
    stbyte(buf + 4, 255);
    return ldlong(buf) + ldbyte(buf + 4);
}
`)
	buf := NewBytes("buf", 8)
	if got := callInt(t, m, "store", PtrVal(buf, 0), IntVal(0x01020304)); got != 0x01020304+255 {
		t.Fatalf("store = %#x", got)
	}
	if !bytes.Equal(buf.Bytes[:5], []byte{1, 2, 3, 4, 255}) {
		t.Fatalf("buffer = %v", buf.Bytes[:5])
	}
}

func TestBuiltinMemcopyBzero(t *testing.T) {
	m := mustMachine(t, `
extern void memcopy(char* dst, char* src, int n);
extern void bzero(char* p, int n);
int doit(char* dst, char* src, int n) {
    bzero(dst, n);
    memcopy(dst, src, n - 2);
    return 0;
}
`)
	src := NewBytes("src", 8)
	for i := range src.Bytes {
		src.Bytes[i] = byte(i + 1)
	}
	dst := NewBytes("dst", 8)
	for i := range dst.Bytes {
		dst.Bytes[i] = 0xee
	}
	callInt(t, m, "doit", PtrVal(dst, 0), PtrVal(src, 0), IntVal(8))
	want := []byte{1, 2, 3, 4, 5, 6, 0, 0}
	if !bytes.Equal(dst.Bytes, want) {
		t.Fatalf("dst = %v, want %v", dst.Bytes, want)
	}
}

func TestHostExtern(t *testing.T) {
	m := mustMachine(t, `
extern int host_add(int a, int b);
int f(int x) { return host_add(x, 10); }
`)
	m.Extern("host_add", func(_ *Machine, args []Value) Value {
		return IntVal(args[0].I + args[1].I)
	})
	if got := callInt(t, m, "f", IntVal(5)); got != 15 {
		t.Fatalf("f = %d", got)
	}
}

func TestCharPointerArithmetic(t *testing.T) {
	m := mustMachine(t, `
extern void stbyte(char* p, int v);
int fill(char* p, int n) {
    char* q = p;
    for (int i = 0; i < n; i++) {
        stbyte(q, i + 65);
        q += 1;
    }
    return 0;
}
`)
	buf := NewBytes("b", 4)
	callInt(t, m, "fill", PtrVal(buf, 0), IntVal(4))
	if string(buf.Bytes) != "ABCD" {
		t.Fatalf("buf = %q", buf.Bytes)
	}
}

func TestIntDerefOnByteRegion(t *testing.T) {
	// *(int*)p semantics: 4-byte big-endian access, as on the paper's
	// SPARC. The checker forbids the cast, but an int* parameter may
	// legally point into byte memory.
	m := mustMachine(t, `
int probe(int* p) {
    *p = 0x0a0b0c0d;
    return *p;
}
`)
	buf := NewBytes("b", 4)
	if got := callInt(t, m, "probe", PtrVal(buf, 0)); got != 0x0a0b0c0d {
		t.Fatalf("probe = %#x", got)
	}
	if !bytes.Equal(buf.Bytes, []byte{0x0a, 0x0b, 0x0c, 0x0d}) {
		t.Fatalf("buf = %v", buf.Bytes)
	}
}

func TestRuntimeErrors(t *testing.T) {
	m := mustMachine(t, `
struct s { int a; };
int deref(int* p) { return *p; }
int arrow(struct s* p) { return p->a; }
int oob(int* p) { return p[100]; }
`)
	var re *RuntimeError
	if _, err := m.Call("deref", NullPtr()); !errors.As(err, &re) {
		t.Fatalf("null deref err = %v", err)
	}
	if _, err := m.Call("arrow", NullPtr()); !errors.As(err, &re) {
		t.Fatalf("null arrow err = %v", err)
	}
	small := NewWords("w", 2)
	if _, err := m.Call("oob", PtrVal(small, 0)); !errors.As(err, &re) {
		t.Fatalf("oob err = %v", err)
	}
	if _, err := m.Call("nosuchfunction"); !errors.As(err, &re) {
		t.Fatalf("unknown function err = %v", err)
	}
	if _, err := m.Call("deref"); !errors.As(err, &re) {
		t.Fatalf("arity err = %v", err)
	}
}

func TestCostMetering(t *testing.T) {
	m := mustMachine(t, `
extern void stlong(char* p, int v);
int work(char* buf, int n) {
    for (int i = 0; i < n; i++) {
        stlong(buf + 4*i, i);
    }
    return n;
}
`)
	buf := NewBytes("b", 400)
	m.ResetCost()
	callInt(t, m, "work", PtrVal(buf, 0), IntVal(10))
	if m.Cost.MemBytes != 40 {
		t.Fatalf("MemBytes = %d, want 40", m.Cost.MemBytes)
	}
	if m.Cost.Ops == 0 || m.Cost.Calls != 11 { // work + 10 stlong
		t.Fatalf("Ops = %d Calls = %d", m.Cost.Ops, m.Cost.Calls)
	}
	c10 := m.Cost
	// Cost scales roughly linearly with n.
	m.ResetCost()
	callInt(t, m, "work", PtrVal(buf, 0), IntVal(100))
	if m.Cost.MemBytes != 400 {
		t.Fatalf("MemBytes = %d, want 400", m.Cost.MemBytes)
	}
	if m.Cost.Ops < 9*c10.Ops {
		t.Fatalf("Ops at n=100 (%d) not ~10x n=10 (%d)", m.Cost.Ops, c10.Ops)
	}
}

func TestVoidFunction(t *testing.T) {
	m := mustMachine(t, `
extern void stlong(char* p, int v);
void put(char* p, int v) { stlong(p, v); }
int f(char* p) { put(p, 7); return 1; }
`)
	buf := NewBytes("b", 4)
	if got := callInt(t, m, "f", PtrVal(buf, 0)); got != 1 {
		t.Fatalf("f = %d", got)
	}
	if buf.Bytes[3] != 7 {
		t.Fatalf("buf = %v", buf.Bytes)
	}
}

func TestRecursion(t *testing.T) {
	m := mustMachine(t, `
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
`)
	if got := callInt(t, m, "fib", IntVal(15)); got != 610 {
		t.Fatalf("fib(15) = %d", got)
	}
}

func TestStringLiteralArg(t *testing.T) {
	m := mustMachine(t, `
extern int host_len(char* s);
int f(void) { return host_len("hello"); }
`)
	m.Extern("host_len", func(mm *Machine, args []Value) Value {
		p := args[0].P
		n := 0
		for p.Region.Bytes[p.Off+n] != 0 {
			n++
		}
		return IntVal(int64(n))
	})
	if got := callInt(t, m, "f"); got != 5 {
		t.Fatalf("f = %d", got)
	}
}

// TestPutlongPipeline runs the paper's Figure 3 function compiled from
// actual mini-C source and checks both the success and overflow paths.
func TestPutlongPipeline(t *testing.T) {
	m := mustMachine(t, `
struct xdrbuf {
    int x_op;
    char* x_private;
    int x_handy;
};
extern void stlong(char* p, int v);
int xdrmem_putlong(struct xdrbuf* xdrs, int* lp)
{
    if ((xdrs->x_handy -= 4) < 0) {
        return 0;
    }
    stlong(xdrs->x_private, *lp);
    xdrs->x_private += 4;
    return 1;
}
`)
	xdrs, err := m.NewStruct("xdrbuf", "xdrs")
	if err != nil {
		t.Fatal(err)
	}
	layout, _ := m.Layout("xdrbuf")
	buf := NewBytes("out", 8)
	xdrs.Words[layout.FieldOffset("x_private")] = PtrVal(buf, 0)
	xdrs.Words[layout.FieldOffset("x_handy")] = IntVal(8)

	val := NewWords("v", 1)
	val.Words[0] = IntVal(0x11223344)
	if got := callInt(t, m, "xdrmem_putlong", PtrVal(xdrs, 0), PtrVal(val, 0)); got != 1 {
		t.Fatal("first putlong failed")
	}
	val.Words[0] = IntVal(0x55667788)
	if got := callInt(t, m, "xdrmem_putlong", PtrVal(xdrs, 0), PtrVal(val, 0)); got != 1 {
		t.Fatal("second putlong failed")
	}
	// Third write overflows: x_handy went 8 -> 4 -> 0 -> -4.
	if got := callInt(t, m, "xdrmem_putlong", PtrVal(xdrs, 0), PtrVal(val, 0)); got != 0 {
		t.Fatal("overflow not detected")
	}
	want := []byte{0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88}
	if !bytes.Equal(buf.Bytes, want) {
		t.Fatalf("buffer = %x, want %x", buf.Bytes, want)
	}
}

func TestCompileErrorUnsupported(t *testing.T) {
	p, err := minic.Parse(`
struct bad { char arr[8]; };
int f(struct bad* b) { return 0; }
int g(void) { struct bad x; return f(&x); }
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := minic.Check(p); err != nil {
		t.Fatal(err)
	}
	if _, err := New(p); err == nil {
		t.Fatal("expected compile error for char array in struct")
	} else if !strings.Contains(err.Error(), "char arrays") {
		t.Fatalf("unexpected error: %v", err)
	}
}
