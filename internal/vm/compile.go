package vm

import (
	"fmt"

	"specrpc/internal/minic"
)

// The compiler turns checked mini-C ASTs into trees of Go closures
// ("closure-threaded code"). Each statement compiles to a stmtFn and each
// expression to an exprFn; execution is then plain Go calls with no
// per-node interpretive dispatch, which keeps the generic/specialized
// comparison about the *program* rather than about interpreter overhead.

type ctrlCode int

const (
	ctrlNext ctrlCode = iota + 1
	ctrlReturn
	ctrlBreak
	ctrlContinue
)

type stmtFn func(m *Machine, f *frame) (ctrlCode, Value)

type exprFn func(m *Machine, f *frame) Value

type frame struct {
	vals []Value
}

type compiledFunc struct {
	def          *minic.FuncDef
	nslots       int
	paramRegions []bool
	body         stmtFn
}

// loc is a resolved storage location.
type loc struct {
	inFrame bool
	slot    int
	p       Pointer
}

type locFn func(m *Machine, f *frame) loc

type varInfo struct {
	slot   int
	typ    minic.Type
	region bool // the frame slot holds a pointer to the variable's region
}

type fnCompiler struct {
	m         *Machine
	def       *minic.FuncDef
	scopes    []map[string]*varInfo
	nslots    int
	addrTaken map[string]bool
	params    []bool
}

func (m *Machine) compileFunc(def *minic.FuncDef) (*compiledFunc, error) {
	c := &fnCompiler{m: m, def: def, addrTaken: make(map[string]bool)}
	markAddrTaken(def.Body, c.addrTaken)
	c.pushScope()
	c.params = make([]bool, len(def.Params))
	for i, p := range def.Params {
		info, err := c.declare(p.Name, p.Type)
		if err != nil {
			return nil, err
		}
		c.params[i] = info.region
	}
	body, err := c.stmt(def.Body)
	if err != nil {
		return nil, err
	}
	return &compiledFunc{def: def, nslots: c.nslots, paramRegions: c.params, body: body}, nil
}

// markAddrTaken records every variable name whose address is taken,
// conservatively by name across scopes.
func markAddrTaken(s minic.Stmt, set map[string]bool) {
	var walkExpr func(e minic.Expr)
	walkExpr = func(e minic.Expr) {
		switch n := e.(type) {
		case nil:
		case *minic.Unary:
			if n.Op == "&" {
				if v, ok := n.X.(*minic.VarRef); ok {
					set[v.Name] = true
				}
			}
			walkExpr(n.X)
		case *minic.Binary:
			walkExpr(n.X)
			walkExpr(n.Y)
		case *minic.Assign:
			walkExpr(n.LHS)
			walkExpr(n.RHS)
		case *minic.Call:
			walkExpr(n.Fun)
			for _, a := range n.Args {
				walkExpr(a)
			}
		case *minic.Field:
			walkExpr(n.X)
		case *minic.Index:
			walkExpr(n.X)
			walkExpr(n.I)
		}
	}
	var walkStmt func(s minic.Stmt)
	walkStmt = func(s minic.Stmt) {
		switch n := s.(type) {
		case nil:
		case *minic.ExprStmt:
			walkExpr(n.E)
		case *minic.VarDecl:
			walkExpr(n.Init)
		case *minic.If:
			walkExpr(n.Cond)
			walkStmt(n.Then)
			walkStmt(n.Else)
		case *minic.While:
			walkExpr(n.Cond)
			walkStmt(n.Body)
		case *minic.For:
			walkStmt(n.Init)
			walkExpr(n.Cond)
			walkStmt(n.Post)
			walkStmt(n.Body)
		case *minic.Return:
			walkExpr(n.E)
		case *minic.Block:
			for _, st := range n.Stmts {
				walkStmt(st)
			}
		}
	}
	walkStmt(s)
}

func (c *fnCompiler) pushScope() { c.scopes = append(c.scopes, make(map[string]*varInfo)) }
func (c *fnCompiler) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *fnCompiler) declare(name string, t minic.Type) (*varInfo, error) {
	region := c.addrTaken[name]
	switch t.(type) {
	case *minic.Array, *minic.Struct:
		region = true
	}
	info := &varInfo{slot: c.nslots, typ: t, region: region}
	c.nslots++
	c.scopes[len(c.scopes)-1][name] = info
	return info, nil
}

func (c *fnCompiler) lookup(name string) (*varInfo, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if v, ok := c.scopes[i][name]; ok {
			return v, true
		}
	}
	return nil, false
}

func (c *fnCompiler) errf(pos minic.Pos, format string, args ...any) error {
	return fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...))
}

// ---------------------------------------------------------------------------
// Statements

func (c *fnCompiler) stmt(s minic.Stmt) (stmtFn, error) {
	switch n := s.(type) {
	case nil:
		return func(*Machine, *frame) (ctrlCode, Value) { return ctrlNext, Value{} }, nil
	case *minic.ExprStmt:
		e, err := c.expr(n.E)
		if err != nil {
			return nil, err
		}
		return func(m *Machine, f *frame) (ctrlCode, Value) {
			e(m, f)
			return ctrlNext, Value{}
		}, nil
	case *minic.VarDecl:
		return c.varDecl(n)
	case *minic.If:
		cond, err := c.expr(n.Cond)
		if err != nil {
			return nil, err
		}
		then, err := c.stmt(n.Then)
		if err != nil {
			return nil, err
		}
		var els stmtFn
		if n.Else != nil {
			els, err = c.stmt(n.Else)
			if err != nil {
				return nil, err
			}
		}
		return func(m *Machine, f *frame) (ctrlCode, Value) {
			m.Cost.Ops++
			if cond(m, f).Truthy() {
				return then(m, f)
			}
			if els != nil {
				return els(m, f)
			}
			return ctrlNext, Value{}
		}, nil
	case *minic.While:
		cond, err := c.expr(n.Cond)
		if err != nil {
			return nil, err
		}
		body, err := c.stmt(n.Body)
		if err != nil {
			return nil, err
		}
		return func(m *Machine, f *frame) (ctrlCode, Value) {
			for {
				m.Cost.Ops++
				if !cond(m, f).Truthy() {
					return ctrlNext, Value{}
				}
				switch ctrl, v := body(m, f); ctrl {
				case ctrlReturn:
					return ctrlReturn, v
				case ctrlBreak:
					return ctrlNext, Value{}
				}
			}
		}, nil
	case *minic.For:
		c.pushScope()
		defer c.popScope()
		var init, post stmtFn
		var cond exprFn
		var err error
		if n.Init != nil {
			if init, err = c.stmt(n.Init); err != nil {
				return nil, err
			}
		}
		if n.Cond != nil {
			if cond, err = c.expr(n.Cond); err != nil {
				return nil, err
			}
		}
		if n.Post != nil {
			if post, err = c.stmt(n.Post); err != nil {
				return nil, err
			}
		}
		body, err := c.stmt(n.Body)
		if err != nil {
			return nil, err
		}
		return func(m *Machine, f *frame) (ctrlCode, Value) {
			if init != nil {
				if ctrl, v := init(m, f); ctrl == ctrlReturn {
					return ctrl, v
				}
			}
			for {
				if cond != nil {
					m.Cost.Ops++
					if !cond(m, f).Truthy() {
						return ctrlNext, Value{}
					}
				}
				switch ctrl, v := body(m, f); ctrl {
				case ctrlReturn:
					return ctrlReturn, v
				case ctrlBreak:
					return ctrlNext, Value{}
				}
				if post != nil {
					if ctrl, v := post(m, f); ctrl == ctrlReturn {
						return ctrl, v
					}
				}
			}
		}, nil
	case *minic.Return:
		if n.E == nil {
			return func(*Machine, *frame) (ctrlCode, Value) { return ctrlReturn, VoidVal() }, nil
		}
		e, err := c.expr(n.E)
		if err != nil {
			return nil, err
		}
		return func(m *Machine, f *frame) (ctrlCode, Value) {
			return ctrlReturn, e(m, f)
		}, nil
	case *minic.Break:
		return func(*Machine, *frame) (ctrlCode, Value) { return ctrlBreak, Value{} }, nil
	case *minic.Continue:
		return func(*Machine, *frame) (ctrlCode, Value) { return ctrlContinue, Value{} }, nil
	case *minic.Block:
		c.pushScope()
		defer c.popScope()
		stmts := make([]stmtFn, 0, len(n.Stmts))
		for _, st := range n.Stmts {
			sf, err := c.stmt(st)
			if err != nil {
				return nil, err
			}
			stmts = append(stmts, sf)
		}
		return func(m *Machine, f *frame) (ctrlCode, Value) {
			for _, sf := range stmts {
				if ctrl, v := sf(m, f); ctrl != ctrlNext {
					return ctrl, v
				}
			}
			return ctrlNext, Value{}
		}, nil
	default:
		return nil, fmt.Errorf("unsupported statement %T", s)
	}
}

func (c *fnCompiler) varDecl(n *minic.VarDecl) (stmtFn, error) {
	var init exprFn
	var err error
	if n.Init != nil {
		init, err = c.expr(n.Init)
		if err != nil {
			return nil, err
		}
	}
	info, err := c.declare(n.Name, n.Type)
	if err != nil {
		return nil, err
	}
	slot := info.slot
	if !info.region {
		return func(m *Machine, f *frame) (ctrlCode, Value) {
			v := IntVal(0)
			if init != nil {
				v = init(m, f)
			}
			f.vals[slot] = v
			return ctrlNext, Value{}
		}, nil
	}
	// Region-allocated local: fresh region per execution of the
	// declaration (block scoping).
	name := n.Name
	switch t := n.Type.(type) {
	case *minic.Array:
		if t.Elem.Equal(minic.TypeChar) {
			size := t.Len
			return func(m *Machine, f *frame) (ctrlCode, Value) {
				f.vals[slot] = PtrVal(NewBytes(name, size), 0)
				return ctrlNext, Value{}
			}, nil
		}
		slots, serr := slotsOf(t)
		if serr != nil {
			return nil, c.errf(n.Pos, "array %s: %v", name, serr)
		}
		return func(m *Machine, f *frame) (ctrlCode, Value) {
			f.vals[slot] = PtrVal(NewWords(name, slots), 0)
			return ctrlNext, Value{}
		}, nil
	case *minic.Struct:
		slots, serr := slotsOf(t)
		if serr != nil {
			return nil, c.errf(n.Pos, "struct local %s: %v", name, serr)
		}
		return func(m *Machine, f *frame) (ctrlCode, Value) {
			f.vals[slot] = PtrVal(NewWords(name, slots), 0)
			return ctrlNext, Value{}
		}, nil
	default:
		// Address-taken scalar.
		return func(m *Machine, f *frame) (ctrlCode, Value) {
			r := NewWords(name, 1)
			if init != nil {
				r.Words[0] = init(m, f)
			}
			f.vals[slot] = PtrVal(r, 0)
			return ctrlNext, Value{}
		}, nil
	}
}

// ---------------------------------------------------------------------------
// Location access

// read loads from a location; t is the static type being read.
func read(m *Machine, l loc, f *frame, t minic.Type) Value {
	m.Cost.Ops++
	if l.inFrame {
		return f.vals[l.slot]
	}
	r := l.p.Region
	if r == nil {
		throw("null pointer read")
	}
	switch r.Kind {
	case RegionWords:
		if l.p.Off < 0 || l.p.Off >= len(r.Words) {
			throw("word read out of bounds: %s+%d", r.Name, l.p.Off)
		}
		// Word slots model struct fields and scalars that a compiling C
		// backend would keep in registers; they cost an operation, not
		// memory traffic. Only byte regions (message buffers) and the
		// buffer builtins count as memory moves.
		return r.Words[l.p.Off]
	default: // RegionBytes
		if t != nil && t.Equal(minic.TypeInt) {
			if l.p.Off < 0 || l.p.Off+4 > len(r.Bytes) {
				throw("int read out of bounds: %s+%d", r.Name, l.p.Off)
			}
			m.Cost.MemBytes += 4
			b := r.Bytes[l.p.Off:]
			return IntVal(int64(int32(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]))))
		}
		if l.p.Off < 0 || l.p.Off >= len(r.Bytes) {
			throw("byte read out of bounds: %s+%d", r.Name, l.p.Off)
		}
		m.Cost.MemBytes++
		return IntVal(int64(r.Bytes[l.p.Off]))
	}
}

// write stores to a location; t is the static type being written.
func write(m *Machine, l loc, f *frame, t minic.Type, v Value) {
	m.Cost.Ops++
	if l.inFrame {
		f.vals[l.slot] = v
		return
	}
	r := l.p.Region
	if r == nil {
		throw("null pointer write")
	}
	switch r.Kind {
	case RegionWords:
		if l.p.Off < 0 || l.p.Off >= len(r.Words) {
			throw("word write out of bounds: %s+%d", r.Name, l.p.Off)
		}
		r.Words[l.p.Off] = v
	default:
		if t != nil && t.Equal(minic.TypeInt) {
			if l.p.Off < 0 || l.p.Off+4 > len(r.Bytes) {
				throw("int write out of bounds: %s+%d", r.Name, l.p.Off)
			}
			m.Cost.MemBytes += 4
			b := r.Bytes[l.p.Off:]
			u := uint32(v.I)
			b[0], b[1], b[2], b[3] = byte(u>>24), byte(u>>16), byte(u>>8), byte(u)
			return
		}
		if l.p.Off < 0 || l.p.Off >= len(r.Bytes) {
			throw("byte write out of bounds: %s+%d", r.Name, l.p.Off)
		}
		m.Cost.MemBytes++
		r.Bytes[l.p.Off] = byte(v.I)
	}
}

// ptrStep returns the per-element step for pointer arithmetic on a
// pointer to elem: bytes in byte regions, slots in word regions.
func ptrStep(elem minic.Type, kind RegionKind) int {
	if kind == RegionBytes {
		return minic.SizeOfType(elem)
	}
	n, err := slotsOf(elem)
	if err != nil {
		throw("pointer arithmetic on %s: %v", elem, err)
	}
	return n
}

// elemOf returns the element type of a pointer/array expression type.
func elemOf(t minic.Type) minic.Type {
	switch n := t.(type) {
	case *minic.Ptr:
		return n.Elem
	case *minic.Array:
		return n.Elem
	default:
		return minic.TypeInt
	}
}

// ---------------------------------------------------------------------------
// Expressions

func (c *fnCompiler) expr(e minic.Expr) (exprFn, error) {
	switch n := e.(type) {
	case nil:
		return nil, fmt.Errorf("nil expression")
	case *minic.IntLit:
		v := IntVal(n.Val)
		return func(*Machine, *frame) Value { return v }, nil
	case *minic.StrLit:
		s := n.Val
		return func(m *Machine, f *frame) Value {
			return PtrVal(m.internString(s), 0)
		}, nil
	case *minic.FuncRef:
		v := FuncVal(n.Name)
		return func(*Machine, *frame) Value { return v }, nil
	case *minic.VarRef:
		info, ok := c.lookup(n.Name)
		if !ok {
			return nil, c.errf(n.Pos, "undefined %s (run minic.Check first?)", n.Name)
		}
		slot := info.slot
		if !info.region {
			return func(m *Machine, f *frame) Value {
				m.Cost.Ops++
				return f.vals[slot]
			}, nil
		}
		switch info.typ.(type) {
		case *minic.Array, *minic.Struct:
			// Arrays decay; struct rvalues are their address (only used
			// through further field selection).
			return func(m *Machine, f *frame) Value {
				m.Cost.Ops++
				return f.vals[slot]
			}, nil
		default:
			typ := info.typ
			return func(m *Machine, f *frame) Value {
				p := f.vals[slot].P
				return read(m, loc{p: p}, f, typ)
			}, nil
		}
	case *minic.Unary:
		return c.unary(n)
	case *minic.Binary:
		return c.binary(n)
	case *minic.Assign:
		return c.assign(n)
	case *minic.Call:
		return c.call(n)
	case *minic.Field, *minic.Index:
		lf, typ, err := c.loc(e)
		if err != nil {
			return nil, err
		}
		switch typ.(type) {
		case *minic.Array, *minic.Struct:
			// Decay to address.
			return func(m *Machine, f *frame) Value {
				l := lf(m, f)
				m.Cost.Ops++
				return PtrVal(l.p.Region, l.p.Off)
			}, nil
		default:
			t := typ
			return func(m *Machine, f *frame) Value {
				return read(m, lf(m, f), f, t)
			}, nil
		}
	default:
		return nil, fmt.Errorf("unsupported expression %T", e)
	}
}

func (c *fnCompiler) unary(n *minic.Unary) (exprFn, error) {
	switch n.Op {
	case "!", "-", "~":
		x, err := c.expr(n.X)
		if err != nil {
			return nil, err
		}
		op := n.Op
		return func(m *Machine, f *frame) Value {
			m.Cost.Ops++
			v := x(m, f)
			switch op {
			case "!":
				return BoolVal(!v.Truthy())
			case "-":
				return IntVal(int64(int32(-v.I)))
			default:
				return IntVal(int64(int32(^v.I)))
			}
		}, nil
	case "*":
		lf, typ, err := c.loc(n)
		if err != nil {
			return nil, err
		}
		t := typ
		return func(m *Machine, f *frame) Value {
			return read(m, lf(m, f), f, t)
		}, nil
	case "&":
		lf, _, err := c.loc(n.X)
		if err != nil {
			return nil, err
		}
		return func(m *Machine, f *frame) Value {
			l := lf(m, f)
			m.Cost.Ops++
			if l.inFrame {
				throw("cannot take address of register variable")
			}
			return PtrVal(l.p.Region, l.p.Off)
		}, nil
	default:
		return nil, c.errf(n.Pos, "unsupported unary %s", n.Op)
	}
}

func (c *fnCompiler) binary(n *minic.Binary) (exprFn, error) {
	x, err := c.expr(n.X)
	if err != nil {
		return nil, err
	}
	y, err := c.expr(n.Y)
	if err != nil {
		return nil, err
	}
	op := n.Op
	switch op {
	case "&&":
		return func(m *Machine, f *frame) Value {
			m.Cost.Ops++
			if !x(m, f).Truthy() {
				return IntVal(0)
			}
			return BoolVal(y(m, f).Truthy())
		}, nil
	case "||":
		return func(m *Machine, f *frame) Value {
			m.Cost.Ops++
			if x(m, f).Truthy() {
				return IntVal(1)
			}
			return BoolVal(y(m, f).Truthy())
		}, nil
	}
	// Pointer arithmetic compiles with the element step baked in.
	xt := minic.TypeOf(n.X)
	if isPtrish(xt) && (op == "+" || op == "-") {
		elem := elemOf(xt)
		sign := 1
		if op == "-" {
			sign = -1
		}
		return func(m *Machine, f *frame) Value {
			m.Cost.Ops++
			p := x(m, f)
			d := y(m, f)
			if p.Kind != KindPtr || p.P.Region == nil {
				throw("pointer arithmetic on %s", p)
			}
			step := ptrStep(elem, p.P.Region.Kind)
			return PtrVal(p.P.Region, p.P.Off+sign*step*int(d.I))
		}, nil
	}
	if isPtrish(minic.TypeOf(n.Y)) && op == "+" {
		elem := elemOf(minic.TypeOf(n.Y))
		return func(m *Machine, f *frame) Value {
			m.Cost.Ops++
			d := x(m, f)
			p := y(m, f)
			if p.Kind != KindPtr || p.P.Region == nil {
				throw("pointer arithmetic on %s", p)
			}
			step := ptrStep(elem, p.P.Region.Kind)
			return PtrVal(p.P.Region, p.P.Off+step*int(d.I))
		}, nil
	}
	return func(m *Machine, f *frame) Value {
		m.Cost.Ops++
		a := x(m, f)
		b := y(m, f)
		return applyBinary(op, a, b)
	}, nil
}

func isPtrish(t minic.Type) bool {
	switch t.(type) {
	case *minic.Ptr, *minic.Array:
		return true
	default:
		return false
	}
}

func applyBinary(op string, a, b Value) Value {
	// Pointer comparisons.
	if a.Kind == KindPtr || b.Kind == KindPtr {
		switch op {
		case "==":
			return BoolVal(ptrEq(a, b))
		case "!=":
			return BoolVal(!ptrEq(a, b))
		default:
			throw("invalid pointer operation %s", op)
		}
	}
	if a.Kind == KindFunc || b.Kind == KindFunc {
		switch op {
		case "==":
			return BoolVal(a.F == b.F)
		case "!=":
			return BoolVal(a.F != b.F)
		default:
			throw("invalid funcptr operation %s", op)
		}
	}
	x, y := a.I, b.I
	switch op {
	case "+":
		return IntVal(int64(int32(x + y)))
	case "-":
		return IntVal(int64(int32(x - y)))
	case "*":
		return IntVal(int64(int32(x * y)))
	case "/":
		if y == 0 {
			throw("division by zero")
		}
		return IntVal(int64(int32(x / y)))
	case "%":
		if y == 0 {
			throw("modulo by zero")
		}
		return IntVal(int64(int32(x % y)))
	case "&":
		return IntVal(x & y)
	case "|":
		return IntVal(x | y)
	case "^":
		return IntVal(int64(int32(x ^ y)))
	case "<<":
		return IntVal(int64(int32(x << (uint(y) & 31))))
	case ">>":
		return IntVal(int64(int32(x) >> (uint(y) & 31)))
	case "==":
		return BoolVal(x == y)
	case "!=":
		return BoolVal(x != y)
	case "<":
		return BoolVal(x < y)
	case ">":
		return BoolVal(x > y)
	case "<=":
		return BoolVal(x <= y)
	case ">=":
		return BoolVal(x >= y)
	default:
		throw("unknown operator %s", op)
		return Value{}
	}
}

func ptrEq(a, b Value) bool {
	pa, pb := Pointer{}, Pointer{}
	if a.Kind == KindPtr {
		pa = a.P
	} else if a.I != 0 {
		throw("comparing pointer with non-zero integer")
	}
	if b.Kind == KindPtr {
		pb = b.P
	} else if b.I != 0 {
		throw("comparing pointer with non-zero integer")
	}
	return pa == pb
}

func (c *fnCompiler) assign(n *minic.Assign) (exprFn, error) {
	lf, typ, err := c.loc(n.LHS)
	if err != nil {
		return nil, err
	}
	rhs, err := c.expr(n.RHS)
	if err != nil {
		return nil, err
	}
	t := typ
	if n.Op == "=" {
		return func(m *Machine, f *frame) Value {
			l := lf(m, f)
			v := rhs(m, f)
			write(m, l, f, t, v)
			return v
		}, nil
	}
	binOp := n.Op[:len(n.Op)-1] // "+=" -> "+"
	if _, isPtr := typ.(*minic.Ptr); isPtr {
		elem := elemOf(typ)
		sign := 1
		if binOp == "-" {
			sign = -1
		}
		return func(m *Machine, f *frame) Value {
			l := lf(m, f)
			cur := read(m, l, f, t)
			d := rhs(m, f)
			if cur.Kind != KindPtr || cur.P.Region == nil {
				throw("pointer arithmetic on %s", cur)
			}
			step := ptrStep(elem, cur.P.Region.Kind)
			v := PtrVal(cur.P.Region, cur.P.Off+sign*step*int(d.I))
			write(m, l, f, t, v)
			return v
		}, nil
	}
	return func(m *Machine, f *frame) Value {
		l := lf(m, f)
		cur := read(m, l, f, t)
		v := applyBinary(binOp, cur, rhs(m, f))
		write(m, l, f, t, v)
		return v
	}, nil
}

func (c *fnCompiler) call(n *minic.Call) (exprFn, error) {
	args := make([]exprFn, len(n.Args))
	for i, a := range n.Args {
		af, err := c.expr(a)
		if err != nil {
			return nil, err
		}
		args[i] = af
	}
	evalArgs := func(m *Machine, f *frame) []Value {
		vs := make([]Value, len(args))
		for i, af := range args {
			vs[i] = af(m, f)
		}
		return vs
	}
	if fr, ok := n.Fun.(*minic.FuncRef); ok {
		name := fr.Name
		return func(m *Machine, f *frame) Value {
			return m.call(name, evalArgs(m, f))
		}, nil
	}
	fun, err := c.expr(n.Fun)
	if err != nil {
		return nil, err
	}
	return func(m *Machine, f *frame) Value {
		fv := fun(m, f)
		if fv.Kind != KindFunc || fv.F == "" {
			throw("indirect call through non-function value %s", fv)
		}
		return m.call(fv.F, evalArgs(m, f))
	}, nil
}

// loc compiles an lvalue (or pointer target) expression to a location,
// returning the static type stored there.
func (c *fnCompiler) loc(e minic.Expr) (locFn, minic.Type, error) {
	switch n := e.(type) {
	case *minic.VarRef:
		info, ok := c.lookup(n.Name)
		if !ok {
			return nil, nil, c.errf(n.Pos, "undefined %s", n.Name)
		}
		slot := info.slot
		if info.region {
			return func(m *Machine, f *frame) loc {
				return loc{p: f.vals[slot].P}
			}, info.typ, nil
		}
		return func(m *Machine, f *frame) loc {
			return loc{inFrame: true, slot: slot}
		}, info.typ, nil
	case *minic.Unary:
		if n.Op != "*" {
			return nil, nil, c.errf(n.Pos, "not an lvalue: unary %s", n.Op)
		}
		x, err := c.expr(n.X)
		if err != nil {
			return nil, nil, err
		}
		elem := elemOf(minic.TypeOf(n.X))
		return func(m *Machine, f *frame) loc {
			p := x(m, f)
			if p.Kind != KindPtr || p.P.Region == nil {
				throw("null or invalid pointer dereference")
			}
			return loc{p: p.P}
		}, elem, nil
	case *minic.Field:
		return c.fieldLoc(n)
	case *minic.Index:
		x, err := c.expr(n.X)
		if err != nil {
			return nil, nil, err
		}
		idx, err := c.expr(n.I)
		if err != nil {
			return nil, nil, err
		}
		elem := elemOf(minic.TypeOf(n.X))
		return func(m *Machine, f *frame) loc {
			p := x(m, f)
			if p.Kind != KindPtr || p.P.Region == nil {
				throw("indexing null or invalid pointer")
			}
			i := idx(m, f)
			m.Cost.Ops++
			step := ptrStep(elem, p.P.Region.Kind)
			return loc{p: Pointer{Region: p.P.Region, Off: p.P.Off + step*int(i.I)}}
		}, elem, nil
	default:
		return nil, nil, fmt.Errorf("%s: not an lvalue: %T", e.Position(), e)
	}
}

func (c *fnCompiler) fieldLoc(n *minic.Field) (locFn, minic.Type, error) {
	if n.Struct == nil {
		return nil, nil, c.errf(n.Pos, "unresolved field %s (run minic.Check first)", n.Name)
	}
	layout, err := c.m.Layout(n.Struct.Name)
	if err != nil {
		return nil, nil, err
	}
	fi := n.Struct.FieldIndex(n.Name)
	offset := layout.Offsets[fi]
	ftype := n.Struct.Fields[fi].Type

	if n.Arrow {
		x, err := c.expr(n.X)
		if err != nil {
			return nil, nil, err
		}
		return func(m *Machine, f *frame) loc {
			p := x(m, f)
			if p.Kind != KindPtr || p.P.Region == nil {
				throw("-> through null pointer (field %s)", n.Name)
			}
			return loc{p: Pointer{Region: p.P.Region, Off: p.P.Off + offset}}
		}, ftype, nil
	}
	base, _, err := c.loc(n.X)
	if err != nil {
		return nil, nil, err
	}
	return func(m *Machine, f *frame) loc {
		l := base(m, f)
		if l.inFrame {
			throw("struct value not region-allocated (field %s)", n.Name)
		}
		return loc{p: Pointer{Region: l.p.Region, Off: l.p.Off + offset}}
	}, ftype, nil
}
