// Package vm compiles mini-C programs (generic Sun RPC micro-layers or
// the residual programs produced by internal/tempo) into closure-threaded
// Go code and executes them over a byte/word memory model.
//
// Running both the original and the specialized marshaling code on the
// same substrate is what makes the benchmark comparison meaningful: the
// measured difference isolates exactly the work specialization removed
// (dispatches, overflow checks, call layers), the role gcc -O2 played in
// the paper's experiments.
//
// The machine also meters its execution — operations, memory traffic,
// call depth — so internal/platform can convert runs into the paper's
// platform cost model (Sun IPX vs Pentium PC).
package vm

import (
	"fmt"
)

// ValueKind discriminates runtime values.
type ValueKind int

// Value kinds.
const (
	KindInt ValueKind = iota + 1
	KindPtr
	KindFunc
	KindVoid
)

// Value is one mini-C runtime value: a 32-bit-style integer, a pointer,
// or a function value.
type Value struct {
	Kind ValueKind
	I    int64   // KindInt
	P    Pointer // KindPtr
	F    string  // KindFunc: function name
}

// IntVal makes an integer value.
func IntVal(v int64) Value { return Value{Kind: KindInt, I: v} }

// BoolVal makes 0/1 from a Go bool.
func BoolVal(b bool) Value {
	if b {
		return IntVal(1)
	}
	return IntVal(0)
}

// PtrVal makes a pointer value.
func PtrVal(r *Region, off int) Value { return Value{Kind: KindPtr, P: Pointer{Region: r, Off: off}} }

// NullPtr is the null pointer.
func NullPtr() Value { return Value{Kind: KindPtr} }

// FuncVal makes a function value.
func FuncVal(name string) Value { return Value{Kind: KindFunc, F: name} }

// VoidVal is the result of void functions.
func VoidVal() Value { return Value{Kind: KindVoid} }

// Truthy reports C truthiness.
func (v Value) Truthy() bool {
	switch v.Kind {
	case KindInt:
		return v.I != 0
	case KindPtr:
		return v.P.Region != nil
	case KindFunc:
		return v.F != ""
	default:
		return false
	}
}

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return fmt.Sprintf("%d", v.I)
	case KindPtr:
		if v.P.Region == nil {
			return "null"
		}
		return fmt.Sprintf("&%s+%d", v.P.Region.Name, v.P.Off)
	case KindFunc:
		return "fn:" + v.F
	default:
		return "void"
	}
}

// Pointer addresses a location inside a region: a byte offset for byte
// regions, a word (slot) offset for word regions.
type Pointer struct {
	Region *Region
	Off    int
}

// RegionKind discriminates memory region layouts.
type RegionKind int

// Region kinds.
const (
	// RegionBytes is raw byte memory (message buffers) addressed by char*.
	RegionBytes RegionKind = iota + 1
	// RegionWords is slot memory (structs, int arrays, addressed scalars).
	RegionWords
)

// Region is one allocation.
type Region struct {
	Kind  RegionKind
	Name  string
	Bytes []byte
	Words []Value
}

// NewBytes allocates an n-byte buffer region.
func NewBytes(name string, n int) *Region {
	return &Region{Kind: RegionBytes, Name: name, Bytes: make([]byte, n)}
}

// BytesRegion wraps an existing byte slice (e.g. a real packet buffer) as
// a region, sharing storage.
func BytesRegion(name string, b []byte) *Region {
	return &Region{Kind: RegionBytes, Name: name, Bytes: b}
}

// NewWords allocates an n-slot word region; slots start as int 0.
func NewWords(name string, n int) *Region {
	w := make([]Value, n)
	for i := range w {
		w[i] = IntVal(0)
	}
	return &Region{Kind: RegionWords, Name: name, Words: w}
}

// RuntimeError is a failure raised during mini-C execution (null
// dereference, out-of-bounds access, unknown function, ...).
type RuntimeError struct {
	Msg string
}

// Error returns the message.
func (e *RuntimeError) Error() string { return "vm: " + e.Msg }

func rtErr(format string, args ...any) *RuntimeError {
	return &RuntimeError{Msg: fmt.Sprintf(format, args...)}
}

// throw aborts execution with a RuntimeError; Machine.Call recovers it.
func throw(format string, args ...any) {
	panic(rtErr(format, args...))
}

// Cost meters execution. The unit of Ops is "one evaluated operation"
// (arithmetic, load, store, branch test); MemBytes counts bytes moved to
// or from regions (the memory traffic the paper identifies as the
// asymptotic bottleneck); Calls counts function entries, modeling
// call-frame overhead.
type Cost struct {
	Ops      int64
	MemBytes int64
	Calls    int64
}

// Add accumulates o into c.
func (c *Cost) Add(o Cost) {
	c.Ops += o.Ops
	c.MemBytes += o.MemBytes
	c.Calls += o.Calls
}
